type packet = int64 array

let nfields = List.length Ast.all_fields
let zero () = Array.make nfields 0L
let get (p : packet) f = p.(Ast.field_rank f)

let set (p : packet) f v =
  let q = Array.copy p in
  q.(Ast.field_rank f) <- v;
  q

let of_list l =
  let p = zero () in
  List.iter (fun (f, v) -> p.(Ast.field_rank f) <- v) l;
  p

let to_list (p : packet) =
  List.map (fun f -> (f, get p f)) Ast.all_fields

let compare_packet (a : packet) (b : packet) = compare a b

let pp_packet ppf p =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map
          (fun (f, v) -> Printf.sprintf "%s=%Ld" (Ast.field_name f) v)
          (to_list p)))

let rec eval_pred pred pkt =
  match pred with
  | Ast.True -> true
  | Ast.False -> false
  | Ast.Test (f, v) -> get pkt f = v
  | Ast.And (a, b) -> eval_pred a pkt && eval_pred b pkt
  | Ast.Or (a, b) -> eval_pred a pkt || eval_pred b pkt
  | Ast.Neg a -> not (eval_pred a pkt)

module PSet = Set.Make (struct
  type t = packet

  let compare = compare_packet
end)

let rec eval_s pol pkt =
  match pol with
  | Ast.Filter p -> if eval_pred p pkt then PSet.singleton pkt else PSet.empty
  | Ast.Mod (f, v) -> PSet.singleton (set pkt f v)
  | Ast.Union (p, q) -> PSet.union (eval_s p pkt) (eval_s q pkt)
  | Ast.Seq (p, q) ->
    PSet.fold
      (fun pkt' acc -> PSet.union (eval_s q pkt') acc)
      (eval_s p pkt) PSet.empty
  | Ast.Star p ->
    (* least fixpoint of [acc = {pkt} U eval p acc]; terminates because
       modifications assign constants, so only finitely many packets
       are reachable from [pkt] *)
    let rec grow acc frontier =
      if PSet.is_empty frontier then acc
      else
        let next =
          PSet.fold
            (fun pkt' out -> PSet.union (eval_s p pkt') out)
            frontier PSet.empty
        in
        let fresh = PSet.diff next acc in
        grow (PSet.union acc fresh) fresh
    in
    grow (PSet.singleton pkt) (PSet.singleton pkt)

let eval pol pkt = PSet.elements (eval_s pol pkt)

let eval_set pol pkts =
  PSet.elements
    (List.fold_left
       (fun acc pkt -> PSet.union (eval_s pol pkt) acc)
       PSet.empty pkts)
