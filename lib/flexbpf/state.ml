(** Physical encodings of the logical key/value map (§3.1).

    The paper's point: individual devices implement network state in
    drastically different ways — P4 "extern" registers, PoF flow-state
    instruction sets, Mellanox stateful tables — and a program pinned to
    one encoding cannot migrate. We model all three behind one
    interface, plus a logical snapshot format that is the migration
    representation ("program migration carries its state in this logical
    representation").

    Behavioral differences preserved:
    - Registers: hash-indexed fixed array; distinct keys may alias
      (collision overwrites), reads are always defined.
    - Flow-state ISA: explicit insertion; once full, writes to unknown
      keys are rejected (counted as overflow) — like PoF instruction
      state blocks.
    - Stateful table: keyed by flow key with data-plane auto-insert and
      LRU eviction when full — like Spectrum flow caching. *)

type key = int64 list

type concrete = Registers | Flow_state | Stateful_table

let concrete_of_encoding = function
  | Ast.Enc_registers -> Some Registers
  | Ast.Enc_flow_state -> Some Flow_state
  | Ast.Enc_stateful_table -> Some Stateful_table
  | Ast.Enc_auto -> None

let concrete_to_string = function
  | Registers -> "registers"
  | Flow_state -> "flow_state"
  | Stateful_table -> "stateful_table"

type snapshot = {
  snap_map : string;
  snap_entries : (key * int64) list;
}

type fs_store = {
  fs_tbl : (key, int64) Hashtbl.t;
  fs_cap : int;
  mutable overflow_count : int;
}

type st_store = {
  st_tbl : (key, int64) Hashtbl.t;
  lru : (key, int) Hashtbl.t; (* key -> last-touch tick *)
  st_cap : int;
  mutable tick : int;
  mutable eviction_count : int;
}

type store =
  | Reg of (key option * int64) array
  | Fs of fs_store
  | St of st_store

type t = { name : string; store : store }

let slot n key = Hashtbl.hash key mod n

let create ~name ~size (enc : concrete) =
  let size = max 1 size in
  let store =
    match enc with
    | Registers -> Reg (Array.make size (None, 0L))
    | Flow_state ->
      Fs { fs_tbl = Hashtbl.create size; fs_cap = size; overflow_count = 0 }
    | Stateful_table ->
      St { st_tbl = Hashtbl.create size; lru = Hashtbl.create size;
           st_cap = size; tick = 0; eviction_count = 0 }
  in
  { name; store }

let of_decl (decl : Ast.map_decl) ?(default = Stateful_table) () =
  let enc =
    Option.value (concrete_of_encoding decl.encoding) ~default
  in
  create ~name:decl.map_name ~size:decl.map_size enc

let encoding t =
  match t.store with
  | Reg _ -> Registers
  | Fs _ -> Flow_state
  | St _ -> Stateful_table

let touch (st : store) key =
  match st with
  | St s ->
    s.tick <- s.tick + 1;
    Hashtbl.replace s.lru key s.tick
  | _ -> ()

let evict_lru s =
  (* find least-recently used key *)
  let victim =
    Hashtbl.fold
      (fun k tick acc ->
        match acc with
        | Some (_, best) when best <= tick -> acc
        | _ -> Some (k, tick))
      s.lru None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove s.st_tbl k;
    Hashtbl.remove s.lru k;
    s.eviction_count <- s.eviction_count + 1
  | None -> ()

let get t key =
  match t.store with
  | Reg arr -> snd arr.(slot (Array.length arr) key)
  | Fs f -> Option.value (Hashtbl.find_opt f.fs_tbl key) ~default:0L
  | St s ->
    (match Hashtbl.find_opt s.st_tbl key with
     | Some v -> touch t.store key; v
     | None -> 0L)

let mem t key =
  match t.store with
  | Reg arr -> fst arr.(slot (Array.length arr) key) = Some key
  | Fs f -> Hashtbl.mem f.fs_tbl key
  | St s -> Hashtbl.mem s.st_tbl key

let put t key v =
  match t.store with
  | Reg arr -> arr.(slot (Array.length arr) key) <- (Some key, v)
  | Fs f ->
    if Hashtbl.mem f.fs_tbl key then Hashtbl.replace f.fs_tbl key v
    else if Hashtbl.length f.fs_tbl < f.fs_cap then Hashtbl.replace f.fs_tbl key v
    else f.overflow_count <- f.overflow_count + 1
  | St s ->
    if (not (Hashtbl.mem s.st_tbl key)) && Hashtbl.length s.st_tbl >= s.st_cap
    then evict_lru s;
    Hashtbl.replace s.st_tbl key v;
    touch t.store key

let incr t key delta =
  let v = Int64.add (get t key) delta in
  put t key v;
  v

let del t key =
  match t.store with
  | Reg arr ->
    let i = slot (Array.length arr) key in
    if fst arr.(i) = Some key then arr.(i) <- (None, 0L)
  | Fs f -> Hashtbl.remove f.fs_tbl key
  | St s ->
    Hashtbl.remove s.st_tbl key;
    Hashtbl.remove s.lru key

let entries t =
  match t.store with
  | Reg arr ->
    Array.to_list arr
    |> List.filter_map (function Some k, v -> Some (k, v) | None, _ -> None)
  | Fs f -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) f.fs_tbl []
  | St s -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.st_tbl []

let size t = List.length (entries t)

let overflows t =
  match t.store with Fs f -> f.overflow_count | _ -> 0

let evictions t =
  match t.store with St s -> s.eviction_count | _ -> 0

(** Logical snapshot: the migration representation. Deterministically
    ordered so snapshots are comparable in tests. *)
let snapshot t =
  { snap_map = t.name; snap_entries = List.sort compare (entries t) }

(** Rebuild a map from a logical snapshot, possibly under a different
    physical encoding — this is exactly the conversion the compiler
    performs when a component migrates to a target with a different
    state implementation. *)
let restore ~name ~size enc snap =
  let t = create ~name ~size enc in
  List.iter (fun (k, v) -> put t k v) snap.snap_entries;
  t

let clear t =
  match t.store with
  | Reg arr -> Array.fill arr 0 (Array.length arr) (None, 0L)
  | Fs f -> Hashtbl.reset f.fs_tbl
  | St s -> Hashtbl.reset s.st_tbl; Hashtbl.reset s.lru

(** Merge a snapshot into an existing map by summing values — used by
    the data-plane migration protocol to fold in-flight updates into the
    destination copy. *)
let merge_add t snap =
  List.iter (fun (k, v) -> ignore (incr t k v)) snap.snap_entries
