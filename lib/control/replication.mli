(** State replication and failover (§3.4): "the FlexNet controller
    replicates important network state in a logical datapath across
    multiple physical devices." A group keeps one primary map
    synchronized to backups; on primary failure a backup is promoted,
    the loss window being whatever changed since the last sync. *)

type mode = Periodic_sync of float (* period, seconds *) | Drpc_sync

type t

val create :
  sim:Netsim.Sim.t -> map_name:string -> primary:Targets.Device.t ->
  backups:Targets.Device.t list -> mode -> t

(** Stop periodic syncing. *)
val stop : t -> unit

(** dRPC-mode hook: sync now (cheap, in the data plane). *)
val replicate_now : t -> unit

(** Promote the next backup after a primary failure. *)
val failover : t -> Targets.Device.t option

(** Value-sum gap between the primary and a backup — the loss-window
    metric. *)
val staleness : t -> Targets.Device.t -> int

(** {2 Failure handling} *)

(** Is (or was) this device id a group member? *)
val member : t -> string -> bool

(** A member crashed: primary → promote the freshest backup; backup →
    drop it from the sync set until restart. Non-members are ignored. *)
val handle_crash : t -> string -> unit

(** A restarted ever-member rejoins as a backup and is resynced
    immediately. Non-members are ignored. *)
val rejoin : t -> Targets.Device.t -> unit

(** Subscribe to a fault injector: members fail over on crash and
    rejoin + resync on restart; [resolve] maps a device id back to its
    handle (e.g. [Controller.find_device]). *)
val watch_faults :
  t -> Netsim.Faults.t -> resolve:(string -> Targets.Device.t option) -> unit

val syncs : t -> int
val failovers : t -> int

(** Successful restart rejoins. *)
val rejoins : t -> int

val primary : t -> Targets.Device.t
val backups : t -> Targets.Device.t list
