(** Reconfiguration execution over simulated time.

    Two modes, matching §1's contrast:

    - [Hitless] (runtime programmable): the touched devices keep
      serving traffic with their old program while the change is
      applied; the new program becomes visible atomically per device
      when its op batch completes. Zero loss; "program changes complete
      within a second".

    - [Drain] (compile-time baseline): each touched device is isolated
      by management operations (traffic drained — here: dropped, as the
      path has no alternates), reflashed with the full program, then
      redeployed. Loss is proportional to drain + reflash time.

    The caller provides [apply], which performs the actual device
    mutations (e.g. running the incremental compiler). Mutations happen
    under freeze, so traffic observes old-program semantics until the
    modelled completion time.

    Failure handling (Hitless): the op batch is acknowledged
    per device at the end of the window — a device that crashed
    mid-batch restarts on its old program (Targets.Device rolls the
    in-flight mutations back at restart), the surviving devices are
    rolled back too, and the whole plan is re-driven after a bounded
    exponential backoff. When the retry budget runs out the plan aborts
    atomically: every touched device ends on its old program. Either
    way each device runs old-XOR-new, never a mix. [apply] is re-run on
    retries, so it must be idempotent over already-converged devices
    (element installs are: re-installing an installed element is
    rejected and ignored). *)

type mode = Hitless | Drain

type outcome = {
  started_at : float;
  finished_at : float;
  mode : mode;
  per_device_done : (string * float) list;
  attempts : int; (* 1 on a fault-free run *)
  rolled_back : bool; (* true: plan aborted, all devices on old program *)
}

let wired_for wireds dev_id =
  List.find_opt
    (fun w -> Targets.Device.id w.Wiring.device = dev_id)
    wireds

(* Serial op time per device in the plan. *)
let per_device_times plan wireds =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let d = Compiler.Plan.op_device op in
      match wired_for wireds d with
      | None -> ()
      | Some w ->
        let times = Targets.Device.reconfig_times w.Wiring.device in
        let cur = Option.value (Hashtbl.find_opt tbl d) ~default:0. in
        Hashtbl.replace tbl d (cur +. Compiler.Plan.op_time times op))
    plan.Compiler.Plan.ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(** Execute [plan] starting now. [apply] performs the compiler-side
    mutations immediately (under freeze); visibility and loss follow
    the mode's timing model. [on_done] fires when every device finished
    (or the plan aborted). Hitless runs survive mid-batch device
    crashes: the plan is re-driven up to [max_retries] times with
    exponential backoff starting at [retry_backoff] seconds, then
    aborted with every touched device rolled back to its old program.
    [stats] (if given) counts "reconfig.retries" and
    "reconfig.gaveups". *)
let execute ?(on_done = fun (_ : outcome) -> ()) ?(max_retries = 2)
    ?(retry_backoff = 0.05) ?stats ~sim ~mode ~wireds ~plan apply =
  let count name =
    match stats with
    | Some c -> Netsim.Stats.Counters.incr c name
    | None -> ()
  in
  let start = Netsim.Sim.now sim in
  let times = per_device_times plan wireds in
  let touched () =
    List.filter_map (fun (d, _) -> wired_for wireds d) times
  in
  match mode with
  | Hitless ->
    (* Per attempt: freeze (checkpoint) → mutate → stage fast paths →
       acknowledge at the end of the window. Commit (thaw) only if every
       touched device survived the window; otherwise roll the survivors
       back (crashed devices roll back at restart) and re-drive. *)
    let rec attempt k =
      let ws = touched () in
      if not (List.for_all (fun w -> Targets.Device.powered_on w.Wiring.device) ws)
      then retry_or_abort k (* a device is still down: back off, retry *)
      else begin
        let attempt_start = Netsim.Sim.now sim in
        let marks =
          List.map (fun w -> (w, Targets.Device.crashes w.Wiring.device)) ws
        in
        List.iter (fun w -> Targets.Device.freeze w.Wiring.device) ws;
        apply ();
        (* Stage the new program's compiled fast path inside the window:
           traffic still runs the frozen old program, and the thaw flips
           to an already-compiled replacement atomically. *)
        List.iter
          (fun w ->
            if Targets.Device.powered_on w.Wiring.device then
              Targets.Device.precompile w.Wiring.device)
          ws;
        let finish =
          List.fold_left (fun acc (_, t) -> Float.max acc t) 0. times
        in
        Netsim.Sim.after sim finish (fun () ->
            let acked (w, crashes0) =
              Targets.Device.powered_on w.Wiring.device
              && Targets.Device.crashes w.Wiring.device = crashes0
            in
            if List.for_all acked marks then begin
              List.iter (fun w -> Targets.Device.thaw w.Wiring.device) ws;
              on_done
                { started_at = start; finished_at = Netsim.Sim.now sim; mode;
                  per_device_done =
                    List.map (fun (d, t) -> (d, attempt_start +. t)) times;
                  attempts = k + 1; rolled_back = false }
            end
            else begin
              (* un-acked batch: survivors roll back now, crashed
                 devices roll back on restart *)
              List.iter
                (fun w ->
                  if Targets.Device.powered_on w.Wiring.device then
                    Targets.Device.rollback w.Wiring.device)
                ws;
              retry_or_abort k
            end)
      end
    and retry_or_abort k =
      if k < max_retries then begin
        count "reconfig.retries";
        Netsim.Sim.after sim
          (retry_backoff *. (2. ** float_of_int k))
          (fun () -> attempt (k + 1))
      end
      else begin
        count "reconfig.gaveups";
        (* abort atomically: any device still holding an open window
           (e.g. frozen but never crashed) reverts to its old program *)
        List.iter
          (fun w ->
            if Targets.Device.is_frozen w.Wiring.device
               && Targets.Device.powered_on w.Wiring.device
            then Targets.Device.rollback w.Wiring.device)
          (touched ());
        on_done
          { started_at = start; finished_at = Netsim.Sim.now sim; mode;
            per_device_done = []; attempts = k + 1; rolled_back = true }
      end
    in
    attempt 0
  | Drain ->
    (* take each touched device offline for drain + full reflash *)
    let downtimes =
      List.map
        (fun (d, _) ->
          let w = wired_for wireds d in
          let down =
            match w with
            | Some w ->
              let r = Targets.Device.reconfig_times w.Wiring.device in
              r.Targets.Arch.drain_time +. r.Targets.Arch.t_full_reflash
            | None -> 0.
          in
          (match w with Some w -> Wiring.set_online w false | None -> ());
          (d, down))
        times
    in
    apply ();
    let finish =
      List.fold_left (fun acc (_, t) -> Float.max acc t) 0. downtimes
    in
    List.iter
      (fun (d, down) ->
        Netsim.Sim.after sim down (fun () ->
            match wired_for wireds d with
            | Some w -> Wiring.set_online w true
            | None -> ()))
      downtimes;
    Netsim.Sim.after sim finish (fun () ->
        on_done
          { started_at = start; finished_at = start +. finish; mode;
            per_device_done =
              List.map (fun (d, t) -> (d, start +. t)) downtimes;
            attempts = 1; rolled_back = false })

(** Modelled completion latency of a plan in hitless mode (no sim). *)
let hitless_latency ~devices plan =
  Compiler.Plan.duration plan ~times_of:(fun d ->
      match List.find_opt (fun dev -> Targets.Device.id dev = d) devices with
      | Some dev -> Targets.Device.reconfig_times dev
      | None -> (Targets.Arch.profile_of_kind Targets.Arch.Drmt).Targets.Arch.reconfig)
