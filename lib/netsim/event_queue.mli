(** Binary min-heap of timestamped events over unboxed parallel arrays.

    Keys are kept in a flat [float array] (unboxed), so pushing an
    event allocates nothing and heap comparisons read raw floats —
    this is the hot path under every simulated packet. Ties on the
    timestamp break by the caller-supplied [seq], making simulations
    deterministic: two events scheduled for the same instant fire in
    the order they were scheduled. *)

type t

val create : unit -> t

val is_empty : t -> bool

(** Number of pending events. *)
val length : t -> int

(** [push t ~time ~seq thunk] inserts an event. [seq] orders ties on
    [time] and must be unique per queue (the simulation's scheduling
    sequence). *)
val push : t -> time:float -> seq:int -> (unit -> unit) -> unit

(** Timestamp of the earliest event, [infinity] when empty. Read it
    before [pop_exn] to learn the popped event's time. *)
val min_time : t -> float

(** Remove the earliest event and return its thunk.
    @raise Invalid_argument on an empty queue. *)
val pop_exn : t -> unit -> unit
