(* Bechamel microbenchmarks for the hot paths underneath the
   experiments: per-packet interpretation (reference interpreter vs the
   closure-compiled fast path), sketch updates, map encodings, rule
   matching, event-queue churn, and placement.

   The interpreter benchmarks come in reference/compiled pairs; after
   the raw ns/op table a speedup section reports compiled-path gains.
   [run ~quota ~out ()] supports a short CI quota and a JSON dump of
   the estimates (see BENCH_micro.json for the checked-in baseline). *)

open Bechamel
open Toolkit

let mk_packet () =
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
      Netsim.Packet.ipv4 ~src:1L ~dst:2L ();
      Netsim.Packet.tcp ~sport:100L ~dport:200L () ]

(* Reference/compiled pairs share a program shape but get separate envs
   so map mutations in one engine cannot warm or skew the other. *)

let l2l3_env () =
  let prog = Apps.L2l3.program () in
  let env = Flexbpf.Interp.create_env prog in
  Flexbpf.Interp.install_rule env "ipv4_lpm"
    (Apps.L2l3.route_rule ~host_id:2 ~port:1);
  (prog, env)

let test_interp_table =
  let prog, env = l2l3_env () in
  let pkt = mk_packet () in
  Test.make ~name:"interp: l2l3 pipeline per packet" (Staged.stage (fun () ->
      ignore (Flexbpf.Interp.run env prog pkt)))

let test_compiled_table =
  let prog, env = l2l3_env () in
  let compiled = Flexbpf.Compile.compile env prog in
  let pkt = mk_packet () in
  Test.make ~name:"compiled: l2l3 pipeline per packet" (Staged.stage (fun () ->
      ignore (Flexbpf.Compile.run compiled pkt)))

let cms_cfg = { Apps.Cm_sketch.depth = 3; width = 1024; map_name = "cms" }

let test_sketch_update =
  let prog = Apps.Cm_sketch.program ~cfg:cms_cfg () in
  let env = Flexbpf.Interp.create_env prog in
  let pkt = mk_packet () in
  Test.make ~name:"interp: count-min update (3 rows)" (Staged.stage (fun () ->
      ignore (Flexbpf.Interp.run env prog pkt)))

let test_compiled_sketch_update =
  let prog = Apps.Cm_sketch.program ~cfg:cms_cfg () in
  let env = Flexbpf.Interp.create_env prog in
  let compiled = Flexbpf.Compile.compile env prog in
  let pkt = mk_packet () in
  Test.make ~name:"compiled: count-min update (3 rows)" (Staged.stage (fun () ->
      ignore (Flexbpf.Compile.run compiled pkt)))

(* -- Static WCET certificate vs measured work ---------------------------- *)

(* Replay the interpreter benchmark pairs with the work meter
   ([Interp.env.work], same per-statement weights as the certificate)
   and compare per-packet executed work units against the certified
   static WCET ([Dataflow.Cost]). The certificate is a worst-case
   bound, so measured <= certified must hold; the ablation also checks
   the bound is tight — within 2x of what these workloads actually
   execute (see EXPERIMENTS.md). *)
let static_cost_ablation () =
  let cases =
    [ ("l2l3 pipeline", fun () -> l2l3_env ());
      ( "count-min update (3 rows)",
        fun () ->
          let prog = Apps.Cm_sketch.program ~cfg:cms_cfg () in
          (prog, Flexbpf.Interp.create_env prog) ) ]
  in
  print_endline "\n-- static WCET certificate vs measured work (interp) --";
  List.iter
    (fun (name, mk) ->
      let prog, env = mk () in
      let pkt = mk_packet () in
      let runs = 1000 in
      let before = env.Flexbpf.Interp.work in
      for _ = 1 to runs do
        ignore (Flexbpf.Interp.run env prog pkt)
      done;
      let measured =
        float_of_int (env.Flexbpf.Interp.work - before) /. float_of_int runs
      in
      let cert =
        (Flexbpf.Dataflow.Cost.analyze prog).Flexbpf.Dataflow.Cost.cc_certified
      in
      let ratio = float_of_int cert /. Float.max 1e-9 measured in
      let sound = measured <= float_of_int cert +. 1e-9 in
      let tight = ratio <= 2.0 +. 1e-9 in
      Printf.printf
        "%-42s certified %3d  measured %6.1f  bound %.2fx %s\n" name cert
        measured ratio
        (match (sound, tight) with
         | true, true -> "(sound, within 2x)"
         | true, false -> "(sound, LOOSE)"
         | false, _ -> "(UNSOUND)"))
    cases

(* (reference, compiled) benchmark names reported as speedups. *)
let speedup_pairs =
  [ ("interp: l2l3 pipeline per packet", "compiled: l2l3 pipeline per packet");
    ("interp: count-min update (3 rows)", "compiled: count-min update (3 rows)");
    ( "event queue: boxed-record heap push+pop x64",
      "event queue: push+pop x64" ) ]

let state_bench enc name =
  let st = Flexbpf.State.create ~name:"m" ~size:4096 enc in
  let i = ref 0L in
  Test.make ~name (Staged.stage (fun () ->
      i := Int64.rem (Int64.add !i 7L) 4096L;
      ignore (Flexbpf.State.incr st [ !i ] 1L)))

let test_state_registers = state_bench Flexbpf.State.Registers "state: registers incr"
let test_state_flow = state_bench Flexbpf.State.Flow_state "state: flow_state incr"
let test_state_stateful =
  state_bench Flexbpf.State.Stateful_table "state: stateful_table incr"

(* Reference implementation for the event-queue pair: the boxed-record
   binary heap the engine used before the flat float-array layout. Each
   element is a 3-field record, so every comparison chases a pointer and
   loads a boxed-ish float; kept here (not in netsim) purely as the
   baseline side of the speedup measurement. *)
module Boxed_queue = struct
  type event = { time : float; seq : int; thunk : unit -> unit }
  type t = { mutable heap : event array; mutable size : int }

  let dummy = { time = infinity; seq = 0; thunk = ignore }
  let create () = { heap = Array.make 64 dummy; size = 0 }
  let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push t e =
    if t.size = Array.length t.heap then begin
      let h = Array.make (2 * t.size) dummy in
      Array.blit t.heap 0 h 0 t.size;
      t.heap <- h
    end;
    t.heap.(t.size) <- e;
    t.size <- t.size + 1;
    let i = ref (t.size - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before t.heap.(!i) t.heap.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = t.heap.(p) in
      t.heap.(p) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := p
    done

  let pop t =
    if t.size = 0 then None
    else begin
      let root = t.heap.(0) in
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      t.heap.(t.size) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!m) then m := l;
        if r < t.size && before t.heap.(r) t.heap.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tmp = t.heap.(!m) in
          t.heap.(!m) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !m
        end
      done;
      Some root
    end
end

let test_event_queue_boxed =
  Test.make ~name:"event queue: boxed-record heap push+pop x64"
    (Staged.stage (fun () ->
         let q = Boxed_queue.create () in
         for i = 0 to 63 do
           Boxed_queue.push q
             { Boxed_queue.time = float_of_int (i * 7919 mod 64); seq = i;
               thunk = ignore }
         done;
         while Boxed_queue.pop q <> None do () done))

let test_event_queue =
  Test.make ~name:"event queue: push+pop x64" (Staged.stage (fun () ->
      let q = Netsim.Event_queue.create () in
      for i = 0 to 63 do
        Netsim.Event_queue.push q ~time:(float_of_int (i * 7919 mod 64)) ~seq:i
          ignore
      done;
      while not (Netsim.Event_queue.is_empty q) do
        ignore (Netsim.Event_queue.pop_exn q : unit -> unit)
      done))

let test_placement =
  Test.make ~name:"compiler: place 20-table program" (Staged.stage (fun () ->
      let path = Common.mk_path ~switches:3 () in
      let prog =
        Flexbpf.Builder.program "p"
          (List.init 20 (fun i -> Common.exact_table ~size:512 (Printf.sprintf "t%d" i)))
      in
      match Runtime.Reconfig.place ~path prog with
      | Ok _ -> ()
      | Error _ -> ()))

let test_patch_apply =
  let base = Apps.L2l3.program () in
  let patch =
    Flexbpf.Patch.v "p"
      [ Flexbpf.Patch.Replace_element
          (Flexbpf.Patch.Sel_name "ttl_guard", Apps.L2l3.ttl_guard) ]
  in
  Test.make ~name:"patch: apply+typecheck" (Staged.stage (fun () ->
      ignore (Flexbpf.Patch.apply patch base)))

let benchmarks =
  [ test_interp_table; test_compiled_table; test_sketch_update;
    test_compiled_sketch_update; test_state_registers; test_state_flow;
    test_state_stateful; test_event_queue_boxed; test_event_queue;
    test_placement; test_patch_apply ]

let strip_group name =
  String.concat "" (String.split_on_char '/' name |> List.tl)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path estimates speedups =
  let oc = open_out path in
  output_string oc "{\n  \"ns_per_op\": {\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) est
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  output_string oc "  },\n  \"speedup\": {\n";
  List.iteri
    (fun i (name, x) ->
      Printf.fprintf oc "    \"%s\": %.2f%s\n" (json_escape name) x
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  output_string oc "  }\n}\n";
  close_out oc

(* -- Regression gate ---------------------------------------------------- *)

(* Parse the "speedup" section of a BENCH_micro.json baseline. The file
   is our own write_json output, so a line-oriented scan is enough (no
   JSON library in the container): entries look like
     "interp: l2l3 pipeline per packet": 5.52,
   inside the object that follows the "speedup" key. *)
let read_baseline_speedups path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let in_speedup = ref false in
  let entries = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line >= 9 && String.sub line 0 9 = "\"speedup\"" then
        in_speedup := true
      else if !in_speedup then
        if line = "}" || line = "}," then in_speedup := false
        else
          (* "name": value[,] *)
          match String.index_opt line '"' with
          | Some 0 ->
            (match String.index_from_opt line 1 '"' with
             | Some close ->
               let name = String.sub line 1 (close - 1) in
               let rest = String.sub line (close + 1) (String.length line - close - 1) in
               let num =
                 String.trim rest |> fun s ->
                 (if String.length s > 0 && s.[0] = ':' then
                    String.sub s 1 (String.length s - 1)
                  else s)
                 |> String.trim
                 |> fun s ->
                 if String.length s > 0 && s.[String.length s - 1] = ',' then
                   String.sub s 0 (String.length s - 1)
                 else s
               in
               (match float_of_string_opt num with
                | Some v -> entries := (name, v) :: !entries
                | None -> ())
             | None -> ())
          | _ -> ())
    lines;
  List.rev !entries

(* Compare measured speedups against a checked-in baseline. A benchmark
   regresses when its compiled-vs-interpreter speedup falls below
   baseline * (1 - tolerance); missing measurements also fail so a
   silently-dropped pair cannot green the gate. Returns true iff all
   baseline entries pass. *)
let check_speedups ~baseline_path ~tolerance measured =
  let baseline = read_baseline_speedups baseline_path in
  if baseline = [] then begin
    Printf.printf "bench gate: no speedup entries found in %s\n" baseline_path;
    false
  end
  else begin
    Printf.printf "\n-- bench regression gate (tolerance %.0f%%) --\n"
      (tolerance *. 100.);
    List.fold_left
      (fun ok (name, base) ->
        let floor = base *. (1. -. tolerance) in
        match List.assoc_opt name measured with
        | Some m when m >= floor ->
          Printf.printf "PASS %-42s %.2fx (baseline %.2fx, floor %.2fx)\n"
            name m base floor;
          ok
        | Some m ->
          Printf.printf "FAIL %-42s %.2fx < floor %.2fx (baseline %.2fx)\n"
            name m floor base;
          false
        | None ->
          Printf.printf "FAIL %-42s not measured (baseline %.2fx)\n" name base;
          false)
      true baseline
  end

(** [quota] is seconds of measurement per benchmark (default 0.5; CI
    uses a shorter one). [out] dumps estimates and speedups as JSON.
    [check] compares measured speedups against a baseline JSON and
    exits non-zero past [tolerance] (default 0.35) — the CI bench
    regression gate. *)
let run ?(quota = 0.5) ?out ?check ?(tolerance = 0.35) () =
  print_endline "\n== microbenchmarks (bechamel) ==";
  static_cost_ablation ();
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            let name = strip_group name in
            estimates := (name, est) :: !estimates;
            Printf.printf "%-42s %12.1f ns/op\n" name est
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        results)
    benchmarks;
  let estimates = List.rev !estimates in
  let speedups =
    List.filter_map
      (fun (ref_name, fast_name) ->
        match (List.assoc_opt ref_name estimates,
               List.assoc_opt fast_name estimates) with
        | Some r, Some f when f > 0. -> Some (ref_name, r /. f)
        | _ -> None)
      speedup_pairs
  in
  if speedups <> [] then begin
    print_endline "\n-- fast paths vs reference implementations --";
    List.iter
      (fun (name, x) -> Printf.printf "%-42s %10.1fx\n" name x)
      speedups
  end;
  (match out with
   | Some path ->
     write_json path estimates speedups;
     Printf.printf "\nwrote %s\n" path
   | None -> ());
  (match check with
   | Some baseline_path ->
     let ok = check_speedups ~baseline_path ~tolerance speedups in
     flush stdout;
     if not ok then exit 1
   | None -> ());
  flush stdout
