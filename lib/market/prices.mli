(** Per-resource-kind unit prices, iterated against capacity.

    The market prices the four dimensions of {!Targets.Resource.t}
    independently: a price book holds one unit price per resource kind,
    derived from immutable snapshot occupancy and updated by
    multiplicative tâtonnement — excess demand raises a price, slack
    lowers it toward the floor — under a fixed convergence budget.
    Everything here is pure arithmetic over snapshots; books never touch
    a device. The auction keeps one book per device architecture, so
    prices are per-(architecture, resource-kind) as in the
    CloudNetworking price-iteration scheme the design ports. *)

type rkind = Sram | Tcam | Actions | Instructions

val all_rkinds : rkind list
val rkind_to_string : rkind -> string

(** Quantity of one kind inside a resource vector, in priced units
    (SRAM and TCAM are priced per KiB so the four dimensions have
    comparable magnitudes; slots and instructions per unit). *)
val units : rkind -> Targets.Resource.t -> float

type config = {
  cfg_floor : float; (* minimum unit price; slack goods settle here *)
  cfg_gamma : float; (* tâtonnement step size *)
  cfg_eps : float; (* relative excess tolerated as "converged" *)
  cfg_budget : int; (* max price iterations per clearing *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
val config : t -> config
val price : t -> rkind -> float
val prices : t -> (rkind * float) list

(** Cost of a demand vector at current prices: Σ_k price_k · units_k. *)
val cost : t -> Targets.Resource.t -> float

(** {2 Occupancy} *)

(** Total capacity a snapshot's shape offers, as one vector: staged
    shapes sum their stages, tiled shapes count hash/index tiles as
    SRAM and TCAM tiles as TCAM on top of the pool. *)
val capacity_of_snapshot : Targets.Resource.snapshot -> Targets.Resource.t

val capacity_of_snapshots :
  (string * Targets.Resource.snapshot) list -> Targets.Resource.t

val used_of_snapshots :
  (string * Targets.Resource.snapshot) list -> Targets.Resource.t

(** Seed prices from occupancy: each kind starts at
    floor / (1 - min(0.95, utilization)) — a congestion prior that
    makes a nearly-full dimension expensive before any bidding. *)
val seed_from_occupancy :
  t -> used:Targets.Resource.t -> capacity:Targets.Resource.t -> unit

(** {2 Tâtonnement} *)

(** One multiplicative update against a demand vector:
    p_k ← clamp(p_k · (1 + γ·(ρ_k − 1))) with ρ_k = demand_k/capacity_k,
    clamped to [½p_k, 2p_k] and floored. Zero-capacity kinds are
    skipped. Returns the maximum relative excess max_k (ρ_k − 1) seen
    {e before} the update. Under excess demand (ρ_k > 1) the update is
    strictly increasing in kind k; under slack it is strictly
    decreasing until the floor. *)
val step :
  t -> capacity:Targets.Resource.t -> demand:Targets.Resource.t -> float

(** Is the book at rest for this demand: every priced kind either
    balances within eps or sits at the floor with slack (a free good)? *)
val converged :
  t -> capacity:Targets.Resource.t -> demand:Targets.Resource.t -> bool

type outcome = {
  out_rounds : int; (* iterations spent *)
  out_converged : bool;
  out_excess : float; (* max_k (ρ_k − 1) at exit *)
  out_prices : (rkind * float) list;
}

(** Iterate [step] against a price-dependent demand curve until
    [converged] or the budget is exhausted. [demand_at] must be
    non-increasing in each price for convergence to be meaningful (the
    tenant demand curves are). *)
val iterate :
  t -> capacity:Targets.Resource.t ->
  demand_at:(t -> Targets.Resource.t) -> outcome

val pp : Format.formatter -> t -> unit
