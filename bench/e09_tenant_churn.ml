(* E9 — Tenant churn: live injection/removal keeps the network
   disruption-free (§1.1, §3).

   "The number of virtual networks and their needs change rapidly due
   to tenant churn. FlexNet allows tenants to inject customer-specific
   network extensions as they arrive; departures trigger program removal."

   Poisson tenant arrivals with exponential sojourn times against a
   live network carrying background traffic. Reported: admissions,
   departures, mean injection plan duration, and background packets
   lost (must be zero — changes are hitless). *)

let run_case ~lambda =
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> failwith e);
  let sim = Flexnet.sim net in
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:2_000. ~start:0. ~stop:4.0 ~send:(fun () ->
      incr sent;
      Flexnet.send_h0 net
        (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id
           ~born:(Netsim.Sim.now sim)));
  let rng = Random.State.make [| 31 |] in
  let counter = ref 0 in
  let durations = Netsim.Stats.Summary.create () in
  let admitted = ref 0 and departed = ref 0 and rejected = ref 0 in
  let churn = Netsim.Traffic.create ~seed:77 sim in
  Netsim.Traffic.poisson churn ~lambda ~start:0.1 ~stop:3.5 ~send:(fun () ->
      incr counter;
      let name = Printf.sprintf "tenant%d" !counter in
      let ext =
        if Random.State.bool rng then
          Apps.Firewall.program ~owner:name ~boundary:100 ()
        else
          Apps.Nat.program ~owner:name ~public:(900 + !counter)
            ~subnet_lo:10 ~subnet_hi:20 ()
      in
      match Flexnet.add_tenant net ext with
      | Ok (_, report) ->
        incr admitted;
        Netsim.Stats.Summary.add durations report.Compiler.Incremental.duration;
        (* departure after an exponential sojourn *)
        let sojourn = Netsim.Traffic.exponential churn ~mean:0.8 in
        Netsim.Sim.after sim sojourn (fun () ->
            match Flexnet.remove_tenant net name with
            | Ok _ -> incr departed
            | Error _ -> ())
      | Error _ -> incr rejected);
  Flexnet.run net ~until:5.0;
  let stats = Flexnet.stats net in
  [ Printf.sprintf "%.0f/s" lambda;
    Report.i !admitted;
    Report.i !rejected;
    Report.i !departed;
    Report.ms (Netsim.Stats.Summary.mean durations);
    Report.i !sent;
    Report.i (!sent - stats.Flexnet.delivered_h1) ]

(* Admission-policy comparison on the shared churn workload
   (Common.churn_workload, the E18 generator): the same 200 arrivals —
   programs, sojourns, budgets, SLAs all fixed by the seed — admitted
   once by the market auction and once by the fixed-threshold policy.
   Alongside the outcome counts, the [tenants.admit_latency_ms]
   histogram gives wall-clock admission percentiles (satellite of the
   tenant-economy PR: e9 reports latency shape, not just counts). *)
let policy_row label (s : Common.churn_stats) =
  [ label;
    Report.i s.Common.ch_arrivals;
    Report.i s.Common.ch_admitted;
    Report.i s.Common.ch_deferred;
    Report.i s.Common.ch_preempted;
    Report.i s.Common.ch_rejected;
    Report.pct s.Common.ch_mean_util;
    Printf.sprintf "%.2f" s.Common.ch_lat_p50;
    Printf.sprintf "%.2f" s.Common.ch_lat_p99 ]

let run_policy_comparison () =
  let workload () = Common.churn_workload ~seed:31 ~mean_sojourn:4.0 200 in
  (* single switch, as in E18: the offered load must overload the path
     for the policies to differ *)
  let market, _ =
    Common.run_market_churn ~switches:1 ~lambda:60. (workload ())
  in
  let threshold =
    Common.run_threshold_churn ~switches:1 ~lambda:60. (workload ())
  in
  Report.print ~id:"E9b" ~title:"admission policy: market vs fixed threshold"
    ~claim:
      "on an identical overloaded churn stream, price-driven admission \
       sustains higher bottleneck utilization than a fixed-threshold \
       policy by deferring priced-out bidders instead of rejecting, at \
       comparable admission latency (see E18 for the full economy)"
    ~header:
      [ "policy"; "arrivals"; "admitted"; "deferred"; "preempted";
        "rejected"; "mean-util"; "p50(ms)"; "p99(ms)" ]
    [ policy_row "market" market; policy_row "threshold" threshold ]

let run () =
  let rows = List.map (fun lambda -> run_case ~lambda) [ 2.; 5.; 10. ] in
  Report.print ~id:"E9" ~title:"tenant churn with live background traffic"
    ~claim:
      "tenant extensions are admitted, isolated, and removed at runtime with \
       sub-second plans and zero background-traffic loss"
    ~header:
      [ "arrival-rate"; "admitted"; "rejected"; "departed"; "mean-inject(ms)";
        "bg-sent"; "bg-lost" ]
    rows;
  run_policy_comparison ()
