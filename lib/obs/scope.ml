(** An observability scope: one metrics registry plus one tracer
    sharing a clock. *)

type t = { metrics : Metrics.t; trace : Trace.t }

let create ?clock () =
  { metrics = Metrics.create (); trace = Trace.create ?clock () }

let set_clock t clock = Trace.set_clock t.trace clock
let metrics t = t.metrics
let trace t = t.trace

let reset t =
  Metrics.reset t.metrics;
  Trace.reset t.trace
