(** Incremental recompilation (§3.3).

    Runtime changes are compiled "in a least-intrusive manner": from a
    live deployment, a patch produces a reconfiguration plan touching
    only the changed elements and preferring {e maximally adjacent}
    placements — the device an element already lives on, or the devices
    hosting its pipeline neighbours. [full_recompile] is the
    compile-time baseline: drain, reflash every device, redeploy. *)

type deployment = {
  mutable dep_prog : Flexbpf.Ast.program;
  mutable dep_placement : Placement.t;
}

type report = {
  plan : Plan.t;
  moved_elements : int; (* installed, removed, or relocated *)
  touched_devices : string list;
  duration : float; (* parallel wall-clock model *)
  total_work : float; (* serial op time: intrusiveness *)
}

(** Deploy a program fresh onto a path. *)
val deploy :
  path:Targets.Device.t list -> Flexbpf.Ast.program ->
  (deployment, Placement.failure) result

type error =
  | Patch_error of string
  | Placement_error of Placement.failure

val pp_error : Format.formatter -> error -> unit

(** Apply a patch to a live deployment: on success the devices have
    been reconfigured (replacements carry their map state) and the
    report gives the plan and its cost model. [prefer_adjacent:false]
    is the A1 ablation baseline, spreading changes away from existing
    placements. *)
val apply_patch :
  ?prefer_adjacent:bool -> deployment -> Flexbpf.Patch.t ->
  (report * Flexbpf.Patch.diff, error) result

(** Tear everything down and redeploy the new program from scratch; the
    duration model is drain + full reflash on every touched device. *)
val full_recompile :
  deployment -> Flexbpf.Ast.program -> (report, error) result
