(* E10 — Energy-aware consolidation with fungible resources (§3.3).

   "FlexNet is able to shuffle resources around and optimize for the
   current workload regarding network energy consumption."

   Six program elements are deployed *spread*, one per device across a
   slice of three dRMT switches, two SmartNICs, and a host stack (the
   high-load configuration). At each load level the controller policy
   decides: above 50% load keep the spread deployment (throughput
   headroom); below, consolidate elements onto the fewest devices and
   power the emptied ones down. Energy integrated over a 1-hour window. *)

open Flexbpf.Builder

let devices () = Common.mk_path ~arch:Targets.Arch.Drmt ~switches:3 ()

let workload_program () =
  program "workload"
    (List.init 6 (fun i -> Common.exact_table ~size:30_000 (Printf.sprintf "w%d" i)))

(* Spread deployment: element i pinned to device i+1 (skip h0). *)
let deploy_spread path =
  let prog = workload_program () in
  List.iteri
    (fun i el ->
      let dev = List.nth path (1 + i) in
      match Targets.Device.install dev ~ctx:prog ~order:i el with
      | Ok _ -> ()
      | Error r -> failwith (Targets.Device.reject_to_string r))
    prog.Flexbpf.Ast.pipeline;
  { Compiler.Placement.path;
    where =
      List.mapi
        (fun i el -> (Flexbpf.Ast.element_name el, List.nth path (1 + i)))
        prog.Flexbpf.Ast.pipeline;
    prog }

let run_case ~load_fraction =
  let seconds = 3600. in
  let pps = load_fraction *. 1e6 in
  let energy devices =
    List.fold_left
      (fun acc d -> acc +. Targets.Device.energy_joules d ~seconds ~pps)
      0. devices
  in
  (* static baseline: spread, everything always on *)
  let static_path = devices () in
  ignore (deploy_spread static_path);
  let static_energy = energy static_path in
  (* policy-driven deployment *)
  let path = devices () in
  let placement = deploy_spread path in
  let consolidate = load_fraction < 0.5 in
  let report =
    if consolidate then Some (Compiler.Energy.consolidate placement) else None
  in
  let managed_energy = energy path in
  let watts_before, watts_after, off, moves =
    match report with
    | Some r ->
      ( r.Compiler.Energy.watts_before, r.Compiler.Energy.watts_after,
        List.length r.Compiler.Energy.powered_off,
        List.length r.Compiler.Energy.moves )
    | None ->
      let w = Compiler.Energy.total_watts path in
      (w, w, 0, 0)
  in
  [ Report.pct load_fraction;
    (if consolidate then "consolidate" else "stay spread");
    Report.f1 watts_before;
    Report.f1 watts_after;
    Report.i off;
    Report.i moves;
    Report.f2 (static_energy /. 3.6e6);
    Report.f2 (managed_energy /. 3.6e6);
    Report.pct (1. -. (managed_energy /. static_energy)) ]

let run () =
  let rows =
    List.map (fun lf -> run_case ~load_fraction:lf) [ 1.0; 0.6; 0.3; 0.1 ]
  in
  Report.print ~id:"E10" ~title:"energy: load-aware consolidation (1h window)"
    ~claim:
      "with fungible resources, program elements consolidate onto fewer \
       devices at low load and idle devices power down, cutting network \
       energy; at high load the spread deployment is kept for throughput"
    ~header:
      [ "load"; "policy"; "watts-before"; "watts-after"; "devices-off";
        "moves"; "static(kWh)"; "managed(kWh)"; "energy-saved" ]
    rows
