(** Incremental recompilation (§3.3).

    Runtime changes are compiled "in a least-intrusive manner":
    starting from a live deployment, a patch produces a reconfiguration
    plan that touches only the changed elements and prefers *maximally
    adjacent* placements — the same device an element already lives on,
    or the devices hosting its pipeline neighbours — so resources are
    not reshuffled across the network. [full_recompile] is the
    compile-time baseline: drain, reflash every device, redeploy. *)

open Flexbpf

type deployment = {
  mutable dep_prog : Ast.program;
  mutable dep_placement : Placement.t;
}

type report = {
  plan : Plan.t;
  moved_elements : int; (* elements installed, removed, or relocated *)
  touched_devices : string list;
  duration : float; (* parallel wall-clock model *)
  total_work : float; (* serial op time: intrusiveness *)
}

let times_of_path path dev_id =
  match List.find_opt (fun d -> Targets.Device.id d = dev_id) path with
  | Some d -> Targets.Device.reconfig_times d
  | None -> (Targets.Arch.profile_of_kind Targets.Arch.Drmt).Targets.Arch.reconfig

let report_of_plan ~path plan =
  let times_of = times_of_path path in
  { plan;
    moved_elements =
      List.length
        (List.filter
           (function
             | Plan.Install _ | Plan.Remove _ | Plan.Move _ -> true
             | _ -> false)
           plan.Plan.ops);
    touched_devices = List.sort_uniq compare (List.map Plan.op_device plan.Plan.ops);
    duration = Plan.duration ~times_of plan;
    total_work = Plan.total_work ~times_of plan }

(** Deploy a program fresh onto a path. *)
let deploy ~path prog =
  Result.map
    (fun placement -> { dep_prog = prog; dep_placement = placement })
    (Placement.place ~path prog)

type error =
  | Patch_error of string
  | Placement_error of Placement.failure

let pp_error ppf = function
  | Patch_error s -> Fmt.pf ppf "patch: %s" s
  | Placement_error f -> Placement.pp_failure ppf f

(* Window of admissible path positions for an element at pipeline index
   [idx] of [prog], given current placements: bounded by the devices of
   the nearest placed predecessor and successor. *)
let adjacency_window dep prog idx =
  let path = dep.dep_placement.Placement.path in
  let pos_of name =
    Option.map
      (fun d -> Placement.device_position path d)
      (Placement.where dep.dep_placement name)
  in
  let names = List.map Ast.element_name prog.Ast.pipeline in
  let arr = Array.of_list names in
  let n = Array.length arr in
  let rec pred i = if i < 0 then None else
      match pos_of arr.(i) with Some p -> Some p | None -> pred (i - 1)
  in
  let rec succ i = if i >= n then None else
      match pos_of arr.(i) with Some p -> Some p | None -> succ (i + 1)
  in
  let lo = Option.value (pred (idx - 1)) ~default:0 in
  let hi = Option.value (succ (idx + 1)) ~default:(List.length path - 1) in
  (lo, max lo hi)

(* Devices in the adjacency window ordered by distance from the window
   edges (prev's device first, then next's, then between). With
   [prefer_adjacent:false] (the ablation baseline) the interior is
   preferred instead, spreading changes away from existing placements. *)
let window_candidates ?(prefer_adjacent = true) dep (lo, hi) u =
  let path = dep.dep_placement.Placement.path in
  let in_window =
    List.filteri (fun i _ -> i >= lo && i <= hi) path
    |> List.filter (fun d ->
           Lowering.class_allows u.Lowering.u_class (Targets.Device.kind d))
  in
  let scored =
    List.map
      (fun d ->
        let p = Placement.device_position path d in
        let edge_distance = min (p - lo) (hi - p) in
        ((if prefer_adjacent then edge_distance else -edge_distance), d))
      in_window
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) scored)

let snapshot_maps dev element =
  Compose.element_maps element
  |> List.sort_uniq compare
  |> List.filter_map (fun name ->
         Option.map
           (fun st -> (name, Flexbpf.State.snapshot st))
           (Targets.Device.map_state dev name))

let restore_maps dev snaps =
  List.iter
    (fun (name, snap) -> ignore (Targets.Device.load_map_snapshot dev name snap))
    snaps

(* Install [element] of [prog] at [idx], trying window candidates.
   Preserves map state via [carried] snapshots when provided. *)
let install_in_window ?prefer_adjacent dep prog idx element ~carried =
  let u_class, u_cycles = Lowering.classify element in
  let u =
    { Lowering.u_element = element; u_index = idx; u_ctx = prog; u_class;
      u_cycles }
  in
  let window = adjacency_window dep prog idx in
  let rec attempt tried = function
    | [] -> Error { Placement.failed_unit = u; attempts = List.rev tried }
    | dev :: rest ->
      (match Targets.Device.install dev ~ctx:prog ~order:idx element with
       | Ok _ ->
         restore_maps dev carried;
         dep.dep_placement.Placement.where <-
           (Ast.element_name element, dev)
           :: dep.dep_placement.Placement.where;
         Ok dev
       | Error reject ->
         attempt ((Targets.Device.id dev, reject) :: tried) rest)
  in
  attempt [] (window_candidates ?prefer_adjacent dep window u)

let forget dep name =
  dep.dep_placement.Placement.where <-
    List.filter (fun (n, _) -> n <> name) dep.dep_placement.Placement.where

(* Parser diffs applied to every device hosting part of the program. *)
let parser_ops dep ~(old_prog : Ast.program) ~(new_prog : Ast.program) =
  let devices =
    List.sort_uniq compare
      (List.map snd dep.dep_placement.Placement.where)
  in
  let removed =
    List.filter
      (fun r ->
        not
          (List.exists (fun x -> x.Ast.pr_name = r.Ast.pr_name) new_prog.parser))
      old_prog.parser
  in
  let added =
    List.filter
      (fun r ->
        not
          (List.exists (fun x -> x.Ast.pr_name = r.Ast.pr_name) old_prog.parser))
      new_prog.parser
  in
  List.concat_map
    (fun dev ->
      List.map
        (fun r ->
          ignore (Targets.Device.remove_parser_rule dev r.Ast.pr_name);
          Plan.Remove_parser
            { device = Targets.Device.id dev; rule_name = r.Ast.pr_name })
        removed
      @ List.map
          (fun r ->
            (match Targets.Device.add_parser_rule dev r with
             | Ok () | Error _ -> ());
            Plan.Add_parser { device = Targets.Device.id dev; rule = r })
          added)
    devices

(** Apply a patch to a live deployment. On success the devices have been
    reconfigured and the report carries the plan and its cost model. *)
let apply_patch ?prefer_adjacent dep patch =
  match Patch.apply patch dep.dep_prog with
  | Error (`Patch e) -> Error (Patch_error (Fmt.str "%a" Patch.pp_error e))
  | Error (`Ill_typed es) ->
    Error
      (Patch_error
         (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Typecheck.pp_error) es))
  | Ok (new_prog, diff) ->
    let old_prog = dep.dep_prog in
    let ops = ref [] in
    let emit op = ops := op :: !ops in
    let fail = ref None in
    (* 1. removals *)
    List.iter
      (fun name ->
        match Placement.where dep.dep_placement name with
        | Some dev ->
          ignore (Targets.Device.uninstall dev name);
          forget dep name;
          emit (Plan.Remove { device = Targets.Device.id dev; element_name = name })
        | None -> ())
      diff.Patch.removed;
    (* 2. replacements: reinstall in place, carrying state *)
    List.iter
      (fun name ->
        if !fail = None then
          match Placement.where dep.dep_placement name with
          | None -> ()
          | Some dev ->
            let element = Option.get (Ast.find_element new_prog name) in
            let idx =
              Option.get
                (List.find_index
                   (fun e -> Ast.element_name e = name)
                   new_prog.Ast.pipeline)
            in
            let carried = snapshot_maps dev (Option.get (Ast.find_element old_prog name)) in
            ignore (Targets.Device.uninstall dev name);
            forget dep name;
            (match
               install_in_window ?prefer_adjacent dep new_prog idx element
                 ~carried
             with
             | Ok new_dev ->
               if Targets.Device.id new_dev = Targets.Device.id dev then
                 emit
                   (Plan.Install
                      { device = Targets.Device.id new_dev; element;
                        ctx = new_prog; order = idx })
               else
                 emit
                   (Plan.Move
                      { from_device = Targets.Device.id dev;
                        to_device = Targets.Device.id new_dev; element;
                        ctx = new_prog; order = idx })
             | Error f -> fail := Some f))
      diff.Patch.modified;
    (* 3. additions, in pipeline order *)
    List.iteri
      (fun idx el ->
        let name = Ast.element_name el in
        if !fail = None && List.mem name diff.Patch.added then
          match
            install_in_window ?prefer_adjacent dep new_prog idx el ~carried:[]
          with
          | Ok dev ->
            emit
              (Plan.Install
                 { device = Targets.Device.id dev; element = el; ctx = new_prog;
                   order = idx })
          | Error f -> fail := Some f)
      new_prog.Ast.pipeline;
    (match !fail with
     | Some f -> Error (Placement_error f)
     | None ->
       (* 4. parser changes *)
       let pops =
         if diff.Patch.parser_changed then parser_ops dep ~old_prog ~new_prog
         else []
       in
       List.iter emit pops;
       dep.dep_prog <- new_prog;
       let plan = Plan.v patch.Patch.patch_name (List.rev !ops) in
       Ok (report_of_plan ~path:dep.dep_placement.Placement.path plan, diff))

(** Compile-time baseline: tear everything down and redeploy the new
    program from scratch. The duration model is drain + full reflash on
    every touched device (this is what makes it a disruption, not just a
    bigger plan). *)
let full_recompile dep new_prog =
  let path = dep.dep_placement.Placement.path in
  let old_where = dep.dep_placement.Placement.where in
  Placement.unplace dep.dep_placement;
  match Placement.place ~path new_prog with
  | Error f ->
    (* restore the old deployment so the caller still has a live net *)
    (match Placement.place ~path dep.dep_prog with
     | Ok p -> dep.dep_placement <- p
     | Error _ -> ());
    Error (Placement_error f)
  | Ok placement ->
    dep.dep_placement <- placement;
    dep.dep_prog <- new_prog;
    let ops =
      List.map
        (fun (name, dev) ->
          Plan.Remove { device = Targets.Device.id dev; element_name = name })
        old_where
      @ List.map
          (fun (name, dev) ->
            Plan.Install
              { device = Targets.Device.id dev;
                element = Option.get (Ast.find_element new_prog name);
                ctx = new_prog;
                order = 0 })
          placement.Placement.where
    in
    let plan = Plan.v "full-recompile" ops in
    let touched =
      List.sort_uniq compare
        (List.map (fun (_, d) -> Targets.Device.id d)
           (old_where @ placement.Placement.where))
    in
    let reflash_time =
      List.fold_left
        (fun acc dev_id ->
          let times = times_of_path path dev_id in
          Float.max acc
            (times.Targets.Arch.drain_time +. times.Targets.Arch.t_full_reflash))
        0. touched
    in
    Ok
      { plan;
        moved_elements = List.length old_where + List.length placement.Placement.where;
        touched_devices = touched;
        duration = reflash_time;
        total_work =
          List.fold_left
            (fun acc dev_id ->
              let times = times_of_path path dev_id in
              acc +. times.Targets.Arch.drain_time
              +. times.Targets.Arch.t_full_reflash)
            0. touched }
