(** State replication and failover (§3.4): "the FlexNet controller
    replicates important network state in a logical datapath across
    multiple physical devices."

    A replication group keeps one primary map synchronized to backup
    devices, either by periodic control-plane sync or per-call dRPC
    replication. On primary failure, a backup is promoted; the loss
    window is whatever changed since the last sync. *)

type mode = Periodic_sync of float (* period seconds *) | Drpc_sync

type t = {
  sim : Netsim.Sim.t;
  map_name : string;
  mutable primary : Targets.Device.t;
  mutable backups : Targets.Device.t list;
  mode : mode;
  mutable member_ids : string list; (* ever-members, for rejoin checks *)
  mutable syncs : int;
  mutable failovers : int;
  mutable rejoins : int;
  mutable last_sync : float;
  mutable running : bool;
}

let count t name =
  Obs.Metrics.incr (Obs.Scope.metrics (Netsim.Sim.obs t.sim)) name

let sync_once t =
  t.syncs <- t.syncs + 1;
  count t "replication.syncs";
  t.last_sync <- Netsim.Sim.now t.sim;
  List.iter
    (fun b ->
      Runtime.Migration.transfer_snapshot ~src:t.primary ~dst:b [ t.map_name ])
    t.backups

let create ~sim ~map_name ~primary ~backups mode =
  let t =
    { sim; map_name; primary; backups; mode;
      member_ids = List.map Targets.Device.id (primary :: backups);
      syncs = 0; failovers = 0; rejoins = 0; last_sync = 0.; running = true }
  in
  (match mode with
   | Periodic_sync period ->
     Netsim.Sim.every sim ~period (fun () ->
         if t.running then sync_once t;
         t.running)
   | Drpc_sync -> ());
  t

let stop t = t.running <- false

(** dRPC-mode hook: call after each primary update batch (cheap, in the
    data plane). *)
let replicate_now t = sync_once t

(** Promote the freshest backup after a primary failure. Returns the
    new primary, or [None] if no backups remain. *)
let failover t =
  match t.backups with
  | [] -> None
  | b :: rest ->
    t.primary <- b;
    t.backups <- rest;
    t.failovers <- t.failovers + 1;
    count t "replication.failovers";
    Some b

(** Entries that existed on the primary but are missing/stale on a
    backup — the loss window metric. *)
let staleness t backup =
  match
    ( Targets.Device.map_state t.primary t.map_name,
      Targets.Device.map_state backup t.map_name )
  with
  | Some p, Some b ->
    let bsum =
      List.fold_left (fun acc (_, v) -> Int64.add acc v) 0L
        (Flexbpf.State.entries b)
    in
    let psum =
      List.fold_left (fun acc (_, v) -> Int64.add acc v) 0L
        (Flexbpf.State.entries p)
    in
    Int64.to_int (Int64.sub psum bsum)
  | Some p, None ->
    List.length (Flexbpf.State.entries p)
  | None, _ -> 0

(* -- Failure handling --------------------------------------------------- *)

let member t dev_id = List.mem dev_id t.member_ids

(** A group member crashed. Primary: promote the freshest backup.
    Backup: drop it from the sync set (it rejoins at restart). *)
let handle_crash t dev_id =
  if not (member t dev_id) then ()
  else if Targets.Device.id t.primary = dev_id then ignore (failover t)
  else
    t.backups <-
      List.filter (fun b -> Targets.Device.id b <> dev_id) t.backups

(** A restarted (ever-)member rejoins as a backup — the state it
    crashed with is stale — and is brought current with an immediate
    sync. Non-members are ignored. *)
let rejoin t dev =
  let id = Targets.Device.id dev in
  if member t id
     && Targets.Device.id t.primary <> id
     && not (List.exists (fun b -> Targets.Device.id b = id) t.backups)
  then begin
    t.backups <- t.backups @ [ dev ];
    t.rejoins <- t.rejoins + 1;
    count t "replication.rejoins";
    if t.running then sync_once t
  end

(** Subscribe to a fault injector so group members fail over on crash
    and re-resolve (rejoin + resync) on restart. [resolve] maps a
    device id back to its handle — crashed members are forgotten, so
    the controller's registry supplies it. *)
let watch_faults t faults ~resolve =
  Netsim.Faults.subscribe faults (fun dev_id ev ->
      match ev with
      | `Crash -> handle_crash t dev_id
      | `Restart ->
        (match resolve dev_id with
         | Some dev -> rejoin t dev
         | None -> ()))

let syncs t = t.syncs
let failovers t = t.failovers
let rejoins t = t.rejoins
let primary t = t.primary
let backups t = t.backups
