(** Consistent network-wide updates (§3.4).

    "Functional updates to a logical datapath need application-level,
    consistent packet processing, which goes beyond controlling the
    order of rule updates." Two disciplines:

    - [ordered]: devices flip from old to new program in reverse path
      order (egress first). No packet can see the new program upstream
      and the old downstream, so a datapath function that moves between
      devices is never applied twice or zero times.

    - [simultaneous]: all devices flip at one scheduled instant
      (best-effort clock-synchronized update; exact in simulation). *)

type discipline = Ordered | Simultaneous

type update_report = {
  flips : (string * float) list; (* device id, flip time *)
  completed_at : float;
}

(** Perform a consistent update: [mutate] applies all compiler-side
    changes immediately (under freeze on every device of [path_order]);
    visibility follows the discipline. [step] is the modeled per-device
    apply time. *)
let update ?(step = 0.05) ?(on_done = fun (_ : update_report) -> ()) ~sim
    ~discipline ~path_order mutate =
  let devices = path_order in
  List.iter Targets.Device.freeze devices;
  mutate ();
  let start = Netsim.Sim.now sim in
  let flips =
    match discipline with
    | Ordered ->
      (* egress-most first: reverse order, one step apart *)
      List.rev devices
      |> List.mapi (fun i d -> (d, start +. (step *. float_of_int (i + 1))))
    | Simultaneous ->
      let at = start +. step in
      List.map (fun d -> (d, at)) devices
  in
  List.iter
    (fun (d, at) ->
      Netsim.Sim.at sim at (fun () -> Targets.Device.thaw d))
    flips;
  let completed_at =
    List.fold_left (fun acc (_, t) -> Float.max acc t) start flips
  in
  Netsim.Sim.at sim completed_at (fun () ->
      on_done
        { flips =
            List.map (fun (d, t) -> (Targets.Device.id d, t)) flips;
          completed_at });
  completed_at

(** Check a packet's epoch trace for consistency: the per-device
    versions it observed must be achievable by a single cut between old
    and new (monotone along the path under [Ordered]). The trace is a
    list of (device id, version-at-processing). *)
let trace_consistent ~old_versions ~new_versions trace =
  (* each observation must be either the device's old or new version,
     and once we see "new" upstream we may not see "old" downstream
     (reverse-order flips guarantee the opposite direction is safe) *)
  let rec go seen_old = function
    | [] -> true
    | (dev, v) :: rest ->
      let old_v = List.assoc_opt dev old_versions in
      let new_v = List.assoc_opt dev new_versions in
      if Some v = new_v then
        (* new here means every later (downstream) device must be new,
           which under Ordered is guaranteed; keep checking values *)
        go seen_old rest
      else if Some v = old_v then go true rest
      else false
  in
  go false trace
