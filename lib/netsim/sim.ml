(** Discrete-event simulation engine.

    A simulation owns a virtual clock and an event queue. All model
    components (links, traffic generators, device runtimes, controllers)
    schedule callbacks against the same engine, which makes whole-network
    experiments deterministic and single-threaded. *)

type t = {
  mutable now : float;
  queue : Event_queue.t;
  mutable seq : int;
  mutable stopped : bool;
  obs : Obs.Scope.t;
  events_c : int ref; (* handle for "sim.events" *)
}

let create () =
  let obs = Obs.Scope.create () in
  let t =
    { now = 0.;
      queue = Event_queue.create ();
      seq = 0;
      stopped = false;
      obs;
      events_c = Obs.Metrics.counter (Obs.Scope.metrics obs) "sim.events" }
  in
  (* The tracer clock must read the clock cell that only exists once the
     record is built, so it is wired after construction. *)
  Obs.Scope.set_clock obs (fun () -> t.now);
  t

let now t = t.now
let obs t = t.obs

(** [at t time f] schedules [f] to run at absolute virtual [time].
    Scheduling in the past raises [Invalid_argument]. *)
let at t time thunk =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Sim.at: time %.9f is before now %.9f" time t.now);
  t.seq <- t.seq + 1;
  Event_queue.push t.queue ~time ~seq:t.seq thunk

(** [after t delay f] schedules [f] to run [delay] seconds from now. *)
let after t delay thunk = at t (t.now +. delay) thunk

let stop t = t.stopped <- true

let pending t = Event_queue.length t.queue

(** Timestamp of the earliest pending event, [infinity] when the queue
    is drained. The sharded engine uses this to compute the global
    conservative-lookahead window. *)
let next_time t = Event_queue.min_time t.queue

(** Run events until the queue drains, [until] is reached, or [stop] is
    called. Returns the number of events executed. *)
let run ?until t =
  t.stopped <- false;
  let executed = ref 0 in
  let continue = ref true in
  while !continue && not t.stopped do
    let time = Event_queue.min_time t.queue in
    if time = infinity then continue := false
    else
      match until with
      | Some horizon when time > horizon ->
        t.now <- horizon;
        continue := false
      | _ ->
        let thunk = Event_queue.pop_exn t.queue in
        t.now <- time;
        thunk ();
        incr t.events_c;
        incr executed
  done;
  !executed

(** Periodic task: re-schedules itself every [every] seconds until the
    horizon (if any) or until the callback returns [false]. *)
let rec every t ~period f =
  after t period (fun () -> if f () then every t ~period f)
