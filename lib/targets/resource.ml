(** Resource vectors and device resource snapshots.

    The vector type [t] describes both a capacity (what a stage, tile
    pool, or device offers) and a demand (what a program element needs).

    A [snapshot] is an immutable copy of one device's resource state:
    its architecture shape (how resources are partitioned — the paper's
    fungibility taxonomy), current occupancy, placed elements, parser
    rules, and map reference counts. [admit] checks an element against a
    snapshot and returns the updated snapshot, mirroring exactly what
    [Targets.Device.install] would do to the live device — the compiler
    plans against snapshots and never touches hardware. *)

open Flexbpf

type t = {
  sram_bytes : int;
  tcam_bytes : int;
  action_slots : int;
  instructions : int; (* instruction store for blocks/actions *)
}

let zero = { sram_bytes = 0; tcam_bytes = 0; action_slots = 0; instructions = 0 }

let v ?(sram_bytes = 0) ?(tcam_bytes = 0) ?(action_slots = 0)
    ?(instructions = 0) () =
  { sram_bytes; tcam_bytes; action_slots; instructions }

let add a b =
  { sram_bytes = a.sram_bytes + b.sram_bytes;
    tcam_bytes = a.tcam_bytes + b.tcam_bytes;
    action_slots = a.action_slots + b.action_slots;
    instructions = a.instructions + b.instructions }

let sub a b =
  { sram_bytes = a.sram_bytes - b.sram_bytes;
    tcam_bytes = a.tcam_bytes - b.tcam_bytes;
    action_slots = a.action_slots - b.action_slots;
    instructions = a.instructions - b.instructions }

let scale k a =
  { sram_bytes = k * a.sram_bytes;
    tcam_bytes = k * a.tcam_bytes;
    action_slots = k * a.action_slots;
    instructions = k * a.instructions }

(** [fits demand capacity]: does the demand fit wholly? *)
let fits demand capacity =
  demand.sram_bytes <= capacity.sram_bytes
  && demand.tcam_bytes <= capacity.tcam_bytes
  && demand.action_slots <= capacity.action_slots
  && demand.instructions <= capacity.instructions

(** Fraction of [capacity] consumed by [used], on the most-loaded
    dimension; capacity dimensions of zero are ignored. *)
let utilization ~used ~capacity =
  let dim u c = if c = 0 then 0. else float_of_int u /. float_of_int c in
  List.fold_left Float.max 0.
    [ dim used.sram_bytes capacity.sram_bytes;
      dim used.tcam_bytes capacity.tcam_bytes;
      dim used.action_slots capacity.action_slots;
      dim used.instructions capacity.instructions ]

(** Demand of a program element, derived from the static analysis. *)
let of_footprint (f : Flexbpf.Analysis.footprint) =
  { sram_bytes = f.sram_bytes; tcam_bytes = f.tcam_bytes;
    action_slots = f.action_slots; instructions = f.instruction_count }

let pp ppf t =
  Fmt.pf ppf "sram=%dB tcam=%dB actions=%d instrs=%d" t.sram_bytes
    t.tcam_bytes t.action_slots t.instructions

(* -- Slots and rejections --------------------------------------------- *)

type tile_kind = Hash_tile | Index_tile | Tcam_tile

let tile_kind_to_string = function
  | Hash_tile -> "hash"
  | Index_tile -> "index"
  | Tcam_tile -> "tcam"

type slot =
  | In_stage of int
  | In_tiles of tile_kind * int (* tile kind, number of tiles *)
  | In_pool
  | In_pem

let slot_to_string = function
  | In_stage s -> Printf.sprintf "stage%d" s
  | In_tiles (k, n) -> Printf.sprintf "%d %s tiles" n (tile_kind_to_string k)
  | In_pool -> "pool"
  | In_pem -> "pem"

type reject =
  | No_capacity of string
  | Unsupported of string

let reject_to_string = function
  | No_capacity s -> "no capacity: " ^ s
  | Unsupported s -> "unsupported: " ^ s

(* -- Snapshots --------------------------------------------------------- *)

(** How the device partitions its resources — the fungibility taxonomy.
    Capacities are copied in so the snapshot is self-contained. *)
type shape =
  | Sh_staged of { stages : int; per_stage : t } (* RMT *)
  | Sh_staged_pem of { stages : int; per_stage : t; pem_slots : int }
      (* Elastic pipe: stages + programmable-elements matrix *)
  | Sh_tiled of { tiles : (tile_kind * int) list; tile_bytes : int; pool : t }
      (* typed tiles + shared action/instruction pool *)
  | Sh_pooled of { pool : t } (* dRMT / NIC / FPGA / host *)

(** Residency of an oversubscribed table: the device holds a bounded
    hot tier of [res_device_rules] while the full [res_logical_rules]
    stay authoritative on the host; misses page in on demand.
    [res_miss_rate] is the planner's prediction under the Zipfian
    reference workload (see [predicted_miss_rate]). *)
type residency = {
  res_table : string;
  res_logical_rules : int;
  res_device_rules : int;
  res_miss_rate : float;
}

let euler_gamma = 0.5772156649015329

(** Predicted steady-state miss rate of a [device]-rule hot tier over
    [logical] rules under a Zipf(1) reference popularity: an LRU cache
    of C entries captures ≈ H_C / H_N of the mass, with the harmonic
    number approximated as H_n ≈ ln n + γ. *)
let predicted_miss_rate ~logical ~device =
  if device >= logical || logical <= 0 then 0.
  else if device <= 0 then 1.
  else
    let h n = log (float_of_int n) +. euler_gamma in
    Float.max 0. (1. -. (h device /. h logical))

type placed = {
  pl_name : string;
  pl_order : int;
  pl_slot : slot;
  pl_demand : t;
  pl_element : Ast.element;
  pl_residency : residency option;
      (* present iff the element is a table admitted oversubscribed *)
}

type snapshot = {
  snap_device : string;
  shape : shape;
  max_block_cycles : int;
  parser_capacity : int;
  stage_used : t array; (* never mutated: copied on update *)
  pool_used : t;
  tiles_used : (tile_kind * int) list;
  pem_used : int;
  placed : placed list; (* sorted by pl_order *)
  parser_rules : string list; (* rule names, in device order *)
  map_refs : (string * int) list;
  pending_unref : string list;
      (* map names whose refcount drop is deferred to [finalize] —
         mirrors the device's frozen-window deferred cleanups *)
}

let snap_tiles_in_use snap kind =
  Option.value (List.assoc_opt kind snap.tiles_used) ~default:0

let snap_tile_capacity snap kind =
  match snap.shape with
  | Sh_tiled { tiles; _ } -> Option.value (List.assoc_opt kind tiles) ~default:0
  | _ -> 0

let map_ref snap name = List.assoc_opt name snap.map_refs

let find_placed snap name =
  List.find_opt (fun p -> p.pl_name = name) snap.placed

(* -- Demand ------------------------------------------------------------ *)

(** Resource demand of an element within context program [ctx],
    including the maps it references that are not yet present in the
    snapshot (the first referencing element pays for the map). *)
let element_demand snap ~(ctx : Ast.program) element =
  let fp = Analysis.element_footprint ctx element in
  let new_maps =
    Compose.element_maps element
    |> List.sort_uniq compare
    |> List.filter_map (fun name ->
           if map_ref snap name <> None then None
           else
             Option.map
               (fun decl -> (name, Analysis.map_bytes decl))
               (Ast.find_map ctx name))
  in
  let map_bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 new_maps in
  let demand = add (of_footprint fp) (v ~sram_bytes:map_bytes ()) in
  (demand, new_maps)

(* -- Admission --------------------------------------------------------- *)

let stage_free ~per_stage snap s = sub per_stage snap.stage_used.(s)

(** Minimum admissible stage given pipeline-order dependencies: an
    element must sit no earlier than every element that precedes it in
    program order (RMT's defining constraint). *)
let min_stage snap ~order =
  List.fold_left
    (fun acc p ->
      match p.pl_slot with
      | In_stage s when p.pl_order < order -> max acc s
      | _ -> acc)
    0 snap.placed

let block_cycles element = Analysis.element_cost element

let first_fit_stage ~stages ~per_stage snap demand ~from =
  let rec try_stage s =
    if s >= stages then Error (No_capacity "no stage fits the element")
    else if fits demand (stage_free ~per_stage snap s) then Ok (In_stage s)
    else try_stage (s + 1)
  in
  try_stage from

let admit_tiles snap ~tiles:_ ~tile_bytes ~pool element demand =
  let pool_demand =
    v ~action_slots:demand.action_slots ~instructions:demand.instructions ()
  in
  let pool_free = sub pool snap.pool_used in
  let bytes = demand.sram_bytes + demand.tcam_bytes in
  let tiles_needed = max 1 ((bytes + tile_bytes - 1) / tile_bytes) in
  match element with
  | Ast.Block _ ->
    (* block state (maps) lives in index tiles; compute/action budget
       comes from the pool *)
    if not (fits pool_demand pool_free) then
      Error (No_capacity "action/instruction pool exhausted")
    else if bytes = 0 then Ok In_pool
    else begin
      let free_tiles =
        snap_tile_capacity snap Index_tile - snap_tiles_in_use snap Index_tile
      in
      if tiles_needed > free_tiles then
        Error
          (No_capacity
             (Printf.sprintf "needs %d index tiles, %d free" tiles_needed
                free_tiles))
      else Ok (In_tiles (Index_tile, tiles_needed))
    end
  | Ast.Table tbl ->
    let tile_kind =
      if Analysis.table_needs_tcam tbl then Tcam_tile else Hash_tile
    in
    let free_tiles =
      snap_tile_capacity snap tile_kind - snap_tiles_in_use snap tile_kind
    in
    if tiles_needed > free_tiles then
      Error
        (No_capacity
           (Printf.sprintf "needs %d %s tiles, %d free" tiles_needed
              (tile_kind_to_string tile_kind) free_tiles))
    else if not (fits pool_demand pool_free) then
      Error (No_capacity "action/instruction pool exhausted")
    else Ok (In_tiles (tile_kind, tiles_needed))

(** Pick a slot for the element, architecture-specifically — the same
    decision [Targets.Device.install] makes on the live device. *)
let admit_slot snap ~order element demand =
  let is_block = match element with Ast.Block _ -> true | Ast.Table _ -> false in
  if is_block && block_cycles element > snap.max_block_cycles then
    Error
      (Unsupported
         (Printf.sprintf "block of %d cycles exceeds target limit %d"
            (block_cycles element) snap.max_block_cycles))
  else
    match snap.shape with
    | Sh_staged { stages; per_stage } ->
      first_fit_stage ~stages ~per_stage snap demand
        ~from:(min_stage snap ~order)
    | Sh_staged_pem { stages; per_stage; pem_slots } ->
      if is_block then begin
        if snap.pem_used < pem_slots then Ok In_pem
        else Error (No_capacity "PEM slots exhausted")
      end
      else
        first_fit_stage ~stages ~per_stage snap demand
          ~from:(min_stage snap ~order)
    | Sh_tiled { tiles; tile_bytes; pool } ->
      admit_tiles snap ~tiles ~tile_bytes ~pool element demand
    | Sh_pooled { pool } ->
      if fits demand (sub pool snap.pool_used) then Ok In_pool
      else Error (No_capacity "pool exhausted")

(* -- Occupancy bookkeeping (persistent) -------------------------------- *)

let charge snap slot demand =
  match slot with
  | In_stage s ->
    let stage_used = Array.copy snap.stage_used in
    stage_used.(s) <- add stage_used.(s) demand;
    { snap with stage_used }
  | In_pool -> { snap with pool_used = add snap.pool_used demand }
  | In_pem -> { snap with pem_used = snap.pem_used + 1 }
  | In_tiles (k, n) ->
    let tiles_used =
      (k, snap_tiles_in_use snap k + n)
      :: List.remove_assoc k snap.tiles_used
    in
    let pool_demand =
      v ~action_slots:demand.action_slots ~instructions:demand.instructions ()
    in
    { snap with tiles_used; pool_used = add snap.pool_used pool_demand }

let refund snap slot demand =
  match slot with
  | In_stage s ->
    let stage_used = Array.copy snap.stage_used in
    stage_used.(s) <- sub stage_used.(s) demand;
    { snap with stage_used }
  | In_pool -> { snap with pool_used = sub snap.pool_used demand }
  | In_pem -> { snap with pem_used = snap.pem_used - 1 }
  | In_tiles (k, n) ->
    let tiles_used =
      (k, snap_tiles_in_use snap k - n)
      :: List.remove_assoc k snap.tiles_used
    in
    let pool_demand =
      v ~action_slots:demand.action_slots ~instructions:demand.instructions ()
    in
    { snap with tiles_used; pool_used = sub snap.pool_used pool_demand }

(* -- Oversubscription --------------------------------------------------- *)

(** Clamp a table's demand to [device_rules] resident rules: only the
    match memory shrinks — maps, action slots, and instruction store
    cost the same whether a rule is resident or paged. *)
let clamp_demand ~needs_tcam ~rule_bytes ~logical demand device_rules =
  let cut = (logical - device_rules) * rule_bytes in
  if needs_tcam then { demand with tcam_bytes = demand.tcam_bytes - cut }
  else { demand with sram_bytes = demand.sram_bytes - cut }

(** A table whose full logical rule set does not slot is admitted
    oversubscribed: binary-search (fit is monotone in the resident rule
    count) the largest device tier whose clamped match memory slots,
    and record the residency so the device bounds its tier and the
    planner carries the predicted miss rate. [None] when not even one
    resident rule fits. *)
let admit_oversubscribed snap ~(ctx : Ast.program) ~order (tbl : Ast.table)
    element demand =
  let logical = tbl.Ast.tbl_size in
  if logical <= 1 then None
  else begin
    let rule_bytes = max 1 (Analysis.table_bytes ctx tbl / logical) in
    let needs_tcam = Analysis.table_needs_tcam tbl in
    let fits_with d =
      admit_slot snap ~order element
        (clamp_demand ~needs_tcam ~rule_bytes ~logical demand d)
    in
    match fits_with 1 with
    | Error _ -> None
    | Ok _ ->
      (* largest admissible resident count in [1, logical - 1] *)
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi + 1) / 2 in
          match fits_with mid with
          | Ok _ -> search mid hi
          | Error _ -> search lo (mid - 1)
      in
      let device = search 1 (logical - 1) in
      match fits_with device with
      | Error _ -> None
      | Ok slot ->
        let residency =
          { res_table = tbl.Ast.tbl_name; res_logical_rules = logical;
            res_device_rules = device;
            res_miss_rate = predicted_miss_rate ~logical ~device }
        in
        Some
          (slot,
           clamp_demand ~needs_tcam ~rule_bytes ~logical demand device,
           residency)
  end

(** Admit element [element] of [ctx] at pipeline position [order]:
    the full install-time check — block-cycle bound, demand including
    first-reference map bytes, architecture-specific slotting, parser
    capacity for the context's missing rules — and the snapshot as it
    would look after the install. A table whose match memory does not
    fit is not rejected outright: it is admitted oversubscribed with a
    clamped device tier and a [residency] record on its [placed] entry
    (misses demand-page from the host tier at run time). *)
let admit snap ~(ctx : Ast.program) ~order element =
  let name = Ast.element_name element in
  if find_placed snap name <> None then
    Error (Unsupported (Printf.sprintf "element %s already installed" name))
  else begin
    let demand, _new_maps = element_demand snap ~ctx element in
    let slotting =
      match admit_slot snap ~order element demand with
      | Ok slot -> Ok (slot, demand, None)
      | Error (No_capacity _ as err) ->
        (match element with
         | Ast.Table tbl ->
           (match admit_oversubscribed snap ~ctx ~order tbl element demand with
            | Some (slot, demand, res) -> Ok (slot, demand, Some res)
            | None -> Error err)
         | Ast.Block _ -> Error err)
      | Error err -> Error err
    in
    match slotting with
    | Error e -> Error e
    | Ok (slot, demand, residency) ->
      let missing_rules =
        List.filter
          (fun r -> not (List.mem r.Ast.pr_name snap.parser_rules))
          ctx.Ast.parser
      in
      if
        List.length snap.parser_rules + List.length missing_rules
        > snap.parser_capacity
      then Error (No_capacity "parser state capacity reached")
      else begin
        let snap = charge snap slot demand in
        let map_refs =
          Compose.element_maps element
          |> List.sort_uniq compare
          |> List.fold_left
               (fun refs mname ->
                 match List.assoc_opt mname refs with
                 | Some n -> (mname, n + 1) :: List.remove_assoc mname refs
                 | None ->
                   if Ast.find_map ctx mname <> None then (mname, 1) :: refs
                   else refs)
               snap.map_refs
        in
        let entry =
          { pl_name = name; pl_order = order; pl_slot = slot;
            pl_demand = demand; pl_element = element;
            pl_residency = residency }
        in
        (* cons-then-stable-sort, like the device, so elements sharing
           an order keep identical list positions on both sides *)
        let placed =
          List.stable_sort
            (fun a b -> compare a.pl_order b.pl_order)
            (entry :: snap.placed)
        in
        let parser_rules =
          snap.parser_rules
          @ List.map (fun r -> r.Ast.pr_name) missing_rules
        in
        Ok (slot, { snap with map_refs; placed; parser_rules })
      end
  end

(** Release a placed element by name: its demand is refunded
    immediately, but the map-reference drop is deferred to [finalize] —
    exactly the device's frozen-window semantics, under which all plans
    execute. [None] if the element is not placed. *)
let release snap name =
  match find_placed snap name with
  | None -> None
  | Some p ->
    let snap = refund snap p.pl_slot p.pl_demand in
    let placed = List.filter (fun q -> q != p) snap.placed in
    let unrefs = List.sort_uniq compare (Compose.element_maps p.pl_element) in
    Some
      (p.pl_slot,
       { snap with placed; pending_unref = snap.pending_unref @ unrefs })

(** Process deferred map unrefs — the snapshot counterpart of the
    device's thaw-time cleanup: refcount 1 means the map disappears. *)
let finalize snap =
  let map_refs =
    List.fold_left
      (fun refs name ->
        match List.assoc_opt name refs with
        | None -> refs
        | Some 1 -> List.remove_assoc name refs
        | Some n -> (name, n - 1) :: List.remove_assoc name refs)
      snap.map_refs snap.pending_unref
  in
  { snap with map_refs; pending_unref = [] }

(* -- Parser reconfiguration ------------------------------------------- *)

let add_parser_rule snap (rule : Ast.parser_rule) =
  if List.length snap.parser_rules >= snap.parser_capacity then
    Error (No_capacity "parser state capacity reached")
  else if List.mem rule.Ast.pr_name snap.parser_rules then
    Error (Unsupported ("duplicate parser rule " ^ rule.Ast.pr_name))
  else Ok { snap with parser_rules = snap.parser_rules @ [ rule.Ast.pr_name ] }

let remove_parser_rule snap name =
  if List.mem name snap.parser_rules then
    Some
      { snap with
        parser_rules = List.filter (fun r -> r <> name) snap.parser_rules }
  else None

(* -- Defragmentation --------------------------------------------------- *)

(** Re-pack staged elements first-fit in pipeline order — the snapshot
    counterpart of [Targets.Device.defragment], byte-for-byte the same
    first-fit so a planned defrag predicts the device's slots. Returns
    (elements moved, new snapshot). No-op on unstaged shapes. *)
let defragment snap =
  match snap.shape with
  | Sh_staged { stages; per_stage } | Sh_staged_pem { stages; per_stage; _ } ->
    let staged, rest =
      List.partition
        (fun p -> match p.pl_slot with In_stage _ -> true | _ -> false)
        snap.placed
    in
    let staged =
      List.stable_sort (fun a b -> compare a.pl_order b.pl_order) staged
    in
    let stage_used = Array.make (Array.length snap.stage_used) zero in
    let moved = ref 0 in
    let current_min = ref 0 in
    let staged' =
      List.map
        (fun p ->
          let rec try_stage s =
            if s >= stages then s (* cannot happen: it fit before *)
            else if fits p.pl_demand (sub per_stage stage_used.(s)) then s
            else try_stage (s + 1)
          in
          let s = try_stage !current_min in
          current_min := s;
          (match p.pl_slot with
           | In_stage old when old <> s -> incr moved
           | _ -> ());
          stage_used.(s) <- add stage_used.(s) p.pl_demand;
          { p with pl_slot = In_stage s })
        staged
    in
    let placed =
      List.stable_sort
        (fun a b -> compare a.pl_order b.pl_order)
        (staged' @ rest)
    in
    (!moved, { snap with stage_used; placed })
  | _ -> (0, snap)

(* -- Cost / reconciliation -------------------------------------------- *)

(** Occupied resources, summed over the shape's partitions. Tiles are
    accounted as [tiles_used × tile_bytes] of SRAM — an approximation
    (a table occupying part of a tile still claims the whole tile). *)
let used snap =
  let base = Array.fold_left add snap.pool_used snap.stage_used in
  match snap.shape with
  | Sh_tiled { tile_bytes; _ } ->
    let tile_sram =
      List.fold_left (fun acc (_, n) -> acc + (n * tile_bytes)) 0
        snap.tiles_used
    in
    add base (v ~sram_bytes:tile_sram ())
  | _ -> base

(** Structural differences between a predicted and an observed snapshot
    — empty when the planner's model matched the device. Compares
    occupancy, placements (name/order/slot), parser rules, and map
    refcounts. *)
let diff predicted actual =
  let out = ref [] in
  let say fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let pv t = Fmt.str "%a" pp t in
  if Array.length predicted.stage_used <> Array.length actual.stage_used then
    say "stage count %d vs %d"
      (Array.length predicted.stage_used)
      (Array.length actual.stage_used)
  else
    Array.iteri
      (fun i u ->
        if u <> actual.stage_used.(i) then
          say "stage %d: predicted %s, actual %s" i (pv u)
            (pv actual.stage_used.(i)))
      predicted.stage_used;
  if predicted.pool_used <> actual.pool_used then
    say "pool: predicted %s, actual %s" (pv predicted.pool_used)
      (pv actual.pool_used);
  let norm_tiles l =
    List.sort compare (List.filter (fun (_, n) -> n <> 0) l)
  in
  if norm_tiles predicted.tiles_used <> norm_tiles actual.tiles_used then
    say "tiles-in-use differ";
  if predicted.pem_used <> actual.pem_used then
    say "pem: predicted %d, actual %d" predicted.pem_used actual.pem_used;
  let sig_of p = (p.pl_name, p.pl_order, p.pl_slot) in
  let psig = List.map sig_of predicted.placed
  and asig = List.map sig_of actual.placed in
  if psig <> asig then begin
    let show l =
      String.concat ","
        (List.map
           (fun (n, o, s) -> Printf.sprintf "%s@%d:%s" n o (slot_to_string s))
           l)
    in
    say "placed: predicted [%s], actual [%s]" (show psig) (show asig)
  end;
  if
    List.sort compare predicted.parser_rules
    <> List.sort compare actual.parser_rules
  then say "parser rules differ";
  if
    List.sort compare predicted.map_refs <> List.sort compare actual.map_refs
  then say "map refcounts differ";
  List.rev !out

let pp_snapshot ppf snap =
  Fmt.pf ppf "%s: %d placed, used %a" snap.snap_device
    (List.length snap.placed) pp (used snap)
