(** Unidirectional links with a drop-tail queue, serialization delay,
    propagation delay, and ECN marking.

    The queue is modeled analytically: the instantaneous depth is the
    number of packets accepted but not yet serialized, which is exact
    for a drop-tail FIFO and avoids per-byte events. Packets whose
    depth-at-enqueue reaches [ecn_threshold] get [ipv4.ecn] set. *)

type t

val create :
  sim:Sim.t -> name:string -> ?bandwidth:float -> ?delay:float ->
  ?queue_capacity:int -> ?ecn_threshold:int -> ?deliver:(Packet.t -> unit) ->
  unit -> t

(** The name given at creation ("src->dst" for topology links). *)
val name : t -> string

(** Set the receive-side callback (wired by the topology). *)
val set_deliver : t -> (Packet.t -> unit) -> unit

(** Take the link up or down; a down link rejects transmissions and
    discards in-flight deliveries. *)
val set_up : t -> bool -> unit

(** {2 Fault injection} (armed by [Faults] inside fault windows)} *)

(** Arm (or clear, with [prob = 0.]) probabilistic per-packet loss.
    Draws come from [rng] — sharing one seeded state across a run keeps
    fault placement deterministic. Without an rng no loss is injected. *)
val set_loss : t -> ?rng:Random.State.t -> float -> unit

(** Extra per-packet propagation delay in seconds (0. to clear). *)
val set_extra_delay : t -> float -> unit

(** Current queue depth in packets. *)
val depth : t -> int

val drops : t -> int

(** Drops caused by injected loss (subset of [drops]). *)
val fault_drops : t -> int
val tx_packets : t -> int
val tx_bytes : t -> int
val ecn_marks : t -> int

(** Queue-depth samples taken at each enqueue. *)
val depth_series : t -> Stats.Series.t

val serialization_time : t -> Packet.t -> float

(** Enqueue a packet for transmission; [false] on drop (queue full or
    link down). Delivery is scheduled on the link's simulation. *)
val transmit : t -> Packet.t -> bool
