(** The one reconfiguration engine: every change to a live datapath —
    deploy, patch, recompile, GC/defragment, state migration — arrives
    here as a [Compiler.Plan.t] and is executed against the devices
    under two-version windows.

    - [Hitless] (runtime programmable): touched devices keep serving
      traffic with their old program; the new one becomes visible
      atomically per device when its op batch completes. Zero loss,
      "program changes complete within a second".
    - [Drain] (compile-time baseline): each touched device is isolated,
      reflashed with the full program, then redeployed; loss is
      proportional to drain + reflash time.

    Failure handling (Hitless): the op batch is acknowledged per device
    at the end of the window. A device that crashed mid-batch restarts
    on its old program; survivors roll back and the plan is re-driven
    with exponential backoff, or aborted atomically once the retry
    budget is spent — each device always runs old-XOR-new. *)

type mode = Hitless | Drain

type outcome = {
  started_at : float;
  finished_at : float;
  mode : mode;
  per_device_done : (string * float) list;
  attempts : int; (* 1 on a fault-free run *)
  rolled_back : bool; (* true: plan aborted, all devices on old program *)
}

(** Serial op time per wired device id in the plan (delegates to
    {!Compiler.Plan.per_device_times}). *)
val per_device_times :
  Compiler.Plan.t -> Wiring.wired list -> (string * float) list

(** Execute [plan] starting now; [on_done] fires when every device has
    finished (or the plan aborted). Hitless runs survive mid-batch
    crashes: up to [max_retries] re-drives (default 2) with exponential
    backoff from [retry_backoff] seconds (default 0.05), then an atomic
    abort. [apply] is re-run on retries and must be idempotent over
    already-converged devices.

    Observability: a "reconfig.execute" span (with "reconfig.attempt"
    children per Hitless attempt) is recorded on the simulation's
    tracer, and "reconfig.retries" / "reconfig.gaveups" are counted in
    the simulation's registry. A caller-supplied [stats] still receives
    the same counts (skipped when it is the sim registry itself). *)
val execute :
  ?on_done:(outcome -> unit) -> ?max_retries:int -> ?retry_backoff:float ->
  ?stats:Netsim.Stats.Counters.t -> sim:Netsim.Sim.t -> mode:mode ->
  wireds:Wiring.wired list -> plan:Compiler.Plan.t -> (unit -> unit) -> unit

(** Modelled completion latency of a plan in hitless mode. *)
val hitless_latency : devices:Targets.Device.t list -> Compiler.Plan.t -> float

(** {2 The op interpreter} *)

(** Interpret one op against live devices. [Install] of an
    already-installed name replaces it, carrying the element's map
    state across. *)
val apply_op :
  Targets.Device.t list -> Compiler.Plan.op -> (unit, string) result

(** Interpret every op in order; stops at the first failure. *)
val apply_ops :
  Targets.Device.t list -> Compiler.Plan.t -> (unit, string) result

(** Untimed plan execution: freeze the touched devices (unless already
    inside a caller-held window), interpret the ops, thaw. An op
    failure rolls the self-frozen devices back and reports the error.
    With [predicted] (the planner's post-execution snapshots), actual
    device state is reconciled against the prediction after the thaw
    ([Targets.Resource.diff]); devices still inside a caller-held
    window are skipped. With [obs], a "reconfig.run_plan" span (plan
    name, op count, outcome) is recorded, parented under [parent]. *)
val run_plan :
  ?obs:Obs.Scope.t -> ?parent:Obs.Trace.span ->
  ?predicted:(string * Targets.Resource.snapshot) list ->
  devices:Targets.Device.t list -> Compiler.Plan.t -> (unit, string) result

(** [execute] with {!apply_ops} as the mutation step — the timed
    plan-only path used by experiments. *)
val execute_plan :
  ?on_done:(outcome -> unit) -> ?max_retries:int -> ?retry_backoff:float ->
  ?stats:Netsim.Stats.Counters.t -> sim:Netsim.Sim.t -> mode:mode ->
  wireds:Wiring.wired list -> plan:Compiler.Plan.t -> unit -> unit

(** {2 Plan-then-execute entry points}

    These are the only call sites that install or remove elements on
    devices during deploy/patch: each plans with the pure compiler,
    executes the winning plan, and reconciles predicted snapshots
    against the actual device state. *)

(** Plan and execute a fresh placement of the program on the path.
    @raise Failure if a freshly planned op is rejected by a device —
    planner and device admission disagreeing is an invariant
    violation. *)
val place :
  ?obs:Obs.Scope.t -> path:Targets.Device.t list -> Flexbpf.Ast.program ->
  (Compiler.Placement.t, Compiler.Placement.failure) result

(** Remove a placed program from its devices. *)
val unplace : ?obs:Obs.Scope.t -> Compiler.Placement.t -> unit

(** Deploy a program fresh onto a path. With [obs], the whole operation
    runs under a "reconfig.deploy" span. *)
val deploy :
  ?obs:Obs.Scope.t -> path:Targets.Device.t list -> Flexbpf.Ast.program ->
  (Compiler.Incremental.deployment, Compiler.Placement.failure) result

(** Plan a patch (candidate search over snapshots, see
    {!Compiler.Incremental.plan_patch}), execute the winning plan,
    reconcile, and commit the new program/placement. The deployment is
    untouched on error. With [obs], runs under a "reconfig.patch"
    span. *)
val apply_patch :
  ?obs:Obs.Scope.t -> ?candidates:int -> ?prefer_adjacent:bool ->
  Compiler.Incremental.deployment -> Flexbpf.Patch.t ->
  (Compiler.Incremental.report * Flexbpf.Patch.diff,
   Compiler.Incremental.error)
  result

(** Plan and execute the compile-time baseline: full teardown and
    redeploy. With [obs], runs under a "reconfig.full_recompile"
    span. *)
val full_recompile :
  ?obs:Obs.Scope.t -> Compiler.Incremental.deployment ->
  Flexbpf.Ast.program ->
  (Compiler.Incremental.report, Compiler.Incremental.error) result

(** {2 Fungible compilation, executed} *)

type fungible_outcome = {
  placement : Compiler.Placement.t option;
  iterations : int; (* placement attempts *)
  gc_removed : string list;
  defrag_moves : int;
  failure : Compiler.Placement.failure option;
}

(** One-shot bin-packing baseline, planned then executed. *)
val place_once :
  ?obs:Obs.Scope.t -> path:Targets.Device.t list -> Flexbpf.Ast.program ->
  fungible_outcome

(** The fungible compilation loop (GC + defragmentation over
    snapshots), executed as a single plan; on planning failure the
    devices are untouched. *)
val place_with_gc :
  ?obs:Obs.Scope.t -> ?max_iterations:int -> path:Targets.Device.t list ->
  removable:(Targets.Device.t -> string list) -> Flexbpf.Ast.program ->
  fungible_outcome
