(** Forwarding decision diagrams: the canonical normal form of policy
    terms (the Frenetic/NetKAT local-compilation idiom).

    An FDD is a binary decision diagram whose internal nodes test
    [field = value] and whose leaves hold {e action sets}: an action
    is a partial field assignment (last-write-wins), the empty set
    drops, and a set with several actions is a multicast copy.

    Canonical variable order: along every path tests are strictly
    increasing by ({!Ast.field_rank}, value); the true branch of
    [f = v] never tests [f] again (it is decided), the false branch
    may only test [f] against larger values. Equal subtrees collapse,
    so structural equality decides semantic equality over the tested
    universe — union/seq/star all preserve the invariant. *)

(** A partial assignment, sorted by {!Ast.field_rank}, one binding per
    field. The empty action is the identity. *)
type action = (Ast.field * int64) list

(** A set of actions, sorted and duplicate-free. [[]] drops; [[ [] ]]
    is the identity. *)
type leaf = action list

type t = private
  | Leaf of leaf
  | Node of { f : Ast.field; v : int64; tru : t; fls : t }

exception Star_diverged

val drop : t
val ident : t
val leaf : leaf -> t

(** Smart node constructor: collapses equal branches. Does not
    re-order — callers must respect the variable order (the algebra
    operations below always do). *)
val node : Ast.field -> int64 -> t -> t -> t

(** [b over a]: compose two assignments, [b]'s bindings win. *)
val compose_action : action -> action -> action

val of_pred : Ast.pred -> t

(** @raise Star_diverged when a [Star] fixpoint exceeds the iteration
    budget (cannot happen for terms over finite constant sets; the
    budget is a defensive bound). *)
val of_pol : Ast.pol -> t

val union : t -> t -> t
val seq : t -> t -> t
val star : t -> t

(** Specialize to [f = v]: every test of [f] is decided. *)
val restrict : Ast.field -> int64 -> t -> t

(** Evaluate on a reference packet: walk tests, apply every action in
    the reached leaf. Result sorted by {!Sem.compare_packet}. *)
val eval : t -> Sem.packet -> Sem.packet list

(** Fields tested anywhere, in canonical order. *)
val test_fields : t -> Ast.field list

(** Fields assigned in any leaf action, in canonical order. *)
val mod_fields : t -> Ast.field list

(** Root-to-leaf paths in priority order (true branch first): the
    positive tests taken along the path, and the leaf. A packet
    matches the {e first} path whose positive tests it satisfies —
    exactly the prioritized-rule reading the table lowering uses. *)
val paths : t -> (action * leaf) list

(** Internal node count. *)
val size : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
