(** The fungible compilation loop (§3.3).

    "If compiling a FlexNet datapath to its resource slice fails, the
    compiler recursively invokes optimization primitives ... to perform
    resource reallocation and garbage collection, before attempting
    another round of compilation."

    The two optimization primitives modeled here:
    - garbage collection: uninstall elements the controller has marked
      inactive (idle tenant apps, retired defenses);
    - defragmentation: re-pack staged architectures first-fit so
      stage-local free space coalesces (the "all pipeline resources
      become fungible" point for RMT).

    A one-shot bin-packing compiler (the non-fungible baseline of
    existing work) is [place_once]. *)

type outcome = {
  placement : Placement.t option;
  iterations : int; (* placement attempts *)
  gc_removed : string list;
  defrag_moves : int;
  failure : Placement.failure option;
}

let place_once ~path prog =
  match Placement.place ~path prog with
  | Ok p ->
    { placement = Some p; iterations = 1; gc_removed = []; defrag_moves = 0;
      failure = None }
  | Error f ->
    { placement = None; iterations = 1; gc_removed = []; defrag_moves = 0;
      failure = Some f }

(** [removable dev] lists element names on [dev] that may be garbage-
    collected (inactive apps). Each GC round removes one more batch. *)
let place_with_gc ?(max_iterations = 4) ~path ~removable prog =
  let gc_removed = ref [] in
  let defrag_moves = ref 0 in
  let rec attempt i =
    match Placement.place ~path prog with
    | Ok p ->
      { placement = Some p; iterations = i; gc_removed = List.rev !gc_removed;
        defrag_moves = !defrag_moves; failure = None }
    | Error f ->
      if i >= max_iterations then
        { placement = None; iterations = i; gc_removed = List.rev !gc_removed;
          defrag_moves = !defrag_moves; failure = Some f }
      else begin
        (* GC one batch of removable elements across the path. *)
        let removed_this_round = ref false in
        List.iter
          (fun dev ->
            List.iter
              (fun name ->
                if Targets.Device.uninstall dev name then begin
                  gc_removed := name :: !gc_removed;
                  removed_this_round := true
                end)
              (removable dev))
          path;
        (* Defragment staged architectures so freed space coalesces. *)
        List.iter
          (fun dev -> defrag_moves := !defrag_moves + Targets.Device.defragment dev)
          path;
        if !removed_this_round || !defrag_moves > 0 then attempt (i + 1)
        else
          { placement = None; iterations = i;
            gc_removed = List.rev !gc_removed; defrag_moves = !defrag_moves;
            failure = Some f }
      end
  in
  attempt 1
