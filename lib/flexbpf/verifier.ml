(** The FlexBPF verifier: dataflow safety analysis for runtime-injected
    programs (§2, §3.1).

    The paper's safety argument is that runtime injection is only
    acceptable if the network can *prove* a program safe before it goes
    live. [Typecheck] establishes well-formedness and [Analysis]
    bounded execution; this module adds the eBPF-verifier-style
    semantic passes in between:

    - {b uninit-read}: header fields and metadata slots read before the
      parser or any prior statement could have defined them, tracked as
      a may-analysis through [If] joins (union — a read is flagged only
      when {e no} path defines it).
    - {b dead-code}: statements after an unconditional [Drop], elements
      the verdict can no longer depend on, actions no rule or default
      can reach, and maps the pipeline never touches.
    - {b value-range}: interval abstract interpretation over integer
      expressions — constant conditions, out-of-range keys on
      registers-encoded maps, shift/width overflows, and nested loop
      budgets that dwarf [Typecheck.max_loop_bound].
    - {b migration-safety}: per-packet-mutated maps pinned to a lossy
      concrete encoding ([Registers] aliasing, [Flow_state] overflow)
      cannot be moved faithfully by [Runtime.Migration.freeze_copy]
      (§3.4).
    - {b tenant-isolation}: [Compose.check_access] violations and
      un-guarded tenant elements reported as diagnostics instead of
      hard admission errors.

    All passes assume a well-formed program (run [Typecheck] first, or
    use [check] which does); they never raise on well-formed input and
    return diagnostics in a deterministic order. *)

open Ast

module SSet = Set.Make (String)
module SMap = Map.Make (String)

let field_width prog h f =
  match find_header prog h with
  | None -> 32
  | Some hd -> Option.value (List.assoc_opt f hd.hdr_fields) ~default:32

(* Location paths: "element/stmt.1.then.0", "table/action/stmt.2",
   "table/key.0", "map/name". *)
let stmt_path base i = Printf.sprintf "%s/stmt.%d" base i
let sub_path base tag i = Printf.sprintf "%s.%s.%d" base tag i

(* -- Pass 1: uninitialized reads ------------------------------------- *)

(* Metadata stamped by the runtime before any program statement runs:
   [Runtime.Wiring] sets the ingress port and VLAN id on every packet
   entering a device. *)
let runtime_metas = SSet.of_list [ "in_port"; "vlan_vid" ]

type ustate = { metas : SSet.t; present : SSet.t }

let ujoin a b =
  { metas = SSet.union a.metas b.metas;
    present = SSet.union a.present b.present }

let uninit_read prog =
  let out = ref [] in
  (* one report per (code, element, name): the first uninitialized read
     of a slot is the actionable one; cascades repeat it. *)
  let reported = Hashtbl.create 16 in
  let report ~code ~severity ~elem ~name ~path fmt =
    Printf.ksprintf
      (fun message ->
        if not (Hashtbl.mem reported (code, elem, name)) then begin
          Hashtbl.replace reported (code, elem, name) ();
          out :=
            { Diagnostics.code; pass = "uninit-read"; severity; path; message }
            :: !out
        end)
      fmt
  in
  let rec exam_expr st ~elem ~path e =
    match e with
    | Const _ | Param _ | Time -> st
    | Field (h, f) ->
      if SSet.mem h st.present then st
      else begin
        report ~code:"FBV001" ~severity:Diagnostics.Error ~elem ~name:h ~path
          "read of %s.%s: no parser rule or prior statement can have \
           produced header %s here"
          h f h;
        { st with present = SSet.add h st.present }
      end
    | Meta m ->
      if SSet.mem m st.metas then st
      else begin
        report ~code:"FBV002" ~severity:Diagnostics.Warning ~elem ~name:m ~path
          "metadata %s read before any assignment (defaults to 0)" m;
        { st with metas = SSet.add m st.metas }
      end
    | Map_get (_, keys) -> List.fold_left (fun st k -> exam_expr st ~elem ~path k) st keys
    | Bin (_, a, b) -> exam_expr (exam_expr st ~elem ~path a) ~elem ~path b
    | Un (_, e) -> exam_expr st ~elem ~path e
    | Hash (_, es) -> List.fold_left (fun st e -> exam_expr st ~elem ~path e) st es
  in
  let rec exam_stmts st ~elem ~base stmts =
    List.fold_left
      (fun (st, i) s -> (exam_stmt st ~elem ~path:(stmt_path base i) s, i + 1))
      (st, 0) stmts
    |> fst
  and exam_stmt st ~elem ~path = function
    | Nop | Drop | Punt _ -> st
    | Set_field (h, f, e) ->
      let st = exam_expr st ~elem ~path e in
      if SSet.mem h st.present then st
      else begin
        report ~code:"FBV001" ~severity:Diagnostics.Error ~elem ~name:h ~path
          "write to %s.%s: no parser rule or prior statement can have \
           produced header %s here"
          h f h;
        { st with present = SSet.add h st.present }
      end
    | Set_meta (m, e) ->
      let st = exam_expr st ~elem ~path e in
      { st with metas = SSet.add m st.metas }
    | Map_put (_, keys, v) | Map_incr (_, keys, v) ->
      let st = List.fold_left (fun st k -> exam_expr st ~elem ~path k) st keys in
      exam_expr st ~elem ~path v
    | Map_del (_, keys) ->
      List.fold_left (fun st k -> exam_expr st ~elem ~path k) st keys
    | If (c, th, el) ->
      let st = exam_expr st ~elem ~path c in
      let st_t = exam_branch st ~elem ~base:path ~tag:"then" th in
      let st_e = exam_branch st ~elem ~base:path ~tag:"else" el in
      ujoin st_t st_e
    | Loop (_, body) ->
      let st = { st with metas = SSet.add "_loop_i" st.metas } in
      exam_branch st ~elem ~base:path ~tag:"body" body
    | Forward e -> exam_expr st ~elem ~path e
    | Push_header h -> { st with present = SSet.add h st.present }
    | Pop_header h -> { st with present = SSet.remove h st.present }
    | Call (svc, args) ->
      let st = List.fold_left (fun st a -> exam_expr st ~elem ~path a) st args in
      { st with metas = SSet.add ("drpc_" ^ svc) st.metas }
  and exam_branch st ~elem ~base ~tag stmts =
    List.fold_left
      (fun (st, i) s -> (exam_stmt st ~elem ~path:(sub_path base tag i) s, i + 1))
      (st, 0) stmts
    |> fst
  in
  let init =
    { metas = runtime_metas;
      present =
        List.fold_left
          (fun acc r -> List.fold_left (fun acc h -> SSet.add h acc) acc r.pr_headers)
          SSet.empty prog.parser }
  in
  let exam_element st el =
    let elem = element_name el in
    match el with
    | Block b -> exam_stmts st ~elem ~base:elem b.blk_body
    | Table t ->
      let st =
        List.fold_left
          (fun (st, i) (e, _) ->
            (exam_expr st ~elem ~path:(Printf.sprintf "%s/key.%d" elem i) e, i + 1))
          (st, 0) t.keys
        |> fst
      in
      (* which action runs depends on installed rules: any of them may
         have executed, so the post-state is the union (may-defined). *)
      List.fold_left
        (fun acc a -> ujoin acc (exam_stmts st ~elem ~base:(elem ^ "/" ^ a.act_name) a.body))
        st t.tbl_actions
  in
  ignore (List.fold_left exam_element init prog.pipeline);
  List.rev !out

(* -- Pass 2: dead code ------------------------------------------------ *)

let rec always_drops stmts = List.exists stmt_always_drops stmts

and stmt_always_drops = function
  | Drop -> true
  | If (c, th, el) -> (
    (* a constant guard takes exactly one arm: [if (1 == 1) { drop }]
       drops every packet even though its (empty) else-arm does not *)
    match Dataflow.const_truth c with
    | Some true -> always_drops th
    | Some false -> always_drops el
    | None -> always_drops th && always_drops el)
  | Loop (n, body) -> n > 0 && always_drops body
  | _ -> false

let element_always_drops = function
  | Block b -> always_drops b.blk_body
  | Table t ->
    (* every action (and thus whatever rule or default selects) drops *)
    t.tbl_actions <> [] && List.for_all (fun a -> always_drops a.body) t.tbl_actions

let dead_code prog =
  let out = ref [] in
  let emit ~code ~severity ~path fmt =
    Printf.ksprintf
      (fun message ->
        out :=
          { Diagnostics.code; pass = "dead-code"; severity; path; message }
          :: !out)
      fmt
  in
  (* statements after an unconditional drop at the same nesting level *)
  let rec scan_stmts ~base stmts =
    let rec go i seen_drop = function
      | [] -> ()
      | s :: rest ->
        let path = stmt_path base i in
        if seen_drop then
          emit ~code:"FBV010" ~severity:Diagnostics.Warning ~path
            "statement follows an unconditional drop: the verdict can no \
             longer change"
        else begin
          (match s with
           | If (_, th, el) ->
             scan_branch ~base:path ~tag:"then" th;
             scan_branch ~base:path ~tag:"else" el
           | Loop (_, body) -> scan_branch ~base:path ~tag:"body" body
           | _ -> ())
        end;
        go (i + 1) (seen_drop || stmt_always_drops s) rest
    in
    go 0 false stmts
  and scan_branch ~base ~tag stmts =
    let rec go i seen_drop = function
      | [] -> ()
      | s :: rest ->
        let path = sub_path base tag i in
        if seen_drop then
          emit ~code:"FBV010" ~severity:Diagnostics.Warning ~path
            "statement follows an unconditional drop: the verdict can no \
             longer change"
        else begin
          (match s with
           | If (_, th, el) ->
             scan_branch ~base:path ~tag:"then" th;
             scan_branch ~base:path ~tag:"else" el
           | Loop (_, body) -> scan_branch ~base:path ~tag:"body" body
           | _ -> ())
        end;
        go (i + 1) (seen_drop || stmt_always_drops s) rest
    in
    go 0 false stmts
  in
  List.iter
    (fun el ->
      match el with
      | Block b -> scan_stmts ~base:b.blk_name b.blk_body
      | Table t ->
        List.iter
          (fun a -> scan_stmts ~base:(t.tbl_name ^ "/" ^ a.act_name) a.body)
          t.tbl_actions)
    prog.pipeline;
  (* elements after a drop-everything element: the verdict is settled *)
  ignore
    (List.fold_left
       (fun dropped el ->
         if dropped then
           emit ~code:"FBV011" ~severity:Diagnostics.Warning
             ~path:(element_name el)
             "element is unreachable in effect: an earlier element drops \
              every packet";
         dropped || element_always_drops el)
       false prog.pipeline);
  (* actions no rule or default can reach yet *)
  List.iter
    (function
      | Block _ -> ()
      | Table t ->
        let default_name = fst t.default_action in
        List.iter
          (fun a ->
            if a.act_name <> default_name && a.act_name <> "nop" then
              emit ~code:"FBV012" ~severity:Diagnostics.Info
                ~path:(t.tbl_name ^ "/" ^ a.act_name)
                "action %s is not the default and is unreachable until a \
                 rule referencing it is installed"
                a.act_name)
          t.tbl_actions)
    prog.pipeline;
  (* map liveness: reads and writes across the whole pipeline *)
  let reads = ref SSet.empty and writes = ref SSet.empty in
  let rec expr_uses = function
    | Map_get (m, keys) ->
      reads := SSet.add m !reads;
      List.iter expr_uses keys
    | Bin (_, a, b) -> expr_uses a; expr_uses b
    | Un (_, e) -> expr_uses e
    | Hash (_, es) -> List.iter expr_uses es
    | Const _ | Field _ | Meta _ | Param _ | Time -> ()
  in
  let rec stmt_uses = function
    | Map_put (m, keys, v) | Map_incr (m, keys, v) ->
      writes := SSet.add m !writes;
      List.iter expr_uses keys;
      expr_uses v
    | Map_del (m, keys) ->
      writes := SSet.add m !writes;
      List.iter expr_uses keys
    | If (c, th, el) -> expr_uses c; List.iter stmt_uses th; List.iter stmt_uses el
    | Loop (_, body) -> List.iter stmt_uses body
    | Set_field (_, _, e) | Set_meta (_, e) | Forward e -> expr_uses e
    | Call (_, args) -> List.iter expr_uses args
    | Nop | Drop | Punt _ | Push_header _ | Pop_header _ -> ()
  in
  List.iter
    (function
      | Block b -> List.iter stmt_uses b.blk_body
      | Table t ->
        List.iter (fun (e, _) -> expr_uses e) t.keys;
        List.iter (fun a -> List.iter stmt_uses a.body) t.tbl_actions)
    prog.pipeline;
  List.iter
    (fun (m : map_decl) ->
      let r = SSet.mem m.map_name !reads and w = SSet.mem m.map_name !writes in
      let path = "map/" ^ m.map_name in
      if (not r) && not w then
        emit ~code:"FBV013" ~severity:Diagnostics.Warning ~path
          "map %s is never read or written by the pipeline" m.map_name
      else if w && not r then
        emit ~code:"FBV014" ~severity:Diagnostics.Info ~path
          "map %s is write-only in the data plane (visible only to the \
           control plane)"
          m.map_name
      else if r && not w then
        emit ~code:"FBV015" ~severity:Diagnostics.Info ~path
          "map %s is never written by the pipeline (reads see control-plane \
           state or 0)"
          m.map_name)
    prog.maps;
  List.rev !out

(* -- Pass 3: value-range analysis ------------------------------------- *)

(* Signed int64 intervals with conservative (overflow -> top)
   arithmetic. [top] is the absence of information. *)
type itv = { lo : int64; hi : int64 }

let top = { lo = Int64.min_int; hi = Int64.max_int }
let itv_const v = { lo = v; hi = v }
let itv_bool = { lo = 0L; hi = 1L }
let itv_hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let pow2m1 w =
  if w >= 63 then Int64.max_int else Int64.sub (Int64.shift_left 1L w) 1L

(* smallest bit-width covering a non-negative value *)
let bits_of v =
  let rec go w = if w >= 63 || pow2m1 w >= v then w else go (w + 1) in
  go 0

let sadd a b =
  let r = Int64.add a b in
  if (a > 0L && b > 0L && r < a) || (a < 0L && b < 0L && r > a) then None
  else Some r

let itv_add a b =
  match sadd a.lo b.lo, sadd a.hi b.hi with
  | Some lo, Some hi -> { lo; hi }
  | _ -> top

let itv_neg a =
  if a.lo = Int64.min_int then top else { lo = Int64.neg a.hi; hi = Int64.neg a.lo }

let itv_sub a b = itv_add a (itv_neg b)

(* safe multiplication window: |v| <= 2^31 keeps pairwise products exact *)
let mul_safe v = v >= -0x80000000L && v <= 0x80000000L

let itv_mul a b =
  if mul_safe a.lo && mul_safe a.hi && mul_safe b.lo && mul_safe b.hi then begin
    let ps =
      [ Int64.mul a.lo b.lo; Int64.mul a.lo b.hi; Int64.mul a.hi b.lo;
        Int64.mul a.hi b.hi ]
    in
    { lo = List.fold_left min (List.hd ps) ps;
      hi = List.fold_left max (List.hd ps) ps }
  end
  else top

(* interpreter semantics: x/0 = 0 and x%0 = 0 (eBPF-style totality) *)
let itv_div a b =
  if b.lo = 0L && b.hi = 0L then itv_const 0L
  else if b.lo > 0L then begin
    let qs =
      [ Int64.div a.lo b.lo; Int64.div a.lo b.hi; Int64.div a.hi b.lo;
        Int64.div a.hi b.hi ]
    in
    { lo = List.fold_left min (List.hd qs) qs;
      hi = List.fold_left max (List.hd qs) qs }
  end
  else top

let itv_mod a b =
  if b.lo = 0L && b.hi = 0L then itv_const 0L
  else if b.lo > 0L && b.hi < Int64.max_int then
    if a.lo >= 0L then { lo = 0L; hi = min a.hi (Int64.sub b.hi 1L) }
    else { lo = Int64.neg (Int64.sub b.hi 1L); hi = Int64.sub b.hi 1L }
  else top

let itv_truthy a = a.lo > 0L || a.hi < 0L (* 0 not in range *)
let itv_falsy a = a.lo = 0L && a.hi = 0L

type rctx = {
  prog : program;
  mutable rout : Diagnostics.t list;
  mutable mute : bool;
      (* true while the fixpoint solver re-runs transfer functions;
         diagnostics are only emitted by the post-fixpoint report walk *)
}

let remit ctx ~code ~severity ~path fmt =
  Printf.ksprintf
    (fun message ->
      if not ctx.mute then
        ctx.rout <-
          { Diagnostics.code; pass = "value-range"; severity; path; message }
          :: ctx.rout)
    fmt

(* key guaranteed outside [0,size) on a registers-encoded map: the
   read/write lands on an aliased slot with certainty *)
let check_map_key ctx ~path m keys =
  match find_map ctx.prog m with
  | Some decl when decl.encoding = Enc_registers && decl.key_arity = 1 -> begin
      match keys with
      | [ k ] ->
        let size = Int64.of_int decl.map_size in
        if k.lo >= size || k.hi < 0L then
          remit ctx ~code:"FBV023" ~severity:Diagnostics.Warning ~path
            "key is always outside [0, %d) of registers-encoded map %s: \
             every access aliases through the hash"
            decl.map_size m
      | _ -> ()
    end
  | _ -> ()

let rec reval ctx env ~path e =
  match e with
  | Const v -> itv_const v
  | Field (h, f) -> { lo = 0L; hi = pow2m1 (field_width ctx.prog h f) }
  | Meta m -> (match SMap.find_opt m env with Some i -> i | None -> top)
  | Param _ | Time -> { lo = 0L; hi = Int64.max_int }
  | Map_get (m, keys) ->
    let ks = List.map (reval ctx env ~path) keys in
    check_map_key ctx ~path m ks;
    top
  | Un (Not, e) ->
    let i = reval ctx env ~path e in
    if itv_truthy i then itv_const 0L
    else if itv_falsy i then itv_const 1L
    else itv_bool
  | Un (Neg, e) -> itv_neg (reval ctx env ~path e)
  | Un (Bnot, e) ->
    let i = reval ctx env ~path e in
    if i.lo = i.hi then itv_const (Int64.lognot i.lo) else top
  | Hash (Crc16, es) ->
    List.iter (fun e -> ignore (reval ctx env ~path e)) es;
    { lo = 0L; hi = 0xFFFFL }
  | Hash (Identity, [ e ]) -> reval ctx env ~path e
  | Hash (_, es) ->
    List.iter (fun e -> ignore (reval ctx env ~path e)) es;
    { lo = 0L; hi = 0x7FFFFFFFL }
  | Bin (op, a, b) ->
    let x = reval ctx env ~path a in
    let y = reval ctx env ~path b in
    (match op with
     | Add -> itv_add x y
     | Sub -> itv_sub x y
     | Mul -> itv_mul x y
     | Div ->
       if y.lo = 0L && y.hi = 0L then
         remit ctx ~code:"FBV022" ~severity:Diagnostics.Warning ~path
           "division by an expression that is always 0 (result is always 0)";
       itv_div x y
     | Mod ->
       if y.lo = 0L && y.hi = 0L then
         remit ctx ~code:"FBV022" ~severity:Diagnostics.Warning ~path
           "modulo by an expression that is always 0 (result is always 0)";
       itv_mod x y
     | Band ->
       if x.lo >= 0L && y.lo >= 0L then { lo = 0L; hi = min x.hi y.hi } else top
     | Bor | Bxor ->
       if x.lo >= 0L && y.lo >= 0L then
         { lo = 0L; hi = pow2m1 (max (bits_of x.hi) (bits_of y.hi)) }
       else top
     | Shl | Shr ->
       if y.lo >= 64L || y.hi < 0L then
         remit ctx ~code:"FBV021" ~severity:Diagnostics.Warning ~path
           "shift amount is always outside 0..63 (masked at runtime to %s \
            bits)"
           "6";
       (match op with
        | Shl ->
          if y.lo = y.hi && y.lo >= 0L && y.lo < 63L && x.lo >= 0L then begin
            let k = Int64.to_int y.lo in
            if x.hi <= pow2m1 (62 - k) then
              { lo = Int64.shift_left x.lo k; hi = Int64.shift_left x.hi k }
            else top
          end
          else top
        | _ ->
          if y.lo = y.hi && y.lo >= 0L && y.lo < 64L && x.lo >= 0L then begin
            let k = Int64.to_int y.lo in
            { lo = Int64.shift_right_logical x.lo k;
              hi = Int64.shift_right_logical x.hi k }
          end
          else if x.lo >= 0L then { lo = 0L; hi = x.hi }
          else top)
     | Eq ->
       if x.lo = x.hi && y.lo = y.hi && x.lo = y.lo then itv_const 1L
       else if x.hi < y.lo || y.hi < x.lo then itv_const 0L
       else itv_bool
     | Neq ->
       if x.lo = x.hi && y.lo = y.hi && x.lo = y.lo then itv_const 0L
       else if x.hi < y.lo || y.hi < x.lo then itv_const 1L
       else itv_bool
     | Lt ->
       if x.hi < y.lo then itv_const 1L
       else if x.lo >= y.hi then itv_const 0L
       else itv_bool
     | Le ->
       if x.hi <= y.lo then itv_const 1L
       else if x.lo > y.hi then itv_const 0L
       else itv_bool
     | Gt ->
       if x.lo > y.hi then itv_const 1L
       else if x.hi <= y.lo then itv_const 0L
       else itv_bool
     | Ge ->
       if x.lo >= y.hi then itv_const 1L
       else if x.hi < y.lo then itv_const 0L
       else itv_bool
     | Land ->
       if itv_falsy x || itv_falsy y then itv_const 0L
       else if itv_truthy x && itv_truthy y then itv_const 1L
       else itv_bool
     | Lor ->
       if itv_truthy x || itv_truthy y then itv_const 1L
       else if itv_falsy x && itv_falsy y then itv_const 0L
       else itv_bool)

(* metas assigned anywhere in a statement list (for loop widening and
   table joins) *)
let rec assigned_metas acc = function
  | [] -> acc
  | Set_meta (m, _) :: rest -> assigned_metas (SSet.add m acc) rest
  | If (_, th, el) :: rest ->
    assigned_metas (assigned_metas (assigned_metas acc th) el) rest
  | Loop (_, body) :: rest -> assigned_metas (assigned_metas acc body) rest
  | _ :: rest -> assigned_metas acc rest

let env_join a b =
  SMap.merge
    (fun _ x y ->
      match x, y with Some x, Some y -> Some (itv_hull x y) | _ -> None)
    a b

(* The original syntax-directed implementation, kept verbatim as the
   reference the framework-hosted pass below is differentially tested
   against (same program -> byte-identical diagnostics). *)
let value_range_reference prog =
  let ctx = { prog; rout = []; mute = false } in
  let rec eval_stmts env ~base ~iters stmts =
    List.fold_left
      (fun (env, i) s ->
        (eval_stmt env ~path:(stmt_path base i) ~iters s, i + 1))
      (env, 0) stmts
    |> fst
  and eval_branch env ~base ~tag ~iters stmts =
    List.fold_left
      (fun (env, i) s ->
        (eval_stmt env ~path:(sub_path base tag i) ~iters s, i + 1))
      (env, 0) stmts
    |> fst
  and eval_stmt env ~path ~iters = function
    | Nop | Drop | Punt _ | Push_header _ | Pop_header _ -> env
    | Set_meta (m, e) -> SMap.add m (reval ctx env ~path e) env
    | Set_field (h, f, e) ->
      let v = reval ctx env ~path e in
      let w = field_width prog h f in
      if w < 63 && (v.lo > pow2m1 w || v.hi < 0L) then
        remit ctx ~code:"FBV024" ~severity:Diagnostics.Warning ~path
          "value is always outside 0..%Ld and cannot fit the %d-bit field \
           %s.%s"
          (pow2m1 w) w h f;
      env
    | Map_put (m, keys, v) ->
      check_map_key ctx ~path m (List.map (reval ctx env ~path) keys);
      ignore (reval ctx env ~path v);
      env
    | Map_incr (m, keys, v) ->
      check_map_key ctx ~path m (List.map (reval ctx env ~path) keys);
      ignore (reval ctx env ~path v);
      env
    | Map_del (m, keys) ->
      check_map_key ctx ~path m (List.map (reval ctx env ~path) keys);
      env
    | Forward e | Call (_, [ e ]) ->
      ignore (reval ctx env ~path e);
      env
    | Call (_, args) ->
      List.iter (fun e -> ignore (reval ctx env ~path e)) args;
      env
    | If (c, th, el) ->
      let ci = reval ctx env ~path c in
      if itv_falsy ci && th <> [] then
        remit ctx ~code:"FBV020" ~severity:Diagnostics.Warning ~path
          "condition is always false: then-branch is never taken"
      else if itv_truthy ci then
        remit ctx ~code:"FBV020" ~severity:Diagnostics.Warning ~path
          (if el = [] then "condition is always true: the guard is redundant"
           else "condition is always true: else-branch is never taken");
      let env_t = eval_branch env ~base:path ~tag:"then" ~iters th in
      let env_e = eval_branch env ~base:path ~tag:"else" ~iters el in
      env_join env_t env_e
    | Loop (n, body) ->
      let total = iters * max 1 n in
      if iters > 1 && total > Typecheck.max_loop_bound then
        remit ctx ~code:"FBV025" ~severity:Diagnostics.Warning ~path
          "nested loops execute the body %d times, dwarfing the per-loop \
           ceiling of %d"
          total Typecheck.max_loop_bound;
      (* widen loop-carried metas to top, then analyze the body once *)
      let env =
        SSet.fold (fun m env -> SMap.remove m env) (assigned_metas SSet.empty body) env
      in
      let env = SMap.add "_loop_i" { lo = 0L; hi = Int64.of_int (max 0 (n - 1)) } env in
      eval_branch env ~base:path ~tag:"body" ~iters:total body
  in
  List.iter
    (fun el ->
      match el with
      | Block b -> ignore (eval_stmts SMap.empty ~base:b.blk_name ~iters:1 b.blk_body)
      | Table t ->
        List.iteri
          (fun i (e, _) ->
            ignore
              (reval ctx SMap.empty ~path:(Printf.sprintf "%s/key.%d" t.tbl_name i) e))
          t.keys;
        List.iter
          (fun a ->
            ignore
              (eval_stmts SMap.empty ~base:(t.tbl_name ^ "/" ^ a.act_name)
                 ~iters:1 a.body))
          t.tbl_actions)
    prog.pipeline;
  List.rev ctx.rout

(* -- Pass 3, re-hosted on the dataflow framework ----------------------- *)

(* The interval environment as an abstract domain. A missing key means
   top, so the join intersects keys ([env_join]); [Bot] is the explicit
   bottom the solver needs for not-yet-reached nodes. *)
module VR_domain = struct
  type t = Bot | Env of itv SMap.t

  let bottom = Bot

  let equal a b =
    match a, b with
    | Bot, Bot -> true
    | Env x, Env y -> SMap.equal (fun a b -> a.lo = b.lo && a.hi = b.hi) x y
    | _ -> false

  let join a b =
    match a, b with
    | Bot, x | x, Bot -> x
    | Env x, Env y -> Env (env_join x y)

  let widen = join (* the loop-head transfer is already idempotent *)
end

module VR_solver = Dataflow.Solver (VR_domain)

(* One node's transfer function. Runs twice per node: muted during the
   fixpoint, un-muted during the report walk — the emission logic is
   identical to the reference implementation's. *)
let vr_transfer ctx (node : Dataflow.Cfg.node) env =
  let path = node.Dataflow.Cfg.path in
  match node.Dataflow.Cfg.kind with
  | Dataflow.Cfg.Entry | Dataflow.Cfg.Exit | Dataflow.Cfg.Join
  | Dataflow.Cfg.Loop_exit | Dataflow.Cfg.Action_select
  | Dataflow.Cfg.Action_entry _ -> env
  | Dataflow.Cfg.Key (e, _) ->
    ignore (reval ctx env ~path e);
    env
  | Dataflow.Cfg.Branch b ->
    let th, el =
      match b.Dataflow.Cfg.br_stmt with
      | If (_, th, el) -> (th, el)
      | _ -> ([], [])
    in
    let ci = reval ctx env ~path b.Dataflow.Cfg.cond in
    if itv_falsy ci && th <> [] then
      remit ctx ~code:"FBV020" ~severity:Diagnostics.Warning ~path
        "condition is always false: then-branch is never taken"
    else if itv_truthy ci then
      remit ctx ~code:"FBV020" ~severity:Diagnostics.Warning ~path
        (if el = [] then "condition is always true: the guard is redundant"
         else "condition is always true: else-branch is never taken");
    env
  | Dataflow.Cfg.Loop_head (n, s) ->
    let body = match s with Loop (_, body) -> body | _ -> [] in
    let iters = node.Dataflow.Cfg.vr_iters in
    let total = iters * max 1 n in
    if iters > 1 && total > Typecheck.max_loop_bound then
      remit ctx ~code:"FBV025" ~severity:Diagnostics.Warning ~path
        "nested loops execute the body %d times, dwarfing the per-loop \
         ceiling of %d"
        total Typecheck.max_loop_bound;
    (* widen loop-carried metas to top, bound the iteration counter *)
    let env =
      SSet.fold (fun m env -> SMap.remove m env)
        (assigned_metas SSet.empty body) env
    in
    SMap.add "_loop_i" { lo = 0L; hi = Int64.of_int (max 0 (n - 1)) } env
  | Dataflow.Cfg.Atom s -> (
    match s with
    | Nop | Drop | Punt _ | Push_header _ | Pop_header _ -> env
    | Set_meta (m, e) -> SMap.add m (reval ctx env ~path e) env
    | Set_field (h, f, e) ->
      let v = reval ctx env ~path e in
      let w = field_width ctx.prog h f in
      if w < 63 && (v.lo > pow2m1 w || v.hi < 0L) then
        remit ctx ~code:"FBV024" ~severity:Diagnostics.Warning ~path
          "value is always outside 0..%Ld and cannot fit the %d-bit field \
           %s.%s"
          (pow2m1 w) w h f;
      env
    | Map_put (m, keys, v) ->
      check_map_key ctx ~path m (List.map (reval ctx env ~path) keys);
      ignore (reval ctx env ~path v);
      env
    | Map_incr (m, keys, v) ->
      check_map_key ctx ~path m (List.map (reval ctx env ~path) keys);
      ignore (reval ctx env ~path v);
      env
    | Map_del (m, keys) ->
      check_map_key ctx ~path m (List.map (reval ctx env ~path) keys);
      env
    | Forward e | Call (_, [ e ]) ->
      ignore (reval ctx env ~path e);
      env
    | Call (_, args) ->
      List.iter (fun e -> ignore (reval ctx env ~path e)) args;
      env
    | If _ | Loop _ -> env (* control flow lives on Branch/Loop_head *))

let vr_node ctx node = function
  | VR_domain.Bot -> VR_domain.Bot
  | VR_domain.Env env -> VR_domain.Env (vr_transfer ctx node env)

let value_range prog =
  let ctx = { prog; rout = []; mute = true } in
  List.iter
    (fun cfg ->
      let sol =
        VR_solver.forward cfg ~init:(VR_domain.Env SMap.empty)
          ~transfer:(vr_node ctx)
      in
      (* report on the fixpoint, one visit per node in program order *)
      ctx.mute <- false;
      Array.iter
        (fun (node : Dataflow.Cfg.node) ->
          ignore (vr_node ctx node sol.VR_solver.input.(node.Dataflow.Cfg.id)))
        cfg.Dataflow.Cfg.nodes;
      ctx.mute <- true)
    (Dataflow.Cfg.of_program prog);
  List.rev ctx.rout

(* -- Pass 4: migration safety ------------------------------------------ *)

let migration_safety prog =
  let mutated = ref SSet.empty in
  let rec stmt_mutates = function
    | Map_put (m, _, _) | Map_incr (m, _, _) | Map_del (m, _) ->
      mutated := SSet.add m !mutated
    | If (_, th, el) -> List.iter stmt_mutates th; List.iter stmt_mutates el
    | Loop (_, body) -> List.iter stmt_mutates body
    | _ -> ()
  in
  List.iter
    (function
      | Block b -> List.iter stmt_mutates b.blk_body
      | Table t -> List.iter (fun a -> List.iter stmt_mutates a.body) t.tbl_actions)
    prog.pipeline;
  List.filter_map
    (fun (m : map_decl) ->
      if not (SSet.mem m.map_name !mutated) then None
      else
        let path = "map/" ^ m.map_name in
        match m.encoding with
        | Enc_registers ->
          Some
            (Diagnostics.v ~code:"FBV030" ~pass:"migration-safety"
               ~severity:Diagnostics.Warning ~path
               "per-packet-mutated map %s is pinned to the registers \
                encoding: key aliasing makes freeze-copy migration lossy \
                (\xc2\xa73.4)"
               m.map_name)
        | Enc_flow_state ->
          Some
            (Diagnostics.v ~code:"FBV031" ~pass:"migration-safety"
               ~severity:Diagnostics.Warning ~path
               "per-packet-mutated map %s is pinned to the flow-state \
                encoding: inserts are dropped when full, so freeze-copy \
                migration may lose updates (\xc2\xa73.4)"
               m.map_name)
        | Enc_auto | Enc_stateful_table -> None)
    prog.maps

(* -- Pass 5: tenant isolation ------------------------------------------ *)

let is_vlan_guarded = function
  | Block { blk_body = [ If (Bin (Eq, Meta "vlan_vid", Const _), _, []) ]; _ } ->
    true
  | Block _ -> false
  | Table _ -> true (* tables are guarded at rule-install time *)

let tenant_isolation prog =
  if prog.owner = "infra" then []
  else begin
    let ns = Compose.namespace prog in
    let access =
      List.map
        (fun v ->
          match v with
          | Compose.Touches_foreign_map (el, m) ->
            Diagnostics.v ~code:"FBV040" ~pass:"tenant-isolation"
              ~severity:Diagnostics.Warning ~path:el
              "element touches foreign map %s: admission will reject this \
               unless the infrastructure exports it"
              m
          | Compose.Name_collision n ->
            Diagnostics.v ~code:"FBV040" ~pass:"tenant-isolation"
              ~severity:Diagnostics.Warning ~path:n "name collision on %s" n
          | Compose.Unauthorized_drop el ->
            Diagnostics.v ~code:"FBV040" ~pass:"tenant-isolation"
              ~severity:Diagnostics.Warning ~path:el
              "element drops traffic outside its VLAN guard")
        (Compose.check_access ns)
    in
    let unguarded =
      List.filter_map
        (fun el ->
          if is_vlan_guarded el then None
          else
            Some
              (Diagnostics.v ~code:"FBV041" ~pass:"tenant-isolation"
                 ~severity:Diagnostics.Info ~path:(element_name el)
                 "tenant element is not VLAN-guarded: %s will wrap it at \
                  admission (owner %s)"
                 "Compose.guard_element" prog.owner))
        prog.pipeline
    in
    access @ unguarded
  end

(* -- Pass 6: shard-safety ---------------------------------------------- *)

(* Classify every map's datapath access pattern for the domain-sharded
   datapath (ROADMAP item 1) and Reconfig's two-version swap: reads
   replicate freely, increments merge by sum, puts/deletes need an
   owner shard, and read-modify-write races outright. Severity of the
   race is owner-sensitive: infra programs may pin a map to one shard,
   tenant extensions get sharded and must not carry the idiom. *)
let shard_safety prog =
  let open Dataflow.Shard_safety in
  let ps = analyze prog in
  let infra = prog.owner = "infra" in
  List.concat_map
    (fun mr ->
      let path = "map/" ^ mr.mr_map in
      let has p = List.exists p mr.mr_sites in
      let rmw_diags =
        List.filter_map
          (fun s ->
            if not s.s_rmw then None
            else
              Some
                (Diagnostics.v ~code:"FBV052" ~pass:"shard-safety"
                   ~severity:
                     (if infra then Diagnostics.Warning else Diagnostics.Error)
                   ~path:s.s_path
                   "read-modify-write on map %s: the written value derives \
                    from a read of the same map and races across shards \
                    (infra may pin the map to one shard; tenant extensions \
                    must use commutative '+=' updates)"
                   mr.mr_map))
          mr.mr_sites
      in
      rmw_diags
      @
      match mr.mr_class with
      | Read_only -> []
      | Commutative ->
        Diagnostics.v ~code:"FBV050" ~pass:"shard-safety"
          ~severity:Diagnostics.Info ~path
          "map %s is shard-commutative: every datapath write is an \
           increment, so per-shard replicas merge by sum"
          mr.mr_map
        :: (if has (fun s -> s.s_access = Read) then
              [ Diagnostics.v ~code:"FBV053" ~pass:"shard-safety"
                  ~severity:Diagnostics.Info ~path
                  "shard-commutative map %s is also read on the datapath: \
                   each shard observes its partial counts until merge"
                  mr.mr_map ]
            else [])
      | Exclusive ->
        let writes =
          List.filter
            (fun s -> s.s_rmw || s.s_access = Put || s.s_access = Del)
            mr.mr_sites
        in
        Diagnostics.v ~code:"FBV051" ~pass:"shard-safety"
          ~severity:Diagnostics.Warning ~path
          "map %s needs an exclusive owner shard: %d write site(s) carry \
           last-writer-wins state that cannot be merged across shards"
          mr.mr_map (List.length writes)
        :: (if
              has (fun s -> s.s_access = Incr)
              && has (fun s -> s.s_access = Put || s.s_access = Del)
            then
              [ Diagnostics.v ~code:"FBV054" ~pass:"shard-safety"
                  ~severity:Diagnostics.Warning ~path
                  "map %s mixes increments with put/delete writes: summed \
                   and last-writer-wins state cannot be merged consistently"
                  mr.mr_map ]
            else []))
    ps.ps_maps

(* -- Pass 7: static cost ----------------------------------------------- *)

(* WCET-style certificate checks: where the certified worst case and
   the planner's syntax-directed heuristic diverge, and where the cost
   concentrates. *)
let static_cost prog =
  let c = Dataflow.Cost.analyze prog in
  let divergence =
    List.filter_map
      (fun (elem, cert, heur) ->
        if cert > 0 && heur >= 2 * cert then
          Some
            (Diagnostics.v ~code:"FBV061" ~pass:"static-cost"
               ~severity:Diagnostics.Warning ~path:elem
               "planner heuristic charges %d work units but the certified \
                worst case is %d: statically dead branches inflate the \
                placement cost model"
               heur cert)
        else None)
      c.Dataflow.Cost.cc_elements
  in
  let dominance =
    if
      c.Dataflow.Cost.cc_certified >= 16
      && List.length c.Dataflow.Cost.cc_elements > 1
    then
      List.filter_map
        (fun (elem, cert, _) ->
          if cert * 5 >= c.Dataflow.Cost.cc_certified * 4 then
            Some
              (Diagnostics.v ~code:"FBV060" ~pass:"static-cost"
                 ~severity:Diagnostics.Info ~path:elem
                 "element dominates the certified per-packet cost: %d of %d \
                  work units"
                 cert c.Dataflow.Cost.cc_certified)
          else None)
        c.Dataflow.Cost.cc_elements
    else []
  in
  let budget =
    if c.Dataflow.Cost.cc_certified > 2048 then
      [ Diagnostics.v ~code:"FBV062" ~pass:"static-cost"
          ~severity:Diagnostics.Warning ~path:"program"
          "certified worst-case per-packet cost of %d work units exceeds \
           half the default admission budget of 4096"
          c.Dataflow.Cost.cc_certified ]
    else []
  in
  divergence @ dominance @ budget

(* -- Entry points ------------------------------------------------------ *)

let passes =
  [ ("uninit-read", uninit_read); ("dead-code", dead_code);
    ("value-range", value_range); ("migration-safety", migration_safety);
    ("tenant-isolation", tenant_isolation); ("shard-safety", shard_safety);
    ("static-cost", static_cost) ]

let pass_names = List.map fst passes

let verify prog =
  Diagnostics.normalize (List.concat_map (fun (_, pass) -> pass prog) passes)

let of_typecheck_error (e : Typecheck.error) =
  Diagnostics.v ~code:"FBV000" ~pass:"typecheck" ~severity:Diagnostics.Error
    ~path:e.Typecheck.where "%s" e.Typecheck.what

let check prog =
  match Typecheck.check_program prog with
  | Error es -> Diagnostics.normalize (List.map of_typecheck_error es)
  | Ok () -> verify prog

(* -- Code registry (flexnet lint --explain) ---------------------------- *)

let explanations =
  [ ("FBV000", ("typecheck failure",
     "The program is not well-formed: unknown header/field/map, wrong map \
      key arity, a loop bound over the ceiling, or a malformed table. \
      Typecheck failures suppress the semantic passes, which assume \
      well-formed input."));
    ("FBV001", ("uninitialized header access",
     "A header field is read or written at a point where no parser rule and \
      no prior push_header can have produced the header. Add a parser rule \
      for the header or guard the access."));
    ("FBV002", ("uninitialized metadata read",
     "A metadata slot is read before any assignment; reads default to 0. \
      Assign the slot first, or rely on the documented default \
      deliberately."));
    ("FBV010", ("statement after unconditional drop",
     "Once a drop executes, the verdict cannot change: everything after it \
      at the same nesting level is dead. Guards whose condition folds to a \
      constant count as unconditional."));
    ("FBV011", ("element after drop-everything element",
     "An earlier pipeline element drops every packet, so this element never \
      sees traffic."));
    ("FBV012", ("unreachable non-default action",
     "The action is not the table's default and no installed rule references \
      it yet; it becomes reachable when the control plane installs such a \
      rule."));
    ("FBV013", ("untouched map",
     "The map is never read or written by the pipeline; it only consumes \
      memory. Remove it or wire it into an element."));
    ("FBV014", ("write-only map",
     "The pipeline writes the map but never reads it; its contents are \
      visible only to the control plane (a telemetry idiom)."));
    ("FBV015", ("read-only map",
     "The pipeline reads the map but never writes it; reads see \
      control-plane-installed state or 0."));
    ("FBV020", ("constant branch condition",
     "Interval analysis proves the condition always true or always false, \
      so one arm never runs. Usually a typo or a leftover debugging \
      guard."));
    ("FBV021", ("shift out of range",
     "The shift amount is always outside 0..63; the runtime masks it to 6 \
      bits, which is rarely what was meant."));
    ("FBV022", ("division by constant zero",
     "The divisor/modulus is always 0. FlexBPF defines x/0 = x%0 = 0, so \
      the whole expression is always 0."));
    ("FBV023", ("registers key always out of range",
     "Every access lands outside [0, size) of a registers-encoded map, so \
      it aliases through the hash with certainty. Bound the key or grow the \
      map."));
    ("FBV024", ("value cannot fit field",
     "The assigned value is always outside the target field's width; the \
      store truncates."));
    ("FBV025", ("nested loop budget",
     "The aggregate iteration count of nested loops dwarfs the per-loop \
      ceiling; per-packet latency will suffer on every target."));
    ("FBV030", ("lossy migration: registers encoding",
     "A per-packet-mutated map is pinned to the registers encoding, whose \
      key aliasing makes freeze-copy migration lossy (see §3.4)."));
    ("FBV031", ("lossy migration: flow-state encoding",
     "A per-packet-mutated map is pinned to the flow-state encoding, which \
      drops inserts when full, so freeze-copy migration may lose updates."));
    ("FBV040", ("tenant access violation",
     "The element touches a foreign map, collides on a name, or drops \
      traffic outside its VLAN guard; admission will reject it unless the \
      infrastructure exports the resource."));
    ("FBV041", ("tenant element not VLAN-guarded",
     "Admission wraps unguarded tenant elements in a VLAN guard \
      automatically; this is informational."));
    ("FBV050", ("shard-commutative map",
     "Every datapath write to the map is an increment, so per-shard \
      replicas merge by sum — the map is safe for the domain-sharded \
      datapath without coordination (count-min/sketch idiom)."));
    ("FBV051", ("map needs an exclusive owner shard",
     "The map has put/delete write sites carrying last-writer-wins state; \
      under domain sharding its keyspace must be owned by a single shard."));
    ("FBV052", ("read-modify-write race",
     "A value written to the map derives from a read of the same map \
      (x = f(x) rather than x += k). Across shards the lost-update race \
      makes the result depend on interleaving. Error for tenant extensions \
      (they get sharded); warning for infra programs (which may pin the map \
      to one shard). Rewrite as an increment where possible."));
    ("FBV053", ("commutative map read on the datapath",
     "The shard-commutative map is also read per packet; each shard \
      observes its partial counts until a merge, so thresholds fire on \
      shard-local values."));
    ("FBV054", ("mixed write disciplines",
     "The map receives both increments and put/delete writes; summed and \
      last-writer-wins state cannot be merged consistently across \
      shards."));
    ("FBV060", ("dominant element",
     "One element accounts for at least 80%% of the certified per-packet \
      cost; it is the optimization and placement bottleneck."));
    ("FBV061", ("planner cost model divergence",
     "The placement heuristic charges at least twice the certified \
      worst-case work for this element, because statically dead branches \
      still count toward the heuristic. Remove the dead code or expect \
      conservative placement."));
    ("FBV062", ("certified cost near the admission budget",
     "The certified worst-case per-packet cost exceeds half the default \
      admission budget (4096 work units); growth or composition with other \
      programs may push it over the gate."));
  ]

let explain code = List.assoc_opt (String.uppercase_ascii code) explanations
