(** Resource vectors and device resource snapshots. The vector type
    [t] describes both a capacity (what a stage, tile pool, or device
    offers) and a demand (what a program element needs); a [snapshot]
    is an immutable copy of one device's resource state that [admit]
    and friends update purely, so the compiler can plan placements
    without touching hardware. *)

type t = {
  sram_bytes : int;
  tcam_bytes : int;
  action_slots : int;
  instructions : int; (* instruction store for blocks/actions *)
}

val zero : t

val v :
  ?sram_bytes:int -> ?tcam_bytes:int -> ?action_slots:int ->
  ?instructions:int -> unit -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t

(** [fits demand capacity]: does the demand fit wholly? *)
val fits : t -> t -> bool

(** Fraction of [capacity] consumed by [used] on the most-loaded
    dimension; zero-capacity dimensions are ignored. *)
val utilization : used:t -> capacity:t -> float

(** Demand of a program element, from the static analysis. *)
val of_footprint : Flexbpf.Analysis.footprint -> t

val pp : Format.formatter -> t -> unit

(** {2 Slots and rejections} *)

type tile_kind = Hash_tile | Index_tile | Tcam_tile

val tile_kind_to_string : tile_kind -> string

type slot =
  | In_stage of int
  | In_tiles of tile_kind * int (* tile kind, number of tiles *)
  | In_pool
  | In_pem

val slot_to_string : slot -> string

type reject =
  | No_capacity of string
  | Unsupported of string

val reject_to_string : reject -> string

(** {2 Snapshots} *)

(** How a device partitions its resources — the fungibility taxonomy
    (§3.3): per-stage (RMT), stages + PEM (elastic pipe), typed tiles
    over a shared pool (Trident4-class), or one fungible pool (dRMT,
    NIC, FPGA, host). *)
type shape =
  | Sh_staged of { stages : int; per_stage : t }
  | Sh_staged_pem of { stages : int; per_stage : t; pem_slots : int }
  | Sh_tiled of { tiles : (tile_kind * int) list; tile_bytes : int; pool : t }
  | Sh_pooled of { pool : t }

(** Residency of an oversubscribed table: the device holds a bounded
    hot tier of [res_device_rules] rules while all [res_logical_rules]
    stay authoritative on the host tier; device-tier misses demand-page
    at run time. *)
type residency = {
  res_table : string;
  res_logical_rules : int;
  res_device_rules : int;
  res_miss_rate : float; (* planner prediction, Zipf(1) reference *)
}

(** Predicted steady-state miss rate of a [device]-rule hot tier over
    [logical] rules under a Zipf(1) popularity law (harmonic-number
    approximation H_n ≈ ln n + γ). 0 when everything fits, 1 when
    nothing does. *)
val predicted_miss_rate : logical:int -> device:int -> float

type placed = {
  pl_name : string;
  pl_order : int;
  pl_slot : slot;
  pl_demand : t;
  pl_element : Flexbpf.Ast.element;
  pl_residency : residency option;
      (* present iff the element is a table admitted oversubscribed *)
}

type snapshot = {
  snap_device : string;
  shape : shape;
  max_block_cycles : int;
  parser_capacity : int;
  stage_used : t array; (* never mutated: copied on update *)
  pool_used : t;
  tiles_used : (tile_kind * int) list;
  pem_used : int;
  placed : placed list; (* sorted by pl_order *)
  parser_rules : string list; (* rule names, in device order *)
  map_refs : (string * int) list;
  pending_unref : string list; (* deferred refcount drops, see [finalize] *)
}

val find_placed : snapshot -> string -> placed option

(** Demand of an element within context [ctx], including map bytes for
    maps not yet referenced in the snapshot (first referencing element
    pays). Returns (demand, newly charged maps). *)
val element_demand :
  snapshot -> ctx:Flexbpf.Ast.program -> Flexbpf.Ast.element ->
  t * (string * int) list

(** Minimum admissible stage for pipeline position [order] on a staged
    shape (an element sits no earlier than its program-order
    predecessors). *)
val min_stage : snapshot -> order:int -> int

(** Full install-time admission of one element of [ctx] at pipeline
    position [order]: block-cycle bound, demand, architecture-specific
    slotting, parser capacity for missing context rules. On success
    returns the chosen slot and the post-install snapshot — exactly
    what [Targets.Device.install] would do to the live device.

    Oversubscription is admission policy, not rejection: a table whose
    full match memory does not slot is admitted with the largest
    device tier that does fit, its [placed] entry carrying the
    [residency] (clamped demand, predicted miss rate). *)
val admit :
  snapshot -> ctx:Flexbpf.Ast.program -> order:int -> Flexbpf.Ast.element ->
  (slot * snapshot, reject) result

(** Release a placed element: demand refunded now, map-reference drop
    deferred to [finalize] (the device's frozen-window semantics, under
    which all plans execute). [None] if absent. *)
val release : snapshot -> string -> (slot * snapshot) option

(** Process deferred map unrefs — the snapshot counterpart of the
    device's thaw-time cleanup. *)
val finalize : snapshot -> snapshot

val add_parser_rule :
  snapshot -> Flexbpf.Ast.parser_rule -> (snapshot, reject) result

(** [None] if the rule is not present. *)
val remove_parser_rule : snapshot -> string -> snapshot option

(** Re-pack staged elements first-fit in pipeline order (the snapshot
    counterpart of [Targets.Device.defragment], same first-fit, so a
    planned defrag predicts the device's slots). Returns (moves, new
    snapshot). *)
val defragment : snapshot -> int * snapshot

(** Occupied resources summed over the shape's partitions; tiles count
    as whole tiles of SRAM. *)
val used : snapshot -> t

(** Structural differences between a predicted and an observed
    snapshot — empty when the planner's model matched the device. *)
val diff : snapshot -> snapshot -> string list

val pp_snapshot : Format.formatter -> snapshot -> unit
