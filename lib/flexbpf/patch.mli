(** The incremental-change DSL (§3.2).

    Runtime changes "need not specify a complete network processing
    stack — they are simply additions, deletions, or changes to the
    existing programs". A patch pairs {e selectors} (name-pattern
    matching over the base program, as the paper proposes) with
    structural operations. Applying a patch produces the new program
    plus a [diff] that the incremental compiler turns into a minimal
    reconfiguration plan. *)

(** Glob matching: ['*'] matches any substring, ['?'] any character. *)
val glob_matches : string -> string -> bool

type selector =
  | Sel_name of string (* glob over element names *)
  | Sel_kind of [ `Table | `Block ]
  | Sel_and of selector * selector
  | Sel_or of selector * selector

val selector_matches : selector -> Ast.element -> bool
val pp_selector : Format.formatter -> selector -> unit

type position =
  | At_start
  | At_end
  | Before of selector (* first match *)
  | After of selector (* first match *)

type op =
  | Add_element of position * Ast.element
  | Remove_element of selector (* every match *)
  | Replace_element of selector * Ast.element
  | Set_default of selector * (string * int64 list)
  | Add_parser_rule of Ast.parser_rule
  | Remove_parser_rule of string
  | Add_map of Ast.map_decl
  | Remove_map of string
  | Add_header of Ast.header_decl

type t = { patch_name : string; patch_owner : string; ops : op list }

val v : ?owner:string -> string -> op list -> t

(** What changed, by element name — consumed by
    [Compiler.Incremental.apply_patch]. *)
type diff = {
  added : string list;
  removed : string list;
  modified : string list;
  parser_changed : bool;
  maps_added : string list;
  maps_removed : string list;
}

val empty_diff : diff
val merge_diff : diff -> diff -> diff
val diff_size : diff -> int

type error =
  | Selector_no_match of selector
  | Duplicate_name of string
  | Unknown_name of string
  | Not_a_table of string

val pp_error : Format.formatter -> error -> unit

(** Apply all operations in order; the result is type-checked, so a
    patch can never produce an ill-formed program. *)
val apply :
  t -> Ast.program ->
  (Ast.program * diff,
   [ `Patch of error | `Ill_typed of Typecheck.error list ])
  result
