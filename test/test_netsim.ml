(* Tests for the discrete-event network simulator substrate. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- Event queue -------------------------------------------------------- *)

let test_eq_ordering () =
  let q = Netsim.Event_queue.create () in
  let out = ref [] in
  let ev time seq =
    Netsim.Event_queue.push q ~time ~seq (fun () ->
        out := Netsim.Event_queue.min_time q :: !out)
  in
  ev 3.0 1;
  ev 1.0 2;
  ev 2.0 3;
  let times = ref [] in
  let rec drain () =
    if not (Netsim.Event_queue.is_empty q) then begin
      times := Netsim.Event_queue.min_time q :: !times;
      ignore (Netsim.Event_queue.pop_exn q : unit -> unit);
      drain ()
    end
  in
  drain ();
  Alcotest.(check (list (float 0.))) "sorted" [ 1.0; 2.0; 3.0 ] (List.rev !times)

let test_eq_tiebreak () =
  let q = Netsim.Event_queue.create () in
  let order = ref [] in
  for i = 1 to 50 do
    Netsim.Event_queue.push q ~time:1.0 ~seq:i (fun () -> order := i :: !order)
  done;
  let rec drain () =
    if not (Netsim.Event_queue.is_empty q) then begin
      (Netsim.Event_queue.pop_exn q) ();
      drain ()
    end
  in
  drain ();
  Alcotest.(check (list int)) "fifo within same time" (List.init 50 (fun i -> i + 1))
    (List.rev !order)

let test_eq_grows () =
  let q = Netsim.Event_queue.create () in
  for i = 0 to 999 do
    Netsim.Event_queue.push q ~time:(float_of_int (999 - i)) ~seq:i ignore
  done;
  check_int "length" 1000 (Netsim.Event_queue.length q);
  let last = ref (-1.) in
  let ok = ref true in
  let rec drain () =
    if not (Netsim.Event_queue.is_empty q) then begin
      let time = Netsim.Event_queue.min_time q in
      ignore (Netsim.Event_queue.pop_exn q : unit -> unit);
      if time < !last then ok := false;
      last := time;
      drain ()
    end
  in
  drain ();
  check "heap order preserved across growth" true !ok

let test_eq_empty_pop () =
  let q = Netsim.Event_queue.create () in
  check "fresh queue empty" true (Netsim.Event_queue.is_empty q);
  Alcotest.(check (float 0.)) "min_time of empty" infinity
    (Netsim.Event_queue.min_time q);
  Alcotest.check_raises "pop of empty raises"
    (Invalid_argument "Event_queue.pop_exn: empty queue") (fun () ->
      ignore (Netsim.Event_queue.pop_exn q : unit -> unit))

(* Model-based qcheck property: under arbitrary interleavings of pushes
   and pops — with timestamps drawn from a tiny range so duplicates are
   the common case, and pops interleaved so the hole-sifting insert has
   to cope with a churning array — every pop returns the pending event
   that is minimal in (time, seq). Among equal timestamps that is FIFO
   order, the invariant the deterministic sharded scheduler leans on. *)
let prop_eq_interleaved_fifo =
  QCheck.Test.make
    ~name:"event queue: interleaved push/pop is FIFO among equal times"
    ~count:500
    QCheck.(list (pair (int_bound 4) bool))
    (fun ops ->
      let q = Netsim.Event_queue.create () in
      let popped = ref (-1., -1) in
      let model = ref [] in
      (* pending (time, seq), unsorted *)
      let seq = ref 0 in
      let ok = ref true in
      let do_pop () =
        let reported = Netsim.Event_queue.min_time q in
        (Netsim.Event_queue.pop_exn q) ();
        let min =
          List.fold_left Stdlib.min (List.hd !model) (List.tl !model)
        in
        if !popped <> min || reported <> fst min then ok := false;
        model := List.filter (fun x -> x <> min) !model
      in
      List.iter
        (fun (t, push) ->
          if push || !model = [] then begin
            let id = (float_of_int t, !seq) in
            Netsim.Event_queue.push q ~time:(fst id) ~seq:!seq (fun () ->
                popped := id);
            model := id :: !model;
            incr seq
          end
          else do_pop ())
        ops;
      while !model <> [] do
        do_pop ()
      done;
      !ok && Netsim.Event_queue.is_empty q)

(* -- Sim ----------------------------------------------------------------- *)

let test_sim_clock () =
  let sim = Netsim.Sim.create () in
  let seen = ref [] in
  Netsim.Sim.at sim 1.0 (fun () -> seen := ("a", Netsim.Sim.now sim) :: !seen);
  Netsim.Sim.at sim 0.5 (fun () -> seen := ("b", Netsim.Sim.now sim) :: !seen);
  ignore (Netsim.Sim.run sim);
  Alcotest.(check (list (pair string (float 0.))))
    "events in time order with clock set"
    [ ("b", 0.5); ("a", 1.0) ]
    (List.rev !seen)

let test_sim_past_rejected () =
  let sim = Netsim.Sim.create () in
  Netsim.Sim.at sim 1.0 (fun () ->
      Alcotest.check_raises "cannot schedule in the past"
        (Invalid_argument "Sim.at: time 0.500000000 is before now 1.000000000")
        (fun () -> Netsim.Sim.at sim 0.5 ignore));
  ignore (Netsim.Sim.run sim)

let test_sim_until () =
  let sim = Netsim.Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Netsim.Sim.at sim (float_of_int i) (fun () -> incr count)
  done;
  ignore (Netsim.Sim.run ~until:5.5 sim);
  check_int "only events before horizon ran" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.5 (Netsim.Sim.now sim)

let test_sim_nested_scheduling () =
  let sim = Netsim.Sim.create () in
  let hits = ref 0 in
  let rec cascade n =
    if n > 0 then
      Netsim.Sim.after sim 0.1 (fun () ->
          incr hits;
          cascade (n - 1))
  in
  cascade 5;
  ignore (Netsim.Sim.run sim);
  check_int "cascaded events all ran" 5 !hits;
  Alcotest.(check (float 1e-9)) "time advanced" 0.5 (Netsim.Sim.now sim)

let test_sim_every () =
  let sim = Netsim.Sim.create () in
  let ticks = ref 0 in
  Netsim.Sim.every sim ~period:0.1 (fun () ->
      incr ticks;
      !ticks < 4);
  ignore (Netsim.Sim.run sim);
  check_int "periodic task self-stopped" 4 !ticks

(* -- Packet --------------------------------------------------------------- *)

let test_packet_fields () =
  let pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
        Netsim.Packet.ipv4 ~src:1L ~dst:2L ();
        Netsim.Packet.tcp ~sport:100L ~dport:200L () ]
  in
  Alcotest.(check (option int64)) "read" (Some 2L)
    (Netsim.Packet.field pkt "ipv4" "dst");
  Netsim.Packet.set_field pkt "ipv4" "ttl" 10L;
  Alcotest.(check (option int64)) "write" (Some 10L)
    (Netsim.Packet.field pkt "ipv4" "ttl");
  Alcotest.(check (option int64)) "missing header" None
    (Netsim.Packet.field pkt "vlan" "vid")

let test_packet_set_missing_field () =
  let pkt = Netsim.Packet.create [ Netsim.Packet.ethernet ~src:1L ~dst:2L () ] in
  check "set on absent header raises" true
    (try
       Netsim.Packet.set_field pkt "ipv4" "ttl" 1L;
       false
     with Invalid_argument _ -> true)

let test_packet_push_pop () =
  let pkt = Netsim.Packet.create [ Netsim.Packet.ipv4 ~src:1L ~dst:2L () ] in
  Netsim.Packet.push_header pkt (Netsim.Packet.vlan ~vid:42L ());
  check "vlan present" true (Netsim.Packet.has_header pkt "vlan");
  Alcotest.(check string) "outermost first" "vlan"
    (List.hd pkt.Netsim.Packet.headers).Netsim.Packet.hname;
  Netsim.Packet.pop_header pkt "vlan";
  check "vlan gone" false (Netsim.Packet.has_header pkt "vlan")

let test_flow_hash_stable () =
  let mk () =
    Netsim.Packet.create
      [ Netsim.Packet.ipv4 ~src:5L ~dst:9L ();
        Netsim.Packet.tcp ~sport:10L ~dport:20L () ]
  in
  check_int "same five-tuple, same hash" (Netsim.Packet.flow_hash (mk ()))
    (Netsim.Packet.flow_hash (mk ()))

(* -- Link ------------------------------------------------------------------ *)

let test_link_delivery_timing () =
  let sim = Netsim.Sim.create () in
  let arrival = ref 0. in
  let link =
    Netsim.Link.create ~sim ~name:"l" ~bandwidth:8e6 (* 1 MB/s *)
      ~delay:0.001
      ~deliver:(fun _ -> arrival := Netsim.Sim.now sim)
      ()
  in
  (* 1000 bytes at 8 Mbps = 1ms serialization + 1ms propagation *)
  let pkt = Netsim.Packet.create ~size:1000 [] in
  check "accepted" true (Netsim.Link.transmit link pkt);
  ignore (Netsim.Sim.run sim);
  Alcotest.(check (float 1e-9)) "arrival = serialization + propagation" 0.002
    !arrival

let test_link_queue_drops () =
  let sim = Netsim.Sim.create () in
  let delivered = ref 0 in
  let link =
    Netsim.Link.create ~sim ~name:"l" ~bandwidth:8e3 ~delay:0.
      ~queue_capacity:4
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  (* each packet takes 1s to serialize; burst of 10 into queue of 4 *)
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Netsim.Link.transmit link (Netsim.Packet.create ~size:1000 []) then
      incr accepted
  done;
  check_int "only queue capacity accepted" 4 !accepted;
  check_int "drops counted" 6 (Netsim.Link.drops link);
  ignore (Netsim.Sim.run sim);
  check_int "accepted packets all delivered" 4 !delivered

let test_link_ecn_marking () =
  let sim = Netsim.Sim.create () in
  let marked = ref 0 in
  let link =
    Netsim.Link.create ~sim ~name:"l" ~bandwidth:8e3 ~delay:0.
      ~queue_capacity:16 ~ecn_threshold:2
      ~deliver:(fun pkt ->
        if Netsim.Packet.field pkt "ipv4" "ecn" = Some 1L then incr marked)
      ()
  in
  for _ = 1 to 6 do
    ignore
      (Netsim.Link.transmit link
         (Netsim.Packet.create ~size:1000
            [ Netsim.Packet.ipv4 ~src:1L ~dst:2L () ]))
  done;
  ignore (Netsim.Sim.run sim);
  (* packets 3..6 saw depth >= 2 at enqueue *)
  check_int "deep-queue packets marked" 4 !marked;
  check_int "marks counted" 4 (Netsim.Link.ecn_marks link)

let test_link_down () =
  let sim = Netsim.Sim.create () in
  let delivered = ref 0 in
  let link =
    Netsim.Link.create ~sim ~name:"l" ~deliver:(fun _ -> incr delivered) ()
  in
  Netsim.Link.set_up link false;
  check "rejected when down" false
    (Netsim.Link.transmit link (Netsim.Packet.create []));
  ignore (Netsim.Sim.run sim);
  check_int "nothing delivered" 0 !delivered

(* -- Topology --------------------------------------------------------------- *)

let test_linear_path () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:3 () in
  let t = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  match Netsim.Topology.shortest_path t ~src:h0.Netsim.Node.id ~dst:h1.Netsim.Node.id with
  | None -> Alcotest.fail "no path"
  | Some p -> check_int "h0 -> 3 switches -> h1" 5 (List.length p)

let test_forwarding_delivers () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:3 () in
  let t = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  (* switches forward, h1 counts *)
  List.iter
    (fun sw -> Netsim.Node.set_handler sw (Netsim.Topology.forwarding_handler t))
    built.Netsim.Topology.switch_list;
  let got = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr got);
  let pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:(Int64.of_int h0.Netsim.Node.id)
          ~dst:(Int64.of_int h1.Netsim.Node.id) ();
        Netsim.Packet.ipv4 ~src:(Int64.of_int h0.Netsim.Node.id)
          ~dst:(Int64.of_int h1.Netsim.Node.id) () ]
  in
  Netsim.Node.send h0 ~port:0 pkt;
  ignore (Netsim.Sim.run sim);
  check_int "delivered end to end" 1 !got

let test_ecmp_spreads () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.leaf_spine ~sim ~spines:4 ~leaves:2 ~hosts_per_leaf:1 () in
  let t = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let leaf0 = List.nth built.Netsim.Topology.switch_list 4 (* spines first *) in
  let hops = Netsim.Topology.next_hops t ~src:leaf0.Netsim.Node.id ~dst:h1.Netsim.Node.id in
  check_int "4 equal-cost spine choices" 4 (List.length hops);
  (* different flows should not all pick the same port *)
  let ports =
    List.init 50 (fun i ->
        let pkt =
          Netsim.Packet.create
            [ Netsim.Packet.ipv4 ~src:(Int64.of_int h0.Netsim.Node.id)
                ~dst:(Int64.of_int h1.Netsim.Node.id) ();
              Netsim.Packet.tcp ~sport:(Int64.of_int (1000 + i)) ~dport:80L () ]
        in
        Netsim.Topology.ecmp_port t ~src:leaf0.Netsim.Node.id
          ~dst:h1.Netsim.Node.id pkt)
    |> List.filter_map Fun.id
    |> List.sort_uniq compare
  in
  check "ECMP uses more than one port" true (List.length ports > 1)

let test_fat_tree_shape () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.fat_tree ~sim ~k:4 () in
  check_int "k=4 fat tree has 16 hosts" 16
    (List.length built.Netsim.Topology.host_list);
  check_int "k=4 fat tree has 20 switches" 20
    (List.length built.Netsim.Topology.switch_list);
  (* all host pairs reachable *)
  let t = built.Netsim.Topology.topo in
  let h = built.Netsim.Topology.host_list in
  let reachable =
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            a == b
            || Netsim.Topology.shortest_path t ~src:a.Netsim.Node.id
                 ~dst:b.Netsim.Node.id
               <> None)
          h)
      h
  in
  check "full reachability" true reachable

(* -- Traffic ------------------------------------------------------------------ *)

let test_cbr_count () =
  let sim = Netsim.Sim.create () in
  let gen = Netsim.Traffic.create sim in
  let n = ref 0 in
  Netsim.Traffic.cbr gen ~rate_pps:100. ~start:0. ~stop:1.0 ~send:(fun () -> incr n);
  ignore (Netsim.Sim.run sim);
  check_int "100 pps for 1s" 100 !n

let test_poisson_reproducible () =
  let run seed =
    let sim = Netsim.Sim.create () in
    let gen = Netsim.Traffic.create ~seed sim in
    let n = ref 0 in
    Netsim.Traffic.poisson gen ~lambda:500. ~start:0. ~stop:1.0
      ~send:(fun () -> incr n);
    ignore (Netsim.Sim.run sim);
    !n
  in
  check_int "same seed, same count" (run 42) (run 42);
  let a = run 42 in
  check "roughly poisson mean" true (a > 350 && a < 650)

let test_ramp_shape () =
  let sim = Netsim.Sim.create () in
  let gen = Netsim.Traffic.create sim in
  let times = ref [] in
  Netsim.Traffic.ramp gen ~peak_pps:1000. ~start:0. ~ramp_up:0.5 ~hold:0.5
    ~ramp_down:0.5 ~send:(fun () -> times := Netsim.Sim.now sim :: !times);
  ignore (Netsim.Sim.run sim);
  let in_window lo hi =
    List.length (List.filter (fun t -> t >= lo && t < hi) !times)
  in
  (* middle of the ramp-up should be sparser than the hold phase *)
  check "hold denser than early ramp" true
    (in_window 0.6 0.9 > in_window 0.0 0.3);
  check "ramp-down tail sparser than hold" true
    (in_window 1.3 1.5 < in_window 0.6 0.8)

let test_onoff_bursty () =
  let sim = Netsim.Sim.create () in
  let gen = Netsim.Traffic.create ~seed:5 sim in
  let times = ref [] in
  Netsim.Traffic.onoff gen ~rate_pps:1000. ~mean_on:0.05 ~mean_off:0.05
    ~start:0. ~stop:2.0 ~send:(fun () -> times := Netsim.Sim.now sim :: !times);
  ignore (Netsim.Sim.run sim);
  let n = List.length !times in
  (* duty cycle ~50%: well below the always-on 2000, well above zero *)
  check "bursty count in duty-cycle band" true (n > 300 && n < 1700);
  (* burstiness: many consecutive gaps at exactly 1/rate, some much larger *)
  let sorted = List.sort compare !times in
  let gaps =
    List.map2 ( -. ) (List.tl sorted) (List.filteri (fun i _ -> i < n - 1) sorted)
  in
  check "has intra-burst gaps" true (List.exists (fun g -> g < 0.0015) gaps);
  check "has off-period gaps" true (List.exists (fun g -> g > 0.01) gaps)

let test_flow_arrivals () =
  let sim = Netsim.Sim.create () in
  let gen = Netsim.Traffic.create ~seed:6 sim in
  let sizes = ref [] in
  Netsim.Traffic.flow_arrivals gen ~lambda:100. ~alpha:1.3 ~min_packets:2
    ~max_packets:500 ~start:0. ~stop:1.0
    ~start_flow:(fun ~packets -> sizes := packets :: !sizes);
  ignore (Netsim.Sim.run sim);
  let n = List.length !sizes in
  check "roughly lambda flows" true (n > 60 && n < 150);
  check "sizes within bounds" true
    (List.for_all (fun s -> s >= 2 && s <= 500) !sizes);
  (* heavy tail: the max should dwarf the median *)
  let sorted = List.sort compare !sizes in
  let median = List.nth sorted (n / 2) in
  let biggest = List.nth sorted (n - 1) in
  check "heavy-tailed sizes" true (biggest > 4 * median)

let test_pareto_bounds () =
  let sim = Netsim.Sim.create () in
  let gen = Netsim.Traffic.create sim in
  let ok = ref true in
  for _ = 1 to 1000 do
    let x = Netsim.Traffic.pareto gen ~alpha:1.3 ~xmin:2. ~xmax:1000. in
    if x < 2. || x > 1000. then ok := false
  done;
  check "bounded pareto stays in bounds" true !ok

let test_zipf_deterministic () =
  (* same seed => identical rank stream, independent of wall clock *)
  let draw_seq seed =
    let sim = Netsim.Sim.create () in
    let gen = Netsim.Traffic.create ~seed sim in
    let draw = Netsim.Traffic.zipf ~alpha:1.1 gen ~n:512 in
    List.init 2000 (fun _ -> draw ())
  in
  check "same seed, same stream" true (draw_seq 42 = draw_seq 42);
  check "different seed, different stream" true (draw_seq 42 <> draw_seq 43);
  let in_range = List.for_all (fun r -> r >= 1 && r <= 512) (draw_seq 7) in
  check "ranks stay in [1, n]" true in_range

let test_zipf_tail_mass () =
  (* Zipf(1.1) over 1000 ranks: the top 10% of ranks carry the bulk of
     the draws (analytically ~78%; 70% is a generous floor robust to
     sampling noise), and rank 1 must be the most popular *)
  let sim = Netsim.Sim.create () in
  let gen = Netsim.Traffic.create ~seed:11 sim in
  let n = 1000 and draws = 50_000 in
  let draw = Netsim.Traffic.zipf ~alpha:1.1 gen ~n in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to draws do
    let r = draw () in
    counts.(r) <- counts.(r) + 1
  done;
  let top = ref 0 in
  for r = 1 to n / 10 do
    top := !top + counts.(r)
  done;
  check "top 10% of ranks carry >= 70% of draws" true
    (float_of_int !top >= 0.70 *. float_of_int draws);
  let max_count = Array.fold_left max 0 counts in
  check "rank 1 is the mode" true (counts.(1) = max_count)

(* -- Stats ---------------------------------------------------------------- *)

let test_summary () =
  let s = Netsim.Stats.Summary.create () in
  List.iter (Netsim.Stats.Summary.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check (float 1e-9)) "mean" 3. (Netsim.Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Netsim.Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Netsim.Stats.Summary.max s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5)
    (Netsim.Stats.Summary.stddev s)

let test_reservoir_percentiles () =
  let r = Netsim.Stats.Reservoir.create ~capacity:1000 () in
  for i = 1 to 1000 do
    Netsim.Stats.Reservoir.add r (float_of_int i)
  done;
  let p50 = Netsim.Stats.Reservoir.percentile r 50. in
  check "median near 500" true (p50 > 450. && p50 < 550.)

let test_counters () =
  let c = Netsim.Stats.Counters.create () in
  Netsim.Stats.Counters.incr c "a";
  Netsim.Stats.Counters.incr c "a" ~by:4;
  check_int "accumulates" 5 (Netsim.Stats.Counters.get c "a");
  check_int "missing is zero" 0 (Netsim.Stats.Counters.get c "b")

(* -- Transport --------------------------------------------------------------- *)

let transport_net () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:2 ~queue_capacity:64 () in
  let t = built.Netsim.Topology.topo in
  List.iter
    (fun sw -> Netsim.Node.set_handler sw (Netsim.Topology.forwarding_handler t))
    built.Netsim.Topology.switch_list;
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  (sim, t, h0, h1)

let test_transport_completes () =
  let sim, _t, h0, h1 = transport_net () in
  let stack = Netsim.Transport.create sim in
  ignore (Netsim.Transport.attach stack h0 ());
  ignore (Netsim.Transport.attach stack h1 ());
  let flow =
    Netsim.Transport.start_flow stack ~src:h0.Netsim.Node.id
      ~dst:h1.Netsim.Node.id ~packets:200 ()
  in
  ignore (Netsim.Sim.run ~until:10. sim);
  check_int "all packets acked" 200 flow.Netsim.Transport.acked;
  check "flow recorded done" true (flow.Netsim.Transport.done_at <> None);
  check_int "stack completion count" 1 (Netsim.Transport.completed stack)

let test_transport_cc_swap () =
  let sim, _t, h0, h1 = transport_net () in
  let stack = Netsim.Transport.create sim in
  ignore (Netsim.Transport.attach stack h0 ());
  ignore (Netsim.Transport.attach stack h1 ());
  let aggressive =
    { Netsim.Transport.cc_name = "aggressive"; init_cwnd = 64.;
      on_ack = (fun ~cwnd ~ecn:_ ~rtt:_ -> cwnd +. 1.);
      on_loss = (fun ~cwnd -> cwnd) }
  in
  Netsim.Transport.set_cc stack h0.Netsim.Node.id aggressive;
  let flow =
    Netsim.Transport.start_flow stack ~src:h0.Netsim.Node.id
      ~dst:h1.Netsim.Node.id ~packets:50 ()
  in
  Alcotest.(check (float 0.)) "new cc governs initial window" 64.
    flow.Netsim.Transport.cwnd;
  ignore (Netsim.Sim.run ~until:10. sim);
  check_int "completes under swapped cc" 50 flow.Netsim.Transport.acked

let () =
  Alcotest.run "netsim"
    [ ( "event_queue",
        [ Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "fifo tiebreak" `Quick test_eq_tiebreak;
          Alcotest.test_case "growth" `Quick test_eq_grows;
          Alcotest.test_case "empty pop" `Quick test_eq_empty_pop;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 0x5eed |])
            prop_eq_interleaved_fifo ] );
      ( "sim",
        [ Alcotest.test_case "clock" `Quick test_sim_clock;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "until horizon" `Quick test_sim_until;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "periodic" `Quick test_sim_every ] );
      ( "packet",
        [ Alcotest.test_case "fields" `Quick test_packet_fields;
          Alcotest.test_case "missing field set" `Quick test_packet_set_missing_field;
          Alcotest.test_case "push/pop" `Quick test_packet_push_pop;
          Alcotest.test_case "flow hash stable" `Quick test_flow_hash_stable ] );
      ( "link",
        [ Alcotest.test_case "delivery timing" `Quick test_link_delivery_timing;
          Alcotest.test_case "queue drops" `Quick test_link_queue_drops;
          Alcotest.test_case "ecn marking" `Quick test_link_ecn_marking;
          Alcotest.test_case "link down" `Quick test_link_down ] );
      ( "topology",
        [ Alcotest.test_case "linear path" `Quick test_linear_path;
          Alcotest.test_case "forwarding" `Quick test_forwarding_delivers;
          Alcotest.test_case "ecmp spreads" `Quick test_ecmp_spreads;
          Alcotest.test_case "fat tree" `Quick test_fat_tree_shape ] );
      ( "traffic",
        [ Alcotest.test_case "cbr count" `Quick test_cbr_count;
          Alcotest.test_case "poisson reproducible" `Quick test_poisson_reproducible;
          Alcotest.test_case "attack ramp" `Quick test_ramp_shape;
          Alcotest.test_case "on/off bursts" `Quick test_onoff_bursty;
          Alcotest.test_case "flow arrivals" `Quick test_flow_arrivals;
          Alcotest.test_case "pareto bounds" `Quick test_pareto_bounds;
          Alcotest.test_case "zipf deterministic" `Quick test_zipf_deterministic;
          Alcotest.test_case "zipf tail mass" `Quick test_zipf_tail_mass ] );
      ( "stats",
        [ Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "reservoir" `Quick test_reservoir_percentiles;
          Alcotest.test_case "counters" `Quick test_counters ] );
      ( "transport",
        [ Alcotest.test_case "flow completes" `Quick test_transport_completes;
          Alcotest.test_case "cc hot swap" `Quick test_transport_cc_swap ] ) ]
