(** Incremental recompilation (§3.3) — as pure planning.

    Runtime changes are compiled "in a least-intrusive manner": from a
    live deployment, a patch produces a reconfiguration plan touching
    only the changed elements and preferring {e maximally adjacent}
    placements — the device an element already lives on, or the devices
    hosting its pipeline neighbours.

    Nothing here mutates a device or the deployment: [plan_patch]
    searches resource snapshots, generates several candidate plans and
    returns the cheapest by predicted total work;
    [plan_full_recompile] is the compile-time baseline.
    [Runtime.Reconfig] executes the winning plan and commits the new
    program/placement on success. *)

type deployment = {
  mutable dep_prog : Flexbpf.Ast.program;
  mutable dep_placement : Placement.t;
}

type report = {
  plan : Plan.t;
  moved_elements : int; (* installed, removed, or relocated *)
  touched_devices : string list;
  duration : float; (* parallel wall-clock model *)
  total_work : float; (* serial op time: intrusiveness *)
  cost : Plan.cost; (* full annotation incl. per-device resource deltas *)
}

(** Device-id -> timing profile over a path. Delegates to
    {!Plan.times_of_devices} — the single op-serialization cost model. *)
val times_of_path :
  Targets.Device.t list -> string -> Targets.Arch.reconfig_times

val report_of_plan :
  path:Targets.Device.t list ->
  deltas:(string * Targets.Resource.t) list -> Plan.t -> report

type error =
  | Patch_error of string
  | Placement_error of Placement.failure
  | Exec_error of string (* a planned op failed on the live device *)

val pp_error : Format.formatter -> error -> unit

(** A plan plus the deployment state it predicts: program and
    element->device map after execution, and the per-device snapshots
    the executor reconciles against. *)
type planned_change = {
  ch_prog : Flexbpf.Ast.program;
  ch_where : (string * string) list; (* element name -> device id *)
  ch_snaps : (string * Targets.Resource.snapshot) list;
  ch_report : report;
  ch_candidates : int; (* candidate plans evaluated *)
}

(** Plan a patch against a live deployment without touching it.
    Generates up to [candidates] (default 3) alternative plans by
    rotating the preference list at each placement decision and returns
    the one with least predicted total work (ties: fewer ops, then
    lowest rotation). [prefer_adjacent:false] is the A1 ablation
    baseline — the same candidate generation with inverted preference
    order. Deterministic. *)
val plan_patch :
  ?candidates:int -> ?prefer_adjacent:bool -> deployment -> Flexbpf.Patch.t ->
  (planned_change * Flexbpf.Patch.diff, error) result

(** Plan the compile-time baseline: remove everything, re-place the new
    program from scratch; the cost model is drain + full reflash on
    every touched device. Pure. *)
val plan_full_recompile :
  deployment -> Flexbpf.Ast.program -> (planned_change, error) result
