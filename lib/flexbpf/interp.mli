(** Reference interpreter for FlexBPF.

    All simulated targets share these functional semantics — the
    paper's architectures differ in resources, performance, and
    reconfiguration behaviour, not in what a match/action program
    means. Division and modulo by zero yield 0 (eBPF semantics), so
    every certified program is total. *)

exception Eval_error of string

(** Execution environment of one program instance on one device:
    instantiated maps, installed rules, clock, and the punt/dRPC
    callbacks wired by the runtime. *)
type env = {
  maps : (string, State.t) Hashtbl.t;
  rules : (string, Ast.rule list) Hashtbl.t; (* table -> installed rules *)
  tables : (string, Ast.table) Hashtbl.t; (* table declarations, for validation *)
  mutable rules_gen : int; (* bumped on every rule install/remove; the
                              compiled fast path (Compile) watches this to
                              keep its rule indexes consistent *)
  mutable maps_gen : int; (* bumped whenever a map name is (re)bound;
                             Compile revalidates cached State.t handles
                             against it *)
  mutable now_us : int64; (* virtual time, set by the device before exec *)
  mutable punt : string -> Netsim.Packet.t -> unit;
  mutable drpc : string -> int64 list -> int64;
  tier_caps : (string, int) Hashtbl.t;
      (* table -> device-tier capacity in rules; absent = unbounded
         flat store. Only the compiled fast path tiers its index — the
         interpreter is the authoritative (host-tier) reference. *)
  mutable page_in : string -> State.key -> (unit -> unit) -> unit;
      (* demand-paging hook: [page_in table key commit]; [commit]
         performs the promotion into the device tier. Defaults to an
         immediate commit; [Runtime.Drpc.bind_paging] reroutes it over
         dRPC so drops delay promotion, never correctness. *)
  mutable stats : Netsim.Stats.Counters.t;
  mutable work : int;
      (* cumulative executed work units on the [Analysis.stmt_cost]
         scale; the delta across a run is the measured counterpart of
         the static WCET certificate ([Dataflow.Cost]) *)
}

(** Instantiate maps (resolving [Enc_auto] to [default_encoding]) and
    empty rule sets for a program. *)
val create_env : ?default_encoding:State.concrete -> Ast.program -> env

(** @raise Eval_error when the map does not exist. *)
val env_map : env -> string -> State.t

(** (Re)bind a map name. Replacing a binding through this (rather than
    touching [env.maps] directly) bumps [maps_gen], which keeps the
    compiled fast path's cached map handles coherent. *)
val set_env_map : env -> string -> State.t -> unit

(** Drop a map binding, bumping [maps_gen]. *)
val remove_env_map : env -> string -> unit

(** Make a table known to the environment (rule storage plus the
    declaration used for install-time validation). Idempotent. *)
val register_table : env -> Ast.table -> unit

(** Forget a table's rules and declaration. *)
val unregister_table : env -> string -> unit

(** @raise Eval_error when the rule's match-pattern count differs from
    the (registered) table's key count — such a rule could never match. *)
val install_rule : env -> string -> Ast.rule -> unit

val remove_rules : env -> string -> (Ast.rule -> bool) -> unit
val table_rules : env -> string -> Ast.rule list

(** Bound [table]'s device tier to [cap] rules; [cap <= 0] restores the
    unbounded flat store. Bumps [rules_gen] so compiled indexes rebuild
    under the new residency. *)
val set_tier_capacity : env -> string -> int -> unit

val tier_capacity : env -> string -> int option

(** Outcome of running a pipeline on one packet. [Drop] is sticky:
    once set, later forwards cannot resurrect the packet. *)
type verdict = {
  mutable egress : int option;
  mutable dropped : bool;
  mutable punts : string list;
}

val fresh_verdict : unit -> verdict

(** Total binary operator semantics (division by zero yields 0). *)
val eval_binop : Ast.binop -> int64 -> int64 -> int64

val crc16 : int64 list -> int64
val crc32 : int64 list -> int64

(** The hash as an explicit fold over untagged [int] state, for callers
    (the compiled fast path) that stream operands without building the
    list: seed with [hash_init], fold [hash_step], then apply the
    matching [_finish]. [crcNN data = crcNN_finish (List.fold_left
    hash_step hash_init data)]. *)
val hash_init : int
val hash_step : int -> int64 -> int
val crc16_finish : int -> int64
val crc32_finish : int -> int64

(** The final avalanche applied by both [_finish] functions, exposed so
    the fast path can fuse finish+modulo without reboxing:
    [crc32_finish h = Int64.of_int (hash_mix h land 0x7FFFFFFF)] and
    [crc16_finish h = Int64.of_int ((hash_mix h lsr 16) land 0xFFFF)]. *)
val hash_mix : int -> int

(** Does [value] satisfy the pattern? *)
val match_pattern : int64 -> Ast.pattern -> bool

(** Summed LPM prefix lengths: longest prefix wins within equal
    priorities. *)
val rule_specificity : Ast.rule -> int

(** Highest-priority (then longest-prefix) matching rule, if any. *)
val select_rule :
  env -> Ast.table -> params:(string * int64) list -> Netsim.Packet.t ->
  Ast.rule option

(** Does the program's parser accept this packet's header sequence? *)
val parse_accepts : Ast.program -> Netsim.Packet.t -> bool

type result = {
  verdict : verdict;
  parse_ok : bool;
  runtime_error : string option; (* faulting packets are dropped *)
}

(** Run the full program: parser gate, then the pipeline in order. *)
val run : env -> Ast.program -> Netsim.Packet.t -> result

(** Run a single block outside a pipeline — used for host-side offloads
    such as interpreted congestion-control programs. *)
val run_block : env -> Ast.block -> Netsim.Packet.t -> result
