(* flexnet — command-line front end.

   Subcommands:
     archs     print the architecture profiles (fungibility taxonomy)
     apps      certify and summarize the built-in FlexBPF app programs
     certify   parse, typecheck, and certify a .fbpf program file
     demo      bring up a network, deploy, patch hitlessly under traffic
     plan      dry-run a patch: print the cost-annotated plan, execute nothing
     attack    run the elastic DDoS defense scenario
     migrate   run the state-migration comparison
     tables    drive a Zipf stream through a tiered match table, dump telemetry
     market    run seeded bidders through the tenant-economy auction

   Examples:
     dune exec bin/flexnet_cli.exe -- archs
     dune exec bin/flexnet_cli.exe -- demo --arch rmt --switches 5
     dune exec bin/flexnet_cli.exe -- attack --peak 30000 *)

open Cmdliner

let arch_conv =
  let parse s =
    match
      List.find_opt
        (fun k -> Targets.Arch.kind_to_string k = String.lowercase_ascii s)
        Targets.Arch.all_kinds
    with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown architecture %s (expected: %s)" s
             (String.concat ", "
                (List.map Targets.Arch.kind_to_string Targets.Arch.all_kinds))))
  in
  Arg.conv (parse, fun ppf k -> Fmt.string ppf (Targets.Arch.kind_to_string k))

(* -- archs -------------------------------------------------------------- *)

let archs_cmd =
  let run () =
    Printf.printf "%-14s %-9s %-10s %-10s %-12s %-11s %-8s\n" "architecture"
      "hitless" "lat(ns)" "max-pps" "add-tbl(ms)" "reflash(s)" "watts";
    List.iter
      (fun kind ->
        let p = Targets.Arch.profile_of_kind kind in
        let r = p.Targets.Arch.reconfig in
        Printf.printf "%-14s %-9s %-10.0f %-10.1e %-12.0f %-11.1f %-8.0f\n"
          (Targets.Arch.kind_to_string kind)
          (if r.Targets.Arch.hitless then "yes" else "no")
          (Targets.Arch.latency_ns p ~cycles:50)
          p.Targets.Arch.max_pps
          (1000. *. r.Targets.Arch.t_add_table)
          r.Targets.Arch.t_full_reflash p.Targets.Arch.static_watts)
      Targets.Arch.all_kinds
  in
  Cmd.v (Cmd.info "archs" ~doc:"Print the simulated architecture profiles")
    Term.(const run $ const ())

(* -- apps --------------------------------------------------------------- *)

let apps_cmd =
  let run () =
    let programs =
      [ Apps.L2l3.program ();
        Apps.Firewall.program ();
        Apps.Cm_sketch.program ();
        Apps.Heavy_hitter.program ();
        Apps.Syn_defense.program ();
        Apps.Scrubber.program ();
        Apps.Load_balancer.program ();
        Apps.Nat.program ~public:900 ~subnet_lo:10 ~subnet_hi:20 ();
        Apps.Telemetry.program ();
        Apps.Rate_limiter.program ~rate_pps:1000 ~burst:16 ();
        Apps.Congestion.program
          ~blocks:
            [ Apps.Congestion.reno_block; Apps.Congestion.dctcp_block;
              Apps.Congestion.timely_block () ]
          () ]
    in
    Printf.printf "%-20s %-9s %-8s %-7s %-10s %-10s %-8s\n" "program" "elements"
      "maps" "cycles" "sram(KB)" "tcam(KB)" "status";
    List.iter
      (fun (p : Flexbpf.Ast.program) ->
        match Flexbpf.Analysis.certify p with
        | Ok cert ->
          let fp = cert.Flexbpf.Analysis.cert_footprint in
          Printf.printf "%-20s %-9d %-8d %-7d %-10d %-10d %-8s\n"
            p.Flexbpf.Ast.prog_name
            (List.length p.Flexbpf.Ast.pipeline)
            (List.length p.Flexbpf.Ast.maps)
            cert.Flexbpf.Analysis.cert_cycles
            (fp.Flexbpf.Analysis.sram_bytes / 1024)
            (fp.Flexbpf.Analysis.tcam_bytes / 1024)
            "certified"
        | Error e ->
          Printf.printf "%-20s rejected: %s\n" p.Flexbpf.Ast.prog_name
            (Fmt.str "%a" Flexbpf.Analysis.pp_rejection e))
      programs
  in
  Cmd.v
    (Cmd.info "apps" ~doc:"Certify and summarize the built-in app programs")
    Term.(const run $ const ())

(* -- certify ------------------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"FlexBPF surface-syntax program file")

let certify_cmd =
  let run path =
    let src = In_channel.with_open_text path In_channel.input_all in
    match Flexbpf.Syntax.load src with
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
    | Ok p ->
      (match Flexbpf.Analysis.certify p with
       | Error e ->
         Printf.printf "%s: REJECTED — %s\n" p.Flexbpf.Ast.prog_name
           (Fmt.str "%a" Flexbpf.Analysis.pp_rejection e);
         exit 1
       | Ok cert ->
         let fp = cert.Flexbpf.Analysis.cert_footprint in
         Printf.printf "%s (owner %s): certified\n" p.Flexbpf.Ast.prog_name
           p.Flexbpf.Ast.owner;
         Printf.printf "  worst-case cycles : %d\n" cert.Flexbpf.Analysis.cert_cycles;
         Printf.printf "  sram / tcam       : %d / %d bytes\n"
           fp.Flexbpf.Analysis.sram_bytes fp.Flexbpf.Analysis.tcam_bytes;
         Printf.printf "  elements / maps   : %d / %d\n"
           (List.length p.Flexbpf.Ast.pipeline)
           (List.length p.Flexbpf.Ast.maps);
         (* where could it run? try a single device of each class *)
         Printf.printf "  admissible on     : %s\n"
           (String.concat ", "
              (List.filter_map
                 (fun kind ->
                   let dev =
                     Targets.Device.create (Targets.Arch.profile_of_kind kind)
                   in
                   let ok =
                     List.for_all
                       (fun el ->
                         match
                           Targets.Device.install dev ~ctx:p ~order:0 el
                         with
                         | Ok _ -> true
                         | Error _ -> false)
                       p.Flexbpf.Ast.pipeline
                   in
                   if ok then Some (Targets.Arch.kind_to_string kind) else None)
                 Targets.Arch.all_kinds)))
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Parse, typecheck, and certify a FlexBPF program file")
    Term.(const run $ file_arg)

(* -- lint ---------------------------------------------------------------- *)

let severity_conv =
  let parse s =
    match Flexbpf.Diagnostics.severity_of_string s with
    | Some sev -> Ok sev
    | None -> Error (`Msg (Printf.sprintf "unknown severity %s (expected: info, warning, error)" s))
  in
  Arg.conv (parse, Flexbpf.Diagnostics.pp_severity)

let max_severity_arg =
  Arg.(value & opt severity_conv Flexbpf.Diagnostics.Error
       & info [ "max-severity" ] ~docv:"SEV"
           ~doc:"Fail (exit 1) when a finding at or above $(docv) is present \
                 (info, warning, or error)")

let format_arg =
  Arg.(value
       & opt (enum [ ("text", `Text); ("tsv", `Tsv); ("sarif", `Sarif) ]) `Text
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: human-readable $(b,text), tab-separated \
                 $(b,tsv) (code, severity, pass, path, message), or a \
                 $(b,sarif) 2.1.0 log for code-scanning upload")

let explain_arg =
  Arg.(value & opt (some string) None
       & info [ "explain" ] ~docv:"CODE"
           ~doc:"Print the explanation for one diagnostic code (e.g. \
                 FBV051) and exit; no program file is read")

let lint_file_arg =
  Arg.(value & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"FlexBPF surface-syntax program file")

let lint_cmd =
  let run file max_sev format explain =
    match explain with
    | Some code ->
      (match Flexbpf.Verifier.explain code with
       | Some (title, detail) ->
         Printf.printf "%s: %s\n\n%s\n" (String.uppercase_ascii code) title detail;
         exit 0
       | None ->
         Printf.eprintf "unknown diagnostic code %s (known: %s)\n" code
           (String.concat ", "
              (List.map fst Flexbpf.Verifier.explanations));
         exit 2)
    | None ->
      let path =
        match file with
        | Some p -> p
        | None ->
          Printf.eprintf "lint: a program FILE is required (or --explain CODE)\n";
          exit 2
      in
      let src = In_channel.with_open_text path In_channel.input_all in
      (match Flexbpf.Syntax.parse_program_result src with
       | Error e ->
         Printf.eprintf "%s: parse error: %s\n" path e;
         exit 2
       | Ok p ->
         let ds = Flexbpf.Verifier.check p in
         (match format with
          | `Tsv ->
            List.iter (fun d -> print_endline (Flexbpf.Diagnostics.to_tsv d)) ds
          | `Sarif ->
            print_endline (Flexbpf.Diagnostics.to_sarif ~uri:path ds)
          | `Text ->
            List.iter (fun d -> Fmt.pr "%s: %a@." path Flexbpf.Diagnostics.pp d) ds;
            Fmt.pr "%s: %a@." path Flexbpf.Diagnostics.pp_summary ds);
         exit (if Flexbpf.Diagnostics.at_least max_sev ds <> [] then 1 else 0))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the FlexBPF verifier over a program file. Exit 0 when clean, \
          1 when findings reach --max-severity, 2 on parse failure.")
    Term.(const run $ lint_file_arg $ max_severity_arg $ format_arg $ explain_arg)

(* -- inject -------------------------------------------------------------- *)

let inject_cmd =
  let run path =
    let src = In_channel.with_open_text path In_channel.input_all in
    match Flexbpf.Syntax.load src with
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1
    | Ok ext ->
      let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
      (match Flexnet.deploy_infrastructure net with
       | Ok _ -> ()
       | Error e -> failwith e);
      Printf.printf "network up; admitting tenant '%s' from %s...\n"
        ext.Flexbpf.Ast.owner path;
      (match Flexnet.add_tenant net ext with
       | Error e ->
         Printf.printf "rejected: %s\n"
           (Fmt.str "%a" Control.Tenants.pp_admission_error e);
         exit 1
       | Ok (tenant, report) ->
         Printf.printf "admitted: vlan %d, %d ops, %.0f ms, devices %s\n"
           tenant.Control.Tenants.vlan
           (Compiler.Plan.size report.Compiler.Incremental.plan)
           (1000. *. report.Compiler.Incremental.duration)
           (String.concat "," report.Compiler.Incremental.touched_devices);
         List.iter
           (fun name ->
             let host =
               List.find_opt
                 (fun d -> List.mem name (Targets.Device.installed_names d))
                 (Flexnet.path net)
             in
             Printf.printf "  %-30s -> %s\n" name
               (match host with
                | Some d -> Targets.Device.id d
                | None -> "(not placed)"))
           tenant.Control.Tenants.element_names;
         let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
         for _ = 1 to 50 do
           Flexnet.send_h0 net
             (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
                ~dst:h1.Netsim.Node.id ~sport:1234 ~dport:80 ~born:0. ())
         done;
         Flexnet.run net ~until:1.0;
         Printf.printf "untagged traffic delivered: %d/50\n"
           (Flexnet.stats net).Flexnet.delivered_h1;
         (match Flexnet.remove_tenant net tenant.Control.Tenants.tenant_name with
          | Ok _ -> Printf.printf "tenant departed cleanly\n"
          | Error e ->
            Printf.printf "departure failed: %s\n"
              (Fmt.str "%a" Control.Tenants.pp_departure_error e)))
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Admit a .fbpf tenant program into a live network (certify, \
          isolate, place, verify, depart)")
    Term.(const run $ file_arg)

(* -- demo --------------------------------------------------------------- *)

let arch_arg =
  Arg.(value & opt arch_conv Targets.Arch.Drmt
       & info [ "arch" ] ~docv:"ARCH" ~doc:"Switch architecture")

let switches_arg =
  Arg.(value & opt int 3 & info [ "switches" ] ~docv:"N" ~doc:"Switch count")

(* -- plan --------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Append a program's maps, parser rules, and elements to the live
   infrastructure — the patch shape tenant admission uses. Headers,
   parser rules, and maps the base program already declares are
   skipped. *)
let extension_patch ~(base : Flexbpf.Ast.program) (ext : Flexbpf.Ast.program) =
  let new_headers =
    List.filter
      (fun (h : Flexbpf.Ast.header_decl) ->
        not
          (List.exists
             (fun (b : Flexbpf.Ast.header_decl) ->
               b.Flexbpf.Ast.hdr_name = h.Flexbpf.Ast.hdr_name)
             base.Flexbpf.Ast.headers))
      ext.Flexbpf.Ast.headers
  in
  let new_parser =
    List.filter
      (fun (r : Flexbpf.Ast.parser_rule) ->
        not
          (List.exists
             (fun (b : Flexbpf.Ast.parser_rule) ->
               b.Flexbpf.Ast.pr_name = r.Flexbpf.Ast.pr_name)
             base.Flexbpf.Ast.parser))
      ext.Flexbpf.Ast.parser
  in
  let new_maps =
    List.filter
      (fun (m : Flexbpf.Ast.map_decl) ->
        not
          (List.exists
             (fun (b : Flexbpf.Ast.map_decl) ->
               b.Flexbpf.Ast.map_name = m.Flexbpf.Ast.map_name)
             base.Flexbpf.Ast.maps))
      ext.Flexbpf.Ast.maps
  in
  Flexbpf.Patch.v ~owner:ext.Flexbpf.Ast.owner
    ("plan-" ^ ext.Flexbpf.Ast.prog_name)
    (List.map (fun h -> Flexbpf.Patch.Add_header h) new_headers
     @ List.map (fun m -> Flexbpf.Patch.Add_map m) new_maps
     @ List.map (fun r -> Flexbpf.Patch.Add_parser_rule r) new_parser
     @ List.map
         (fun el -> Flexbpf.Patch.Add_element (Flexbpf.Patch.At_end, el))
         ext.Flexbpf.Ast.pipeline)

let plan_cmd =
  let plan_format_arg =
    Arg.(value & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,table) or $(b,json)")
  in
  let candidates_arg =
    Arg.(value & opt int 3
         & info [ "candidates" ] ~docv:"K"
             ~doc:"Candidate plans to evaluate (min predicted work wins)")
  in
  let plan_file_arg =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"FlexBPF program to append as an extension; without it a \
                   built-in telemetry patch is planned")
  in
  let run arch switches format candidates file =
    let net = Flexnet.create ~arch ~switches () in
    (match Flexnet.deploy_infrastructure net with
     | Ok _ -> ()
     | Error e -> failwith e);
    let dep = Flexnet.deployment_exn net in
    let patch =
      match file with
      | None ->
        Flexbpf.Patch.v "add-telemetry"
          [ Flexbpf.Patch.Add_map Apps.Telemetry.flow_bytes_map;
            Flexbpf.Patch.Add_element
              (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
               Apps.Telemetry.flow_counter) ]
      | Some path ->
        let src = In_channel.with_open_text path In_channel.input_all in
        (match Flexbpf.Syntax.load src with
         | Error e ->
           Printf.eprintf "%s: %s\n" path e;
           exit 2
         | Ok ext ->
           extension_patch ~base:dep.Compiler.Incremental.dep_prog ext)
    in
    (* pure planning only: nothing below touches a device *)
    match Compiler.Incremental.plan_patch ~candidates dep patch with
    | Error e ->
      Fmt.epr "planning failed: %a@." Compiler.Incremental.pp_error e;
      exit 1
    | Ok (pc, _diff) ->
      let report = pc.Compiler.Incremental.ch_report in
      let plan = report.Compiler.Incremental.plan in
      let times_of = Compiler.Plan.times_of_devices (Flexnet.path net) in
      let cost = report.Compiler.Incremental.cost in
      let ck = Compiler.Plan.cost_check pc.Compiler.Incremental.ch_prog in
      (match format with
       | `Table ->
         Printf.printf "plan %s: %d ops, %d candidate(s) evaluated\n"
           plan.Compiler.Plan.plan_name
           (Compiler.Plan.size plan)
           pc.Compiler.Incremental.ch_candidates;
         List.iter
           (fun op ->
             Printf.printf "  %-40s %-10s %6.1f ms\n" (Compiler.Plan.op_name op)
               (Compiler.Plan.op_device op)
               (1000. *. Compiler.Plan.op_time (times_of (Compiler.Plan.op_device op)) op))
           plan.Compiler.Plan.ops;
         Printf.printf "predicted total work : %.1f ms\n"
           (1000. *. report.Compiler.Incremental.total_work);
         Printf.printf "predicted duration   : %.1f ms\n"
           (1000. *. report.Compiler.Incremental.duration);
         Printf.printf "touched devices      : %s\n"
           (String.concat ", " report.Compiler.Incremental.touched_devices);
         List.iter
           (fun (d, r) ->
             Printf.printf
               "  delta %-10s sram %+d B, tcam %+d B, actions %+d, instrs %+d\n"
               d r.Targets.Resource.sram_bytes r.Targets.Resource.tcam_bytes
               r.Targets.Resource.action_slots r.Targets.Resource.instructions)
           cost.Compiler.Plan.c_deltas;
         Fmt.pr "static cost check    : %a@." Compiler.Plan.pp_cost_check ck;
         if ck.Compiler.Plan.ck_divergent then
           Fmt.pr
             "warning: planner heuristic diverges %.1fx from the certified \
              WCET (statically dead branches inflate placement cost)@."
             ck.Compiler.Plan.ck_ratio
       | `Json ->
         let ops =
           String.concat ","
             (List.map
                (fun op ->
                  Printf.sprintf
                    "{\"op\":\"%s\",\"device\":\"%s\",\"time_s\":%.6f}"
                    (json_escape (Compiler.Plan.op_name op))
                    (json_escape (Compiler.Plan.op_device op))
                    (Compiler.Plan.op_time (times_of (Compiler.Plan.op_device op)) op))
                plan.Compiler.Plan.ops)
         in
         let deltas =
           String.concat ","
             (List.map
                (fun (d, r) ->
                  Printf.sprintf
                    "{\"device\":\"%s\",\"sram_bytes\":%d,\"tcam_bytes\":%d,\
                     \"action_slots\":%d,\"instructions\":%d}"
                    (json_escape d) r.Targets.Resource.sram_bytes
                    r.Targets.Resource.tcam_bytes r.Targets.Resource.action_slots
                    r.Targets.Resource.instructions)
                cost.Compiler.Plan.c_deltas)
         in
         Printf.printf
           "{\"plan\":\"%s\",\"candidates\":%d,\"total_work_s\":%.6f,\
            \"duration_s\":%.6f,\"cost_check\":{\"certified\":%d,\
            \"heuristic\":%d,\"ratio\":%.3f,\"divergent\":%b},\
            \"ops\":[%s],\"deltas\":[%s]}\n"
           (json_escape plan.Compiler.Plan.plan_name)
           pc.Compiler.Incremental.ch_candidates
           report.Compiler.Incremental.total_work
           report.Compiler.Incremental.duration
           ck.Compiler.Plan.ck_certified ck.Compiler.Plan.ck_heuristic
           ck.Compiler.Plan.ck_ratio ck.Compiler.Plan.ck_divergent ops deltas)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Dry-run a patch: plan it over resource snapshots and print the \
          cost-annotated reconfiguration plan without executing it")
    Term.(const run $ arch_arg $ switches_arg $ plan_format_arg
          $ candidates_arg $ plan_file_arg)

let demo_cmd =
  let run arch switches =
    let net = Flexnet.create ~arch ~switches () in
    (match Flexnet.deploy_infrastructure net with
     | Ok dep ->
       Printf.printf "deployed %d elements over %d devices\n"
         (List.length dep.Compiler.Incremental.dep_placement.Compiler.Placement.where)
         (List.length (Flexnet.path net))
     | Error e -> failwith e);
    let sim = Flexnet.sim net in
    let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
    let sent = ref 0 in
    let gen = Netsim.Traffic.create sim in
    Netsim.Traffic.cbr gen ~rate_pps:1000. ~start:0. ~stop:2.0 ~send:(fun () ->
        incr sent;
        Flexnet.send_h0 net
          (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
             ~dst:h1.Netsim.Node.id ~sport:1234 ~dport:80
             ~born:(Netsim.Sim.now sim) ()));
    let patch =
      Flexbpf.Patch.v "add-telemetry"
        [ Flexbpf.Patch.Add_map Apps.Telemetry.flow_bytes_map;
          Flexbpf.Patch.Add_element
            (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
             Apps.Telemetry.flow_counter) ]
    in
    Netsim.Sim.at sim 1.0 (fun () ->
        match
          Flexnet.patch_hitless net patch ~on_done:(fun r ->
              Printf.printf "t=%.3fs: hitless patch done (%.0f ms, devices %s)\n"
                (Netsim.Sim.now sim)
                (1000. *. r.Compiler.Incremental.duration)
                (String.concat "," r.Compiler.Incremental.touched_devices))
        with
        | Ok _ -> ()
        | Error e -> Fmt.epr "patch failed: %a@." Compiler.Incremental.pp_error e);
    Flexnet.run net ~until:3.0;
    let stats = Flexnet.stats net in
    Printf.printf "sent %d, delivered %d, reconfig drops %d\n" !sent
      stats.Flexnet.delivered_h1 stats.Flexnet.reconfig_drops;
    Fmt.pr "%a" Control.Controller.pp_view (Flexnet.controller net)
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Deploy a network, run traffic, and apply a hitless runtime patch")
    Term.(const run $ arch_arg $ switches_arg)

(* -- metrics / trace ----------------------------------------------------- *)

(* Shared observed workload for the metrics/trace subcommands: the demo
   scenario (deploy, CBR traffic, a hitless telemetry patch at t=1)
   plus a burst of dRPC calls, so every instrumented layer contributes
   series and spans. *)
let observed_workload ~arch ~switches =
  let net = Flexnet.create ~arch ~switches () in
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> failwith e);
  let sim = Flexnet.sim net in
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:1000. ~start:0. ~stop:2.0 ~send:(fun () ->
      Flexnet.send_h0 net
        (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
           ~dst:h1.Netsim.Node.id ~sport:1234 ~dport:80
           ~born:(Netsim.Sim.now sim) ()));
  let patch =
    Flexbpf.Patch.v "add-telemetry"
      [ Flexbpf.Patch.Add_map Apps.Telemetry.flow_bytes_map;
        Flexbpf.Patch.Add_element
          (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
           Apps.Telemetry.flow_counter) ]
  in
  Netsim.Sim.at sim 1.0 (fun () ->
      match Flexnet.patch_hitless net patch with
      | Ok _ -> ()
      | Error e -> Fmt.epr "patch failed: %a@." Compiler.Incremental.pp_error e);
  let drpc = Flexnet.drpc net in
  Runtime.Drpc.register_standard drpc ~fleet:(Flexnet.path net)
    ~map_name:"flow_bytes";
  Netsim.Sim.at sim 1.5 (fun () ->
      for _ = 1 to 5 do
        Runtime.Drpc.invoke_dataplane drpc "heartbeat" [] ~k:(fun _ -> ())
      done);
  Flexnet.run net ~until:3.0;
  Flexnet.obs net

(* With --shards N the metrics/trace subcommands switch to the
   domain-sharded engine: an N-pod fat tree partitioned per pod with
   seeded Poisson traffic, one OCaml domain per shard. Each shard keeps
   its own registry/trace; the commands print the per-shard breakdown
   and then the merged view (the merge is what a monolithic run would
   have recorded). *)
let sharded_workload ~shards =
  let module Shard = Netsim.Shard in
  let k = max 2 (if shards mod 2 = 0 then shards else shards + 1) in
  let net = Shard.Fat_tree.create ~k ~core_delay:25e-6 () in
  let spec = Shard.Fat_tree.spec net in
  let part = Shard.Fat_tree.pods_partition net in
  let until = 0.01 in
  let t =
    Shard.build spec part ~init:(fun view ->
        let sim = view.Shard.sh_sim in
        Shard.Fat_tree.install net view
          ~on_switch:(fun _ _ -> ())
          ~on_deliver:(fun _ _ -> ());
        Array.iter
          (fun h ->
            match view.Shard.sh_nodes.(h) with
            | None -> ()
            | Some host ->
              let gen = Netsim.Traffic.create ~seed:(100 + h) sim in
              let rng = Random.State.make [| 5; h |] in
              let pod =
                Shard.Fat_tree.pod_hosts net (Shard.Fat_tree.pod_of_host net h)
              in
              let all = Shard.Fat_tree.hosts net in
              Netsim.Traffic.poisson gen ~lambda:5_000. ~start:0. ~stop:until
                ~send:(fun () ->
                  let pick arr =
                    arr.(Random.State.int rng (Array.length arr))
                  in
                  let dst =
                    if Random.State.float rng 1.0 < 0.7 then pick pod
                    else pick all
                  in
                  if dst <> h then
                    Netsim.Node.send host ~port:0
                      (Netsim.Traffic.tcp_packet ~src:h ~dst ~sport:(1024 + h)
                         ~dport:80 ~born:(Netsim.Sim.now sim) ())))
          (Shard.Fat_tree.hosts net))
  in
  ignore (Shard.run ~until t);
  t

let shards_arg =
  Arg.(value & opt int 0
       & info [ "shards" ] ~docv:"N"
           ~doc:
             "Run the domain-sharded fat-tree workload on $(docv) per-pod \
              shards (one OCaml domain each) and show the per-shard \
              breakdown followed by the merged view")

let metrics_cmd =
  let metrics_format_arg =
    Arg.(value
         & opt (enum [ ("table", `Table); ("prometheus", `Prometheus) ]) `Table
         & info [ "format" ] ~docv:"FMT"
             ~doc:
               "Output format: human $(b,table) or $(b,prometheus) text \
                exposition")
  in
  let run arch switches format shards =
    let export m =
      match format with
      | `Table -> Obs.Export.metrics_table m
      | `Prometheus -> Obs.Export.prometheus m
    in
    if shards > 0 then begin
      let t = sharded_workload ~shards in
      List.iter
        (fun v ->
          Printf.printf "== shard %d ==\n" v.Netsim.Shard.sh_index;
          print_string
            (export
               (Obs.Scope.metrics (Netsim.Sim.obs v.Netsim.Shard.sh_sim)));
          print_newline ())
        (Netsim.Shard.views t);
      Printf.printf "== merged (%d shards) ==\n" (Netsim.Shard.shards t);
      print_string (export (Netsim.Shard.merged_metrics t))
    end
    else
      let scope = observed_workload ~arch ~switches in
      print_string (export (Obs.Scope.metrics scope))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the demo workload and export the unified metrics registry \
          (counters, gauges, latency histograms); with $(b,--shards) the \
          per-shard registries plus their merge")
    Term.(const run $ arch_arg $ switches_arg $ metrics_format_arg
          $ shards_arg)

let trace_cmd =
  let trace_format_arg =
    Arg.(value & opt (enum [ ("jsonl", `Jsonl); ("table", `Table) ]) `Jsonl
         & info [ "format" ] ~docv:"FMT"
             ~doc:
               "Output format: one JSON object per span ($(b,jsonl)) or a \
                human $(b,table)")
  in
  let run arch switches format shards =
    let export tr =
      match format with
      | `Jsonl -> Obs.Export.trace_jsonl tr
      | `Table -> Obs.Export.trace_table tr
    in
    if shards > 0 then begin
      let t = sharded_workload ~shards in
      List.iter
        (fun v ->
          Printf.printf "== shard %d ==\n" v.Netsim.Shard.sh_index;
          print_string
            (export (Obs.Scope.trace (Netsim.Sim.obs v.Netsim.Shard.sh_sim)));
          print_newline ())
        (Netsim.Shard.views t)
    end
    else
      let scope = observed_workload ~arch ~switches in
      print_string (export (Obs.Scope.trace scope))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the demo workload and dump the reconfiguration/dRPC span \
          trace (deterministic under a fixed seed); with $(b,--shards) one \
          trace per shard including its $(b,shard.run) span")
    Term.(const run $ arch_arg $ switches_arg $ trace_format_arg $ shards_arg)

(* -- attack ------------------------------------------------------------- *)

let peak_arg =
  Arg.(value & opt float 20_000.
       & info [ "peak" ] ~docv:"PPS" ~doc:"Peak attack rate (packets/s)")

let attack_cmd =
  let run peak =
    let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
    (match Flexnet.deploy_infrastructure net with
     | Ok _ -> ()
     | Error e -> failwith e);
    let sim = Flexnet.sim net in
    let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
    let switches = Flexnet.switch_devices net in
    let victim = ref 0 in
    Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr victim);
    let attack = Netsim.Traffic.create ~seed:3 sim in
    Netsim.Traffic.ramp attack ~peak_pps:peak ~start:0.5 ~ramp_up:1.0 ~hold:1.5
      ~ramp_down:1.0 ~send:(fun () ->
        Netsim.Node.send h0 ~port:0
          (Netsim.Traffic.spoofed_syn attack ~dst:h1.Netsim.Node.id ~dport:80
             ~born:(Netsim.Sim.now sim)));
    let defense = Apps.Syn_defense.program ~threshold:100 () in
    let controller = Flexnet.controller net in
    let uri = Control.Uri.v ~owner:"infra" "syn-defense" in
    ignore
      (Control.Controller.register_app controller ~uri
         ~kind:Control.Controller.Utility ~program:defense ~replicas:[]);
    let replicas = ref 0 in
    let actuate =
      Control.Elastic.app_actuator ~controller ~uri ~devices:switches ()
    in
    let scale_to n =
      let n = min n (List.length switches) in
      actuate n;
      Printf.printf "t=%.2fs: replicas -> %d\n" (Netsim.Sim.now sim) n;
      replicas := n
    in
    let last = ref 0 in
    let sample () =
      if !replicas > 0 then
        Int64.to_float
          (Apps.Syn_defense.syn_rate_of (List.hd switches)
             ~dst:(Int64.of_int h1.Netsim.Node.id)
             ~now_us:(Int64.of_float (Netsim.Sim.now sim *. 1e6)))
        *. 10.
      else begin
        let d = !victim - !last in
        last := !victim;
        float_of_int d *. 10.
      end
    in
    let _ =
      Control.Elastic.create ~sim ~name:"defense" ~min_replicas:0
        ~max_replicas:3 ~cooldown:0.3 ~period:0.1 ~sample
        ~capacity_per_replica:8000. ~scale_to ()
    in
    Flexnet.run net ~until:5.0;
    Printf.printf "victim received %d packets; final replicas %d\n" !victim
      !replicas
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run the elastic DDoS defense scenario")
    Term.(const run $ peak_arg)

(* -- migrate ------------------------------------------------------------ *)

let migrate_cmd =
  let run () =
    let cfg = { Apps.Cm_sketch.depth = 3; width = 512; map_name = "cms" } in
    let mk id =
      let dev = Targets.Device.create ~id Targets.Arch.drmt in
      let prog = Apps.Cm_sketch.program ~cfg () in
      List.iteri
        (fun i el -> ignore (Targets.Device.install dev ~ctx:prog ~order:i el))
        prog.Flexbpf.Ast.pipeline;
      dev
    in
    List.iter
      (fun proto ->
        let sim = Netsim.Sim.create () in
        let src = mk "a" and dst = mk "b" in
        let handle = Runtime.Migration.create src in
        let rng = Random.State.make [| 1 |] in
        let sent = ref 0 in
        let gen = Netsim.Traffic.create sim in
        Netsim.Traffic.cbr gen ~rate_pps:50_000. ~start:0. ~stop:1.0
          ~send:(fun () ->
            incr sent;
            let s = Int64.of_int (Random.State.int rng 100) in
            ignore
              (Runtime.Migration.exec handle
                 ~now_us:(Int64.of_float (Netsim.Sim.now sim *. 1e6))
                 (Netsim.Packet.create
                    [ Netsim.Packet.ethernet ~src:s ~dst:1L ();
                      Netsim.Packet.ipv4 ~src:s ~dst:1L ();
                      Netsim.Packet.tcp ~sport:1L ~dport:2L () ])));
        Netsim.Sim.at sim 0.5 (fun () ->
            match proto with
            | `Freeze ->
              Runtime.Migration.freeze_copy ~sim handle ~dst
                ~map_names:[ "cms" ] ()
            | `Swing ->
              Runtime.Migration.swing ~sim handle ~dst ~map_names:[ "cms" ] ());
        ignore (Netsim.Sim.run sim);
        let expected = !sent * cfg.Apps.Cm_sketch.depth in
        let present =
          Int64.to_int
            (Runtime.Migration.map_sum (Runtime.Migration.active handle) "cms")
        in
        Printf.printf "%-12s expected %d, present %d, lost %d\n"
          (match proto with `Freeze -> "freeze-copy" | `Swing -> "swing")
          expected present (expected - present))
      [ `Freeze; `Swing ]
  in
  Cmd.v
    (Cmd.info "migrate" ~doc:"Compare state-migration protocols")
    Term.(const run $ const ())

(* -- tables ------------------------------------------------------------- *)

(* Deterministic tiered-table workload: one exact-match forwarding table
   with N logical rules, the device tier capped at a fraction of N, a
   seeded Zipf destination stream through the compiled fast path. The
   point of the subcommand is to make the tier telemetry inspectable
   without running the full E17 bench. *)

let tables_cmd =
  let rules_arg =
    Arg.(value & opt int 1024
         & info [ "rules" ] ~docv:"N" ~doc:"Logical rule count")
  in
  let capacity_arg =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"C"
             ~doc:"Device-tier capacity in rules (default: 10%% of --rules)")
  in
  let packets_arg =
    Arg.(value & opt int 20_000
         & info [ "packets" ] ~docv:"P" ~doc:"Packets to drive")
  in
  let alpha_arg =
    Arg.(value & opt float 1.4
         & info [ "alpha" ] ~docv:"A" ~doc:"Zipf skew of the workload")
  in
  let tables_format_arg =
    Arg.(value & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,table) or $(b,json)")
  in
  let run rules cap packets alpha format =
    let open Flexbpf.Builder in
    let rules = Stdlib.max 2 rules in
    let cap =
      match cap with
      | Some c -> Stdlib.max 1 c
      | None -> Stdlib.max 1 (rules / 10)
    in
    let tbl_name = "fwd" in
    let port_of dst = 1 + (dst mod 64) in
    let prog =
      program "tables" ~headers:standard_headers ~parser:standard_parser
        [ table tbl_name
            ~keys:[ exact (field "ipv4" "dst") ]
            ~actions:
              [ action "fwd" ~params:[ "port" ] [ forward (param "port") ] ]
            ~size:rules () ]
    in
    let env = Flexbpf.Interp.create_env prog in
    for dst = 1 to rules do
      Flexbpf.Interp.install_rule env tbl_name
        (rule ~matches:[ exact_i dst ] ~action:("fwd", [ port_of dst ]) ())
    done;
    Flexbpf.Interp.set_tier_capacity env tbl_name cap;
    let compiled = Flexbpf.Compile.compile env prog in
    let sim = Netsim.Sim.create () in
    let gen = Netsim.Traffic.create ~seed:1717 sim in
    let draw = Netsim.Traffic.zipf ~alpha gen ~n:rules in
    let pkts =
      Array.init rules (fun i ->
          Netsim.Traffic.tcp_packet ~src:7 ~dst:(i + 1) ~sport:1234 ~dport:80
            ~born:0. ())
    in
    for _ = 1 to packets do
      ignore (Flexbpf.Compile.run compiled pkts.(draw () - 1))
    done;
    let stats = Flexbpf.Compile.tier_stats compiled in
    let logical_hits =
      Netsim.Stats.Counters.get env.Flexbpf.Interp.stats (tbl_name ^ ".hit")
    in
    let logical_misses =
      Netsim.Stats.Counters.get env.Flexbpf.Interp.stats (tbl_name ^ ".miss")
    in
    let ratio h m =
      if h + m = 0 then 1. else float_of_int h /. float_of_int (h + m)
    in
    match format with
    | `Table ->
      Printf.printf
        "workload: %d logical rules, device tier %d, %d zipf(%.2f) packets\n"
        rules cap packets alpha;
      Printf.printf "%-8s %-10s %-10s %-10s %-10s %-10s %-9s %-9s %-9s\n"
        "table" "capacity" "resident" "tier-hits" "tier-miss" "hit-ratio"
        "promoted" "evicted" "demoted";
      List.iter
        (fun (s : Flexbpf.Compile.tier_stat) ->
          Printf.printf "%-8s %-10d %-10d %-10d %-10d %-10.4f %-9d %-9d %-9d\n"
            s.Flexbpf.Compile.ts_table s.Flexbpf.Compile.ts_capacity
            s.Flexbpf.Compile.ts_resident s.Flexbpf.Compile.ts_hits
            s.Flexbpf.Compile.ts_misses
            (ratio s.Flexbpf.Compile.ts_hits s.Flexbpf.Compile.ts_misses)
            s.Flexbpf.Compile.ts_promotions s.Flexbpf.Compile.ts_evictions
            s.Flexbpf.Compile.ts_demotions)
        stats;
      Printf.printf
        "logical match hits %d, misses %d (tiering never changes these)\n"
        logical_hits logical_misses;
      Printf.printf "planner predicted hit rate (zipf-1 model): %.4f\n"
        (1.
         -. Targets.Resource.predicted_miss_rate ~logical:rules ~device:cap)
    | `Json ->
      Printf.printf
        "{\"rules\":%d,\"capacity\":%d,\"packets\":%d,\"alpha\":%g,\
         \"predicted_hit_rate\":%.4f,\"logical_hits\":%d,\
         \"logical_misses\":%d,\"tables\":[%s]}\n"
        rules cap packets alpha
        (1.
         -. Targets.Resource.predicted_miss_rate ~logical:rules ~device:cap)
        logical_hits logical_misses
        (String.concat ","
           (List.map
              (fun (s : Flexbpf.Compile.tier_stat) ->
                Printf.sprintf
                  "{\"table\":\"%s\",\"capacity\":%d,\"resident\":%d,\
                   \"hits\":%d,\"misses\":%d,\"hit_ratio\":%.4f,\
                   \"promotions\":%d,\"evictions\":%d,\"demotions\":%d}"
                  (json_escape s.Flexbpf.Compile.ts_table)
                  s.Flexbpf.Compile.ts_capacity s.Flexbpf.Compile.ts_resident
                  s.Flexbpf.Compile.ts_hits s.Flexbpf.Compile.ts_misses
                  (ratio s.Flexbpf.Compile.ts_hits s.Flexbpf.Compile.ts_misses)
                  s.Flexbpf.Compile.ts_promotions
                  s.Flexbpf.Compile.ts_evictions
                  s.Flexbpf.Compile.ts_demotions)
              stats))
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:
         "Run a seeded Zipf workload against a tiered match table and \
          report device-tier occupancy, hit/miss ratio, and \
          promotion/eviction counts")
    Term.(const run $ rules_arg $ capacity_arg $ packets_arg $ alpha_arg
          $ tables_format_arg)

(* -- market ------------------------------------------------------------- *)

(* Stateless demo of the tenant economy: bring up a network, enqueue a
   seeded population of bidders (the same program mix as the E18
   workload generator), run clearing rounds, and dump the price books,
   per-tenant standing bids, and auction history. The point is to make
   the market's state inspectable without running the full E18 bench. *)

let market_cmd =
  let tenants_arg =
    Arg.(value & opt int 24
         & info [ "tenants" ] ~docv:"N" ~doc:"Bidders to enqueue")
  in
  let rounds_arg =
    Arg.(value & opt int 8
         & info [ "rounds" ] ~docv:"R" ~doc:"Clearing rounds to run")
  in
  let seed_arg =
    Arg.(value & opt int 31
         & info [ "seed" ] ~docv:"S" ~doc:"Workload seed")
  in
  let market_format_arg =
    Arg.(value & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,table) or $(b,json)")
  in
  let run switches tenants rounds seed format =
    let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches () in
    (match Flexnet.deploy_infrastructure net with
     | Ok _ -> ()
     | Error e -> failwith e);
    let tmgr = Flexnet.tenants_exn net in
    (* price the path's tail device: pipeline-order placement packs
       tenant elements onto it, so that pool is the scarce resource *)
    let book_path = [ List.hd (List.rev (Flexnet.path net)) ] in
    let au = Market.Auction.create ~tenants:tmgr ~path:book_path () in
    let rng = Random.State.make [| seed |] in
    for i = 1 to tenants do
      let name = Printf.sprintf "tenant%d" i in
      let program =
        match Random.State.int rng 10 with
        | 0 | 1 -> Apps.Firewall.program ~owner:name ~boundary:100 ()
        | 2 | 3 ->
          Apps.Nat.program ~owner:name ~public:(900 + i) ~subnet_lo:10
            ~subnet_hi:20 ()
        | _ ->
          Apps.Acl.program ~owner:name
            ~size:(65536 lsl Random.State.int rng 5)
            ()
      in
      match
        Market.Tenant.create
          ~sla:
            (if Random.State.int rng 10 = 0 then Market.Tenant.Protected
             else Market.Tenant.Best_effort)
          ~budget:(4. +. Random.State.float rng 12.)
          ~weight:(1.2 +. Random.State.float rng 4.)
          program
      with
      | Error _ -> ()
      | Ok mt -> Market.Auction.submit au mt
    done;
    for _ = 1 to rounds do
      ignore (Market.Auction.clear au)
    done;
    let books = Market.Auction.books au in
    let occ = Market.Auction.occupancy au in
    let adm = Market.Auction.admitted au in
    let replicas_of (a : Market.Auction.admitted) =
      match a.Market.Auction.ad_bid with
      | Some b -> b.Market.Tenant.bid_replicas
      | None -> 1
    in
    match format with
    | `Table ->
      Printf.printf "price books (after %d rounds, %d bidders):\n" rounds
        tenants;
      List.iter
        (fun (arch, book) ->
          let used, cap = List.assoc arch occ in
          Printf.printf "  %-12s %s\n"
            (Targets.Arch.kind_to_string arch)
            (String.concat "  "
               (List.map
                  (fun (k, p) ->
                    Printf.sprintf "%s=%.4f (%.0f/%.0f)"
                      (Market.Prices.rkind_to_string k)
                      p
                      (Market.Prices.units k used)
                      (Market.Prices.units k cap))
                  (Market.Prices.prices book))))
        books;
      Printf.printf "\nadmitted tenants (%d admitted, %d waiting):\n"
        (List.length adm)
        (List.length (Market.Auction.waiting au));
      Printf.printf "  %-10s %-11s %-4s %-9s %-9s %-9s %-9s\n" "tenant" "sla"
        "reps" "price" "spend" "utility" "density";
      List.iter
        (fun (a : Market.Auction.admitted) ->
          let mt = a.Market.Auction.ad_tenant in
          let q = replicas_of a in
          Printf.printf "  %-10s %-11s %-4d %-9.4f %-9.3f %-9.3f %-9.3f\n"
            mt.Market.Tenant.mt_name
            (Market.Tenant.sla_to_string mt.Market.Tenant.mt_sla)
            q a.Market.Auction.ad_price a.Market.Auction.ad_spend
            (Market.Tenant.utility mt q)
            (match a.Market.Auction.ad_bid with
             | Some b -> b.Market.Tenant.bid_density
             | None -> 0.))
        adm;
      Printf.printf "\nclearing history:\n";
      Printf.printf "  %-6s %-6s %-10s %-8s %-9s %-9s %-10s %-9s\n" "round"
        "iters" "converged" "bidders" "admitted" "deferred" "preempted"
        "rejected";
      List.iter
        (fun (r : Market.Auction.round) ->
          Printf.printf "  %-6d %-6d %-10b %-8d %-9d %-9d %-10d %-9d\n"
            r.Market.Auction.rd_index r.Market.Auction.rd_iterations
            r.Market.Auction.rd_converged r.Market.Auction.rd_bidders
            (List.length r.Market.Auction.rd_admitted)
            (List.length r.Market.Auction.rd_deferred)
            (List.length r.Market.Auction.rd_preempted)
            (List.length r.Market.Auction.rd_rejected))
        (Market.Auction.rounds au)
    | `Json ->
      let books_json =
        String.concat ","
          (List.map
             (fun (arch, book) ->
               let used, cap = List.assoc arch occ in
               Printf.sprintf "{\"arch\":\"%s\",\"prices\":{%s},\"used\":{%s},\"capacity\":{%s}}"
                 (Targets.Arch.kind_to_string arch)
                 (String.concat ","
                    (List.map
                       (fun (k, p) ->
                         Printf.sprintf "\"%s\":%.6f"
                           (Market.Prices.rkind_to_string k)
                           p)
                       (Market.Prices.prices book)))
                 (String.concat ","
                    (List.map
                       (fun k ->
                         Printf.sprintf "\"%s\":%.1f"
                           (Market.Prices.rkind_to_string k)
                           (Market.Prices.units k used))
                       Market.Prices.all_rkinds))
                 (String.concat ","
                    (List.map
                       (fun k ->
                         Printf.sprintf "\"%s\":%.1f"
                           (Market.Prices.rkind_to_string k)
                           (Market.Prices.units k cap))
                       Market.Prices.all_rkinds)))
             books)
      in
      let tenants_json =
        String.concat ","
          (List.map
             (fun (a : Market.Auction.admitted) ->
               let mt = a.Market.Auction.ad_tenant in
               let q = replicas_of a in
               Printf.sprintf
                 "{\"tenant\":\"%s\",\"sla\":\"%s\",\"replicas\":%d,\
                  \"price\":%.6f,\"spend\":%.6f,\"utility\":%.6f,\
                  \"density\":%.6f}"
                 (json_escape mt.Market.Tenant.mt_name)
                 (Market.Tenant.sla_to_string mt.Market.Tenant.mt_sla)
                 q a.Market.Auction.ad_price a.Market.Auction.ad_spend
                 (Market.Tenant.utility mt q)
                 (match a.Market.Auction.ad_bid with
                  | Some b -> b.Market.Tenant.bid_density
                  | None -> 0.))
             adm)
      in
      let rounds_json =
        String.concat ","
          (List.map
             (fun (r : Market.Auction.round) ->
               Printf.sprintf
                 "{\"round\":%d,\"iterations\":%d,\"converged\":%b,\
                  \"bidders\":%d,\"admitted\":%d,\"deferred\":%d,\
                  \"preempted\":%d,\"rejected\":%d}"
                 r.Market.Auction.rd_index r.Market.Auction.rd_iterations
                 r.Market.Auction.rd_converged r.Market.Auction.rd_bidders
                 (List.length r.Market.Auction.rd_admitted)
                 (List.length r.Market.Auction.rd_deferred)
                 (List.length r.Market.Auction.rd_preempted)
                 (List.length r.Market.Auction.rd_rejected))
             (Market.Auction.rounds au))
      in
      Printf.printf
        "{\"bidders\":%d,\"rounds_run\":%d,\"admitted\":%d,\"waiting\":%d,\
         \"books\":[%s],\"tenants\":[%s],\"rounds\":[%s]}\n"
        tenants rounds (List.length adm)
        (List.length (Market.Auction.waiting au))
        books_json tenants_json rounds_json
  in
  Cmd.v
    (Cmd.info "market"
       ~doc:
         "Run a seeded bidder population through the tenant-economy \
          auction and report per-architecture resource prices, admitted \
          tenants' standing bids/spend/utility, and the clearing-round \
          history")
    Term.(const run $ switches_arg $ tenants_arg $ rounds_arg $ seed_arg
          $ market_format_arg)

(* -- policy ------------------------------------------------------------- *)

let pattern_str = function
  | Flexbpf.Ast.P_exact v -> Int64.to_string v
  | Flexbpf.Ast.P_any -> "*"
  | Flexbpf.Ast.P_lpm (v, l) -> Printf.sprintf "%Ld/%d" v l
  | Flexbpf.Ast.P_ternary (v, m) -> Printf.sprintf "%Ld&%Ld" v m
  | Flexbpf.Ast.P_range (a, b) -> Printf.sprintf "%Ld-%Ld" a b

let load_policy path =
  let src = In_channel.with_open_text path In_channel.input_all in
  match Policy.Syntax.parse_result src with
  | Error e ->
    Printf.eprintf "%s: parse error: %s\n" path e;
    exit 2
  | Ok pol -> pol

let pol_format_arg =
  Arg.(value & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: $(b,table) or $(b,json)")

let pol_file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"Policy source (.pol)")

let rules_json rules =
  String.concat ","
    (List.map
       (fun (r : Flexbpf.Ast.rule) ->
         Printf.sprintf
           "{\"priority\":%d,\"matches\":[%s],\"action\":\"%s\"}"
           r.Flexbpf.Ast.rule_priority
           (String.concat ","
              (List.map
                 (fun p -> Printf.sprintf "\"%s\"" (pattern_str p))
                 r.Flexbpf.Ast.matches))
           (json_escape r.Flexbpf.Ast.rule_action))
       rules)

let policy_compile_cmd =
  let switches_arg =
    Arg.(value & opt int 2
         & info [ "switches" ] ~docv:"N"
             ~doc:"Slice the policy for switches 0..N-1")
  in
  let run file format switches =
    let pol = load_policy file in
    let devices =
      List.init switches (fun i -> (Printf.sprintf "s%d" i, Int64.of_int i))
    in
    match Policy.Compile.compile ~name:"policy" ~devices pol with
    | Error e ->
      Printf.eprintf "%s: %s\n" file (Policy.Compile.error_to_string e);
      exit 1
    | Ok lowered ->
      (match format with
       | `Table ->
         List.iter
           (fun (dev, lw) ->
             Fmt.pr "== %s (sw = %Ld) ==@." dev lw.Policy.Compile.lw_sw;
             print_string (Flexbpf.Syntax.print lw.Policy.Compile.lw_prog);
             List.iter
               (fun (tbl, rules) ->
                 Fmt.pr "rules[%s]:@." tbl;
                 List.iter
                   (fun (r : Flexbpf.Ast.rule) ->
                     Fmt.pr "  %3d  %-24s -> %s@." r.Flexbpf.Ast.rule_priority
                       (String.concat ", "
                          (List.map pattern_str r.Flexbpf.Ast.matches))
                       r.Flexbpf.Ast.rule_action)
                   rules)
               lw.Policy.Compile.lw_rules)
           lowered
       | `Json ->
         Printf.printf "{\"policy\":\"%s\",\"devices\":[%s]}\n"
           (json_escape (Policy.Syntax.print pol))
           (String.concat ","
              (List.map
                 (fun (dev, lw) ->
                   Printf.sprintf
                     "{\"device\":\"%s\",\"sw\":%Ld,\"program\":\"%s\",\
                      \"rules\":{%s}}"
                     (json_escape dev) lw.Policy.Compile.lw_sw
                     (json_escape
                        (Flexbpf.Syntax.print lw.Policy.Compile.lw_prog))
                     (String.concat ","
                        (List.map
                           (fun (tbl, rules) ->
                             Printf.sprintf "\"%s\":[%s]" (json_escape tbl)
                               (rules_json rules))
                           lw.Policy.Compile.lw_rules)))
                 lowered)));
      exit 0
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Slice a policy per switch and print the lowered FlexBPF \
          program and rule set for each. Exit 0 on success, 1 when the \
          policy does not lower, 2 on parse failure.")
    Term.(const run $ pol_file_arg $ pol_format_arg $ switches_arg)

let policy_check_cmd =
  let run file format =
    let pol = load_policy file in
    match Policy.Compile.check pol with
    | Error e ->
      Printf.eprintf "%s: %s\n" file (Policy.Compile.error_to_string e);
      exit 1
    | Ok rp ->
      (match format with
       | `Table ->
         Fmt.pr "policy    %s@." (Policy.Syntax.print pol);
         Fmt.pr "fields    %s@."
           (String.concat ", "
              (List.map Policy.Ast.field_name rp.Policy.Compile.rp_fields));
         Fmt.pr "fdd size  %d nodes@." rp.Policy.Compile.rp_fdd_size;
         Fmt.pr "switches  %s@."
           (if rp.Policy.Compile.rp_switches = [] then "(uniform)"
            else
              String.concat ", "
                (List.map Int64.to_string rp.Policy.Compile.rp_switches));
         List.iter
           (fun (sw, n) ->
             if sw = -1L then Fmt.pr "  sw *   %4d rules@." n
             else Fmt.pr "  sw %-3Ld %4d rules@." sw n)
           rp.Policy.Compile.rp_rules
       | `Json ->
         Printf.printf
           "{\"policy\":\"%s\",\"fields\":[%s],\"fdd_size\":%d,\
            \"switches\":[%s],\"rules\":[%s]}\n"
           (json_escape (Policy.Syntax.print pol))
           (String.concat ","
              (List.map
                 (fun f -> Printf.sprintf "\"%s\"" (Policy.Ast.field_name f))
                 rp.Policy.Compile.rp_fields))
           rp.Policy.Compile.rp_fdd_size
           (String.concat ","
              (List.map Int64.to_string rp.Policy.Compile.rp_switches))
           (String.concat ","
              (List.map
                 (fun (sw, n) ->
                   Printf.sprintf "{\"sw\":%Ld,\"rules\":%d}" sw n)
                 rp.Policy.Compile.rp_rules)));
      exit 0
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate and normalize a policy; print the fields it touches, \
          its FDD size, and per-switch rule counts. Exit 0 when it \
          lowers everywhere, 1 otherwise, 2 on parse failure.")
    Term.(const run $ pol_file_arg $ pol_format_arg)

let policy_cmd =
  Cmd.group
    (Cmd.info "policy"
       ~doc:
         "Compile and check NetKAT-style policy terms (.pol) against \
          the FlexBPF datapath")
    [ policy_compile_cmd; policy_check_cmd ]

let () =
  let info =
    Cmd.info "flexnet" ~version:"0.1.0"
      ~doc:"Runtime programmable network (FlexNet) scenario runner"
  in
  exit
    (Cmd.eval
       (Cmd.group info [ archs_cmd; apps_cmd; certify_cmd; lint_cmd; inject_cmd;
          demo_cmd; plan_cmd; metrics_cmd; trace_cmd; attack_cmd;
          migrate_cmd; tables_cmd; market_cmd; policy_cmd ]))
