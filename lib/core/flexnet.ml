(** FlexNet: the public facade.

    Brings up a whole-stack runtime programmable network (Figure 1):
    host stacks, SmartNICs and switches wired into a packet simulator;
    the infrastructure program deployed over the fungible datapath by
    the compiler; a central controller piloting apps, tenants, and
    reconfigurations.

    Typical use (see examples/quickstart.ml):
    {[
      let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
      Flexnet.deploy_infrastructure net;
      (* send traffic, then reprogram at runtime: *)
      let _ = Flexnet.add_tenant net my_extension_program in
      Flexnet.run net ~until:1.0
    ]} *)


type t = {
  sim : Netsim.Sim.t;
  topo : Netsim.Topology.t;
  h0 : Netsim.Node.t;
  h1 : Netsim.Node.t;
  switch_nodes : Netsim.Node.t list;
  nic_nodes : Netsim.Node.t list;
  wireds : Runtime.Wiring.wired list;
  path : Targets.Device.t list; (* whole-stack compile path *)
  controller : Control.Controller.t;
  drpc : Runtime.Drpc.t;
  mutable deployment : Compiler.Incremental.deployment option;
  mutable tenants : Control.Tenants.t option;
}

let sim t = t.sim
let topo t = t.topo
let controller t = t.controller
let path t = t.path
let wireds t = t.wireds

let device t dev_id =
  List.find_opt
    (fun d -> Targets.Device.id d = dev_id)
    t.path

let switch_devices t =
  List.filter (fun d -> Targets.Arch.is_switch (Targets.Device.kind d)) t.path

let wired_of t dev =
  List.find_opt
    (fun w -> w.Runtime.Wiring.device == dev)
    t.wireds

(** Build the whole-stack network:
    h0 — nic0 — s0 — s1 … — nic1 — h1,
    with a programmable device of [arch] on every switch, SmartNICs on
    the NIC nodes, and host-eBPF devices representing the two host
    stacks (placement targets for offload-only components). *)
let create ?(arch = Targets.Arch.Drmt) ?(switches = 3) ?(link_bandwidth = 10e9)
    ?(link_delay = 1e-6) ?(queue_capacity = 256) ?(ecn_threshold = 0) () =
  let sim = Netsim.Sim.create () in
  let topo = Netsim.Topology.create sim in
  let h0 = Netsim.Topology.add_host topo "h0" in
  let nic0 = Netsim.Topology.add_node topo ~name:"nic0" ~kind:Netsim.Node.Nic in
  let sw_nodes =
    List.init switches (fun i ->
        Netsim.Topology.add_switch topo (Printf.sprintf "s%d" i))
  in
  let nic1 = Netsim.Topology.add_node topo ~name:"nic1" ~kind:Netsim.Node.Nic in
  let h1 = Netsim.Topology.add_host topo "h1" in
  let conn a b =
    ignore
      (Netsim.Topology.connect ~bandwidth:link_bandwidth ~delay:link_delay
         ~queue_capacity ~ecn_threshold topo a b)
  in
  let rec chain = function
    | a :: (b :: _ as rest) -> conn a b; chain rest
    | _ -> ()
  in
  chain ([ h0; nic0 ] @ sw_nodes @ [ nic1; h1 ]);
  (* devices *)
  let host0_dev = Targets.Device.create ~id:"h0-stack" Targets.Arch.host_ebpf in
  let nic0_dev = Targets.Device.create ~id:"nic0" Targets.Arch.smartnic in
  let sw_devs =
    List.mapi
      (fun i _ ->
        Targets.Device.create
          ~id:(Printf.sprintf "s%d" i)
          (Targets.Arch.profile_of_kind arch))
      sw_nodes
  in
  let nic1_dev = Targets.Device.create ~id:"nic1" Targets.Arch.smartnic in
  let host1_dev = Targets.Device.create ~id:"h1-stack" Targets.Arch.host_ebpf in
  (* wiring: NICs and switches process packets in the forwarding path *)
  let wireds =
    Runtime.Wiring.attach topo nic0 nic0_dev
    :: List.map2 (fun n d -> Runtime.Wiring.attach topo n d) sw_nodes sw_devs
    @ [ Runtime.Wiring.attach topo nic1 nic1_dev ]
  in
  let path = (host0_dev :: nic0_dev :: sw_devs) @ [ nic1_dev; host1_dev ] in
  (* host-stack devices are placement targets but not wired; give them
     the simulation's observability scope explicitly *)
  List.iter
    (fun d -> Targets.Device.set_obs d (Some (Netsim.Sim.obs sim)))
    [ host0_dev; host1_dev ];
  let controller = Control.Controller.create ~sim ~topo ~wireds in
  let drpc = Runtime.Drpc.create sim in
  List.iter (fun d -> Runtime.Drpc.bind_device drpc d) path;
  { sim; topo; h0; h1; switch_nodes = sw_nodes; nic_nodes = [ nic0; nic1 ];
    wireds; path; controller; drpc; deployment = None; tenants = None }

let h0 t = t.h0
let h1 t = t.h1
let drpc t = t.drpc

(** The network's observability scope (the simulation's): unified
    metrics registry and span tracer for everything running in it. *)
let obs t = Netsim.Sim.obs t.sim

(** Deploy the L2/L3 infrastructure program over the fungible datapath
    and populate routing rules on the devices that host the tables. *)
let deploy_infrastructure ?(program = Apps.L2l3.program ()) t =
  match Runtime.Reconfig.deploy ~obs:(obs t) ~path:t.path program with
  | Error f -> Error (Fmt.str "%a" Compiler.Placement.pp_failure f)
  | Ok deployment ->
    t.deployment <- Some deployment;
    t.tenants <- Some (Control.Tenants.create ~sim:t.sim deployment);
    (* install routes wherever the LPM table landed *)
    List.iter
      (fun w ->
        let dev = w.Runtime.Wiring.device in
        if
          List.mem "ipv4_lpm" (Targets.Device.installed_names dev)
        then
          Apps.L2l3.install_routes (Targets.Device.env dev) t.topo
            ~node_id:w.Runtime.Wiring.node.Netsim.Node.id)
      t.wireds;
    ignore
      (Control.Controller.register_app t.controller
         ~uri:(Control.Uri.v ~owner:"infra" "l2l3")
         ~kind:Control.Controller.Infrastructure ~program
         ~replicas:
           (List.filter_map
              (fun (name, dev) ->
                if name = "ipv4_lpm" then Some dev else None)
              deployment.Compiler.Incremental.dep_placement.Compiler.Placement.where));
    Ok deployment

let deployment_exn t =
  match t.deployment with
  | Some d -> d
  | None -> invalid_arg "Flexnet: call deploy_infrastructure first"

let tenants_exn t =
  match t.tenants with
  | Some x -> x
  | None -> invalid_arg "Flexnet: call deploy_infrastructure first"

(** Admit a tenant extension program (live injection). *)
let add_tenant t ext = Control.Tenants.admit (tenants_exn t) ext

(** Tenant departure (live removal + resource release). *)
let remove_tenant t name = Control.Tenants.depart (tenants_exn t) name

(** Deploy a network-wide policy over the switch datapath: slice per
    switch (s0, s1, ... get switch values 0, 1, ...) and install all
    slices under one two-version window. *)
let deploy_policy ?owner ~name t pol =
  let devices =
    List.mapi (fun i d -> (d, Int64.of_int i)) (switch_devices t)
  in
  Policy.Deploy.deploy ~obs:(obs t) ?owner ~name ~devices pol

(** Remove a deployed policy from its devices. *)
let remove_policy t dp = Policy.Deploy.undeploy ~obs:(obs t) dp

(** Apply a runtime patch to the infrastructure program: plan over
    snapshots, execute through the reconfiguration engine. *)
let patch_infrastructure t patch =
  Runtime.Reconfig.apply_patch ~obs:(obs t) (deployment_exn t) patch

(** Apply a patch hitlessly over simulated time: every device is frozen
    (keeps serving the old program), the planned ops are executed
    through the engine, and each touched device flips to the new
    program atomically when its modeled op batch completes. *)
let patch_hitless ?(on_done = fun (_ : Compiler.Incremental.report) -> ()) t
    patch =
  let dep = deployment_exn t in
  List.iter (fun w -> Targets.Device.freeze w.Runtime.Wiring.device) t.wireds;
  match Runtime.Reconfig.apply_patch ~obs:(obs t) dep patch with
  | Error _ as e ->
    List.iter (fun w -> Targets.Device.rollback w.Runtime.Wiring.device) t.wireds;
    e
  | Ok (report, diff) ->
    let times = Runtime.Reconfig.per_device_times report.plan t.wireds in
    List.iter
      (fun w ->
        let d = Targets.Device.id w.Runtime.Wiring.device in
        let delay = Option.value (List.assoc_opt d times) ~default:0. in
        Netsim.Sim.after t.sim delay (fun () ->
            Targets.Device.thaw w.Runtime.Wiring.device))
      t.wireds;
    Netsim.Sim.after t.sim report.duration (fun () -> on_done report);
    Ok (report, diff)

(** Inject traffic at h0 toward h1 (runs no host program — use the
    transport layer for host-stack behaviour). *)
let send_h0 t pkt = Netsim.Node.send t.h0 ~port:0 pkt

(** Run the simulation until [until] seconds of virtual time. *)
let run t ~until = ignore (Netsim.Sim.run ~until t.sim)

(** Aggregate statistics for reports. *)
type stats = {
  delivered_h1 : int;
  delivered_h0 : int;
  device_drops : int;
  reconfig_drops : int;
}

let stats t =
  { delivered_h1 = t.h1.Netsim.Node.rx_packets;
    delivered_h0 = t.h0.Netsim.Node.rx_packets;
    device_drops =
      List.fold_left
        (fun acc w -> acc + w.Runtime.Wiring.node.Netsim.Node.dropped)
        0 t.wireds;
    reconfig_drops =
      List.fold_left
        (fun acc w -> acc + Runtime.Wiring.drain_drops w)
        0 t.wireds }
