(** The FlexBPF verifier: dataflow safety analysis for runtime-injected
    programs (§2, §3.1).

    [Typecheck] proves well-formedness and [Analysis] bounds execution;
    this module adds the eBPF-verifier-style semantic passes between
    the two. Each pass walks an [Ast.program] and reports
    [Diagnostics.t] findings with stable [FBVnnn] codes:

    {b uninit-read} — may-analysis of header presence and metadata
    definedness through [If] joins.
    - [FBV001] (Error): header field read/written when no parser rule
      or prior statement can have produced the header.
    - [FBV002] (Warning): metadata slot read before any assignment
      (reads default to 0).

    {b dead-code} — reachability of statements, elements, actions, maps.
    - [FBV010] (Warning): statement after an unconditional drop.
    - [FBV011] (Warning): element after an element that drops every
      packet.
    - [FBV012] (Info): non-default action unreachable until a rule
      references it.
    - [FBV013] (Warning): map never read or written by the pipeline.
    - [FBV014] (Info): map written but never read (control-plane only).
    - [FBV015] (Info): map read but never written by the pipeline.

    {b value-range} — interval abstract interpretation over [int64].
    - [FBV020] (Warning): branch condition is constant.
    - [FBV021] (Warning): shift amount always outside [0..63].
    - [FBV022] (Warning): division/modulo by an always-zero expression.
    - [FBV023] (Warning): key always outside [0, size) on a
      registers-encoded map (certain hash aliasing).
    - [FBV024] (Warning): value can never fit the target field width.
    - [FBV025] (Warning): nested loops whose aggregate iteration count
      dwarfs [Typecheck.max_loop_bound].

    {b migration-safety} — lossy concrete encodings under per-packet
    mutation (§3.4, [Runtime.Migration.freeze_copy]).
    - [FBV030] (Warning): mutated map pinned to registers (aliasing).
    - [FBV031] (Warning): mutated map pinned to flow-state (overflow).

    {b tenant-isolation} — [Compose] access control as lint.
    - [FBV040] (Warning): foreign-map touch / name collision /
      unauthorized drop, via [Compose.check_access].
    - [FBV041] (Info): tenant element not VLAN-guarded (admission will
      wrap it with [Compose.guard_element]).

    {b shard-safety} — map access classification for the domain-sharded
    datapath ([Dataflow.Shard_safety]).
    - [FBV050] (Info): map is shard-commutative (increment-only writes
      merge by sum).
    - [FBV051] (Warning): map needs an exclusive owner shard
      (put/delete last-writer-wins state).
    - [FBV052] (Error for tenant owners, Warning for infra):
      read-modify-write — the written value derives from a read of the
      same map and races across shards.
    - [FBV053] (Info): shard-commutative map also read on the datapath
      (shards observe partial counts).
    - [FBV054] (Warning): map mixes increments with put/delete writes.

    {b static-cost} — WCET certificate checks ([Dataflow.Cost]).
    - [FBV060] (Info): one element dominates the certified per-packet
      cost.
    - [FBV061] (Warning): the planner heuristic charges at least twice
      the certified worst case (statically dead branches).
    - [FBV062] (Warning): certified cost exceeds half the default
      admission budget.

    Passes assume a well-formed program — run [Typecheck.check_program]
    first, or use [check] which folds typechecking in. All entry points
    are deterministic: same program, same diagnostic list. *)

(** Individual passes, in the order [verify] runs them. Results are in
    traversal order, not normalized. *)

val uninit_read : Ast.program -> Diagnostics.t list
val dead_code : Ast.program -> Diagnostics.t list

(** The value-range pass, hosted on [Dataflow]'s CFG and forward
    solver. *)
val value_range : Ast.program -> Diagnostics.t list

(** The original syntax-directed value-range implementation, kept as
    the differential-testing reference: for every well-formed program,
    [value_range_reference p = value_range p]. *)
val value_range_reference : Ast.program -> Diagnostics.t list

val migration_safety : Ast.program -> Diagnostics.t list
val tenant_isolation : Ast.program -> Diagnostics.t list
val shard_safety : Ast.program -> Diagnostics.t list
val static_cost : Ast.program -> Diagnostics.t list

(** The pass table: name (as it appears in [Diagnostics.t.pass]) and
    entry point. *)
val passes : (string * (Ast.program -> Diagnostics.t list)) list

val pass_names : string list

(** Run every pass and return the normalized (sorted, deduplicated)
    findings. Assumes a well-typed program. *)
val verify : Ast.program -> Diagnostics.t list

(** A typechecking error as an [FBV000] Error diagnostic. *)
val of_typecheck_error : Typecheck.error -> Diagnostics.t

(** [check prog] typechecks, then verifies: typecheck failures come
    back as [FBV000] Errors (and suppress the semantic passes, which
    assume well-formed input). *)
val check : Ast.program -> Diagnostics.t list

(** Every diagnostic code with a human explanation: (code, (title,
    detail)), in code order — the backing store for
    [flexnet lint --explain]. *)
val explanations : (string * (string * string)) list

(** Look up one code (case-insensitive). *)
val explain : string -> (string * string) option
