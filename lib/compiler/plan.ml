(** Reconfiguration plans: the interface between the compiler and the
    runtime. A plan is an ordered list of device operations; the runtime
    executes it hitlessly (or via drain, for the compile-time baseline).

    Per-device operations serialize; operations on different devices run
    in parallel ("synchronized reconfigurations across the network"), so
    a plan's wall-clock duration is the maximum per-device serial time.

    Plans carry no device handles — only ids — so the compiler can emit
    them from pure searches over resource snapshots; only
    [Runtime.Reconfig] resolves ids to live devices. *)

open Flexbpf

type op =
  | Install of { device : string; element : Ast.element; ctx : Ast.program; order : int }
  | Remove of { device : string; element_name : string }
  | Move of {
      from_device : string;
      to_device : string;
      element : Ast.element;
      ctx : Ast.program;
      order : int;
    }
  | Add_parser of { device : string; rule : Ast.parser_rule }
  | Remove_parser of { device : string; rule_name : string }
  | Migrate_state of { from_device : string; to_device : string; map_name : string }
  | Defragment of { device : string; moves : int }
      (* re-pack staged elements; [moves] live relocations *)

type t = {
  plan_name : string;
  ops : op list;
  residency : Targets.Resource.residency list;
      (* tables this plan installs oversubscribed: planned device-tier
         size and predicted miss rate, for display and admission audit *)
}

let v ?(residency = []) name ops = { plan_name = name; ops; residency }

let op_device = function
  | Install { device; _ } | Remove { device; _ } | Add_parser { device; _ }
  | Remove_parser { device; _ } | Defragment { device; _ } -> device
  | Move { to_device; _ } -> to_device
  | Migrate_state { to_device; _ } -> to_device

let op_name = function
  | Install { element; _ } -> "install " ^ Ast.element_name element
  | Remove { element_name; _ } -> "remove " ^ element_name
  | Move { element; from_device; to_device; _ } ->
    Printf.sprintf "move %s %s->%s" (Ast.element_name element) from_device
      to_device
  | Add_parser { rule; _ } -> "add-parser " ^ rule.Ast.pr_name
  | Remove_parser { rule_name; _ } -> "remove-parser " ^ rule_name
  | Migrate_state { map_name; _ } -> "migrate-state " ^ map_name
  | Defragment { moves; _ } -> Printf.sprintf "defragment (%d moves)" moves

(** Modelled duration of one op on the device's reconfiguration path. *)
let op_time (times : Targets.Arch.reconfig_times) = function
  | Install _ -> times.t_add_table
  | Remove _ -> times.t_remove_table
  | Move _ -> times.t_move_element
  | Add_parser _ | Remove_parser _ -> times.t_parser_change
  | Migrate_state _ -> times.t_move_element
  | Defragment { moves; _ } -> float_of_int moves *. times.t_move_element

(** Resolve a device id to its reconfiguration timing profile from a
    device list; unknown ids get the dRMT profile. The single
    op-serialization cost model shared by the compiler, the runtime
    executor, and the benches. *)
let times_of_devices devices dev_id =
  match
    List.find_opt (fun d -> Targets.Device.id d = dev_id) devices
  with
  | Some d -> Targets.Device.reconfig_times d
  | None -> (Targets.Arch.profile_of_kind Targets.Arch.Drmt).Targets.Arch.reconfig

(** Serial op time per device id in the plan. *)
let per_device_times ~times_of t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let d = op_device op in
      let cur = Option.value (Hashtbl.find_opt tbl d) ~default:0. in
      Hashtbl.replace tbl d (cur +. op_time (times_of d) op))
    t.ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(** Wall-clock duration: ops on the same device serialize, devices work
    in parallel. [times_of] resolves a device id to its profile. *)
let duration ~times_of t =
  List.fold_left
    (fun acc (_, v) -> Float.max acc v)
    0.
    (per_device_times ~times_of t)

(** Total serial work (sum of all op times) — the "intrusiveness" metric
    used by the incremental-compilation experiments. *)
let total_work ~times_of t =
  List.fold_left (fun acc op -> acc +. op_time (times_of (op_device op)) op) 0. t.ops

(** The cost annotation a pure planner attaches to a plan: predicted
    intrusiveness, wall-clock, and per-device resource deltas (occupied
    after − occupied before, over the predicted snapshots). *)
type cost = {
  c_total_work : float;
  c_duration : float;
  c_deltas : (string * Targets.Resource.t) list;
}

let cost_of ~times_of ~deltas t =
  { c_total_work = total_work ~times_of t;
    c_duration = duration ~times_of t;
    c_deltas = deltas }

let pp_cost ppf c =
  Fmt.pf ppf "@[<v>work=%.3fs duration=%.3fs%a@]" c.c_total_work c.c_duration
    (fun ppf deltas ->
      List.iter
        (fun (d, r) -> Fmt.pf ppf "@ %s: %a" d Targets.Resource.pp r)
        deltas)
    c.c_deltas

(** Cross-check of the program's static WCET certificate
    ([Flexbpf.Dataflow.Cost]) against the planner's syntax-directed
    heuristic ([Flexbpf.Analysis.max_cycles]). The two agree exactly on
    programs with no statically dead branches; a ratio of 2x or more
    means the heuristic is budgeting for work the packet can never do,
    and placement decisions made from it are correspondingly
    pessimistic. *)
type cost_check = {
  ck_program : string;
  ck_certified : int; (* dead branches pruned *)
  ck_heuristic : int; (* = Analysis.max_cycles *)
  ck_ratio : float; (* heuristic / certified; 1.0 when certified = 0 *)
  ck_divergent : bool; (* ck_ratio >= 2.0 *)
}

let cost_check (prog : Ast.program) =
  let c = Flexbpf.Dataflow.Cost.analyze prog in
  let certified = c.Flexbpf.Dataflow.Cost.cc_certified in
  let heuristic = c.Flexbpf.Dataflow.Cost.cc_heuristic in
  let ratio =
    if certified <= 0 then 1.0
    else float_of_int heuristic /. float_of_int certified
  in
  { ck_program = prog.Ast.prog_name; ck_certified = certified;
    ck_heuristic = heuristic; ck_ratio = ratio;
    ck_divergent = ratio >= 2.0 }

let pp_cost_check ppf ck =
  Fmt.pf ppf "%s: certified %d, heuristic %d work units (ratio %.2f)%s"
    ck.ck_program ck.ck_certified ck.ck_heuristic ck.ck_ratio
    (if ck.ck_divergent then " [divergent]" else "")

let size t = List.length t.ops

let pp ppf t =
  let over =
    match List.length t.residency with
    | 0 -> ""
    | n -> Printf.sprintf ", %d oversubscribed" n
  in
  Fmt.pf ppf "@[<v2>plan %s (%d ops%s):@ %a@]" t.plan_name (size t) over
    Fmt.(list ~sep:cut (of_to_string op_name))
    t.ops
