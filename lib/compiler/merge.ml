(** Table-merging optimization (§3.3).

    "Merging two match/action tables will lead to increased memory usage
    due to a table cross-product, but it saves one table lookup time and
    reduces latency." The merged table matches on the union of both key
    sets; its rule set is the cross product of the two rule sets with
    action bodies concatenated. *)

open Flexbpf

type cost = {
  entries_before : int; (* size t1 + size t2 *)
  entries_after : int; (* size t1 * size t2 (cross product) *)
  lookups_saved : int;
  latency_saved_ns : float; (* on a given architecture *)
  extra_bytes : int;
}

(** Merge table [b] into table [a] (a's actions run first). Actions are
    paired: the merged action [a1&b1] executes a1's body then b1's. *)
let merge_tables (a : Ast.table) (b : Ast.table) =
  let merged_actions =
    List.concat_map
      (fun (aa : Ast.action) ->
        List.map
          (fun (ba : Ast.action) ->
            (* disambiguate parameter names by side *)
            let rename side p = side ^ "." ^ p in
            let rec rename_expr side = function
              | Ast.Param p -> Ast.Param (rename side p)
              | Ast.Bin (op, x, y) -> Ast.Bin (op, rename_expr side x, rename_expr side y)
              | Ast.Un (op, e) -> Ast.Un (op, rename_expr side e)
              | Ast.Hash (alg, es) -> Ast.Hash (alg, List.map (rename_expr side) es)
              | Ast.Map_get (m, ks) -> Ast.Map_get (m, List.map (rename_expr side) ks)
              | e -> e
            in
            let rec rename_stmt side = function
              | Ast.Set_field (h, f, e) -> Ast.Set_field (h, f, rename_expr side e)
              | Ast.Set_meta (m, e) -> Ast.Set_meta (m, rename_expr side e)
              | Ast.Map_put (m, ks, v) ->
                Ast.Map_put (m, List.map (rename_expr side) ks, rename_expr side v)
              | Ast.Map_incr (m, ks, v) ->
                Ast.Map_incr (m, List.map (rename_expr side) ks, rename_expr side v)
              | Ast.Map_del (m, ks) -> Ast.Map_del (m, List.map (rename_expr side) ks)
              | Ast.If (c, th, el) ->
                Ast.If (rename_expr side c, List.map (rename_stmt side) th,
                        List.map (rename_stmt side) el)
              | Ast.Loop (n, body) -> Ast.Loop (n, List.map (rename_stmt side) body)
              | Ast.Forward e -> Ast.Forward (rename_expr side e)
              | Ast.Call (svc, args) -> Ast.Call (svc, List.map (rename_expr side) args)
              | s -> s
            in
            { Ast.act_name = aa.Ast.act_name ^ "&" ^ ba.Ast.act_name;
              params =
                List.map (rename "a") aa.Ast.params
                @ List.map (rename "b") ba.Ast.params;
              body =
                List.map (rename_stmt "a") aa.Ast.body
                @ List.map (rename_stmt "b") ba.Ast.body })
          b.Ast.tbl_actions)
      a.Ast.tbl_actions
  in
  let default =
    let da, da_args = a.Ast.default_action and db, db_args = b.Ast.default_action in
    (da ^ "&" ^ db, da_args @ db_args)
  in
  { Ast.tbl_name = a.Ast.tbl_name ^ "+" ^ b.Ast.tbl_name;
    keys = a.Ast.keys @ b.Ast.keys;
    tbl_actions = merged_actions;
    default_action = default;
    tbl_size = a.Ast.tbl_size * b.Ast.tbl_size }

(** Cross product of installed rule sets. *)
let merge_rules (rules_a : Ast.rule list) (rules_b : Ast.rule list) =
  List.concat_map
    (fun (ra : Ast.rule) ->
      List.map
        (fun (rb : Ast.rule) ->
          { Ast.rule_priority = (ra.Ast.rule_priority * 1000) + rb.Ast.rule_priority;
            matches = ra.Ast.matches @ rb.Ast.matches;
            rule_action = ra.Ast.rule_action ^ "&" ^ rb.Ast.rule_action;
            rule_args = ra.Ast.rule_args @ rb.Ast.rule_args })
        rules_b)
    rules_a

(** Evaluate the tradeoff for merging [a] and [b] given [rules_a]/[rules_b]
    installed entries, on architecture [profile]. *)
let evaluate ~(profile : Targets.Arch.profile) ~ctx (a : Ast.table)
    (b : Ast.table) ~rules_a ~rules_b =
  let na = List.length rules_a and nb = List.length rules_b in
  let merged = merge_tables a b in
  let bytes t = Analysis.table_bytes ctx t in
  { entries_before = na + nb;
    entries_after = na * nb;
    lookups_saved = 1;
    latency_saved_ns =
      profile.Targets.Arch.per_cycle_ns
      *. float_of_int (1 + List.length b.Ast.keys);
    extra_bytes = max 0 (bytes merged - bytes a - bytes b) }

(** Merge a chain of [k] tables left-to-right (for the E6 sweep). *)
let merge_chain tables =
  match tables with
  | [] -> invalid_arg "Merge.merge_chain: empty"
  | t :: rest -> List.fold_left merge_tables t rest
