(** Reference interpreter for FlexBPF.

    All simulated targets share these functional semantics — the
    paper's architectures differ in resources, performance, and
    reconfiguration behaviour, not in what a match/action program
    means. Division and modulo by zero yield 0 (eBPF semantics), so
    every certified program is total. *)

exception Eval_error of string

(** Execution environment of one program instance on one device:
    instantiated maps, installed rules, clock, and the punt/dRPC
    callbacks wired by the runtime. *)
type env = {
  maps : (string, State.t) Hashtbl.t;
  rules : (string, Ast.rule list) Hashtbl.t; (* table -> installed rules *)
  mutable now_us : int64; (* virtual time, set by the device before exec *)
  mutable punt : string -> Netsim.Packet.t -> unit;
  mutable drpc : string -> int64 list -> int64;
  mutable stats : Netsim.Stats.Counters.t;
}

(** Instantiate maps (resolving [Enc_auto] to [default_encoding]) and
    empty rule sets for a program. *)
val create_env : ?default_encoding:State.concrete -> Ast.program -> env

(** @raise Eval_error when the map does not exist. *)
val env_map : env -> string -> State.t

val install_rule : env -> string -> Ast.rule -> unit
val remove_rules : env -> string -> (Ast.rule -> bool) -> unit
val table_rules : env -> string -> Ast.rule list

(** Outcome of running a pipeline on one packet. [Drop] is sticky:
    once set, later forwards cannot resurrect the packet. *)
type verdict = {
  mutable egress : int option;
  mutable dropped : bool;
  mutable punts : string list;
}

val fresh_verdict : unit -> verdict

(** Total binary operator semantics (division by zero yields 0). *)
val eval_binop : Ast.binop -> int64 -> int64 -> int64

val crc16 : int64 list -> int64
val crc32 : int64 list -> int64

(** Does [value] satisfy the pattern? *)
val match_pattern : int64 -> Ast.pattern -> bool

(** Highest-priority (then longest-prefix) matching rule, if any. *)
val select_rule :
  env -> Ast.table -> params:(string * int64) list -> Netsim.Packet.t ->
  Ast.rule option

(** Does the program's parser accept this packet's header sequence? *)
val parse_accepts : Ast.program -> Netsim.Packet.t -> bool

type result = {
  verdict : verdict;
  parse_ok : bool;
  runtime_error : string option; (* faulting packets are dropped *)
}

(** Run the full program: parser gate, then the pipeline in order. *)
val run : env -> Ast.program -> Netsim.Packet.t -> result

(** Run a single block outside a pipeline — used for host-side offloads
    such as interpreted congestion-control programs. *)
val run_block : env -> Ast.block -> Netsim.Packet.t -> result
