(** SYN-flood defense, summoned into the network at attack time and
    retired when the attack subsides (§1.1 "real-time security").

    Per-destination SYN counters over a sliding window; when a
    destination is under attack, SYNs from sources without established
    state are dropped (a SYN-cookie stand-in) and an alarm digest is
    punted so the controller can scale the defense. *)

open Flexbpf
open Flexbpf.Builder

let alarm_digest = "syn_alarm"

let syn_rate_map = map_decl ~key_arity:2 ~size:1024 "syn_rate"
let established_map = map_decl ~key_arity:2 ~size:65536 "established"
let dropped_map = map_decl ~key_arity:1 ~size:4 "syn_dropped"

let maps = [ syn_rate_map; established_map; dropped_map ]

let is_syn =
  band (field "tcp" "flags") (const 0x02) >: const 0

let is_ack =
  band (field "tcp" "flags") (const 0x10) >: const 0

(* window in microseconds: counters reset each window via epoch key *)
let window_us = 100_000

let window_key = Ast.Bin (Ast.Div, now, const window_us)

(** The defense block. [threshold] is SYNs per destination per 100ms
    window before mitigation engages. *)
let block ?(name = "syn_defense") ?(threshold = 500) () =
  let dst = field "ipv4" "dst" in
  let src = field "ipv4" "src" in
  let rate = map_get "syn_rate" [ dst; window_key ] in
  Flexbpf.Builder.block name
    [ (* established state is learned from ACKs of the destination side *)
      when_ (is_ack &&: not_ is_syn) [ map_put "established" [ src; dst ] (const 1) ];
      when_ is_syn
        [ map_incr "syn_rate" [ dst; window_key ];
          when_ (rate >: const threshold)
            [ punt alarm_digest;
              when_
                (not_ (map_get "established" [ src; dst ] >: const 0))
                [ map_incr "syn_dropped" [ const 0 ]; drop ] ] ] ]

let program ?(owner = "infra") ?threshold () =
  Builder.program ~owner "syn_defense" ~maps [ block ?threshold () ]

(** Defense elements are injectable piecemeal (e.g. one replica per
    ingress switch); each replica shares the logic but owns its state. *)
let replica ~index ?threshold () =
  let name = Printf.sprintf "syn_defense_%d" index in
  block ~name ?threshold ()

let dropped_count dev =
  match Targets.Device.map_state dev "syn_dropped" with
  | Some st -> Flexbpf.State.get st [ 0L ]
  | None -> 0L

(** Offered SYN load toward [dst]: the larger of the current and the
    previous window's counter, so reads at a window boundary don't see
    the just-opened (still empty) window. *)
let syn_rate_of dev ~dst ~now_us =
  match Targets.Device.map_state dev "syn_rate" with
  | Some st ->
    let w = Int64.div now_us (Int64.of_int window_us) in
    Int64.max
      (Flexbpf.State.get st [ dst; w ])
      (Flexbpf.State.get st [ dst; Int64.sub w 1L ])
  | None -> 0L
