(** Combinators for building FlexBPF programs concisely.

    The app library and tests build every program through these; they
    keep the AST constructors out of client code. *)

open Ast

(* Expressions -------------------------------------------------------- *)

let const v = Const (Int64.of_int v)
let const64 v = Const v
let field h f = Field (h, f)
let meta m = Meta m
let param p = Param p
let map_get m keys = Map_get (m, keys)
let hash ?(alg = Crc32) es = Hash (alg, es)
let now = Time

let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( /: ) a b = Bin (Div, a, b)
let ( %: ) a b = Bin (Mod, a, b)
let ( =: ) a b = Bin (Eq, a, b)
let ( <>: ) a b = Bin (Neq, a, b)
let ( <: ) a b = Bin (Lt, a, b)
let ( <=: ) a b = Bin (Le, a, b)
let ( >: ) a b = Bin (Gt, a, b)
let ( >=: ) a b = Bin (Ge, a, b)
let ( &&: ) a b = Bin (Land, a, b)
let ( ||: ) a b = Bin (Lor, a, b)
let band a b = Bin (Band, a, b)
let bor a b = Bin (Bor, a, b)
let shl a b = Bin (Shl, a, b)
let shr a b = Bin (Shr, a, b)
let not_ e = Un (Not, e)

(* Statements --------------------------------------------------------- *)

let set_field h f e = Set_field (h, f, e)
let set_meta m e = Set_meta (m, e)
let map_put m keys v = Map_put (m, keys, v)
let map_incr ?(by = Const 1L) m keys = Map_incr (m, keys, by)
let map_del m keys = Map_del (m, keys)
let if_ c th el = If (c, th, el)
let when_ c th = If (c, th, [])
let loop n body = Loop (n, body)
let forward e = Forward e
let forward_port p = Forward (const p)
let drop = Drop
let punt d = Punt d
let call svc args = Call (svc, args)

(* Declarations ------------------------------------------------------- *)

let action name ?(params = []) body = { act_name = name; params; body }

let table name ~keys ~actions ?(default = ("nop", [])) ?(size = 1024) () =
  let actions =
    if List.exists (fun a -> a.act_name = "nop") actions then actions
    else actions @ [ action "nop" [ Nop ] ]
  in
  Table { tbl_name = name; keys; tbl_actions = actions;
          default_action = default; tbl_size = size }

let block name body = Block { blk_name = name; blk_body = body }

let exact e = (e, Exact)
let lpm e = (e, Lpm)
let ternary e = (e, Ternary)
let range e = (e, Range)

let map_decl ?(encoding = Enc_auto) ?(key_arity = 1) ~size name =
  { map_name = name; key_arity; map_size = size; encoding }

let header name fields = { hdr_name = name; hdr_fields = fields }

let parser_rule name headers = { pr_name = name; pr_headers = headers }

(* Standard header declarations matching Netsim.Packet constructors. *)

let ethernet_header =
  header "ethernet" [ ("src", 48); ("dst", 48); ("ethertype", 16) ]

let vlan_header = header "vlan" [ ("vid", 12); ("ethertype", 16) ]

let ipv4_header =
  header "ipv4"
    [ ("src", 32); ("dst", 32); ("proto", 8); ("ttl", 8); ("ecn", 2);
      ("dscp", 6) ]

let tcp_header =
  header "tcp"
    [ ("sport", 16); ("dport", 16); ("seq", 32); ("ack", 32); ("flags", 9) ]

let udp_header = header "udp" [ ("sport", 16); ("dport", 16) ]

let standard_headers =
  [ ethernet_header; vlan_header; ipv4_header; tcp_header; udp_header ]

let standard_parser =
  [ parser_rule "parse_eth" [ "ethernet" ];
    parser_rule "parse_ipv4" [ "ethernet"; "ipv4" ];
    parser_rule "parse_vlan_ipv4" [ "ethernet"; "vlan"; "ipv4" ];
    parser_rule "parse_tcp" [ "ethernet"; "ipv4"; "tcp" ];
    parser_rule "parse_udp" [ "ethernet"; "ipv4"; "udp" ];
    parser_rule "parse_vlan_tcp" [ "ethernet"; "vlan"; "ipv4"; "tcp" ];
    parser_rule "parse_vlan_udp" [ "ethernet"; "vlan"; "ipv4"; "udp" ] ]

let program ?(owner = "infra") ?(headers = standard_headers)
    ?(parser = standard_parser) ?(maps = []) name pipeline =
  { prog_name = name; owner; headers; parser; maps; pipeline }

(* Rules -------------------------------------------------------------- *)

let rule ?(priority = 0) ~matches ~action:(rule_action, rule_args) () =
  { rule_priority = priority; matches;
    rule_action; rule_args = List.map Int64.of_int rule_args }

let exact_i v = P_exact (Int64.of_int v)
let lpm_i v len = P_lpm (Int64.of_int v, len)
let ternary_i v m = P_ternary (Int64.of_int v, Int64.of_int m)
let range_i a b = P_range (Int64.of_int a, Int64.of_int b)
let any = P_any
