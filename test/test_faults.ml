(* Fault-injection tests: the seeded injector itself (links, dRPC,
   device crashes), the retry machinery it exercises (dRPC backoff,
   reconfiguration re-drive/rollback), and the control-plane reactions
   (replication rejoin, controller re-resolution). The headline qcheck
   property is the paper's old-XOR-new guarantee under arbitrary seeded
   fault plans: a reconfiguration either completes or rolls every
   touched device back — no device is ever left mid-update. *)

open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let to_alcotest = QCheck_alcotest.to_alcotest

(* -- The injector is deterministic and glob matching behaves ------------- *)

let test_glob () =
  check "exact" true (Netsim.Faults.glob_matches "heartbeat" "heartbeat");
  check "star" true (Netsim.Faults.glob_matches "*" "anything");
  check "prefix" true (Netsim.Faults.glob_matches "s1->*" "s1->s2");
  check "no match" false (Netsim.Faults.glob_matches "s1->*" "s2->s1");
  check "infix" true (Netsim.Faults.glob_matches "*->s1" "s0->s1")

let drop_counts ~seed =
  let sim = Netsim.Sim.create () in
  let faults =
    Netsim.Faults.create ~sim ~seed
      [ Netsim.Faults.Drpc_window
          { service = "*"; start = 0.; stop = 10.; drop_prob = 0.5 } ]
  in
  List.init 64 (fun _ ->
      match Netsim.Faults.rpc_decision faults ~service:"svc" with
      | `Drop -> 1
      | `Deliver -> 0)

let test_deterministic_decisions () =
  Alcotest.(check (list int))
    "same seed, same drop sequence" (drop_counts ~seed:42) (drop_counts ~seed:42);
  check "different seeds diverge" true
    (drop_counts ~seed:42 <> drop_counts ~seed:43)

(* -- Link faults: loss, extra delay -------------------------------------- *)

let linear_hosts () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:1 () in
  let topo = built.Netsim.Topology.topo in
  List.iter
    (fun sw ->
      Netsim.Node.set_handler sw (Netsim.Topology.forwarding_handler topo))
    built.Netsim.Topology.switch_list;
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  (sim, built, h0, h1)

let test_link_loss_window () =
  let sim, built, h0, h1 = linear_hosts () in
  let received = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr received);
  let faults =
    Netsim.Faults.create ~sim ~seed:5
      [ Netsim.Faults.Link_window
          { link = "*"; start = 0.1; stop = 0.2;
            what = Netsim.Faults.Loss 1.0 } ]
  in
  List.iter
    (Netsim.Faults.bind_node_links faults)
    (built.Netsim.Topology.host_list @ built.Netsim.Topology.switch_list);
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:1000. ~start:0. ~stop:0.3 ~send:(fun () ->
      incr sent;
      Netsim.Node.send h0 ~port:0
        (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
           ~dst:h1.Netsim.Node.id ~sport:1 ~dport:2
           ~born:(Netsim.Sim.now sim) ()));
  ignore (Netsim.Sim.run sim);
  let lost = !sent - !received in
  (* p=1.0 over a 100ms window at 1kpps: the window's packets die *)
  check "loss confined to the window" true (lost >= 90 && lost <= 110);
  check "loss counted as injected" true
    (Netsim.Stats.Counters.get
       (Netsim.Faults.counters faults)
       "faults.link.loss_windows"
     > 0)

let test_link_extra_delay () =
  let sim, built, h0, h1 = linear_hosts () in
  let arrivals = ref [] in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ ->
      arrivals := Netsim.Sim.now sim :: !arrivals);
  let faults =
    Netsim.Faults.create ~sim ~seed:5
      [ Netsim.Faults.Link_window
          { link = "*"; start = 0.1; stop = 0.2;
            what = Netsim.Faults.Extra_delay 0.01 } ]
  in
  List.iter
    (Netsim.Faults.bind_node_links faults)
    (built.Netsim.Topology.host_list @ built.Netsim.Topology.switch_list);
  let send at =
    Netsim.Sim.at sim at (fun () ->
        Netsim.Node.send h0 ~port:0
          (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
             ~dst:h1.Netsim.Node.id ~sport:1 ~dport:2 ~born:at ()))
  in
  send 0.05 (* before the window *);
  send 0.15 (* inside: both hops add 10ms *);
  ignore (Netsim.Sim.run sim);
  match List.rev !arrivals with
  | [ a1; a2 ] ->
    let base = a1 -. 0.05 and slow = a2 -. 0.15 in
    check "delay window adds latency" true (slow > base +. 0.015)
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

(* -- dRPC: timeout, bounded backoff retries, give-up --------------------- *)

let drpc_fixture plan =
  let sim = Netsim.Sim.create () in
  let faults = Netsim.Faults.create ~sim ~seed:9 plan in
  let reg = Runtime.Drpc.create sim in
  Runtime.Drpc.set_faults reg (Some faults);
  Runtime.Drpc.register reg "echo" (fun _ -> 7L);
  (sim, reg)

let test_drpc_gives_up_after_retries () =
  let sim, reg =
    drpc_fixture
      [ Netsim.Faults.Drpc_window
          { service = "echo"; start = 0.; stop = 1e9; drop_prob = 1.0 } ]
  in
  let result = ref (Some 0L) in
  Runtime.Drpc.invoke_dataplane reg ~max_retries:3 "echo" [] ~k:(fun r ->
      result := r);
  ignore (Netsim.Sim.run sim);
  check "k sees None once the budget is spent" true (!result = None);
  let stats = Runtime.Drpc.stats reg in
  check_int "every retry was taken" 3
    (Netsim.Stats.Counters.get stats "drpc.retries");
  check_int "one give-up" 1 (Netsim.Stats.Counters.get stats "drpc.gaveups");
  check_int "all four attempts dropped" 4
    (Netsim.Stats.Counters.get stats "drpc.drops")

let test_drpc_retry_succeeds_after_window () =
  (* the drop window closes before the retry budget runs out, so the
     invocation eventually lands: with 5us service latency the attempts
     fire at 0, 40us, 120us, 280us — a 100us window eats the first two *)
  let sim, reg =
    drpc_fixture
      [ Netsim.Faults.Drpc_window
          { service = "echo"; start = 0.; stop = 1e-4; drop_prob = 1.0 } ]
  in
  let result = ref None in
  Runtime.Drpc.invoke_dataplane reg ~max_retries:3 "echo" [] ~k:(fun r ->
      result := r);
  ignore (Netsim.Sim.run sim);
  check "retry after the window succeeds" true (!result = Some 7L);
  let stats = Runtime.Drpc.stats reg in
  check "at least one retry happened" true
    (Netsim.Stats.Counters.get stats "drpc.retries" > 0);
  check_int "no give-up" 0 (Netsim.Stats.Counters.get stats "drpc.gaveups")

let test_drpc_clean_fabric_no_retries () =
  let sim, reg = drpc_fixture [] in
  let result = ref None in
  Runtime.Drpc.invoke_dataplane reg "echo" [ 1L ] ~k:(fun r -> result := r);
  ignore (Netsim.Sim.run sim);
  check "delivered first try" true (!result = Some 7L);
  check_int "no retries on a clean fabric" 0
    (Netsim.Stats.Counters.get (Runtime.Drpc.stats reg) "drpc.retries")

(* -- Reconfiguration: crash mid-batch, re-drive or atomic abort ---------- *)

let counter_block () = block "cnt" [ map_incr "hits" [ const 0 ] ]

let reconfig_under_crash ~restart_after ~max_retries =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:1 () in
  let topo = built.Netsim.Topology.topo in
  let dev = Targets.Device.create ~id:"s0" Targets.Arch.drmt in
  let wireds =
    [ Runtime.Wiring.attach topo (List.hd built.Netsim.Topology.switch_list) dev ]
  in
  let faults =
    Netsim.Faults.create ~sim ~seed:3
      [ Netsim.Faults.Device_crash { device = "s0"; at = 1.02; restart_after } ]
  in
  List.iter (Runtime.Wiring.bind_faults faults) wireds;
  let counter = counter_block () in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ] [ counter ]
  in
  let plan =
    Compiler.Plan.v "add"
      [ Compiler.Plan.Install
          { device = "s0"; element = counter; ctx = prog; order = 0 } ]
  in
  let outcome = ref None in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode:Runtime.Reconfig.Hitless ~wireds
        ~plan ~max_retries ~retry_backoff:0.02
        ~on_done:(fun o -> outcome := Some o) ());
  ignore (Netsim.Sim.run sim);
  (dev, Option.get !outcome)

let test_reconfig_redrive_after_crash () =
  (* the device restarts quickly; the second attempt lands the batch *)
  let dev, o = reconfig_under_crash ~restart_after:0.01 ~max_retries:3 in
  check "plan completed" false o.Runtime.Reconfig.rolled_back;
  check "took a re-drive" true (o.Runtime.Reconfig.attempts > 1);
  check "element installed" true
    (List.mem "cnt" (Targets.Device.installed_names dev));
  check "device not left frozen" false (Targets.Device.is_frozen dev);
  check_int "one crash injected" 1 (Targets.Device.crashes dev)

let test_reconfig_atomic_abort () =
  (* downtime outlasts every retry: the plan must abort atomically,
     leaving the device on its old program *)
  let dev, o = reconfig_under_crash ~restart_after:30.0 ~max_retries:2 in
  check "plan rolled back" true o.Runtime.Reconfig.rolled_back;
  check "element absent after abort" false
    (List.mem "cnt" (Targets.Device.installed_names dev));
  check "device not left frozen" false (Targets.Device.is_frozen dev)

(* -- Deploy (not patch) under a crash: the whole placement plan comes
   from the pure planner and runs through the same engine, so a crash
   mid-deploy must leave every device hosting its full planned element
   set or none of it -------------------------------------------------- *)

let deploy_under_crash ~restart_after ~max_retries =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:2 () in
  let topo = built.Netsim.Topology.topo in
  let devs =
    List.mapi
      (fun i _ ->
        Targets.Device.create ~id:(Printf.sprintf "s%d" i) Targets.Arch.drmt)
      built.Netsim.Topology.switch_list
  in
  let wireds =
    List.map2
      (fun n d -> Runtime.Wiring.attach topo n d)
      built.Netsim.Topology.switch_list devs
  in
  let faults =
    Netsim.Faults.create ~sim ~seed:3
      [ Netsim.Faults.Device_crash { device = "s0"; at = 1.02; restart_after } ]
  in
  List.iter (Runtime.Wiring.bind_faults faults) wireds;
  let prog =
    program "d"
      ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ]
      [ block "acl" [ set_meta "ok" (const 1) ];
        block "route" [ set_meta "port" (const 2) ];
        block "cnt" [ map_incr "hits" [ const 0 ] ] ]
  in
  let planned =
    match Compiler.Placement.plan ~path:devs prog with
    | Ok p -> p
    | Error _ -> Alcotest.fail "deploy planning failed"
  in
  let plan = planned.Compiler.Placement.pln_plan in
  let outcome = ref None in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode:Runtime.Reconfig.Hitless ~wireds
        ~plan ~max_retries ~retry_backoff:0.02
        ~on_done:(fun o -> outcome := Some o) ());
  ignore (Netsim.Sim.run sim);
  (devs, plan, Option.get !outcome)

(* every device hosts its full planned element set or none of it, in
   agreement with the engine's verdict, and ends thawed *)
let deploy_old_xor_new devs plan (o : Runtime.Reconfig.outcome) =
  List.for_all
    (fun d ->
      let id = Targets.Device.id d in
      let planned_here =
        List.filter_map
          (function
            | Compiler.Plan.Install { device; element; _ } when device = id ->
              Some (Flexbpf.Ast.element_name element)
            | _ -> None)
          plan.Compiler.Plan.ops
      in
      let inst = Targets.Device.installed_names d in
      let present = List.filter (fun n -> List.mem n inst) planned_here in
      (not (Targets.Device.is_frozen d))
      && (present = [] || List.length present = List.length planned_here)
      && (planned_here = []
          || (present <> []) = not o.Runtime.Reconfig.rolled_back))
    devs

let test_deploy_crash_redrive () =
  let devs, plan, o = deploy_under_crash ~restart_after:0.01 ~max_retries:3 in
  check "deploy completed" false o.Runtime.Reconfig.rolled_back;
  check "took a re-drive" true (o.Runtime.Reconfig.attempts > 1);
  check "old-XOR-new on every device" true (deploy_old_xor_new devs plan o);
  check_int "one crash injected" 1 (Targets.Device.crashes (List.hd devs))

let test_deploy_crash_atomic_abort () =
  let devs, plan, o = deploy_under_crash ~restart_after:30.0 ~max_retries:2 in
  check "deploy rolled back" true o.Runtime.Reconfig.rolled_back;
  check "old-XOR-new on every device" true (deploy_old_xor_new devs plan o)

(* -- qcheck: old-XOR-new under arbitrary seeded fault plans -------------- *)

(* A random plan mixes dRPC windows, link-delay windows, and at most one
   crash of the touched device with random timing. Whatever the plan, a
   hitless reconfiguration must end with the device unfrozen and either
   fully updated (element installed, not rolled back) or fully rolled
   back (element absent) — never mid-update. Crash-free plans must
   complete on the first attempt. *)

let plan_gen =
  QCheck.Gen.(
    let* seed = int_bound 10_000 in
    let* with_crash = bool in
    let* crash_at = float_bound_inclusive 0.08 in
    let* restart_after = float_bound_inclusive 0.2 in
    let* drpc_p = float_bound_inclusive 1.0 in
    let* delay = float_bound_inclusive 0.005 in
    return (seed, with_crash, 1.0 +. crash_at, restart_after, drpc_p, delay))

let plan_arb =
  QCheck.make
    ~print:(fun (s, c, at, ra, p, d) ->
      Printf.sprintf "seed=%d crash=%b at=%.3f restart=%.3f drpc_p=%.2f delay=%.4f"
        s c at ra p d)
    plan_gen

let prop_old_xor_new (seed, with_crash, crash_at, restart_after, drpc_p, delay) =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:1 () in
  let topo = built.Netsim.Topology.topo in
  let dev = Targets.Device.create ~id:"s0" Targets.Arch.drmt in
  let wireds =
    [ Runtime.Wiring.attach topo (List.hd built.Netsim.Topology.switch_list) dev ]
  in
  let plan_faults =
    [ Netsim.Faults.Drpc_window
        { service = "*"; start = 0.; stop = 2.; drop_prob = drpc_p };
      Netsim.Faults.Link_window
        { link = "*"; start = 0.9; stop = 1.4;
          what = Netsim.Faults.Extra_delay delay } ]
    @
    if with_crash then
      [ Netsim.Faults.Device_crash { device = "s0"; at = crash_at; restart_after } ]
    else []
  in
  let faults = Netsim.Faults.create ~sim ~seed plan_faults in
  List.iter (Runtime.Wiring.bind_faults faults) wireds;
  List.iter
    (fun w -> Netsim.Faults.bind_node_links faults w.Runtime.Wiring.node)
    wireds;
  let counter = counter_block () in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ] [ counter ]
  in
  let plan =
    Compiler.Plan.v "add"
      [ Compiler.Plan.Install
          { device = "s0"; element = counter; ctx = prog; order = 0 } ]
  in
  let outcome = ref None in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute ~sim ~mode:Runtime.Reconfig.Hitless ~wireds
        ~plan ~max_retries:2 ~retry_backoff:0.02
        ~on_done:(fun o -> outcome := Some o)
        (fun () -> ignore (Targets.Device.install dev ~ctx:prog ~order:0 counter)));
  ignore (Netsim.Sim.run sim);
  match !outcome with
  | None -> false (* the protocol must always report an outcome *)
  | Some o ->
    let installed = List.mem "cnt" (Targets.Device.installed_names dev) in
    (not (Targets.Device.is_frozen dev))
    && installed = not o.Runtime.Reconfig.rolled_back
    && (with_crash
        || (o.Runtime.Reconfig.attempts = 1
            && not o.Runtime.Reconfig.rolled_back))

let prop_fault_plan_old_xor_new =
  QCheck.Test.make ~name:"reconfig under faults: old-XOR-new, never mid-update"
    ~count:150 plan_arb prop_old_xor_new

(* -- Tiered tables: demand paging under dRPC faults ----------------------
   The promotion rides the fabric ("tier.page"), the lookup result never
   does: a dropped page may only delay residency. Whatever the drop
   pattern, forwarding must be byte-identical to the flat store. *)

let tier_table ?(size = 64) name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "fwd" ~params:[ "p" ] [ forward (param "p") ] ]
    ~default:("nop", []) ~size ()

let tier_lookup dev dst =
  let pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst ();
        Netsim.Packet.ipv4 ~src:1L ~dst ();
        Netsim.Packet.tcp ~sport:1L ~dport:2L () ]
  in
  (Targets.Device.exec dev ~now_us:0L pkt).Flexbpf.Interp.verdict
    .Flexbpf.Interp.egress

(* One paging run: 8 rules, device tier capped at 2, lookups rotating
   over [ndsts] destinations at 1ms intervals, pages dropped with
   [drop_prob] while the window is open. Returns the device, the dRPC
   registry (fault counters), and how many lookups forwarded wrong. *)
let paging_scenario ~seed ~drop_prob ~stop ~ndsts ~lookups =
  let sim = Netsim.Sim.create () in
  let dev = Targets.Device.create ~id:"s0" Targets.Arch.drmt in
  let tbl = tier_table "t" in
  let prog = program "fwd" [ tbl ] in
  (match Targets.Device.install dev ~ctx:prog ~order:0 tbl with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "install: %s" (Targets.Device.reject_to_string r));
  let env = Targets.Device.env dev in
  for d = 1 to 8 do
    Flexbpf.Interp.install_rule env "t"
      (rule ~matches:[ exact_i d ] ~action:("fwd", [ 10 + d ]) ())
  done;
  Flexbpf.Interp.set_tier_capacity env "t" 2;
  let reg = Runtime.Drpc.create sim in
  let faults =
    Netsim.Faults.create ~sim ~seed
      [ Netsim.Faults.Drpc_window
          { service = Runtime.Drpc.page_service; start = 0.; stop; drop_prob } ]
  in
  Runtime.Drpc.set_faults reg (Some faults);
  Runtime.Drpc.bind_paging reg dev;
  let wrong = ref 0 in
  for i = 0 to lookups - 1 do
    let dst = 1 + (i mod ndsts) in
    Netsim.Sim.at sim
      (0.001 *. float_of_int (i + 1))
      (fun () ->
        if tier_lookup dev (Int64.of_int dst) <> Some (10 + dst) then
          incr wrong)
  done;
  ignore (Netsim.Sim.run sim);
  (dev, reg, !wrong)

let prop_dropped_pages_never_change_forwarding =
  QCheck.Test.make
    ~name:"dropped pages: host tier serves, forwarding never wrong" ~count:60
    (QCheck.make
       ~print:(fun (s, p) -> Printf.sprintf "seed=%d drop_prob=%.2f" s p)
       QCheck.Gen.(pair (int_bound 10_000) (float_bound_inclusive 1.0)))
    (fun (seed, drop_prob) ->
      let dev, reg, wrong =
        paging_scenario ~seed ~drop_prob ~stop:1e9 ~ndsts:8 ~lookups:48
      in
      let stats = Runtime.Drpc.stats reg in
      let faults_n = Netsim.Stats.Counters.get stats "table.faults" in
      let drops = Netsim.Stats.Counters.get stats "table.fault_drops" in
      wrong = 0 && faults_n > 0
      && List.for_all
           (fun (s : Flexbpf.Compile.tier_stat) ->
             s.Flexbpf.Compile.ts_resident <= 2
             (* promotions commit only on delivered pages *)
             && s.Flexbpf.Compile.ts_promotions <= faults_n - drops)
           (Targets.Device.tier_stats dev))

let test_paging_full_drop_host_serves () =
  let dev, reg, wrong =
    paging_scenario ~seed:7 ~drop_prob:1.0 ~stop:1e9 ~ndsts:8 ~lookups:40
  in
  check_int "every lookup forwarded correctly" 0 wrong;
  (match Targets.Device.tier_stats dev with
   | [ s ] ->
     check_int "no promotion ever commits" 0 s.Flexbpf.Compile.ts_promotions;
     check_int "nothing resident" 0 s.Flexbpf.Compile.ts_resident;
     check_int "every lookup was a host-tier fault" 40
       s.Flexbpf.Compile.ts_misses
   | _ -> Alcotest.fail "expected one tiered table");
  check "page drops counted" true
    (Netsim.Stats.Counters.get (Runtime.Drpc.stats reg) "table.fault_drops" > 0)

let test_paging_recovers_after_window () =
  (* the drop window eats the first pages (host tier serves, slower);
     once it closes the hot keys promote and lookups start hitting *)
  let dev, reg, wrong =
    paging_scenario ~seed:7 ~drop_prob:1.0 ~stop:0.0045 ~ndsts:2 ~lookups:20
  in
  check_int "every lookup forwarded correctly" 0 wrong;
  (match Targets.Device.tier_stats dev with
   | [ s ] ->
     check "hot keys promoted after the window" true
       (s.Flexbpf.Compile.ts_promotions > 0);
     check "post-promotion lookups hit the device tier" true
       (s.Flexbpf.Compile.ts_hits > 0);
     check_int "both hot keys resident" 2 s.Flexbpf.Compile.ts_resident
   | _ -> Alcotest.fail "expected one tiered table");
  check "windowed drops counted" true
    (Netsim.Stats.Counters.get (Runtime.Drpc.stats reg) "table.fault_drops" > 0)

(* -- Move migrates both tiers; a crash mid-move keeps old-XOR-new --------- *)

let move_fixture ~crash =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:2 () in
  let topo = built.Netsim.Topology.topo in
  let devs =
    List.mapi
      (fun i _ ->
        Targets.Device.create ~id:(Printf.sprintf "s%d" i) Targets.Arch.rmt)
      built.Netsim.Topology.switch_list
  in
  let wireds =
    List.map2
      (fun n d -> Runtime.Wiring.attach topo n d)
      built.Netsim.Topology.switch_list devs
  in
  (* oversubscribed on both ends: 150k logical rules exceed one RMT
     stage, so src and dst each get a clamped device tier *)
  let tbl = tier_table ~size:150_000 "t" in
  let prog = program "fwd" [ tbl ] in
  let src = List.nth devs 0 and dst = List.nth devs 1 in
  (match Targets.Device.install src ~ctx:prog ~order:0 tbl with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "install: %s" (Targets.Device.reject_to_string r));
  for d = 1 to 8 do
    Flexbpf.Interp.install_rule (Targets.Device.env src) "t"
      (rule ~matches:[ exact_i d ] ~action:("fwd", [ 10 + d ]) ())
  done;
  (* warm three keys into src's device tier *)
  List.iter (fun d -> ignore (tier_lookup src d)) [ 1L; 2L; 3L ];
  (match crash with
   | None -> ()
   | Some (device, restart_after) ->
     let faults =
       Netsim.Faults.create ~sim ~seed:3
         [ Netsim.Faults.Device_crash { device; at = 1.02; restart_after } ]
     in
     List.iter (Runtime.Wiring.bind_faults faults) wireds);
  let plan =
    Compiler.Plan.v "mv"
      [ Compiler.Plan.Move
          { from_device = "s0"; to_device = "s1"; element = tbl; ctx = prog;
            order = 0 } ]
  in
  let outcome = ref None in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode:Runtime.Reconfig.Hitless ~wireds
        ~plan ~max_retries:2 ~retry_backoff:0.02
        ~on_done:(fun o -> outcome := Some o) ());
  ignore (Netsim.Sim.run sim);
  (src, dst, Option.get !outcome)

let test_move_carries_both_tiers () =
  let src, dst, o = move_fixture ~crash:None in
  check "move completed" false o.Runtime.Reconfig.rolled_back;
  check "src no longer hosts the table" false
    (List.mem "t" (Targets.Device.installed_names src));
  (* authoritative tier: the full rule set survived the move *)
  check_int "all rules on dst" 8
    (List.length (Flexbpf.Interp.table_rules (Targets.Device.env dst) "t"));
  check "dst device tier is capped" true
    (Flexbpf.Interp.tier_capacity (Targets.Device.env dst) "t" <> None);
  (* hot tier: the warmed keys crossed with the element *)
  check "hot keys carried to dst" true
    (List.length (Targets.Device.tier_resident_keys dst "t") >= 3);
  (* and forwarding on dst is intact for the whole logical rule set *)
  List.iter
    (fun d ->
      Alcotest.(check (option int))
        (Printf.sprintf "dst forwards %d" d)
        (Some (10 + d))
        (tier_lookup dst (Int64.of_int d)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_crash_mid_move_old_xor_new () =
  (* dst dies for longer than every retry: the move must abort with the
     table — rules and tier capacity — fully back on src and nothing on
     dst *)
  let src, dst, o = move_fixture ~crash:(Some ("s1", 30.0)) in
  check "move rolled back" true o.Runtime.Reconfig.rolled_back;
  check "src still hosts the table" true
    (List.mem "t" (Targets.Device.installed_names src));
  check_int "src keeps all rules" 8
    (List.length (Flexbpf.Interp.table_rules (Targets.Device.env src) "t"));
  check "src keeps its tier capacity" true
    (Flexbpf.Interp.tier_capacity (Targets.Device.env src) "t" <> None);
  check "dst hosts nothing" true (Targets.Device.installed_names dst = []);
  check "dst has no tier capacity" true
    (Flexbpf.Interp.tier_capacity (Targets.Device.env dst) "t" = None);
  check "neither device left frozen" false
    (Targets.Device.is_frozen src || Targets.Device.is_frozen dst);
  (* src still forwards the whole rule set after the abort *)
  List.iter
    (fun d ->
      Alcotest.(check (option int))
        (Printf.sprintf "src forwards %d" d)
        (Some (10 + d))
        (tier_lookup src (Int64.of_int d)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* -- Replication: failover on crash, rejoin + resync on restart ---------- *)

let counting_device id =
  let dev = Targets.Device.create ~id Targets.Arch.drmt in
  let b = block "cnt" [ map_incr "state" [ field "ipv4" "src" ] ] in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:256 "state" ] [ b ]
  in
  ignore (Targets.Device.install dev ~ctx:prog ~order:0 b);
  dev

let test_replication_failover_and_rejoin () =
  let sim = Netsim.Sim.create () in
  let primary = counting_device "primary" in
  let backup = counting_device "backup" in
  let group =
    Control.Replication.create ~sim ~map_name:"state" ~primary
      ~backups:[ backup ] (Control.Replication.Periodic_sync 0.05)
  in
  let faults =
    Netsim.Faults.create ~sim ~seed:4
      [ Netsim.Faults.Device_crash
          { device = "primary"; at = 0.2; restart_after = 0.3 } ]
  in
  Netsim.Faults.register_device faults "primary"
    ~crash:(fun () -> Targets.Device.crash primary)
    ~restart:(fun () -> Targets.Device.restart primary);
  let members = [ primary; backup ] in
  Control.Replication.watch_faults group faults
    ~resolve:(fun id ->
      List.find_opt (fun d -> Targets.Device.id d = id) members);
  Netsim.Sim.at sim 0.8 (fun () -> Control.Replication.stop group);
  ignore (Netsim.Sim.run ~until:1.0 sim);
  Alcotest.(check string)
    "backup promoted on crash" "backup"
    (Targets.Device.id (Control.Replication.primary group));
  check_int "old primary rejoined as backup" 1
    (Control.Replication.rejoins group);
  check "rejoined device is in the sync set" true
    (List.exists
       (fun d -> Targets.Device.id d = "primary")
       (Control.Replication.backups group));
  check "a non-member restart is ignored" true
    (Control.Replication.rejoin group (counting_device "stranger");
     Control.Replication.rejoins group = 1)

(* -- Controller: re-resolution after a crash rollback --------------------- *)

let test_controller_reresolves_after_restart () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:1 () in
  let topo = built.Netsim.Topology.topo in
  let dev = Targets.Device.create ~id:"s0" Targets.Arch.drmt in
  let wireds =
    [ Runtime.Wiring.attach topo (List.hd built.Netsim.Topology.switch_list) dev ]
  in
  let ctl = Control.Controller.create ~sim ~topo ~wireds in
  let b = block "app" [ map_incr "m" [ const 0 ] ] in
  let prog = program "p" ~maps:[ map_decl ~key_arity:1 ~size:4 "m" ] [ b ] in
  let uri = Control.Uri.v ~owner:"tenant" "app" in
  let app =
    Control.Controller.register_app ctl ~uri
      ~kind:Control.Controller.Tenant_extension ~program:prog ~replicas:[]
  in
  let faults =
    Netsim.Faults.create ~sim ~seed:6
      [ Netsim.Faults.Device_crash
          { device = "s0"; at = 0.2; restart_after = 0.1 } ]
  in
  List.iter (Runtime.Wiring.bind_faults faults) wireds;
  Control.Controller.watch_faults ctl faults;
  (* inject the app inside a freeze window: the crash rolls the device
     back to its pre-app checkpoint, so restart must re-resolve *)
  Netsim.Sim.at sim 0.1 (fun () ->
      Targets.Device.freeze dev;
      (match Control.Controller.inject_on ctl uri ~device:dev with
       | Ok () -> ()
       | Error e -> Alcotest.failf "inject: %a" Control.Controller.pp_op_error e);
      app.Control.Controller.replicas <- [ dev ]);
  ignore (Netsim.Sim.run ~until:1.0 sim);
  check "crash rollback removed the element, restart reinstalled it" true
    (List.mem "app" (Targets.Device.installed_names dev));
  check "re-resolution counted" true (Control.Controller.reresolutions ctl > 0);
  check "device back up" true (Targets.Device.powered_on dev)

let () =
  Alcotest.run "faults"
    [ ( "injector",
        [ Alcotest.test_case "glob matching" `Quick test_glob;
          Alcotest.test_case "deterministic decisions" `Quick
            test_deterministic_decisions ] );
      ( "links",
        [ Alcotest.test_case "loss window" `Quick test_link_loss_window;
          Alcotest.test_case "extra delay window" `Quick test_link_extra_delay ] );
      ( "drpc",
        [ Alcotest.test_case "gives up after retries" `Quick
            test_drpc_gives_up_after_retries;
          Alcotest.test_case "retry succeeds after window" `Quick
            test_drpc_retry_succeeds_after_window;
          Alcotest.test_case "clean fabric, no retries" `Quick
            test_drpc_clean_fabric_no_retries ] );
      ( "reconfig",
        [ Alcotest.test_case "re-drive after crash" `Quick
            test_reconfig_redrive_after_crash;
          Alcotest.test_case "atomic abort" `Quick test_reconfig_atomic_abort;
          Alcotest.test_case "deploy crash: re-drive lands full plan" `Quick
            test_deploy_crash_redrive;
          Alcotest.test_case "deploy crash: atomic abort" `Quick
            test_deploy_crash_atomic_abort;
          to_alcotest prop_fault_plan_old_xor_new ] );
      ( "tiering",
        [ to_alcotest prop_dropped_pages_never_change_forwarding;
          Alcotest.test_case "full drop: host tier serves every lookup" `Quick
            test_paging_full_drop_host_serves;
          Alcotest.test_case "promotions resume after drop window" `Quick
            test_paging_recovers_after_window;
          Alcotest.test_case "move carries both tiers" `Quick
            test_move_carries_both_tiers;
          Alcotest.test_case "crash mid-move: old XOR new tiers" `Quick
            test_crash_mid_move_old_xor_new ] );
      ( "control",
        [ Alcotest.test_case "replication failover+rejoin" `Quick
            test_replication_failover_and_rejoin;
          Alcotest.test_case "controller re-resolution" `Quick
            test_controller_reresolves_after_restart ] ) ]
