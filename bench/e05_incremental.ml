(* E5 — Incremental recompilation vs full recompilation (§3.3).

   "FlexNet needs to minimize the amount of resource reshuffling by
   identifying maximally adjacent reconfigurations that lead to
   non-intrusive redistribution."

   Setup: a 40-table program deployed across a whole-stack path. Patches
   of k new elements (k = 1..8) are applied (a) through the incremental
   compiler and (b) by full recompile of the new program. Reported:
   elements moved, wall-clock of the reconfiguration, and total serial
   op work (intrusiveness). *)

open Flexbpf.Builder

let base_tables = 40

let base_program () =
  program "base"
    (List.init base_tables (fun i ->
         Common.exact_table ~size:4_000 (Printf.sprintf "t%02d" i)))

let patch_of k =
  Flexbpf.Patch.v (Printf.sprintf "add-%d" k)
    (List.init k (fun i ->
         Flexbpf.Patch.Add_element
           ( Flexbpf.Patch.After
               (Flexbpf.Patch.Sel_name (Printf.sprintf "t%02d" (3 * i mod base_tables))),
             Common.exact_table ~size:4_000 (Printf.sprintf "patch%d" i) )))

let run_case k =
  (* incremental *)
  let path = Common.mk_path ~switches:3 () in
  let dep =
    match Runtime.Reconfig.deploy ~path (base_program ()) with
    | Ok d -> d
    | Error _ -> failwith "deploy failed"
  in
  let inc =
    match Runtime.Reconfig.apply_patch dep (patch_of k) with
    | Ok (r, _) -> r
    | Error e -> failwith (Fmt.str "%a" Compiler.Incremental.pp_error e)
  in
  (* full recompile on a fresh identical deployment *)
  let path2 = Common.mk_path ~switches:3 () in
  let dep2 =
    match Runtime.Reconfig.deploy ~path:path2 (base_program ()) with
    | Ok d -> d
    | Error _ -> failwith "deploy2 failed"
  in
  let full =
    match Runtime.Reconfig.full_recompile dep2 dep.Compiler.Incremental.dep_prog with
    | Ok r -> r
    | Error e -> failwith (Fmt.str "%a" Compiler.Incremental.pp_error e)
  in
  [ Report.i k;
    Report.i inc.Compiler.Incremental.moved_elements;
    Report.i full.Compiler.Incremental.moved_elements;
    Report.ms inc.Compiler.Incremental.duration;
    Report.f1 full.Compiler.Incremental.duration;
    Report.ms inc.Compiler.Incremental.total_work;
    Report.f1 full.Compiler.Incremental.total_work ]

let run () =
  let rows = List.map run_case [ 1; 2; 4; 8 ] in
  Report.print ~id:"E5"
    ~title:"incremental recompilation vs full recompile (40-table base program)"
    ~claim:
      "maximally adjacent incremental compilation touches only the changed \
       elements and completes in milliseconds; a full recompile moves every \
       element and costs a drain+reflash of tens of seconds"
    ~header:
      [ "patch-size"; "moved(inc)"; "moved(full)"; "time-inc(ms)";
        "time-full(s)"; "work-inc(ms)"; "work-full(s)" ]
    rows
