(* Property-based tests (qcheck) on the core data structures and
   invariants: event-queue ordering, state-encoding agreement and
   snapshot roundtrips, pattern matching, expression totality, patch
   reversibility, sketch soundness, placement conservation, and glob
   semantics. *)

open Flexbpf

let to_alcotest = QCheck_alcotest.to_alcotest

(* -- Event queue: pops come out time-sorted ------------------------------- *)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event queue pops sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Netsim.Event_queue.create () in
      List.iteri
        (fun i time -> Netsim.Event_queue.push q ~time ~seq:i ignore)
        times;
      let rec drain acc =
        if Netsim.Event_queue.is_empty q then List.rev acc
        else begin
          let time = Netsim.Event_queue.min_time q in
          ignore (Netsim.Event_queue.pop_exn q : unit -> unit);
          drain (time :: acc)
        end
      in
      let out = drain [] in
      out = List.sort compare times)

(* -- State encodings -------------------------------------------------------- *)

type map_op = Put of int * int | Incr of int * int | Del of int

let op_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun k v -> Put (k, v)) (int_bound 30) (int_bound 1000);
        map2 (fun k v -> Incr (k, v)) (int_bound 30) (int_bound 100);
        map (fun k -> Del k) (int_bound 30) ])

let op_print = function
  | Put (k, v) -> Printf.sprintf "put %d %d" k v
  | Incr (k, v) -> Printf.sprintf "incr %d %d" k v
  | Del k -> Printf.sprintf "del %d" k

let ops_arb = QCheck.make ~print:(fun l -> String.concat ";" (List.map op_print l))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let apply_ops st ops =
  List.iter
    (fun op ->
      match op with
      | Put (k, v) -> State.put st [ Int64.of_int k ] (Int64.of_int v)
      | Incr (k, v) -> ignore (State.incr st [ Int64.of_int k ] (Int64.of_int v))
      | Del k -> State.del st [ Int64.of_int k ])
    ops

(* With capacity above the key range, flow-state and stateful-table
   encodings are observationally identical. *)
let prop_encodings_agree =
  QCheck.Test.make ~name:"flow_state = stateful_table under capacity"
    ~count:300 ops_arb (fun ops ->
      let a = State.create ~name:"m" ~size:64 State.Flow_state in
      let b = State.create ~name:"m" ~size:64 State.Stateful_table in
      apply_ops a ops;
      apply_ops b ops;
      State.snapshot a = State.snapshot b)

(* Snapshot/restore is the identity for exact encodings. *)
let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot/restore identity" ~count:300 ops_arb
    (fun ops ->
      let st = State.create ~name:"m" ~size:64 State.Stateful_table in
      apply_ops st ops;
      let snap = State.snapshot st in
      let restored = State.restore ~name:"m" ~size:64 State.Flow_state snap in
      State.snapshot restored = snap)

(* Register aliasing can only merge entries, never invent keys. *)
let prop_registers_subset =
  QCheck.Test.make ~name:"register keys are a subset" ~count:300 ops_arb
    (fun ops ->
      let exact = State.create ~name:"m" ~size:64 State.Stateful_table in
      let regs = State.create ~name:"m" ~size:8 State.Registers in
      apply_ops exact ops;
      apply_ops regs ops;
      let exact_keys = List.map fst (State.entries exact) in
      List.for_all
        (fun (k, _) -> List.mem k exact_keys)
        (State.entries regs))

(* -- Pattern matching --------------------------------------------------------- *)

let prop_lpm_matches_self =
  QCheck.Test.make ~name:"lpm matches its own value" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 32))
    (fun (v, len) ->
      Interp.match_pattern (Int64.of_int v) (Ast.P_lpm (Int64.of_int v, len)))

let prop_lpm_prefix_semantics =
  QCheck.Test.make ~name:"lpm ignores low bits" ~count:500
    QCheck.(triple (int_bound 0xFFFFFF) (int_range 1 31) (int_bound 0xFFFFFF))
    (fun (v, len, other) ->
      let mask = Int64.shift_left (-1L) (32 - len) in
      let same_prefix =
        Int64.logand (Int64.of_int v) mask = Int64.logand (Int64.of_int other) mask
      in
      Interp.match_pattern (Int64.of_int other) (Ast.P_lpm (Int64.of_int v, len))
      = same_prefix)

let prop_ternary_mask =
  QCheck.Test.make ~name:"ternary masks out ignored bits" ~count:500
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (v, m, x) ->
      let p = Ast.P_ternary (Int64.of_int v, Int64.of_int m) in
      Interp.match_pattern (Int64.of_int x) p
      = (x land m = v land m))

let prop_range_inclusive =
  QCheck.Test.make ~name:"range is inclusive" ~count:500
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, x) ->
      let lo = min a b and hi = max a b in
      Interp.match_pattern (Int64.of_int x)
        (Ast.P_range (Int64.of_int lo, Int64.of_int hi))
      = (x >= lo && x <= hi))

(* -- Expression evaluation is total --------------------------------------------- *)

let binop_gen =
  QCheck.Gen.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band; Ast.Bor;
      Ast.Bxor; Ast.Shl; Ast.Shr; Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt;
      Ast.Ge; Ast.Land; Ast.Lor ]

let prop_binop_total =
  QCheck.Test.make ~name:"eval_binop never raises" ~count:1000
    (QCheck.make QCheck.Gen.(triple binop_gen (map Int64.of_int int) (map Int64.of_int int)))
    (fun (op, x, y) ->
      ignore (Interp.eval_binop op x y);
      true)

let prop_bool_ops_boolean =
  QCheck.Test.make ~name:"comparisons yield 0/1" ~count:500
    (QCheck.make QCheck.Gen.(pair (map Int64.of_int int) (map Int64.of_int int)))
    (fun (x, y) ->
      List.for_all
        (fun op ->
          let r = Interp.eval_binop op x y in
          r = 0L || r = 1L)
        [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Land; Ast.Lor ])

(* -- Glob matching ----------------------------------------------------------------- *)

let ident_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 12))

let prop_glob_literal_reflexive =
  QCheck.Test.make ~name:"glob: literal matches itself" ~count:300
    (QCheck.make ~print:Fun.id ident_gen)
    (fun s -> Patch.glob_matches s s)

let prop_glob_star_suffix =
  QCheck.Test.make ~name:"glob: p* matches any extension" ~count:300
    (QCheck.make
       ~print:(fun (a, b) -> a ^ "|" ^ b)
       QCheck.Gen.(pair ident_gen ident_gen))
    (fun (p, ext) -> Patch.glob_matches (p ^ "*") (p ^ ext))

let prop_glob_star_everything =
  QCheck.Test.make ~name:"glob: * matches everything" ~count:300
    (QCheck.make ~print:Fun.id ident_gen)
    (fun s -> Patch.glob_matches "*" s)

let prop_glob_question_length =
  QCheck.Test.make ~name:"glob: ?s match length" ~count:300
    (QCheck.make ~print:Fun.id ident_gen)
    (fun s ->
      Patch.glob_matches (String.make (String.length s) '?') s)

(* -- Patch reversibility --------------------------------------------------------------- *)

let small_block_gen =
  QCheck.Gen.(
    map
      (fun (name, v) ->
        Builder.block ("x_" ^ name)
          [ Builder.set_meta "v" (Builder.const v) ])
      (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)) (int_bound 100)))

let prop_patch_add_remove_identity =
  QCheck.Test.make ~name:"patch: add then remove = identity" ~count:200
    (QCheck.make small_block_gen) (fun el ->
      let base = Apps.L2l3.program () in
      let name = Ast.element_name el in
      QCheck.assume (Ast.find_element base name = None);
      match
        Patch.apply (Patch.v "add" [ Patch.Add_element (Patch.At_end, el) ]) base
      with
      | Error _ -> false
      | Ok (p1, _) ->
        (match
           Patch.apply (Patch.v "rm" [ Patch.Remove_element (Patch.Sel_name name) ]) p1
         with
         | Error _ -> false
         | Ok (p2, _) ->
           List.map Ast.element_name p2.Ast.pipeline
           = List.map Ast.element_name base.Ast.pipeline))

(* Patched programs always typecheck (apply rejects otherwise). *)
let prop_patch_preserves_typing =
  QCheck.Test.make ~name:"patch results typecheck" ~count:200
    (QCheck.make small_block_gen) (fun el ->
      let base = Apps.L2l3.program () in
      QCheck.assume (Ast.find_element base (Ast.element_name el) = None);
      match
        Patch.apply (Patch.v "add" [ Patch.Add_element (Patch.At_start, el) ]) base
      with
      | Error _ -> false
      | Ok (p, _) -> Typecheck.check_program p = Ok ())

(* -- Count-min sketch soundness ----------------------------------------------------------- *)

let prop_sketch_never_underestimates =
  QCheck.Test.make ~name:"sketch estimate >= true count" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 10 200) (pair (int_bound 20) (int_bound 5)))
    (fun flows ->
      let cfg = { Apps.Cm_sketch.depth = 2; width = 64; map_name = "cms" } in
      let prog = Apps.Cm_sketch.program ~cfg () in
      let env = Interp.create_env prog in
      let exact = Apps.Cm_sketch.Exact.create () in
      List.iter
        (fun (s, d) ->
          let src = Int64.of_int s and dst = Int64.of_int d in
          let pkt =
            Netsim.Packet.create
              [ Netsim.Packet.ethernet ~src ~dst ();
                Netsim.Packet.ipv4 ~src ~dst ();
                Netsim.Packet.tcp ~sport:1L ~dport:2L () ]
          in
          ignore (Interp.run env prog pkt);
          Apps.Cm_sketch.Exact.add exact ~src ~dst ~proto:6L)
        flows;
      let st = Interp.env_map env "cms" in
      List.for_all
        (fun (s, d) ->
          let src = Int64.of_int s and dst = Int64.of_int d in
          Apps.Cm_sketch.estimate cfg st ~src ~dst ~proto:6L
          >= Int64.of_int (Apps.Cm_sketch.Exact.count exact ~src ~dst ~proto:6L))
        flows)

(* -- Resource vectors ------------------------------------------------------------------------ *)

let res_gen =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) ->
        Targets.Resource.v ~sram_bytes:a ~tcam_bytes:b ~action_slots:c
          ~instructions:d ())
      (quad (int_bound 1000) (int_bound 1000) (int_bound 100) (int_bound 100)))

let prop_resource_add_sub =
  QCheck.Test.make ~name:"resource sub inverts add" ~count:300
    (QCheck.make QCheck.Gen.(pair res_gen res_gen))
    (fun (a, b) -> Targets.Resource.sub (Targets.Resource.add a b) b = a)

let prop_resource_fits_monotone =
  QCheck.Test.make ~name:"fits is monotone in capacity" ~count:300
    (QCheck.make QCheck.Gen.(triple res_gen res_gen res_gen))
    (fun (d, cap, extra) ->
      (not (Targets.Resource.fits d cap))
      || Targets.Resource.fits d (Targets.Resource.add cap extra))

(* -- Placement conservation -------------------------------------------------------------------- *)

let prop_placement_all_or_nothing =
  QCheck.Test.make ~name:"placement installs all elements or none" ~count:50
    QCheck.(int_range 1 40)
    (fun n ->
      let path =
        [ Targets.Device.create ~id:"h" Targets.Arch.host_ebpf;
          Targets.Device.create ~id:"s" Targets.Arch.drmt ]
      in
      let prog =
        Builder.program "p"
          (List.init n (fun i ->
               Builder.block (Printf.sprintf "b%d" i)
                 [ Builder.set_meta "x" (Builder.const i) ]))
      in
      let installed () =
        List.fold_left
          (fun acc d -> acc + List.length (Targets.Device.installed_names d))
          0 path
      in
      match Runtime.Reconfig.place ~path prog with
      | Ok _ -> installed () = n
      | Error _ -> installed () = 0)

(* -- Device invariants -------------------------------------------------------------------------- *)

let element_gen =
  QCheck.Gen.(
    map3
      (fun name size kind ->
        let open Builder in
        match kind with
        | 0 ->
          table ("t" ^ name)
            ~keys:[ exact (field "ipv4" "dst") ]
            ~actions:[ action "a" [ Ast.Nop ] ]
            ~default:("a", []) ~size:(64 + size) ()
        | 1 ->
          table ("l" ^ name)
            ~keys:[ lpm (field "ipv4" "dst") ]
            ~actions:[ action "a" [ Ast.Nop ] ]
            ~default:("a", []) ~size:(64 + size) ()
        | _ -> block ("b" ^ name) [ set_meta "x" (const size) ])
      (string_size ~gen:(char_range 'a' 'z') (int_range 3 8))
      (int_bound 20_000) (int_bound 2))

let prop_install_uninstall_identity =
  QCheck.Test.make ~name:"install;uninstall restores device" ~count:200
    (QCheck.make QCheck.Gen.(pair element_gen (oneofl Targets.Arch.all_kinds)))
    (fun (el, kind) ->
      let dev = Targets.Device.create (Targets.Arch.profile_of_kind kind) in
      let before = Targets.Device.utilization dev in
      let ctx = Builder.program "ctx" [ el ] in
      match Targets.Device.install dev ~ctx ~order:0 el with
      | Error _ -> true (* nothing changed: rejected *)
      | Ok _ ->
        Targets.Device.uninstall dev (Ast.element_name el)
        && Targets.Device.installed_names dev = []
        && Targets.Device.utilization dev = before)

let prop_defragment_preserves_contents =
  QCheck.Test.make ~name:"defragment preserves installed set and order"
    ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 10) element_gen))
    (fun els ->
      (* unique names only *)
      let els =
        List.sort_uniq (fun a b -> compare (Ast.element_name a) (Ast.element_name b)) els
      in
      let dev = Targets.Device.create Targets.Arch.rmt in
      let ctx = Builder.program "ctx" els in
      let installed =
        List.filteri
          (fun i el ->
            match Targets.Device.install dev ~ctx ~order:i el with
            | Ok _ -> true
            | Error _ -> false)
          els
        |> List.map Ast.element_name
      in
      (* remove a few to create holes *)
      List.iteri
        (fun i n -> if i mod 2 = 1 then ignore (Targets.Device.uninstall dev n))
        installed;
      let survivors = Targets.Device.installed_names dev in
      ignore (Targets.Device.defragment dev);
      Targets.Device.installed_names dev = survivors
      &&
      (* execution order (pipeline) intact *)
      List.map Ast.element_name (Targets.Device.program dev).Ast.pipeline
      = survivors)

(* -- ECMP ----------------------------------------------------------------------------------------- *)

let prop_ecmp_port_valid =
  QCheck.Test.make ~name:"ecmp picks a valid next hop" ~count:100
    QCheck.(pair (int_range 2 4) (int_bound 1000))
    (fun (spines, salt) ->
      let sim = Netsim.Sim.create () in
      let built =
        Netsim.Topology.leaf_spine ~sim ~spines ~leaves:2 ~hosts_per_leaf:1 ()
      in
      let topo = built.Netsim.Topology.topo in
      let h0 = List.nth built.Netsim.Topology.host_list 0 in
      let h1 = List.nth built.Netsim.Topology.host_list 1 in
      let leaf = List.nth built.Netsim.Topology.switch_list spines in
      let pkt =
        Netsim.Packet.create
          [ Netsim.Packet.ipv4
              ~src:(Int64.of_int h0.Netsim.Node.id)
              ~dst:(Int64.of_int h1.Netsim.Node.id) ();
            Netsim.Packet.tcp ~sport:(Int64.of_int salt) ~dport:80L () ]
      in
      let hops =
        Netsim.Topology.next_hops topo ~src:leaf.Netsim.Node.id
          ~dst:h1.Netsim.Node.id
      in
      match
        Netsim.Topology.ecmp_port topo ~src:leaf.Netsim.Node.id
          ~dst:h1.Netsim.Node.id pkt
      with
      | Some p -> List.mem p hops
      | None -> false)

(* -- Merge cross product ----------------------------------------------------------------------------- *)

let prop_merge_rule_count =
  QCheck.Test.make ~name:"merged rules = cross product" ~count:100
    QCheck.(pair (int_bound 8) (int_bound 8))
    (fun (na, nb) ->
      let mk n = List.init n (fun i ->
          Builder.rule ~matches:[ Builder.exact_i i ] ~action:("a", []) ())
      in
      List.length (Compiler.Merge.merge_rules (mk na) (mk nb)) = na * nb)

(* -- Surface syntax and the verifier -------------------------------------- *)

(* A richer program generator than test_syntax's block-only one: declared
   maps under every encoding, map get/put/incr/del statements, and a
   match/action table — exercising the printer's full declaration
   surface. Constants are non-negative (a printed "-5" reparses as
   Un (Neg, Const 5)). *)

let vmeta_gen =
  QCheck.Gen.(
    map (fun s -> "m" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 4)))

let vexpr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun v -> Ast.Const (Int64.of_int v)) (int_bound 1000);
              map (fun m -> Ast.Meta m) vmeta_gen;
              return (Ast.Field ("ipv4", "src"));
              return (Ast.Field ("tcp", "dport"));
              map (fun k -> Ast.Map_get ("m0", [ Ast.Const (Int64.of_int k) ]))
                (int_bound 63) ]
        else
          oneof
            [ map3
                (fun op a b -> Ast.Bin (op, a, b))
                (oneofl
                   [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band;
                     Ast.Bor; Ast.Shl; Ast.Shr; Ast.Eq; Ast.Lt; Ast.Ge;
                     Ast.Land; Ast.Lor ])
                (self (n / 2)) (self (n / 2));
              map2
                (fun alg es -> Ast.Hash (alg, es))
                (oneofl [ Ast.Crc16; Ast.Crc32 ])
                (list_size (int_range 1 3) (self (n / 3))) ]))

let vstmt_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Ast.Nop; return Ast.Drop;
              map2 (fun m e -> Ast.Set_meta (m, e)) vmeta_gen vexpr_gen;
              map (fun e -> Ast.Set_field ("ipv4", "ttl", e)) vexpr_gen;
              map2 (fun k v -> Ast.Map_put ("m0", [ Ast.Const (Int64.of_int k) ],
                                            Ast.Const (Int64.of_int v)))
                (int_bound 63) (int_bound 100);
              map3 (fun a b v -> Ast.Map_incr ("m1",
                                               [ Ast.Const (Int64.of_int a);
                                                 Ast.Const (Int64.of_int b) ], v))
                (int_bound 30) (int_bound 30) vexpr_gen;
              map (fun k -> Ast.Map_del ("m0", [ Ast.Const (Int64.of_int k) ]))
                (int_bound 63);
              map (fun e -> Ast.Forward e) vexpr_gen;
              map (fun d -> Ast.Punt d) vmeta_gen ]
        in
        if n <= 0 then leaf
        else
          oneof
            [ leaf;
              map3
                (fun c th el -> Ast.If (c, th, el))
                vexpr_gen
                (list_size (int_bound 3) (self (n / 3)))
                (list_size (int_bound 2) (self (n / 3)));
              map2 (fun k body -> Ast.Loop (1 + k, body)) (int_bound 7)
                (list_size (int_range 1 3) (self (n / 3))) ]))

let vtable_gen =
  QCheck.Gen.(
    map2
      (fun kinds size ->
        Builder.table "t0"
          ~keys:
            (List.map
               (fun kind -> (Ast.Field ("ipv4", "dst"), kind))
               kinds)
          ~actions:
            [ Builder.action "set_port" ~params:[ "p" ]
                [ Ast.Forward (Ast.Param "p") ];
              Builder.action "refuse" [ Ast.Drop ] ]
          ~default:("refuse", []) ~size ())
      (list_size (int_range 1 3)
         (oneofl [ Ast.Exact; Ast.Lpm; Ast.Ternary; Ast.Range ]))
      (int_range 1 512))

let vprogram_gen =
  QCheck.Gen.(
    map3
      (fun encodings blocks tbl ->
        let enc0, enc1 = encodings in
        Builder.program "pgen"
          ~maps:
            [ Builder.map_decl ~encoding:enc0 ~key_arity:1 ~size:64 "m0";
              Builder.map_decl ~encoding:enc1 ~key_arity:2 ~size:128 "m1" ]
          (List.mapi
             (fun i body -> Builder.block (Printf.sprintf "b%d" i) body)
             blocks
           @ [ tbl ]))
      (pair
         (oneofl
            [ Ast.Enc_auto; Ast.Enc_registers; Ast.Enc_flow_state;
              Ast.Enc_stateful_table ])
         (oneofl [ Ast.Enc_auto; Ast.Enc_registers ]))
      (list_size (int_range 1 3) (list_size (int_range 1 4) vstmt_gen))
      vtable_gen)

let vprogram_arb = QCheck.make ~print:Syntax.print vprogram_gen

let prop_full_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip (maps+tables)" ~count:200
    vprogram_arb
    (fun p ->
      match Syntax.parse_program_result (Syntax.print p) with
      | Error _ -> false
      | Ok p' -> p' = p)

let prop_verifier_deterministic =
  QCheck.Test.make ~name:"verifier is deterministic" ~count:100 vprogram_arb
    (fun p ->
      let d1 = Verifier.check p in
      let d2 = Verifier.check p in
      (* ... and insensitive to physical identity: a structurally equal
         program obtained by reprinting yields the same findings *)
      let d3 =
        match Syntax.parse_program_result (Syntax.print p) with
        | Ok p' -> Verifier.check p'
        | Error _ -> []
      in
      d1 = d2 && d1 = d3)

let prop_verifier_total =
  QCheck.Test.make ~name:"verifier total on ill-typed input" ~count:100
    vprogram_arb
    (fun p ->
      (* break the program: reference an undeclared map *)
      let broken =
        { p with
          Ast.pipeline =
            Builder.block "bad"
              [ Ast.Map_incr ("ghost", [ Ast.Const 0L ], Ast.Const 1L) ]
            :: p.Ast.pipeline }
      in
      match Verifier.check broken with
      | ds -> List.exists (fun d -> d.Diagnostics.code = "FBV000") ds
      | exception _ -> false)

let () =
  Alcotest.run "properties"
    [ ( "event_queue", [ to_alcotest prop_event_queue_sorted ] );
      ( "state",
        [ to_alcotest prop_encodings_agree;
          to_alcotest prop_snapshot_roundtrip;
          to_alcotest prop_registers_subset ] );
      ( "patterns",
        [ to_alcotest prop_lpm_matches_self;
          to_alcotest prop_lpm_prefix_semantics;
          to_alcotest prop_ternary_mask;
          to_alcotest prop_range_inclusive ] );
      ( "eval",
        [ to_alcotest prop_binop_total; to_alcotest prop_bool_ops_boolean ] );
      ( "glob",
        [ to_alcotest prop_glob_literal_reflexive;
          to_alcotest prop_glob_star_suffix;
          to_alcotest prop_glob_star_everything;
          to_alcotest prop_glob_question_length ] );
      ( "patch",
        [ to_alcotest prop_patch_add_remove_identity;
          to_alcotest prop_patch_preserves_typing ] );
      ( "sketch", [ to_alcotest prop_sketch_never_underestimates ] );
      ( "resources",
        [ to_alcotest prop_resource_add_sub;
          to_alcotest prop_resource_fits_monotone ] );
      ( "placement", [ to_alcotest prop_placement_all_or_nothing ] );
      ( "device",
        [ to_alcotest prop_install_uninstall_identity;
          to_alcotest prop_defragment_preserves_contents ] );
      ( "ecmp", [ to_alcotest prop_ecmp_port_valid ] );
      ( "merge", [ to_alcotest prop_merge_rule_count ] );
      ( "syntax",
        [ to_alcotest prop_full_roundtrip ] );
      ( "verifier",
        [ to_alcotest prop_verifier_deterministic;
          to_alcotest prop_verifier_total ] ) ]
