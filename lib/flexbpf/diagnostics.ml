(** Unified diagnostics for the FlexBPF verifier (§2, §3.1).

    Every verifier pass reports findings through this one type so that
    tools — the [flexnet lint] CLI, the admission pipeline in
    [Control.Tenants], and the certification gate in [Analysis] — can
    treat "what the verifier thinks of a program" uniformly: stable
    codes for machine consumption, severities for gating, and
    [element/action/stmt-index] paths for pointing at the offending
    construct. *)

type severity = Info | Warning | Error

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string s =
  match String.lowercase_ascii s with
  | "info" -> Some Info
  | "warning" | "warn" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let pp_severity ppf s = Fmt.string ppf (severity_to_string s)

type t = {
  code : string; (* stable, e.g. "FBV001" *)
  pass : string; (* pass name, e.g. "uninit-read" *)
  severity : severity;
  path : string; (* location, e.g. "guard/stmt.2" or "map/cms" *)
  message : string;
}

let v ~code ~pass ~severity ~path fmt =
  Printf.ksprintf (fun message -> { code; pass; severity; path; message }) fmt

(* Total order: severity (most severe first), then code, path, message —
   deterministic regardless of pass traversal order, which is what the
   verifier-determinism property and snapshot tests rely on. *)
let compare a b =
  match compare_severity b.severity a.severity with
  | 0 -> Stdlib.compare (a.code, a.path, a.message) (b.code, b.path, b.message)
  | c -> c

let normalize ds = List.sort_uniq compare ds

let pp ppf d =
  Fmt.pf ppf "%s %s [%s] %s: %s"
    (severity_to_string d.severity)
    d.code d.pass d.path d.message

(* One finding per line, tab-separated: code, severity, pass, path,
   message. Greppable and stable — the machine-readable lint output. *)
let to_tsv d =
  String.concat "\t"
    [ d.code; severity_to_string d.severity; d.pass; d.path; d.message ]

(* SARIF 2.1.0 export: one run, one result per finding, with the pass
   carried as the rule's short description and the verifier path as a
   logical location. CI uploads these for code-scanning annotation. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let sarif_level = function
  | Info -> "note"
  | Warning -> "warning"
  | Error -> "error"

let to_sarif ?(uri = "<input>") ds =
  let rules =
    List.sort_uniq Stdlib.compare (List.map (fun d -> (d.code, d.pass)) ds)
  in
  let rule (code, pass) =
    Printf.sprintf
      "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
      (json_escape code) (json_escape pass)
  in
  let result d =
    Printf.sprintf
      "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\
       \"locations\":[{\"physicalLocation\":{\"artifactLocation\":\
       {\"uri\":\"%s\"}},\"logicalLocations\":[{\"fullyQualifiedName\":\
       \"%s\"}]}]}"
      (json_escape d.code) (sarif_level d.severity) (json_escape d.message)
      (json_escape uri) (json_escape d.path)
  in
  Printf.sprintf
    "{\"version\":\"2.1.0\",\"$schema\":\
     \"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":\
     {\"driver\":{\"name\":\"flexnet-lint\",\"informationUri\":\
     \"https://github.com/flexnet/flexnet\",\"rules\":[%s]}},\"results\":\
     [%s]}]}"
    (String.concat "," (List.map rule rules))
    (String.concat "," (List.map result ds))

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc x -> if compare_severity x.severity acc > 0 then x.severity else acc)
         d.severity ds)

let at_least sev ds =
  List.filter (fun d -> compare_severity d.severity sev >= 0) ds

let errors ds = at_least Error ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let pp_summary ppf ds =
  Fmt.pf ppf "%d error%s, %d warning%s, %d info"
    (count Error ds)
    (if count Error ds = 1 then "" else "s")
    (count Warning ds)
    (if count Warning ds = 1 then "" else "s")
    (count Info ds)
