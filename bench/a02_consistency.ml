(* A2 — Ablation: consistency disciplines for a function move (§3.4).

   "Functional updates to a logical datapath need application-level,
   consistent packet processing, which goes beyond controlling the
   order of rule updates."

   A counting function moves upstream from switch s2 to switch s0 while
   traffic flows. Exactly-once processing means every packet is counted
   exactly once. We compare:
   - unsynchronized: each device applies its change when it arrives
     (200ms apart) — packets in the gap are counted twice;
   - remove-then-add ordering: the opposite gap — packets counted zero
     times;
   - two-version simultaneous flip: both devices switch at one instant;
     only packets in flight across the path at the flip can deviate.

   This reproduces the paper's argument that rule-update ordering alone
   cannot give application-level consistency. *)

open Flexbpf.Builder

let counter = block "move_me" [ set_meta "applied" (meta "applied" +: const 1) ]
let prog = program "p" [ counter ]

let run_discipline discipline =
  let sim, _topo, h0, h1, devs, _wireds, _ = Common.wired_linear ~switches:3 () in
  let s0 = List.nth devs 0 and s2 = List.nth devs 2 in
  ignore (Targets.Device.install s2 ~ctx:prog ~order:0 counter);
  let tallies = Array.make 4 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ pkt ->
      let n = Int64.to_int (Netsim.Packet.meta_default pkt "applied" 0L) in
      tallies.(min n 3) <- tallies.(min n 3) + 1);
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:5_000. ~start:0. ~stop:1.0 ~send:(fun () ->
      Netsim.Node.send h0 ~port:0
        (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id
           ~born:(Netsim.Sim.now sim)));
  let add () = ignore (Targets.Device.install s0 ~ctx:prog ~order:0 counter) in
  let remove () = ignore (Targets.Device.uninstall s2 "move_me") in
  (match discipline with
   | `Unsynchronized ->
     (* add upstream now, removal arrives 200ms later *)
     Netsim.Sim.at sim 0.4 (fun () -> add ());
     Netsim.Sim.at sim 0.6 (fun () -> remove ())
   | `Remove_then_add ->
     Netsim.Sim.at sim 0.4 (fun () -> remove ());
     Netsim.Sim.at sim 0.6 (fun () -> add ())
   | `Simultaneous ->
     Netsim.Sim.at sim 0.4 (fun () ->
         ignore
           (Control.Consistent.update ~sim
              ~discipline:Control.Consistent.Simultaneous
              ~path_order:[ s0; s2 ]
              (fun () -> add (); remove ()))));
  ignore (Netsim.Sim.run sim);
  tallies

let label = function
  | `Unsynchronized -> "unsynchronized (add, +200ms remove)"
  | `Remove_then_add -> "ordered remove-then-add"
  | `Simultaneous -> "two-version simultaneous flip"

let run () =
  let rows =
    List.map
      (fun d ->
        let t = run_discipline d in
        let total = Array.fold_left ( + ) 0 t in
        let inconsistent = total - t.(1) in
        [ label d; Report.i t.(0); Report.i t.(1); Report.i (t.(2) + t.(3));
          Report.pct (float_of_int inconsistent /. float_of_int (max 1 total)) ])
      [ `Unsynchronized; `Remove_then_add; `Simultaneous ]
  in
  Report.print ~id:"A2"
    ~title:"ablation: consistency disciplines while moving a function"
    ~claim:
      "ordering rule updates yields at-least-once or at-most-once processing \
       (double- or zero-counted packets); the two-version simultaneous flip \
       achieves (near-)exactly-once — application-level consistency needs \
       more than update ordering"
    ~header:[ "discipline"; "applied x0"; "applied x1"; "applied x2+"; "inconsistent" ]
    rows
