(** Reconfiguration plans: the interface between the compiler and the
    runtime. A plan is an ordered list of device operations; the
    runtime executes it hitlessly (or via drain, for the compile-time
    baseline). Per-device operations serialize; different devices work
    in parallel, so a plan's wall-clock is the max per-device serial
    time. Plans carry device {e ids}, not handles: the compiler emits
    them from pure searches over resource snapshots, and only
    [Runtime.Reconfig] resolves ids to live devices. *)

type op =
  | Install of {
      device : string;
      element : Flexbpf.Ast.element;
      ctx : Flexbpf.Ast.program;
      order : int;
    }
  | Remove of { device : string; element_name : string }
  | Move of {
      from_device : string;
      to_device : string;
      element : Flexbpf.Ast.element;
      ctx : Flexbpf.Ast.program;
      order : int;
    }
  | Add_parser of { device : string; rule : Flexbpf.Ast.parser_rule }
  | Remove_parser of { device : string; rule_name : string }
  | Migrate_state of { from_device : string; to_device : string; map_name : string }
  | Defragment of { device : string; moves : int }
      (* re-pack staged elements; [moves] live relocations *)

type t = {
  plan_name : string;
  ops : op list;
  residency : Targets.Resource.residency list;
      (* tables this plan installs oversubscribed: planned device-tier
         size and predicted miss rate *)
}

val v : ?residency:Targets.Resource.residency list -> string -> op list -> t

(** The device an op executes on (destination for moves/migrations). *)
val op_device : op -> string

val op_name : op -> string

(** Modelled duration of one op given its device's timing profile. *)
val op_time : Targets.Arch.reconfig_times -> op -> float

(** Resolve a device id to its reconfiguration timing profile from a
    device list (unknown ids get the dRMT profile) — the single
    op-serialization cost model shared by compiler, runtime, and
    benches. *)
val times_of_devices :
  Targets.Device.t list -> string -> Targets.Arch.reconfig_times

(** Serial op time per device id in the plan. *)
val per_device_times :
  times_of:(string -> Targets.Arch.reconfig_times) -> t ->
  (string * float) list

(** Wall-clock duration: per-device serialization, cross-device
    parallelism. [times_of] resolves a device id to its profile. *)
val duration : times_of:(string -> Targets.Arch.reconfig_times) -> t -> float

(** Total serial work — the "intrusiveness" metric of the incremental
    compilation experiments. *)
val total_work : times_of:(string -> Targets.Arch.reconfig_times) -> t -> float

(** Cost annotation attached by the pure planner: predicted
    intrusiveness, wall-clock, and per-device resource deltas
    (occupied after − before over the predicted snapshots). *)
type cost = {
  c_total_work : float;
  c_duration : float;
  c_deltas : (string * Targets.Resource.t) list;
}

val cost_of :
  times_of:(string -> Targets.Arch.reconfig_times) ->
  deltas:(string * Targets.Resource.t) list -> t -> cost

val pp_cost : Format.formatter -> cost -> unit

(** Cross-check of the static WCET certificate
    ([Flexbpf.Dataflow.Cost]) against the planner's heuristic
    ([Flexbpf.Analysis.max_cycles]); [ck_divergent] when the heuristic
    charges at least twice the certified worst case. *)
type cost_check = {
  ck_program : string;
  ck_certified : int; (* dead branches pruned *)
  ck_heuristic : int; (* = Analysis.max_cycles *)
  ck_ratio : float; (* heuristic / certified; 1.0 when certified = 0 *)
  ck_divergent : bool; (* ck_ratio >= 2.0 *)
}

val cost_check : Flexbpf.Ast.program -> cost_check
val pp_cost_check : Format.formatter -> cost_check -> unit

val size : t -> int
val pp : Format.formatter -> t -> unit
