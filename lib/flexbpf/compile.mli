(** Closure-compiled fast path for FlexBPF.

    Compiles an installed program once into OCaml closures so the
    per-packet work is only the work the modelled hardware would do:
    expressions and statements become thunks (AST dispatch paid at
    compile time), action parameters are array slots instead of assoc
    lookups, per-table hit/miss counter keys are pre-interned, parser
    acceptance is memoised per header-stack shape, and rule matching is
    an index — a hash table keyed on the evaluated key tuple when every
    installed rule is exact-match, otherwise a candidate array
    pre-sorted by (priority, specificity) scanned to first match.

    Rule indexes track [Interp.env.rules_gen]: they are rebuilt when
    [Interp.install_rule] / [remove_rules] change a rule set (one
    integer compare per table execution otherwise), so install/remove —
    including across [Runtime.Reconfig] program swaps — keeps compiled
    matching consistent with the environment. Map handles are cached per
    access site and revalidated against [Interp.env.maps_gen], so state
    snapshot restores ([Targets.Device.load_map_snapshot]) need no
    recompilation; counter cells, header-field and metadata cells, and
    the parser verdict are likewise cached and revalidated by cheap
    identity checks. Qualifying loops run with their induction variable
    staged in a cell and loop-invariant field reads hoisted to slots
    filled at loop entry; the [hash(...) mod width] sketch idiom fuses
    into a single unboxed closure.

    [Interp] remains the executable specification of FlexBPF; compiled
    execution is observationally equivalent (verdict, map state,
    counters, runtime errors), which [test/test_compile.ml] checks with
    a qcheck differential harness. *)

type t

(** Stage [prog] against [env]. Compilation is total: programs the
    interpreter can run (including ones that fault at run time) compile;
    faults surface at execution, matching the interpreter. *)
val compile : Interp.env -> Ast.program -> t

val program : t -> Ast.program
val env : t -> Interp.env

(** Run the compiled program on one packet: parser gate, then the
    pipeline in order. Semantics identical to [Interp.run env prog]. *)
val run : t -> Netsim.Packet.t -> Interp.result

(** {2 Tiered match tables}

    A table whose [Interp.env.tier_caps] entry bounds its device tier
    executes through a two-tier index: a bounded key-tuple → memoized
    winner cache ([State.Tier]) in front of the authoritative
    per-generation index. A device-tier fault is served by the
    authoritative lookup (same result, slower) and demand-paged in
    through [Interp.env.page_in]. Because bindings memoize full
    first-match {e results} (including "no match" = default action),
    residency never affects semantics — only latency — and any
    generation bump flushes the tier. *)

(** Cumulative device-tier telemetry of one tiered table. *)
type tier_stat = {
  ts_table : string;
  ts_capacity : int; (* device-tier bound, rules *)
  ts_resident : int; (* currently cached bindings *)
  ts_hits : int; (* lookups served by the device tier *)
  ts_misses : int; (* faults escalated to the host tier *)
  ts_promotions : int;
  ts_evictions : int; (* LRU victims demoted under pressure *)
  ts_demotions : int; (* evictions + invalidation/flush drops *)
}

(** Telemetry of every tiered table in pipeline order (empty when no
    table is tiered). Refreshes stale indexes first. *)
val tier_stats : t -> tier_stat list

(** Resident hot-key set of [table]'s device tier — the warm-start
    payload carried by migration. Empty when the table is not tiered. *)
val tier_resident_keys : t -> string -> State.key list

(** Pre-fault [keys] into [table]'s device tier (migration warm
    start) without touching hit/miss telemetry. No-op on untired
    tables; keys of the wrong arity are skipped. *)
val warm_table : t -> string -> State.key list -> unit
