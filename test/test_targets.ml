(* Tests for the device targets: resource accounting, per-architecture
   admission (the fungibility taxonomy), execution, reconfiguration
   primitives, and two-version consistency. *)

open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_packet ?(src = 1L) ?(dst = 2L) () =
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src ~dst ();
      Netsim.Packet.ipv4 ~src ~dst ();
      Netsim.Packet.tcp ~sport:10L ~dport:20L () ]

(* a table sized to consume most of an RMT stage's SRAM *)
let big_exact_table ?(size = 80_000) name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "a" [ set_meta "x" (const 1) ] ]
    ~default:("a", []) ~size ()

let small_table name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "fwd" ~params:[ "p" ] [ forward (param "p") ] ]
    ~default:("nop", []) ~size:16 ()

let lpm_table name =
  table name
    ~keys:[ lpm (field "ipv4" "dst") ]
    ~actions:[ action "a" [ Flexbpf.Ast.Nop ] ]
    ~default:("a", []) ~size:256 ()

let prog_of elements = program "ctx" elements

(* -- Resource vectors -------------------------------------------------- *)

let test_resource_arith () =
  let a = Targets.Resource.v ~sram_bytes:10 ~tcam_bytes:5 () in
  let b = Targets.Resource.v ~sram_bytes:3 ~action_slots:2 () in
  let s = Targets.Resource.add a b in
  check_int "add sram" 13 s.Targets.Resource.sram_bytes;
  check_int "add actions" 2 s.Targets.Resource.action_slots;
  let d = Targets.Resource.sub s b in
  check "sub restores" true (d = a);
  check "fits" true (Targets.Resource.fits b s);
  check "not fits" false (Targets.Resource.fits s b)

let test_resource_utilization () =
  let cap = Targets.Resource.v ~sram_bytes:100 ~tcam_bytes:50 () in
  let used = Targets.Resource.v ~sram_bytes:20 ~tcam_bytes:40 () in
  Alcotest.(check (float 1e-9)) "max dimension" 0.8
    (Targets.Resource.utilization ~used ~capacity:cap)

(* -- Architecture profiles ---------------------------------------------- *)

let test_profiles_sane () =
  List.iter
    (fun kind ->
      let p = Targets.Arch.profile_of_kind kind in
      check
        (Targets.Arch.kind_to_string kind ^ " has throughput")
        true (p.Targets.Arch.max_pps > 0.);
      check
        (Targets.Arch.kind_to_string kind ^ " has parser capacity")
        true (p.Targets.Arch.parser_capacity > 0))
    Targets.Arch.all_kinds

let test_switches_faster_than_hosts () =
  let lat kind =
    Targets.Arch.latency_ns (Targets.Arch.profile_of_kind kind) ~cycles:50
  in
  check "switch < nic < host latency ordering" true
    (lat Targets.Arch.Drmt < lat Targets.Arch.Smartnic
     && lat Targets.Arch.Smartnic < lat Targets.Arch.Host_ebpf)

let test_runtime_reconfig_under_a_second () =
  (* §2: "program changes complete within a second" on runtime-
     programmable switches *)
  List.iter
    (fun kind ->
      let r = (Targets.Arch.profile_of_kind kind).Targets.Arch.reconfig in
      check
        (Targets.Arch.kind_to_string kind ^ " table ops sub-second")
        true
        (r.Targets.Arch.t_add_table < 1. && r.Targets.Arch.t_parser_change < 1.);
      check
        (Targets.Arch.kind_to_string kind ^ " reflash much slower")
        true
        (r.Targets.Arch.t_full_reflash > 10. *. r.Targets.Arch.t_add_table))
    [ Targets.Arch.Drmt; Targets.Arch.Tiles; Targets.Arch.Elastic_pipe ]

(* -- Installation and admission ------------------------------------------ *)

let test_install_and_exec () =
  let dev = Targets.Device.create ~id:"d" Targets.Arch.drmt in
  let ctx = prog_of [ small_table "t" ] in
  (match Targets.Device.install dev ~ctx ~order:0 (small_table "t") with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "install: %s" (Targets.Device.reject_to_string r));
  Flexbpf.Interp.install_rule (Targets.Device.env dev) "t"
    (rule ~matches:[ exact_i 2 ] ~action:("fwd", [ 4 ]) ());
  let r = Targets.Device.exec dev ~now_us:0L (mk_packet ~dst:2L ()) in
  Alcotest.(check (option int)) "rule forwards" (Some 4)
    r.Flexbpf.Interp.verdict.Flexbpf.Interp.egress;
  check_int "processed counted" 1 (Targets.Device.processed dev)

let test_double_install_rejected () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let ctx = prog_of [ small_table "t" ] in
  ignore (Targets.Device.install dev ~ctx ~order:0 (small_table "t"));
  match Targets.Device.install dev ~ctx ~order:1 (small_table "t") with
  | Error (Targets.Device.Unsupported _) -> ()
  | _ -> Alcotest.fail "expected duplicate rejection"

let test_uninstall_frees_resources () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let ctx = prog_of [ big_exact_table "big" ] in
  ignore (Targets.Device.install dev ~ctx ~order:0 (big_exact_table "big"));
  let used = Targets.Device.utilization dev in
  check "resources consumed" true (used > 0.);
  check "uninstall works" true (Targets.Device.uninstall dev "big");
  Alcotest.(check (float 1e-9)) "all freed" 0. (Targets.Device.utilization dev)

let test_rmt_stage_fragmentation () =
  (* RMT: a table must fit within ONE stage; total free space spread
     over stages does not help — the defining fungibility limit. Since
     tiered virtualization, overflow is no longer a hard rejection: a
     table that cannot be fully resident in any stage is admitted with
     a clamped device tier, so fragmentation shows up as residency
     rather than No_capacity. *)
  let dev = Targets.Device.create Targets.Arch.rmt in
  let stages = Targets.Arch.rmt.Targets.Arch.stages in
  (* two 25KB-entry exact tables (~825KB) per 1280KB stage: the second
     does not fully fit, so at most one fully-resident table per stage *)
  let ctx =
    prog_of (List.init (2 * stages) (fun i -> big_exact_table (Printf.sprintf "t%d" i)))
  in
  let full = ref 0 and oversubscribed = ref 0 in
  List.iteri
    (fun i el ->
      match Targets.Device.install dev ~ctx ~order:i el with
      | Error _ -> ()
      | Ok _ ->
        (match
           Targets.Resource.find_placed (Targets.Device.snapshot dev)
             (Flexbpf.Ast.element_name el)
         with
         | Some { Targets.Resource.pl_residency = None; _ } -> incr full
         | Some { Targets.Resource.pl_residency = Some _; _ } ->
           incr oversubscribed
         | None -> ()))
    ctx.Flexbpf.Ast.pipeline;
  (* each stage fully fits one 25k-entry table (825KB of 1280KB); the
     second one per stage only gets the stage's remainder as its
     device tier *)
  check_int "one fully-resident big table per stage" stages !full;
  check "overflow admitted oversubscribed, not rejected" true
    (!oversubscribed > 0)

let test_rmt_order_constraint () =
  (* element at a later pipeline position may not occupy an earlier
     stage than its predecessor *)
  let dev = Targets.Device.create Targets.Arch.rmt in
  let ctx = prog_of [ big_exact_table "a"; big_exact_table "b"; small_table "c" ] in
  let slot_of el order =
    match Targets.Device.install dev ~ctx ~order el with
    | Ok (Targets.Device.In_stage s) -> s
    | Ok _ -> Alcotest.fail "expected stage slot"
    | Error r -> Alcotest.failf "install: %s" (Targets.Device.reject_to_string r)
  in
  let sa = slot_of (big_exact_table "a") 0 in
  let sb = slot_of (big_exact_table "b") 1 in
  let sc = slot_of (small_table "c") 2 in
  check "monotonic stages" true (sa <= sb && sb <= sc);
  check "big tables in different stages" true (sb > sa)

let test_drmt_pool_fungible () =
  (* dRMT: the same workload that fragments RMT fits a memory pool of
     equal total size without stage limits *)
  let dev = Targets.Device.create Targets.Arch.drmt in
  let n = 18 in
  let ctx =
    prog_of (List.init n (fun i -> big_exact_table (Printf.sprintf "t%d" i)))
  in
  let installed = ref 0 in
  List.iteri
    (fun i el ->
      match Targets.Device.install dev ~ctx ~order:i el with
      | Ok Targets.Device.In_pool -> incr installed
      | Ok _ -> Alcotest.fail "expected pool slot"
      | Error _ -> ())
    ctx.Flexbpf.Ast.pipeline;
  check "dRMT fits more than RMT's 12" true (!installed > 12)

let test_tiles_typed_capacity () =
  let dev = Targets.Device.create Targets.Arch.tiles in
  (* exact tables land in hash tiles, lpm in tcam tiles *)
  let ctx = prog_of [ small_table "e"; lpm_table "l" ] in
  (match Targets.Device.install dev ~ctx ~order:0 (small_table "e") with
   | Ok (Targets.Device.In_tiles (Targets.Arch.Hash_tile, _)) -> ()
   | _ -> Alcotest.fail "exact table should use hash tiles");
  (match Targets.Device.install dev ~ctx ~order:1 (lpm_table "l") with
   | Ok (Targets.Device.In_tiles (Targets.Arch.Tcam_tile, _)) -> ()
   | _ -> Alcotest.fail "lpm table should use tcam tiles");
  (* exhaust tcam tiles: 8 tiles of 768KB; each lpm_table of 50k entries
     consumes multiple tiles *)
  let big_lpm i =
    table (Printf.sprintf "biglpm%d" i)
      ~keys:[ lpm (field "ipv4" "dst") ]
      ~actions:[ action "a" [ Flexbpf.Ast.Nop ] ]
      ~default:("a", []) ~size:100_000 ()
  in
  let ctx2 = prog_of (List.init 8 big_lpm) in
  let accepted = ref 0 in
  List.iteri
    (fun i el ->
      match Targets.Device.install dev ~ctx:ctx2 ~order:(10 + i) el with
      | Ok _ -> incr accepted
      | Error _ -> ())
    ctx2.Flexbpf.Ast.pipeline;
  check "tcam tiles exhaust before hash tiles" true (!accepted < 8);
  (* hash tiles still have room *)
  (match Targets.Device.install dev ~ctx ~order:50 (small_table "e2") with
   | Ok (Targets.Device.In_tiles (Targets.Arch.Hash_tile, _)) -> ()
   | _ -> Alcotest.fail "hash tiles should still admit")

let test_elastic_pem_for_blocks () =
  let dev = Targets.Device.create Targets.Arch.elastic_pipe in
  let blk = block "b" [ set_meta "x" (const 1) ] in
  let ctx = prog_of [ blk ] in
  (match Targets.Device.install dev ~ctx ~order:0 blk with
   | Ok Targets.Device.In_pem -> ()
   | _ -> Alcotest.fail "blocks should use PEM slots");
  (* PEM slots are finite *)
  let accepted = ref 0 in
  for i = 1 to 20 do
    let b = block (Printf.sprintf "b%d" i) [ set_meta "x" (const 1) ] in
    let ctx = prog_of [ b ] in
    match Targets.Device.install dev ~ctx ~order:i b with
    | Ok _ -> incr accepted
    | Error _ -> ()
  done;
  check_int "PEM slots bounded" (Targets.Arch.elastic_pipe.Targets.Arch.pem_slots - 1)
    !accepted

let test_block_cycle_limits () =
  (* a heavy eBPF-style block is rejected by switches, admitted by hosts *)
  let heavy = block "heavy" [ loop 64 [ set_meta "x" (const 1) ] ] in
  let ctx = prog_of [ heavy ] in
  let try_on kind =
    let dev = Targets.Device.create (Targets.Arch.profile_of_kind kind) in
    Targets.Device.install dev ~ctx ~order:0 heavy
  in
  (match try_on Targets.Arch.Drmt with
   | Error (Targets.Device.Unsupported _) -> ()
   | _ -> Alcotest.fail "switch should reject heavy block");
  (match try_on Targets.Arch.Host_ebpf with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "host should admit: %s" (Targets.Device.reject_to_string r))

let test_map_charged_once () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let shared_map = map_decl ~key_arity:1 ~size:1024 "shared" in
  let b1 = block "b1" [ map_incr "shared" [ const 0 ] ] in
  let b2 = block "b2" [ map_incr "shared" [ const 1 ] ] in
  let ctx = program "ctx" ~maps:[ shared_map ] [ b1; b2 ] in
  let d1, maps1 = Targets.Device.element_demand dev ~ctx b1 in
  ignore (Targets.Device.install dev ~ctx ~order:0 b1);
  let d2, maps2 = Targets.Device.element_demand dev ~ctx b2 in
  check "first element pays for the map" true
    (d1.Targets.Resource.sram_bytes > d2.Targets.Resource.sram_bytes);
  check_int "map charged to first" 1 (List.length maps1);
  check_int "not charged twice" 0 (List.length maps2)

let test_oversubscribed_table_admitted () =
  (* an exact table whose rule memory exceeds a whole RMT stage used to
     be a hard No_capacity rejection; admission now treats the overflow
     as policy — clamp the device tier to what fits, record the
     residency, and let the host tier hold the rest *)
  let dev = Targets.Device.create Targets.Arch.rmt in
  let tbl = big_exact_table ~size:150_000 "huge" in
  let ctx = prog_of [ tbl ] in
  let demand, _ = Targets.Device.element_demand dev ~ctx tbl in
  check "logical demand exceeds a stage" true
    (demand.Targets.Resource.sram_bytes
     > Targets.Arch.rmt.Targets.Arch.per_stage.Targets.Resource.sram_bytes);
  (match Targets.Device.install dev ~ctx ~order:0 tbl with
   | Error r ->
     Alcotest.failf "oversubscribed install rejected: %s"
       (Targets.Device.reject_to_string r)
   | Ok _ -> ());
  (* the snapshot carries the residency, the env carries the tier cap *)
  (match Targets.Resource.find_placed (Targets.Device.snapshot dev) "huge" with
   | Some { Targets.Resource.pl_residency = Some r; _ } ->
     check_int "logical rules" 150_000 r.Targets.Resource.res_logical_rules;
     check "device tier strictly smaller" true
       (r.Targets.Resource.res_device_rules > 0
        && r.Targets.Resource.res_device_rules < 150_000);
     check "predicted miss rate in (0,1)" true
       (r.Targets.Resource.res_miss_rate > 0.
        && r.Targets.Resource.res_miss_rate < 1.)
   | Some { Targets.Resource.pl_residency = None; _ } ->
     Alcotest.fail "placed entry carries no residency"
   | None -> Alcotest.fail "table not in snapshot");
  (match Flexbpf.Interp.tier_capacity (Targets.Device.env dev) "huge" with
   | Some cap ->
     check "tier cap mirrors residency" true (cap > 0 && cap < 150_000)
   | None -> Alcotest.fail "device tier capacity not set");
  (* the datapath still serves the whole logical rule set: a lookup
     faults into the bounded device tier rather than missing *)
  Flexbpf.Interp.install_rule (Targets.Device.env dev) "huge"
    (rule ~matches:[ exact_i 2 ] ~action:("a", []) ());
  ignore (Targets.Device.exec dev ~now_us:0L (mk_packet ~dst:2L ()));
  (match Targets.Device.tier_stats dev with
   | [ s ] ->
     check "lookup faulted and promoted" true
       (s.Flexbpf.Compile.ts_misses >= 1
        && s.Flexbpf.Compile.ts_promotions >= 1)
   | _ -> Alcotest.fail "expected one tiered table");
  (* uninstall releases both the clamped charge and the tier cap *)
  check "uninstall works" true (Targets.Device.uninstall dev "huge");
  Alcotest.(check (float 1e-9)) "all freed" 0. (Targets.Device.utilization dev);
  check "tier cap cleared" true
    (Flexbpf.Interp.tier_capacity (Targets.Device.env dev) "huge" = None)

(* -- Defragmentation -------------------------------------------------------- *)

let test_defragment_compacts () =
  let dev = Targets.Device.create Targets.Arch.rmt in
  let names = List.init 6 (fun i -> Printf.sprintf "t%d" i) in
  let ctx = prog_of (List.map big_exact_table names) in
  List.iteri
    (fun i n -> ignore (Targets.Device.install dev ~ctx ~order:i (big_exact_table n)))
    names;
  (* remove every second element, leaving holes *)
  List.iteri (fun i n -> if i mod 2 = 0 then ignore (Targets.Device.uninstall dev n)) names;
  let moved = Targets.Device.defragment dev in
  check "defragment moved survivors" true (moved > 0);
  (* after compaction a new big table must fit in an early stage *)
  (match Targets.Device.install dev ~ctx:(prog_of [ big_exact_table "fresh" ]) ~order:100
           (big_exact_table "fresh")
   with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "post-defrag install: %s" (Targets.Device.reject_to_string r))

(* -- Parser reconfiguration --------------------------------------------------- *)

let test_parser_runtime_ops () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  (* restricted parser: only eth/ipv4 accepted, so gre is parseable only
     after the runtime parser change *)
  let ctx =
    program "ctx"
      ~parser:[ parser_rule "parse_ipv4" [ "ethernet"; "ipv4" ] ]
      [ small_table "t" ]
  in
  ignore (Targets.Device.install dev ~ctx ~order:0 (small_table "t"));
  (* vlan packets parse via standard rules; add a new protocol *)
  let gre_pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
        { Netsim.Packet.hname = "gre"; fields = [ ("proto", ref 1L) ] } ]
  in
  let r1 = Targets.Device.exec dev ~now_us:0L gre_pkt in
  check "unknown protocol rejected" false r1.Flexbpf.Interp.parse_ok;
  (match
     Targets.Device.add_parser_rule dev (parser_rule "parse_gre" [ "ethernet"; "gre" ])
   with
   | Ok () -> ()
   | Error r -> Alcotest.failf "add rule: %s" (Targets.Device.reject_to_string r));
  (* gre header must be declared for the rule to make sense; the std
     headers don't include it, but parser acceptance is name-based *)
  let r2 = Targets.Device.exec dev ~now_us:0L gre_pkt in
  check "new protocol accepted after runtime add" true r2.Flexbpf.Interp.parse_ok;
  check "remove works" true (Targets.Device.remove_parser_rule dev "parse_gre");
  let r3 = Targets.Device.exec dev ~now_us:0L gre_pkt in
  check "rejected again after removal" false r3.Flexbpf.Interp.parse_ok

let test_parser_capacity () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let cap = Targets.Arch.drmt.Targets.Arch.parser_capacity in
  let results =
    List.init (cap + 5) (fun i ->
        Targets.Device.add_parser_rule dev
          (parser_rule (Printf.sprintf "p%d" i) [ "ethernet" ]))
  in
  let ok = List.length (List.filter Result.is_ok results) in
  check_int "bounded by parser capacity" cap ok

(* -- Two-version consistency ---------------------------------------------------- *)

let test_freeze_thaw_visibility () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let drop_all = block "drop_all" [ drop ] in
  let ctx = prog_of [ small_table "t" ] in
  ignore (Targets.Device.install dev ~ctx ~order:0 (small_table "t"));
  let v_old = Targets.Device.version dev in
  Targets.Device.freeze dev;
  (* mutate under freeze: install a dropper *)
  ignore (Targets.Device.install dev ~ctx:(prog_of [ drop_all ]) ~order:1 drop_all);
  let r = Targets.Device.exec dev ~now_us:0L (mk_packet ()) in
  check "old program still visible" false r.Flexbpf.Interp.verdict.Flexbpf.Interp.dropped;
  ignore v_old;
  Targets.Device.thaw dev;
  let r2 = Targets.Device.exec dev ~now_us:0L (mk_packet ()) in
  check "new program after thaw" true r2.Flexbpf.Interp.verdict.Flexbpf.Interp.dropped

let test_freeze_defers_cleanup () =
  (* removing an element under freeze must keep its maps alive so the
     old program can still execute *)
  let dev = Targets.Device.create Targets.Arch.drmt in
  let m = map_decl ~key_arity:1 ~size:16 "cnt" in
  let b = block "counter" [ map_incr "cnt" [ const 0 ] ] in
  let ctx = program "ctx" ~maps:[ m ] [ b ] in
  ignore (Targets.Device.install dev ~ctx ~order:0 b);
  Targets.Device.freeze dev;
  ignore (Targets.Device.uninstall dev "counter");
  (* old program still runs and can update its map *)
  let r = Targets.Device.exec dev ~now_us:0L (mk_packet ()) in
  check "no runtime error under freeze" true (r.Flexbpf.Interp.runtime_error = None);
  check "map still present during window" true
    (Targets.Device.map_state dev "cnt" <> None);
  Targets.Device.thaw dev;
  check "map released at thaw" true (Targets.Device.map_state dev "cnt" = None)

let test_epoch_stamping () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let ctx = prog_of [ small_table "t" ] in
  ignore (Targets.Device.install dev ~ctx ~order:0 (small_table "t"));
  let p1 = mk_packet () in
  ignore (Targets.Device.exec dev ~now_us:0L p1);
  let v1 = p1.Netsim.Packet.epoch in
  ignore (Targets.Device.install dev ~ctx:(prog_of [ small_table "t2" ]) ~order:1
            (small_table "t2"));
  let p2 = mk_packet () in
  ignore (Targets.Device.exec dev ~now_us:0L p2);
  check "version advanced after reconfig" true (p2.Netsim.Packet.epoch > v1)

(* -- State transfer --------------------------------------------------------------- *)

let test_load_snapshot_converts_encoding () =
  let src = Targets.Device.create Targets.Arch.host_ebpf in (* flow_state *)
  let dst = Targets.Device.create Targets.Arch.drmt in (* stateful_table *)
  let m = map_decl ~key_arity:1 ~size:128 "st" in
  let b = block "b" [ map_incr "st" [ field "ipv4" "src" ] ] in
  let ctx = program "ctx" ~maps:[ m ] [ b ] in
  ignore (Targets.Device.install src ~ctx ~order:0 b);
  ignore (Targets.Device.install dst ~ctx ~order:0 b);
  for i = 1 to 10 do
    ignore (Targets.Device.exec src ~now_us:0L (mk_packet ~src:(Int64.of_int i) ()))
  done;
  let snap =
    Flexbpf.State.snapshot (Option.get (Targets.Device.map_state src "st"))
  in
  check "snapshot loads across encodings" true
    (Targets.Device.load_map_snapshot dst "st" snap);
  let dst_map = Option.get (Targets.Device.map_state dst "st") in
  check "encodings differ" true
    (Flexbpf.State.encoding (Option.get (Targets.Device.map_state src "st"))
     <> Flexbpf.State.encoding dst_map);
  check "entries preserved" true (Flexbpf.State.snapshot dst_map = snap)

(* -- Energy ------------------------------------------------------------------------ *)

let test_power_model () =
  let dev = Targets.Device.create Targets.Arch.drmt in
  let on = Targets.Device.energy_joules dev ~seconds:10. ~pps:1e6 in
  Targets.Device.set_power dev false;
  let off = Targets.Device.energy_joules dev ~seconds:10. ~pps:0. in
  check "powered-off draws almost nothing" true (off < on /. 10.)

let () =
  Alcotest.run "targets"
    [ ( "resource",
        [ Alcotest.test_case "arithmetic" `Quick test_resource_arith;
          Alcotest.test_case "utilization" `Quick test_resource_utilization ] );
      ( "arch",
        [ Alcotest.test_case "profiles sane" `Quick test_profiles_sane;
          Alcotest.test_case "latency ordering" `Quick test_switches_faster_than_hosts;
          Alcotest.test_case "sub-second reconfig" `Quick
            test_runtime_reconfig_under_a_second ] );
      ( "admission",
        [ Alcotest.test_case "install+exec" `Quick test_install_and_exec;
          Alcotest.test_case "double install" `Quick test_double_install_rejected;
          Alcotest.test_case "uninstall frees" `Quick test_uninstall_frees_resources;
          Alcotest.test_case "rmt fragmentation" `Quick test_rmt_stage_fragmentation;
          Alcotest.test_case "rmt order constraint" `Quick test_rmt_order_constraint;
          Alcotest.test_case "drmt pool" `Quick test_drmt_pool_fungible;
          Alcotest.test_case "tiles typed" `Quick test_tiles_typed_capacity;
          Alcotest.test_case "elastic PEM" `Quick test_elastic_pem_for_blocks;
          Alcotest.test_case "block cycle limits" `Quick test_block_cycle_limits;
          Alcotest.test_case "map charged once" `Quick test_map_charged_once;
          Alcotest.test_case "oversubscribed table admitted" `Quick
            test_oversubscribed_table_admitted ] );
      ( "reconfiguration",
        [ Alcotest.test_case "defragment" `Quick test_defragment_compacts;
          Alcotest.test_case "parser runtime ops" `Quick test_parser_runtime_ops;
          Alcotest.test_case "parser capacity" `Quick test_parser_capacity;
          Alcotest.test_case "freeze/thaw" `Quick test_freeze_thaw_visibility;
          Alcotest.test_case "deferred cleanup" `Quick test_freeze_defers_cleanup;
          Alcotest.test_case "epoch stamping" `Quick test_epoch_stamping ] );
      ( "state+energy",
        [ Alcotest.test_case "snapshot conversion" `Quick
            test_load_snapshot_converts_encoding;
          Alcotest.test_case "power model" `Quick test_power_model ] ) ]
