(* Bechamel microbenchmarks for the hot paths underneath the
   experiments: per-packet interpretation (reference interpreter vs the
   closure-compiled fast path), sketch updates, map encodings, rule
   matching, event-queue churn, and placement.

   The interpreter benchmarks come in reference/compiled pairs; after
   the raw ns/op table a speedup section reports compiled-path gains.
   [run ~quota ~out ()] supports a short CI quota and a JSON dump of
   the estimates (see BENCH_micro.json for the checked-in baseline). *)

open Bechamel
open Toolkit

let mk_packet () =
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
      Netsim.Packet.ipv4 ~src:1L ~dst:2L ();
      Netsim.Packet.tcp ~sport:100L ~dport:200L () ]

(* Reference/compiled pairs share a program shape but get separate envs
   so map mutations in one engine cannot warm or skew the other. *)

let l2l3_env () =
  let prog = Apps.L2l3.program () in
  let env = Flexbpf.Interp.create_env prog in
  Flexbpf.Interp.install_rule env "ipv4_lpm"
    (Apps.L2l3.route_rule ~host_id:2 ~port:1);
  (prog, env)

let test_interp_table =
  let prog, env = l2l3_env () in
  let pkt = mk_packet () in
  Test.make ~name:"interp: l2l3 pipeline per packet" (Staged.stage (fun () ->
      ignore (Flexbpf.Interp.run env prog pkt)))

let test_compiled_table =
  let prog, env = l2l3_env () in
  let compiled = Flexbpf.Compile.compile env prog in
  let pkt = mk_packet () in
  Test.make ~name:"compiled: l2l3 pipeline per packet" (Staged.stage (fun () ->
      ignore (Flexbpf.Compile.run compiled pkt)))

let cms_cfg = { Apps.Cm_sketch.depth = 3; width = 1024; map_name = "cms" }

let test_sketch_update =
  let prog = Apps.Cm_sketch.program ~cfg:cms_cfg () in
  let env = Flexbpf.Interp.create_env prog in
  let pkt = mk_packet () in
  Test.make ~name:"interp: count-min update (3 rows)" (Staged.stage (fun () ->
      ignore (Flexbpf.Interp.run env prog pkt)))

let test_compiled_sketch_update =
  let prog = Apps.Cm_sketch.program ~cfg:cms_cfg () in
  let env = Flexbpf.Interp.create_env prog in
  let compiled = Flexbpf.Compile.compile env prog in
  let pkt = mk_packet () in
  Test.make ~name:"compiled: count-min update (3 rows)" (Staged.stage (fun () ->
      ignore (Flexbpf.Compile.run compiled pkt)))

(* (reference, compiled) benchmark names reported as speedups. *)
let speedup_pairs =
  [ ("interp: l2l3 pipeline per packet", "compiled: l2l3 pipeline per packet");
    ("interp: count-min update (3 rows)", "compiled: count-min update (3 rows)") ]

let state_bench enc name =
  let st = Flexbpf.State.create ~name:"m" ~size:4096 enc in
  let i = ref 0L in
  Test.make ~name (Staged.stage (fun () ->
      i := Int64.rem (Int64.add !i 7L) 4096L;
      ignore (Flexbpf.State.incr st [ !i ] 1L)))

let test_state_registers = state_bench Flexbpf.State.Registers "state: registers incr"
let test_state_flow = state_bench Flexbpf.State.Flow_state "state: flow_state incr"
let test_state_stateful =
  state_bench Flexbpf.State.Stateful_table "state: stateful_table incr"

let test_event_queue =
  Test.make ~name:"event queue: push+pop x64" (Staged.stage (fun () ->
      let q = Netsim.Event_queue.create () in
      for i = 0 to 63 do
        Netsim.Event_queue.push q
          { Netsim.Event_queue.time = float_of_int (i * 7919 mod 64); seq = i;
            thunk = ignore }
      done;
      while Netsim.Event_queue.pop q <> None do () done))

let test_placement =
  Test.make ~name:"compiler: place 20-table program" (Staged.stage (fun () ->
      let path = Common.mk_path ~switches:3 () in
      let prog =
        Flexbpf.Builder.program "p"
          (List.init 20 (fun i -> Common.exact_table ~size:512 (Printf.sprintf "t%d" i)))
      in
      match Compiler.Placement.place ~path prog with
      | Ok _ -> ()
      | Error _ -> ()))

let test_patch_apply =
  let base = Apps.L2l3.program () in
  let patch =
    Flexbpf.Patch.v "p"
      [ Flexbpf.Patch.Replace_element
          (Flexbpf.Patch.Sel_name "ttl_guard", Apps.L2l3.ttl_guard) ]
  in
  Test.make ~name:"patch: apply+typecheck" (Staged.stage (fun () ->
      ignore (Flexbpf.Patch.apply patch base)))

let benchmarks =
  [ test_interp_table; test_compiled_table; test_sketch_update;
    test_compiled_sketch_update; test_state_registers; test_state_flow;
    test_state_stateful; test_event_queue; test_placement; test_patch_apply ]

let strip_group name =
  String.concat "" (String.split_on_char '/' name |> List.tl)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path estimates speedups =
  let oc = open_out path in
  output_string oc "{\n  \"ns_per_op\": {\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) est
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  output_string oc "  },\n  \"speedup\": {\n";
  List.iteri
    (fun i (name, x) ->
      Printf.fprintf oc "    \"%s\": %.2f%s\n" (json_escape name) x
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  output_string oc "  }\n}\n";
  close_out oc

(** [quota] is seconds of measurement per benchmark (default 0.5; CI
    uses a shorter one). [out] dumps estimates and speedups as JSON. *)
let run ?(quota = 0.5) ?out () =
  print_endline "\n== microbenchmarks (bechamel) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            let name = strip_group name in
            estimates := (name, est) :: !estimates;
            Printf.printf "%-42s %12.1f ns/op\n" name est
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        results)
    benchmarks;
  let estimates = List.rev !estimates in
  let speedups =
    List.filter_map
      (fun (ref_name, fast_name) ->
        match (List.assoc_opt ref_name estimates,
               List.assoc_opt fast_name estimates) with
        | Some r, Some f when f > 0. -> Some (ref_name, r /. f)
        | _ -> None)
      speedup_pairs
  in
  if speedups <> [] then begin
    print_endline "\n-- compiled fast path vs reference interpreter --";
    List.iter
      (fun (name, x) -> Printf.printf "%-42s %10.1fx\n" name x)
      speedups
  end;
  (match out with
   | Some path ->
     write_json path estimates speedups;
     Printf.printf "\nwrote %s\n" path
   | None -> ());
  flush stdout
