(* Tests for the runtime layer: device wiring, hitless vs drain
   reconfiguration over simulated time, state migration protocols, and
   data-plane RPC. *)

open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let small_table name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "a" [ Flexbpf.Ast.Nop ] ]
    ~default:("a", []) ~size:64 ()

(* h0 - s0 - s1 - s2 - h1 with dRMT devices on switches *)
let wired_net () =
  let sim = Netsim.Sim.create () in
  let built = Netsim.Topology.linear ~sim ~switches:3 () in
  let topo = built.Netsim.Topology.topo in
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  let devs =
    List.map
      (fun sw ->
        Targets.Device.create ~id:sw.Netsim.Node.name Targets.Arch.drmt)
      built.Netsim.Topology.switch_list
  in
  let wireds =
    List.map2
      (fun sw d -> Runtime.Wiring.attach topo sw d)
      built.Netsim.Topology.switch_list devs
  in
  let received = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ _ -> incr received);
  (sim, topo, h0, h1, devs, wireds, received)

let send_one topo h0 h1 =
  ignore topo;
  let pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:(Int64.of_int h0.Netsim.Node.id)
          ~dst:(Int64.of_int h1.Netsim.Node.id) ();
        Netsim.Packet.ipv4 ~src:(Int64.of_int h0.Netsim.Node.id)
          ~dst:(Int64.of_int h1.Netsim.Node.id) ();
        Netsim.Packet.tcp ~sport:10L ~dport:20L () ]
  in
  Netsim.Node.send h0 ~port:0 pkt;
  pkt

(* -- Wiring -------------------------------------------------------------- *)

let test_empty_devices_forward () =
  let sim, topo, h0, h1, _devs, _wireds, received = wired_net () in
  ignore (send_one topo h0 h1);
  ignore (Netsim.Sim.run sim);
  check_int "empty devices act as plain forwarders" 1 !received

let test_program_executes_on_path () =
  let sim, topo, h0, h1, devs, _wireds, received = wired_net () in
  let counter = block "cnt" [ map_incr "hits" [ field "ipv4" "dst" ] ] in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:32 "hits" ] [ counter ]
  in
  let s1 = List.nth devs 1 in
  (match Targets.Device.install s1 ~ctx:prog ~order:0 counter with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "install: %s" (Targets.Device.reject_to_string r));
  ignore (send_one topo h0 h1);
  ignore (send_one topo h0 h1);
  ignore (Netsim.Sim.run sim);
  check_int "still delivered" 2 !received;
  check_i64 "program counted transit packets" 2L
    (Flexbpf.State.get
       (Option.get (Targets.Device.map_state s1 "hits"))
       [ Int64.of_int h1.Netsim.Node.id ])

let test_program_drop_applies () =
  let sim, topo, h0, h1, devs, _wireds, received = wired_net () in
  let dropper = block "deny" [ drop ] in
  let prog = program "p" [ dropper ] in
  ignore (Targets.Device.install (List.nth devs 0) ~ctx:prog ~order:0 dropper);
  ignore (send_one topo h0 h1);
  ignore (Netsim.Sim.run sim);
  check_int "dropped at first switch" 0 !received

let test_punt_reaches_subscriber () =
  let sim, topo, h0, h1, devs, wireds, _received = wired_net () in
  let punter = block "alarm" [ punt "test_digest" ] in
  let prog = program "p" [ punter ] in
  ignore (Targets.Device.install (List.nth devs 0) ~ctx:prog ~order:0 punter);
  let digests = ref 0 in
  (List.nth wireds 0).Runtime.Wiring.on_punt <- (fun _ _ -> incr digests);
  ignore (send_one topo h0 h1);
  ignore (Netsim.Sim.run sim);
  check_int "digest delivered" 1 !digests;
  check_int "punt log kept" 1
    (List.length (Runtime.Wiring.punted (List.nth wireds 0)))

(* -- Reconfiguration over time --------------------------------------------- *)

(* CBR traffic through the wired path while the middle switch is
   reconfigured; returns (received, sent). *)
let run_reconfig_experiment mode =
  let sim, topo, h0, h1, devs, wireds, received = wired_net () in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:1000. ~start:0. ~stop:2.0 ~send:(fun () ->
      incr sent;
      ignore (send_one topo h0 h1));
  (* install a program on s1 at t=1s via the chosen mode *)
  let s1 = List.nth devs 1 in
  let counter = block "cnt" [ map_incr "hits" [ const 0 ] ] in
  let prog = program "p" ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ] [ counter ] in
  let plan =
    Compiler.Plan.v "add-counter"
      [ Compiler.Plan.Install { device = "s1"; element = counter; ctx = prog; order = 0 } ]
  in
  let done_at = ref 0. in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute ~sim ~mode ~wireds ~plan
        ~on_done:(fun o -> done_at := o.Runtime.Reconfig.finished_at)
        (fun () -> ignore (Targets.Device.install s1 ~ctx:prog ~order:0 counter)));
  ignore (Netsim.Sim.run sim);
  (!received, !sent, !done_at, wireds)

let test_hitless_no_loss () =
  let received, sent, done_at, _ = run_reconfig_experiment Runtime.Reconfig.Hitless in
  check_int "zero loss during hitless reconfig" sent received;
  check "completed within a second" true (done_at -. 1.0 < 1.0);
  check "completed after start" true (done_at > 1.0)

let test_drain_loses_traffic () =
  let received, sent, done_at, wireds =
    run_reconfig_experiment Runtime.Reconfig.Drain
  in
  check "drain mode drops traffic" true (received < sent);
  (* drain 10s + reflash 40s on dRMT: the done time is far out *)
  check "drain takes tens of seconds" true (done_at -. 1.0 > 10.);
  let drops =
    List.fold_left (fun acc w -> acc + Runtime.Wiring.drain_drops w) 0 wireds
  in
  check "drops attributed to reconfig" true (drops > 0);
  check_int "loss accounted exactly" sent (received + drops)

let test_hitless_two_version_consistency () =
  (* every packet must observe either the pre- or post-reconfig device
     version, never a partial state: we verify via epoch stamps *)
  let sim, topo, h0, h1, devs, wireds, _received = wired_net () in
  let s1 = List.nth devs 1 in
  (* preinstall so the device runs a program (and stamps epochs) *)
  let t0 = small_table "t0" in
  let prog0 = program "p0" [ t0 ] in
  ignore (Targets.Device.install s1 ~ctx:prog0 ~order:0 t0);
  let v_old = Targets.Device.version s1 in
  let epochs = ref [] in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ pkt ->
      epochs := pkt.Netsim.Packet.epoch :: !epochs);
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:2000. ~start:0. ~stop:0.5 ~send:(fun () ->
      ignore (send_one topo h0 h1));
  let t1 = small_table "t1" in
  let prog1 = program "p1" [ t0; t1 ] in
  let plan =
    Compiler.Plan.v "add"
      [ Compiler.Plan.Install { device = "s1"; element = t1; ctx = prog1; order = 1 } ]
  in
  Netsim.Sim.at sim 0.2 (fun () ->
      Runtime.Reconfig.execute ~sim ~mode:Runtime.Reconfig.Hitless ~wireds ~plan
        (fun () -> ignore (Targets.Device.install s1 ~ctx:prog1 ~order:1 t1)));
  ignore (Netsim.Sim.run sim);
  let v_new = Targets.Device.version s1 in
  check "version advanced" true (v_new > v_old);
  let distinct = List.sort_uniq compare !epochs in
  check "packets saw exactly old xor new program" true
    (List.for_all (fun e -> e = v_old || e = v_new) distinct);
  check "both versions observed across the transition" true
    (List.length distinct = 2)

(* -- Migration --------------------------------------------------------------- *)

let sketch_cfg = { Apps.Cm_sketch.depth = 2; width = 64; map_name = "cms" }

let mk_sketch_device id =
  let dev = Targets.Device.create ~id Targets.Arch.drmt in
  let prog = Apps.Cm_sketch.program ~cfg:sketch_cfg () in
  let upd = Apps.Cm_sketch.update_block sketch_cfg in
  (match Targets.Device.install dev ~ctx:prog ~order:0 upd with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "install: %s" (Targets.Device.reject_to_string r));
  dev

let random_packet rng =
  let src = Int64.of_int (Random.State.int rng 50) in
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src ~dst:1L ();
      Netsim.Packet.ipv4 ~src ~dst:1L ();
      Netsim.Packet.tcp ~sport:9L ~dport:7L () ]

(* Drive [pps] packets/s of updates through the migration handle while
   migrating at t=0.5 with the given protocol; returns (sum at final
   active device, total packets sent). *)
let migration_run protocol =
  let sim = Netsim.Sim.create () in
  let src = mk_sketch_device "src" in
  let dst = mk_sketch_device "dst" in
  let handle = Runtime.Migration.create src in
  let rng = Random.State.make [| 3 |] in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:10_000. ~start:0. ~stop:1.0 ~send:(fun () ->
      incr sent;
      ignore
        (Runtime.Migration.exec handle
           ~now_us:(Int64.of_float (Netsim.Sim.now sim *. 1e6))
           (random_packet rng)));
  Netsim.Sim.at sim 0.5 (fun () ->
      match protocol with
      | `Freeze ->
        Runtime.Migration.freeze_copy ~entries_per_second:1_000. ~sim handle
          ~dst ~map_names:[ "cms" ] ()
      | `Swing ->
        Runtime.Migration.swing ~sim handle ~dst ~map_names:[ "cms" ] ());
  ignore (Netsim.Sim.run sim);
  let final = Runtime.Migration.active handle in
  Alcotest.(check string) "cutover happened" "dst" (Targets.Device.id final);
  (Int64.to_int (Runtime.Migration.map_sum final "cms"), !sent)

let test_freeze_copy_loses_updates () =
  let total, sent = migration_run `Freeze in
  (* each packet adds [depth] increments *)
  let expected = sent * sketch_cfg.Apps.Cm_sketch.depth in
  check "freeze-copy lost in-flight updates" true (total < expected);
  (* copy window at 1k entries/s with ~100 entries ≈ 100ms of 10kpps
     traffic lost: a substantial gap *)
  check "loss is substantial" true (expected - total > 1000)

let test_swing_is_lossless () =
  let total, sent = migration_run `Swing in
  let expected = sent * sketch_cfg.Apps.Cm_sketch.depth in
  check_int "swing migration loses nothing" expected total

let test_migration_preserves_estimates () =
  (* sketch estimates for a flow survive migration *)
  let sim = Netsim.Sim.create () in
  let src = mk_sketch_device "src" in
  let dst = mk_sketch_device "dst" in
  let handle = Runtime.Migration.create src in
  let pkt () =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:5L ~dst:1L ();
        Netsim.Packet.ipv4 ~src:5L ~dst:1L ();
        Netsim.Packet.tcp ~sport:9L ~dport:7L () ]
  in
  for _ = 1 to 25 do
    ignore (Runtime.Migration.exec handle ~now_us:0L (pkt ()))
  done;
  Runtime.Migration.swing ~sim handle ~dst ~map_names:[ "cms" ] ();
  ignore (Netsim.Sim.run sim);
  let est =
    Apps.Cm_sketch.estimate_on_device sketch_cfg dst ~src:5L ~dst:1L ~proto:6L
  in
  check_i64 "estimate preserved across devices" 25L est

(* -- dRPC ---------------------------------------------------------------------- *)

let test_drpc_registry () =
  let sim = Netsim.Sim.create () in
  let reg = Runtime.Drpc.create sim in
  Runtime.Drpc.register reg "infra/replicate" (fun _ -> 1L);
  Runtime.Drpc.register reg "infra/read" (fun _ -> 2L);
  Runtime.Drpc.register reg ~owner:"acme" "acme/custom" (fun _ -> 3L);
  Alcotest.(check (list string)) "glob discovery"
    [ "infra/read"; "infra/replicate" ]
    (Runtime.Drpc.discover reg "infra/*");
  Runtime.Drpc.unregister reg "infra/read";
  Alcotest.(check (list string)) "unregister" [ "infra/replicate" ]
    (Runtime.Drpc.discover reg "infra/*")

let test_drpc_vs_controlplane_latency () =
  let sim = Netsim.Sim.create () in
  let reg = Runtime.Drpc.create ~controlplane_rtt:0.002 sim in
  Runtime.Drpc.register reg ~dataplane_latency:5e-6 "op" (fun _ -> 1L);
  let n = 100 in
  (* n sequential invocations each way *)
  let dp_done = ref 0. and cp_done = ref 0. in
  let rec dp_chain i =
    if i = 0 then dp_done := Netsim.Sim.now sim
    else
      Runtime.Drpc.invoke_dataplane reg "op" [] ~k:(fun _ -> dp_chain (i - 1))
  in
  dp_chain n;
  ignore (Netsim.Sim.run sim);
  let sim2 = Netsim.Sim.create () in
  let reg2 = Runtime.Drpc.create ~controlplane_rtt:0.002 sim2 in
  Runtime.Drpc.register reg2 ~dataplane_latency:5e-6 "op" (fun _ -> 1L);
  let rec cp_chain i =
    if i = 0 then cp_done := Netsim.Sim.now sim2
    else
      Runtime.Drpc.invoke_controlplane reg2 "op" [] ~k:(fun _ -> cp_chain (i - 1))
  in
  cp_chain n;
  ignore (Netsim.Sim.run sim2);
  check "data plane orders of magnitude faster" true (!dp_done *. 50. < !cp_done);
  check_int "dp counted" n (Runtime.Drpc.dp_invocations reg);
  check_int "cp counted" n (Runtime.Drpc.cp_invocations reg2)

let test_drpc_inline_from_program () =
  let sim = Netsim.Sim.create () in
  let reg = Runtime.Drpc.create sim in
  Runtime.Drpc.register reg "double" (fun args ->
      match args with [ x ] -> Int64.mul 2L x | _ -> 0L);
  let dev = Targets.Device.create Targets.Arch.smartnic in
  Runtime.Drpc.bind_device reg dev;
  let caller = block "caller" [ call "double" [ const 21 ] ] in
  let prog = program "p" [ caller ] in
  ignore (Targets.Device.install dev ~ctx:prog ~order:0 caller);
  let pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
        Netsim.Packet.ipv4 ~src:1L ~dst:2L () ]
  in
  ignore (Targets.Device.exec dev ~now_us:0L pkt);
  check_i64 "service result delivered to program" 42L
    (Netsim.Packet.meta_default pkt "drpc_double" 0L);
  check "unknown service is total" true
    (Runtime.Drpc.invoke_inline reg "nope" [] = 0L)

let test_drpc_standard_services () =
  let sim = Netsim.Sim.create () in
  let reg = Runtime.Drpc.create sim in
  let mk id =
    let dev = Targets.Device.create ~id Targets.Arch.drmt in
    let b = block "b" [ map_incr "repl" [ field "ipv4" "src" ] ] in
    let prog =
      program "p" ~maps:[ map_decl ~key_arity:1 ~size:64 "repl" ] [ b ]
    in
    ignore (Targets.Device.install dev ~ctx:prog ~order:0 b);
    dev
  in
  let d0 = mk "d0" and d1 = mk "d1" in
  Runtime.Drpc.register_standard reg ~fleet:[ d0; d1 ] ~map_name:"repl";
  (* accumulate on d0 *)
  (match Targets.Device.map_state d0 "repl" with
   | Some st ->
     Flexbpf.State.put st [ 1L ] 30L;
     Flexbpf.State.put st [ 2L ] 12L
   | None -> Alcotest.fail "map missing");
  check_i64 "read_counter sums d0" 42L
    (Runtime.Drpc.invoke_inline reg "read_counter" [ 0L ]);
  check_i64 "read_counter of empty d1" 0L
    (Runtime.Drpc.invoke_inline reg "read_counter" [ 1L ]);
  (* replicate d0 -> d1 in the data plane *)
  check_i64 "replicate succeeds" 1L
    (Runtime.Drpc.invoke_inline reg "replicate" [ 0L; 1L ]);
  check_i64 "d1 now mirrors d0" 42L
    (Runtime.Drpc.invoke_inline reg "read_counter" [ 1L ]);
  (* out-of-range device indices are total *)
  check_i64 "bad index is 0" 0L
    (Runtime.Drpc.invoke_inline reg "read_counter" [ 9L ]);
  check_i64 "bad replicate is 0" 0L
    (Runtime.Drpc.invoke_inline reg "replicate" [ 7L; 8L ])

let () =
  Alcotest.run "runtime"
    [ ( "wiring",
        [ Alcotest.test_case "empty devices forward" `Quick test_empty_devices_forward;
          Alcotest.test_case "program on path" `Quick test_program_executes_on_path;
          Alcotest.test_case "program drop" `Quick test_program_drop_applies;
          Alcotest.test_case "punt subscription" `Quick test_punt_reaches_subscriber ] );
      ( "reconfig",
        [ Alcotest.test_case "hitless zero loss" `Quick test_hitless_no_loss;
          Alcotest.test_case "drain loses traffic" `Quick test_drain_loses_traffic;
          Alcotest.test_case "two-version consistency" `Quick
            test_hitless_two_version_consistency ] );
      ( "migration",
        [ Alcotest.test_case "freeze-copy loses" `Quick test_freeze_copy_loses_updates;
          Alcotest.test_case "swing lossless" `Quick test_swing_is_lossless;
          Alcotest.test_case "estimates preserved" `Quick
            test_migration_preserves_estimates ] );
      ( "drpc",
        [ Alcotest.test_case "registry" `Quick test_drpc_registry;
          Alcotest.test_case "dp vs cp latency" `Quick test_drpc_vs_controlplane_latency;
          Alcotest.test_case "inline call" `Quick test_drpc_inline_from_program;
          Alcotest.test_case "standard services" `Quick
            test_drpc_standard_services ] ) ]
