(** The fungible compilation loop (§3.3) — as pure planning.

    "If compiling a FlexNet datapath to its resource slice fails, the
    compiler recursively invokes optimization primitives ... to perform
    resource reallocation and garbage collection, before attempting
    another round of compilation."

    The two optimization primitives modeled here:
    - garbage collection: remove elements the controller has marked
      inactive (idle tenant apps, retired defenses);
    - defragmentation: re-pack staged architectures first-fit so
      stage-local free space coalesces (the "all pipeline resources
      become fungible" point for RMT).

    The whole loop runs over resource snapshots; the returned plan
    carries the GC removes and defragment ops ahead of the installs,
    and [Runtime.Reconfig] executes it hitlessly. A one-shot
    bin-packing compiler (the non-fungible baseline of existing work)
    is [place_once]. *)

type outcome = {
  planned : Placement.planned option;
      (* on success: full plan (GC removes + defrags + installs),
         predicted placement, cost, predicted snapshots *)
  iterations : int; (* placement attempts *)
  gc_removed : string list;
  defrag_moves : int;
  failure : Placement.failure option;
}

let place_once ~path prog =
  match Placement.plan ~path prog with
  | Ok pl ->
    { planned = Some pl; iterations = 1; gc_removed = []; defrag_moves = 0;
      failure = None }
  | Error f ->
    { planned = None; iterations = 1; gc_removed = []; defrag_moves = 0;
      failure = Some f }

(** [removable dev] lists element names on [dev] that may be garbage-
    collected (inactive apps). Each GC round removes one more batch —
    names already released from the snapshot in an earlier round are
    skipped, so batches shrink to nothing. *)
let place_with_gc ?(max_iterations = 4) ~path ~removable prog =
  let snaps0 = Placement.default_snaps path in
  let snaps = ref snaps0 in
  let prelude = ref [] in (* reversed GC/defrag ops *)
  let gc_removed = ref [] in
  let defrag_moves = ref 0 in
  let set_snap id s = snaps := (id, s) :: List.remove_assoc id !snaps in
  let rec attempt i =
    match Placement.plan_on ~snaps:!snaps ~path prog with
    | Ok pl ->
      (* Stitch the optimization prelude ahead of the installs and
         re-annotate the cost against the devices' original state. *)
      let plan =
        Plan.v
          ~residency:pl.Placement.pln_plan.Plan.residency
          pl.Placement.pln_plan.Plan.plan_name
          (List.rev !prelude @ pl.Placement.pln_plan.Plan.ops)
      in
      let deltas =
        Placement.snapshot_deltas ~before:snaps0
          ~after:pl.Placement.pln_snaps plan
      in
      let cost =
        Plan.cost_of ~times_of:(Plan.times_of_devices path) ~deltas plan
      in
      { planned =
          Some { pl with Placement.pln_plan = plan; pln_cost = cost };
        iterations = i; gc_removed = List.rev !gc_removed;
        defrag_moves = !defrag_moves; failure = None }
    | Error f ->
      if i >= max_iterations then
        { planned = None; iterations = i; gc_removed = List.rev !gc_removed;
          defrag_moves = !defrag_moves; failure = Some f }
      else begin
        (* GC one batch of removable elements across the path. *)
        let removed_this_round = ref false in
        List.iter
          (fun dev ->
            let id = Targets.Device.id dev in
            List.iter
              (fun name ->
                match Targets.Resource.release (List.assoc id !snaps) name with
                | Some (_slot, s') ->
                  set_snap id s';
                  prelude :=
                    Plan.Remove { device = id; element_name = name } :: !prelude;
                  gc_removed := name :: !gc_removed;
                  removed_this_round := true
                | None -> ())
              (removable dev))
          path;
        (* Defragment staged architectures so freed space coalesces. *)
        List.iter
          (fun dev ->
            let id = Targets.Device.id dev in
            let moves, s' = Targets.Resource.defragment (List.assoc id !snaps) in
            if moves > 0 then begin
              set_snap id s';
              prelude := Plan.Defragment { device = id; moves } :: !prelude;
              defrag_moves := !defrag_moves + moves
            end)
          path;
        if !removed_this_round || !defrag_moves > 0 then attempt (i + 1)
        else
          { planned = None; iterations = i;
            gc_removed = List.rev !gc_removed; defrag_moves = !defrag_moves;
            failure = Some f }
      end
  in
  attempt 1
