(** Concrete surface syntax for policies: parser and printer.

    Grammar (['#'] starts a line comment):

    {v
    pol   ::= seq ('+' seq)*            union, loosest
    seq   ::= star (';' star)*          sequence
    star  ::= atom '*'*                 iteration, tightest
    atom  ::= 'id' | 'drop'
            | 'filter' pred
            | field ':=' INT
            | 'fwd' INT                 sugar for pt := INT
            | '(' pol ')'
    pred  ::= conj ('or' conj)*
    conj  ::= lit ('and' lit)*
    lit   ::= 'not' lit | 'true' | 'false'
            | field '=' INT | '(' pred ')'
    field ::= 'sw' | 'pt' | 'vlan' | 'eth.src' | 'eth.dst'
            | 'ip.src' | 'ip.dst' | 'proto' | 'tp.src' | 'tp.dst'
    v}

    The printer emits minimal parentheses and [fwd n] for
    [Mod (Pt, n)]; [parse (print p)] returns [p] for every term
    ([Ast.pol] has no unprintable cases), which the qcheck round-trip
    property pins down. *)

type pos = { line : int; col : int }

exception Parse_error of string * pos

(** @raise Parse_error on malformed input. *)
val parse : string -> Ast.pol

(** Exception-free wrapper; the error string carries line/column. *)
val parse_result : string -> (Ast.pol, string) result

val print_pred : Ast.pred -> string
val print : Ast.pol -> string
