(** Raft consensus for the physically distributed, logically
    centralized controller (§3.4): leader election with randomized
    timeouts, heartbeats, log replication, and majority commit, all
    over the simulation clock. Controller commands (reconfiguration
    operations) are proposed to the leader and applied on every node
    once committed, so a controller-node failure never loses
    acknowledged operations. *)

type role = Follower | Candidate | Leader

val role_to_string : role -> string

type entry = { term : int; command : string }

type node = {
  id : int;
  cluster : t;
  mutable role : role;
  mutable current_term : int;
  mutable voted_for : int option;
  mutable log : entry array;
  mutable log_len : int;
  mutable commit_index : int;
  mutable last_applied : int;
  mutable votes : int;
  mutable next_index : int array;
  mutable match_index : int array;
  mutable alive : bool;
  mutable election_deadline : float;
  mutable applied : string list; (* applied commands, newest first *)
}

and t

(** Create an [n]-node cluster driven by [sim]; elections and
    heartbeats run on a periodic internal tick. *)
val create :
  ?seed:int -> ?net_delay:float -> ?heartbeat:float ->
  ?election_timeout:float * float -> sim:Netsim.Sim.t -> n:int -> unit -> t

(** Called on every node when a command commits (node id, command). *)
val set_on_apply : t -> (int -> string -> unit) -> unit

val node : t -> int -> node

(** The live leader, if any. *)
val leader : t -> node option

(** Propose a command to the current leader; [false] when there is no
    live leader (caller retries after re-election). *)
val propose : t -> string -> bool

(** Crash a node (stops processing messages and ticks). *)
val kill : t -> int -> unit

(** Revive a crashed node; it rejoins as a follower and catches up. *)
val revive : t -> int -> unit

(** Commands applied on this node, oldest first. *)
val committed_commands : node -> string list

val alive_count : t -> int
