(* E3 — Resource fungibility by architecture under app churn (§3.3).

   The paper's taxonomy: RMT is fungible only within a stage, dRMT
   pools memory, tiles are fungible within a tile type, NIC/FPGA/host
   fully. We offer a Poisson stream of app arrivals (tables of random
   kinds/sizes) with exponential lifetimes to a single device of each
   class and measure the acceptance rate and the utilization at which
   rejections begin — fragmentation shows up as early rejection.
   For RMT we also show the defragmentation pass recovering placements. *)

let arrivals = 400
let seed = 21

type outcome = {
  accepted : int;
  rejected : int;
  first_reject_util : float option;
  defrag_recovered : int;
}

let random_app rng i =
  let size = 20_000 + Random.State.int rng 70_000 in
  if Random.State.bool rng then
    Common.exact_table ~size (Printf.sprintf "app%d" i)
  else Common.lpm_table ~size:(size / 4) (Printf.sprintf "app%d" i)

let churn ?(use_defrag = false) profile =
  let rng = Random.State.make [| seed |] in
  let dev = Targets.Device.create ~id:"dev" profile in
  let live = ref [] in
  let accepted = ref 0 and rejected = ref 0 in
  let first_reject_util = ref None in
  let defrag_recovered = ref 0 in
  for i = 0 to arrivals - 1 do
    (* departures: each live app leaves with probability 30% per step *)
    live :=
      List.filter
        (fun name ->
          if Random.State.float rng 1.0 < 0.08 then begin
            ignore (Targets.Device.uninstall dev name);
            false
          end
          else true)
        !live;
    let el = random_app rng i in
    let name = Flexbpf.Ast.element_name el in
    let ctx = Flexbpf.Builder.program "ctx" [ el ] in
    match Targets.Device.install dev ~ctx ~order:i el with
    | Ok _ ->
      incr accepted;
      live := name :: !live
    | Error _ ->
      if use_defrag && Targets.Device.defragment dev > 0 then begin
        match Targets.Device.install dev ~ctx ~order:i el with
        | Ok _ ->
          incr accepted;
          incr defrag_recovered;
          live := name :: !live
        | Error _ ->
          incr rejected;
          if !first_reject_util = None then
            first_reject_util := Some (Targets.Device.utilization dev)
      end
      else begin
        incr rejected;
        if !first_reject_util = None then
          first_reject_util := Some (Targets.Device.utilization dev)
      end
  done;
  { accepted = !accepted; rejected = !rejected;
    first_reject_util = !first_reject_util;
    defrag_recovered = !defrag_recovered }

let run () =
  let cases =
    [ ("rmt", Targets.Arch.rmt, false);
      ("rmt+defrag", Targets.Arch.rmt, true);
      ("drmt", Targets.Arch.drmt, false);
      ("tiles", Targets.Arch.tiles, false);
      ("elastic_pipe", Targets.Arch.elastic_pipe, false);
      ("smartnic", Targets.Arch.smartnic, false);
      ("fpga", Targets.Arch.fpga, false);
      ("host_ebpf", Targets.Arch.host_ebpf, false) ]
  in
  let rows =
    List.map
      (fun (label, profile, use_defrag) ->
        let o = churn ~use_defrag profile in
        [ label;
          Report.i o.accepted;
          Report.i o.rejected;
          Report.pct
            (float_of_int o.accepted /. float_of_int (o.accepted + o.rejected));
          (match o.first_reject_util with
           | Some u -> Report.pct u
           | None -> "never rejected");
          (if use_defrag then Report.i o.defrag_recovered else "-") ])
      cases
  in
  Report.print ~id:"E3" ~title:"placement acceptance under app churn by architecture"
    ~claim:
      "fungibility ordering: staged RMT rejects earliest (stage fragmentation); \
       defragmentation makes its pipeline resources fungible; disaggregated and \
       general-purpose targets accept the most"
    ~header:
      [ "architecture"; "accepted"; "rejected"; "acceptance"; "util@1st-reject";
        "defrag-recovered" ]
    rows
