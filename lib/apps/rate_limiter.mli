(** Token-bucket rate limiter in FlexBPF: per-source policing with
    tokens accumulated by virtual time (milli-token fixed point). *)

val tokens_map : Flexbpf.Ast.map_decl
val last_map : Flexbpf.Ast.map_decl
val policed_map : Flexbpf.Ast.map_decl
val maps : Flexbpf.Ast.map_decl list

(** [rate_pps] sustained packets/second, [burst] bucket depth in
    packets. New sources start with a full bucket. *)
val block :
  ?name:string -> rate_pps:int -> burst:int -> unit -> Flexbpf.Ast.element

val program :
  ?owner:string -> rate_pps:int -> burst:int -> unit -> Flexbpf.Ast.program

val policed_count : Targets.Device.t -> int64
