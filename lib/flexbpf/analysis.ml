(** Static analysis of FlexBPF programs (§3.1): bounded-execution
    certification and resource footprint estimation.

    FlexBPF has no recursion and only statically bounded loops, so the
    worst-case instruction count is computable by a straightforward
    syntax-directed walk. Targets use [max_cycles] in their performance
    models; the compiler uses [footprint] for placement. *)

open Ast

(** Worst-case dynamic statement count of a statement list. *)
let rec stmts_cost stmts = List.fold_left (fun acc s -> acc + stmt_cost s) 0 stmts

and stmt_cost = function
  | Nop -> 0
  | Set_field _ | Set_meta _ | Forward _ | Drop | Punt _ | Push_header _
  | Pop_header _ -> 1
  | Map_put _ | Map_incr _ | Map_del _ -> 2 (* hash + write *)
  | If (_, th, el) -> 1 + max (stmts_cost th) (stmts_cost el)
  | Loop (n, body) -> 1 + (max 0 n * stmts_cost body)
  | Call _ -> 4 (* marshalling + invocation *)

let action_cost a = stmts_cost a.body

let table_cost t =
  let lookup = 1 + List.length t.keys in
  let worst_action =
    List.fold_left (fun acc a -> max acc (action_cost a)) 0 t.tbl_actions
  in
  lookup + worst_action

let element_cost = function
  | Table t -> table_cost t
  | Block b -> stmts_cost b.blk_body

(** Worst-case per-packet cost of the whole pipeline. *)
let max_cycles prog =
  List.fold_left (fun acc e -> acc + element_cost e) 0 prog.pipeline

(* Resource footprint ------------------------------------------------ *)

let field_width prog h f =
  match find_header prog h with
  | None -> 32
  | Some hd -> Option.value (List.assoc_opt f hd.hdr_fields) ~default:32

let rec expr_width prog = function
  | Field (h, f) -> field_width prog h f
  | Const _ | Meta _ | Param _ | Map_get _ | Time -> 32
  | Bin (_, a, b) -> max (expr_width prog a) (expr_width prog b)
  | Un (_, e) -> expr_width prog e
  | Hash (Crc16, _) -> 16
  | Hash _ -> 32

(** Memory class a table needs: exact matches live in SRAM (hash), LPM
    and ternary need TCAM, ranges expand into TCAM entries. *)
let table_needs_tcam t =
  List.exists
    (fun (_, kind) -> match kind with Exact -> false | Lpm | Ternary | Range -> true)
    t.keys

let table_key_bits prog t =
  List.fold_left (fun acc (e, _) -> acc + expr_width prog e) 0 t.keys

(** Bytes of match memory a table consumes: entries x (key + action data
    overhead). *)
let table_bytes prog t =
  let key_bytes = (table_key_bits prog t + 7) / 8 in
  let action_data = 8 in
  t.tbl_size * (key_bytes + action_data)

let map_bytes (m : map_decl) = m.map_size * ((m.key_arity * 8) + 8)

type footprint = {
  sram_bytes : int; (* exact-match tables + maps *)
  tcam_bytes : int; (* lpm/ternary/range tables *)
  action_slots : int; (* distinct actions *)
  parser_states : int;
  instruction_count : int; (* static size of all blocks/actions *)
  cycles : int; (* worst-case per-packet cost *)
}

let zero_footprint =
  { sram_bytes = 0; tcam_bytes = 0; action_slots = 0; parser_states = 0;
    instruction_count = 0; cycles = 0 }

let add_footprints a b =
  { sram_bytes = a.sram_bytes + b.sram_bytes;
    tcam_bytes = a.tcam_bytes + b.tcam_bytes;
    action_slots = a.action_slots + b.action_slots;
    parser_states = a.parser_states + b.parser_states;
    instruction_count = a.instruction_count + b.instruction_count;
    cycles = a.cycles + b.cycles }

let rec static_stmt_count stmts =
  List.fold_left
    (fun acc -> function
      | If (_, th, el) -> acc + 1 + static_stmt_count th + static_stmt_count el
      | Loop (_, body) -> acc + 1 + static_stmt_count body
      | _ -> acc + 1)
    0 stmts

let element_footprint prog = function
  | Table t ->
    let bytes = table_bytes prog t in
    let instrs =
      List.fold_left (fun acc a -> acc + static_stmt_count a.body) 0
        t.tbl_actions
    in
    { zero_footprint with
      sram_bytes = (if table_needs_tcam t then 0 else bytes);
      tcam_bytes = (if table_needs_tcam t then bytes else 0);
      action_slots = List.length t.tbl_actions;
      instruction_count = instrs;
      cycles = table_cost t }
  | Block b ->
    { zero_footprint with
      instruction_count = static_stmt_count b.blk_body;
      cycles = stmts_cost b.blk_body }

let map_footprint (m : map_decl) =
  { zero_footprint with sram_bytes = map_bytes m }

(** Whole-program footprint (elements + maps + parser). *)
let footprint prog =
  let elements =
    List.fold_left
      (fun acc e -> add_footprints acc (element_footprint prog e))
      zero_footprint prog.pipeline
  in
  let maps =
    List.fold_left
      (fun acc m -> add_footprints acc (map_footprint m))
      zero_footprint prog.maps
  in
  let base = add_footprints elements maps in
  { base with parser_states = List.length prog.parser }

(* Certification ------------------------------------------------------ *)

(* The two framework-hosted certificates, computable standalone even
   for programs the gate below rejects (tools report them for any
   well-formed input). *)
let parallel_safety = Dataflow.Shard_safety.analyze
let static_cost = Dataflow.Cost.analyze

type certificate = {
  cert_program : string;
  cert_cycles : int;
  cert_footprint : footprint;
  cert_warnings : Diagnostics.t list; (* sub-Error verifier findings *)
  cert_parallel : Dataflow.Shard_safety.t; (* shard-safety verdict *)
  cert_cost : Dataflow.Cost.t; (* static per-packet WCET *)
}

type rejection =
  | Ill_typed of Typecheck.error list
  | Cycles_exceed of int * int (* actual, budget *)
  | Unsafe of Diagnostics.t list (* Error-severity verifier findings *)

let pp_rejection ppf = function
  | Ill_typed errs ->
    Fmt.pf ppf "ill-typed: %a" Fmt.(list ~sep:(any "; ") Typecheck.pp_error) errs
  | Cycles_exceed (actual, budget) ->
    Fmt.pf ppf "worst-case cycles %d exceed budget %d" actual budget
  | Unsafe ds ->
    Fmt.pf ppf "verifier rejected: %a"
      Fmt.(list ~sep:(any "; ") Diagnostics.pp)
      ds

(** Certify bounded execution and safety: the program type-checks, its
    worst-case cycle count fits [budget], and the verifier finds no
    Error-severity defects. Sub-Error findings travel on the
    certificate so admission pipelines can record them. This is the
    gate every program passes before it may be injected into the
    network. *)
let certify ?(budget = 4096) ?(verifier = true) prog =
  match Typecheck.check_program prog with
  | Error errs -> Error (Ill_typed errs)
  | Ok () ->
    let cycles = max_cycles prog in
    if cycles > budget then Error (Cycles_exceed (cycles, budget))
    else
      let diags = if verifier then Verifier.verify prog else [] in
      match Diagnostics.errors diags with
      | _ :: _ as errs -> Error (Unsafe errs)
      | [] ->
        Ok { cert_program = prog.prog_name; cert_cycles = cycles;
             cert_footprint = footprint prog; cert_warnings = diags;
             cert_parallel = parallel_safety prog;
             cert_cost = static_cost prog }
