(** The fungible compilation loop (§3.3) — as pure planning.

    "If compiling a FlexNet datapath to its resource slice fails, the
    compiler recursively invokes optimization primitives ... resource
    reallocation and garbage collection, before attempting another
    round of compilation." The two primitives modeled: garbage
    collection of controller-marked removable elements, and
    defragmentation of staged architectures. The loop runs over
    resource snapshots and emits one plan (GC removes + defrags +
    installs) for [Runtime.Reconfig] to execute. *)

type outcome = {
  planned : Placement.planned option;
      (* on success: full plan incl. the GC/defrag prelude *)
  iterations : int; (* placement attempts *)
  gc_removed : string list;
  defrag_moves : int;
  failure : Placement.failure option;
}

(** One-shot bin-packing — the non-fungible baseline of existing
    compilers. Pure. *)
val place_once :
  path:Targets.Device.t list -> Flexbpf.Ast.program -> outcome

(** The iterative loop: plan; on failure GC one batch of [removable]
    element names per device, defragment, retry (bounded by
    [max_iterations], default 4). Pure. *)
val place_with_gc :
  ?max_iterations:int -> path:Targets.Device.t list ->
  removable:(Targets.Device.t -> string list) -> Flexbpf.Ast.program ->
  outcome
