(** Measurement helpers shared by experiments and tests. *)

(** Streaming summary: count / mean / min / max / stddev (Welford). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float
  val pp : Format.formatter -> t -> unit
end

(** Fixed-capacity reservoir sample for percentile estimates. *)
module Reservoir : sig
  type t

  val create : ?capacity:int -> ?seed:int -> unit -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [percentile t p] for [p] in [0, 100]. *)
  val percentile : t -> float -> float

  val median : t -> float
end

(** Named monotone counters — an adapter over the unified
    [Obs.Metrics] registry. The type equality is exposed so a
    simulation's registry ([Obs.Scope.metrics (Sim.obs sim)]) can be
    passed anywhere a [Counters.t] is expected, unifying per-component
    accounting into one exportable registry. *)
module Counters : sig
  type t = Obs.Metrics.t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int

  (** The cell behind [name], creating a zero entry if absent. Hot-path
      callers hold the ref and bump it directly instead of hashing the
      name per event. *)
  val handle : t -> string -> int ref

  (** Sorted by name. *)
  val to_list : t -> (string * int) list

  val pp : Format.formatter -> t -> unit
end

(** Time series sampled by experiments (e.g. queue depth over time). *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> time:float -> value:float -> unit

  (** In insertion (time) order. *)
  val to_list : t -> (float * float) list

  val max_value : t -> float
  val last : t -> (float * float) option
end
