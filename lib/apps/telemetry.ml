(** In-band telemetry utilities: per-hop latency stamps and flow byte
    counters. These are the "in-network monitoring, execution tracking
    and diagnosis primitives" (§3.4) that are injected for maintenance
    and removed afterwards. *)

open Flexbpf.Builder

let flow_bytes_map = map_decl ~key_arity:2 ~size:8192 "flow_bytes"

(** Count packets per (src,dst) pair. *)
let flow_counter =
  block "flow_counter"
    [ map_incr "flow_bytes" [ field "ipv4" "src"; field "ipv4" "dst" ] ]

(** Stamp the hop count and the ingress timestamp into metadata: a
    minimal INT that the destination host (or a test) can read back. *)
let path_stamp =
  block "path_stamp"
    [ set_meta "hops" (meta "hops" +: const 1);
      set_meta "last_hop_us" now ]

let program ?(owner = "infra") () =
  program ~owner "telemetry" ~maps:[ flow_bytes_map ]
    [ flow_counter; path_stamp ]

let flow_count dev ~src ~dst =
  match Targets.Device.map_state dev "flow_bytes" with
  | Some st -> Flexbpf.State.get st [ src; dst ]
  | None -> 0L
