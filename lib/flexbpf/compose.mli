(** Datapath composition (§3.2).

    Tenant extension programs are layered onto the infrastructure
    datapath: every tenant element and map is namespaced under
    "tenant/", access control forbids touching foreign state, conflicts
    are detected, and logically-sharable code across tenants is
    reported as an optimization opportunity. *)

(** ["owner/name"], unless the name is already namespaced. *)
val namespaced : string -> string -> string

(** Owner of a namespaced name ("infra" when unqualified). *)
val owner_of_name : string -> string

(** Namespace an extension program under its owner, rewriting every
    internal map reference. *)
val namespace : Ast.program -> Ast.program

type violation =
  | Touches_foreign_map of string * string (* element, map *)
  | Name_collision of string
  | Unauthorized_drop of string

val pp_violation : Format.formatter -> violation -> unit

(** All map names referenced by an element. *)
val element_maps : Ast.element -> string list

(** Check that a namespaced tenant program only references its own maps
    (or maps the infrastructure explicitly [exports]). *)
val check_access : ?exports:string list -> Ast.program -> violation list

(** Wrap a tenant element so it only applies to packets carrying the
    tenant's VLAN (meta.vlan_vid is stamped at device ingress). *)
val guard_element : vlan:int -> Ast.element -> Ast.element

type composition_error =
  | Access of violation list
  | Collision of string list
  | Ill_typed of Typecheck.error list

val pp_composition_error : Format.formatter -> composition_error -> unit

(** Lay a namespaced, access-checked, optionally VLAN-guarded extension
    atop the base program. *)
val compose :
  ?exports:string list -> ?vlan:int -> base:Ast.program -> Ast.program ->
  (Ast.program, composition_error) result

(** Remove every element, map, and parser rule owned by [owner] — the
    tenant-departure path. *)
val remove_owner : owner:string -> Ast.program -> Ast.program

(** Structurally identical elements installed by different owners,
    compared modulo namespaces and VLAN guards — "logically-sharable
    code that presents optimization opportunities". *)
val sharable_elements : Ast.program -> (string * string) list
