(** Placement of lowered units onto a physical datapath.

    The datapath is an ordered device path (host stack, NIC, switches,
    ... — the "physical slice" a fungible datapath runs on). Placement
    respects pipeline order: unit i+1 may not land earlier in the path
    than unit i. Within that constraint it is first-fit with vertical
    affinity: tables try switching ASICs first, offloads only consider
    general-purpose targets. Placement is transactional — on failure
    every element already installed for the program is rolled back. *)

type t = {
  path : Targets.Device.t list;
  mutable where : (string * Targets.Device.t) list; (* element -> device *)
  prog : Flexbpf.Ast.program;
}

type failure = {
  failed_unit : Lowering.unit_;
  attempts : (string * Targets.Device.reject) list; (* device -> why *)
}

val pp_failure : Format.formatter -> failure -> unit

(** Index of a device on the path. @raise Invalid_argument if absent. *)
val device_position : Targets.Device.t list -> Targets.Device.t -> int

val where : t -> string -> Targets.Device.t option

(** Sorted ids of devices hosting at least one element. *)
val devices_used : t -> string list

(** Place every unit of the program on the path (installs into the
    devices); rolls back on failure. *)
val place :
  path:Targets.Device.t list -> Flexbpf.Ast.program -> (t, failure) result

(** Remove a placed program from its devices. *)
val unplace : t -> unit

(** Mean device utilization over the path (experiment reporting). *)
val mean_utilization : Targets.Device.t list -> float
