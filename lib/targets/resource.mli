(** Resource vectors used for placement accounting. The same vector
    type describes a capacity (what a stage, tile pool, or device
    offers) and a demand (what a program element needs). *)

type t = {
  sram_bytes : int;
  tcam_bytes : int;
  action_slots : int;
  instructions : int; (* instruction store for blocks/actions *)
}

val zero : t

val v :
  ?sram_bytes:int -> ?tcam_bytes:int -> ?action_slots:int ->
  ?instructions:int -> unit -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t

(** [fits demand capacity]: does the demand fit wholly? *)
val fits : t -> t -> bool

(** Fraction of [capacity] consumed by [used] on the most-loaded
    dimension; zero-capacity dimensions are ignored. *)
val utilization : used:t -> capacity:t -> float

(** Demand of a program element, from the static analysis. *)
val of_footprint : Flexbpf.Analysis.footprint -> t

val pp : Format.formatter -> t -> unit
