(* Quickstart: bring up a whole-stack FlexNet network, deploy the
   infrastructure program, send traffic, then reprogram the live
   network — add a firewall with a runtime patch, hitlessly — and watch
   traffic keep flowing.

   Run with: dune exec examples/quickstart.exe *)

let pf fmt = Format.printf fmt

let () =
  pf "== FlexNet quickstart ==@.@.";

  (* 1. A whole-stack network: h0 - nic0 - s0 s1 s2 - nic1 - h1, with
     dRMT (Spectrum-class) runtime-programmable switches. *)
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
  pf "network up: %d devices on the datapath@."
    (List.length (Flexnet.path net));

  (* 2. Deploy the infrastructure program (L2/L3 + ACL + counters).
     The compiler splits it over the physical path. *)
  (match Flexnet.deploy_infrastructure net with
   | Ok dep ->
     pf "infrastructure deployed:@.";
     List.iter
       (fun (name, dev) -> pf "  %-15s -> %s@." name (Targets.Device.id dev))
       dep.Compiler.Incremental.dep_placement.Compiler.Placement.where
   | Error e -> failwith e);

  (* 3. Send continuous traffic. *)
  let sim = Flexnet.sim net in
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:1000. ~start:0. ~stop:2.0 ~send:(fun () ->
      incr sent;
      Flexnet.send_h0 net
        (Netsim.Traffic.tcp_packet ~src:h0.Netsim.Node.id
           ~dst:h1.Netsim.Node.id ~sport:1234 ~dport:80
           ~born:(Netsim.Sim.now sim) ()));

  (* 4. At t=1s, patch the running network: insert a stateful firewall
     before the routing table — without dropping a packet. *)
  let patch =
    Flexbpf.Patch.v "add-firewall"
      [ Flexbpf.Patch.Add_map (Apps.Firewall.conn_map ());
        Flexbpf.Patch.Add_map Apps.Firewall.denied_map;
        Flexbpf.Patch.Add_element
          (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
           Apps.Firewall.block ~boundary:100 ()) ]
  in
  Netsim.Sim.at sim 1.0 (fun () ->
      pf "@.t=1.0s: applying runtime patch '%s'...@." patch.Flexbpf.Patch.patch_name;
      match
        Flexnet.patch_hitless net patch ~on_done:(fun report ->
            pf "t=%.3fs: patch complete (%d ops, %.0f ms, devices: %s)@."
              (Netsim.Sim.now sim)
              (Compiler.Plan.size report.Compiler.Incremental.plan)
              (1000. *. report.Compiler.Incremental.duration)
              (String.concat "," report.Compiler.Incremental.touched_devices))
      with
      | Ok _ -> ()
      | Error e -> pf "patch failed: %a@." Compiler.Incremental.pp_error e);

  Flexnet.run net ~until:3.0;

  (* 5. Results. *)
  let stats = Flexnet.stats net in
  pf "@.sent %d packets; delivered %d; lost to reconfiguration: %d@." !sent
    stats.Flexnet.delivered_h1 stats.Flexnet.reconfig_drops;
  pf "@.controller's global view:@.%a" Control.Controller.pp_view
    (Flexnet.controller net);
  pf "@.firewall is live: unsolicited inbound traffic is now dropped.@.";
  let intruder =
    Netsim.Traffic.tcp_packet ~src:500 ~dst:h0.Netsim.Node.id ~sport:6666
      ~dport:22 ~born:(Netsim.Sim.now sim) ()
  in
  (* send from h1 side toward h0: unsolicited, no state *)
  Netsim.Node.send h1 ~port:0 intruder;
  let before = (Flexnet.stats net).Flexnet.delivered_h0 in
  Flexnet.run net ~until:4.0;
  let after = (Flexnet.stats net).Flexnet.delivered_h0 in
  pf "unsolicited inbound delivered: %d (expected 0)@." (after - before);
  assert (after - before = 0);
  pf "@.quickstart OK@."
