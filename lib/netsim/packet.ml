(** Packets with structured headers.

    Headers are structured (name + field assoc) rather than raw bytes: the
    FlexBPF parser model operates on declared header types, and structured
    packets keep the whole stack inspectable in tests. Field values are
    [int64] regardless of declared width; widths are enforced by the
    FlexBPF type checker, not at the packet level. *)

type header = { hname : string; mutable fields : (string * int64) list }

type t = {
  uid : int;
  mutable headers : header list; (* outermost first *)
  meta : (string, int64) Hashtbl.t;
  size : int; (* bytes on the wire *)
  born : float; (* injection time *)
  mutable epoch : int; (* program version that processed this packet *)
}

let counter = ref 0

let create ?(size = 1000) ?(born = 0.) headers =
  incr counter;
  { uid = !counter; headers; meta = Hashtbl.create 8; size; born; epoch = 0 }

let reset_uid_counter () = counter := 0

let header t name = List.find_opt (fun h -> h.hname = name) t.headers

let has_header t name = Option.is_some (header t name)

let field t hname fname =
  match header t hname with
  | None -> None
  | Some h -> List.assoc_opt fname h.fields

let field_exn t hname fname =
  match field t hname fname with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Packet.field_exn: no %s.%s" hname fname)

let set_field t hname fname v =
  match header t hname with
  | None -> invalid_arg (Printf.sprintf "Packet.set_field: no header %s" hname)
  | Some h ->
    if List.mem_assoc fname h.fields then
      h.fields <- (fname, v) :: List.remove_assoc fname h.fields
    else invalid_arg (Printf.sprintf "Packet.set_field: no field %s.%s" hname fname)

let push_header t h = t.headers <- h :: t.headers

let pop_header t name =
  t.headers <- List.filter (fun h -> h.hname <> name) t.headers

let meta t key = Hashtbl.find_opt t.meta key
let meta_default t key d = Option.value (meta t key) ~default:d
let set_meta t key v = Hashtbl.replace t.meta key v

(* Standard header constructors. Addresses are plain integers: the
   simulator identifies hosts by small ints, which keeps routing tables
   and match rules readable in tests. *)

let ethernet ~src ~dst ?(ethertype = 0x0800L) () =
  { hname = "ethernet";
    fields = [ ("src", src); ("dst", dst); ("ethertype", ethertype) ] }

let vlan ~vid ?(ethertype = 0x0800L) () =
  { hname = "vlan"; fields = [ ("vid", vid); ("ethertype", ethertype) ] }

let ipv4 ~src ~dst ?(proto = 6L) ?(ttl = 64L) ?(ecn = 0L) ?(dscp = 0L) () =
  { hname = "ipv4";
    fields =
      [ ("src", src); ("dst", dst); ("proto", proto); ("ttl", ttl);
        ("ecn", ecn); ("dscp", dscp) ] }

let tcp ~sport ~dport ?(seqno = 0L) ?(ackno = 0L) ?(flags = 0L) () =
  { hname = "tcp";
    fields =
      [ ("sport", sport); ("dport", dport); ("seq", seqno); ("ack", ackno);
        ("flags", flags) ] }

let udp ~sport ~dport () =
  { hname = "udp"; fields = [ ("sport", sport); ("dport", dport) ] }

let tcp_flag_syn = 0x02L
let tcp_flag_ack = 0x10L
let tcp_flag_fin = 0x01L

(** Canonical five-tuple used for flow-state tables and ECMP hashing. *)
let five_tuple t =
  let f h k = Option.value (field t h k) ~default:0L in
  let proto = f "ipv4" "proto" in
  let l4 = if has_header t "tcp" then "tcp" else "udp" in
  (f "ipv4" "src", f "ipv4" "dst", proto, f l4 "sport", f l4 "dport")

let flow_hash t =
  let a, b, c, d, e = five_tuple t in
  let h = Hashtbl.hash (a, b, c, d, e) in
  abs h

let pp ppf t =
  let pp_header ppf h =
    Fmt.pf ppf "%s{%a}" h.hname
      Fmt.(list ~sep:(any ",") (pair ~sep:(any "=") string int64))
      h.fields
  in
  Fmt.pf ppf "#%d[%a]" t.uid Fmt.(list ~sep:(any "/") pp_header) t.headers
