(** Congestion-control algorithms as FlexBPF blocks (§1.1 "live
    infrastructure customization": deploying new transport protocols /
    CC algorithms across hosts and NICs at runtime).

    Each algorithm is a real FlexBPF block operating on metadata in
    fixed-point (cwnd scaled by 1000); [to_transport_cc] interprets the
    block per ACK, so swapping the block on a host endpoint *is* a
    runtime reprogramming of the transport. Inputs: meta.cwnd (x1000),
    meta.ecn (0/1), meta.rtt_us. Output: meta.cwnd. *)

open Flexbpf
open Flexbpf.Builder

let cwnd = meta "cwnd"
let ecn = meta "ecn"
let rtt_us = meta "rtt_us"

let clamp_min = 1_000 (* one packet *)

let clamp =
  when_ (cwnd <: const clamp_min) [ set_meta "cwnd" (const clamp_min) ]

(** Reno/NewReno-style AIMD: ECN treated as loss signal. *)
let reno_block =
  block "cc_reno"
    [ if_ (ecn >: const 0)
        [ set_meta "cwnd" (cwnd /: const 2) ]
        [ set_meta "cwnd" (cwnd +: (const 1_000_000 /: cwnd)) ];
      clamp ]

(** DCTCP-style: maintain an EWMA of the ECN fraction (alpha, x1000)
    and cut the window proportionally; additive increase otherwise.
    g = 1/16. *)
let dctcp_alpha_map = map_decl ~key_arity:1 ~size:4 "dctcp_alpha"

let dctcp_block =
  let alpha = map_get "dctcp_alpha" [ const 0 ] in
  block "cc_dctcp"
    [ (* alpha <- (15*alpha + 1000*ecn) / 16 *)
      map_put "dctcp_alpha" [ const 0 ]
        (((alpha *: const 15) +: (ecn *: const 1000)) /: const 16);
      if_ (ecn >: const 0)
        [ set_meta "cwnd" (cwnd -: (cwnd *: alpha /: const 2000)) ]
        [ set_meta "cwnd" (cwnd +: (const 1_000_000 /: cwnd)) ];
      clamp ]

(** TIMELY-style delay-based control: compare RTT to a target band. *)
let timely_block ?(t_low_us = 50) ?(t_high_us = 500) () =
  block "cc_timely"
    [ if_ (rtt_us >: const t_high_us)
        [ set_meta "cwnd" (cwnd *: const 4 /: const 5) ]
        [ when_ (rtt_us <: const t_low_us)
            [ set_meta "cwnd" (cwnd +: const 2_000) ] ];
      clamp ]

let cc_maps = [ dctcp_alpha_map ]

(** A host-stack program carrying the CC blocks (so they can be placed,
    certified, and migrated like any other component). *)
let program ?(owner = "infra") ?(blocks = [ reno_block ]) () =
  Builder.program ~owner "congestion_control" ~maps:cc_maps blocks

(* -- Interpreting a block as a transport CC policy ------------------- *)

(** Turn a FlexBPF CC block into transport callbacks. The block runs in
    its own environment (per-endpoint state, e.g. DCTCP's alpha). *)
let to_transport_cc ?(init_cwnd = 10.) (blk : Ast.element) =
  let b =
    match blk with
    | Ast.Block b -> b
    | Ast.Table _ -> invalid_arg "Congestion.to_transport_cc: not a block"
  in
  let env =
    Interp.create_env
      { Ast.prog_name = "cc"; owner = "host"; headers = []; parser = [];
        maps = cc_maps; pipeline = [] }
  in
  let run ~cwnd_pkts ~ecn ~rtt =
    let pkt = Netsim.Packet.create [] in
    Netsim.Packet.set_meta pkt "cwnd"
      (Int64.of_float (cwnd_pkts *. 1000.));
    Netsim.Packet.set_meta pkt "ecn" (if ecn then 1L else 0L);
    Netsim.Packet.set_meta pkt "rtt_us" (Int64.of_float (rtt *. 1e6));
    ignore (Interp.run_block env b pkt);
    Int64.to_float (Netsim.Packet.meta_default pkt "cwnd" 1000L) /. 1000.
  in
  { Netsim.Transport.cc_name = b.Ast.blk_name;
    init_cwnd;
    on_ack = (fun ~cwnd ~ecn ~rtt -> run ~cwnd_pkts:cwnd ~ecn ~rtt);
    on_loss = (fun ~cwnd -> Float.max 1. (cwnd /. 2.)) }
