(** Raft consensus for the physically distributed, logically centralized
    controller (§3.4 "fault tolerance and consistency ... classic
    distributed systems concerns on consensus and availability").

    Self-contained implementation over the simulation clock: leader
    election with randomized timeouts, heartbeats, log replication, and
    majority commit. Controller commands (reconfiguration operations)
    are proposed to the leader and applied on every node once committed,
    so a controller-node failure never loses acknowledged operations. *)

type role = Follower | Candidate | Leader

let role_to_string = function
  | Follower -> "follower"
  | Candidate -> "candidate"
  | Leader -> "leader"

type entry = { term : int; command : string }

type message =
  | Request_vote of { term : int; candidate : int; last_log_index : int; last_log_term : int }
  | Vote of { term : int; granted : bool; voter : int }
  | Append_entries of {
      term : int;
      leader : int;
      prev_index : int;
      prev_term : int;
      entries : entry list;
      leader_commit : int;
    }
  | Append_reply of { term : int; from : int; success : bool; match_index : int }

type node = {
  id : int;
  cluster : t;
  mutable role : role;
  mutable current_term : int;
  mutable voted_for : int option;
  mutable log : entry array; (* 1-based semantics; index 0 unused sentinel *)
  mutable log_len : int;
  mutable commit_index : int;
  mutable last_applied : int;
  mutable votes : int;
  mutable next_index : int array;
  mutable match_index : int array;
  mutable alive : bool;
  mutable election_deadline : float;
  mutable applied : string list; (* applied commands, newest first *)
}

and t = {
  sim : Netsim.Sim.t;
  rng : Random.State.t;
  mutable nodes : node array;
  n : int;
  net_delay : float;
  heartbeat : float;
  election_timeout : float * float; (* min, max *)
  mutable delivered : int;
  mutable on_apply : int -> string -> unit; (* node id, command *)
}

let majority t = (t.n / 2) + 1

let rand_timeout t =
  let lo, hi = t.election_timeout in
  lo +. Random.State.float t.rng (hi -. lo)

let last_log_index node = node.log_len
let last_log_term node = if node.log_len = 0 then 0 else node.log.(node.log_len - 1).term

let log_entry node i =
  (* 1-based *)
  if i <= 0 || i > node.log_len then None else Some node.log.(i - 1)

let append_log node e =
  if node.log_len = Array.length node.log then begin
    let bigger = Array.make (max 16 (2 * Array.length node.log)) e in
    Array.blit node.log 0 bigger 0 node.log_len;
    node.log <- bigger
  end;
  node.log.(node.log_len) <- e;
  node.log_len <- node.log_len + 1

let truncate_log node len = node.log_len <- max 0 len

(* -- messaging -------------------------------------------------------- *)

(* [handle] is defined after the helpers it uses; messages dispatch
   through this forward reference. *)
let recv_ref : (node -> message -> unit) ref = ref (fun _ _ -> ())

let send t ~to_ msg =
  if to_ >= 0 && to_ < t.n then begin
    let dst = t.nodes.(to_) in
    Netsim.Sim.after t.sim t.net_delay (fun () ->
        if dst.alive then begin
          t.delivered <- t.delivered + 1;
          !recv_ref dst msg
        end)
  end

let broadcast t ~from msg =
  Array.iter (fun nd -> if nd.id <> from then send t ~to_:nd.id msg) t.nodes

(* -- state transitions ------------------------------------------------ *)

let become_follower node term =
  node.role <- Follower;
  node.current_term <- term;
  node.voted_for <- None

let apply_committed node =
  while node.last_applied < node.commit_index do
    node.last_applied <- node.last_applied + 1;
    match log_entry node node.last_applied with
    | Some e ->
      node.applied <- e.command :: node.applied;
      node.cluster.on_apply node.id e.command
    | None -> ()
  done

let reset_election_deadline node =
  node.election_deadline <-
    Netsim.Sim.now node.cluster.sim +. rand_timeout node.cluster

let send_heartbeats t leader =
  Array.iter
    (fun nd ->
      if nd.id <> leader.id then begin
        let ni = leader.next_index.(nd.id) in
        let prev_index = ni - 1 in
        let prev_term =
          match log_entry leader prev_index with Some e -> e.term | None -> 0
        in
        let entries =
          let rec collect i acc =
            if i > leader.log_len then List.rev acc
            else
              match log_entry leader i with
              | Some e -> collect (i + 1) (e :: acc)
              | None -> List.rev acc
          in
          collect ni []
        in
        send t ~to_:nd.id
          (Append_entries
             { term = leader.current_term; leader = leader.id; prev_index;
               prev_term; entries; leader_commit = leader.commit_index })
      end)
    t.nodes

let become_leader node =
  node.role <- Leader;
  let t = node.cluster in
  node.next_index <- Array.make t.n (node.log_len + 1);
  node.match_index <- Array.make t.n 0;
  send_heartbeats t node

let start_election node =
  let t = node.cluster in
  node.role <- Candidate;
  node.current_term <- node.current_term + 1;
  node.voted_for <- Some node.id;
  node.votes <- 1;
  reset_election_deadline node;
  broadcast t ~from:node.id
    (Request_vote
       { term = node.current_term; candidate = node.id;
         last_log_index = last_log_index node;
         last_log_term = last_log_term node })

(* try to advance the leader's commit index *)
let advance_commit leader =
  let t = leader.cluster in
  let candidate_index = ref leader.commit_index in
  for i = leader.commit_index + 1 to leader.log_len do
    let replicas =
      1
      + Array.fold_left ( + ) 0
          (Array.mapi
             (fun j m -> if j <> leader.id && m >= i then 1 else 0)
             leader.match_index)
    in
    match log_entry leader i with
    | Some e when e.term = leader.current_term && replicas >= majority t ->
      candidate_index := i
    | _ -> ()
  done;
  if !candidate_index > leader.commit_index then begin
    leader.commit_index <- !candidate_index;
    apply_committed leader
  end

let handle node msg =
  let t = node.cluster in
  match msg with
  | Request_vote { term; candidate; last_log_index = lli; last_log_term = llt } ->
    if term > node.current_term then become_follower node term;
    let up_to_date =
      llt > last_log_term node
      || (llt = last_log_term node && lli >= last_log_index node)
    in
    let granted =
      term = node.current_term
      && up_to_date
      && (node.voted_for = None || node.voted_for = Some candidate)
    in
    if granted then begin
      node.voted_for <- Some candidate;
      reset_election_deadline node
    end;
    send t ~to_:candidate
      (Vote { term = node.current_term; granted; voter = node.id })
  | Vote { term; granted; voter = _ } ->
    if term > node.current_term then become_follower node term
    else if node.role = Candidate && term = node.current_term && granted then begin
      node.votes <- node.votes + 1;
      if node.votes >= majority t then become_leader node
    end
  | Append_entries { term; leader; prev_index; prev_term; entries; leader_commit } ->
    if term > node.current_term then become_follower node term;
    if term < node.current_term then
      send t ~to_:leader
        (Append_reply
           { term = node.current_term; from = node.id; success = false;
             match_index = 0 })
    else begin
      if node.role <> Follower then node.role <- Follower;
      reset_election_deadline node;
      let prev_ok =
        prev_index = 0
        || (match log_entry node prev_index with
            | Some e -> e.term = prev_term
            | None -> false)
      in
      if not prev_ok then
        send t ~to_:leader
          (Append_reply
             { term = node.current_term; from = node.id; success = false;
               match_index = 0 })
      else begin
        (* overwrite conflicting suffix *)
        truncate_log node prev_index;
        List.iter (append_log node) entries;
        if leader_commit > node.commit_index then begin
          node.commit_index <- min leader_commit node.log_len;
          apply_committed node
        end;
        send t ~to_:leader
          (Append_reply
             { term = node.current_term; from = node.id; success = true;
               match_index = node.log_len })
      end
    end
  | Append_reply { term; from; success; match_index } ->
    if term > node.current_term then become_follower node term
    else if node.role = Leader && term = node.current_term then begin
      if success then begin
        node.match_index.(from) <- max node.match_index.(from) match_index;
        node.next_index.(from) <- node.match_index.(from) + 1;
        advance_commit node
      end
      else
        node.next_index.(from) <- max 1 (node.next_index.(from) - 1)
    end

let () = recv_ref := handle

(* -- public API -------------------------------------------------------- *)

let create ?(seed = 11) ?(net_delay = 0.002) ?(heartbeat = 0.05)
    ?(election_timeout = (0.15, 0.3)) ~sim ~n () =
  let t =
    { sim; rng = Random.State.make [| seed |]; nodes = [||]; n; net_delay;
      heartbeat; election_timeout; delivered = 0; on_apply = (fun _ _ -> ()) }
  in
  let mk id =
    { id; cluster = t; role = Follower; current_term = 0; voted_for = None;
      log = Array.make 16 { term = 0; command = "" }; log_len = 0;
      commit_index = 0; last_applied = 0; votes = 0;
      next_index = Array.make n 1; match_index = Array.make n 0; alive = true;
      election_deadline = 0.; applied = [] }
  in
  t.nodes <- Array.init n mk;
  Array.iter reset_election_deadline t.nodes;
  (* periodic driver: election timeouts + leader heartbeats *)
  let tick () =
    let now = Netsim.Sim.now sim in
    Array.iter
      (fun node ->
        if node.alive then begin
          match node.role with
          | Leader -> send_heartbeats t node
          | Follower | Candidate ->
            if now >= node.election_deadline then start_election node
        end)
      t.nodes;
    true
  in
  Netsim.Sim.every sim ~period:(heartbeat /. 2.) (fun () -> tick ());
  t

let set_on_apply t f = t.on_apply <- f

let node t i = t.nodes.(i)

let leader t =
  Array.fold_left
    (fun acc nd -> if nd.alive && nd.role = Leader then Some nd else acc)
    None t.nodes

(** Propose a command to the current leader. Returns false when there is
    no live leader (caller retries after re-election). *)
let propose t command =
  match leader t with
  | None -> false
  | Some l ->
    append_log l { term = l.current_term; command };
    send_heartbeats t l;
    true

let kill t i =
  let nd = t.nodes.(i) in
  nd.alive <- false;
  nd.role <- Follower

let revive t i =
  let nd = t.nodes.(i) in
  nd.alive <- true;
  nd.voted_for <- None;
  reset_election_deadline nd

let committed_commands node = List.rev node.applied

let alive_count t =
  Array.fold_left (fun acc nd -> if nd.alive then acc + 1 else acc) 0 t.nodes
