(** Pure placement planning: a search over resource snapshots that
    emits a cost-annotated {!Plan.t}.

    The datapath is an ordered device path (host stack, NIC, switches,
    ... — the "physical slice" a fungible datapath runs on). Placement
    respects pipeline order: unit i+1 may not land earlier in the path
    than unit i. Within that constraint it is first-fit with vertical
    affinity: tables try switching ASICs first, offloads only consider
    general-purpose targets.

    No function here touches a device; execution — and rollback — is
    [Runtime.Reconfig]'s job. *)

open Flexbpf

(** A realized placement, as tracked by the runtime after executing a
    deploy plan: element name -> hosting device. *)
type t = {
  path : Targets.Device.t list;
  mutable where : (string * Targets.Device.t) list; (* element -> device *)
  prog : Ast.program;
}

type failure = {
  failed_unit : Lowering.unit_;
  attempts : (string * Targets.Device.reject) list; (* device id -> why *)
}

val pp_failure : Format.formatter -> failure -> unit

(** Index of a device on the path; [None] if absent. *)
val device_position : Targets.Device.t list -> Targets.Device.t -> int option

val where : t -> string -> Targets.Device.t option

(** Sorted ids of devices hosting at least one element. *)
val devices_used : t -> string list

(** Candidate devices for a unit in preference order, respecting
    pipeline order (path position >= [min_pos]) and vertical affinity. *)
val candidates :
  path:Targets.Device.t list -> min_pos:int -> Lowering.unit_ ->
  Targets.Device.t list

(** A successful pure placement. *)
type planned = {
  pln_where : (string * string) list; (* element name -> device id *)
  pln_plan : Plan.t;
  pln_cost : Plan.cost;
  pln_snaps : (string * Targets.Resource.snapshot) list;
      (* predicted (finalized) snapshot of every path device *)
}

(** Current snapshots of every device on the path, keyed by id. *)
val default_snaps :
  Targets.Device.t list -> (string * Targets.Resource.snapshot) list

(** Per-touched-device resource delta (used after − used before). *)
val snapshot_deltas :
  before:(string * Targets.Resource.snapshot) list ->
  after:(string * Targets.Resource.snapshot) list ->
  Plan.t -> (string * Targets.Resource.t) list

(** Plan the placement of every unit of the program over the given
    snapshots; [path] supplies device order and metadata only. Pure. *)
val plan_on :
  ?plan_name:string ->
  snaps:(string * Targets.Resource.snapshot) list ->
  path:Targets.Device.t list ->
  Ast.program -> (planned, failure) result

(** [plan_on] against the devices' current state. *)
val plan :
  path:Targets.Device.t list -> Ast.program -> (planned, failure) result

(** Mean device utilization over the path (experiment reporting). *)
val mean_utilization : Targets.Device.t list -> float
