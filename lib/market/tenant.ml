(** Market-side tenant descriptors: utility/budget curves over replica
    counts, certified footprints, and bid computation. *)

type sla = Best_effort | Protected

let sla_to_string = function
  | Best_effort -> "best-effort"
  | Protected -> "protected"

type t = {
  mt_name : string;
  mt_sla : sla;
  mt_budget : float;
  mt_weight : float;
  mt_max_replicas : int;
  mt_footprint : Targets.Resource.t;
  mt_program : Flexbpf.Ast.program;
}

(* The floor rent of a footprint: what one replica costs per round
   when every price book sits at the (default) floor. Tenant money is
   denominated in this unit, so utility curves are scale-free — a big
   firewall and a tiny counter both stay in the market while the
   congestion multiple over floor prices is below their
   willingness-to-pay multiple. *)
let floor_rent footprint =
  Float.max 1e-9
    (Prices.default_config.Prices.cfg_floor
    *. List.fold_left
         (fun acc k -> acc +. Prices.units k footprint)
         0. Prices.all_rkinds)

let create ?(sla = Best_effort) ?(budget = 10.) ?(weight = 1.)
    ?(max_replicas = 4) (prog : Flexbpf.Ast.program) =
  if budget <= 0. then invalid_arg "Market.Tenant.create: budget must be > 0";
  if weight <= 0. then invalid_arg "Market.Tenant.create: weight must be > 0";
  if max_replicas <= 0 then
    invalid_arg "Market.Tenant.create: max_replicas must be > 0";
  match Flexbpf.Analysis.certify prog with
  | Error r -> Error r
  | Ok cert ->
    let footprint =
      Targets.Resource.of_footprint cert.Flexbpf.Analysis.cert_footprint
    in
    let par = floor_rent footprint in
    (* mt_weight is scaled so marginal_utility 0 = weight · par: the
       first replica is worth [weight] floor rents, the budget caps
       spend at [budget] floor rents per round. *)
    Ok
      { mt_name = prog.Flexbpf.Ast.owner; mt_sla = sla;
        mt_budget = budget *. par;
        mt_weight = weight *. par /. log 2.;
        mt_max_replicas = max_replicas; mt_footprint = footprint;
        mt_program = prog }

let utility t q = t.mt_weight *. log (1. +. float_of_int (max 0 q))
let marginal_utility t q = utility t (q + 1) -. utility t q

(* Largest q with marginal_utility (q-1) >= unit_cost and
   q * unit_cost <= budget. Marginal utility is strictly decreasing, so
   a linear scan from 0 is exact (max_replicas is small). *)
let demand t ~unit_cost =
  if unit_cost <= 0. then t.mt_max_replicas
  else begin
    let q = ref 0 in
    while
      !q < t.mt_max_replicas
      && marginal_utility t !q >= unit_cost
      && float_of_int (!q + 1) *. unit_cost <= t.mt_budget
    do
      incr q
    done;
    !q
  end

type bid = {
  bid_name : string;
  bid_replicas : int;
  bid_value : float;
  bid_cost : float;
  bid_density : float;
}

let bid t ~unit_cost =
  let q = demand t ~unit_cost in
  if q = 0 then None
  else begin
    let value = Float.min t.mt_budget (utility t q) in
    let cost = float_of_int q *. unit_cost in
    Some
      { bid_name = t.mt_name; bid_replicas = q; bid_value = value;
        bid_cost = cost; bid_density = value /. Float.max 1e-9 cost }
  end

let pp_bid ppf b =
  Fmt.pf ppf "%s: q=%d value=%.3f cost=%.3f density=%.2f" b.bid_name
    b.bid_replicas b.bid_value b.bid_cost b.bid_density
