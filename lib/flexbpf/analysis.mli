(** Static analysis of FlexBPF programs (§3.1): bounded-execution
    certification and resource footprint estimation.

    FlexBPF has no recursion and only statically bounded loops, so the
    worst-case instruction count is computable syntax-directed. Targets
    use [max_cycles] in their performance models; the compiler uses
    [footprint] for placement. *)

(** Worst-case dynamic statement count of a statement list. *)
val stmts_cost : Ast.stmt list -> int

val table_cost : Ast.table -> int
val element_cost : Ast.element -> int

(** Worst-case per-packet cost of the whole pipeline. *)
val max_cycles : Ast.program -> int

(** Memory class: exact matches live in SRAM (hash), LPM/ternary/range
    need TCAM. *)
val table_needs_tcam : Ast.table -> bool

val table_key_bits : Ast.program -> Ast.table -> int

(** Bytes of match memory a table consumes (entries x key+action data). *)
val table_bytes : Ast.program -> Ast.table -> int

val map_bytes : Ast.map_decl -> int

type footprint = {
  sram_bytes : int; (* exact-match tables + maps *)
  tcam_bytes : int; (* lpm/ternary/range tables *)
  action_slots : int;
  parser_states : int;
  instruction_count : int; (* static size of all blocks/actions *)
  cycles : int; (* worst-case per-packet cost *)
}

val zero_footprint : footprint
val add_footprints : footprint -> footprint -> footprint
val element_footprint : Ast.program -> Ast.element -> footprint
val map_footprint : Ast.map_decl -> footprint

(** Whole-program footprint (elements + maps + parser). *)
val footprint : Ast.program -> footprint

(** Shard-safety classification of every map the program touches
    ([Dataflow.Shard_safety.analyze]); computable standalone, even for
    programs [certify] rejects. *)
val parallel_safety : Ast.program -> Dataflow.Shard_safety.t

(** Static per-packet WCET certificate ([Dataflow.Cost.analyze]):
    certified work units with statically dead branches pruned, next to
    the unpruned planner heuristic (= [max_cycles]). *)
val static_cost : Ast.program -> Dataflow.Cost.t

type certificate = {
  cert_program : string;
  cert_cycles : int;
  cert_footprint : footprint;
  cert_warnings : Diagnostics.t list; (* sub-Error verifier findings *)
  cert_parallel : Dataflow.Shard_safety.t; (* shard-safety verdict *)
  cert_cost : Dataflow.Cost.t; (* static per-packet WCET *)
}

type rejection =
  | Ill_typed of Typecheck.error list
  | Cycles_exceed of int * int (* actual, budget *)
  | Unsafe of Diagnostics.t list (* Error-severity verifier findings *)

val pp_rejection : Format.formatter -> rejection -> unit

(** Certify bounded execution and safety: the program type-checks, its
    worst-case cycle count fits [budget] (default 4096), and the
    [Verifier] finds no Error-severity defects (disable the last gate
    with [~verifier:false]). Warnings and infos are attached to the
    certificate. Every program passes this gate before injection into
    the network. *)
val certify :
  ?budget:int -> ?verifier:bool -> Ast.program ->
  (certificate, rejection) result
