(** Heavy-hitter detection on the count-min sketch: when a flow's
    estimate crosses the threshold, a digest is punted to the
    controller (once every [report_every] packets of that flow). *)

val digest_name : string

val block :
  ?name:string -> ?threshold:int -> ?report_every:int -> Cm_sketch.config ->
  Flexbpf.Ast.element

val program :
  ?owner:string -> ?cfg:Cm_sketch.config -> ?threshold:int ->
  ?report_every:int -> unit -> Flexbpf.Ast.program
