(** The central controller: the pilot of a runtime programmable network
    (§3.4). Maintains the global view (topology, devices, app
    locations), exposes app-level management operations keyed by URI,
    dispatches data-plane digests (punts) to subscribers, and
    optionally journals every management operation through a Raft
    cluster. *)

type app_kind = Infrastructure | Tenant_extension | Utility

type app = {
  uri : Uri.t;
  kind : app_kind;
  mutable program : Flexbpf.Ast.program;
  mutable replicas : Targets.Device.t list; (* devices hosting it *)
  mutable handle : Runtime.Migration.handle option;
  registered_at : float;
}

type t

val devices : t -> Targets.Device.t list

val create :
  sim:Netsim.Sim.t -> topo:Netsim.Topology.t ->
  wireds:Runtime.Wiring.wired list -> t

(** Attach a Raft cluster: management operations are proposed to the
    leader before execution. *)
val enable_ha : t -> Raft.t -> unit

(** Cached element-level API session for a device. *)
val api : t -> Targets.Device.t -> Device_api.t

(** {2 App registry} *)

val register_app :
  t -> uri:Uri.t -> kind:app_kind -> program:Flexbpf.Ast.program ->
  replicas:Targets.Device.t list -> app

val lookup : t -> Uri.t -> app option
val unregister_app : t -> Uri.t -> unit

(** Device ids hosting the app. *)
val app_locations : t -> Uri.t -> string list

val all_apps : t -> app list

(** {2 App-level management operations} *)

type op_error = Unknown_app | Unknown_device | Operation_failed of string

val pp_op_error : Format.formatter -> op_error -> unit

val find_device : t -> string -> Targets.Device.t option

(** Inject an app's elements onto a device (defense summoning, replica
    creation). *)
val inject_on : t -> Uri.t -> device:Targets.Device.t -> (unit, op_error) result

(** Retire an app replica from a device. *)
val retire_from : t -> Uri.t -> device:Targets.Device.t -> (unit, op_error) result

(** Migrate a stateful app (needs a migration handle) to another device
    via the data-plane swing protocol. *)
val migrate :
  t -> Uri.t -> to_device:Targets.Device.t -> ?on_done:(unit -> unit) ->
  unit -> (unit, op_error) result

(** Grow a named map of an app — the "expand a certain resource type"
    URI operation. *)
val expand_map : t -> Uri.t -> map_name:string -> factor:int -> (unit, op_error) result

(** {2 Failure handling} *)

(** A device crashed: drop its cached API session and journal. *)
val handle_device_crash : t -> string -> unit

(** A crashed device restarted: reconnect lazily and re-resolve — any
    app replica elements lost to the crash rollback are reinstalled. *)
val handle_device_restart : t -> string -> unit

(** Elements re-injected by restart re-resolution. *)
val reresolutions : t -> int

(** Subscribe to a fault injector's device events so crashes/restarts
    are handled automatically. *)
val watch_faults : t -> Netsim.Faults.t -> unit

(** {2 Digests} *)

(** Subscribe to a digest name; the callback runs on every punt. *)
val subscribe : t -> digest:string -> (string -> Netsim.Packet.t -> unit) -> unit

val digest_count : t -> string -> int

(** {2 Global view} *)

type device_summary = {
  ds_id : string;
  ds_kind : Targets.Arch.kind;
  ds_elements : int;
  ds_utilization : float;
  ds_processed : int;
}

val view : t -> device_summary list
val pp_view : Format.formatter -> t -> unit
