(** Pretty-printing of FlexBPF programs, used in error messages, logs,
    and example output. *)

open Ast

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

let unop_to_string = function Not -> "!" | Neg -> "-" | Bnot -> "~"

let hash_to_string = function
  | Crc16 -> "crc16" | Crc32 -> "crc32" | Identity -> "identity"

let rec pp_expr ppf = function
  | Const v -> Fmt.pf ppf "%Ld" v
  | Field (h, f) -> Fmt.pf ppf "%s.%s" h f
  | Meta m -> Fmt.pf ppf "meta.%s" m
  | Param p -> Fmt.pf ppf "$%s" p
  | Map_get (m, keys) ->
    Fmt.pf ppf "%s[%a]" m Fmt.(list ~sep:comma pp_expr) keys
  | Bin (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Un (op, e) -> Fmt.pf ppf "%s%a" (unop_to_string op) pp_expr e
  | Hash (alg, es) ->
    Fmt.pf ppf "%s(%a)" (hash_to_string alg) Fmt.(list ~sep:comma pp_expr) es
  | Time -> Fmt.string ppf "now()"

let rec pp_stmt ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Set_field (h, f, e) -> Fmt.pf ppf "%s.%s = %a" h f pp_expr e
  | Set_meta (m, e) -> Fmt.pf ppf "meta.%s = %a" m pp_expr e
  | Map_put (m, keys, v) ->
    Fmt.pf ppf "%s[%a] = %a" m Fmt.(list ~sep:comma pp_expr) keys pp_expr v
  | Map_incr (m, keys, v) ->
    Fmt.pf ppf "%s[%a] += %a" m Fmt.(list ~sep:comma pp_expr) keys pp_expr v
  | Map_del (m, keys) ->
    Fmt.pf ppf "delete %s[%a]" m Fmt.(list ~sep:comma pp_expr) keys
  | If (c, th, []) ->
    Fmt.pf ppf "if %a { %a }" pp_expr c pp_stmts th
  | If (c, th, el) ->
    Fmt.pf ppf "if %a { %a } else { %a }" pp_expr c pp_stmts th pp_stmts el
  | Loop (n, body) -> Fmt.pf ppf "repeat %d { %a }" n pp_stmts body
  | Forward e -> Fmt.pf ppf "forward(%a)" pp_expr e
  | Drop -> Fmt.string ppf "drop"
  | Punt d -> Fmt.pf ppf "punt(%s)" d
  | Push_header h -> Fmt.pf ppf "push(%s)" h
  | Pop_header h -> Fmt.pf ppf "pop(%s)" h
  | Call (svc, args) ->
    Fmt.pf ppf "drpc %s(%a)" svc Fmt.(list ~sep:comma pp_expr) args

and pp_stmts ppf stmts = Fmt.(list ~sep:(any "; ") pp_stmt) ppf stmts

let match_kind_to_string = function
  | Exact -> "exact" | Lpm -> "lpm" | Ternary -> "ternary" | Range -> "range"

let pp_action ppf a =
  Fmt.pf ppf "action %s(%a) { %a }" a.act_name
    Fmt.(list ~sep:comma string) a.params pp_stmts a.body

let pp_table ppf t =
  let pp_key ppf (e, k) = Fmt.pf ppf "%a:%s" pp_expr e (match_kind_to_string k) in
  Fmt.pf ppf "@[<v2>table %s (size %d) {@ keys: %a@ %a@ default: %s@]@ }"
    t.tbl_name t.tbl_size
    Fmt.(list ~sep:comma pp_key) t.keys
    Fmt.(list ~sep:cut pp_action) t.tbl_actions
    (fst t.default_action)

let pp_element ppf = function
  | Table t -> pp_table ppf t
  | Block b -> Fmt.pf ppf "@[<v2>block %s {@ %a@]@ }" b.blk_name pp_stmts b.blk_body

let pp_map ppf (m : map_decl) =
  let enc = match m.encoding with
    | Enc_auto -> "auto" | Enc_registers -> "registers"
    | Enc_flow_state -> "flow_state" | Enc_stateful_table -> "stateful_table"
  in
  Fmt.pf ppf "map %s<%d keys, %d entries, %s>" m.map_name m.key_arity
    m.map_size enc

let pp_parser_rule ppf r =
  Fmt.pf ppf "parse %s: %a" r.pr_name Fmt.(list ~sep:(any "->") string) r.pr_headers

let pp_program ppf p =
  Fmt.pf ppf "@[<v2>program %s (owner %s) {@ %a@ %a@ %a@]@ }" p.prog_name
    p.owner
    Fmt.(list ~sep:cut pp_parser_rule) p.parser
    Fmt.(list ~sep:cut pp_map) p.maps
    Fmt.(list ~sep:cut pp_element) p.pipeline

let pattern_to_string = function
  | P_exact v -> Printf.sprintf "%Ld" v
  | P_lpm (v, l) -> Printf.sprintf "%Ld/%d" v l
  | P_ternary (v, m) -> Printf.sprintf "%Ld&%Ld" v m
  | P_range (a, b) -> Printf.sprintf "[%Ld..%Ld]" a b
  | P_any -> "*"

let pp_rule ppf r =
  Fmt.pf ppf "[%d] %a -> %s(%a)" r.rule_priority
    Fmt.(list ~sep:comma (of_to_string pattern_to_string)) r.matches
    r.rule_action Fmt.(list ~sep:comma int64) r.rule_args

let program_to_string p = Fmt.str "%a" pp_program p
