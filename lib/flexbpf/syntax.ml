(** Concrete surface syntax for FlexBPF: parser and printer.

    The paper proposes FlexBPF as a textual DSL; this module gives it a
    concrete grammar so programs can live in files, be loaded by tools,
    and round-trip through the printer ([parse_program (print p) = p]
    for printable programs).

    {v
    # comment
    program l2l3 owner infra {
      header gre { proto:16 }
      parse parse_gre: ethernet -> gre
      map conn<2, 8192, stateful_table>

      table acl(size 1024) {
        keys: ipv4.src:ternary, ipv4.dst:ternary
        action permit() { nop }
        action deny() { drop }
        default: permit()
      }

      block guard {
        if (ipv4.ttl <= 0) { drop }
        conn[ipv4.src, ipv4.dst] += 1
        meta.mark = ipv4.src + 5
        forward(3)
      }
    }
    v}

    Notes: identifiers may contain ['/'] (namespaced tenant names), so
    the division operator must be surrounded by spaces. [meta.x] reads
    packet metadata, [$p] an action parameter, [now()] the virtual
    clock, and [crc16/crc32/identity(...)] the hash functions. *)

open Ast

exception Parse_error of string * Lexer.pos

let error lx fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (s, snd (Lexer.peek lx)))) fmt

let expect lx tok =
  let got, _ = Lexer.next lx in
  if got <> tok then
    error lx "expected %s, found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string got)

let expect_ident lx =
  match Lexer.next lx with
  | Lexer.IDENT s, _ -> s
  | got, _ -> error lx "expected identifier, found %s" (Lexer.token_to_string got)

let expect_int lx =
  match Lexer.next lx with
  | Lexer.INT v, _ -> v
  | got, _ -> error lx "expected integer, found %s" (Lexer.token_to_string got)

let accept lx tok =
  if fst (Lexer.peek lx) = tok then begin
    ignore (Lexer.next lx);
    true
  end
  else false

(* -- Expressions -------------------------------------------------------- *)

(* precedence climbing: levels from loosest to tightest *)
let binop_of_string = function
  | "||" -> Some Lor | "&&" -> Some Land
  | "|" -> Some Bor | "^" -> Some Bxor | "&" -> Some Band
  | "==" -> Some Eq | "!=" -> Some Neq
  | "<" -> Some Lt | "<=" -> Some Le | ">" -> Some Gt | ">=" -> Some Ge
  | "<<" -> Some Shl | ">>" -> Some Shr
  | "+" -> Some Add | "-" -> Some Sub
  | "*" -> Some Mul | "/" -> Some Div | "%" -> Some Mod
  | _ -> None

let level_of = function
  | Lor -> 1 | Land -> 2 | Bor -> 3 | Bxor -> 4 | Band -> 5
  | Eq | Neq -> 6
  | Lt | Le | Gt | Ge -> 7
  | Shl | Shr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

let peek_binop lx =
  match fst (Lexer.peek lx) with
  | Lexer.OP s -> binop_of_string s
  | Lexer.LT_ANGLE -> Some Lt
  | Lexer.GT_ANGLE -> Some Gt
  | _ -> None

let hash_alg_of_name = function
  | "crc16" -> Some Crc16
  | "crc32" -> Some Crc32
  | "identity" -> Some Identity
  | _ -> None

let rec parse_expr ?(min_level = 1) lx =
  let lhs = parse_unary lx in
  parse_binop_rhs lx min_level lhs

and parse_binop_rhs lx min_level lhs =
  match peek_binop lx with
  | Some op when level_of op >= min_level ->
    ignore (Lexer.next lx);
    let rhs = parse_expr ~min_level:(level_of op + 1) lx in
    parse_binop_rhs lx min_level (Bin (op, lhs, rhs))
  | _ -> lhs

and parse_unary lx =
  match fst (Lexer.peek lx) with
  | Lexer.OP "!" ->
    ignore (Lexer.next lx);
    Un (Not, parse_unary lx)
  | Lexer.OP "-" ->
    ignore (Lexer.next lx);
    Un (Neg, parse_unary lx)
  | Lexer.OP "~" ->
    ignore (Lexer.next lx);
    Un (Bnot, parse_unary lx)
  | _ -> parse_primary lx

and parse_primary lx =
  match Lexer.next lx with
  | Lexer.INT v, _ -> Const v
  | Lexer.DOLLAR, _ -> Param (expect_ident lx)
  | Lexer.LPAREN, _ ->
    let e = parse_expr lx in
    expect lx Lexer.RPAREN;
    e
  | Lexer.IDENT "now", _ ->
    expect lx Lexer.LPAREN;
    expect lx Lexer.RPAREN;
    Time
  | Lexer.IDENT name, _ ->
    (match hash_alg_of_name name with
     | Some alg when fst (Lexer.peek lx) = Lexer.LPAREN ->
       ignore (Lexer.next lx);
       let args = parse_expr_list lx Lexer.RPAREN in
       Hash (alg, args)
     | _ ->
       (match fst (Lexer.peek lx) with
        | Lexer.DOT ->
          ignore (Lexer.next lx);
          let f = expect_ident lx in
          if name = "meta" then Meta f else Field (name, f)
        | Lexer.LBRACKET ->
          ignore (Lexer.next lx);
          let keys = parse_expr_list lx Lexer.RBRACKET in
          Map_get (name, keys)
        | _ -> error lx "expected '.' or '[' after identifier %s" name))
  | got, _ -> error lx "expected expression, found %s" (Lexer.token_to_string got)

and parse_expr_list lx closer =
  if accept lx closer then []
  else begin
    let rec go acc =
      let e = parse_expr lx in
      if accept lx Lexer.COMMA then go (e :: acc)
      else begin
        expect lx closer;
        List.rev (e :: acc)
      end
    in
    go []
  end

(* -- Statements ---------------------------------------------------------- *)

let rec parse_stmts lx =
  let rec go acc =
    ignore (accept lx Lexer.SEMI);
    if fst (Lexer.peek lx) = Lexer.RBRACE then List.rev acc
    else go (parse_stmt lx :: acc)
  in
  go []

and parse_block_body lx =
  expect lx Lexer.LBRACE;
  let stmts = parse_stmts lx in
  expect lx Lexer.RBRACE;
  stmts

and parse_stmt lx =
  match Lexer.next lx with
  | Lexer.IDENT "if", _ ->
    expect lx Lexer.LPAREN;
    let c = parse_expr lx in
    expect lx Lexer.RPAREN;
    let th = parse_block_body lx in
    let el =
      if fst (Lexer.peek lx) = Lexer.IDENT "else" then begin
        ignore (Lexer.next lx);
        parse_block_body lx
      end
      else []
    in
    If (c, th, el)
  | Lexer.IDENT "repeat", _ ->
    let n = Int64.to_int (expect_int lx) in
    Loop (n, parse_block_body lx)
  | Lexer.IDENT "forward", _ ->
    expect lx Lexer.LPAREN;
    let e = parse_expr lx in
    expect lx Lexer.RPAREN;
    Forward e
  | Lexer.IDENT "drop", _ -> Drop
  | Lexer.IDENT "nop", _ -> Nop
  | Lexer.IDENT "punt", _ ->
    expect lx Lexer.LPAREN;
    let d = expect_ident lx in
    expect lx Lexer.RPAREN;
    Punt d
  | Lexer.IDENT "push", _ ->
    expect lx Lexer.LPAREN;
    let h = expect_ident lx in
    expect lx Lexer.RPAREN;
    Push_header h
  | Lexer.IDENT "pop", _ ->
    expect lx Lexer.LPAREN;
    let h = expect_ident lx in
    expect lx Lexer.RPAREN;
    Pop_header h
  | Lexer.IDENT "drpc", _ ->
    let svc = expect_ident lx in
    expect lx Lexer.LPAREN;
    let args = parse_expr_list lx Lexer.RPAREN in
    Call (svc, args)
  | Lexer.IDENT "delete", _ ->
    let m = expect_ident lx in
    expect lx Lexer.LBRACKET;
    let keys = parse_expr_list lx Lexer.RBRACKET in
    Map_del (m, keys)
  | Lexer.IDENT name, _ -> parse_assignment lx name
  | got, _ -> error lx "expected statement, found %s" (Lexer.token_to_string got)

(* lvalue "=" expr | lvalue "+=" expr, where lvalue is
   meta.x | header.field | map[keys] *)
and parse_assignment lx name =
  match Lexer.next lx with
  | Lexer.DOT, _ ->
    let f = expect_ident lx in
    let op, _ = Lexer.next lx in
    let rhs = parse_expr lx in
    (match op, name with
     | Lexer.OP "=", "meta" -> Set_meta (f, rhs)
     | Lexer.OP "=", _ -> Set_field (name, f, rhs)
     | Lexer.OP "+=", "meta" -> Set_meta (f, Bin (Add, Meta f, rhs))
     | Lexer.OP "+=", _ -> Set_field (name, f, Bin (Add, Field (name, f), rhs))
     | got, _ -> error lx "expected = or +=, found %s" (Lexer.token_to_string got))
  | Lexer.LBRACKET, _ ->
    let keys = parse_expr_list lx Lexer.RBRACKET in
    let op, _ = Lexer.next lx in
    let rhs = parse_expr lx in
    (match op with
     | Lexer.OP "=" -> Map_put (name, keys, rhs)
     | Lexer.OP "+=" -> Map_incr (name, keys, rhs)
     | got -> error lx "expected = or +=, found %s" (Lexer.token_to_string got))
  | got, _ ->
    error lx "expected '.' or '[' after %s, found %s" name
      (Lexer.token_to_string got)

(* -- Declarations --------------------------------------------------------- *)

let parse_header lx =
  let hdr_name = expect_ident lx in
  expect lx Lexer.LBRACE;
  let rec fields acc =
    let f = expect_ident lx in
    expect lx Lexer.COLON;
    let w = Int64.to_int (expect_int lx) in
    if accept lx Lexer.COMMA then fields ((f, w) :: acc)
    else begin
      expect lx Lexer.RBRACE;
      List.rev ((f, w) :: acc)
    end
  in
  { hdr_name; hdr_fields = fields [] }

let parse_parse_rule lx =
  let pr_name = expect_ident lx in
  expect lx Lexer.COLON;
  let rec headers acc =
    let h = expect_ident lx in
    if accept lx Lexer.ARROW then headers (h :: acc) else List.rev (h :: acc)
  in
  { pr_name; pr_headers = headers [] }

let encoding_of_name lx = function
  | "auto" -> Enc_auto
  | "registers" -> Enc_registers
  | "flow_state" -> Enc_flow_state
  | "stateful_table" -> Enc_stateful_table
  | s -> error lx "unknown map encoding %s" s

let parse_map lx =
  let map_name = expect_ident lx in
  expect lx Lexer.LT_ANGLE;
  let key_arity = Int64.to_int (expect_int lx) in
  expect lx Lexer.COMMA;
  let map_size = Int64.to_int (expect_int lx) in
  let encoding =
    if accept lx Lexer.COMMA then encoding_of_name lx (expect_ident lx)
    else Enc_auto
  in
  expect lx Lexer.GT_ANGLE;
  { map_name; key_arity; map_size; encoding }

let match_kind_of_name lx = function
  | "exact" -> Exact
  | "lpm" -> Lpm
  | "ternary" -> Ternary
  | "range" -> Range
  | s -> error lx "unknown match kind %s" s

let parse_table lx =
  let tbl_name = expect_ident lx in
  let tbl_size =
    if accept lx Lexer.LPAREN then begin
      (match Lexer.next lx with
       | Lexer.IDENT "size", _ -> ()
       | got, _ -> error lx "expected 'size', found %s" (Lexer.token_to_string got));
      let n = Int64.to_int (expect_int lx) in
      expect lx Lexer.RPAREN;
      n
    end
    else 1024
  in
  expect lx Lexer.LBRACE;
  (match Lexer.next lx with
   | Lexer.IDENT "keys", _ -> ()
   | got, _ -> error lx "expected 'keys', found %s" (Lexer.token_to_string got));
  expect lx Lexer.COLON;
  (* keys: expr:kind, ... — the expression must not consume the
     ':kind' part, so we parse at a level above comparisons? No:
     ':' is not an operator, so plain parse works. *)
  let rec keys acc =
    let e = parse_expr lx in
    expect lx Lexer.COLON;
    let k = match_kind_of_name lx (expect_ident lx) in
    if accept lx Lexer.COMMA then keys ((e, k) :: acc)
    else List.rev ((e, k) :: acc)
  in
  let keys = keys [] in
  let actions = ref [] in
  let default = ref None in
  let rec items () =
    match fst (Lexer.peek lx) with
    | Lexer.IDENT "action" ->
      ignore (Lexer.next lx);
      let act_name = expect_ident lx in
      expect lx Lexer.LPAREN;
      let rec params acc =
        match Lexer.next lx with
        | Lexer.RPAREN, _ -> List.rev acc
        | Lexer.IDENT p, _ ->
          if accept lx Lexer.COMMA then params (p :: acc)
          else begin
            expect lx Lexer.RPAREN;
            List.rev (p :: acc)
          end
        | got, _ ->
          error lx "expected parameter, found %s" (Lexer.token_to_string got)
      in
      let params = params [] in
      let body = parse_block_body lx in
      actions := { act_name; params; body } :: !actions;
      items ()
    | Lexer.IDENT "default" ->
      ignore (Lexer.next lx);
      expect lx Lexer.COLON;
      let name = expect_ident lx in
      expect lx Lexer.LPAREN;
      let rec args acc =
        match Lexer.next lx with
        | Lexer.RPAREN, _ -> List.rev acc
        | Lexer.INT v, _ ->
          if accept lx Lexer.COMMA then args (v :: acc)
          else begin
            expect lx Lexer.RPAREN;
            List.rev (v :: acc)
          end
        | got, _ ->
          error lx "expected integer argument, found %s"
            (Lexer.token_to_string got)
      in
      default := Some (name, args []);
      items ()
    | Lexer.RBRACE ->
      ignore (Lexer.next lx)
    | got -> error lx "expected action/default/}, found %s" (Lexer.token_to_string got)
  in
  items ();
  let tbl_actions = List.rev !actions in
  let default_action =
    match !default with
    | Some d -> d
    | None ->
      (match tbl_actions with
       | a :: _ -> (a.act_name, List.map (fun _ -> 0L) a.params)
       | [] -> error lx "table %s has no actions" tbl_name)
  in
  { tbl_name; keys; tbl_actions; default_action; tbl_size }

let parse_block lx =
  let blk_name = expect_ident lx in
  let blk_body = parse_block_body lx in
  { blk_name; blk_body }

(** Parse a whole program from source text. *)
let parse_program src =
  let lx = Lexer.create src in
  (match Lexer.next lx with
   | Lexer.IDENT "program", _ -> ()
   | got, _ -> error lx "expected 'program', found %s" (Lexer.token_to_string got));
  let prog_name = expect_ident lx in
  let owner =
    if fst (Lexer.peek lx) = Lexer.IDENT "owner" then begin
      ignore (Lexer.next lx);
      expect_ident lx
    end
    else "infra"
  in
  expect lx Lexer.LBRACE;
  let headers = ref [] and parser_rules = ref [] in
  let maps = ref [] and pipeline = ref [] in
  let rec items () =
    match Lexer.next lx with
    | Lexer.IDENT "header", _ ->
      headers := parse_header lx :: !headers;
      items ()
    | Lexer.IDENT "parse", _ ->
      parser_rules := parse_parse_rule lx :: !parser_rules;
      items ()
    | Lexer.IDENT "map", _ ->
      maps := parse_map lx :: !maps;
      items ()
    | Lexer.IDENT "table", _ ->
      pipeline := Table (parse_table lx) :: !pipeline;
      items ()
    | Lexer.IDENT "block", _ ->
      pipeline := Block (parse_block lx) :: !pipeline;
      items ()
    | Lexer.RBRACE, _ -> ()
    | got, _ ->
      error lx "expected header/parse/map/table/block/}, found %s"
        (Lexer.token_to_string got)
  in
  items ();
  (match Lexer.next lx with
   | Lexer.EOF, _ -> ()
   | got, _ ->
     error lx "trailing input: %s" (Lexer.token_to_string got));
  (* default headers/parser when the program declares none, mirroring
     Builder.program's convention *)
  let headers =
    if !headers = [] then Builder.standard_headers
    else Builder.standard_headers @ List.rev !headers
  in
  let parser_rules =
    if !parser_rules = [] then Builder.standard_parser
    else Builder.standard_parser @ List.rev !parser_rules
  in
  { prog_name; owner; headers; parser = parser_rules; maps = List.rev !maps;
    pipeline = List.rev !pipeline }

let parse_program_result src =
  match parse_program src with
  | p -> Ok p
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "line %d, column %d: %s" pos.Lexer.line pos.Lexer.col msg)
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "line %d, column %d: %s" pos.Lexer.line pos.Lexer.col msg)

(* -- Printer (emits parseable text) --------------------------------------- *)

let binop_to_syntax = Pretty.binop_to_string

let rec print_expr buf e =
  let pe = print_expr buf in
  match e with
  | Const v -> Buffer.add_string buf (Int64.to_string v)
  | Field (h, f) -> Buffer.add_string buf (h ^ "." ^ f)
  | Meta m -> Buffer.add_string buf ("meta." ^ m)
  | Param p -> Buffer.add_string buf ("$" ^ p)
  | Map_get (m, keys) ->
    Buffer.add_string buf m;
    Buffer.add_char buf '[';
    print_list buf keys;
    Buffer.add_char buf ']'
  | Bin (op, a, b) ->
    Buffer.add_char buf '(';
    pe a;
    Buffer.add_string buf (" " ^ binop_to_syntax op ^ " ");
    pe b;
    Buffer.add_char buf ')'
  | Un (op, e) ->
    Buffer.add_string buf (Pretty.unop_to_string op);
    Buffer.add_char buf '(';
    pe e;
    Buffer.add_char buf ')'
  | Hash (alg, es) ->
    Buffer.add_string buf (Pretty.hash_to_string alg);
    Buffer.add_char buf '(';
    print_list buf es;
    Buffer.add_char buf ')'
  | Time -> Buffer.add_string buf "now()"

and print_list buf es =
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ", ";
      print_expr buf e)
    es

let rec print_stmt buf indent s =
  let pad = String.make indent ' ' in
  Buffer.add_string buf pad;
  match s with
  | Nop -> Buffer.add_string buf "nop\n"
  | Drop -> Buffer.add_string buf "drop\n"
  | Punt d -> Buffer.add_string buf (Printf.sprintf "punt(%s)\n" d)
  | Push_header h -> Buffer.add_string buf (Printf.sprintf "push(%s)\n" h)
  | Pop_header h -> Buffer.add_string buf (Printf.sprintf "pop(%s)\n" h)
  | Forward e ->
    Buffer.add_string buf "forward(";
    print_expr buf e;
    Buffer.add_string buf ")\n"
  | Set_field (h, f, e) ->
    Buffer.add_string buf (h ^ "." ^ f ^ " = ");
    print_expr buf e;
    Buffer.add_char buf '\n'
  | Set_meta (m, e) ->
    Buffer.add_string buf ("meta." ^ m ^ " = ");
    print_expr buf e;
    Buffer.add_char buf '\n'
  | Map_put (m, keys, v) ->
    Buffer.add_string buf m;
    Buffer.add_char buf '[';
    print_list buf keys;
    Buffer.add_string buf "] = ";
    print_expr buf v;
    Buffer.add_char buf '\n'
  | Map_incr (m, keys, v) ->
    Buffer.add_string buf m;
    Buffer.add_char buf '[';
    print_list buf keys;
    Buffer.add_string buf "] += ";
    print_expr buf v;
    Buffer.add_char buf '\n'
  | Map_del (m, keys) ->
    Buffer.add_string buf ("delete " ^ m ^ "[");
    print_list buf keys;
    Buffer.add_string buf "]\n"
  | Call (svc, args) ->
    Buffer.add_string buf ("drpc " ^ svc ^ "(");
    print_list buf args;
    Buffer.add_string buf ")\n"
  | If (c, th, el) ->
    Buffer.add_string buf "if (";
    print_expr buf c;
    Buffer.add_string buf ") {\n";
    List.iter (print_stmt buf (indent + 2)) th;
    Buffer.add_string buf (pad ^ "}");
    if el <> [] then begin
      Buffer.add_string buf " else {\n";
      List.iter (print_stmt buf (indent + 2)) el;
      Buffer.add_string buf (pad ^ "}")
    end;
    Buffer.add_char buf '\n'
  | Loop (n, body) ->
    Buffer.add_string buf (Printf.sprintf "repeat %d {\n" n);
    List.iter (print_stmt buf (indent + 2)) body;
    Buffer.add_string buf (pad ^ "}\n")

let encoding_to_name = function
  | Enc_auto -> "auto"
  | Enc_registers -> "registers"
  | Enc_flow_state -> "flow_state"
  | Enc_stateful_table -> "stateful_table"

let print_element buf = function
  | Table t ->
    Buffer.add_string buf
      (Printf.sprintf "  table %s(size %d) {\n    keys: " t.tbl_name t.tbl_size);
    List.iteri
      (fun i (e, k) ->
        if i > 0 then Buffer.add_string buf ", ";
        print_expr buf e;
        Buffer.add_string buf (":" ^ Pretty.match_kind_to_string k))
      t.keys;
    Buffer.add_char buf '\n';
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf "    action %s(%s) {\n" a.act_name
             (String.concat ", " a.params));
        List.iter (print_stmt buf 6) a.body;
        Buffer.add_string buf "    }\n")
      t.tbl_actions;
    let dname, dargs = t.default_action in
    Buffer.add_string buf
      (Printf.sprintf "    default: %s(%s)\n  }\n" dname
         (String.concat ", " (List.map Int64.to_string dargs)))
  | Block b ->
    Buffer.add_string buf (Printf.sprintf "  block %s {\n" b.blk_name);
    List.iter (print_stmt buf 4) b.blk_body;
    Buffer.add_string buf "  }\n"

(** Print a program in the surface syntax. Standard headers and parser
    rules (the Builder defaults) are omitted on output and re-added on
    parse, so Builder-constructed programs round-trip. *)
let print (p : program) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %s owner %s {\n" p.prog_name p.owner);
  List.iter
    (fun h ->
      if not (List.memq h Builder.standard_headers)
         && not
              (List.exists
                 (fun (s : header_decl) -> s.hdr_name = h.hdr_name)
                 Builder.standard_headers)
      then begin
        Buffer.add_string buf (Printf.sprintf "  header %s { " h.hdr_name);
        List.iteri
          (fun i (f, w) ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Printf.sprintf "%s:%d" f w))
          h.hdr_fields;
        Buffer.add_string buf " }\n"
      end)
    p.headers;
  List.iter
    (fun r ->
      if
        not
          (List.exists
             (fun (s : parser_rule) -> s.pr_name = r.pr_name)
             Builder.standard_parser)
      then
        Buffer.add_string buf
          (Printf.sprintf "  parse %s: %s\n" r.pr_name
             (String.concat " -> " r.pr_headers)))
    p.parser;
  List.iter
    (fun (m : map_decl) ->
      Buffer.add_string buf
        (Printf.sprintf "  map %s<%d, %d, %s>\n" m.map_name m.key_arity
           m.map_size (encoding_to_name m.encoding)))
    p.maps;
  List.iter (print_element buf) p.pipeline;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Parse, then typecheck; the convenience entry point for tools. *)
let load src =
  match parse_program_result src with
  | Error _ as e -> e
  | Ok p ->
    (match Typecheck.check_program p with
     | Ok () -> Ok p
     | Error es ->
       Error (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Typecheck.pp_error) es))
