(** Energy-aware consolidation (§3.3).

    "By leveraging this fungibility layer, FlexNet is able to shuffle
    resources around and optimize for the current workload regarding
    network energy consumption." At low load, program elements are
    consolidated onto as few devices as possible and the emptied devices
    are powered down; when load rises they are spread back out. *)

open Flexbpf

type move = { moved_element : string; from_device : string; to_device : string }

type consolidation = {
  moves : move list;
  powered_off : string list;
  watts_before : float;
  watts_after : float;
}

let static_watts dev =
  (Targets.Arch.profile_of_kind (Targets.Device.kind dev)).Targets.Arch.static_watts

let total_watts devices =
  List.fold_left
    (fun acc d ->
      acc +. (if Targets.Device.powered_on d then static_watts d else 2.))
    0. devices

(* Re-install one element from [src] onto [dst], carrying map state. *)
let relocate ~(prog : Ast.program) src dst name =
  match Ast.find_element prog name with
  | None -> false
  | Some element ->
    let idx =
      Option.value
        (List.find_index (fun e -> Ast.element_name e = name) prog.Ast.pipeline)
        ~default:0
    in
    let carried =
      Compose.element_maps element
      |> List.sort_uniq compare
      |> List.filter_map (fun m ->
             Option.map (fun st -> (m, State.snapshot st))
               (Targets.Device.map_state src m))
    in
    (match Targets.Device.install dst ~ctx:prog ~order:idx element with
     | Ok _ ->
       ignore (Targets.Device.uninstall src name);
       List.iter
         (fun (m, snap) ->
           ignore (Targets.Device.load_map_snapshot dst m snap))
         carried;
       true
     | Error _ -> false)

(** Consolidate the elements of [prog] (placed on [placement]) onto the
    fewest devices: drain the least-utilized devices into the most-
    utilized ones, power off devices that end up empty.

    Note: consolidation deliberately ignores the path-order constraint —
    it is an energy/performance trade the operator opts into at low load
    (the controller routes traffic through the consolidated slice). *)
let consolidate (placement : Placement.t) =
  let prog = placement.Placement.prog in
  let devices = placement.Placement.path in
  let watts_before = total_watts devices in
  let by_util_asc =
    List.filter (fun d -> Targets.Device.installed_names d <> []) devices
    |> List.sort (fun a b ->
           compare (Targets.Device.utilization a) (Targets.Device.utilization b))
  in
  let moves = ref [] in
  List.iter
    (fun src ->
      (* try to drain src into the other occupied devices, fullest first *)
      let targets =
        List.filter
          (fun d ->
            d != src
            && Targets.Device.powered_on d
            && Targets.Device.installed_names d <> [])
          devices
        |> List.sort (fun a b ->
               compare (Targets.Device.utilization b) (Targets.Device.utilization a))
      in
      List.iter
        (fun name ->
          let rec try_targets = function
            | [] -> ()
            | dst :: rest ->
              if relocate ~prog src dst name then begin
                moves :=
                  { moved_element = name; from_device = Targets.Device.id src;
                    to_device = Targets.Device.id dst }
                  :: !moves;
                placement.Placement.where <-
                  (name, dst)
                  :: List.filter (fun (n, _) -> n <> name)
                       placement.Placement.where
              end
              else try_targets rest
          in
          try_targets targets)
        (Targets.Device.installed_names src))
    by_util_asc;
  let powered_off =
    List.filter_map
      (fun d ->
        if Targets.Device.installed_names d = [] && Targets.Device.powered_on d
        then begin
          Targets.Device.set_power d false;
          Some (Targets.Device.id d)
        end
        else None)
      devices
  in
  { moves = List.rev !moves; powered_off; watts_before;
    watts_after = total_watts devices }

(** Power every device back on (load rose again). *)
let expand devices = List.iter (fun d -> Targets.Device.set_power d true) devices
