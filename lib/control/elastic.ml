(** Elastic scaling policies (§1.1): defenses and apps "dynamically
    scale in and out based on attack traffic volume".

    Two policies share the sampling/cooldown/actuation machinery, which
    is mechanism-agnostic (the actuator injects or removes replicas via
    the incremental compiler):

    - threshold ([create]): drive replica count toward
      ceil(load / capacity_per_replica);
    - price signal ([create_price]): scale out while the marginal
      utility of the next replica exceeds the quoted per-replica rent,
      in when the last replica's marginal utility drops below it — the
      market economy's demand curve applied to replica count. *)

type t = {
  sim : Netsim.Sim.t;
  name : string;
  decide : int -> int; (* current replicas -> desired replicas *)
  min_replicas : int;
  max_replicas : int;
  cooldown : float;
  scale_to : int -> unit; (* actuator: set replica count *)
  signal : unit -> float; (* last-sampled signal, recorded on the span *)
  signal_attr : string; (* span attribute name: "load" or "price" *)
  mutable replicas : int;
  mutable last_change : float;
  mutable running : bool;
  mutable events : (float * int) list; (* (time, new count), newest first *)
}

let clamp t n = max t.min_replicas (min t.max_replicas n)

let step t =
  let want = clamp t (t.decide t.replicas) in
  let now = Netsim.Sim.now t.sim in
  if want <> t.replicas && now -. t.last_change >= t.cooldown then begin
    let from = t.replicas in
    t.replicas <- want;
    t.last_change <- now;
    t.events <- (now, want) :: t.events;
    let scope = Netsim.Sim.obs t.sim in
    Obs.Metrics.incr (Obs.Scope.metrics scope)
      ~labels:[ ("policy", t.name) ]
      "elastic.scale_events";
    Obs.Trace.with_span (Obs.Scope.trace scope) "elastic.scale"
      ~attrs:
        [ ("policy", Obs.Trace.S t.name);
          ("from", Obs.Trace.I from);
          ("to", Obs.Trace.I want);
          (t.signal_attr, Obs.Trace.F (t.signal ())) ]
      (fun _ -> t.scale_to want)
  end

let make ~min_replicas ~max_replicas ~cooldown ~period ~sim ~name ~decide
    ~signal ~signal_attr ~scale_to =
  let t =
    { sim; name; decide; min_replicas; max_replicas; cooldown; scale_to;
      signal; signal_attr; replicas = min_replicas; last_change = -1e9;
      running = true; events = [] }
  in
  Netsim.Sim.every sim ~period (fun () ->
      if t.running then step t;
      t.running);
  t

let create ?(min_replicas = 0) ?(max_replicas = 8) ?(cooldown = 0.2)
    ?(period = 0.1) ~sim ~name ~sample ~capacity_per_replica ~scale_to () =
  let decide _current =
    let load = sample () in
    if load <= 0. then min_replicas
    else int_of_float (ceil (load /. capacity_per_replica))
  in
  make ~min_replicas ~max_replicas ~cooldown ~period ~sim ~name ~decide
    ~signal:sample ~signal_attr:"load" ~scale_to

(* Desired count under a price signal: marginal utility is decreasing,
   so the target is the number of replicas whose marginal value still
   meets the rent — scale out while mu(n) > price, in when mu(n-1) has
   dropped below it. Evaluated from scratch each step, so the policy
   follows the price both ways. *)
let create_price ?(min_replicas = 0) ?(max_replicas = 8) ?(cooldown = 0.2)
    ?(period = 0.1) ~sim ~name ~price ~marginal_utility ~scale_to () =
  let decide _current =
    let p = price () in
    let n = ref 0 in
    while !n < max_replicas && marginal_utility !n >= p do
      incr n
    done;
    !n
  in
  make ~min_replicas ~max_replicas ~cooldown ~period ~sim ~name ~decide
    ~signal:price ~signal_attr:"price" ~scale_to

let stop t = t.running <- false
let replicas t = t.replicas
let events t = List.rev t.events
let name t = t.name

(** A [scale_to] actuator driving a registered controller app over a
    fixed device list through the plan path: replica i lives on the
    i-th device, so scaling to [n] injects the app (via
    [Controller.inject_on], i.e. a plan through the reconfiguration
    engine) on devices [0..n-1] missing it and retires it from the
    rest. [on_retire] runs just before a replica is removed — e.g. to
    harvest counters before the uninstall releases the maps;
    [on_inject] just after one comes up. *)
let app_actuator ?(on_inject = fun (_ : Targets.Device.t) -> ())
    ?(on_retire = fun (_ : Targets.Device.t) -> ()) ~controller ~uri ~devices
    () =
  fun n ->
    let current = Controller.app_locations controller uri in
    List.iteri
      (fun i dev ->
        let present = List.mem (Targets.Device.id dev) current in
        if i < n && not present then begin
          match Controller.inject_on controller uri ~device:dev with
          | Ok () -> on_inject dev
          | Error _ -> ()
        end
        else if i >= n && present then begin
          on_retire dev;
          ignore (Controller.retire_from controller uri ~device:dev)
        end)
      devices
