(** Network nodes: hosts, NICs, and switches.

    A node is deliberately thin — it owns ports (outgoing links) and a
    packet handler. The handler is pluggable so that the same node type
    can run a plain forwarding function, a programmable-device runtime, or
    a host transport endpoint. *)

type kind = Host | Nic | Switch

type t = {
  id : int;
  name : string;
  kind : kind;
  mutable ports : Link.t option array;
  mutable handler : t -> in_port:int -> Packet.t -> unit;
  mutable rx_packets : int;
  mutable dropped : int;
}

let kind_to_string = function Host -> "host" | Nic -> "nic" | Switch -> "switch"

let create ~id ~name ~kind ?(num_ports = 8) () =
  { id; name; kind; ports = Array.make num_ports None;
    handler = (fun _ ~in_port:_ _ -> ()); rx_packets = 0; dropped = 0 }

let set_handler t f = t.handler <- f

let port_count t = Array.length t.ports

let ensure_port t p =
  if p >= Array.length t.ports then begin
    let ports = Array.make (Stdlib.max (p + 1) (2 * Array.length t.ports)) None in
    Array.blit t.ports 0 ports 0 (Array.length t.ports);
    t.ports <- ports
  end

let attach t ~port link =
  ensure_port t port;
  t.ports.(port) <- Some link

let link t ~port =
  if port < Array.length t.ports then t.ports.(port) else None

(** Send out of [port]; counts a drop if the port is unwired or the link
    queue rejects the packet. *)
let send t ~port pkt =
  match link t ~port with
  | Some l -> if not (Link.transmit l pkt) then t.dropped <- t.dropped + 1
  | None -> t.dropped <- t.dropped + 1

let receive t ~in_port pkt =
  t.rx_packets <- t.rx_packets + 1;
  t.handler t ~in_port pkt

let pp ppf t = Fmt.pf ppf "%s(%s#%d)" t.name (kind_to_string t.kind) t.id
