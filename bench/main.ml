(* FlexNet benchmark harness.

   Usage:
     dune exec bench/main.exe            # all experiments E1..E18 + F1 + A1 A2
     dune exec bench/main.exe E5 E7      # selected experiments
     dune exec bench/main.exe -- --micro # bechamel microbenchmarks
     dune exec bench/main.exe -- --micro --quota 0.05 --out BENCH_micro.json
     dune exec bench/main.exe -- --micro --check BENCH_micro.json --tolerance 0.35
                                         # CI regression gate: exits 1 when a
                                         # compiled-path speedup falls below
                                         # baseline * (1 - tolerance)

   Each experiment regenerates one table for a claim of the paper; see
   DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
   recorded results. *)

let experiments =
  [ ("E1", E01_hitless.run);
    ("E2", E02_reconfig_ops.run);
    ("E3", E03_fungibility.run);
    ("E4", E04_fungible_gc.run);
    ("E5", E05_incremental.run);
    ("E6", E06_merge.run);
    ("E7", E07_migration.run);
    ("E8", E08_elastic_defense.run);
    ("E9", E09_tenant_churn.run);
    ("E10", E10_energy.run);
    ("E11", E11_drpc.run);
    ("E12", E12_raft.run);
    ("E13", E13_cc_workloads.run);
    ("E14", E14_faults.run);
    ("E15", E15_observability.run);
    ("E16", E16_multicore.run);
    ("E17", E17_virtualization.run);
    ("E18", E18_economy.run);
    ("F1", F01_whole_stack.run);
    ("A1", A01_adjacency.run);
    ("A2", A02_consistency.run) ]

(* Pull "--flag value" out of an arg list; returns (value, rest). *)
let take_opt flag args =
  let rec go acc = function
    | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  go [] args

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quota, args = take_opt "--quota" args in
  let out, args = take_opt "--out" args in
  let check, args = take_opt "--check" args in
  let tolerance, args = take_opt "--tolerance" args in
  if List.mem "--micro" args then
    Micro.run ?quota:(Option.map float_of_string quota) ?out ?check
      ?tolerance:(Option.map float_of_string tolerance) ()
  else begin
    let selected =
      match List.filter (fun a -> a <> "--micro") args with
      | [] -> List.map fst experiments
      | sel -> sel
    in
    print_endline "== FlexNet experiment harness ==";
    print_endline
      "(vision-paper reproduction: each table reifies a claim; see DESIGN.md)";
    List.iter
      (fun id ->
        match List.assoc_opt id experiments with
        | Some run -> run ()
        | None -> Printf.printf "unknown experiment %s\n" id)
      selected
  end
