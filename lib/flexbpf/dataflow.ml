(** A generic monotone dataflow / abstract-interpretation framework
    over [Ast.program] (§2, §3.1).

    The verifier's semantic passes started life as ad-hoc recursive
    walks; this module factors the machinery they share — and that the
    future domain-sharded datapath needs — into three layers:

    - {!Cfg}: a control-flow graph per pipeline element. FlexBPF is
      structured (no goto, statically bounded loops), so the CFG is
      reducible by construction: every node carries the same
      diagnostic path string the original walks used
      (["elem/stmt.1.then.0"], ["tbl/key.2"], …) plus the static
      iteration multipliers of its enclosing loops.
    - {!DOMAIN}/{!Solver}: an abstract-domain signature (bottom, join,
      widening, equality) and a worklist fixpoint solver over a CFG,
      forward or backward, with optional widening after a visit budget,
      an optional edge-liveness filter (for branch pruning), and an
      acyclic mode that ignores loop back edges (for WCET longest-path
      computations).
    - Client analyses: {!Shard_safety} (map access classification for
      the parallel datapath) and {!Cost} (static per-packet WCET) live
      here; the value-range interval pass is re-hosted on the same CFG
      and solver in [Verifier].

    Everything is pure and deterministic: same program, same CFG, same
    fixpoint — regardless of the solver's initial worklist order, which
    only monotone transfer functions can guarantee and the property
    tests check. *)

open Ast

module SMap = Map.Make (String)

(* -- Constant folding -------------------------------------------------- *)

(* Mirrors [Interp] exactly: total division ([x/0 = 0], [x%0 = 0]),
   shift amounts masked to 6 bits, comparisons producing 0/1, and
   logical operators over truthiness. Anything touching packet, map,
   or clock state is not a constant. *)

let truthy v = v <> 0L
let of_bool b = if b then 1L else 0L

let rec const_eval = function
  | Const v -> Some v
  | Field _ | Meta _ | Param _ | Map_get _ | Hash _ | Time -> None
  | Un (op, e) ->
    Option.map
      (fun x ->
        match op with
        | Not -> of_bool (not (truthy x))
        | Neg -> Int64.neg x
        | Bnot -> Int64.lognot x)
      (const_eval e)
  | Bin (op, a, b) -> (
    match const_eval a, const_eval b with
    | Some x, Some y ->
      Some
        (match op with
         | Add -> Int64.add x y
         | Sub -> Int64.sub x y
         | Mul -> Int64.mul x y
         | Div -> if y = 0L then 0L else Int64.div x y
         | Mod -> if y = 0L then 0L else Int64.rem x y
         | Band -> Int64.logand x y
         | Bor -> Int64.logor x y
         | Bxor -> Int64.logxor x y
         | Shl -> Int64.shift_left x (Int64.to_int y land 63)
         | Shr -> Int64.shift_right_logical x (Int64.to_int y land 63)
         | Eq -> of_bool (x = y)
         | Neq -> of_bool (x <> y)
         | Lt -> of_bool (x < y)
         | Le -> of_bool (x <= y)
         | Gt -> of_bool (x > y)
         | Ge -> of_bool (x >= y)
         | Land -> of_bool (truthy x && truthy y)
         | Lor -> of_bool (truthy x || truthy y))
    | _ -> None)

let const_truth e = Option.map truthy (const_eval e)

(* -- The control-flow graph -------------------------------------------- *)

module Cfg = struct
  type branch = {
    cond : expr;
    br_stmt : stmt; (* the whole [If] *)
    mutable then_dst : int; (* patched once both arms are built *)
    mutable else_dst : int;
  }

  type kind =
    | Entry
    | Exit
    | Atom of stmt (* any non-control statement *)
    | Branch of branch
    | Join (* post-[If] merge *)
    | Loop_head of int * stmt (* bound, the whole [Loop] *)
    | Loop_exit
    | Key of expr * int (* table key expression *)
    | Action_select (* table lookup / dispatch point *)
    | Action_entry of string

  type node = {
    id : int;
    kind : kind;
    path : string; (* verifier-compatible diagnostic location *)
    vr_iters : int; (* product of [max 1 bound] of enclosing loops *)
    cost_iters : int; (* product of [max 0 bound] of enclosing loops *)
  }

  type t = {
    elem : string;
    nodes : node array;
    entry : int;
    exit : int;
    succs : int list array; (* forward edges only: the CFG minus back
                               edges is a DAG in id order *)
    preds : int list array;
    back_succs : int list array; (* loop body end -> loop head *)
    back_preds : int list array;
  }

  let stmt_path base i = Printf.sprintf "%s/stmt.%d" base i
  let sub_path base tag i = Printf.sprintf "%s.%s.%d" base tag i

  type builder = {
    mutable bnodes : node list; (* reversed *)
    mutable bn : int;
    mutable bedges : (int * int) list; (* reversed *)
    mutable bback : (int * int) list;
  }

  let add_node b ~kind ~path ~vr ~cost =
    let id = b.bn in
    b.bn <- id + 1;
    b.bnodes <- { id; kind; path; vr_iters = vr; cost_iters = cost } :: b.bnodes;
    id

  let add_edge b src dst = b.bedges <- (src, dst) :: b.bedges
  let add_back b src dst = b.bback <- (src, dst) :: b.bback

  let rec build_stmt b ~vr ~cost ~pred ~path s =
    match s with
    | If (c, th, el) ->
      let br = { cond = c; br_stmt = s; then_dst = -1; else_dst = -1 } in
      let bid = add_node b ~kind:(Branch br) ~path ~vr ~cost in
      add_edge b pred bid;
      let t_end = build_branch b ~vr ~cost ~pred:bid ~base:path ~tag:"then" th in
      let e_end = build_branch b ~vr ~cost ~pred:bid ~base:path ~tag:"else" el in
      let join = add_node b ~kind:Join ~path ~vr ~cost in
      if t_end = bid then br.then_dst <- join
      else begin
        br.then_dst <- bid + 1; (* first node of the then arm *)
        add_edge b t_end join
      end;
      if e_end = bid then br.else_dst <- join
      else begin
        br.else_dst <- t_end + 1; (* first node of the else arm *)
        add_edge b e_end join
      end;
      if t_end = bid then add_edge b bid join;
      if e_end = bid then add_edge b bid join;
      join
    | Loop (n, body) ->
      let head = add_node b ~kind:(Loop_head (n, s)) ~path ~vr ~cost in
      add_edge b pred head;
      let body_end =
        build_branch b ~vr:(vr * max 1 n) ~cost:(cost * max 0 n) ~pred:head
          ~base:path ~tag:"body" body
      in
      let lexit = add_node b ~kind:Loop_exit ~path ~vr ~cost in
      if body_end = head then add_edge b head lexit
      else begin
        add_edge b body_end lexit;
        add_back b body_end head
      end;
      lexit
    | _ ->
      let id = add_node b ~kind:(Atom s) ~path ~vr ~cost in
      add_edge b pred id;
      id

  and build_seq b ~vr ~cost ~pred ~path_of stmts =
    List.fold_left
      (fun (pred, i) s ->
        (build_stmt b ~vr ~cost ~pred ~path:(path_of i) s, i + 1))
      (pred, 0) stmts
    |> fst

  and build_branch b ~vr ~cost ~pred ~base ~tag stmts =
    build_seq b ~vr ~cost ~pred ~path_of:(sub_path base tag) stmts

  let of_element el =
    let b = { bnodes = []; bn = 0; bedges = []; bback = [] } in
    let elem = element_name el in
    let entry = add_node b ~kind:Entry ~path:elem ~vr:1 ~cost:1 in
    let ends =
      match el with
      | Block blk ->
        [ build_seq b ~vr:1 ~cost:1 ~pred:entry
            ~path_of:(stmt_path blk.blk_name) blk.blk_body ]
      | Table t ->
        let kpred =
          List.fold_left
            (fun (pred, i) (e, _) ->
              let id =
                add_node b ~kind:(Key (e, i))
                  ~path:(Printf.sprintf "%s/key.%d" elem i) ~vr:1 ~cost:1
              in
              add_edge b pred id;
              (id, i + 1))
            (entry, 0) t.keys
          |> fst
        in
        let sel = add_node b ~kind:Action_select ~path:elem ~vr:1 ~cost:1 in
        add_edge b kpred sel;
        (match t.tbl_actions with
         | [] -> [ sel ]
         | acts ->
           List.map
             (fun a ->
               let base = elem ^ "/" ^ a.act_name in
               let ae =
                 add_node b ~kind:(Action_entry a.act_name) ~path:base ~vr:1
                   ~cost:1
               in
               add_edge b sel ae;
               build_seq b ~vr:1 ~cost:1 ~pred:ae ~path_of:(stmt_path base)
                 a.body)
             acts)
    in
    let exit = add_node b ~kind:Exit ~path:elem ~vr:1 ~cost:1 in
    List.iter (fun e -> add_edge b e exit) ends;
    let n = b.bn in
    let nodes = Array.of_list (List.rev b.bnodes) in
    let mk edges =
      let succs = Array.make n [] and preds = Array.make n [] in
      List.iter
        (fun (s, d) ->
          succs.(s) <- d :: succs.(s);
          preds.(d) <- s :: preds.(d))
        edges; (* [edges] is reversed, so consing restores insert order *)
      (succs, preds)
    in
    let succs, preds = mk b.bedges in
    let back_succs, back_preds = mk b.bback in
    { elem; nodes; entry; exit; succs; preds; back_succs; back_preds }

  let of_program prog = List.map of_element prog.pipeline

  (* loop heads are the only nodes with an incoming back edge *)
  let is_widening_point cfg id = cfg.back_preds.(id) <> []
end

(* -- The solver -------------------------------------------------------- *)

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t

  (** [widen previous next] — called instead of plain propagation at
      nodes with incoming back edges once the visit budget is spent.
      [join] is a correct (if non-accelerating) default on finite
      lattices. *)
  val widen : t -> t -> t
end

type direction = Forward | Backward

module Solver (D : DOMAIN) = struct
  type solution = {
    input : D.t array; (* fixpoint state entering each node *)
    output : D.t array; (* state leaving it: [transfer node input] *)
    steps : int; (* worklist pops until stabilization *)
  }

  let solve ?(direction = Forward) ?(widen_after = 8) ?(include_back = true)
      ?edge_live ?order (cfg : Cfg.t) ~init ~transfer =
    let n = Array.length cfg.nodes in
    let input = Array.make n D.bottom and output = Array.make n D.bottom in
    let visits = Array.make n 0 in
    let preds i =
      match direction with
      | Forward ->
        cfg.preds.(i) @ (if include_back then cfg.back_preds.(i) else [])
      | Backward ->
        cfg.succs.(i) @ (if include_back then cfg.back_succs.(i) else [])
    in
    let succs i =
      match direction with
      | Forward ->
        cfg.succs.(i) @ (if include_back then cfg.back_succs.(i) else [])
      | Backward ->
        cfg.preds.(i) @ (if include_back then cfg.back_preds.(i) else [])
    in
    let start = match direction with Forward -> cfg.entry | Backward -> cfg.exit in
    let live p i =
      match edge_live with
      | None -> true
      | Some f -> (
        match direction with Forward -> f cfg p i | Backward -> f cfg i p)
    in
    let q = Queue.create () and inq = Array.make n false in
    let push i =
      if not inq.(i) then begin
        inq.(i) <- true;
        Queue.push i q
      end
    in
    (match order with
     | Some o -> Array.iter push o
     | None -> for i = 0 to n - 1 do push i done);
    for i = 0 to n - 1 do
      push i (* any node the permutation missed still gets seeded *)
    done;
    let steps = ref 0 in
    while not (Queue.is_empty q) do
      incr steps;
      let i = Queue.pop q in
      inq.(i) <- false;
      let inc =
        if i = start then init
        else
          List.fold_left
            (fun acc p -> if live p i then D.join acc output.(p) else acc)
            D.bottom (preds i)
      in
      visits.(i) <- visits.(i) + 1;
      let inc =
        if visits.(i) > widen_after && Cfg.is_widening_point cfg i then
          D.widen input.(i) inc
        else inc
      in
      let out = transfer cfg.nodes.(i) inc in
      let first = visits.(i) = 1 in
      let changed = not (D.equal out output.(i)) in
      input.(i) <- inc;
      output.(i) <- out;
      if first || changed then List.iter push (succs i)
    done;
    { input; output; steps = !steps }

  let forward ?widen_after ?edge_live ?order cfg ~init ~transfer =
    solve ~direction:Forward ?widen_after ?edge_live ?order cfg ~init ~transfer

  let backward ?widen_after ?edge_live ?order cfg ~init ~transfer =
    solve ~direction:Backward ?widen_after ?edge_live ?order cfg ~init
      ~transfer

  (** Longest-path style solve over the loop-free skeleton: back edges
      are ignored, so loop bodies are charged through the static
      [cost_iters] multiplier on their nodes instead of by iteration. *)
  let acyclic ?edge_live ?order cfg ~init ~transfer =
    solve ~direction:Forward ~include_back:false ?edge_live ?order cfg ~init
      ~transfer
end

(* -- Shard-safety: map access classification --------------------------- *)

module Shard_safety = struct
  type access = Read | Incr | Put | Del

  type site = {
    s_access : access;
    s_path : string;
    s_rmw : bool;
        (* written value derives from a read of the same map *)
  }

  module SiteSet = Set.Make (struct
    type t = site

    let compare = Stdlib.compare
  end)

  (* The abstract domain: per-map sets of access sites, a finite union
     lattice (bottom = no accesses observed). *)
  module Facts = struct
    type t = SiteSet.t SMap.t

    let bottom = SMap.empty
    let equal = SMap.equal SiteSet.equal
    let join = SMap.union (fun _ a b -> Some (SiteSet.union a b))
    let widen = join
  end

  module FSolver = Solver (Facts)

  let add m site facts =
    SMap.update m
      (function
        | None -> Some (SiteSet.singleton site)
        | Some s -> Some (SiteSet.add site s))
      facts

  let rec reads_of ~path facts e =
    match e with
    | Const _ | Field _ | Meta _ | Param _ | Time -> facts
    | Map_get (m, keys) ->
      add m { s_access = Read; s_path = path; s_rmw = false }
        (List.fold_left (reads_of ~path) facts keys)
    | Bin (_, a, b) -> reads_of ~path (reads_of ~path facts a) b
    | Un (_, e) -> reads_of ~path facts e
    | Hash (_, es) -> List.fold_left (reads_of ~path) facts es

  let rec mentions_get m = function
    | Map_get (m', keys) -> m' = m || List.exists (mentions_get m) keys
    | Bin (_, a, b) -> mentions_get m a || mentions_get m b
    | Un (_, e) -> mentions_get m e
    | Hash (_, es) -> List.exists (mentions_get m) es
    | Const _ | Field _ | Meta _ | Param _ | Time -> false

  let stmt_facts ~path facts = function
    | Nop | Drop | Punt _ | Push_header _ | Pop_header _ -> facts
    | Set_field (_, _, e) | Set_meta (_, e) | Forward e ->
      reads_of ~path facts e
    | Call (_, args) -> List.fold_left (reads_of ~path) facts args
    | Map_put (m, keys, v) ->
      let facts = List.fold_left (reads_of ~path) facts keys in
      let facts = reads_of ~path facts v in
      add m { s_access = Put; s_path = path; s_rmw = mentions_get m v } facts
    | Map_incr (m, keys, v) ->
      let facts = List.fold_left (reads_of ~path) facts keys in
      let facts = reads_of ~path facts v in
      add m { s_access = Incr; s_path = path; s_rmw = mentions_get m v } facts
    | Map_del (m, keys) ->
      let facts = List.fold_left (reads_of ~path) facts keys in
      add m { s_access = Del; s_path = path; s_rmw = false } facts
    | If _ | Loop _ -> facts (* handled by their own CFG nodes *)

  let transfer (node : Cfg.node) facts =
    match node.kind with
    | Cfg.Atom s -> stmt_facts ~path:node.path facts s
    | Cfg.Branch b -> reads_of ~path:node.path facts b.Cfg.cond
    | Cfg.Key (e, _) -> reads_of ~path:node.path facts e
    | Cfg.Entry | Cfg.Exit | Cfg.Join | Cfg.Loop_head _ | Cfg.Loop_exit
    | Cfg.Action_select | Cfg.Action_entry _ -> facts

  let facts_of_element cfg =
    let sol = FSolver.forward cfg ~init:Facts.bottom ~transfer in
    sol.FSolver.output.(cfg.Cfg.exit)

  (** How a map behaves under domain sharding (§3.4): [Read_only]
      replicas need no coordination; [Commutative] (every datapath
      write is an increment, no self-referential values) shard-local
      replicas merge by sum; [Exclusive] (puts, deletes, or
      read-modify-write) needs a single owner shard per keyspace. *)
  type map_class = Read_only | Commutative | Exclusive

  let class_rank = function Read_only -> 0 | Commutative -> 1 | Exclusive -> 2

  let class_to_string = function
    | Read_only -> "read-only"
    | Commutative -> "commutative"
    | Exclusive -> "exclusive"

  type map_report = {
    mr_map : string;
    mr_class : map_class;
    mr_sites : site list; (* deterministic (set) order *)
  }

  type t = {
    ps_program : string;
    ps_owner : string;
    ps_maps : map_report list; (* declared maps in declaration order,
                                  then accessed-but-undeclared maps *)
    ps_verdict : map_class; (* worst class over all maps *)
  }

  let classify sites =
    let has p = SiteSet.exists p sites in
    if has (fun s -> s.s_rmw || s.s_access = Put || s.s_access = Del) then
      Exclusive
    else if has (fun s -> s.s_access = Incr) then Commutative
    else Read_only

  let analyze (prog : program) =
    let facts =
      List.fold_left
        (fun acc cfg -> Facts.join acc (facts_of_element cfg))
        Facts.bottom (Cfg.of_program prog)
    in
    let report name =
      let sites =
        Option.value (SMap.find_opt name facts) ~default:SiteSet.empty
      in
      { mr_map = name; mr_class = classify sites;
        mr_sites = SiteSet.elements sites }
    in
    let declared = List.map (fun (m : map_decl) -> m.map_name) prog.maps in
    let undeclared =
      SMap.fold
        (fun m _ acc -> if List.mem m declared then acc else m :: acc)
        facts []
      |> List.sort String.compare
    in
    let ps_maps = List.map report (declared @ undeclared) in
    let ps_verdict =
      List.fold_left
        (fun acc mr ->
          if class_rank mr.mr_class > class_rank acc then mr.mr_class else acc)
        Read_only ps_maps
    in
    { ps_program = prog.prog_name; ps_owner = prog.owner; ps_maps; ps_verdict }

  let pp_verdict ppf c = Fmt.string ppf (class_to_string c)

  let pp ppf t =
    Fmt.pf ppf "%s: %s%a" t.ps_program
      (class_to_string t.ps_verdict)
      (Fmt.list ~sep:Fmt.nop (fun ppf mr ->
           Fmt.pf ppf "@.  map %-16s %s" mr.mr_map
             (class_to_string mr.mr_class)))
      t.ps_maps
end

(* -- Static per-packet cost (WCET) ------------------------------------- *)

module Cost = struct
  (* The abstract domain: worst-case work units accumulated along any
     path from entry, [Unreach] for nodes no live path reaches. *)
  type work = Unreach | Work of int

  module W = struct
    type t = work

    let bottom = Unreach
    let equal = ( = )

    let join a b =
      match a, b with
      | Unreach, x | x, Unreach -> x
      | Work a, Work b -> Work (max a b)

    let widen = join
  end

  module WSolver = Solver (W)

  (* Per-statement work units, identical to the planner heuristic in
     [Analysis.stmt_cost] (control statements are charged 1 on their
     Branch/Loop_head node). *)
  let atom_cost = function
    | Nop -> 0
    | Set_field _ | Set_meta _ | Forward _ | Drop | Punt _ | Push_header _
    | Pop_header _ -> 1
    | Map_put _ | Map_incr _ | Map_del _ -> 2 (* hash + write *)
    | Call _ -> 4 (* marshalling + invocation *)
    | If _ | Loop _ -> 0 (* never an Atom *)

  let node_cost (n : Cfg.node) =
    match n.kind with
    | Cfg.Atom s -> atom_cost s * n.cost_iters
    | Cfg.Branch _ | Cfg.Loop_head _ -> n.cost_iters
    | Cfg.Key _ | Cfg.Action_select -> 1
    | Cfg.Entry | Cfg.Exit | Cfg.Join | Cfg.Loop_exit | Cfg.Action_entry _ -> 0

  let transfer n = function
    | Unreach -> Unreach
    | Work w -> Work (w + node_cost n)

  (* Branch edges whose condition folds to a constant: only the taken
     arm is live, so statically dead code contributes no certified
     work. *)
  let live_edge (cfg : Cfg.t) src dst =
    match cfg.Cfg.nodes.(src).Cfg.kind with
    | Cfg.Branch b -> (
      match const_truth b.Cfg.cond with
      | Some true -> dst = b.Cfg.then_dst
      | Some false -> dst = b.Cfg.else_dst
      | None -> true)
    | _ -> true

  let element_wcet ?edge_live cfg =
    let sol = WSolver.acyclic ?edge_live cfg ~init:(Work 0) ~transfer in
    match sol.WSolver.output.(cfg.Cfg.exit) with
    | Work w -> w
    | Unreach -> 0

  type t = {
    cc_program : string;
    cc_certified : int; (* WCET with statically dead branches pruned *)
    cc_heuristic : int; (* unpruned longest path = [Analysis.max_cycles] *)
    cc_elements : (string * int * int) list; (* element, certified, heuristic *)
    cc_pruned : string list; (* If paths with a statically dead arm *)
  }

  let analyze (prog : program) =
    let cfgs = Cfg.of_program prog in
    let cc_elements =
      List.map
        (fun cfg ->
          ( cfg.Cfg.elem,
            element_wcet ~edge_live:live_edge cfg,
            element_wcet cfg ))
        cfgs
    in
    let cc_pruned =
      List.concat_map
        (fun cfg ->
          Array.to_list cfg.Cfg.nodes
          |> List.filter_map (fun (n : Cfg.node) ->
                 match n.kind with
                 | Cfg.Branch { Cfg.cond; br_stmt = If (_, th, el); _ } -> (
                   match const_truth cond with
                   | Some true when el <> [] -> Some (n.path ^ " (else)")
                   | Some false when th <> [] -> Some (n.path ^ " (then)")
                   | _ -> None)
                 | _ -> None))
        cfgs
    in
    { cc_program = prog.prog_name;
      cc_certified = List.fold_left (fun a (_, c, _) -> a + c) 0 cc_elements;
      cc_heuristic = List.fold_left (fun a (_, _, h) -> a + h) 0 cc_elements;
      cc_elements; cc_pruned }

  let pp ppf t =
    Fmt.pf ppf "%s: certified %d, heuristic %d work units%s" t.cc_program
      t.cc_certified t.cc_heuristic
      (if t.cc_pruned = [] then ""
       else Printf.sprintf " (%d dead branch arm(s) pruned)"
              (List.length t.cc_pruned))
end
