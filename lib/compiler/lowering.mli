(** Lowering FlexBPF programs into placeable units.

    A unit is one pipeline element plus its context program and a
    vertical-placement class. The classification implements the paper's
    vertical split: packet-oriented match/action work can run on
    switching ASICs; eBPF-style offloads (big blocks, dRPC calls, deep
    loops) need general-purpose targets. *)

type vertical_class =
  | Anywhere (* small block or table: any target *)
  | Switch_preferred (* match/action table: cheapest on ASICs *)
  | Offload_only (* must run on SmartNIC / FPGA / host *)

val vertical_class_to_string : vertical_class -> string

type unit_ = {
  u_element : Flexbpf.Ast.element;
  u_index : int; (* position in the logical pipeline *)
  u_ctx : Flexbpf.Ast.program;
  u_class : vertical_class;
  u_cycles : int;
}

(** Largest block any switching ASIC profile can host. *)
val switch_block_limit : int

val classify : Flexbpf.Ast.element -> vertical_class * int

val units_of_program : Flexbpf.Ast.program -> unit_ list

(** May a unit of this class run on a device of this kind at all? *)
val class_allows : vertical_class -> Targets.Arch.kind -> bool
