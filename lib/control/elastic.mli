(** Elastic scaling policies (§1.1): defenses and apps "dynamically
    scale in and out based on attack traffic volume." A policy samples
    a signal periodically and drives the replica count toward a desired
    level, within bounds and a cooldown; the [scale_to] actuator
    injects or removes replicas. Two policies share this machinery:
    threshold ({!create}) and price signal ({!create_price}). *)

type t

(** Threshold policy: desired = ceil(sample () / capacity_per_replica). *)
val create :
  ?min_replicas:int -> ?max_replicas:int -> ?cooldown:float ->
  ?period:float -> sim:Netsim.Sim.t -> name:string ->
  sample:(unit -> float) -> capacity_per_replica:float ->
  scale_to:(int -> unit) -> unit -> t

(** Price-signal policy (§4.5's elastic half of the tenant economy):
    desired = the largest [n <= max_replicas] with
    [marginal_utility i >= price ()] for every [i < n]. With
    diminishing returns this scales out while the next replica's
    marginal utility exceeds the quoted per-replica rent and back in
    when the last one's drops below it. [price] is typically
    [Market.Auction.quote] partially applied to the app's footprint;
    the sampled price is recorded on the [elastic.scale] span. *)
val create_price :
  ?min_replicas:int -> ?max_replicas:int -> ?cooldown:float ->
  ?period:float -> sim:Netsim.Sim.t -> name:string ->
  price:(unit -> float) -> marginal_utility:(int -> float) ->
  scale_to:(int -> unit) -> unit -> t

val stop : t -> unit
val replicas : t -> int

(** (time, new replica count) decisions, oldest first. *)
val events : t -> (float * int) list

val name : t -> string

(** A [scale_to] actuator driving a registered controller app over a
    fixed device list through the plan path: scaling to [n] injects the
    app on the first [n] devices missing it and retires it from the
    rest. [on_retire] runs just before a replica is removed (harvest
    counters before the uninstall releases its maps), [on_inject] just
    after one comes up. *)
val app_actuator :
  ?on_inject:(Targets.Device.t -> unit) ->
  ?on_retire:(Targets.Device.t -> unit) ->
  controller:Controller.t -> uri:Uri.t -> devices:Targets.Device.t list ->
  unit -> int -> unit
