(** Per-resource-kind unit prices, iterated against capacity
    (multiplicative tâtonnement à la CloudNetworking's
    optimizeResourcePriceNew: raise the price of an oversubscribed
    resource proportionally to its excess demand, relax slack ones
    toward a floor, stop when every market balances or the iteration
    budget runs out). Pure arithmetic over resource snapshots. *)

type rkind = Sram | Tcam | Actions | Instructions

let all_rkinds = [ Sram; Tcam; Actions; Instructions ]

let rkind_to_string = function
  | Sram -> "sram-kb"
  | Tcam -> "tcam-kb"
  | Actions -> "action-slots"
  | Instructions -> "instructions"

let index = function Sram -> 0 | Tcam -> 1 | Actions -> 2 | Instructions -> 3

(* SRAM/TCAM are priced per KiB so one unit of any kind is of the same
   order of magnitude: a tenant footprint of a few KB and a few action
   slots yields a cost dominated by neither dimension. *)
let units kind (r : Targets.Resource.t) =
  match kind with
  | Sram -> float_of_int r.Targets.Resource.sram_bytes /. 1024.
  | Tcam -> float_of_int r.Targets.Resource.tcam_bytes /. 1024.
  | Actions -> float_of_int r.Targets.Resource.action_slots
  | Instructions -> float_of_int r.Targets.Resource.instructions

type config = {
  cfg_floor : float;
  cfg_gamma : float;
  cfg_eps : float;
  cfg_budget : int;
}

let default_config =
  { cfg_floor = 0.01; cfg_gamma = 0.5; cfg_eps = 0.05; cfg_budget = 64 }

type t = { config : config; p : float array (* indexed by [index] *) }

let create ?(config = default_config) () =
  if config.cfg_floor <= 0. then invalid_arg "Prices.create: floor must be > 0";
  if config.cfg_budget <= 0 then invalid_arg "Prices.create: budget must be > 0";
  { config; p = Array.make 4 config.cfg_floor }

let config t = t.config
let price t k = t.p.(index k)
let prices t = List.map (fun k -> (k, price t k)) all_rkinds

let cost t r =
  List.fold_left (fun acc k -> acc +. (price t k *. units k r)) 0. all_rkinds

(* -- occupancy ---------------------------------------------------------- *)

let capacity_of_snapshot (s : Targets.Resource.snapshot) =
  match s.Targets.Resource.shape with
  | Targets.Resource.Sh_staged { stages; per_stage } ->
    Targets.Resource.scale stages per_stage
  | Targets.Resource.Sh_staged_pem { stages; per_stage; _ } ->
    Targets.Resource.scale stages per_stage
  | Targets.Resource.Sh_tiled { tiles; tile_bytes; pool } ->
    List.fold_left
      (fun acc (k, n) ->
        let bytes = n * tile_bytes in
        Targets.Resource.add acc
          (match k with
           | Targets.Resource.Tcam_tile ->
             Targets.Resource.v ~tcam_bytes:bytes ()
           | Targets.Resource.Hash_tile | Targets.Resource.Index_tile ->
             Targets.Resource.v ~sram_bytes:bytes ()))
      pool tiles
  | Targets.Resource.Sh_pooled { pool } -> pool

let capacity_of_snapshots snaps =
  List.fold_left
    (fun acc (_, s) -> Targets.Resource.add acc (capacity_of_snapshot s))
    Targets.Resource.zero snaps

let used_of_snapshots snaps =
  List.fold_left
    (fun acc (_, s) -> Targets.Resource.add acc (Targets.Resource.used s))
    Targets.Resource.zero snaps

let seed_from_occupancy t ~used ~capacity =
  List.iter
    (fun k ->
      let cap = units k capacity in
      if cap > 0. then begin
        let rho = Float.min 0.95 (units k used /. cap) in
        t.p.(index k) <- t.config.cfg_floor /. (1. -. rho)
      end)
    all_rkinds

(* -- tâtonnement -------------------------------------------------------- *)

(* Per-kind relative load; NaN-free: unmarketed (zero-capacity) kinds
   report balance. *)
let rho k ~capacity ~demand =
  let cap = units k capacity in
  if cap <= 0. then 1. else units k demand /. cap

let step t ~capacity ~demand =
  let excess = ref neg_infinity in
  List.iter
    (fun k ->
      let cap = units k capacity in
      if cap > 0. then begin
        let r = units k demand /. cap in
        excess := Float.max !excess (r -. 1.);
        let old = t.p.(index k) in
        let raw = old *. (1. +. (t.config.cfg_gamma *. (r -. 1.))) in
        (* clamp the multiplicative change to [1/2, 2] per step for
           stability; strict monotonicity in the direction of the
           imbalance is preserved *)
        let clamped = Float.min (2. *. old) (Float.max (0.5 *. old) raw) in
        t.p.(index k) <- Float.max t.config.cfg_floor clamped
      end)
    all_rkinds;
  if !excess = neg_infinity then 0. else !excess

let converged t ~capacity ~demand =
  List.for_all
    (fun k ->
      let cap = units k capacity in
      if cap <= 0. then true
      else
        let r = units k demand /. cap in
        r <= 1. +. t.config.cfg_eps
        && (r >= 1. -. t.config.cfg_eps
            || t.p.(index k) <= t.config.cfg_floor *. 1.000001))
    all_rkinds

type outcome = {
  out_rounds : int;
  out_converged : bool;
  out_excess : float;
  out_prices : (rkind * float) list;
}

let iterate t ~capacity ~demand_at =
  let max_excess d =
    List.fold_left
      (fun acc k ->
        if units k capacity > 0. then
          Float.max acc (rho k ~capacity ~demand:d -. 1.)
        else acc)
      0. all_rkinds
  in
  let rec go n =
    let d = demand_at t in
    if converged t ~capacity ~demand:d then
      { out_rounds = n; out_converged = true; out_excess = max_excess d;
        out_prices = prices t }
    else if n >= t.config.cfg_budget then
      { out_rounds = n; out_converged = false; out_excess = max_excess d;
        out_prices = prices t }
    else begin
      ignore (step t ~capacity ~demand:d);
      go (n + 1)
    end
  in
  go 0

let pp ppf t =
  Fmt.pf ppf "%a"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (k, p) ->
          pf ppf "%s=%.4f" (rkind_to_string k) p))
    (prices t)
