(** Count-min sketch in FlexBPF — the paper's canonical stateful app
    (§3.4 uses it as the example whose state mutates per packet and so
    cannot be migrated by control-plane software). [depth] rows of
    [width] counters in one logical map keyed (row, column); updates
    run as a bounded loop over rows, queries take the row minimum. *)

type config = { depth : int; width : int; map_name : string }

val default_config : config

(** Column index of [row] for the current packet (hash of the flow). *)
val column_expr : config -> Flexbpf.Ast.expr -> Flexbpf.Ast.expr

val sketch_map : config -> Flexbpf.Ast.map_decl

(** The per-packet update block. *)
val update_block : ?name:string -> config -> Flexbpf.Ast.element

val program : ?owner:string -> ?cfg:config -> unit -> Flexbpf.Ast.program

(** Host-side column computation, mirroring [column_expr]'s layout. *)
val column : config -> row:int -> src:int64 -> dst:int64 -> proto:int64 -> int64

(** Point query: estimated count = min over rows. Never underestimates. *)
val estimate :
  config -> Flexbpf.State.t -> src:int64 -> dst:int64 -> proto:int64 -> int64

val estimate_on_device :
  config -> Targets.Device.t -> src:int64 -> dst:int64 -> proto:int64 -> int64

(** Ground-truth exact counter for measuring sketch error in tests. *)
module Exact : sig
  type t

  val create : unit -> t
  val add : t -> src:int64 -> dst:int64 -> proto:int64 -> unit
  val count : t -> src:int64 -> dst:int64 -> proto:int64 -> int
end
