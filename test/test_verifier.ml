(* Tests for the FlexBPF verifier: diagnostics framework, the five pass
   families, the certification gate, and the shipped-program guarantee
   (every built-in app and example file verifies with zero errors). *)

open Flexbpf
open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Diagnostics.code) ds)
let has_code c ds = List.exists (fun d -> d.Diagnostics.code = c) ds

(* The built-in application programs, mirroring the CLI's `apps` list. *)
let builtin_apps () =
  [ ("l2l3", Apps.L2l3.program ());
    ("firewall", Apps.Firewall.program ());
    ("cm_sketch", Apps.Cm_sketch.program ());
    ("heavy_hitter", Apps.Heavy_hitter.program ());
    ("syn_defense", Apps.Syn_defense.program ());
    ("scrubber", Apps.Scrubber.program ());
    ("load_balancer", Apps.Load_balancer.program ());
    ("nat", Apps.Nat.program ~public:900 ~subnet_lo:10 ~subnet_hi:20 ());
    ("telemetry", Apps.Telemetry.program ());
    ("rate_limiter", Apps.Rate_limiter.program ~rate_pps:1000 ~burst:16 ());
    ("congestion",
     Apps.Congestion.program
       ~blocks:
         [ Apps.Congestion.reno_block; Apps.Congestion.dctcp_block;
           Apps.Congestion.timely_block () ]
       ()) ]

(* Tests run from _build/default/test; the dune deps clause copies the
   example programs next door. *)
let examples_dir = "../examples/programs"

let example_files () =
  Sys.readdir examples_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fbpf")
  |> List.sort compare

let load_example f =
  let path = Filename.concat examples_dir f in
  let src = In_channel.with_open_text path In_channel.input_all in
  match Syntax.parse_program_result src with
  | Ok p -> p
  | Error e -> Alcotest.failf "%s: parse error: %s" f e

(* -- Diagnostics framework ----------------------------------------------- *)

let test_severity_order () =
  check "error outranks warning" true
    Diagnostics.(compare_severity Error Warning > 0);
  check "warning outranks info" true
    Diagnostics.(compare_severity Warning Info > 0);
  check_int "round-trip severity strings" 3
    (List.length
       (List.filter_map Diagnostics.severity_of_string
          [ "info"; "warning"; "error" ]));
  check "unknown severity is None" true
    (Diagnostics.severity_of_string "fatal" = None)

let test_normalize () =
  let d sev code =
    Diagnostics.v ~code ~pass:"p" ~severity:sev ~path:"x" "m"
  in
  let ds =
    Diagnostics.normalize
      [ d Diagnostics.Info "FBV012"; d Diagnostics.Error "FBV001";
        d Diagnostics.Error "FBV001"; d Diagnostics.Warning "FBV010" ]
  in
  check_int "duplicates dropped" 3 (List.length ds);
  check "most severe first" true
    ((List.hd ds).Diagnostics.severity = Diagnostics.Error);
  check "tsv has 5 fields" true
    (List.length (String.split_on_char '\t' (Diagnostics.to_tsv (List.hd ds)))
     = 5)

(* -- Shipped programs verify clean --------------------------------------- *)

let test_apps_no_errors () =
  List.iter
    (fun (name, p) ->
      match Diagnostics.errors (Verifier.check p) with
      | [] -> ()
      | e :: _ ->
        Alcotest.failf "%s has error diagnostics: %s %s" name
          e.Diagnostics.code e.Diagnostics.message)
    (builtin_apps ())

let test_examples_no_errors () =
  let files = example_files () in
  check "found the example programs" true (List.length files >= 3);
  List.iter
    (fun f ->
      let ds = Verifier.check (load_example f) in
      if f = "bad_probe.fbpf" then
        check "bad_probe has errors" true (Diagnostics.errors ds <> [])
      else if f = "racy_counter.fbpf" then
        check "racy_counter rejected with the shard-race error" true
          (has_code "FBV052" (Diagnostics.errors ds))
      else
        match Diagnostics.errors ds with
        | [] -> ()
        | e :: _ ->
          Alcotest.failf "%s has error diagnostics: %s %s" f e.Diagnostics.code
            e.Diagnostics.message)
    files

(* Snapshot the expected sub-Error findings on known programs, so pass
   behavior changes are visible in review rather than silent. *)
let test_warning_snapshot () =
  let tsv p = List.map Diagnostics.to_tsv (Verifier.check p) in
  Alcotest.(check (list string))
    "heavy_hitter snapshot"
    [ "FBV050\tinfo\tshard-safety\tmap/cms\tmap cms is shard-commutative: \
       every datapath write is an increment, so per-shard replicas merge by \
       sum";
      "FBV053\tinfo\tshard-safety\tmap/cms\tshard-commutative map cms is \
       also read on the datapath: each shard observes its partial counts \
       until merge" ]
    (tsv (Apps.Heavy_hitter.program ()));
  Alcotest.(check (list string))
    "telemetry snapshot"
    [ "FBV002\twarning\tuninit-read\tpath_stamp/stmt.0\tmetadata hops read \
       before any assignment (defaults to 0)";
      "FBV014\tinfo\tdead-code\tmap/flow_bytes\tmap flow_bytes is write-only \
       in the data plane (visible only to the control plane)";
      "FBV050\tinfo\tshard-safety\tmap/flow_bytes\tmap flow_bytes is \
       shard-commutative: every datapath write is an increment, so per-shard \
       replicas merge by sum" ]
    (tsv (Apps.Telemetry.program ()));
  let fw = load_example "tenant_firewall.fbpf" in
  check "tenant firewall flags lossy encoding" true
    (has_code "FBV030" (Verifier.check fw));
  check "tenant firewall has no errors" true
    (Diagnostics.errors (Verifier.check fw) = [])

(* -- The crafted bad program --------------------------------------------- *)

let test_bad_probe () =
  let ds = Verifier.check (load_example "bad_probe.fbpf") in
  check "uninitialized header read is an error" true (has_code "FBV001" ds);
  check "statement after drop flagged" true (has_code "FBV010" ds);
  check "untouched map flagged" true (has_code "FBV013" ds);
  check "constant condition flagged" true (has_code "FBV020" ds);
  check "lossy mutated encoding flagged" true (has_code "FBV030" ds);
  check "at least 3 distinct diagnostics" true (List.length (codes ds) >= 3);
  check "max severity is error" true
    (Diagnostics.max_severity ds = Some Diagnostics.Error)

(* -- Individual passes ---------------------------------------------------- *)

let test_uninit_if_join () =
  (* a meta defined on only one branch of an If may have been defined:
     the read after the join is not flagged (may-analysis) *)
  let p =
    program "joins"
      [ block "b"
          [ when_ (field "ipv4" "proto" =: const 6) [ set_meta "x" (const 1) ];
            set_meta "y" (meta "x") ] ]
  in
  check "may-defined meta not flagged" true
    (not (has_code "FBV002" (Verifier.verify p)));
  (* but a meta defined on no path is flagged *)
  let q = program "noinit" [ block "b" [ set_meta "y" (meta "x") ] ] in
  check "never-defined meta flagged" true (has_code "FBV002" (Verifier.verify q))

let test_uninit_header_via_push () =
  let custom = header "tunnel" [ ("id", 32) ] in
  let p =
    program "push" ~headers:(custom :: standard_headers)
      [ block "b"
          [ Ast.Push_header "tunnel"; set_field "tunnel" "id" (const 9) ] ]
  in
  check "pushed header readable" true
    (not (has_code "FBV001" (Verifier.verify p)));
  let q =
    program "nopush" ~headers:(custom :: standard_headers)
      [ block "b" [ set_meta "x" (field "tunnel" "id") ] ]
  in
  check "unparsed header read is error" true
    (has_code "FBV001" (Verifier.verify q))

let test_dead_code_pass () =
  let p =
    program "dead"
      [ block "wall" [ drop ];
        block "after" [ set_meta "x" (const 1) ] ]
  in
  let ds = Verifier.verify p in
  check "element after drop-wall flagged" true (has_code "FBV011" ds)

(* Regression: a loop whose body drops behind a constant-true guard
   drops every packet, even though the guard's empty else-arm does not
   — the pass must fold the constant condition instead of requiring
   both arms to drop. *)
let test_dead_after_const_drop_loop () =
  let always =
    program "deadloop"
      [ block "b"
          [ loop 2 [ when_ (const 1 =: const 1) [ drop ] ];
            set_meta "x" (const 1) ] ]
  in
  check "stmt after always-dropping loop flagged" true
    (has_code "FBV010" (Verifier.verify always));
  (* the dual: a constant-false guard never drops, so nothing is dead *)
  let never =
    program "liveloop"
      [ block "b"
          [ loop 2 [ when_ (const 1 =: const 0) [ drop ] ];
            set_meta "x" (const 1) ] ]
  in
  check "const-false guard does not kill the tail" true
    (not (has_code "FBV010" (Verifier.verify never)))

let test_range_pass () =
  let p =
    program "ranges"
      ~maps:[ map_decl ~encoding:Ast.Enc_registers ~size:8 "regs" ]
      [ block "b"
          [ map_put "regs" [ const 100 ] (const 1);
            set_field "ipv4" "ttl" (const 5000) ] ]
  in
  let ds = Verifier.verify p in
  check "out-of-range registers key flagged" true (has_code "FBV023" ds);
  check "value too wide for field flagged" true (has_code "FBV024" ds);
  let nested =
    program "nested"
      [ block "b" [ loop 16 [ loop 16 [ set_meta "x" (const 0) ] ] ] ]
  in
  check "nested loop budget flagged" true
    (has_code "FBV025" (Verifier.verify nested));
  let div0 = program "div0" [ block "b" [ set_meta "x" (const 1 /: const 0) ] ] in
  check "division by zero flagged" true (has_code "FBV022" (Verifier.verify div0))

let test_isolation_pass () =
  let snoop =
    program ~owner:"eve" "snoop"
      ~maps:[ map_decl ~key_arity:1 ~size:4 "infra/secret" ]
      [ block "peek" [ set_meta "x" (map_get "infra/secret" [ const 0 ]) ] ]
  in
  let ds = Verifier.verify snoop in
  check "foreign map touch flagged" true (has_code "FBV040" ds);
  check "unguarded tenant element flagged" true (has_code "FBV041" ds);
  check "infra programs exempt" true
    (not
       (List.exists
          (fun d -> d.Diagnostics.pass = "tenant-isolation")
          (Verifier.verify (Apps.L2l3.program ()))))

let test_shard_safety_pass () =
  let racy = load_example "racy_counter.fbpf" in
  let ds = Verifier.check racy in
  check "tenant RMW is an error" true
    (List.exists
       (fun d ->
         d.Diagnostics.code = "FBV052"
         && d.Diagnostics.severity = Diagnostics.Error)
       ds);
  check "racy map needs an exclusive shard" true (has_code "FBV051" ds);
  let sketch = load_example "commutative_sketch.fbpf" in
  let ds = Verifier.check sketch in
  check "sketch map is commutative" true (has_code "FBV050" ds);
  check "datapath read of partial counts noted" true (has_code "FBV053" ds);
  check "sketch has nothing above info" true
    (Diagnostics.max_severity ds = Some Diagnostics.Info);
  (* infra may pin an RMW map to one shard: warning, not error *)
  let infra_rmw =
    program "pinned" ~owner:"infra"
      ~maps:[ map_decl ~key_arity:1 ~size:16 "tok" ]
      [ block "b"
          [ map_put "tok" [ const 0 ]
              ((map_get "tok" [ const 0 ] *: const 2) +: const 1) ] ]
  in
  check "infra RMW is a warning" true
    (List.exists
       (fun d ->
         d.Diagnostics.code = "FBV052"
         && d.Diagnostics.severity = Diagnostics.Warning)
       (Verifier.verify infra_rmw));
  (* mixing increments with puts on one map defeats merge-by-sum *)
  let mixed =
    program "mixed" ~maps:[ map_decl ~key_arity:1 ~size:16 "m" ]
      [ block "b"
          [ map_incr "m" [ const 0 ];
            map_put "m" [ const 1 ] (const 7) ] ]
  in
  check "mixed incr+put flagged" true
    (has_code "FBV054" (Verifier.verify mixed))

let test_static_cost_pass () =
  (* a statically dead else-arm twice the live arm's weight: the
     planner heuristic (max over arms) charges >= 2x the certified cost *)
  let divergent =
    program "divergent"
      [ block "b"
          [ if_ (const 1 =: const 1)
              [ set_meta "x" (const 1) ]
              (List.init 8 (fun i -> set_meta "y" (const i))) ] ]
  in
  check "heuristic/certificate divergence flagged" true
    (has_code "FBV061" (Verifier.verify divergent));
  let ck = Compiler.Plan.cost_check divergent in
  check "plan cross-check agrees" true ck.Compiler.Plan.ck_divergent;
  check_int "heuristic matches Analysis.max_cycles"
    (Analysis.max_cycles divergent) ck.Compiler.Plan.ck_heuristic;
  (* no dead branches: certificate equals heuristic, no divergence *)
  let straight = Apps.L2l3.program () in
  let ck = Compiler.Plan.cost_check straight in
  check "straight-line program converges" false ck.Compiler.Plan.ck_divergent;
  check_int "certified = heuristic without dead code" ck.Compiler.Plan.ck_heuristic
    ck.Compiler.Plan.ck_certified

let test_certificates_on_examples () =
  (* Analysis.certify must attach both framework certificates to every
     accepted example, and parallel_safety must classify the two
     shard-safety fixtures as designed. *)
  List.iter
    (fun f ->
      let p = load_example f in
      match Analysis.certify p with
      | Error _ -> () (* bad_probe / racy_counter: rejected is fine *)
      | Ok cert ->
        let par = cert.Analysis.cert_parallel in
        check (f ^ " parallel certificate names the program") true
          (par.Dataflow.Shard_safety.ps_program = p.Ast.prog_name);
        check (f ^ " cost certificate is positive") true
          (cert.Analysis.cert_cost.Dataflow.Cost.cc_certified > 0))
    (example_files ());
  let verdict f =
    (Analysis.parallel_safety (load_example f)).Dataflow.Shard_safety.ps_verdict
  in
  check "racy_counter is exclusive" true
    (verdict "racy_counter.fbpf" = Dataflow.Shard_safety.Exclusive);
  check "commutative_sketch is commutative" true
    (verdict "commutative_sketch.fbpf" = Dataflow.Shard_safety.Commutative)

let test_verifier_handles_ill_typed () =
  let bad =
    program "bad" [ block "b" [ set_meta "x" (field "ipv4" "nonexistent") ] ]
  in
  let ds = Verifier.check bad in
  check "typecheck failures become FBV000" true (has_code "FBV000" ds);
  check "all FBV000 are errors" true
    (List.for_all
       (fun d -> d.Diagnostics.severity = Diagnostics.Error)
       (List.filter (fun d -> d.Diagnostics.code = "FBV000") ds))

(* -- Certification gate --------------------------------------------------- *)

let test_certify_gate () =
  let bad = load_example "bad_probe.fbpf" in
  (match Analysis.certify bad with
   | Error (Analysis.Unsafe errs) ->
     check "rejection carries the errors" true (has_code "FBV001" errs)
   | _ -> Alcotest.fail "expected Unsafe rejection");
  (match Analysis.certify ~verifier:false bad with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "verifier=false must skip the gate");
  match Analysis.certify (Apps.Telemetry.program ()) with
  | Ok cert ->
    check "warnings attached to certificate" true
      (has_code "FBV002" cert.Analysis.cert_warnings)
  | Error _ -> Alcotest.fail "telemetry must certify"

let test_tenant_diagnostics_recorded () =
  let sim = Netsim.Sim.create () in
  let path =
    [ Targets.Device.create ~id:"h0" Targets.Arch.host_ebpf;
      Targets.Device.create ~id:"s0" Targets.Arch.drmt;
      Targets.Device.create ~id:"h1" Targets.Arch.host_ebpf ]
  in
  let dep =
    match Runtime.Reconfig.deploy ~path (Apps.L2l3.program ()) with
    | Ok dep -> dep
    | Error f -> Alcotest.failf "deploy: %a" Compiler.Placement.pp_failure f
  in
  let tenants = Control.Tenants.create ~sim dep in
  match Control.Tenants.admit tenants (Apps.Firewall.program ~owner:"acme" ()) with
  | Error e -> Alcotest.failf "admit: %a" Control.Tenants.pp_admission_error e
  | Ok (tenant, _) ->
    check "admission records verifier findings" true
      (tenant.Control.Tenants.diagnostics <> []);
    check "recorded findings are sub-error" true
      (Diagnostics.errors tenant.Control.Tenants.diagnostics = []);
    check "admission records the shard-safety certificate" true
      (tenant.Control.Tenants.parallel.Dataflow.Shard_safety.ps_maps <> []);
    check "admission records the cost certificate" true
      (tenant.Control.Tenants.static_cost.Dataflow.Cost.cc_certified > 0)

(* -- Duplicate declarations (Typecheck) ----------------------------------- *)

let dup_rejected name p sub =
  match Typecheck.check_program p with
  | Ok () -> Alcotest.failf "%s: duplicate accepted" name
  | Error es ->
    check name true
      (List.exists (fun e -> contains e.Typecheck.what sub) es)

let test_duplicate_declarations () =
  dup_rejected "duplicate header field"
    (program "p"
       ~headers:(header "h" [ ("a", 8); ("a", 16) ] :: standard_headers)
       [ block "b" [ Ast.Nop ] ])
    "duplicate field a";
  dup_rejected "duplicate header"
    (program "p"
       ~headers:(standard_headers @ [ header "ethernet" [ ("x", 8) ] ])
       [ block "b" [ Ast.Nop ] ])
    "duplicate header ethernet";
  dup_rejected "duplicate map"
    (program "p"
       ~maps:[ map_decl ~size:4 "m"; map_decl ~size:8 "m" ]
       [ block "b" [ Ast.Nop ] ])
    "duplicate map m";
  dup_rejected "duplicate element"
    (program "p" [ block "b" [ Ast.Nop ]; block "b" [ Ast.Drop ] ])
    "duplicate element b";
  dup_rejected "duplicate parser rule"
    (program "p"
       ~parser:(standard_parser @ [ parser_rule "parse_eth" [ "vlan" ] ])
       [ block "b" [ Ast.Nop ] ])
    "duplicate parser rule parse_eth";
  dup_rejected "duplicate action"
    (program "p"
       [ table "t"
           ~keys:[ exact (field "ipv4" "dst") ]
           ~actions:[ action "a" [ Ast.Nop ]; action "a" [ Ast.Drop ] ]
           ~default:("a", []) () ])
    "duplicate action a"

let () =
  Alcotest.run "verifier"
    [
      ("diagnostics",
       [ Alcotest.test_case "severity order" `Quick test_severity_order;
         Alcotest.test_case "normalize" `Quick test_normalize ]);
      ("shipped programs",
       [ Alcotest.test_case "apps verify clean" `Quick test_apps_no_errors;
         Alcotest.test_case "examples verify clean" `Quick
           test_examples_no_errors;
         Alcotest.test_case "warning snapshot" `Quick test_warning_snapshot ]);
      ("bad program",
       [ Alcotest.test_case "bad_probe diagnostics" `Quick test_bad_probe ]);
      ("passes",
       [ Alcotest.test_case "uninit if-join" `Quick test_uninit_if_join;
         Alcotest.test_case "uninit push/pop" `Quick
           test_uninit_header_via_push;
         Alcotest.test_case "dead code" `Quick test_dead_code_pass;
         Alcotest.test_case "dead code behind constant guard" `Quick
           test_dead_after_const_drop_loop;
         Alcotest.test_case "value range" `Quick test_range_pass;
         Alcotest.test_case "tenant isolation" `Quick test_isolation_pass;
         Alcotest.test_case "shard safety" `Quick test_shard_safety_pass;
         Alcotest.test_case "static cost" `Quick test_static_cost_pass;
         Alcotest.test_case "example certificates" `Quick
           test_certificates_on_examples;
         Alcotest.test_case "ill-typed input" `Quick
           test_verifier_handles_ill_typed ]);
      ("gate",
       [ Alcotest.test_case "certify gate" `Quick test_certify_gate;
         Alcotest.test_case "tenant diagnostics" `Quick
           test_tenant_diagnostics_recorded ]);
      ("typecheck",
       [ Alcotest.test_case "duplicate declarations" `Quick
           test_duplicate_declarations ]);
    ]
