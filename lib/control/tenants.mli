(** Tenant lifecycle management (§3's deployment scenario).

    Tenants provide extension programs that are dynamically injected
    into and removed from the network, admitted after access-control
    validation and isolated via VLANs. Admission pipeline: certify
    bounded execution → namespace → access-control check → VLAN
    allocation and guarding → incremental compilation of the injection
    patch onto the live deployment. *)

type tenant = {
  tenant_name : string;
  vlan : int;
  arrived_at : float;
  mutable element_names : string list;
  mutable map_names : string list;
  diagnostics : Flexbpf.Diagnostics.t list;
      (* sub-Error verifier findings recorded at admission *)
  parallel : Flexbpf.Dataflow.Shard_safety.t;
      (* shard-safety certificate: how the tenant's maps shard *)
  static_cost : Flexbpf.Dataflow.Cost.t; (* certified per-packet WCET *)
  shard_affinity : int option;
      (* [Some s]: every instance of this tenant's maps must live in
         shard [s]; [None]: replicate freely *)
}

type t = {
  sim : Netsim.Sim.t;
  deployment : Compiler.Incremental.deployment;
  exports : string list; (* infra maps tenants may read *)
  shards : int; (* shard count placement draws from *)
  mutable tenants : tenant list;
  mutable next_vlan : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable departed : int;
  mutable clock : unit -> float; (* see [set_clock] *)
}

(** [shards] (default 1) is the shard pool admission places into:
    tenants whose [Parallel_safety] verdict is [Exclusive] are pinned
    to one shard (stable hash of the tenant name, so placement is
    independent of arrival order), while [Read_only] and [Commutative]
    tenants get no affinity and replicate across every shard with
    merge-by-sum semantics. Admission records the decision in the
    [tenants.placement] counter (labelled by verdict class) and on the
    [tenant.admit] span. *)
val create :
  ?exports:string list -> ?shards:int -> sim:Netsim.Sim.t ->
  Compiler.Incremental.deployment -> t

val find : t -> string -> tenant option

(** Swap the wall clock behind the [tenants.admit_latency_ms]
    histogram. The default is [Sys.time] (no unix dependency); benches
    inject [Unix.gettimeofday] for sub-millisecond resolution. *)
val set_clock : t -> (unit -> float) -> unit

(** {2 Admission outcome instrumentation}

    Every admission attempt lands in two registry series: the labelled
    counter [tenants.outcome{outcome=admitted|rejected|preempted|
    deferred}] and the latency histogram [tenants.admit_latency_ms]
    (wall-clock from entry to verdict, so e9/e18 report percentiles
    instead of raw counts). [Admitted]/[Rejected] are recorded by
    {!admit}, [Preempted] by {!depart} with [~reason:`Preempted], and
    [Deferred] by the market layer via {!record_outcome} when an
    auction postpones a priced-out bidder. *)

type outcome = Admitted | Rejected | Preempted | Deferred

val outcome_to_string : outcome -> string
val record_outcome : t -> outcome -> unit

type admission_error =
  | Already_present
  | Certification of Flexbpf.Analysis.rejection
  | Access_control of Flexbpf.Compose.violation list
  | Compilation of Compiler.Incremental.error

val pp_admission_error : Format.formatter -> admission_error -> unit

(** Admit a tenant extension program (owner = the tenant name). On
    success the network has been live-patched and the tenant is
    registered. *)
val admit :
  t -> Flexbpf.Ast.program ->
  (tenant * Compiler.Incremental.report, admission_error) result

(** Market admission hook: the ordinary pipeline (certification,
    namespacing, access control, VLAN guarding, incremental plan) with
    the winning bid's value, density, and quoted unit price recorded as
    attributes on the [tenant.admit] span. *)
val admit_bid :
  t -> bid:float -> density:float -> price:float -> Flexbpf.Ast.program ->
  (tenant * Compiler.Incremental.report, admission_error) result

type policy_admission_error =
  | Policy_error of Policy.Compile.error
      (** the term does not lower (switch tests, multicast, ...) *)
  | Admission of admission_error

val pp_policy_admission_error :
  Format.formatter -> policy_admission_error -> unit

(** Admit a tenant expressed as a policy term instead of a hand-written
    FlexBPF program: the term is lowered to a uniform overlay block
    ({!Policy.Compile.lower_block}) — identical on every switch, leaves
    without an explicit egress defer to infrastructure routing — and
    then admitted through the ordinary pipeline (certification,
    namespacing, access control, VLAN guarding). *)
val admit_policy :
  t -> name:string -> Policy.Ast.pol ->
  (tenant * Compiler.Incremental.report, policy_admission_error) result

type departure_error = Unknown_tenant | Departure_failed of string

val pp_departure_error : Format.formatter -> departure_error -> unit

(** Remove every element, map, and parser rule the tenant owns.
    [~reason:`Preempted] marks a market eviction: the departure span is
    tagged and the [Preempted] outcome recorded; the removal path is
    identical (same patch, same rollback guarantees). *)
val depart :
  ?reason:[ `Voluntary | `Preempted ] -> t -> string ->
  (Compiler.Incremental.report, departure_error) result

val active_count : t -> int

(** Cross-tenant sharable logic (optimization report). *)
val sharable : t -> (string * string) list
