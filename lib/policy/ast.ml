type field =
  | Sw
  | Pt
  | Vlan
  | Eth_src
  | Eth_dst
  | Ip_src
  | Ip_dst
  | Proto
  | Tp_src
  | Tp_dst

let all_fields =
  [ Sw; Pt; Vlan; Eth_src; Eth_dst; Ip_src; Ip_dst; Proto; Tp_src; Tp_dst ]

let field_rank = function
  | Sw -> 0
  | Pt -> 1
  | Vlan -> 2
  | Eth_src -> 3
  | Eth_dst -> 4
  | Ip_src -> 5
  | Ip_dst -> 6
  | Proto -> 7
  | Tp_src -> 8
  | Tp_dst -> 9

let field_name = function
  | Sw -> "sw"
  | Pt -> "pt"
  | Vlan -> "vlan"
  | Eth_src -> "eth.src"
  | Eth_dst -> "eth.dst"
  | Ip_src -> "ip.src"
  | Ip_dst -> "ip.dst"
  | Proto -> "proto"
  | Tp_src -> "tp.src"
  | Tp_dst -> "tp.dst"

let field_of_name s =
  List.find_opt (fun f -> field_name f = s) all_fields

let field_bits = function
  | Sw | Pt -> 30
  | Vlan -> 12
  | Eth_src | Eth_dst -> 48
  | Ip_src | Ip_dst -> 32
  | Proto -> 8
  | Tp_src | Tp_dst -> 16

type pred =
  | True
  | False
  | Test of field * int64
  | And of pred * pred
  | Or of pred * pred
  | Neg of pred

type pol =
  | Filter of pred
  | Mod of field * int64
  | Union of pol * pol
  | Seq of pol * pol
  | Star of pol

let id = Filter True
let drop = Filter False
let fwd port = Mod (Pt, port)
let test f v = Test (f, v)

let union_all = function
  | [] -> drop
  | p :: ps -> List.fold_left (fun acc q -> Union (acc, q)) p ps

let seq_all = function
  | [] -> id
  | p :: ps -> List.fold_left (fun acc q -> Seq (acc, q)) p ps

let rec pred_size = function
  | True | False | Test _ -> 1
  | And (a, b) | Or (a, b) -> 1 + pred_size a + pred_size b
  | Neg a -> 1 + pred_size a

let rec pol_size = function
  | Filter p -> 1 + pred_size p
  | Mod _ -> 1
  | Union (p, q) | Seq (p, q) -> 1 + pol_size p + pol_size q
  | Star p -> 1 + pol_size p

let values_of f pol =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec pred = function
    | True | False -> ()
    | Test (f', v) -> if f' = f then add v
    | And (a, b) | Or (a, b) ->
      pred a;
      pred b
    | Neg a -> pred a
  in
  let rec pol_ = function
    | Filter p -> pred p
    | Mod (f', v) -> if f' = f then add v
    | Union (p, q) | Seq (p, q) ->
      pol_ p;
      pol_ q
    | Star p -> pol_ p
  in
  pol_ pol;
  List.sort Int64.compare !acc

let fields_of pol =
  let acc = ref [] in
  let add f = if not (List.mem f !acc) then acc := f :: !acc in
  let rec pred = function
    | True | False -> ()
    | Test (f, _) -> add f
    | And (a, b) | Or (a, b) ->
      pred a;
      pred b
    | Neg a -> pred a
  in
  let rec pol_ = function
    | Filter p -> pred p
    | Mod (f, _) -> add f
    | Union (p, q) | Seq (p, q) ->
      pol_ p;
      pol_ q
    | Star p -> pol_ p
  in
  pol_ pol;
  List.sort (fun a b -> compare (field_rank a) (field_rank b)) !acc

let equal_pred (a : pred) (b : pred) = a = b
let equal_pol (a : pol) (b : pol) = a = b
