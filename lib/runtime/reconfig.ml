(** The one reconfiguration engine: every change to a live datapath —
    deploy, patch, recompile, GC/defragment, state migration — arrives
    here as a [Compiler.Plan.t] and is executed against the devices
    under two-version windows. The compiler never touches a device; it
    plans over resource snapshots and this module interprets the ops.

    Two timed modes, matching §1's contrast:

    - [Hitless] (runtime programmable): the touched devices keep
      serving traffic with their old program while the change is
      applied; the new program becomes visible atomically per device
      when its op batch completes. Zero loss; "program changes complete
      within a second".

    - [Drain] (compile-time baseline): each touched device is isolated
      by management operations (traffic drained — here: dropped, as the
      path has no alternates), reflashed with the full program, then
      redeployed. Loss is proportional to drain + reflash time.

    Failure handling (Hitless): the op batch is acknowledged
    per device at the end of the window — a device that crashed
    mid-batch restarts on its old program (Targets.Device rolls the
    in-flight mutations back at restart), the surviving devices are
    rolled back too, and the whole plan is re-driven after a bounded
    exponential backoff. When the retry budget runs out the plan aborts
    atomically: every touched device ends on its old program. Either
    way each device runs old-XOR-new, never a mix. [apply] is re-run on
    retries, so it must be idempotent over already-converged devices.

    [run_plan] is the untimed entry point used by the control plane: it
    freezes the touched devices, interprets the ops, thaws, and — when
    the planner supplied predicted snapshots — reconciles the actual
    device state against the prediction. *)

open Flexbpf

type mode = Hitless | Drain

type outcome = {
  started_at : float;
  finished_at : float;
  mode : mode;
  per_device_done : (string * float) list;
  attempts : int; (* 1 on a fault-free run *)
  rolled_back : bool; (* true: plan aborted, all devices on old program *)
}

let wired_for wireds dev_id =
  List.find_opt
    (fun w -> Targets.Device.id w.Wiring.device = dev_id)
    wireds

(* Devices whose structural state an op mutates (state migration only
   copies map contents; it needs no two-version window). *)
let structural_op_devices = function
  | Compiler.Plan.Migrate_state _ -> []
  | Compiler.Plan.Move { from_device; to_device; _ } ->
    [ from_device; to_device ]
  | op -> [ Compiler.Plan.op_device op ]

(* Serial op time per wired device in the plan (ops on devices outside
   the wired set — host stacks — are free here, as before; the cost
   model itself lives in [Compiler.Plan.times_of_devices]). Every
   structurally-touched wired device appears in the result even when
   the op's cost is charged elsewhere — a Move's source performs an
   uninstall inside the same window whose time is billed to the
   destination, but it still needs its own freeze/ack entry so a crash
   rolls it back too. *)
let per_device_times plan wireds =
  let devices = List.map (fun w -> w.Wiring.device) wireds in
  let wired_ids = List.map Targets.Device.id devices in
  let wired_ops =
    List.filter
      (fun op ->
        List.exists
          (fun d -> List.mem d wired_ids)
          (Compiler.Plan.op_device op :: structural_op_devices op))
      plan.Compiler.Plan.ops
  in
  let times =
    Compiler.Plan.per_device_times
      ~times_of:(Compiler.Plan.times_of_devices devices)
      { plan with Compiler.Plan.ops = wired_ops }
  in
  List.fold_left
    (fun acc d ->
      if List.mem_assoc d acc || not (List.mem d wired_ids) then acc
      else (d, 0.) :: acc)
    times
    (List.sort_uniq compare (List.concat_map structural_op_devices wired_ops))

(** Execute [plan] starting now. [apply] performs the device mutations
    immediately (under freeze); visibility and loss follow the mode's
    timing model. [on_done] fires when every device finished (or the
    plan aborted). Hitless runs survive mid-batch device crashes: the
    plan is re-driven up to [max_retries] times with exponential
    backoff starting at [retry_backoff] seconds, then aborted with
    every touched device rolled back to its old program. [stats] (if
    given) counts "reconfig.retries" and "reconfig.gaveups". *)
let execute ?(on_done = fun (_ : outcome) -> ()) ?(max_retries = 2)
    ?(retry_backoff = 0.05) ?stats ~sim ~mode ~wireds ~plan apply =
  let registry = Obs.Scope.metrics (Netsim.Sim.obs sim) in
  let tr = Obs.Scope.trace (Netsim.Sim.obs sim) in
  let count name =
    Netsim.Stats.Counters.incr registry name;
    (* a caller-supplied counter set keeps working; physical equality
       guards against double counting when it IS the sim registry *)
    match stats with
    | Some c when c != registry -> Netsim.Stats.Counters.incr c name
    | _ -> ()
  in
  let start = Netsim.Sim.now sim in
  let times = per_device_times plan wireds in
  let touched () =
    List.filter_map (fun (d, _) -> wired_for wireds d) times
  in
  let exec_span =
    Obs.Trace.start tr "reconfig.execute"
      ~attrs:
        [ ("plan", Obs.Trace.S plan.Compiler.Plan.plan_name);
          ("mode", Obs.Trace.S (match mode with Hitless -> "hitless" | Drain -> "drain"));
          ("devices", Obs.Trace.I (List.length times)) ]
  in
  let on_done outcome =
    Obs.Trace.finish tr exec_span
      ~attrs:
        [ ("attempts", Obs.Trace.I outcome.attempts);
          ("rolled_back", Obs.Trace.B outcome.rolled_back) ];
    on_done outcome
  in
  match mode with
  | Hitless ->
    (* Per attempt: freeze (checkpoint) → mutate → stage fast paths →
       acknowledge at the end of the window. Commit (thaw) only if every
       touched device survived the window; otherwise roll the survivors
       back (crashed devices roll back at restart) and re-drive. *)
    let rec attempt k =
      let att_span =
        Obs.Trace.start tr ~parent:exec_span "reconfig.attempt"
          ~attrs:[ ("n", Obs.Trace.I (k + 1)) ]
      in
      let close_attempt ok =
        Obs.Trace.finish tr att_span ~attrs:[ ("ok", Obs.Trace.B ok) ]
      in
      let ws = touched () in
      if not (List.for_all (fun w -> Targets.Device.powered_on w.Wiring.device) ws)
      then begin
        close_attempt false;
        retry_or_abort k (* a device is still down: back off, retry *)
      end
      else begin
        let attempt_start = Netsim.Sim.now sim in
        let marks =
          List.map (fun w -> (w, Targets.Device.crashes w.Wiring.device)) ws
        in
        List.iter (fun w -> Targets.Device.freeze w.Wiring.device) ws;
        apply ();
        (* Stage the new program's compiled fast path inside the window:
           traffic still runs the frozen old program, and the thaw flips
           to an already-compiled replacement atomically. *)
        List.iter
          (fun w ->
            if Targets.Device.powered_on w.Wiring.device then
              Targets.Device.precompile w.Wiring.device)
          ws;
        let finish =
          List.fold_left (fun acc (_, t) -> Float.max acc t) 0. times
        in
        Netsim.Sim.after sim finish (fun () ->
            let acked (w, crashes0) =
              Targets.Device.powered_on w.Wiring.device
              && Targets.Device.crashes w.Wiring.device = crashes0
            in
            if List.for_all acked marks then begin
              List.iter (fun w -> Targets.Device.thaw w.Wiring.device) ws;
              close_attempt true;
              on_done
                { started_at = start; finished_at = Netsim.Sim.now sim; mode;
                  per_device_done =
                    List.map (fun (d, t) -> (d, attempt_start +. t)) times;
                  attempts = k + 1; rolled_back = false }
            end
            else begin
              (* un-acked batch: survivors roll back now, crashed
                 devices roll back on restart *)
              List.iter
                (fun w ->
                  if Targets.Device.powered_on w.Wiring.device then
                    Targets.Device.rollback w.Wiring.device)
                ws;
              close_attempt false;
              retry_or_abort k
            end)
      end
    and retry_or_abort k =
      if k < max_retries then begin
        count "reconfig.retries";
        Netsim.Sim.after sim
          (retry_backoff *. (2. ** float_of_int k))
          (fun () -> attempt (k + 1))
      end
      else begin
        count "reconfig.gaveups";
        (* abort atomically: any device still holding an open window
           (e.g. frozen but never crashed) reverts to its old program *)
        List.iter
          (fun w ->
            if Targets.Device.is_frozen w.Wiring.device
               && Targets.Device.powered_on w.Wiring.device
            then Targets.Device.rollback w.Wiring.device)
          (touched ());
        on_done
          { started_at = start; finished_at = Netsim.Sim.now sim; mode;
            per_device_done = []; attempts = k + 1; rolled_back = true }
      end
    in
    attempt 0
  | Drain ->
    (* take each touched device offline for drain + full reflash *)
    let downtimes =
      List.map
        (fun (d, _) ->
          let w = wired_for wireds d in
          let down =
            match w with
            | Some w ->
              let r = Targets.Device.reconfig_times w.Wiring.device in
              r.Targets.Arch.drain_time +. r.Targets.Arch.t_full_reflash
            | None -> 0.
          in
          (match w with Some w -> Wiring.set_online w false | None -> ());
          (d, down))
        times
    in
    apply ();
    let finish =
      List.fold_left (fun acc (_, t) -> Float.max acc t) 0. downtimes
    in
    List.iter
      (fun (d, down) ->
        Netsim.Sim.after sim down (fun () ->
            match wired_for wireds d with
            | Some w -> Wiring.set_online w true
            | None -> ()))
      downtimes;
    Netsim.Sim.after sim finish (fun () ->
        on_done
          { started_at = start; finished_at = start +. finish; mode;
            per_device_done =
              List.map (fun (d, t) -> (d, start +. t)) downtimes;
            attempts = 1; rolled_back = false })

(** Modelled completion latency of a plan in hitless mode (no sim). *)
let hitless_latency ~devices plan =
  Compiler.Plan.duration plan ~times_of:(Compiler.Plan.times_of_devices devices)

(* -- The op interpreter ------------------------------------------------ *)

let find_device devices id =
  List.find_opt (fun d -> Targets.Device.id d = id) devices

let snapshot_maps dev element =
  Compose.element_maps element
  |> List.sort_uniq compare
  |> List.filter_map (fun name ->
         Option.map
           (fun st -> (name, State.snapshot st))
           (Targets.Device.map_state dev name))

let restore_maps dev snaps =
  List.iter
    (fun (name, snap) ->
      ignore (Targets.Device.load_map_snapshot dev name snap))
    snaps

(** Interpret one op against live devices. [Install] of an
    already-installed name is a replacement: the element's map state is
    carried across the uninstall/reinstall. *)
let apply_op devices op =
  let dev id =
    match find_device devices id with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "unknown device %s" id)
  in
  match op with
  | Compiler.Plan.Install { device; element; ctx; order } ->
    Result.bind (dev device) (fun d ->
        let name = Ast.element_name element in
        let carried =
          if List.mem name (Targets.Device.installed_names d) then begin
            let c = snapshot_maps d element in
            ignore (Targets.Device.uninstall d name);
            c
          end
          else []
        in
        match Targets.Device.install d ~ctx ~order element with
        | Ok _ -> restore_maps d carried; Ok ()
        | Error r ->
          Error
            (Printf.sprintf "install %s on %s: %s" name device
               (Targets.Device.reject_to_string r)))
  | Remove { device; element_name } ->
    Result.bind (dev device) (fun d ->
        ignore (Targets.Device.uninstall d element_name);
        Ok ())
  | Move { from_device; to_device; element; ctx; order } ->
    Result.bind (dev from_device) (fun src ->
        Result.bind (dev to_device) (fun dst ->
            let name = Ast.element_name element in
            let carried = snapshot_maps src element in
            (* both tiers travel with a table: the authoritative host-
               tier rule set, and (best-effort) the resident hot-key set
               of the device tier so the destination starts warm.
               Captured before the uninstall, replayed after the
               install — invisible to traffic until the thaw. *)
            let rules, hot =
              match element with
              | Ast.Table tbl ->
                ( Interp.table_rules (Targets.Device.env src) tbl.Ast.tbl_name,
                  Targets.Device.tier_resident_keys src tbl.Ast.tbl_name )
              | Ast.Block _ -> ([], [])
            in
            ignore (Targets.Device.uninstall src name);
            match Targets.Device.install dst ~ctx ~order element with
            | Ok _ ->
              restore_maps dst carried;
              (match element with
               | Ast.Table tbl ->
                 let tname = tbl.Ast.tbl_name in
                 let dst_env = Targets.Device.env dst in
                 (* rule storage is newest-first: replay oldest-first to
                    preserve install order and first-match semantics *)
                 List.iter
                   (fun r -> Interp.install_rule dst_env tname r)
                   (List.rev rules);
                 if hot <> [] then Targets.Device.warm_tier dst tname hot
               | Ast.Block _ -> ());
              Ok ()
            | Error r ->
              Error
                (Printf.sprintf "move %s to %s: %s" name to_device
                   (Targets.Device.reject_to_string r))))
  | Add_parser { device; rule } ->
    Result.bind (dev device) (fun d ->
        (* tolerated: the planner may emit rules a host already has *)
        (match Targets.Device.add_parser_rule d rule with
         | Ok () | Error _ -> ());
        Ok ())
  | Remove_parser { device; rule_name } ->
    Result.bind (dev device) (fun d ->
        ignore (Targets.Device.remove_parser_rule d rule_name);
        Ok ())
  | Migrate_state { from_device; to_device; map_name } ->
    Result.bind (dev from_device) (fun src ->
        Result.bind (dev to_device) (fun dst ->
            match Targets.Device.map_state src map_name with
            | None ->
              Error
                (Printf.sprintf "migrate-state: no map %s on %s" map_name
                   from_device)
            | Some st ->
              if
                Targets.Device.load_map_snapshot dst map_name
                  (State.snapshot st)
              then Ok ()
              else
                Error
                  (Printf.sprintf "migrate-state: map %s not declared on %s"
                     map_name to_device)))
  | Defragment { device; moves = _ } ->
    Result.bind (dev device) (fun d ->
        ignore (Targets.Device.defragment d);
        Ok ())

let apply_ops devices plan =
  let rec go = function
    | [] -> Ok ()
    | op :: rest ->
      (match apply_op devices op with Ok () -> go rest | Error e -> Error e)
  in
  go plan.Compiler.Plan.ops

(** Untimed plan execution: freeze the touched devices (those not
    already inside a caller-held window), interpret the ops, thaw. An
    op failure rolls the self-frozen devices back and returns the
    error, so the plan is transactional over the devices this call
    froze. With [predicted] (the planner's post-execution snapshots),
    the actual device state is reconciled against the prediction after
    the thaw; devices still inside a caller-held window are skipped —
    their deferred cleanups have not run yet. *)
let run_plan ?obs ?parent ?predicted ~devices plan =
  (* untimed: the span records structure (plan name, op count, outcome)
     under the caller's virtual clock; start = end unless the caller's
     clock advances, which it cannot here *)
  let span =
    Option.map
      (fun scope ->
        Obs.Trace.start (Obs.Scope.trace scope) ?parent "reconfig.run_plan"
          ~attrs:
            [ ("plan", Obs.Trace.S plan.Compiler.Plan.plan_name);
              ("ops", Obs.Trace.I (List.length plan.Compiler.Plan.ops)) ])
      obs
  in
  let finish result =
    (match obs, span with
     | Some scope, Some span ->
       Obs.Trace.finish (Obs.Scope.trace scope) span
         ~attrs:[ ("ok", Obs.Trace.B (Result.is_ok result)) ]
     | _ -> ());
    result
  in
  let touched_ids =
    List.sort_uniq compare
      (List.concat_map structural_op_devices plan.Compiler.Plan.ops)
  in
  let structural = List.filter_map (find_device devices) touched_ids in
  let self_frozen =
    List.filter (fun d -> not (Targets.Device.is_frozen d)) structural
  in
  List.iter Targets.Device.freeze self_frozen;
  finish
    (match apply_ops devices plan with
     | Error e ->
       List.iter Targets.Device.rollback self_frozen;
       Error e
     | Ok () ->
       List.iter Targets.Device.thaw self_frozen;
       (match predicted with
        | None -> Ok ()
        | Some preds ->
          let mismatches =
            List.concat_map
              (fun (id, snap) ->
                match find_device devices id with
                | None -> []
                | Some d ->
                  if Targets.Device.is_frozen d then []
                  else
                    List.map
                      (fun m -> id ^ ": " ^ m)
                      (Targets.Resource.diff snap (Targets.Device.snapshot d)))
              preds
          in
          if mismatches = [] then Ok ()
          else
            Error
              ("reconciliation failed: " ^ String.concat "; " mismatches)))

(** [execute] with the op interpreter as [apply] — the timed plan-only
    path used by experiments. *)
let execute_plan ?on_done ?max_retries ?retry_backoff ?stats ~sim ~mode
    ~wireds ~plan () =
  let devices = List.map (fun w -> w.Wiring.device) wireds in
  execute ?on_done ?max_retries ?retry_backoff ?stats ~sim ~mode ~wireds ~plan
    (fun () -> ignore (apply_ops devices plan))

(* -- Plan-then-execute entry points ------------------------------------ *)

(* Run [f] under a named span when an observability scope was supplied;
   [f] gets the span (or [None]) to parent the inner [run_plan] span. *)
let with_obs_span obs name attrs f =
  match obs with
  | None -> f None
  | Some scope ->
    Obs.Trace.with_span (Obs.Scope.trace scope) name ~attrs (fun span ->
        f (Some span))

let placement_of ~path ~prog where_ids =
  { Compiler.Placement.path; prog;
    where =
      List.filter_map
        (fun (n, id) -> Option.map (fun d -> (n, d)) (find_device path id))
        where_ids }

(** Plan and execute a fresh placement. Planning failures are reported;
    an execution failure of a freshly planned op means planner and
    device admission disagree — an invariant violation. *)
let place ?obs ~path prog =
  with_obs_span obs "reconfig.deploy"
    [ ("program", Obs.Trace.S prog.Flexbpf.Ast.prog_name) ]
    (fun parent ->
      match Compiler.Placement.plan ~path prog with
      | Error f -> Error f
      | Ok pl ->
        (match
           run_plan ?obs ?parent ~predicted:pl.Compiler.Placement.pln_snaps
             ~devices:path pl.Compiler.Placement.pln_plan
         with
         | Ok () -> Ok (placement_of ~path ~prog pl.Compiler.Placement.pln_where)
         | Error e -> failwith ("deploy execution failed: " ^ e)))

(** Remove a placed program from its devices. *)
let unplace ?obs (p : Compiler.Placement.t) =
  let ops =
    List.map
      (fun (name, dev) ->
        Compiler.Plan.Remove
          { device = Targets.Device.id dev; element_name = name })
      p.Compiler.Placement.where
  in
  (match
     run_plan ?obs ~devices:p.Compiler.Placement.path
       (Compiler.Plan.v "unplace" ops)
   with
   | Ok () | Error _ -> ());
  p.Compiler.Placement.where <- []

(** Deploy a program fresh onto a path. *)
let deploy ?obs ~path prog =
  Result.map
    (fun placement ->
      { Compiler.Incremental.dep_prog = prog; dep_placement = placement })
    (place ?obs ~path prog)

let commit_deployment (dep : Compiler.Incremental.deployment)
    (pc : Compiler.Incremental.planned_change) =
  let path = dep.dep_placement.Compiler.Placement.path in
  dep.dep_prog <- pc.Compiler.Incremental.ch_prog;
  dep.dep_placement.Compiler.Placement.where <-
    List.filter_map
      (fun (n, id) -> Option.map (fun d -> (n, d)) (find_device path id))
      pc.Compiler.Incremental.ch_where

(** Plan a patch ([Compiler.Incremental.plan_patch], with candidate
    search), execute the winning plan, reconcile against the predicted
    snapshots, and commit the new program/placement. The deployment is
    untouched on any error. *)
let apply_patch ?obs ?candidates ?prefer_adjacent
    (dep : Compiler.Incremental.deployment) patch =
  with_obs_span obs "reconfig.patch"
    [ ("program", Obs.Trace.S dep.Compiler.Incremental.dep_prog.Flexbpf.Ast.prog_name) ]
    (fun parent ->
      match
        Compiler.Incremental.plan_patch ?candidates ?prefer_adjacent dep patch
      with
      | Error e -> Error e
      | Ok (pc, diff) ->
        let path = dep.dep_placement.Compiler.Placement.path in
        (match
           run_plan ?obs ?parent ~predicted:pc.Compiler.Incremental.ch_snaps
             ~devices:path
             pc.Compiler.Incremental.ch_report.Compiler.Incremental.plan
         with
         | Error e -> Error (Compiler.Incremental.Exec_error e)
         | Ok () ->
           commit_deployment dep pc;
           Ok (pc.Compiler.Incremental.ch_report, diff)))

(** Plan and execute the compile-time baseline (full teardown and
    redeploy). *)
let full_recompile ?obs (dep : Compiler.Incremental.deployment) new_prog =
  with_obs_span obs "reconfig.full_recompile"
    [ ("program", Obs.Trace.S new_prog.Flexbpf.Ast.prog_name) ]
    (fun parent ->
      match Compiler.Incremental.plan_full_recompile dep new_prog with
      | Error e -> Error e
      | Ok pc ->
        let path = dep.dep_placement.Compiler.Placement.path in
        (match
           run_plan ?obs ?parent ~predicted:pc.Compiler.Incremental.ch_snaps
             ~devices:path
             pc.Compiler.Incremental.ch_report.Compiler.Incremental.plan
         with
         | Error e -> Error (Compiler.Incremental.Exec_error e)
         | Ok () ->
           commit_deployment dep pc;
           Ok pc.Compiler.Incremental.ch_report))

(* -- Fungible compilation, executed ------------------------------------ *)

type fungible_outcome = {
  placement : Compiler.Placement.t option;
  iterations : int; (* placement attempts *)
  gc_removed : string list;
  defrag_moves : int;
  failure : Compiler.Placement.failure option;
}

let run_fungible ?obs ~path ~prog (o : Compiler.Fungible.outcome) =
  let placement =
    match o.Compiler.Fungible.planned with
    | None -> None
    | Some pl ->
      (match
         run_plan ?obs ~predicted:pl.Compiler.Placement.pln_snaps ~devices:path
           pl.Compiler.Placement.pln_plan
       with
       | Ok () ->
         Some (placement_of ~path ~prog pl.Compiler.Placement.pln_where)
       | Error e -> failwith ("fungible execution failed: " ^ e))
  in
  { placement; iterations = o.Compiler.Fungible.iterations;
    gc_removed = o.Compiler.Fungible.gc_removed;
    defrag_moves = o.Compiler.Fungible.defrag_moves;
    failure = o.Compiler.Fungible.failure }

(** One-shot bin-packing baseline, planned then executed. *)
let place_once ?obs ~path prog =
  run_fungible ?obs ~path ~prog (Compiler.Fungible.place_once ~path prog)

(** The fungible compilation loop (GC + defragmentation), planned then
    executed as a single plan. On failure nothing was executed, so the
    devices are untouched. *)
let place_with_gc ?obs ?max_iterations ~path ~removable prog =
  run_fungible ?obs ~path ~prog
    (Compiler.Fungible.place_with_gc ?max_iterations ~path ~removable prog)
