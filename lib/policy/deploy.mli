(** Deploying compiled policies onto live devices.

    The policy is sliced per device ({!Compile.compile}), then pushed
    through the one reconfiguration engine as a [Compiler.Plan.t]
    under a single caller-held two-version window spanning every
    touched device: freeze all, install the table elements
    ([Runtime.Reconfig.run_plan]), install the rule sets into the
    device environments (invisible to the old program, which never
    references the new tables), thaw all. Traffic therefore observes
    either the pre-policy network or the complete policy — the
    per-packet consistent-update guarantee, by construction. Any
    failure rolls every device back to the old program. *)

type error =
  | Compile_error of Compile.error
  | Runtime_error of string

val pp_error : Format.formatter -> error -> unit

type deployment = {
  dp_name : string;
  dp_owner : string;
  dp_pol : Ast.pol;
  dp_devices : (Targets.Device.t * Compile.lowered) list;
}

(** Compile [pol] for the device/switch assignment and install it
    atomically (one window across all devices). The program and rule
    sets land on every device or none. *)
val deploy :
  ?obs:Obs.Scope.t -> ?owner:string -> name:string ->
  devices:(Targets.Device.t * int64) list -> Ast.pol ->
  (deployment, error) result

(** Remove a deployed policy from all its devices, again under one
    window. Rules disappear with their tables. *)
val undeploy :
  ?obs:Obs.Scope.t -> deployment -> (unit, string) result
