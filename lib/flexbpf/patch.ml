(** The incremental-change DSL (§3.2).

    Runtime changes "need not specify a complete network processing
    stack — they are simply additions, deletions, or changes to the
    existing programs". A patch pairs *selectors* (name-pattern matching
    over the base program, as the paper proposes) with structural
    operations. Applying a patch produces the new program plus a [diff]
    that the incremental compiler turns into a minimal reconfiguration
    plan. *)

open Ast

(* Glob matching: '*' matches any substring, '?' any one character. *)
let glob_matches pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursive matcher; patterns are tiny so plain recursion ok *)
  let rec go i j =
    if i = np then j = ns
    else
      match pattern.[i] with
      | '*' -> go (i + 1) j || (j < ns && go i (j + 1))
      | '?' -> j < ns && go (i + 1) (j + 1)
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

type selector =
  | Sel_name of string (* glob over element names *)
  | Sel_kind of [ `Table | `Block ]
  | Sel_and of selector * selector
  | Sel_or of selector * selector

let rec selector_matches sel (e : element) =
  match sel with
  | Sel_name pattern -> glob_matches pattern (element_name e)
  | Sel_kind `Table -> (match e with Table _ -> true | Block _ -> false)
  | Sel_kind `Block -> (match e with Block _ -> true | Table _ -> false)
  | Sel_and (a, b) -> selector_matches a e && selector_matches b e
  | Sel_or (a, b) -> selector_matches a e || selector_matches b e

let rec pp_selector ppf = function
  | Sel_name p -> Fmt.pf ppf "name(%s)" p
  | Sel_kind `Table -> Fmt.string ppf "kind(table)"
  | Sel_kind `Block -> Fmt.string ppf "kind(block)"
  | Sel_and (a, b) -> Fmt.pf ppf "(%a & %a)" pp_selector a pp_selector b
  | Sel_or (a, b) -> Fmt.pf ppf "(%a | %a)" pp_selector a pp_selector b

type position =
  | At_start
  | At_end
  | Before of selector
  | After of selector

type op =
  | Add_element of position * element
  | Remove_element of selector
  | Replace_element of selector * element
  | Set_default of selector * (string * int64 list)
  | Add_parser_rule of parser_rule
  | Remove_parser_rule of string
  | Add_map of map_decl
  | Remove_map of string
  | Add_header of header_decl

type t = { patch_name : string; patch_owner : string; ops : op list }

let v ?(owner = "infra") name ops =
  { patch_name = name; patch_owner = owner; ops }

(** What changed, by element name — consumed by Compiler.Incremental. *)
type diff = {
  added : string list;
  removed : string list;
  modified : string list; (* replaced elements or default changes *)
  parser_changed : bool;
  maps_added : string list;
  maps_removed : string list;
}

let empty_diff =
  { added = []; removed = []; modified = []; parser_changed = false;
    maps_added = []; maps_removed = [] }

let merge_diff a b =
  { added = a.added @ b.added;
    removed = a.removed @ b.removed;
    modified = a.modified @ b.modified;
    parser_changed = a.parser_changed || b.parser_changed;
    maps_added = a.maps_added @ b.maps_added;
    maps_removed = a.maps_removed @ b.maps_removed }

let diff_size d =
  List.length d.added + List.length d.removed + List.length d.modified

type error =
  | Selector_no_match of selector
  | Duplicate_name of string
  | Unknown_name of string
  | Not_a_table of string

let pp_error ppf = function
  | Selector_no_match s -> Fmt.pf ppf "selector %a matches nothing" pp_selector s
  | Duplicate_name n -> Fmt.pf ppf "name %s already exists" n
  | Unknown_name n -> Fmt.pf ppf "unknown name %s" n
  | Not_a_table n -> Fmt.pf ppf "%s is not a table" n

(* Insert [el] relative to the first element matching the selector. *)
let insert_at position el pipeline =
  let insert sel ~after =
    let rec go = function
      | [] -> None
      | e :: rest when selector_matches sel e ->
        Some (if after then e :: el :: rest else el :: e :: rest)
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
    in
    match go pipeline with
    | Some p -> Ok p
    | None -> Error (Selector_no_match sel)
  in
  match position with
  | At_start -> Ok (el :: pipeline)
  | At_end -> Ok (pipeline @ [ el ])
  | Before sel -> insert sel ~after:false
  | After sel -> insert sel ~after:true

let apply_op (prog, diff) op =
  match op with
  | Add_element (position, el) ->
    let name = element_name el in
    if List.exists (fun e -> element_name e = name) prog.pipeline then
      Error (Duplicate_name name)
    else
      Result.map
        (fun pipeline ->
          ({ prog with pipeline },
           merge_diff diff { empty_diff with added = [ name ] }))
        (insert_at position el prog.pipeline)
  | Remove_element sel ->
    let removed =
      List.filter (selector_matches sel) prog.pipeline |> List.map element_name
    in
    if removed = [] then Error (Selector_no_match sel)
    else
      Ok
        ({ prog with
           pipeline =
             List.filter (fun e -> not (selector_matches sel e)) prog.pipeline },
         merge_diff diff { empty_diff with removed })
  | Replace_element (sel, el) ->
    let modified =
      List.filter (selector_matches sel) prog.pipeline |> List.map element_name
    in
    if modified = [] then Error (Selector_no_match sel)
    else
      Ok
        ({ prog with
           pipeline =
             List.map
               (fun e -> if selector_matches sel e then el else e)
               prog.pipeline },
         merge_diff diff { empty_diff with modified })
  | Set_default (sel, default_action) ->
    let matched = List.filter (selector_matches sel) prog.pipeline in
    if matched = [] then Error (Selector_no_match sel)
    else if List.exists (function Block _ -> true | Table _ -> false) matched
    then
      Error
        (Not_a_table
           (element_name
              (List.find (function Block _ -> true | _ -> false) matched)))
    else
      Ok
        ({ prog with
           pipeline =
             List.map
               (fun e ->
                 match e with
                 | Table t when selector_matches sel e ->
                   Table { t with default_action }
                 | e -> e)
               prog.pipeline },
         merge_diff diff
           { empty_diff with modified = List.map element_name matched })
  | Add_parser_rule r ->
    if List.exists (fun x -> x.pr_name = r.pr_name) prog.parser then
      Error (Duplicate_name r.pr_name)
    else
      Ok
        ({ prog with parser = prog.parser @ [ r ] },
         merge_diff diff { empty_diff with parser_changed = true })
  | Remove_parser_rule name ->
    if List.exists (fun x -> x.pr_name = name) prog.parser then
      Ok
        ({ prog with parser = List.filter (fun x -> x.pr_name <> name) prog.parser },
         merge_diff diff { empty_diff with parser_changed = true })
    else Error (Unknown_name name)
  | Add_map m ->
    if List.exists (fun (x : map_decl) -> x.map_name = m.map_name) prog.maps
    then Error (Duplicate_name m.map_name)
    else
      Ok
        ({ prog with maps = prog.maps @ [ m ] },
         merge_diff diff { empty_diff with maps_added = [ m.map_name ] })
  | Remove_map name ->
    if List.exists (fun (x : map_decl) -> x.map_name = name) prog.maps then
      Ok
        ({ prog with
           maps = List.filter (fun (x : map_decl) -> x.map_name <> name) prog.maps },
         merge_diff diff { empty_diff with maps_removed = [ name ] })
    else Error (Unknown_name name)
  | Add_header h ->
    if List.exists (fun x -> x.hdr_name = h.hdr_name) prog.headers then
      Error (Duplicate_name h.hdr_name)
    else
      Ok ({ prog with headers = prog.headers @ [ h ] }, diff)

(** Apply all operations in order; the result is type-checked so a patch
    can never produce an ill-formed program. *)
let apply patch prog =
  let rec go acc = function
    | [] -> Ok acc
    | op :: rest ->
      (match apply_op acc op with
       | Ok acc -> go acc rest
       | Error e -> Error (`Patch e))
  in
  match go (prog, empty_diff) patch.ops with
  | Error _ as e -> e
  | Ok (prog', diff) ->
    (match Typecheck.check_program prog' with
     | Ok () -> Ok (prog', diff)
     | Error errs -> Error (`Ill_typed errs))
