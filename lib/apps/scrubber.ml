(** DDoS scrubber: a blocklist table populated by the controller from
    heavy-hitter / SYN-alarm digests, plus an aggregate rate meter.
    Designed to be injected at attack ingress points and removed after
    the attack — it has no persistent footprint (§3.4 "utility
    functions ... injected in real time ... removed soon after"). *)

open Flexbpf.Builder

let scrub_table ?(name = "scrub_blocklist") ?(size = 4096) () =
  table name
    ~keys:[ exact (field "ipv4" "src") ]
    ~actions:
      [ action "scrub" [ map_incr "scrubbed" [ const 0 ]; drop ];
        action "pass" [ Flexbpf.Ast.Nop ] ]
    ~default:("pass", []) ~size ()

let scrubbed_map = map_decl ~key_arity:1 ~size:4 "scrubbed"

let program ?(owner = "infra") () =
  program ~owner "scrubber" ~maps:[ scrubbed_map ] [ scrub_table () ]

(** Block a source address. *)
let block_rule ~src =
  rule ~priority:5 ~matches:[ exact_i src ] ~action:("scrub", []) ()

let scrubbed_count dev =
  match Targets.Device.map_state dev "scrubbed" with
  | Some st -> Flexbpf.State.get st [ 0L ]
  | None -> 0L
