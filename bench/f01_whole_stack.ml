(* F1 — Figure 1 reproduction: whole-network runtime programming.

   One FlexBPF datapath program containing host-class offloads
   (congestion control, a dRPC caller), NIC-class blocks, and
   switch-class match/action tables is written against the fungible
   datapath abstraction; the compiler distributes it vertically (host /
   NIC / switch) and horizontally (along the path), and live traffic
   verifies each component executes where it was placed. *)

open Flexbpf.Builder

let whole_stack_program () =
  program "figure1"
    ~maps:
      [ map_decl ~key_arity:1 ~size:64 "ingress_counter";
        map_decl ~key_arity:2 ~size:4096 "flow_state";
        Apps.Telemetry.flow_bytes_map ]
    ([ (* switch-class: forwarding tables *)
       Common.exact_table ~size:4096 "vlan_map";
       Common.lpm_table ~size:8192 "routes";
       (* anywhere: small telemetry block *)
       Apps.Telemetry.flow_counter;
       (* NIC/host-class: a stateful offload with a deep loop *)
       block "flow_offload"
         [ loop 60
             [ map_put "flow_state"
                 [ field "ipv4" "src"; meta "_loop_i" ]
                 (meta "_loop_i") ] ];
       (* host-class: invokes an infrastructure dRPC service *)
       block "replication_hook" [ call "replicate" [ const 0; const 1 ] ] ]
    )

let run () =
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
  (* infra first, then the figure-1 program as an additional datapath *)
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> failwith e);
  Runtime.Drpc.register_standard (Flexnet.drpc net) ~fleet:(Flexnet.path net)
    ~map_name:"flow_bytes";
  let prog = whole_stack_program () in
  let cert =
    match Flexbpf.Analysis.certify prog with
    | Ok c -> c
    | Error e -> failwith (Fmt.str "%a" Flexbpf.Analysis.pp_rejection e)
  in
  let placement =
    match Runtime.Reconfig.place ~path:(Flexnet.path net) prog with
    | Ok p -> p
    | Error f -> failwith (Fmt.str "%a" Compiler.Placement.pp_failure f)
  in
  (* traffic to exercise the wired components *)
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  for _ = 1 to 100 do
    Flexnet.send_h0 net
      (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id ~born:0.)
  done;
  Flexnet.run net ~until:1.0;
  let sla = Compiler.Sla.estimate placement in
  let class_of name =
    let u =
      List.find
        (fun u ->
          Flexbpf.Ast.element_name u.Compiler.Lowering.u_element = name)
        (Compiler.Lowering.units_of_program prog)
    in
    Compiler.Lowering.vertical_class_to_string u.Compiler.Lowering.u_class
  in
  let rows =
    List.map
      (fun (name, dev) ->
        let kind = Targets.Arch.kind_to_string (Targets.Device.kind dev) in
        let layer =
          match Targets.Device.kind dev with
          | Targets.Arch.Host_ebpf -> "host"
          | Targets.Arch.Smartnic | Targets.Arch.Fpga -> "nic"
          | _ -> "switch"
        in
        [ name; class_of name; Targets.Device.id dev; kind; layer ])
      (List.rev placement.Compiler.Placement.where)
  in
  Report.print ~id:"F1" ~title:"whole-stack vertical+horizontal distribution"
    ~claim:
      "one datapath program written against the fungible-datapath abstraction \
       is split by the compiler across host stacks, NICs, and switches \
       (Figure 1); offload-only components never land on switching ASICs"
    ~header:[ "component"; "class"; "device"; "architecture"; "layer" ]
    rows;
  Printf.printf
    "certified worst-case: %d cycles; end-to-end added latency %.0f ns; \
     throughput ceiling %.2e pps (bottleneck %s); delivered %d/100\n"
    cert.Flexbpf.Analysis.cert_cycles sla.Compiler.Sla.added_latency_ns
    sla.Compiler.Sla.throughput_pps sla.Compiler.Sla.bottleneck
    (Flexnet.stats net).Flexnet.delivered_h1
