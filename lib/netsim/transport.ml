(** Minimal reliable window-based transport with pluggable congestion
    control.

    The paper's "live infrastructure customization" use case swaps
    congestion-control algorithms at runtime across hosts and NICs. This
    transport provides the substrate: flows are window-limited, receivers
    echo ECN marks in ACKs, and the CC policy is a record of callbacks
    that the apps layer backs with interpreted FlexBPF blocks — so a CC
    algorithm really is a reloadable network program. *)

type cc = {
  cc_name : string;
  init_cwnd : float;
  on_ack : cwnd:float -> ecn:bool -> rtt:float -> float;
  on_loss : cwnd:float -> float;
}

(** Additive-increase / multiplicative-decrease baseline (Reno-like). *)
let reno =
  { cc_name = "reno";
    init_cwnd = 10.;
    on_ack = (fun ~cwnd ~ecn ~rtt:_ -> if ecn then Float.max 1. (cwnd /. 2.) else cwnd +. (1. /. cwnd));
    on_loss = (fun ~cwnd -> Float.max 1. (cwnd /. 2.)) }

type flow = {
  flow_id : int;
  src : Node.t;
  dst_id : int;
  sport : int;
  dport : int;
  total : int; (* packets to deliver *)
  pkt_size : int;
  started : float;
  mutable cwnd : float;
  mutable next_seq : int;
  mutable in_flight : int;
  mutable acked : int;
  mutable retransmits : int;
  mutable done_at : float option;
  mutable send_times : (int, float) Hashtbl.t;
  mutable acked_set : (int, unit) Hashtbl.t;
}

type endpoint = {
  node : Node.t;
  mutable cc : cc;
  mutable flows : flow list;
  stack : t;
}

and t = {
  sim : Sim.t;
  mutable rto : float;
  endpoints : (int, endpoint) Hashtbl.t; (* node id -> endpoint *)
  fct : Stats.Summary.t; (* flow completion times *)
  mutable completed : int;
  mutable flow_counter : int;
  mutable on_complete : flow -> unit;
}

let create ?(rto = 0.05) sim =
  { sim; rto; endpoints = Hashtbl.create 16; fct = Stats.Summary.create ();
    completed = 0; flow_counter = 0; on_complete = ignore }

let fct_summary t = t.fct
let completed t = t.completed
let set_on_complete t f = t.on_complete <- f

let endpoint t node_id = Hashtbl.find_opt t.endpoints node_id

(** Swap the CC algorithm on a host endpoint — the runtime-reprogramming
    hook. Existing flows pick up the new policy on their next ACK. *)
let set_cc t node_id cc =
  match endpoint t node_id with
  | Some ep -> ep.cc <- cc
  | None -> invalid_arg "Transport.set_cc: no endpoint on node"

let find_flow ep ~sport ~dport =
  List.find_opt (fun f -> f.sport = sport && f.dport = dport) ep.flows

let data_packet flow ~seq ~born ~ecn_echo:_ =
  let pkt =
    Traffic.tcp_packet ~size:flow.pkt_size ~flags:0L ~src:flow.src.Node.id
      ~dst:flow.dst_id ~sport:flow.sport ~dport:flow.dport ~born ()
  in
  Packet.set_field pkt "tcp" "seq" (Int64.of_int seq);
  pkt

let ack_packet ~src_id ~dst_id ~sport ~dport ~seq ~ecn ~born =
  let pkt =
    Traffic.tcp_packet ~size:64 ~flags:Packet.tcp_flag_ack ~src:src_id
      ~dst:dst_id ~sport ~dport ~born ()
  in
  Packet.set_field pkt "tcp" "ack" (Int64.of_int seq);
  (* ECN echo rides in a tcp flag bit in real stacks; metadata here. *)
  Packet.set_meta pkt "ecn_echo" (if ecn then 1L else 0L);
  pkt

let rec pump t ep flow =
  while
    flow.in_flight < int_of_float flow.cwnd && flow.next_seq < flow.total
  do
    let seq = flow.next_seq in
    flow.next_seq <- seq + 1;
    flow.in_flight <- flow.in_flight + 1;
    send_seq t ep flow seq
  done

and send_seq t ep flow seq =
  let now = Sim.now t.sim in
  Hashtbl.replace flow.send_times seq now;
  let pkt = data_packet flow ~seq ~born:now ~ecn_echo:false in
  Node.send flow.src ~port:0 pkt;
  arm_rto t ep flow seq

and arm_rto t ep flow seq =
  Sim.after t.sim t.rto (fun () ->
      if flow.done_at = None && not (Hashtbl.mem flow.acked_set seq) then begin
        flow.retransmits <- flow.retransmits + 1;
        flow.cwnd <- ep.cc.on_loss ~cwnd:flow.cwnd;
        send_seq t ep flow seq
      end)

let handle_ack t ep pkt =
  let sport = Int64.to_int (Packet.field_exn pkt "tcp" "dport") in
  let dport = Int64.to_int (Packet.field_exn pkt "tcp" "sport") in
  match find_flow ep ~sport ~dport with
  | None -> ()
  | Some flow ->
    let seq = Int64.to_int (Packet.field_exn pkt "tcp" "ack") in
    if not (Hashtbl.mem flow.acked_set seq) then begin
      Hashtbl.replace flow.acked_set seq ();
      flow.acked <- flow.acked + 1;
      flow.in_flight <- Stdlib.max 0 (flow.in_flight - 1);
      let now = Sim.now t.sim in
      let rtt =
        match Hashtbl.find_opt flow.send_times seq with
        | Some sent -> now -. sent
        | None -> t.rto
      in
      let ecn = Packet.meta_default pkt "ecn_echo" 0L = 1L in
      flow.cwnd <- ep.cc.on_ack ~cwnd:flow.cwnd ~ecn ~rtt;
      if flow.acked >= flow.total then begin
        flow.done_at <- Some now;
        Stats.Summary.add t.fct (now -. flow.started);
        t.completed <- t.completed + 1;
        t.on_complete flow
      end
      else pump t ep flow
    end

let handle_data t ep pkt =
  (* Receiver side: ack every data packet, echoing the ECN mark. *)
  let now = Sim.now t.sim in
  let seq = Int64.to_int (Packet.field_exn pkt "tcp" "seq") in
  let sport = Int64.to_int (Packet.field_exn pkt "tcp" "dport") in
  let dport = Int64.to_int (Packet.field_exn pkt "tcp" "sport") in
  let src_id = ep.node.Node.id in
  let dst_id = Int64.to_int (Packet.field_exn pkt "ipv4" "src") in
  let ecn = Packet.field_exn pkt "ipv4" "ecn" = 1L in
  let ack = ack_packet ~src_id ~dst_id ~sport ~dport ~seq ~ecn ~born:now in
  Node.send ep.node ~port:0 ack

(** Install the transport as the packet handler of a host node. Packets
    that are not TCP to this node are passed to [fallback]. *)
let attach t (node : Node.t) ?(fallback = fun _ ~in_port:_ _ -> ()) () =
  let ep = { node; cc = reno; flows = []; stack = t } in
  Hashtbl.replace t.endpoints node.Node.id ep;
  Node.set_handler node (fun n ~in_port pkt ->
      let mine =
        Packet.has_header pkt "tcp"
        && Packet.field pkt "ipv4" "dst" = Some (Int64.of_int node.Node.id)
      in
      if mine then begin
        let flags = Packet.field_exn pkt "tcp" "flags" in
        if Int64.logand flags Packet.tcp_flag_ack <> 0L then handle_ack t ep pkt
        else handle_data t ep pkt
      end
      else fallback n ~in_port pkt);
  ep

(** Start a flow of [packets] data packets from the attached host [src]
    toward host id [dst]. *)
let start_flow t ~src ~dst ?(pkt_size = 1000) ~packets () =
  let ep =
    match endpoint t src with
    | Some ep -> ep
    | None -> invalid_arg "Transport.start_flow: source not attached"
  in
  t.flow_counter <- t.flow_counter + 1;
  let flow =
    { flow_id = t.flow_counter; src = ep.node; dst_id = dst;
      sport = 10000 + t.flow_counter; dport = 80; total = packets; pkt_size;
      started = Sim.now t.sim; cwnd = ep.cc.init_cwnd; next_seq = 0;
      in_flight = 0; acked = 0; retransmits = 0; done_at = None;
      send_times = Hashtbl.create 64; acked_set = Hashtbl.create 64 }
  in
  ep.flows <- flow :: ep.flows;
  pump t ep flow;
  flow
