(** Price-driven admission rounds over the plan/execute split.

    The auction keeps one price book per device architecture on the
    path. A clearing round (i) reads immutable resource snapshots,
    (ii) runs joint tâtonnement — each waiting tenant demands replicas
    from its cheapest book, each book's prices move against its own
    capacity — within a convergence budget, (iii) ranks the surviving
    bids by value density and admits winners through
    {!Control.Tenants.admit_bid}, i.e. the ordinary certify → plan →
    [Runtime.Reconfig] pipeline, (iv) defers priced-out bidders and,
    when capacity is exhausted, preempts admitted [Best_effort] tenants
    of strictly lower density through {!Control.Tenants.depart}
    ([~reason:`Preempted] — the same patch/rollback path as a voluntary
    departure, so old-XOR-new is never violated). [Protected] tenants
    are never preempted. *)

type admitted = {
  ad_tenant : Tenant.t;
  ad_at : float; (* virtual admission time *)
  ad_price : float; (* per-replica rent quoted at admission *)
  mutable ad_bid : Tenant.bid option; (* standing bid at current prices *)
  mutable ad_spend : float; (* accumulated rent across rounds *)
}

type round = {
  rd_index : int;
  rd_time : float; (* virtual time of the clearing *)
  rd_prices : (Targets.Arch.kind * (Prices.rkind * float) list) list;
  rd_iterations : int; (* tâtonnement steps spent *)
  rd_converged : bool;
  rd_bidders : int; (* waiting tenants at the start of the round *)
  rd_admitted : string list;
  rd_deferred : string list;
  rd_preempted : string list;
  rd_rejected : string list; (* dropped: pipeline reject or deferral cap *)
}

type t

(** [create ~tenants ~path ()] builds the market over a live tenant
    manager and its compile path. [max_deferrals] (default 50) bounds
    how many rounds a bidder may sit priced-out in the queue before
    being dropped as rejected. Prices are seeded from current snapshot
    occupancy. *)
val create :
  ?config:Prices.config -> ?max_deferrals:int ->
  tenants:Control.Tenants.t -> path:Targets.Device.t list -> unit -> t

(** Enqueue a bidder; duplicates (already waiting or admitted) are
    ignored. Nothing is placed until the next {!clear}. *)
val submit : t -> Tenant.t -> unit

(** Voluntary departure: an admitted tenant leaves through
    {!Control.Tenants.depart}; a waiting one just leaves the queue. *)
val withdraw : t -> string -> unit

(** One clearing round; returns its record (also appended to
    {!rounds}). *)
val clear : t -> round

(** Cheapest per-replica rent for a footprint at current prices — the
    price signal [Control.Elastic.create_price] policies sample. *)
val quote : t -> Targets.Resource.t -> float

val books : t -> (Targets.Arch.kind * Prices.t) list

(** (used, capacity) per book, from current device snapshots. *)
val occupancy :
  t -> (Targets.Arch.kind * (Targets.Resource.t * Targets.Resource.t)) list

val admitted : t -> admitted list
val find_admitted : t -> string -> admitted option
val waiting : t -> Tenant.t list

(** Clearing history, oldest first. *)
val rounds : t -> round list

val pp_round : Format.formatter -> round -> unit
