(** Deterministic, seeded fault injection.

    A fault plan is a declarative list of misbehaviors pinned to
    simulated time: link loss / extra delay / partition windows, device
    crash + restart events, and dRPC drop-probability windows. The plan
    is data; components opt in by {e binding}:

    - links bind here directly ([bind_link] / [bind_node_links]) — the
      injector schedules window start/stop events that arm and clear
      the link's loss/delay/down state;
    - devices live in higher layers the netsim library cannot see, so
      they register crash/restart callbacks ([register_device]); the
      injector fires them at the planned times and notifies
      subscribers (controller, replication groups) of every event;
    - dRPC registries consult [rpc_decision] per invocation.

    All randomness flows through one [Random.State] seeded at [create],
    and the simulation itself is single-threaded and deterministic, so
    a (seed, plan, workload) triple always injects the same faults at
    the same points. Happy-path code never pays for an unarmed plan. *)

type link_fault =
  | Loss of float (* drop each packet with this probability *)
  | Extra_delay of float (* add seconds of propagation latency *)
  | Down (* partition: link refuses traffic *)

type fault =
  | Link_window of {
      link : string; (* glob over link names, e.g. "s1->*" *)
      start : float;
      stop : float;
      what : link_fault;
    }
  | Device_crash of {
      device : string;
      at : float;
      restart_after : float; (* seconds of downtime *)
    }
  | Drpc_window of {
      service : string; (* glob over service names *)
      start : float;
      stop : float;
      drop_prob : float; (* probability an invocation is lost *)
    }

type device_event = [ `Crash | `Restart ]

type t = {
  sim : Sim.t;
  rng : Random.State.t;
  plan : fault list;
  counters : Stats.Counters.t;
  mutable subscribers : (string -> device_event -> unit) list;
}

let create ~sim ~seed plan =
  (* injection counters live in the simulation's unified registry *)
  { sim; rng = Random.State.make [| seed |]; plan;
    counters = Obs.Scope.metrics (Sim.obs sim); subscribers = [] }

let tracer t = Obs.Scope.trace (Sim.obs t.sim)

let plan t = t.plan
let counters t = t.counters
let rng t = t.rng

(* Minimal glob: '*' matches any substring (the only metacharacter
   fault plans need; netsim cannot reach Flexbpf.Patch's matcher). *)
let glob_matches pat s =
  let np = String.length pat and ns = String.length s in
  let rec go p i =
    if p = np then i = ns
    else if pat.[p] = '*' then
      let rec try_from j = j <= ns && (go (p + 1) j || try_from (j + 1)) in
      try_from i
    else i < ns && pat.[p] = s.[i] && go (p + 1) (i + 1)
  in
  go 0 0

(* Schedule [on] at window start and [off] at window stop, clipping to
   the present (binding mid-window arms immediately). Elapsed windows
   schedule nothing. *)
let schedule_window t ~start ~stop ~on ~off =
  let now = Sim.now t.sim in
  if stop > now then begin
    Sim.at t.sim (Float.max start now) on;
    Sim.at t.sim (Float.max stop now) off
  end

(** Bind one link: every [Link_window] whose pattern matches the link's
    name gets its start/stop events scheduled against it. *)
let bind_link t link =
  let name = Link.name link in
  List.iter
    (function
      | Link_window l when glob_matches l.link name ->
        let kind, arm, clear =
          match l.what with
          | Loss p ->
            ( "loss",
              (fun () ->
                Stats.Counters.incr t.counters "faults.link.loss_windows";
                Link.set_loss link ~rng:t.rng p),
              fun () -> Link.set_loss link 0. )
          | Extra_delay d ->
            ( "delay",
              (fun () ->
                Stats.Counters.incr t.counters "faults.link.delay_windows";
                Link.set_extra_delay link d),
              fun () -> Link.set_extra_delay link 0. )
          | Down ->
            ( "partition",
              (fun () ->
                Stats.Counters.incr t.counters "faults.link.partitions";
                Link.set_up link false),
              fun () -> Link.set_up link true )
        in
        (* the window span opens when the fault arms and closes when it
           clears; the ref threads it between the two scheduled events *)
        let window = ref None in
        let on () =
          window :=
            Some
              (Obs.Trace.start (tracer t) "fault.link_window"
                 ~attrs:[ ("link", Obs.Trace.S name); ("kind", Obs.Trace.S kind) ]);
          arm ()
        and off () =
          clear ();
          match !window with
          | Some span -> Obs.Trace.finish (tracer t) span
          | None -> ()
        in
        schedule_window t ~start:l.start ~stop:l.stop ~on ~off
      | _ -> ())
    t.plan

(** Bind every link attached to a node's ports. *)
let bind_node_links t node =
  for port = 0 to Node.port_count node - 1 do
    match Node.link node ~port with
    | Some link -> bind_link t link
    | None -> ()
  done

(** Register a device's crash/restart callbacks: each matching
    [Device_crash] schedules [crash] at its time and [restart] after
    the downtime, notifying subscribers around both. *)
let register_device t id ~crash ~restart =
  List.iter
    (function
      | Device_crash d when d.device = id ->
        let now = Sim.now t.sim in
        if d.at >= now then begin
          (* downtime span: crash opens it, restart closes it *)
          let window = ref None in
          Sim.at t.sim d.at (fun () ->
              Stats.Counters.incr t.counters "faults.device.crashes";
              window :=
                Some
                  (Obs.Trace.start (tracer t) "fault.device_crash"
                     ~attrs:[ ("device", Obs.Trace.S id) ]);
              crash ();
              List.iter (fun f -> f id `Crash) t.subscribers);
          Sim.at t.sim (d.at +. d.restart_after) (fun () ->
              restart ();
              (match !window with
               | Some span -> Obs.Trace.finish (tracer t) span
               | None -> ());
              List.iter (fun f -> f id `Restart) t.subscribers)
        end
      | _ -> ())
    t.plan

(** Observe crash/restart events (controller re-resolution, replication
    failover). Subscribing is retroactive-safe: the list is read at
    event time, so late subscribers still see future events. *)
let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

(** Per-invocation verdict for a dRPC [service] at the current time:
    the highest matching in-window drop probability decides. *)
let rpc_decision t ~service =
  let now = Sim.now t.sim in
  let p =
    List.fold_left
      (fun acc -> function
        | Drpc_window w
          when glob_matches w.service service && now >= w.start && now < w.stop
          -> Float.max acc w.drop_prob
        | _ -> acc)
      0. t.plan
  in
  if p > 0. && Random.State.float t.rng 1.0 < p then begin
    Stats.Counters.incr t.counters "faults.drpc.drops";
    `Drop
  end
  else `Deliver
