(** SLA estimation and re-certification (§3.3). A fungible datapath is
    mapped to devices with different performance envelopes, so every
    (re)placement is checked against the negotiated SLA. *)

type sla = {
  max_added_latency_ns : float;
  min_throughput_pps : float;
}

type estimate = {
  added_latency_ns : float; (* sum of per-device processing latencies *)
  throughput_pps : float; (* min of device ceilings *)
  bottleneck : string; (* device id of the throughput bottleneck *)
}

(** Only devices hosting elements add latency; every used device bounds
    throughput. *)
val estimate : Placement.t -> estimate

type verdict = Meets | Violates of string list

(** Re-certify after every reconfiguration, per the paper's
    "re-certifying SLA objectives". *)
val certify : sla -> Placement.t -> verdict
