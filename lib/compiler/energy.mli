(** Energy-aware consolidation (§3.3): at low load, program elements
    consolidate onto as few devices as possible and emptied devices
    power down; at high load they spread back out. *)

type move = { moved_element : string; from_device : string; to_device : string }

type consolidation = {
  moves : move list;
  powered_off : string list;
  watts_before : float;
  watts_after : float;
}

(** Static draw of the device set (2 W sleep power when off). *)
val total_watts : Targets.Device.t list -> float

(** Drain the least-utilized devices into the most-utilized ones
    (carrying map state), power off devices that end up empty, and
    update the placement map. Deliberately ignores the path-order
    constraint — an energy/performance trade the operator opts into at
    low load. *)
val consolidate : Placement.t -> consolidation

(** Power every device back on (load rose again). *)
val expand : Targets.Device.t list -> unit
