(** Congestion-control algorithms as FlexBPF blocks (§1.1 "live
    infrastructure customization"). Each algorithm is a real FlexBPF
    block over metadata in fixed point (cwnd scaled by 1000);
    [to_transport_cc] interprets it per ACK, so swapping the block is a
    runtime reprogramming of the transport. Inputs: meta.cwnd, meta.ecn
    (0/1), meta.rtt_us; output: meta.cwnd. *)

(** Reno/NewReno-style AIMD; ECN treated as a loss signal. *)
val reno_block : Flexbpf.Ast.element

val dctcp_alpha_map : Flexbpf.Ast.map_decl

(** DCTCP-style: EWMA of the ECN fraction drives proportional cuts. *)
val dctcp_block : Flexbpf.Ast.element

(** TIMELY-style delay-based control over an RTT target band. *)
val timely_block : ?t_low_us:int -> ?t_high_us:int -> unit -> Flexbpf.Ast.element

val cc_maps : Flexbpf.Ast.map_decl list

(** A host-stack program carrying CC blocks, so they can be placed,
    certified, and migrated like any other component. *)
val program :
  ?owner:string -> ?blocks:Flexbpf.Ast.element list -> unit ->
  Flexbpf.Ast.program

(** Turn a CC block into transport callbacks; the block runs in its own
    environment (per-endpoint state, e.g. DCTCP's alpha).
    @raise Invalid_argument if given a table. *)
val to_transport_cc : ?init_cwnd:float -> Flexbpf.Ast.element -> Netsim.Transport.cc
