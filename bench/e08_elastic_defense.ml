(* E8 — Elastic security: defenses scale with attack volume (§1.1).

   "Runtime programmable defenses can be summoned into the network
   on-the-fly and retired when attacks subside. Such defenses are also
   elastic, capable of scaling ... based on changing attack strengths."

   A SYN flood ramps to each peak rate; the elastic policy injects
   defense replicas across switches proportionally to offered load and
   retires them afterwards. *)

let run_case peak_pps =
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> failwith e);
  let sim = Flexnet.sim net in
  let h0 = Flexnet.h0 net and h1 = Flexnet.h1 net in
  let switches = Flexnet.switch_devices net in
  let victim_syns = ref 0 in
  Netsim.Node.set_handler h1 (fun _ ~in_port:_ pkt ->
      let flags = Option.value (Netsim.Packet.field pkt "tcp" "flags") ~default:0L in
      if Int64.logand flags Netsim.Packet.tcp_flag_syn <> 0L then incr victim_syns);
  let attack_sent = ref 0 in
  let attack_gen = Netsim.Traffic.create ~seed:4 sim in
  Netsim.Traffic.ramp attack_gen ~peak_pps ~start:0.5 ~ramp_up:1.0 ~hold:1.5
    ~ramp_down:1.0 ~send:(fun () ->
      incr attack_sent;
      Netsim.Node.send h0 ~port:0
        (Netsim.Traffic.spoofed_syn attack_gen ~dst:h1.Netsim.Node.id ~dport:80
           ~born:(Netsim.Sim.now sim)));
  let defense_prog = Apps.Syn_defense.program ~threshold:100 () in
  let controller = Flexnet.controller net in
  let uri = Control.Uri.v ~owner:"infra" "syn-defense" in
  ignore
    (Control.Controller.register_app controller ~uri
       ~kind:Control.Controller.Utility ~program:defense_prog ~replicas:[]);
  let replicas = ref 0 in
  let max_replicas_seen = ref 0 in
  let scrubbed_acc = ref 0 in
  (* replica churn goes through the controller, i.e. install/remove
     plans executed by the reconfiguration engine *)
  let actuate =
    Control.Elastic.app_actuator
      ~on_retire:(fun dev ->
        scrubbed_acc :=
          !scrubbed_acc + Int64.to_int (Apps.Syn_defense.dropped_count dev))
      ~controller ~uri ~devices:switches ()
  in
  let scale_to n =
    let n = min n (List.length switches) in
    actuate n;
    replicas := n;
    max_replicas_seen := max !max_replicas_seen n
  in
  let last_victim = ref 0 in
  let sample () =
    let now_us = Int64.of_float (Netsim.Sim.now sim *. 1e6) in
    if !replicas > 0 then
      Int64.to_float
        (Apps.Syn_defense.syn_rate_of (List.hd switches)
           ~dst:(Int64.of_int h1.Netsim.Node.id) ~now_us)
      *. 10.
    else begin
      let delta = !victim_syns - !last_victim in
      last_victim := !victim_syns;
      float_of_int delta *. 10.
    end
  in
  let _policy =
    Control.Elastic.create ~sim ~name:"defense" ~min_replicas:0 ~max_replicas:3
      ~cooldown:0.3 ~period:0.1 ~sample ~capacity_per_replica:8000. ~scale_to ()
  in
  Flexnet.run net ~until:5.0;
  let scrubbed =
    !scrubbed_acc
    + List.fold_left
        (fun acc d -> acc + Int64.to_int (Apps.Syn_defense.dropped_count d))
        0 switches
  in
  [ Printf.sprintf "%.0fk" (peak_pps /. 1000.);
    Report.i !attack_sent;
    Report.i scrubbed;
    Report.pct (float_of_int scrubbed /. float_of_int (max 1 !attack_sent));
    Report.i !max_replicas_seen;
    Report.i !replicas ]

let run () =
  let rows = List.map run_case [ 2_000.; 8_000.; 20_000. ] in
  Report.print ~id:"E8" ~title:"elastic in-network defense vs attack volume"
    ~claim:
      "defenses are summoned when an attack starts, replica count follows \
       offered attack volume, and the footprint returns to zero when the \
       attack subsides"
    ~header:
      [ "peak-rate"; "attack-syns"; "scrubbed"; "scrub-rate"; "max-replicas";
        "replicas-after" ]
    rows
