(** Reconfiguration plans: the interface between the compiler and the
    runtime. A plan is an ordered list of device operations; the
    runtime executes it hitlessly (or via drain, for the compile-time
    baseline). Per-device operations serialize; different devices work
    in parallel, so a plan's wall-clock is the max per-device serial
    time. *)

type op =
  | Install of {
      device : string;
      element : Flexbpf.Ast.element;
      ctx : Flexbpf.Ast.program;
      order : int;
    }
  | Remove of { device : string; element_name : string }
  | Move of {
      from_device : string;
      to_device : string;
      element : Flexbpf.Ast.element;
      ctx : Flexbpf.Ast.program;
      order : int;
    }
  | Add_parser of { device : string; rule : Flexbpf.Ast.parser_rule }
  | Remove_parser of { device : string; rule_name : string }
  | Migrate_state of { from_device : string; to_device : string; map_name : string }

type t = { plan_name : string; ops : op list }

val v : string -> op list -> t

(** The device an op executes on (destination for moves/migrations). *)
val op_device : op -> string

val op_name : op -> string

(** Modelled duration of one op given its device's timing profile. *)
val op_time : Targets.Arch.reconfig_times -> op -> float

(** Wall-clock duration: per-device serialization, cross-device
    parallelism. [times_of] resolves a device id to its profile. *)
val duration : times_of:(string -> Targets.Arch.reconfig_times) -> t -> float

(** Total serial work — the "intrusiveness" metric of the incremental
    compilation experiments. *)
val total_work : times_of:(string -> Targets.Arch.reconfig_times) -> t -> float

val size : t -> int
val pp : Format.formatter -> t -> unit
