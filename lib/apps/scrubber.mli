(** DDoS scrubber: a blocklist table populated by the controller from
    heavy-hitter / SYN-alarm digests. Injected at attack ingress points
    and removed afterwards — no persistent footprint (§3.4). *)

val scrub_table : ?name:string -> ?size:int -> unit -> Flexbpf.Ast.element
val scrubbed_map : Flexbpf.Ast.map_decl
val program : ?owner:string -> unit -> Flexbpf.Ast.program

(** Rule dropping a source address. *)
val block_rule : src:int -> Flexbpf.Ast.rule

val scrubbed_count : Targets.Device.t -> int64
