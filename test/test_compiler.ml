(* Tests for the FlexNet compiler: lowering, placement, the fungible
   GC loop, incremental recompilation, table merging, SLA checking, and
   energy consolidation. *)

open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A whole-stack path: host stack, smartnic, three switches, smartnic,
   host stack — the physical slice of a fungible datapath. *)
let mk_path ?(arch = Targets.Arch.Drmt) () =
  [ Targets.Device.create ~id:"h0" Targets.Arch.host_ebpf;
    Targets.Device.create ~id:"nic0" Targets.Arch.smartnic;
    Targets.Device.create ~id:"s0" (Targets.Arch.profile_of_kind arch);
    Targets.Device.create ~id:"s1" (Targets.Arch.profile_of_kind arch);
    Targets.Device.create ~id:"s2" (Targets.Arch.profile_of_kind arch);
    Targets.Device.create ~id:"nic1" Targets.Arch.smartnic;
    Targets.Device.create ~id:"h1" Targets.Arch.host_ebpf ]

let heavy_block name = block name [ loop 64 [ set_meta "x" (const 1) ] ]

let small_table name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "a" [ Flexbpf.Ast.Nop ] ]
    ~default:("a", []) ~size:64 ()

(* -- Lowering ------------------------------------------------------------ *)

let test_classification () =
  let t = small_table "t" in
  let cls el = fst (Compiler.Lowering.classify el) in
  check "tables prefer switches" true (cls t = Compiler.Lowering.Switch_preferred);
  check "heavy blocks are offload-only" true
    (cls (heavy_block "h") = Compiler.Lowering.Offload_only);
  let light = block "l" [ set_meta "x" (const 1) ] in
  check "light blocks anywhere" true (cls light = Compiler.Lowering.Anywhere);
  let caller = block "c" [ call "svc" [] ] in
  check "dRPC callers are offload-only" true
    (cls caller = Compiler.Lowering.Offload_only)

let test_class_allows () =
  check "offload not on switch" false
    (Compiler.Lowering.class_allows Compiler.Lowering.Offload_only Targets.Arch.Drmt);
  check "offload on nic" true
    (Compiler.Lowering.class_allows Compiler.Lowering.Offload_only
       Targets.Arch.Smartnic);
  check "table on switch" true
    (Compiler.Lowering.class_allows Compiler.Lowering.Switch_preferred
       Targets.Arch.Rmt)

(* -- Placement ------------------------------------------------------------- *)

let find_dev placement name =
  Option.map Targets.Device.id (Compiler.Placement.where placement name)

let test_vertical_split () =
  let path = mk_path () in
  let prog =
    program "vert" [ small_table "t1"; heavy_block "offload"; small_table "t2" ]
  in
  match Runtime.Reconfig.place ~path prog with
  | Error f -> Alcotest.failf "place: %a" Compiler.Placement.pp_failure f
  | Ok placement ->
    (* t1 prefers a switch *)
    Alcotest.(check (option string)) "t1 on first switch" (Some "s0")
      (find_dev placement "t1");
    (* heavy block cannot sit on a switch: it must land on nic1/h1
       (after s0, respecting pipeline order) *)
    (match find_dev placement "offload" with
     | Some ("nic1" | "h1") -> ()
     | d -> Alcotest.failf "offload on %s" (Option.value d ~default:"-"));
    (* t2 comes after the offload in pipeline order: placed at or after
       its device *)
    (match find_dev placement "t2" with
     | Some ("nic1" | "h1") -> ()
     | d -> Alcotest.failf "t2 on %s" (Option.value d ~default:"-"))

let test_order_preserved_along_path () =
  let path = mk_path () in
  let prog = program "o" (List.init 6 (fun i -> small_table (Printf.sprintf "t%d" i))) in
  match Runtime.Reconfig.place ~path prog with
  | Error f -> Alcotest.failf "place: %a" Compiler.Placement.pp_failure f
  | Ok placement ->
    let pos name =
      let dev = Option.get (Compiler.Placement.where placement name) in
      Option.get (Compiler.Placement.device_position path dev)
    in
    let ok = ref true in
    for i = 0 to 4 do
      if pos (Printf.sprintf "t%d" i) > pos (Printf.sprintf "t%d" (i + 1)) then
        ok := false
    done;
    check "non-decreasing path positions" true !ok

let test_placement_rollback () =
  (* an unplaceable program must leave the path untouched *)
  let path = [ Targets.Device.create ~id:"s0" Targets.Arch.drmt ] in
  let prog = program "bad" [ small_table "t"; heavy_block "won't-fit" ] in
  match Runtime.Reconfig.place ~path prog with
  | Ok _ -> Alcotest.fail "expected failure: no offload target on path"
  | Error f ->
    check "failure names the block" true
      (Flexbpf.Ast.element_name f.Compiler.Placement.failed_unit.Compiler.Lowering.u_element
       = "won't-fit");
    check "transactional rollback" true
      (List.for_all
         (fun d -> Targets.Device.installed_names d = [])
         path)

let test_unplace () =
  let path = mk_path () in
  let prog = program "p" [ small_table "t1"; small_table "t2" ] in
  match Runtime.Reconfig.place ~path prog with
  | Error _ -> Alcotest.fail "place"
  | Ok placement ->
    Runtime.Reconfig.unplace placement;
    check "everything removed" true
      (List.for_all (fun d -> Targets.Device.installed_names d = []) path)

let test_oversubscribed_residency_planned () =
  (* a table bigger than any single RMT stage used to fail placement;
     now the planner admits it with a clamped device tier and the plan
     carries the residency (which table, how many rules resident, the
     predicted miss rate) as a first-class admission decision *)
  let path = mk_path ~arch:Targets.Arch.Rmt () in
  let huge =
    table "huge"
      ~keys:[ exact (field "ipv4" "dst") ]
      ~actions:[ action "a" [ Flexbpf.Ast.Nop ] ]
      ~default:("a", []) ~size:150_000 ()
  in
  let prog = program "over" [ small_table "front"; huge ] in
  match Compiler.Placement.plan ~path prog with
  | Error f -> Alcotest.failf "plan: %a" Compiler.Placement.pp_failure f
  | Ok planned ->
    let plan = planned.Compiler.Placement.pln_plan in
    check_int "exactly one oversubscribed table" 1
      (List.length plan.Compiler.Plan.residency);
    let r = List.hd plan.Compiler.Plan.residency in
    check "residency names the table" true
      (r.Targets.Resource.res_table = "huge");
    check "device tier clamped below logical size" true
      (r.Targets.Resource.res_device_rules > 0
       && r.Targets.Resource.res_device_rules
          < r.Targets.Resource.res_logical_rules);
    check "predicted miss rate in (0,1)" true
      (r.Targets.Resource.res_miss_rate > 0.
       && r.Targets.Resource.res_miss_rate < 1.);
    (* the fully-resident table contributes no residency entry *)
    check "small table fully resident" true
      (List.for_all
         (fun (res : Targets.Resource.residency) ->
           res.Targets.Resource.res_table <> "front")
         plan.Compiler.Plan.residency)

(* -- Fungible loop ------------------------------------------------------------ *)

let big_table ?(size = 80_000) name =
  table name
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "a" [ Flexbpf.Ast.Nop ] ]
    ~default:("a", []) ~size ()

let test_gc_enables_placement () =
  (* one switch, pre-filled with idle apps; a new program only fits
     after the fungible compiler garbage-collects them. Since tiered
     virtualization a stage with any slack admits a table at reduced
     residency, so the prefill uses oversubscribed tables that pack
     every stage down to less than one rule's bytes — only then is a
     new table genuinely unplaceable. *)
  let sw = Targets.Device.create ~id:"s0" Targets.Arch.rmt in
  let path = [ sw ] in
  (* pack every stage to the byte with one oversubscribed idle table *)
  let idle_names = List.init 12 (fun i -> Printf.sprintf "idle%d" i) in
  let idle_prog =
    program "idle" (List.map (big_table ~size:200_000) idle_names)
  in
  (match Runtime.Reconfig.place ~path idle_prog with
   | Ok _ -> ()
   | Error f -> Alcotest.failf "prefill: %a" Compiler.Placement.pp_failure f);
  let new_prog = program "new" [ big_table "fresh" ] in
  (* one-shot compilation fails *)
  let once = Runtime.Reconfig.place_once ~path new_prog in
  check "bin-packing baseline fails" true (once.Runtime.Reconfig.placement = None);
  (* fungible loop GCs the idle apps and succeeds *)
  let removable dev =
    List.filter
      (fun n -> String.length n >= 4 && String.sub n 0 4 = "idle")
      (Targets.Device.installed_names dev)
  in
  let outcome = Runtime.Reconfig.place_with_gc ~path ~removable new_prog in
  check "fungible loop succeeds" true
    (outcome.Runtime.Reconfig.placement <> None);
  check "iterated" true (outcome.Runtime.Reconfig.iterations > 1);
  check "reclaimed idle apps" true (outcome.Runtime.Reconfig.gc_removed <> [])

let test_gc_loop_terminates () =
  (* nothing removable and nothing fits (stages packed to the byte, so
     not even a clamped device tier squeezes in): loop must stop *)
  let sw = Targets.Device.create ~id:"s0" Targets.Arch.rmt in
  let path = [ sw ] in
  let pinned =
    program "pinned"
      (List.init 12 (fun i -> big_table ~size:200_000 (Printf.sprintf "p%d" i)))
  in
  ignore (Runtime.Reconfig.place ~path pinned);
  let outcome =
    Runtime.Reconfig.place_with_gc ~path
      ~removable:(fun _ -> [])
      (program "new" [ big_table "fresh" ])
  in
  check "fails cleanly" true (outcome.Runtime.Reconfig.placement = None);
  check "did not spin" true (outcome.Runtime.Reconfig.iterations <= 4)

(* -- Incremental recompilation -------------------------------------------------- *)

let base_prog = Apps.L2l3.program ()

let test_deploy_and_patch_few_moves () =
  let path = mk_path () in
  match Runtime.Reconfig.deploy ~path base_prog with
  | Error f -> Alcotest.failf "deploy: %a" Compiler.Placement.pp_failure f
  | Ok dep ->
    let installed_before =
      List.length dep.Compiler.Incremental.dep_placement.Compiler.Placement.where
    in
    let patch =
      Flexbpf.Patch.v "add-fw"
        [ Flexbpf.Patch.Add_map (Apps.Firewall.conn_map ());
          Flexbpf.Patch.Add_map Apps.Firewall.denied_map;
          Flexbpf.Patch.Add_element
            (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
             Apps.Firewall.block ~boundary:100 ()) ]
    in
    (match Runtime.Reconfig.apply_patch dep patch with
     | Error e -> Alcotest.failf "patch: %a" Compiler.Incremental.pp_error e
     | Ok (report, _diff) ->
       check_int "exactly one element moved" 1
         report.Compiler.Incremental.moved_elements;
       check_int "one device touched" 1
         (List.length report.Compiler.Incremental.touched_devices);
       check "sub-second plan" true (report.Compiler.Incremental.duration < 1.);
       check_int "deployment grew by one" (installed_before + 1)
         (List.length dep.Compiler.Incremental.dep_placement.Compiler.Placement.where))

let test_adjacent_placement () =
  (* the inserted element lands on the same device as its pipeline
     neighbours (maximal adjacency) *)
  let path = mk_path () in
  match Runtime.Reconfig.deploy ~path base_prog with
  | Error _ -> Alcotest.fail "deploy"
  | Ok dep ->
    let lpm_dev =
      Option.get (Compiler.Placement.where dep.Compiler.Incremental.dep_placement "ipv4_lpm")
    in
    let patch =
      Flexbpf.Patch.v "insert"
        [ Flexbpf.Patch.Add_element
            (Flexbpf.Patch.Before (Flexbpf.Patch.Sel_name "ipv4_lpm"),
             small_table "inserted") ]
    in
    (match Runtime.Reconfig.apply_patch dep patch with
     | Error e -> Alcotest.failf "patch: %a" Compiler.Incremental.pp_error e
     | Ok _ ->
       let ins_dev =
         Option.get
           (Compiler.Placement.where dep.Compiler.Incremental.dep_placement "inserted")
       in
       Alcotest.(check string) "inserted adjacent to lpm"
         (Targets.Device.id lpm_dev) (Targets.Device.id ins_dev))

let test_remove_patch_releases () =
  let path = mk_path () in
  match Runtime.Reconfig.deploy ~path base_prog with
  | Error _ -> Alcotest.fail "deploy"
  | Ok dep ->
    let patch =
      Flexbpf.Patch.v "rm-acl"
        [ Flexbpf.Patch.Remove_element (Flexbpf.Patch.Sel_name "acl") ]
    in
    (match Runtime.Reconfig.apply_patch dep patch with
     | Error e -> Alcotest.failf "patch: %a" Compiler.Incremental.pp_error e
     | Ok (report, _) ->
       check "acl uninstalled everywhere" true
         (List.for_all
            (fun d -> not (List.mem "acl" (Targets.Device.installed_names d)))
            path);
       check "where updated" true
         (Compiler.Placement.where dep.Compiler.Incremental.dep_placement "acl" = None);
       check_int "one op" 1 (Compiler.Plan.size report.Compiler.Incremental.plan))

let test_replace_carries_state () =
  (* replacing a stateful element preserves its map contents *)
  let path = mk_path () in
  let counter = block "cnt" [ map_incr "hits" [ const 0 ] ] in
  let prog =
    program "stateful" ~maps:[ map_decl ~key_arity:1 ~size:16 "hits" ] [ counter ]
  in
  match Runtime.Reconfig.deploy ~path prog with
  | Error _ -> Alcotest.fail "deploy"
  | Ok dep ->
    let dev = Option.get (Compiler.Placement.where dep.Compiler.Incremental.dep_placement "cnt") in
    (match Targets.Device.map_state dev "hits" with
     | Some st -> Flexbpf.State.put st [ 0L ] 77L
     | None -> Alcotest.fail "map missing");
    let counter2 = block "cnt" [ map_incr "hits" [ const 1 ] ] in
    let patch =
      Flexbpf.Patch.v "swap"
        [ Flexbpf.Patch.Replace_element (Flexbpf.Patch.Sel_name "cnt", counter2) ]
    in
    (match Runtime.Reconfig.apply_patch dep patch with
     | Error e -> Alcotest.failf "patch: %a" Compiler.Incremental.pp_error e
     | Ok _ ->
       let dev' =
         Option.get (Compiler.Placement.where dep.Compiler.Incremental.dep_placement "cnt")
       in
       (match Targets.Device.map_state dev' "hits" with
        | Some st ->
          Alcotest.(check int64) "state carried over" 77L (Flexbpf.State.get st [ 0L ])
        | None -> Alcotest.fail "map missing after replace"))

let test_incremental_beats_full_recompile () =
  let path = mk_path () in
  match Runtime.Reconfig.deploy ~path base_prog with
  | Error _ -> Alcotest.fail "deploy"
  | Ok dep ->
    let patch =
      Flexbpf.Patch.v "small-change"
        [ Flexbpf.Patch.Add_element (Flexbpf.Patch.At_end, small_table "extra") ]
    in
    let inc_report =
      match Runtime.Reconfig.apply_patch dep patch with
      | Ok (r, _) -> r
      | Error e -> Alcotest.failf "patch: %a" Compiler.Incremental.pp_error e
    in
    (* second path, same starting deployment, full recompile *)
    let path2 = mk_path () in
    (match Runtime.Reconfig.deploy ~path:path2 base_prog with
     | Error _ -> Alcotest.fail "deploy2"
     | Ok dep2 ->
       let new_prog = dep.Compiler.Incremental.dep_prog in
       (match Runtime.Reconfig.full_recompile dep2 new_prog with
        | Error e -> Alcotest.failf "recompile: %a" Compiler.Incremental.pp_error e
        | Ok full_report ->
          check "incremental moves fewer elements" true
            (inc_report.Compiler.Incremental.moved_elements
             < full_report.Compiler.Incremental.moved_elements);
          check "incremental is orders of magnitude faster" true
            (inc_report.Compiler.Incremental.duration
             < full_report.Compiler.Incremental.duration /. 10.)))

let test_parser_patch_propagates () =
  let path = mk_path () in
  match Runtime.Reconfig.deploy ~path base_prog with
  | Error _ -> Alcotest.fail "deploy"
  | Ok dep ->
    let patch =
      Flexbpf.Patch.v "gre"
        [ Flexbpf.Patch.Add_header (header "gre" [ ("proto", 16) ]);
          Flexbpf.Patch.Add_parser_rule (parser_rule "parse_gre" [ "ethernet"; "gre" ]) ]
    in
    (match Runtime.Reconfig.apply_patch dep patch with
     | Error e -> Alcotest.failf "patch: %a" Compiler.Incremental.pp_error e
     | Ok (report, diff) ->
       check "diff flags parser" true diff.Flexbpf.Patch.parser_changed;
       check "parser ops emitted" true
         (List.exists
            (function Compiler.Plan.Add_parser _ -> true | _ -> false)
            report.Compiler.Incremental.plan.Compiler.Plan.ops))

(* -- Table merging ------------------------------------------------------------------ *)

let acl_table =
  table "acl2"
    ~keys:[ exact (field "ipv4" "src") ]
    ~actions:
      [ action "mark" ~params:[ "v" ] [ set_meta "mark" (param "v") ];
        action "skip" [ Flexbpf.Ast.Nop ] ]
    ~default:("skip", []) ~size:100 ()

let route_table =
  table "route2"
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:
      [ action "out" ~params:[ "p" ] [ forward (param "p") ];
        action "hold" [ Flexbpf.Ast.Nop ] ]
    ~default:("hold", []) ~size:100 ()

let as_table = function Flexbpf.Ast.Table t -> t | _ -> assert false

let test_merge_semantics () =
  let a = as_table acl_table and b = as_table route_table in
  let merged = Compiler.Merge.merge_tables a b in
  check_int "keys concatenated" 2 (List.length merged.Flexbpf.Ast.keys);
  (* each side has mark/out, skip/hold, and the builder-added nop *)
  check_int "actions cross product" 9 (List.length merged.Flexbpf.Ast.tbl_actions);
  check_int "size cross product" (100 * 100) merged.Flexbpf.Ast.tbl_size;
  (* merged program behaves like running both tables *)
  let prog = program "merged" [ Flexbpf.Ast.Table merged ] in
  let env = Flexbpf.Interp.create_env prog in
  let rules =
    Compiler.Merge.merge_rules
      [ rule ~matches:[ exact_i 1 ] ~action:("mark", [ 7 ]) () ]
      [ rule ~matches:[ exact_i 2 ] ~action:("out", [ 3 ]) () ]
  in
  List.iter (Flexbpf.Interp.install_rule env merged.Flexbpf.Ast.tbl_name) rules;
  let pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
        Netsim.Packet.ipv4 ~src:1L ~dst:2L () ]
  in
  let r = Flexbpf.Interp.run env prog pkt in
  Alcotest.(check (option int)) "route action applied" (Some 3)
    r.Flexbpf.Interp.verdict.Flexbpf.Interp.egress;
  Alcotest.(check int64) "acl action applied" 7L
    (Netsim.Packet.meta_default pkt "mark" 0L)

let test_merge_tradeoff () =
  let a = as_table acl_table and b = as_table route_table in
  let rules_a = List.init 20 (fun i -> rule ~matches:[ exact_i i ] ~action:("mark", [ i ]) ()) in
  let rules_b = List.init 20 (fun i -> rule ~matches:[ exact_i i ] ~action:("out", [ i ]) ()) in
  let ctx = program "ctx" [ acl_table; route_table ] in
  let cost =
    Compiler.Merge.evaluate ~profile:Targets.Arch.drmt ~ctx a b ~rules_a ~rules_b
  in
  check "entries blow up" true
    (cost.Compiler.Merge.entries_after > cost.Compiler.Merge.entries_before);
  check "memory grows" true (cost.Compiler.Merge.extra_bytes > 0);
  check "latency improves" true (cost.Compiler.Merge.latency_saved_ns > 0.)

let test_merge_chain () =
  let mk name = as_table (small_table name) in
  let merged = Compiler.Merge.merge_chain [ mk "a"; mk "b"; mk "c" ] in
  check_int "chained keys" 3 (List.length merged.Flexbpf.Ast.keys)

(* -- SLA ------------------------------------------------------------------------------ *)

let test_sla_estimate_and_certify () =
  let path = mk_path () in
  let prog = program "p" [ small_table "t" ] in
  match Runtime.Reconfig.place ~path prog with
  | Error _ -> Alcotest.fail "place"
  | Ok placement ->
    let e = Compiler.Sla.estimate placement in
    check "latency positive" true (e.Compiler.Sla.added_latency_ns > 0.);
    let lax =
      { Compiler.Sla.max_added_latency_ns = 1e9; min_throughput_pps = 1. }
    in
    check "lax SLA met" true (Compiler.Sla.certify lax placement = Compiler.Sla.Meets);
    let strict =
      { Compiler.Sla.max_added_latency_ns = 1.; min_throughput_pps = 1e12 }
    in
    (match Compiler.Sla.certify strict placement with
     | Compiler.Sla.Violates problems -> check_int "both violated" 2 (List.length problems)
     | Compiler.Sla.Meets -> Alcotest.fail "strict SLA cannot be met")

let test_sla_penalizes_host_placement () =
  (* same program on a switch-only slice vs host-only slice *)
  let sw_path = [ Targets.Device.create ~id:"s" Targets.Arch.drmt ] in
  let host_path = [ Targets.Device.create ~id:"h" Targets.Arch.host_ebpf ] in
  let prog = program "p" [ small_table "t" ] in
  let est path =
    match Runtime.Reconfig.place ~path prog with
    | Ok p -> Compiler.Sla.estimate p
    | Error _ -> Alcotest.fail "place"
  in
  let sw = est sw_path and host = est host_path in
  check "switch placement much faster" true
    (sw.Compiler.Sla.added_latency_ns *. 5. < host.Compiler.Sla.added_latency_ns)

(* -- Energy ---------------------------------------------------------------------------- *)

let test_consolidation_powers_off () =
  let path = mk_path () in
  (* spread small tables across all three switches by filling order *)
  let prog =
    program "spread"
      [ small_table "t0"; heavy_block "ob0"; small_table "t1" ]
  in
  match Runtime.Reconfig.place ~path prog with
  | Error f -> Alcotest.failf "place: %a" Compiler.Placement.pp_failure f
  | Ok placement ->
    let report = Compiler.Energy.consolidate placement in
    check "energy reduced or equal" true
      (report.Compiler.Energy.watts_after <= report.Compiler.Energy.watts_before);
    (* devices that ended empty are off *)
    List.iter
      (fun d ->
        if Targets.Device.installed_names d = [] && List.mem
             (Targets.Device.id d)
             (report.Compiler.Energy.powered_off)
        then check "off device is off" false (Targets.Device.powered_on d))
      path;
    Compiler.Energy.expand path;
    check "expand powers all on" true
      (List.for_all Targets.Device.powered_on path)

let () =
  Alcotest.run "compiler"
    [ ( "lowering",
        [ Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "class allows" `Quick test_class_allows ] );
      ( "placement",
        [ Alcotest.test_case "vertical split" `Quick test_vertical_split;
          Alcotest.test_case "order preserved" `Quick test_order_preserved_along_path;
          Alcotest.test_case "rollback" `Quick test_placement_rollback;
          Alcotest.test_case "unplace" `Quick test_unplace;
          Alcotest.test_case "oversubscribed residency planned" `Quick
            test_oversubscribed_residency_planned ] );
      ( "fungible",
        [ Alcotest.test_case "gc enables placement" `Quick test_gc_enables_placement;
          Alcotest.test_case "loop terminates" `Quick test_gc_loop_terminates ] );
      ( "incremental",
        [ Alcotest.test_case "few moves" `Quick test_deploy_and_patch_few_moves;
          Alcotest.test_case "adjacency" `Quick test_adjacent_placement;
          Alcotest.test_case "removal releases" `Quick test_remove_patch_releases;
          Alcotest.test_case "replace carries state" `Quick test_replace_carries_state;
          Alcotest.test_case "beats full recompile" `Quick
            test_incremental_beats_full_recompile;
          Alcotest.test_case "parser propagation" `Quick test_parser_patch_propagates ] );
      ( "merge",
        [ Alcotest.test_case "semantics" `Quick test_merge_semantics;
          Alcotest.test_case "tradeoff" `Quick test_merge_tradeoff;
          Alcotest.test_case "chain" `Quick test_merge_chain ] );
      ( "sla",
        [ Alcotest.test_case "estimate+certify" `Quick test_sla_estimate_and_certify;
          Alcotest.test_case "host penalty" `Quick test_sla_penalizes_host_placement ] );
      ( "energy",
        [ Alcotest.test_case "consolidation" `Quick test_consolidation_powers_off ] ) ]
