(* E1 — Hitless runtime reconfiguration vs drain-and-reflash (§1, §2).

   10k pps of CBR through a 3-switch path; at t=1s the middle switch
   gets a new program element. Runtime-programmable mode reconfigures
   hitlessly; the compile-time baseline isolates the device (drain),
   reflashes, and redeploys. *)

open Flexbpf.Builder

let run_mode mode =
  let sim, _topo, h0, h1, _devs, wireds, received = Common.wired_linear () in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:10_000. ~start:0. ~stop:2.0 ~send:(fun () ->
      incr sent;
      Netsim.Node.send h0 ~port:0
        (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id
           ~born:(Netsim.Sim.now sim)));
  let counter = block "cnt" [ map_incr "hits" [ const 0 ] ] in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ] [ counter ]
  in
  let plan =
    Compiler.Plan.v "add"
      [ Compiler.Plan.Install { device = "s1"; element = counter; ctx = prog; order = 0 } ]
  in
  let duration = ref 0. in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode ~wireds ~plan
        ~on_done:(fun o ->
          duration := o.Runtime.Reconfig.finished_at -. o.Runtime.Reconfig.started_at)
        ());
  ignore (Netsim.Sim.run sim);
  let lost = !sent - !received in
  (!sent, !received, lost, !duration)

let run () =
  let hitless = run_mode Runtime.Reconfig.Hitless in
  let drain = run_mode Runtime.Reconfig.Drain in
  let row label (sent, received, lost, duration) =
    [ label; Report.i sent; Report.i received; Report.i lost;
      Report.f2 duration ]
  in
  Report.print ~id:"E1" ~title:"hitless reconfiguration vs drain-and-reflash"
    ~claim:
      "runtime reprogramming keeps the data plane live (zero loss, sub-second); \
       the compile-time path drains and reflashes (heavy loss, tens of seconds)"
    ~header:[ "mode"; "sent"; "delivered"; "lost"; "duration(s)" ]
    [ row "hitless (runtime)" hitless; row "drain+reflash" drain ]
