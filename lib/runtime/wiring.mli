(** Wiring programmable devices into simulated network nodes.

    A wired device becomes the node's packet handler: each arriving
    packet runs the device's installed FlexBPF program, and the verdict
    decides forwarding. If the program picks no egress port, the packet
    falls back to destination-based ECMP routing; devices whose active
    program is empty act as plain forwarders. *)

type wired = {
  node : Netsim.Node.t;
  device : Targets.Device.t;
  topo : Netsim.Topology.t;
  mutable online : bool; (* false while draining / reflashing *)
  mutable reconfig_drops : int;
  mutable punted : (string * Netsim.Packet.t) list;
  mutable on_punt : string -> Netsim.Packet.t -> unit; (* digest bus hook *)
}

(** Attach [device] as the packet processor of a node. Stamps
    meta.in_port and meta.vlan_vid at ingress and wires the device's
    punt callback into [on_punt]. *)
val attach : Netsim.Topology.t -> Netsim.Node.t -> Targets.Device.t -> wired

(** Take the device offline (drain baseline) or back online. *)
val set_online : wired -> bool -> unit

(** Packets dropped while offline. *)
val drain_drops : wired -> int

(** Punted digests in arrival order. *)
val punted : wired -> (string * Netsim.Packet.t) list

(** Register this wired device with a fault injector: planned crashes
    power the device off and take the node offline for the downtime;
    restarts bring both back (rolling back any mid-update state). *)
val bind_faults : Netsim.Faults.t -> wired -> unit
