(** Exporters over the registry and tracer. Ordering and float
    formatting are fixed so exports are byte-stable for a seeded run. *)

let fnum v =
  (* %.9g is compact, lossless enough for virtual-clock times, and
     locale-independent *)
  Printf.sprintf "%.9g" v

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* -- Prometheus --------------------------------------------------------- *)

let prom_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "flexnet_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (json_escape v)) labels)
    ^ "}"

let prometheus metrics =
  let b = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun (name, labels, value) ->
      let pname = prom_name name in
      let emit_type kind =
        if not (Hashtbl.mem typed pname) then begin
          Hashtbl.replace typed pname ();
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" pname kind)
        end
      in
      match value with
      | Metrics.Counter v ->
        emit_type "counter";
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" pname (prom_labels labels) v)
      | Metrics.Gauge v ->
        emit_type "gauge";
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" pname (prom_labels labels) (fnum v))
      | Metrics.Summary { count; sum; q50; q90; q99 } ->
        emit_type "summary";
        let with_q q = labels @ [ ("quantile", q) ] in
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" pname (prom_labels (with_q "0.5")) (fnum q50));
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" pname (prom_labels (with_q "0.9")) (fnum q90));
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" pname (prom_labels (with_q "0.99")) (fnum q99));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" pname (prom_labels labels) count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" pname (prom_labels labels) (fnum sum)))
    (Metrics.to_list metrics);
  Buffer.contents b

(* -- Tables ------------------------------------------------------------- *)

let table rows =
  match rows with
  | [] -> ""
  | header :: _ ->
    let cols = List.length header in
    let widths = Array.make cols 0 in
    List.iter
      (List.iteri (fun i cell ->
           if i < cols then widths.(i) <- max widths.(i) (String.length cell)))
      rows;
    let b = Buffer.create 1024 in
    List.iter
      (fun row ->
        List.iteri
          (fun i cell ->
            Buffer.add_string b cell;
            if i < cols - 1 then
              Buffer.add_string b
                (String.make (widths.(i) - String.length cell + 2) ' '))
          row;
        Buffer.add_char b '\n')
      rows;
    Buffer.contents b

let labels_to_string labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let metrics_table metrics =
  let rows =
    [ "metric"; "labels"; "value" ]
    :: List.map
         (fun (name, labels, value) ->
           let v =
             match value with
             | Metrics.Counter c -> string_of_int c
             | Metrics.Gauge g -> fnum g
             | Metrics.Summary { count; sum; q50; q90; q99 } ->
               Printf.sprintf "n=%d sum=%s p50=%s p90=%s p99=%s" count
                 (fnum sum) (fnum q50) (fnum q90) (fnum q99)
           in
           [ name; labels_to_string labels; v ])
         (Metrics.to_list metrics)
  in
  table rows

(* -- Traces ------------------------------------------------------------- *)

let attr_json (k, v) =
  Printf.sprintf "\"%s\":%s" (json_escape k)
    (match v with
     | Trace.S s -> "\"" ^ json_escape s ^ "\""
     | Trace.I i -> string_of_int i
     | Trace.F f -> fnum f
     | Trace.B b -> if b then "true" else "false")

let span_json (s : Trace.span) =
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"start\":%s,\"end\":%s,\"attrs\":{%s}}"
    s.Trace.id s.Trace.parent_id
    (json_escape s.Trace.span_name)
    (fnum s.Trace.start_time)
    (match s.Trace.end_time with Some e -> fnum e | None -> "null")
    (String.concat "," (List.map attr_json s.Trace.attrs))

let trace_jsonl trace =
  String.concat "" (List.map (fun s -> span_json s ^ "\n") (Trace.spans trace))

let attr_to_string (k, v) =
  k ^ "="
  ^ (match v with
     | Trace.S s -> s
     | Trace.I i -> string_of_int i
     | Trace.F f -> fnum f
     | Trace.B b -> string_of_bool b)

let trace_table trace =
  let rows =
    [ "id"; "parent"; "span"; "start(s)"; "dur(ms)"; "attrs" ]
    :: List.map
         (fun (s : Trace.span) ->
           [ string_of_int s.Trace.id;
             (if s.Trace.parent_id = 0 then "-" else string_of_int s.Trace.parent_id);
             s.Trace.span_name;
             Printf.sprintf "%.6f" s.Trace.start_time;
             (match s.Trace.end_time with
              | Some _ -> Printf.sprintf "%.3f" (1000. *. Trace.duration s)
              | None -> "open");
             String.concat " " (List.map attr_to_string s.Trace.attrs) ])
         (Trace.spans trace)
  in
  table rows
