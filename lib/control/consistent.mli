(** Consistent network-wide updates (§3.4): "functional updates to a
    logical datapath need application-level, consistent packet
    processing, which goes beyond controlling the order of rule
    updates."

    - [Ordered]: devices flip old→new in reverse path order (egress
      first), one [step] apart.
    - [Simultaneous]: all devices flip at one scheduled instant (the
      two-version flip; exact in simulation). *)

type discipline = Ordered | Simultaneous

type update_report = {
  flips : (string * float) list; (* device id, flip time *)
  completed_at : float;
}

(** Freeze every device in [path_order], run [mutate] (the compiler-
    side changes), then thaw per the discipline. Returns the completion
    time. *)
val update :
  ?step:float -> ?on_done:(update_report -> unit) -> sim:Netsim.Sim.t ->
  discipline:discipline -> path_order:Targets.Device.t list ->
  (unit -> unit) -> float

(** Check a packet's (device, version) trace for consistency: every
    observation must be the device's old or new version. *)
val trace_consistent :
  old_versions:(string * int) list -> new_versions:(string * int) list ->
  (string * int) list -> bool
