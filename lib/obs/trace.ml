(** Structured span tracing. See the interface for the model. *)

type value = S of string | I of int | F of float | B of bool

type span = {
  id : int;
  parent_id : int; (* 0 = no parent *)
  span_name : string;
  start_time : float;
  mutable end_time : float option;
  mutable attrs : (string * value) list;
}

type t = {
  mutable clock : unit -> float;
  mutable next_id : int;
  mutable rev_spans : span list; (* newest first *)
}

let create ?(clock = fun () -> 0.) () = { clock; next_id = 1; rev_spans = [] }
let set_clock t clock = t.clock <- clock

let start t ?parent ?(attrs = []) name =
  let span =
    { id = t.next_id;
      parent_id = (match parent with Some p -> p.id | None -> 0);
      span_name = name;
      start_time = t.clock ();
      end_time = None;
      attrs }
  in
  t.next_id <- t.next_id + 1;
  t.rev_spans <- span :: t.rev_spans;
  span

let add_attr span k v = span.attrs <- span.attrs @ [ (k, v) ]

let finish t ?(attrs = []) span =
  List.iter (fun (k, v) -> add_attr span k v) attrs;
  if span.end_time = None then span.end_time <- Some (t.clock ())

let with_span t ?parent ?attrs name f =
  let span = start t ?parent ?attrs name in
  match f span with
  | v ->
    finish t span;
    v
  | exception e ->
    finish t ~attrs:[ ("error", B true) ] span;
    raise e

let spans t = List.rev t.rev_spans
let by_name t name = List.filter (fun s -> s.span_name = name) (spans t)

let duration span =
  match span.end_time with Some e -> e -. span.start_time | None -> 0.

let count t = List.length t.rev_spans

let reset t =
  t.next_id <- 1;
  t.rev_spans <- []
