(** Well-formedness checking for FlexBPF programs.

    Every name must resolve (headers, fields, maps, actions), map
    accesses must match the declared key arity, action parameters must be
    declared, and loop bounds must be positive and below the target-
    independent ceiling. Rules are checked separately against their table
    at install time, which is where runtime API calls are validated. *)

open Ast

type error = {
  where : string; (* element / action / rule context *)
  what : string;
}

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

(** Upper bound on [Loop] counts: keeps worst-case execution statically
    small, which the bounded-execution certifier (Analysis) relies on. *)
let max_loop_bound = 64

let rec dedup_errors seen = function
  | [] -> []
  | e :: rest ->
    if List.mem e seen then dedup_errors seen rest
    else e :: dedup_errors (e :: seen) rest

let duplicates names =
  let tbl = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem tbl n then true
      else begin
        Hashtbl.replace tbl n ();
        false
      end)
    names

let check_field prog ~where h f =
  match find_header prog h with
  | None -> [ err where "unknown header %s" h ]
  | Some hd ->
    if List.mem_assoc f hd.hdr_fields then []
    else [ err where "unknown field %s.%s" h f ]

let check_map prog ~where m arity =
  match find_map prog m with
  | None -> [ err where "unknown map %s" m ]
  | Some decl ->
    if decl.key_arity = arity then []
    else
      [ err where "map %s expects %d keys, got %d" m decl.key_arity arity ]

let rec check_expr prog ~where ~params = function
  | Const _ | Meta _ | Time -> []
  | Field (h, f) -> check_field prog ~where h f
  | Param p ->
    if List.mem p params then []
    else [ err where "unbound action parameter $%s" p ]
  | Map_get (m, keys) ->
    check_map prog ~where m (List.length keys)
    @ List.concat_map (check_expr prog ~where ~params) keys
  | Bin (_, a, b) ->
    check_expr prog ~where ~params a @ check_expr prog ~where ~params b
  | Un (_, e) -> check_expr prog ~where ~params e
  | Hash (_, es) -> List.concat_map (check_expr prog ~where ~params) es

let rec check_stmt prog ~where ~params = function
  | Nop | Drop | Punt _ -> []
  | Set_field (h, f, e) ->
    check_field prog ~where h f @ check_expr prog ~where ~params e
  | Set_meta (_, e) -> check_expr prog ~where ~params e
  | Map_put (m, keys, v) | Map_incr (m, keys, v) ->
    check_map prog ~where m (List.length keys)
    @ List.concat_map (check_expr prog ~where ~params) keys
    @ check_expr prog ~where ~params v
  | Map_del (m, keys) ->
    check_map prog ~where m (List.length keys)
    @ List.concat_map (check_expr prog ~where ~params) keys
  | If (c, th, el) ->
    check_expr prog ~where ~params c
    @ check_stmts prog ~where ~params th
    @ check_stmts prog ~where ~params el
  | Loop (n, body) ->
    (if n <= 0 then [ err where "loop bound %d must be positive" n ]
     else if n > max_loop_bound then
       [ err where "loop bound %d exceeds maximum %d" n max_loop_bound ]
     else [])
    @ check_stmts prog ~where ~params body
  | Forward e -> check_expr prog ~where ~params e
  | Push_header h | Pop_header h ->
    (match find_header prog h with
     | Some _ -> []
     | None -> [ err where "unknown header %s" h ])
  | Call (_, args) -> List.concat_map (check_expr prog ~where ~params) args

and check_stmts prog ~where ~params stmts =
  List.concat_map (check_stmt prog ~where ~params) stmts

let check_action prog ~table a =
  let where = Printf.sprintf "%s.%s" table a.act_name in
  (match duplicates a.params with
   | [] -> []
   | ds -> List.map (fun d -> err where "duplicate parameter %s" d) ds)
  @ check_stmts prog ~where ~params:a.params a.body

let check_table prog t =
  let where = t.tbl_name in
  let key_errors =
    List.concat_map (fun (e, _) -> check_expr prog ~where ~params:[] e) t.keys
  in
  let action_errors =
    List.concat_map (check_action prog ~table:t.tbl_name) t.tbl_actions
  in
  let default_errors =
    let name, args = t.default_action in
    match find_action t name with
    | None -> [ err where "default action %s not defined" name ]
    | Some a ->
      if List.length a.params = List.length args then []
      else [ err where "default action %s arity mismatch" name ]
  in
  let dup_actions =
    duplicates (List.map (fun a -> a.act_name) t.tbl_actions)
    |> List.map (fun d -> err where "duplicate action %s" d)
  in
  let size_errors =
    if t.tbl_size <= 0 then [ err where "table size must be positive" ] else []
  in
  key_errors @ dup_actions @ action_errors @ default_errors @ size_errors

let check_element prog = function
  | Table t -> check_table prog t
  | Block b -> check_stmts prog ~where:b.blk_name ~params:[] b.blk_body

let check_parser_rule prog r =
  List.concat_map
    (fun h ->
      match find_header prog h with
      | Some _ -> []
      | None -> [ err r.pr_name "parser references unknown header %s" h ])
    r.pr_headers

let check_map_decl (m : map_decl) =
  (if m.map_size <= 0 then [ err m.map_name "map size must be positive" ] else [])
  @
  if m.key_arity <= 0 then [ err m.map_name "key arity must be positive" ]
  else []

(** Check a whole program. Returns all errors rather than failing fast so
    callers can report everything at once. *)
let check_program prog =
  let dup ns what =
    duplicates ns |> List.map (fun d -> err prog.prog_name "duplicate %s %s" what d)
  in
  let dup_fields =
    List.concat_map
      (fun h ->
        duplicates (List.map fst h.hdr_fields)
        |> List.map (fun d -> err h.hdr_name "duplicate field %s" d))
      prog.headers
  in
  let errors =
    dup (List.map (fun h -> h.hdr_name) prog.headers) "header"
    @ dup_fields
    @ dup (List.map (fun (m : map_decl) -> m.map_name) prog.maps) "map"
    @ dup (List.map element_name prog.pipeline) "element"
    @ dup (List.map (fun r -> r.pr_name) prog.parser) "parser rule"
    @ List.concat_map check_map_decl prog.maps
    @ List.concat_map (check_parser_rule prog) prog.parser
    @ List.concat_map (check_element prog) prog.pipeline
  in
  match dedup_errors [] errors with [] -> Ok () | es -> Error es

(** Validate a rule against its table at install time. *)
let check_rule (t : table) (r : rule) =
  let where = t.tbl_name in
  let arity_errors =
    if List.length r.matches <> List.length t.keys then
      [ err where "rule has %d patterns, table has %d keys"
          (List.length r.matches) (List.length t.keys) ]
    else
      List.concat
        (List.map2
           (fun pat (_, kind) ->
             match pat, kind with
             | P_any, _ -> []
             | P_exact _, Exact | P_lpm _, Lpm | P_ternary _, Ternary
             | P_range _, Range -> []
             | _ ->
               [ err where "pattern %s incompatible with %s key"
                   (Pretty.pattern_to_string pat)
                   (Pretty.match_kind_to_string kind) ])
           r.matches t.keys)
  in
  let action_errors =
    match find_action t r.rule_action with
    | None -> [ err where "rule action %s not defined" r.rule_action ]
    | Some a ->
      if List.length a.params = List.length r.rule_args then []
      else
        [ err where "rule action %s expects %d args, got %d" r.rule_action
            (List.length a.params) (List.length r.rule_args) ]
  in
  match arity_errors @ action_errors with [] -> Ok () | es -> Error es
