(* A1 — Ablation: maximally adjacent placement on/off (§3.3).

   The incremental compiler prefers placing changed elements on the
   device hosting their pipeline neighbours. The ablated baseline
   prefers the interior of the admissible window instead (spreading the
   change). Adjacency should keep the change on one device, minimizing
   touched devices and the end-to-end latency added by extra program
   hops. *)

open Flexbpf.Builder

(* The base datapath spans layers: an entry block on the host stack,
   then large tables filling the first switch and spilling onto the
   second. Insertions land between the entry block and the tables, so
   the admissible window spans host / NIC / switch. *)
let base_program () =
  program "base"
    (block "entry" [ set_meta "seen" (const 1) ]
     :: List.init 8 (fun i ->
            Common.exact_table ~size:150_000 (Printf.sprintf "t%02d" i)))

let patch_of k =
  Flexbpf.Patch.v "insert"
    (List.init k (fun i ->
         Flexbpf.Patch.Add_element
           ( Flexbpf.Patch.After (Flexbpf.Patch.Sel_name "entry"),
             block (Printf.sprintf "ins%d" i)
               [ set_meta (Printf.sprintf "m%d" i) (const i) ] )))

(* Both variants run the same candidate-generation path
   ([Incremental.window_candidates], scored with opposite signs) and
   [candidates:1] pins the cost search off: the ablation varies exactly
   one factor — the placement preference — not the search. *)
let run_variant ~prefer_adjacent k =
  let path = Common.mk_path ~switches:3 () in
  let dep =
    match Runtime.Reconfig.deploy ~path (base_program ()) with
    | Ok d -> d
    | Error _ -> failwith "deploy"
  in
  let used_before =
    Compiler.Placement.devices_used dep.Compiler.Incremental.dep_placement
  in
  match
    Runtime.Reconfig.apply_patch ~candidates:1 ~prefer_adjacent dep
      (patch_of k)
  with
  | Error e -> failwith (Fmt.str "%a" Compiler.Incremental.pp_error e)
  | Ok (report, _) ->
    let sla = Compiler.Sla.estimate dep.Compiler.Incremental.dep_placement in
    let new_devices =
      List.filter
        (fun d -> not (List.mem d used_before))
        report.Compiler.Incremental.touched_devices
    in
    (report, sla, List.length new_devices)

let run_case k =
  let adj, adj_sla, adj_new = run_variant ~prefer_adjacent:true k in
  let spread, spread_sla, spread_new = run_variant ~prefer_adjacent:false k in
  [ Report.i k;
    Report.i adj_new;
    Report.i spread_new;
    Report.f1 adj_sla.Compiler.Sla.added_latency_ns;
    Report.f1 spread_sla.Compiler.Sla.added_latency_ns;
    Report.ms adj.Compiler.Incremental.duration;
    Report.ms spread.Compiler.Incremental.duration ]

let run () =
  let rows = List.map run_case [ 2; 4; 8 ] in
  Report.print ~id:"A1" ~title:"ablation: maximally adjacent placement on/off"
    ~claim:
      "preferring adjacent placements keeps a change on the devices already \
       hosting its neighbours; the ablated compiler spreads the same change \
       over more devices, adding datapath latency"
    ~header:
      [ "patch-size"; "new-devs(adj)"; "new-devs(spread)"; "latency-adj(ns)";
        "latency-spread(ns)"; "time-adj(ms)"; "time-spread(ms)" ]
    rows
