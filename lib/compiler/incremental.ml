(** Incremental recompilation (§3.3) — as pure planning.

    Runtime changes are compiled "in a least-intrusive manner":
    starting from a live deployment, a patch produces a reconfiguration
    plan that touches only the changed elements and prefers *maximally
    adjacent* placements — the same device an element already lives on,
    or the devices hosting its pipeline neighbours — so resources are
    not reshuffled across the network.

    Nothing here mutates a device or the deployment: [plan_patch]
    searches resource snapshots, generates [candidates] alternative
    plans and returns the cheapest by predicted total work;
    [plan_full_recompile] is the compile-time baseline (drain, reflash
    every device, redeploy). [Runtime.Reconfig] executes the winning
    plan and commits the new program/placement on success. *)

open Flexbpf

type deployment = {
  mutable dep_prog : Ast.program;
  mutable dep_placement : Placement.t;
}

type report = {
  plan : Plan.t;
  moved_elements : int; (* elements installed, removed, or relocated *)
  touched_devices : string list;
  duration : float; (* parallel wall-clock model *)
  total_work : float; (* serial op time: intrusiveness *)
  cost : Plan.cost; (* full annotation incl. per-device resource deltas *)
}

(* The one op-serialization cost model (shared with runtime/benches). *)
let times_of_path = Plan.times_of_devices

let report_of_plan ~path ~deltas plan =
  let times_of = times_of_path path in
  let cost = Plan.cost_of ~times_of ~deltas plan in
  { plan;
    moved_elements =
      List.length
        (List.filter
           (function
             | Plan.Install _ | Plan.Remove _ | Plan.Move _ -> true
             | _ -> false)
           plan.Plan.ops);
    touched_devices = List.sort_uniq compare (List.map Plan.op_device plan.Plan.ops);
    duration = cost.Plan.c_duration;
    total_work = cost.Plan.c_total_work;
    cost }

type error =
  | Patch_error of string
  | Placement_error of Placement.failure
  | Exec_error of string

let pp_error ppf = function
  | Patch_error s -> Fmt.pf ppf "patch: %s" s
  | Placement_error f -> Placement.pp_failure ppf f
  | Exec_error s -> Fmt.pf ppf "execution: %s" s

(** A plan together with the deployment state it predicts: the program
    and element->device map after execution, and the per-device
    resource snapshots the executor reconciles against. *)
type planned_change = {
  ch_prog : Ast.program;
  ch_where : (string * string) list; (* element name -> device id *)
  ch_snaps : (string * Targets.Resource.snapshot) list;
  ch_report : report;
  ch_candidates : int; (* candidate plans evaluated *)
}

let path_pos_of_id path id =
  List.find_index (fun d -> Targets.Device.id d = id) path

(* Positions of the nearest *placed* pipeline neighbours of the element
   at pipeline index [idx] of [prog], given placements [where]. [None]
   means no predecessor (resp. successor) is placed — adjacency is then
   one-sided; the path boundary is a feasibility limit, not a
   neighbour. *)
let adjacency_window ~path ~where (prog : Ast.program) idx =
  let pos_of name =
    Option.bind (List.assoc_opt name where) (path_pos_of_id path)
  in
  let names = List.map Ast.element_name prog.Ast.pipeline in
  let arr = Array.of_list names in
  let n = Array.length arr in
  let rec pred i = if i < 0 then None else
      match pos_of arr.(i) with Some p -> Some p | None -> pred (i - 1)
  in
  let rec succ i = if i >= n then None else
      match pos_of arr.(i) with Some p -> Some p | None -> succ (i + 1)
  in
  (pred (idx - 1), succ (idx + 1))

(* Devices in the feasible region (between the placed neighbours, or up
   to the path boundary on a side with no neighbour) ordered by
   distance from the nearest placed neighbour; ties resolve in path
   order. Distance to an absent neighbour does not count — an appended
   element is maximally adjacent *to its predecessor*, the end of the
   path attracts nothing. With [prefer_adjacent:false] (the A1
   ablation) the ordering is inverted — the same generator, scored with
   the opposite sign, so the ablation differs only in preference
   order. *)
let window_candidates ~prefer_adjacent path (pred_pos, succ_pos)
    (u : Lowering.unit_) =
  let lo = Option.value pred_pos ~default:0 in
  let hi = max lo (Option.value succ_pos ~default:(List.length path - 1)) in
  let dist i =
    match (pred_pos, succ_pos) with
    | Some p, Some s -> min (i - p) (s - i)
    | Some p, None -> i - p
    | None, Some s -> s - i
    | None, None -> i - lo
  in
  let scored = ref [] in
  List.iteri
    (fun i d ->
      if
        i >= lo && i <= hi
        && Lowering.class_allows u.Lowering.u_class (Targets.Device.kind d)
      then begin
        let a = max 0 (dist i) in
        scored := ((if prefer_adjacent then a else -a), i, d) :: !scored
      end)
    path;
  List.rev !scored
  |> List.sort (fun (a, i, _) (b, j, _) -> compare (a, i) (b, j))
  |> List.map (fun (_, _, d) -> d)

(* Rotate a preference list left by [r]: candidate plan r starts from
   the r-th preferred device at every decision point. *)
let rec rotate r = function
  | [] -> []
  | x :: tl as l -> if r <= 0 then l else rotate (r - 1) (tl @ [ x ])

(* One candidate plan for a patch, exploring preference lists rotated
   by [rotation]. Pure: threads snapshots and a name->id map. *)
let plan_once ~prefer_adjacent ~rotation ~path ~where:where0 ~old_prog
    ~new_prog ~(diff : Patch.diff) plan_name =
  let snaps0 = Placement.default_snaps path in
  let snaps = ref snaps0 in
  let where = ref where0 in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let set_snap id s = snaps := (id, s) :: List.remove_assoc id !snaps in
  let release id name =
    match Targets.Resource.release (List.assoc id !snaps) name with
    | Some (_slot, s') -> set_snap id s'
    | None -> ()
  in
  let forget name = where := List.filter (fun (n, _) -> n <> name) !where in
  let install_in_window prog idx element =
    let u_class, u_cycles = Lowering.classify element in
    let u =
      { Lowering.u_element = element; u_index = idx; u_ctx = prog; u_class;
        u_cycles }
    in
    let window = adjacency_window ~path ~where:!where prog idx in
    let cands = rotate rotation (window_candidates ~prefer_adjacent path window u) in
    let rec attempt tried = function
      | [] -> Error { Placement.failed_unit = u; attempts = List.rev tried }
      | dev :: rest ->
        let id = Targets.Device.id dev in
        (match
           Targets.Resource.admit (List.assoc id !snaps) ~ctx:prog ~order:idx
             element
         with
         | Ok (_slot, s') ->
           set_snap id s';
           where := (Ast.element_name element, id) :: !where;
           Ok id
         | Error reject -> attempt ((id, reject) :: tried) rest)
    in
    attempt [] cands
  in
  let fail = ref None in
  (* 1. removals *)
  List.iter
    (fun name ->
      match List.assoc_opt name !where with
      | Some id ->
        release id name;
        forget name;
        emit (Plan.Remove { device = id; element_name = name })
      | None -> ())
    diff.Patch.removed;
  (* 2. replacements: reinstall in the adjacency window; the executor
     carries map state across the uninstall/install *)
  List.iter
    (fun name ->
      if !fail = None then
        match List.assoc_opt name !where with
        | None -> ()
        | Some old_id ->
          let element = Option.get (Ast.find_element new_prog name) in
          let idx =
            Option.get
              (List.find_index
                 (fun e -> Ast.element_name e = name)
                 new_prog.Ast.pipeline)
          in
          release old_id name;
          forget name;
          (match install_in_window new_prog idx element with
           | Ok new_id ->
             if new_id = old_id then
               emit
                 (Plan.Install
                    { device = new_id; element; ctx = new_prog; order = idx })
             else
               emit
                 (Plan.Move
                    { from_device = old_id; to_device = new_id; element;
                      ctx = new_prog; order = idx })
           | Error f -> fail := Some f))
    diff.Patch.modified;
  (* 3. additions, in pipeline order *)
  List.iteri
    (fun idx el ->
      let name = Ast.element_name el in
      if !fail = None && List.mem name diff.Patch.added then
        match install_in_window new_prog idx el with
        | Ok id ->
          emit
            (Plan.Install { device = id; element = el; ctx = new_prog; order = idx })
        | Error f -> fail := Some f)
    new_prog.Ast.pipeline;
  match !fail with
  | Some f -> Error f
  | None ->
    (* 4. parser changes, on every device hosting part of the program.
       Ops are emitted for all hosts; the snapshot only changes where
       the rule change is effective (absent/present), which is exactly
       what the device itself will do. *)
    (if diff.Patch.parser_changed then begin
       let hosts = List.sort_uniq compare (List.map snd !where) in
       let removed =
         List.filter
           (fun r ->
             not
               (List.exists
                  (fun x -> x.Ast.pr_name = r.Ast.pr_name)
                  new_prog.Ast.parser))
           old_prog.Ast.parser
       in
       let added =
         List.filter
           (fun r ->
             not
               (List.exists
                  (fun x -> x.Ast.pr_name = r.Ast.pr_name)
                  old_prog.Ast.parser))
           new_prog.Ast.parser
       in
       List.iter
         (fun id ->
           List.iter
             (fun r ->
               (match
                  Targets.Resource.remove_parser_rule (List.assoc id !snaps)
                    r.Ast.pr_name
                with
                | Some s' -> set_snap id s'
                | None -> ());
               emit (Plan.Remove_parser { device = id; rule_name = r.Ast.pr_name }))
             removed;
           List.iter
             (fun r ->
               (match
                  Targets.Resource.add_parser_rule (List.assoc id !snaps) r
                with
                | Ok s' -> set_snap id s'
                | Error _ -> ());
               emit (Plan.Add_parser { device = id; rule = r }))
             added)
         hosts
     end);
    let plan = Plan.v plan_name (List.rev !ops) in
    let finalized =
      List.map (fun (id, s) -> (id, Targets.Resource.finalize s)) !snaps
    in
    let deltas = Placement.snapshot_deltas ~before:snaps0 ~after:finalized plan in
    Ok
      { ch_prog = new_prog;
        ch_where = !where;
        ch_snaps = finalized;
        ch_report = report_of_plan ~path ~deltas plan;
        ch_candidates = 1 }

(** Plan a patch against a live deployment without touching it.
    Generates up to [candidates] alternative plans (rotating the
    preference list at every placement decision) and returns the one
    with the least predicted total work (ties: fewer ops, then lowest
    rotation). [prefer_adjacent:false] is the A1 ablation baseline —
    same candidate generation, inverted preference order. *)
let plan_patch ?(candidates = 3) ?(prefer_adjacent = true) dep patch =
  match Patch.apply patch dep.dep_prog with
  | Error (`Patch e) -> Error (Patch_error (Fmt.str "%a" Patch.pp_error e))
  | Error (`Ill_typed es) ->
    Error
      (Patch_error
         (Fmt.str "%a" Fmt.(list ~sep:(any "; ") Typecheck.pp_error) es))
  | Ok (new_prog, diff) ->
    let path = dep.dep_placement.Placement.path in
    let where0 =
      List.map
        (fun (n, d) -> (n, Targets.Device.id d))
        dep.dep_placement.Placement.where
    in
    let k = max 1 candidates in
    let attempts =
      List.init k (fun rotation ->
          plan_once ~prefer_adjacent ~rotation ~path ~where:where0
            ~old_prog:dep.dep_prog ~new_prog ~diff patch.Patch.patch_name)
    in
    let oks = List.filter_map Result.to_option attempts in
    (match oks with
     | [] ->
       (match attempts with
        | Error f :: _ -> Error (Placement_error f)
        | _ -> assert false)
     | first :: rest ->
       let better a b =
         compare
           (a.ch_report.total_work, Plan.size a.ch_report.plan)
           (b.ch_report.total_work, Plan.size b.ch_report.plan)
         < 0
       in
       let best =
         List.fold_left (fun acc pc -> if better pc acc then pc else acc)
           first rest
       in
       Ok ({ best with ch_candidates = List.length oks }, diff))

(** Plan the compile-time baseline: remove every placed element and
    re-place the new program from scratch. The cost model is drain +
    full reflash on every touched device (that is what makes it a
    disruption, not just a bigger plan). Pure — on failure no device
    has changed, so there is nothing to restore. *)
let plan_full_recompile dep new_prog =
  let path = dep.dep_placement.Placement.path in
  let snaps0 = Placement.default_snaps path in
  let old_where =
    List.map
      (fun (n, d) -> (n, Targets.Device.id d))
      dep.dep_placement.Placement.where
  in
  let released =
    List.fold_left
      (fun snaps (name, id) ->
        match List.assoc_opt id snaps with
        | None -> snaps
        | Some s ->
          (match Targets.Resource.release s name with
           | Some (_slot, s') -> (id, s') :: List.remove_assoc id snaps
           | None -> snaps))
      snaps0 old_where
  in
  let rm_ops =
    List.map
      (fun (name, id) -> Plan.Remove { device = id; element_name = name })
      old_where
  in
  match
    Placement.plan_on ~plan_name:"full-recompile" ~snaps:released ~path
      new_prog
  with
  | Error f -> Error (Placement_error f)
  | Ok pl ->
    let plan =
      Plan.v ~residency:pl.Placement.pln_plan.Plan.residency "full-recompile"
        (rm_ops @ pl.Placement.pln_plan.Plan.ops)
    in
    let touched =
      List.sort_uniq compare
        (List.map snd old_where @ List.map snd pl.Placement.pln_where)
    in
    let times_of = times_of_path path in
    let reflash dev_id =
      let times = times_of dev_id in
      times.Targets.Arch.drain_time +. times.Targets.Arch.t_full_reflash
    in
    let duration = List.fold_left (fun acc d -> Float.max acc (reflash d)) 0. touched in
    let total_work = List.fold_left (fun acc d -> acc +. reflash d) 0. touched in
    let deltas =
      Placement.snapshot_deltas ~before:snaps0 ~after:pl.Placement.pln_snaps plan
    in
    let report =
      { plan;
        moved_elements = List.length old_where + List.length pl.Placement.pln_where;
        touched_devices = touched;
        duration;
        total_work;
        cost = { Plan.c_total_work = total_work; c_duration = duration; c_deltas = deltas } }
    in
    Ok
      { ch_prog = new_prog;
        ch_where = pl.Placement.pln_where;
        ch_snaps = pl.Placement.pln_snaps;
        ch_report = report;
        ch_candidates = 1 }
