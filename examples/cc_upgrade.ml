(* Live infrastructure customization (§1.1): swap the congestion-control
   algorithm of running host stacks at runtime. The CC algorithms are
   real FlexBPF programs interpreted per ACK; swapping the block is a
   runtime reprogramming of the transport.

   Run with: dune exec examples/cc_upgrade.exe *)

let pf fmt = Format.printf fmt

(* A congested path: modest bandwidth, shallow ECN-marking queues. *)
let congested_net () =
  let sim = Netsim.Sim.create () in
  let built =
    Netsim.Topology.linear ~sim ~switches:2 ~link_bandwidth:5e7
      ~queue_capacity:48 ~ecn_threshold:8 ()
  in
  let topo = built.Netsim.Topology.topo in
  List.iter
    (fun sw -> Netsim.Node.set_handler sw (Netsim.Topology.forwarding_handler topo))
    built.Netsim.Topology.switch_list;
  let h0 = List.nth built.Netsim.Topology.host_list 0 in
  let h1 = List.nth built.Netsim.Topology.host_list 1 in
  (sim, topo, h0, h1)

let run_with cc_block label =
  let sim, _topo, h0, h1 = congested_net () in
  let stack = Netsim.Transport.create sim in
  ignore (Netsim.Transport.attach stack h0 ());
  ignore (Netsim.Transport.attach stack h1 ());
  (* certify before deploying, like any network program *)
  let prog = Apps.Congestion.program ~blocks:[ cc_block ] () in
  (match Flexbpf.Analysis.certify prog with
   | Ok cert ->
     pf "  %-10s certified: worst-case %d cycles@." label
       cert.Flexbpf.Analysis.cert_cycles
   | Error e -> failwith (Fmt.str "%a" Flexbpf.Analysis.pp_rejection e));
  Netsim.Transport.set_cc stack h0.Netsim.Node.id
    (Apps.Congestion.to_transport_cc cc_block);
  (* ten sequential flows of 300 packets *)
  let fct = Netsim.Stats.Summary.create () in
  let retx = ref 0 in
  let rec next_flow i =
    if i < 10 then begin
      let flow =
        Netsim.Transport.start_flow stack ~src:h0.Netsim.Node.id
          ~dst:h1.Netsim.Node.id ~packets:300 ()
      in
      Netsim.Transport.set_on_complete stack (fun f ->
          if f == flow then begin
            Netsim.Stats.Summary.add fct
              (Option.get f.Netsim.Transport.done_at -. f.Netsim.Transport.started);
            retx := !retx + f.Netsim.Transport.retransmits;
            next_flow (i + 1)
          end)
    end
  in
  next_flow 0;
  ignore (Netsim.Sim.run ~until:120. sim);
  (label, Netsim.Stats.Summary.mean fct, !retx)

let () =
  pf "== Live CC upgrade ==@.@.";
  pf "running the same workload under three FlexBPF CC programs:@.";
  let reno = run_with Apps.Congestion.reno_block "reno" in
  let dctcp = run_with Apps.Congestion.dctcp_block "dctcp" in
  let timely = run_with (Apps.Congestion.timely_block ()) "timely" in
  let results = [ reno; dctcp; timely ] in
  pf "@.%-10s %-14s %-12s@." "cc" "mean FCT (ms)" "retransmits";
  List.iter
    (fun (label, fct, retx) -> pf "%-10s %-14.2f %-12d@." label (1000. *. fct) retx)
    results;

  (* live swap mid-flow: start under reno, upgrade to dctcp while the
     flow is in progress *)
  pf "@.live mid-flow upgrade reno -> dctcp:@.";
  let sim, _topo, h0, h1 = congested_net () in
  let stack = Netsim.Transport.create sim in
  ignore (Netsim.Transport.attach stack h0 ());
  ignore (Netsim.Transport.attach stack h1 ());
  Netsim.Transport.set_cc stack h0.Netsim.Node.id
    (Apps.Congestion.to_transport_cc Apps.Congestion.reno_block);
  let flow =
    Netsim.Transport.start_flow stack ~src:h0.Netsim.Node.id
      ~dst:h1.Netsim.Node.id ~packets:2000 ()
  in
  Netsim.Sim.at sim 0.05 (fun () ->
      pf "  t=0.050s: swapping CC program on h0 (acked so far: %d)@."
        flow.Netsim.Transport.acked;
      Netsim.Transport.set_cc stack h0.Netsim.Node.id
        (Apps.Congestion.to_transport_cc Apps.Congestion.dctcp_block));
  ignore (Netsim.Sim.run ~until:120. sim);
  pf "  flow completed: %d/%d packets, %d retransmits@."
    flow.Netsim.Transport.acked flow.Netsim.Transport.total
    flow.Netsim.Transport.retransmits;
  assert (flow.Netsim.Transport.acked = 2000);
  pf "@.cc upgrade OK@."
