(* Tests for the domain-sharded simulation engine (Netsim.Shard).

   The load-bearing property is the differential: the same spec +
   seeded workload, built once as a single-shard partition (the classic
   single-domain [Sim.run] path) and once per-pod, must agree on every
   model-visible metric — link counters, device counters, delivered
   packets — and the sharded build must produce byte-identical merged
   exports for every domain count. Engine-only series ([sim.events],
   which counts the extra injection events, and the [shard.*] mailbox
   counters) are filtered from the cross-partition comparison; nothing
   else may differ. *)

module Shard = Netsim.Shard
module Fat_tree = Shard.Fat_tree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* CI sets DOMAINS=n on the multicore leg; fold it into the domain
   counts the determinism tests sweep so the matrix actually runs the
   engine at that width. *)
let domain_counts =
  let base = [ 1; 2; 4 ] in
  match Option.bind (Sys.getenv_opt "DOMAINS") int_of_string_opt with
  | Some d when d > 0 && not (List.mem d base) -> base @ [ d ]
  | _ -> base

(* -- workload: seeded Poisson traffic on a fat tree ---------------------- *)

(* Mirrors the E16 workload at test scale. All seeds key off spec node
   ids so the traffic is identical whatever the partition. *)
let build_workload ?(mailbox_capacity = 4096) ?(lambda = 4000.)
    ?(locality = 0.7) ?(seed = 7) ~k ~until net part =
  let spec = Fat_tree.spec net in
  let shards = Shard.partition_shards part in
  let delivered = Array.make shards 0 in
  let t =
    Shard.build ~mailbox_capacity spec part ~init:(fun view ->
        let sim = view.Shard.sh_sim in
        let shard = view.Shard.sh_index in
        Fat_tree.install net view
          ~on_switch:(fun _node _pkt -> ())
          ~on_deliver:(fun _node _pkt ->
            delivered.(shard) <- delivered.(shard) + 1);
        Array.iter
          (fun h ->
            match view.Shard.sh_nodes.(h) with
            | None -> ()
            | Some host ->
              let gen = Netsim.Traffic.create ~seed:(seed + h) sim in
              let rng = Random.State.make [| seed; h; k |] in
              let pod = Fat_tree.pod_hosts net (Fat_tree.pod_of_host net h) in
              let all = Fat_tree.hosts net in
              Netsim.Traffic.poisson gen ~lambda ~start:0. ~stop:until
                ~send:(fun () ->
                  let pick arr =
                    arr.(Random.State.int rng (Array.length arr))
                  in
                  let dst =
                    if Random.State.float rng 1.0 < locality then pick pod
                    else pick all
                  in
                  if dst <> h then
                    Netsim.Node.send host ~port:0
                      (Netsim.Traffic.tcp_packet ~src:h ~dst
                         ~sport:(1024 + h) ~dport:80
                         ~born:(Netsim.Sim.now sim) ()))
          )
          (Fat_tree.hosts net))
  in
  (t, delivered)

(* Export with engine-only series dropped: [sim.events] legitimately
   differs (mailbox injection adds one event per cross-shard packet)
   and [shard.*] counters exist per shard; everything else must agree
   between a single-shard and a per-pod build. *)
let contains line sub =
  let n = String.length sub and m = String.length line in
  let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
  go 0

let model_export t =
  Obs.Export.prometheus (Shard.merged_metrics t)
  |> String.split_on_char '\n'
  |> List.filter (fun line ->
         not
           (contains line "flexnet_shard_"
            || contains line "flexnet_sim_events"))
  |> String.concat "\n"

let run_config ?mailbox_capacity ?lambda ?locality ?seed ~k ~until ~pods
    ~domains () =
  let net = Fat_tree.create ~k () in
  let part =
    if pods then Fat_tree.pods_partition net else Shard.single (Fat_tree.spec net)
  in
  let t, delivered =
    build_workload ?mailbox_capacity ?lambda ?locality ?seed ~k ~until net part
  in
  let stats = Shard.run ~domains ~until t in
  (t, stats, Array.fold_left ( + ) 0 delivered)

(* -- unit tests ---------------------------------------------------------- *)

let test_lookahead () =
  let net = Fat_tree.create ~k:4 ~core_delay:25e-6 () in
  let t =
    Shard.build (Fat_tree.spec net) (Fat_tree.pods_partition net)
      ~init:(fun _ -> ())
  in
  Alcotest.(check (float 1e-12)) "lookahead = core delay" 25e-6
    (Shard.lookahead t);
  check_int "one shard per pod" 4 (Shard.shards t)

let test_single_partition_no_epochs () =
  let t, stats, delivered =
    run_config ~k:2 ~until:0.005 ~pods:false ~domains:4 ()
  in
  check_int "single shard build" 1 (Shard.shards t);
  check_int "no epochs on the classic path" 0 stats.Shard.rs_epochs;
  check_int "no cross-shard messages" 0 stats.Shard.rs_messages;
  check "packets flowed" true (delivered > 0)

let test_differential_vs_reference () =
  let tref, _, ref_delivered =
    run_config ~k:4 ~until:0.005 ~pods:false ~domains:1 ()
  in
  let tsh, stats, sh_delivered =
    run_config ~k:4 ~until:0.005 ~pods:true ~domains:1 ()
  in
  check "cross-shard traffic exercised" true (stats.Shard.rs_messages > 0);
  check_int "same packets delivered" ref_delivered sh_delivered;
  Alcotest.(check string) "model metrics identical" (model_export tref)
    (model_export tsh)

let test_mailbox_spill_is_lossless () =
  (* A 1-slot ring forces the spill path; results must not change. *)
  let t1, s1, d1 =
    run_config ~mailbox_capacity:4096 ~lambda:200_000. ~k:2 ~until:0.005
      ~locality:0. ~pods:true ~domains:1 ()
  in
  let t2, s2, d2 =
    run_config ~mailbox_capacity:1 ~lambda:200_000. ~k:2 ~until:0.005
      ~locality:0. ~pods:true ~domains:1 ()
  in
  check "spill path exercised" true (s2.Shard.rs_spilled > 0);
  check_int "spill does not lose messages" s1.Shard.rs_messages
    s2.Shard.rs_messages;
  check_int "same delivery count" d1 d2;
  (* [shard.mailbox_spill] itself differs by construction — that is the
     counter the 1-slot ring forces up — so compare the model view. *)
  Alcotest.(check string) "same model export" (model_export t1)
    (model_export t2)

let test_run_stats_deterministic_across_domains () =
  let outcomes =
    List.map
      (fun domains ->
        let t, stats, delivered =
          run_config ~k:4 ~until:0.005 ~pods:true ~domains ()
        in
        (Obs.Export.prometheus (Shard.merged_metrics t), stats, delivered))
      domain_counts
  in
  match outcomes with
  | (e1, s1, d1) :: rest ->
    List.iter
      (fun (e, s, d) ->
        Alcotest.(check string) "byte-identical merged export" e1 e;
        check_int "same events" s1.Shard.rs_events s.Shard.rs_events;
        check_int "same epochs" s1.Shard.rs_epochs s.Shard.rs_epochs;
        check_int "same messages" s1.Shard.rs_messages s.Shard.rs_messages;
        check_int "same delivered" d1 d)
      rest
  | [] -> assert false

let test_shard_run_spans () =
  let t, _, _ = run_config ~k:2 ~until:0.002 ~pods:true ~domains:2 () in
  List.iter
    (fun v ->
      let tr = Obs.Scope.trace (Netsim.Sim.obs v.Shard.sh_sim) in
      match Obs.Trace.by_name tr "shard.run" with
      | [ span ] ->
        check "span closed" true (span.Obs.Trace.end_time <> None);
        check "epochs attr present" true
          (List.mem_assoc "epochs" span.Obs.Trace.attrs)
      | spans ->
        Alcotest.failf "expected exactly one shard.run span, got %d"
          (List.length spans))
    (Shard.views t)

let test_cross_shard_link_delay_preserved () =
  (* Two hosts on either side of a shard boundary: arrival time must
     include the full cross-link propagation delay even though the
     boundary link itself is created with zero local delay. *)
  let spec = Shard.Spec.create () in
  let a = Shard.Spec.add_host spec "a" in
  let b = Shard.Spec.add_host spec "b" in
  ignore (Shard.Spec.connect ~delay:5e-4 ~bandwidth:8e9 spec a b);
  let part = Shard.partition spec ~shards:2 (fun id -> id) in
  let arrival = ref 0. in
  let t =
    Shard.build spec part ~init:(fun view ->
        match view.Shard.sh_nodes.(b) with
        | Some nb ->
          Netsim.Node.set_handler nb (fun _ ~in_port:_ _ ->
              arrival := Netsim.Sim.now view.Shard.sh_sim)
        | None ->
          (match view.Shard.sh_nodes.(a) with
           | Some na ->
             Netsim.Sim.at view.Shard.sh_sim 0. (fun () ->
                 Netsim.Node.send na ~port:0
                   (Netsim.Packet.create ~size:1000 []))
           | None -> ()))
  in
  ignore (Shard.run ~domains:2 t);
  (* 1000 B at 8 Gb/s = 1 us serialization, + 500 us propagation *)
  Alcotest.(check (float 1e-12)) "arrival pays the real link delay"
    (1e-6 +. 5e-4) !arrival

let test_partition_validation () =
  let spec = Shard.Spec.create () in
  let a = Shard.Spec.add_host spec "a" in
  let b = Shard.Spec.add_host spec "b" in
  check "bad shard index rejected" true
    (try
       ignore (Shard.partition spec ~shards:2 (fun _ -> 5));
       false
     with Invalid_argument _ -> true);
  ignore (Shard.Spec.connect ~delay:0. spec a b);
  let part = Shard.partition spec ~shards:2 (fun id -> id) in
  check "zero-delay cross link rejected" true
    (try
       ignore (Shard.build spec part ~init:(fun _ -> ()));
       false
     with Invalid_argument _ -> true)

(* -- properties ---------------------------------------------------------- *)

let to_alcotest = QCheck_alcotest.to_alcotest

(* Differential under random workloads: seeded traffic with arbitrary
   locality on k in {2,4}, run single-shard vs per-pod at 1/2/4
   domains. Model metrics and delivery counts must all agree. *)
let prop_differential =
  QCheck.Test.make ~name:"sharded run matches single-domain reference"
    ~count:8
    QCheck.(triple (int_bound 1000) (float_bound_inclusive 1.0) bool)
    (fun (seed, locality, big) ->
      let k = if big then 4 else 2 in
      let until = 0.004 in
      let tref, _, dref =
        run_config ~seed ~locality ~k ~until ~pods:false ~domains:1 ()
      in
      let reference = model_export tref in
      List.for_all
        (fun domains ->
          let tsh, _, dsh =
            run_config ~seed ~locality ~k ~until ~pods:true ~domains ()
          in
          dref = dsh && String.equal reference (model_export tsh))
        domain_counts)

let prop_domain_count_invisible =
  QCheck.Test.make ~name:"merged export byte-identical across domain counts"
    ~count:8
    QCheck.(pair (int_bound 1000) (float_bound_inclusive 1.0))
    (fun (seed, locality) ->
      let run domains =
        let t, stats, _ =
          run_config ~seed ~locality ~k:4 ~until:0.004 ~pods:true ~domains ()
        in
        (Obs.Export.prometheus (Shard.merged_metrics t), stats.Shard.rs_events)
      in
      let e1, ev1 = run 1 in
      List.for_all
        (fun d ->
          let e, ev = run d in
          String.equal e1 e && ev1 = ev)
        (List.tl domain_counts))

let () =
  Alcotest.run "shard"
    [ ( "engine",
        [ Alcotest.test_case "lookahead" `Quick test_lookahead;
          Alcotest.test_case "single partition = classic path" `Quick
            test_single_partition_no_epochs;
          Alcotest.test_case "differential vs reference" `Quick
            test_differential_vs_reference;
          Alcotest.test_case "mailbox spill lossless" `Quick
            test_mailbox_spill_is_lossless;
          Alcotest.test_case "deterministic across domains" `Quick
            test_run_stats_deterministic_across_domains;
          Alcotest.test_case "shard.run spans" `Quick test_shard_run_spans;
          Alcotest.test_case "cross-shard delay preserved" `Quick
            test_cross_shard_link_delay_preserved;
          Alcotest.test_case "validation" `Quick test_partition_validation ] );
      ( "properties",
        [ to_alcotest prop_differential;
          to_alcotest prop_domain_count_invisible ] ) ]
