(* App migration (§3.4): move a stateful monitoring app (count-min
   sketch) between switches while it is being updated on every packet.
   Control-plane freeze-copy loses the updates applied during the copy
   window; the data-plane swing protocol does not.

   Run with: dune exec examples/state_migration.exe *)

let pf fmt = Format.printf fmt

let cfg = { Apps.Cm_sketch.depth = 3; width = 512; map_name = "cms" }

let mk_device id =
  let dev = Targets.Device.create ~id Targets.Arch.drmt in
  let prog = Apps.Cm_sketch.program ~cfg () in
  List.iteri
    (fun i el -> ignore (Targets.Device.install dev ~ctx:prog ~order:i el))
    prog.Flexbpf.Ast.pipeline;
  dev

let run protocol label =
  let sim = Netsim.Sim.create () in
  let src = mk_device "spine-a" in
  let dst = mk_device "spine-b" in
  let handle = Runtime.Migration.create src in
  let rng = Random.State.make [| 17 |] in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:50_000. ~start:0. ~stop:1.0 ~send:(fun () ->
      incr sent;
      let s = Int64.of_int (Random.State.int rng 100) in
      let pkt =
        Netsim.Packet.create
          [ Netsim.Packet.ethernet ~src:s ~dst:1L ();
            Netsim.Packet.ipv4 ~src:s ~dst:1L ();
            Netsim.Packet.tcp ~sport:5L ~dport:6L () ]
      in
      ignore
        (Runtime.Migration.exec handle
           ~now_us:(Int64.of_float (Netsim.Sim.now sim *. 1e6))
           pkt));
  let window = ref 0. in
  Netsim.Sim.at sim 0.5 (fun () ->
      pf "  t=0.5s: migrating sketch spine-a -> spine-b (%s)...@." label;
      match protocol with
      | `Freeze ->
        Runtime.Migration.freeze_copy ~entries_per_second:2_000. ~sim handle
          ~dst ~map_names:[ "cms" ]
          ~on_done:(fun r ->
            window := r.Runtime.Migration.window;
            pf "  t=%.3fs: cutover after %.0f ms copy (%d entries)@."
              (Netsim.Sim.now sim)
              (1000. *. r.Runtime.Migration.window)
              r.Runtime.Migration.entries_moved)
          ()
      | `Swing ->
        Runtime.Migration.swing ~sim handle ~dst ~map_names:[ "cms" ]
          ~on_done:(fun r ->
            window := r.Runtime.Migration.window;
            pf "  t=%.3fs: cutover after %.0f ms mirror window (%d entries)@."
              (Netsim.Sim.now sim)
              (1000. *. r.Runtime.Migration.window)
              r.Runtime.Migration.entries_moved)
          ());
  ignore (Netsim.Sim.run sim);
  let updates_expected = !sent * cfg.Apps.Cm_sketch.depth in
  let updates_present =
    Int64.to_int (Runtime.Migration.map_sum dst "cms")
  in
  (label, updates_expected, updates_present, !window)

let () =
  pf "== Stateful app migration ==@.@.";
  pf "a count-min sketch updated at 50k pps migrates mid-trace:@.@.";
  let freeze = run `Freeze "control-plane freeze-copy" in
  pf "@.";
  let swing = run `Swing "data-plane swing" in
  pf "@.%-28s %-12s %-12s %-10s@." "protocol" "expected" "present" "lost";
  List.iter
    (fun (label, expected, present, _) ->
      pf "%-28s %-12d %-12d %-10d@." label expected present (expected - present))
    [ freeze; swing ];
  let _, fe, fp, _ = freeze and _, se, sp, _ = swing in
  assert (fp < fe); (* freeze-copy lost updates *)
  assert (sp = se); (* swing lost nothing *)
  pf "@.\"copying state via control plane software is impossible\" —@.";
  pf "the data-plane protocol migrates per-packet-mutating state losslessly.@.";
  pf "@.state migration OK@."
