(* Tenant extensions (§1.1, §3): tenants arrive with their own network
   programs — a NAT, a firewall — which are certified, access-checked,
   VLAN-isolated, and injected into the live network; departures remove
   them and release the resources.

   Run with: dune exec examples/tenant_lifecycle.exe *)

let pf fmt = Format.printf fmt

let show_utilization net tag =
  let util =
    Compiler.Placement.mean_utilization (Flexnet.path net) *. 100.
  in
  pf "  [%-18s] mean device utilization: %.2f%%@." tag util

let () =
  pf "== Tenant lifecycle ==@.@.";
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
  (match Flexnet.deploy_infrastructure net with
   | Ok _ -> ()
   | Error e -> failwith e);
  show_utilization net "infra only";

  (* Tenant "acme" brings a NAT; tenant "bolt" brings a firewall. *)
  let acme_nat =
    Apps.Nat.program ~owner:"acme" ~public:900 ~subnet_lo:10 ~subnet_hi:20 ()
  in
  let bolt_fw = Apps.Firewall.program ~owner:"bolt" ~boundary:100 () in

  List.iter
    (fun ext ->
      match Flexnet.add_tenant net ext with
      | Ok (tenant, report) ->
        pf "tenant %-6s admitted: vlan %d, %d ops, %.0f ms, devices %s@."
          tenant.Control.Tenants.tenant_name tenant.Control.Tenants.vlan
          (Compiler.Plan.size report.Compiler.Incremental.plan)
          (1000. *. report.Compiler.Incremental.duration)
          (String.concat "," report.Compiler.Incremental.touched_devices)
      | Error e ->
        pf "admission failed: %a@." Control.Tenants.pp_admission_error e)
    [ acme_nat; bolt_fw ];
  show_utilization net "with 2 tenants";

  (* A malicious tenant is rejected at admission. *)
  pf "@.tenant 'evil' tries to read infrastructure state:@.";
  let evil =
    Flexbpf.Builder.(
      program ~owner:"evil" "snoop"
        ~maps:[ map_decl ~key_arity:1 ~size:4 "infra/port_counters" ]
        [ block "peek"
            [ set_meta "stolen" (map_get "infra/port_counters" [ const 0 ]) ] ])
  in
  (match Flexnet.add_tenant net evil with
   | Ok _ -> pf "  !! admitted (bug)@."
   | Error e -> pf "  rejected: %a@." Control.Tenants.pp_admission_error e);

  (* An over-budget tenant is rejected by the bounded-execution
     certifier. *)
  pf "@.tenant 'hog' submits an unboundable program:@.";
  let hog =
    Flexbpf.Builder.(
      program ~owner:"hog" "spin"
        [ block "burn" [ loop 64 [ loop 64 [ loop 64 [ set_meta "x" (const 1) ] ] ] ] ])
  in
  (match Flexnet.add_tenant net hog with
   | Ok _ -> pf "  !! admitted (bug)@."
   | Error e -> pf "  rejected: %a@." Control.Tenants.pp_admission_error e);

  (* Identical logic across tenants is surfaced as sharable. *)
  (match Flexnet.add_tenant net (Apps.Firewall.program ~owner:"carp" ~boundary:100 ()) with
   | Ok (t, _) -> pf "@.tenant %s admitted (same firewall as bolt)@." t.Control.Tenants.tenant_name
   | Error e -> pf "admission failed: %a@." Control.Tenants.pp_admission_error e);
  let dep = Option.get net.Flexnet.deployment in
  ignore dep;
  let tenants =
    match net.Flexnet.tenants with Some t -> t | None -> assert false
  in
  List.iter
    (fun (a, b) -> pf "  sharable logic: %s == %s@." a b)
    (Control.Tenants.sharable tenants);

  (* Departures trim the network. *)
  pf "@.departures:@.";
  List.iter
    (fun name ->
      match Flexnet.remove_tenant net name with
      | Ok report ->
        pf "  %-6s departed (%d ops, %.0f ms)@." name
          (Compiler.Plan.size report.Compiler.Incremental.plan)
          (1000. *. report.Compiler.Incremental.duration)
      | Error e -> pf "  %s: %a@." name Control.Tenants.pp_departure_error e)
    [ "acme"; "bolt"; "carp" ];
  show_utilization net "after departures";
  pf "@.tenant lifecycle OK@."
