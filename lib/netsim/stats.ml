(** Measurement helpers shared by experiments and tests. *)

(** Streaming summary: count / mean / min / max / variance (Welford). *)
module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let min t = if t.n = 0 then 0. else t.min
  let max t = if t.n = 0 then 0. else t.max

  let stddev t =
    if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

  let pp ppf t =
    Fmt.pf ppf "n=%d mean=%.6g min=%.6g max=%.6g sd=%.6g" t.n (mean t)
      (min t) (max t) (stddev t)
end

(** Fixed-capacity reservoir for percentile estimates. *)
module Reservoir = struct
  type t = {
    samples : float array;
    mutable n : int; (* total observed *)
    rng : Random.State.t;
  }

  let create ?(capacity = 4096) ?(seed = 42) () =
    { samples = Array.make capacity 0.; n = 0; rng = Random.State.make [| seed |] }

  let add t x =
    let cap = Array.length t.samples in
    if t.n < cap then t.samples.(t.n) <- x
    else begin
      let j = Random.State.int t.rng (t.n + 1) in
      if j < cap then t.samples.(j) <- x
    end;
    t.n <- t.n + 1

  let count t = t.n

  let percentile t p =
    let m = Stdlib.min t.n (Array.length t.samples) in
    if m = 0 then 0.
    else begin
      let a = Array.sub t.samples 0 m in
      Array.sort Float.compare a;
      let idx = int_of_float (p /. 100. *. float_of_int (m - 1)) in
      a.(Stdlib.max 0 (Stdlib.min (m - 1) idx))
    end

  let median t = percentile t 50.
end

(** Named monotone counters.

    Thin adapter over the unified [Obs.Metrics] registry: [t] IS a
    registry (the type equality is exposed), so components that take a
    [Counters.t] can be handed the simulation's registry and their
    counts show up in the unified [flexnet metrics] export. *)
module Counters = struct
  type t = Obs.Metrics.t

  let create () : t = Obs.Metrics.create ()
  let incr ?by t name = Obs.Metrics.incr t ?by name

  (* The cell behind [name], creating a zero entry if absent. Hot-path
     callers (the FlexBPF compiled fast path) hold the ref and bump it
     directly instead of hashing the name per event. *)
  let handle t name = Obs.Metrics.counter t name
  let get t name = Obs.Metrics.get_counter t name
  let to_list t = Obs.Metrics.counters_list t

  let pp ppf t =
    Fmt.pf ppf "%a" Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string int))
      (to_list t)
end

(** Time series sampled by experiments (e.g. queue depth over time). *)
module Series = struct
  type t = { mutable points : (float * float) list }

  let create () = { points = [] }
  let add t ~time ~value = t.points <- (time, value) :: t.points
  let to_list t = List.rev t.points

  let max_value t =
    List.fold_left (fun acc (_, v) -> Stdlib.max acc v) neg_infinity t.points

  let last t = match t.points with [] -> None | (ti, v) :: _ -> Some (ti, v)
end
