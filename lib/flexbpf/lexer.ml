(** Hand-rolled lexer for the FlexBPF surface syntax (see Syntax). *)

type token =
  | IDENT of string
  | INT of int64
  | STRING of string
  (* punctuation *)
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | COMMA | COLON | SEMI | DOT | DOLLAR | ARROW | LT_ANGLE | GT_ANGLE
  (* operators *)
  | OP of string (* multi-char operators: == != <= >= << >> && || += etc. *)
  | EOF

type pos = { line : int; col : int }

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  mutable peeked : (token * pos) option;
}

exception Lex_error of string * pos

let create src = { src; off = 0; line = 1; bol = 0; peeked = None }

let pos t = { line = t.line; col = t.off - t.bol + 1 }

let error t fmt =
  Printf.ksprintf (fun s -> raise (Lex_error (s, pos t))) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '/'

let is_digit c = c >= '0' && c <= '9'

let peek_char t =
  if t.off < String.length t.src then Some t.src.[t.off] else None

let advance t =
  (match peek_char t with
   | Some '\n' ->
     t.line <- t.line + 1;
     t.bol <- t.off + 1
   | _ -> ());
  t.off <- t.off + 1

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_ws t
  | Some '#' ->
    (* line comment *)
    let rec to_eol () =
      match peek_char t with
      | Some '\n' | None -> ()
      | Some _ -> advance t; to_eol ()
    in
    to_eol ();
    skip_ws t
  | _ -> ()

let lex_ident t =
  let start = t.off in
  while (match peek_char t with Some c -> is_ident_char c | None -> false) do
    advance t
  done;
  IDENT (String.sub t.src start (t.off - start))

let lex_number t =
  let start = t.off in
  (* 0x... hex *)
  if
    peek_char t = Some '0'
    && t.off + 1 < String.length t.src
    && (t.src.[t.off + 1] = 'x' || t.src.[t.off + 1] = 'X')
  then begin
    advance t;
    advance t;
    while
      match peek_char t with
      | Some c ->
        is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance t
    done
  end
  else
    while
      match peek_char t with
      | Some c -> is_digit c || c = '_'
      | None -> false
    do
      advance t
    done;
  let text =
    String.sub t.src start (t.off - start)
    |> String.split_on_char '_' |> String.concat ""
  in
  match Int64.of_string_opt text with
  | Some v -> INT v
  | None -> error t "bad integer literal %s" text

let lex_string t =
  advance t; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char t with
    | None -> error t "unterminated string"
    | Some '"' -> advance t
    | Some c ->
      advance t;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let two_char_op t a rest =
  match peek_char t with
  | Some c when List.mem c rest ->
    advance t;
    OP (Printf.sprintf "%c%c" a c)
  | _ -> OP (String.make 1 a)

let next_token t =
  skip_ws t;
  let p = pos t in
  let tok =
    match peek_char t with
    | None -> EOF
    | Some c when is_ident_start c -> lex_ident t
    | Some c when is_digit c -> lex_number t
    | Some '"' -> lex_string t
    | Some '{' -> advance t; LBRACE
    | Some '}' -> advance t; RBRACE
    | Some '(' -> advance t; LPAREN
    | Some ')' -> advance t; RPAREN
    | Some '[' -> advance t; LBRACKET
    | Some ']' -> advance t; RBRACKET
    | Some ',' -> advance t; COMMA
    | Some ';' -> advance t; SEMI
    | Some ':' -> advance t; COLON
    | Some '.' -> advance t; DOT
    | Some '$' -> advance t; DOLLAR
    | Some '=' -> advance t; two_char_op t '=' [ '=' ]
    | Some '!' -> advance t; two_char_op t '!' [ '=' ]
    | Some '+' -> advance t; two_char_op t '+' [ '=' ]
    | Some '-' ->
      advance t;
      (match peek_char t with
       | Some '>' -> advance t; ARROW
       | _ -> OP "-")
    | Some '*' -> advance t; OP "*"
    | Some '/' -> advance t; OP "/"
    | Some '%' -> advance t; OP "%"
    | Some '~' -> advance t; OP "~"
    | Some '^' -> advance t; OP "^"
    | Some '&' -> advance t; two_char_op t '&' [ '&' ]
    | Some '|' -> advance t; two_char_op t '|' [ '|' ]
    | Some '<' ->
      advance t;
      (match peek_char t with
       | Some '=' -> advance t; OP "<="
       | Some '<' -> advance t; OP "<<"
       | _ -> LT_ANGLE)
    | Some '>' ->
      advance t;
      (match peek_char t with
       | Some '=' -> advance t; OP ">="
       | Some '>' -> advance t; OP ">>"
       | _ -> GT_ANGLE)
    | Some c -> error t "unexpected character %c" c
  in
  (tok, p)

let peek t =
  match t.peeked with
  | Some tp -> tp
  | None ->
    let tp = next_token t in
    t.peeked <- Some tp;
    tp

let next t =
  match t.peeked with
  | Some tp ->
    t.peeked <- None;
    tp
  | None -> next_token t

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT v -> Printf.sprintf "integer %Ld" v
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "{" | RBRACE -> "}" | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]" | COMMA -> "," | COLON -> ":"
  | SEMI -> ";" | DOT -> "." | DOLLAR -> "$" | ARROW -> "->"
  | LT_ANGLE -> "<" | GT_ANGLE -> ">"
  | OP s -> s
  | EOF -> "end of input"
