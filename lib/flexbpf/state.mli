(** Physical encodings of the logical key/value map (§3.1).

    Devices implement network state in drastically different ways — P4
    "extern" registers, PoF flow-state instruction sets, Mellanox
    stateful tables — and a program pinned to one encoding cannot
    migrate. All three live behind this interface, plus a logical
    snapshot format that is the migration representation.

    Behavioral differences preserved:
    - {b Registers}: hash-indexed fixed array; distinct keys may alias
      (collision overwrites); reads always defined.
    - {b Flow-state ISA}: explicit insertion; once full, writes to
      unknown keys are rejected (counted as overflow).
    - {b Stateful table}: data-plane auto-insert with LRU eviction when
      full (Spectrum-style flow caching). *)

type key = int64 list

type concrete = Registers | Flow_state | Stateful_table

val concrete_of_encoding : Ast.map_encoding -> concrete option
val concrete_to_string : concrete -> string

type snapshot = {
  snap_map : string;
  snap_entries : (key * int64) list; (* sorted, deterministic *)
}

type t

val create : name:string -> size:int -> concrete -> t

(** Instantiate a declared map; [default] resolves [Enc_auto]. *)
val of_decl : Ast.map_decl -> ?default:concrete -> unit -> t

val encoding : t -> concrete

(** Reads of absent keys return 0 (total semantics). *)
val get : t -> key -> int64

val mem : t -> key -> bool
val put : t -> key -> int64 -> unit

(** Add [delta]; returns the new value. *)
val incr : t -> key -> int64 -> int64

val del : t -> key -> unit

val entries : t -> (key * int64) list
val size : t -> int

(** Writes rejected by a full flow-state store. *)
val overflows : t -> int

(** LRU evictions performed by a stateful table. *)
val evictions : t -> int

(** Logical snapshot: the migration representation (deterministically
    ordered). *)
val snapshot : t -> snapshot

(** Rebuild from a snapshot, possibly under a different physical
    encoding — the conversion performed when a component migrates to a
    target with a different state implementation. *)
val restore : name:string -> size:int -> concrete -> snapshot -> t

val clear : t -> unit

(** Fold a snapshot in by summing values — used by the data-plane
    migration protocol for in-flight updates. *)
val merge_add : t -> snapshot -> unit

(** Bounded on-device tier of a virtualized match table (tiered match
    tables): a key-tuple → binding cache with LRU demotion. The cache
    is policy-free about what it stores — [Compile] memoizes full
    first-match lookup {e results}, so priority semantics cannot be
    violated by partial residency. Owns the tier telemetry
    (hits/misses/promotions/evictions/demotions); eviction = LRU victim
    demoted under capacity pressure, demotion additionally counts
    explicit invalidations and flushes. *)
module Tier : sig
  type 'a t

  (** [cap] is clamped to at least 1. *)
  val create : cap:int -> 'a t

  val capacity : 'a t -> int

  (** Resident binding count (≤ capacity). *)
  val resident : 'a t -> int

  val hits : 'a t -> int
  val misses : 'a t -> int
  val promotions : 'a t -> int
  val evictions : 'a t -> int
  val demotions : 'a t -> int

  (** Probe the device tier; a hit refreshes the binding's LRU rank.
      Bumps the hit/miss telemetry. *)
  val find : 'a t -> key -> 'a option

  val mem : 'a t -> key -> bool

  (** Install (or refresh) a binding, demoting the LRU victim when the
      tier is full. *)
  val promote : 'a t -> key -> 'a -> unit

  (** Drop one binding (rule deletion / priority-update hygiene). *)
  val demote : 'a t -> key -> unit

  (** Drop every binding — generation change or residency replan —
      keeping cumulative telemetry; [cap] resizes the tier. *)
  val flush : ?cap:int -> 'a t -> unit

  (** Resident keys, unordered — the hot set carried by migration. *)
  val keys : 'a t -> key list
end
