(** Elastic scaling policies (§1.1): defenses and apps "dynamically
    scale in and out based on attack traffic volume." A policy samples
    a load metric periodically and drives the replica count toward
    ceil(load / capacity_per_replica), within bounds and a cooldown;
    the [scale_to] actuator injects or removes replicas. *)

type t

val create :
  ?min_replicas:int -> ?max_replicas:int -> ?cooldown:float ->
  ?period:float -> sim:Netsim.Sim.t -> name:string ->
  sample:(unit -> float) -> capacity_per_replica:float ->
  scale_to:(int -> unit) -> unit -> t

val stop : t -> unit
val replicas : t -> int

(** (time, new replica count) decisions, oldest first. *)
val events : t -> (float * int) list

val name : t -> string

(** A [scale_to] actuator driving a registered controller app over a
    fixed device list through the plan path: scaling to [n] injects the
    app on the first [n] devices missing it and retires it from the
    rest. [on_retire] runs just before a replica is removed (harvest
    counters before the uninstall releases its maps), [on_inject] just
    after one comes up. *)
val app_actuator :
  ?on_inject:(Targets.Device.t -> unit) ->
  ?on_retire:(Targets.Device.t -> unit) ->
  controller:Controller.t -> uri:Uri.t -> devices:Targets.Device.t list ->
  unit -> int -> unit
