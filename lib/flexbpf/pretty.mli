(** Pretty-printing of FlexBPF programs for error messages, logs, and
    example output (not parseable — see [Syntax] for that). *)

val binop_to_string : Ast.binop -> string
val unop_to_string : Ast.unop -> string
val hash_to_string : Ast.hash_alg -> string
val match_kind_to_string : Ast.match_kind -> string
val pattern_to_string : Ast.pattern -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_stmts : Format.formatter -> Ast.stmt list -> unit
val pp_action : Format.formatter -> Ast.action -> unit
val pp_table : Format.formatter -> Ast.table -> unit
val pp_element : Format.formatter -> Ast.element -> unit
val pp_map : Format.formatter -> Ast.map_decl -> unit
val pp_parser_rule : Format.formatter -> Ast.parser_rule -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val pp_rule : Format.formatter -> Ast.rule -> unit

val program_to_string : Ast.program -> string
