(** Datapath composition (§3.2).

    Tenant extension programs are layered onto the infrastructure
    datapath. Composition namespaces every tenant element under
    "tenant/", enforces access-control restrictions (a tenant program
    may not touch infra state or another tenant's state), detects
    conflicts, and reports logically-sharable code across tenants as an
    optimization opportunity. *)

open Ast

let namespaced owner name =
  if String.contains name '/' then name else owner ^ "/" ^ name

let owner_of_name name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> "infra"

(* Rename every element/map of [prog] into the owner namespace, and
   rewrite references accordingly. *)
let rec rename_expr rename_map = function
  | Map_get (m, keys) -> Map_get (rename_map m, List.map (rename_expr rename_map) keys)
  | Bin (op, a, b) -> Bin (op, rename_expr rename_map a, rename_expr rename_map b)
  | Un (op, e) -> Un (op, rename_expr rename_map e)
  | Hash (alg, es) -> Hash (alg, List.map (rename_expr rename_map) es)
  | (Const _ | Field _ | Meta _ | Param _ | Time) as e -> e

let rec rename_stmt rename_map = function
  | Map_put (m, keys, v) ->
    Map_put (rename_map m, List.map (rename_expr rename_map) keys,
             rename_expr rename_map v)
  | Map_incr (m, keys, v) ->
    Map_incr (rename_map m, List.map (rename_expr rename_map) keys,
              rename_expr rename_map v)
  | Map_del (m, keys) ->
    Map_del (rename_map m, List.map (rename_expr rename_map) keys)
  | If (c, th, el) ->
    If (rename_expr rename_map c,
        List.map (rename_stmt rename_map) th,
        List.map (rename_stmt rename_map) el)
  | Loop (n, body) -> Loop (n, List.map (rename_stmt rename_map) body)
  | Set_field (h, f, e) -> Set_field (h, f, rename_expr rename_map e)
  | Set_meta (m, e) -> Set_meta (m, rename_expr rename_map e)
  | Forward e -> Forward (rename_expr rename_map e)
  | Call (svc, args) -> Call (svc, List.map (rename_expr rename_map) args)
  | (Nop | Drop | Punt _ | Push_header _ | Pop_header _) as s -> s

let rename_element rename_map owner = function
  | Table t ->
    Table
      { t with
        tbl_name = namespaced owner t.tbl_name;
        keys = List.map (fun (e, k) -> (rename_expr rename_map e, k)) t.keys;
        tbl_actions =
          List.map
            (fun a -> { a with body = List.map (rename_stmt rename_map) a.body })
            t.tbl_actions }
  | Block b ->
    Block
      { blk_name = namespaced owner b.blk_name;
        blk_body = List.map (rename_stmt rename_map) b.blk_body }

(** Namespace an extension program under its owner. *)
let namespace (ext : program) =
  let owner = ext.owner in
  let own_maps = List.map (fun (m : map_decl) -> m.map_name) ext.maps in
  let rename_map m = if List.mem m own_maps then namespaced owner m else m in
  { ext with
    maps =
      List.map
        (fun (m : map_decl) -> { m with map_name = namespaced owner m.map_name })
        ext.maps;
    parser =
      List.map (fun r -> { r with pr_name = namespaced owner r.pr_name }) ext.parser;
    pipeline = List.map (rename_element rename_map owner) ext.pipeline }

(* Access control ----------------------------------------------------- *)

type violation =
  | Touches_foreign_map of string * string (* element, map *)
  | Name_collision of string
  | Unauthorized_drop of string (* tenants may not drop infra traffic wholesale *)

let pp_violation ppf = function
  | Touches_foreign_map (el, m) ->
    Fmt.pf ppf "element %s accesses foreign map %s" el m
  | Name_collision n -> Fmt.pf ppf "name collision on %s" n
  | Unauthorized_drop el ->
    Fmt.pf ppf "element %s drops traffic outside its VLAN guard" el

let rec expr_maps = function
  | Map_get (m, keys) -> m :: List.concat_map expr_maps keys
  | Bin (_, a, b) -> expr_maps a @ expr_maps b
  | Un (_, e) -> expr_maps e
  | Hash (_, es) -> List.concat_map expr_maps es
  | Const _ | Field _ | Meta _ | Param _ | Time -> []

let rec stmt_maps = function
  | Map_put (m, keys, v) | Map_incr (m, keys, v) ->
    m :: (List.concat_map expr_maps keys @ expr_maps v)
  | Map_del (m, keys) -> m :: List.concat_map expr_maps keys
  | If (c, th, el) ->
    expr_maps c @ List.concat_map stmt_maps th @ List.concat_map stmt_maps el
  | Loop (_, body) -> List.concat_map stmt_maps body
  | Set_field (_, _, e) | Set_meta (_, e) | Forward e -> expr_maps e
  | Call (_, args) -> List.concat_map expr_maps args
  | Nop | Drop | Punt _ | Push_header _ | Pop_header _ -> []

let element_maps = function
  | Table t ->
    List.concat_map (fun (e, _) -> expr_maps e) t.keys
    @ List.concat_map (fun a -> List.concat_map stmt_maps a.body) t.tbl_actions
  | Block b -> List.concat_map stmt_maps b.blk_body

(** Check that a namespaced tenant program only references its own maps
    (or maps the infrastructure explicitly [exports]). *)
let check_access ?(exports = []) (ext : program) =
  let owner = ext.owner in
  let violations =
    List.concat_map
      (fun el ->
        element_maps el
        |> List.filter_map (fun m ->
               if owner_of_name m = owner || List.mem m exports then None
               else Some (Touches_foreign_map (element_name el, m))))
      ext.pipeline
  in
  (* dedupe *)
  List.sort_uniq compare violations

(* Composition --------------------------------------------------------- *)

(** Lay a (namespaced, access-checked) extension atop the base program.
    Tenant elements are guarded by VLAN id: the composition wraps each
    tenant element so it only applies to packets carrying the tenant's
    VLAN, which is the paper's isolation mechanism. *)
let guard_element ~vlan el =
  match el with
  | Block b ->
    (* meta.vlan_vid is stamped at device ingress from the VLAN header
       (0 when untagged), so the guard is total. *)
    Block
      { b with
        blk_body =
          [ If
              ( Bin (Eq, Meta "vlan_vid", Const (Int64.of_int vlan)),
                b.blk_body,
                [] ) ] }
  | Table _ ->
    (* Tables are guarded by requiring the VLAN id as an extra key at
       rule-install time (enforced by the controller); structurally the
       table is unchanged. *)
    el

type composition_error =
  | Access of violation list
  | Collision of string list
  | Ill_typed of Typecheck.error list

let pp_composition_error ppf = function
  | Access vs -> Fmt.pf ppf "access: %a" Fmt.(list ~sep:(any "; ") pp_violation) vs
  | Collision ns -> Fmt.pf ppf "collisions: %a" Fmt.(list ~sep:comma string) ns
  | Ill_typed es ->
    Fmt.pf ppf "ill-typed: %a" Fmt.(list ~sep:(any "; ") Typecheck.pp_error) es

let compose ?(exports = []) ?vlan ~base (ext : program) =
  let ext = namespace ext in
  match check_access ~exports ext with
  | _ :: _ as violations -> Error (Access violations)
  | [] ->
    let collisions =
      List.filter
        (fun el ->
          List.exists
            (fun e -> element_name e = element_name el)
            base.pipeline)
        ext.pipeline
      |> List.map element_name
    in
    if collisions <> [] then Error (Collision collisions)
    else begin
      let guarded =
        match vlan with
        | Some vlan -> List.map (guard_element ~vlan) ext.pipeline
        | None -> ext.pipeline
      in
      let merged =
        { base with
          headers =
            base.headers
            @ List.filter
                (fun h -> not (List.exists (fun b -> b.hdr_name = h.hdr_name) base.headers))
                ext.headers;
          parser =
            base.parser
            @ List.filter
                (fun r -> not (List.exists (fun b -> b.pr_name = r.pr_name) base.parser))
                ext.parser;
          maps = base.maps @ ext.maps;
          pipeline = base.pipeline @ guarded }
      in
      match Typecheck.check_program merged with
      | Ok () -> Ok merged
      | Error es -> Error (Ill_typed es)
    end

(** Remove every element, map, and parser rule owned by [owner] — the
    tenant-departure path ("departures achieve opposite effects"). *)
let remove_owner ~owner (prog : program) =
  let prefix = owner ^ "/" in
  let is_foreign n = not (String.starts_with ~prefix n) in
  { prog with
    parser = List.filter (fun r -> is_foreign r.pr_name) prog.parser;
    maps = List.filter (fun (m : map_decl) -> is_foreign m.map_name) prog.maps;
    pipeline = List.filter (fun e -> is_foreign (element_name e)) prog.pipeline }

(** Structurally identical elements installed by different owners —
    "logically-sharable code that presents optimization opportunities". *)
let sharable_elements (prog : program) =
  (* compare modulo per-owner state names: strip the namespace from map
     references before the structural check *)
  let strip m =
    match String.index_opt m '/' with
    | Some i -> String.sub m (i + 1) (String.length m - i - 1)
    | None -> m
  in
  let unguard el =
    (* the VLAN guard is composition plumbing, not tenant logic: strip
       it so two tenants' identical programs compare equal *)
    match el with
    | Block
        { blk_body =
            [ If (Bin (Eq, Meta "vlan_vid", Const _), body, []) ];
          _ } as b ->
      (match b with Block bb -> Block { bb with blk_body = body } | t -> t)
    | el -> el
  in
  let normalize el =
    (* rename_element namespaces names; neutralize by renaming under a
       fixed owner then resetting the element name *)
    match rename_element strip "_" (unguard el) with
    | Table t -> Table { t with tbl_name = "_" }
    | Block b -> Block { b with blk_name = "_" }
  in
  let rec pairs = function
    | [] -> []
    | e :: rest ->
      List.filter_map
        (fun e' ->
          if
            owner_of_name (element_name e) <> owner_of_name (element_name e')
            && same_logic (normalize e) (normalize e')
          then Some (element_name e, element_name e')
          else None)
        rest
      @ pairs rest
  in
  pairs prog.pipeline
