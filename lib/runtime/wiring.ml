(** Wiring programmable devices into simulated network nodes.

    A wired device becomes the node's packet handler: each arriving
    packet runs the device's installed FlexBPF program; the verdict
    decides forwarding. If the program does not pick an egress port, the
    packet falls back to destination-based ECMP routing — the
    infrastructure program's L2/L3 tables normally do pick one. *)

type wired = {
  node : Netsim.Node.t;
  device : Targets.Device.t;
  topo : Netsim.Topology.t;
  mutable online : bool; (* false while draining / reflashing *)
  mutable reconfig_drops : int;
  mutable punted : (string * Netsim.Packet.t) list;
  mutable on_punt : string -> Netsim.Packet.t -> unit;
}

let now_us sim = Int64.of_float (Netsim.Sim.now sim *. 1e6)

(** Attach [device] as the packet processor of [node]. *)
let attach topo node device =
  let sim = Netsim.Topology.sim topo in
  Targets.Device.set_obs device (Some (Netsim.Sim.obs sim));
  let wired =
    { node; device; topo; online = true; reconfig_drops = 0; punted = [];
      on_punt = (fun _ _ -> ()) }
  in
  (Targets.Device.env device).Flexbpf.Interp.punt <-
    (fun digest pkt ->
      wired.punted <- (digest, pkt) :: wired.punted;
      wired.on_punt digest pkt);
  let fallback_route n pkt =
    match Netsim.Packet.field pkt "ipv4" "dst" with
    | None -> ()
    | Some dst64 ->
      let dst = Int64.to_int dst64 in
      if dst <> n.Netsim.Node.id then
        (match Netsim.Topology.ecmp_port topo ~src:n.Netsim.Node.id ~dst pkt with
         | Some port -> Netsim.Node.send n ~port pkt
         | None -> n.Netsim.Node.dropped <- n.Netsim.Node.dropped + 1)
  in
  Netsim.Node.set_handler node (fun n ~in_port pkt ->
      if not wired.online then
        wired.reconfig_drops <- wired.reconfig_drops + 1
      else if (Targets.Device.active_program device).Flexbpf.Ast.pipeline = []
      then
        (* no program visible to traffic: plain forwarding element *)
        fallback_route n pkt
      else begin
        Netsim.Packet.set_meta pkt "in_port" (Int64.of_int in_port);
        Netsim.Packet.set_meta pkt "vlan_vid"
          (Option.value (Netsim.Packet.field pkt "vlan" "vid") ~default:0L);
        let result = Targets.Device.exec device ~now_us:(now_us sim) pkt in
        let verdict = result.Flexbpf.Interp.verdict in
        if verdict.Flexbpf.Interp.dropped then ()
        else
          match verdict.Flexbpf.Interp.egress with
          | Some port -> Netsim.Node.send n ~port pkt
          | None -> fallback_route n pkt
      end);
  wired

let set_online w online = w.online <- online

let drain_drops w = w.reconfig_drops

let punted w = List.rev w.punted

(** Register this wired device with a fault injector: a planned crash
    powers the device off (mid-update state rolls back at restart, see
    [Targets.Device.restart]) and takes the node offline so traffic
    drops for the downtime; the restart brings both back. *)
let bind_faults faults w =
  Netsim.Faults.register_device faults
    (Targets.Device.id w.device)
    ~crash:(fun () ->
      Targets.Device.crash w.device;
      w.online <- false)
    ~restart:(fun () ->
      Targets.Device.restart w.device;
      w.online <- true)
