(** Discrete-event simulation engine.

    A simulation owns a virtual clock and an event queue. All model
    components (links, traffic generators, device runtimes, controllers)
    schedule callbacks against the same engine, which makes whole-network
    experiments deterministic and single-threaded. *)

type t

val create : unit -> t

(** Current virtual time, seconds. *)
val now : t -> float

(** The simulation's observability scope: a unified metrics registry and
    span tracer whose clock is this simulation's virtual clock. All
    components running in the simulation instrument against it. *)
val obs : t -> Obs.Scope.t

(** [at t time f] schedules [f] at absolute virtual [time].
    @raise Invalid_argument if [time] is in the past. *)
val at : t -> float -> (unit -> unit) -> unit

(** [after t delay f] schedules [f] to run [delay] seconds from now. *)
val after : t -> float -> (unit -> unit) -> unit

(** Stop the current [run] after the event in progress. *)
val stop : t -> unit

(** Number of pending events. *)
val pending : t -> int

(** Timestamp of the earliest pending event, [infinity] when the queue
    is drained (the sharded engine's lookahead input). *)
val next_time : t -> float

(** Run events until the queue drains, [until] is reached, or [stop] is
    called. Returns the number of events executed. When stopping at the
    [until] horizon the clock is advanced to it. *)
val run : ?until:float -> t -> int

(** [every t ~period f] re-runs [f] every [period] seconds until it
    returns [false]. *)
val every : t -> period:float -> (unit -> bool) -> unit
