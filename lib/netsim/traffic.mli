(** Workload generators.

    All generators are driven by the simulation clock and a seeded RNG,
    so experiments are reproducible. Generators emit packets through a
    user-supplied [send] callback. *)

type t

val create : ?seed:int -> Sim.t -> t

(** Stop every generator created from this handle. *)
val stop : t -> unit

val exponential : t -> mean:float -> float

(** Bounded Pareto, the canonical heavy-tailed flow-size model. *)
val pareto : t -> alpha:float -> xmin:float -> xmax:float -> float

(** [zipf ?alpha t ~n] precomputes a Zipf(alpha) sampler over ranks
    [1, n] (probability of rank r proportional to 1/r^alpha; [alpha]
    defaults to 1.1): the skewed popularity law driving the
    tiered-table (E17) and heavy-hitter workloads. Each call of the
    returned thunk draws one rank from the seeded RNG, so streams are
    reproducible. *)
val zipf : ?alpha:float -> t -> n:int -> unit -> int

(** Constant bit rate: [rate_pps] sends/second in [start, stop). *)
val cbr :
  t -> rate_pps:float -> start:float -> stop:float -> send:(unit -> unit) ->
  unit

(** Poisson arrivals at rate [lambda] events/second in [start, stop). *)
val poisson :
  t -> lambda:float -> start:float -> stop:float -> send:(unit -> unit) ->
  unit

(** Markovian on/off source: CBR bursts at [rate_pps] with exponential
    on and off periods. *)
val onoff :
  t -> rate_pps:float -> mean_on:float -> mean_off:float -> start:float ->
  stop:float -> send:(unit -> unit) -> unit

(** Poisson flow arrivals with bounded-Pareto sizes (packets/flow). *)
val flow_arrivals :
  t -> lambda:float -> alpha:float -> min_packets:int -> max_packets:int ->
  start:float -> stop:float -> start_flow:(packets:int -> unit) -> unit

(** Attack ramp: rate rises linearly to [peak_pps] over [ramp_up],
    holds for [hold], then decays over [ramp_down]. *)
val ramp :
  t -> peak_pps:float -> start:float -> ramp_up:float -> hold:float ->
  ramp_down:float -> send:(unit -> unit) -> unit

(** {2 Packet factories} *)

val tcp_packet :
  ?size:int -> ?flags:int64 -> src:int -> dst:int -> sport:int -> dport:int ->
  born:float -> unit -> Packet.t

val udp_packet :
  ?size:int -> src:int -> dst:int -> sport:int -> dport:int -> born:float ->
  unit -> Packet.t

(** SYN with a random spoofed source, as emitted by flood attacks. *)
val spoofed_syn : t -> dst:int -> dport:int -> born:float -> Packet.t
