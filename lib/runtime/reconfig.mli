(** Reconfiguration execution over simulated time.

    - [Hitless] (runtime programmable): touched devices keep serving
      traffic with their old program; the new one becomes visible
      atomically per device when its op batch completes. Zero loss,
      "program changes complete within a second".
    - [Drain] (compile-time baseline): each touched device is isolated,
      reflashed with the full program, then redeployed; loss is
      proportional to drain + reflash time.

    The caller provides [apply], which performs the actual device
    mutations (e.g. running the incremental compiler); mutations happen
    under freeze, so traffic observes old-program semantics until the
    modelled completion time.

    Failure handling (Hitless): the op batch is acknowledged per device
    at the end of the window. A device that crashed mid-batch restarts
    on its old program; survivors roll back and the plan is re-driven
    with exponential backoff, or aborted atomically once the retry
    budget is spent — each device always runs old-XOR-new. *)

type mode = Hitless | Drain

type outcome = {
  started_at : float;
  finished_at : float;
  mode : mode;
  per_device_done : (string * float) list;
  attempts : int; (* 1 on a fault-free run *)
  rolled_back : bool; (* true: plan aborted, all devices on old program *)
}

(** Serial op time per device id in the plan. *)
val per_device_times :
  Compiler.Plan.t -> Wiring.wired list -> (string * float) list

(** Execute [plan] starting now; [on_done] fires when every device has
    finished (or the plan aborted). Hitless runs survive mid-batch
    crashes: up to [max_retries] re-drives (default 2) with exponential
    backoff from [retry_backoff] seconds (default 0.05), then an atomic
    abort. [apply] is re-run on retries and must be idempotent over
    already-converged devices. [stats] counts "reconfig.retries" /
    "reconfig.gaveups". *)
val execute :
  ?on_done:(outcome -> unit) -> ?max_retries:int -> ?retry_backoff:float ->
  ?stats:Netsim.Stats.Counters.t -> sim:Netsim.Sim.t -> mode:mode ->
  wireds:Wiring.wired list -> plan:Compiler.Plan.t -> (unit -> unit) -> unit

(** Modelled completion latency of a plan in hitless mode. *)
val hitless_latency : devices:Targets.Device.t list -> Compiler.Plan.t -> float
