(* Tests for the FlexBPF surface syntax: parsing, error reporting, and
   print/parse round-tripping (hand-written and property-based). *)

open Flexbpf

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample =
  {|
# the tenant firewall, in surface syntax
program fw owner acme {
  header gre { proto:16, key:32 }
  parse parse_gre: ethernet -> gre
  map conn<4, 8192, stateful_table>
  map denied<1, 4, registers>

  table acl(size 512) {
    keys: ipv4.src:ternary, ipv4.dst:ternary
    action permit() { nop }
    action deny() { drop }
    default: permit()
  }

  block guard {
    if (ipv4.ttl <= 0) { drop }
    if (ipv4.src < 100) {
      conn[ipv4.src, ipv4.dst, tcp.sport, tcp.dport] = 1
    } else {
      if (!(conn[ipv4.dst, ipv4.src, tcp.dport, tcp.sport] > 0)) {
        denied[0] += 1
        drop
      }
    }
    meta.mark = (ipv4.src + 5) * 2
    repeat 3 {
      meta.probe = crc32(meta._loop_i, ipv4.src) % 64
    }
    drpc replicate(0, 1)
    forward(3)
  }
}
|}

let test_parse_sample () =
  match Syntax.load sample with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
    Alcotest.(check string) "name" "fw" p.Ast.prog_name;
    Alcotest.(check string) "owner" "acme" p.Ast.owner;
    check_int "two maps" 2 (List.length p.Ast.maps);
    check_int "two elements" 2 (List.length p.Ast.pipeline);
    check "gre header merged with standard ones" true
      (Ast.find_header p "gre" <> None && Ast.find_header p "ipv4" <> None);
    (match Ast.find_table p "acl" with
     | Some t ->
       check_int "acl key count" 2 (List.length t.Ast.keys);
       Alcotest.(check string) "default" "permit" (fst t.Ast.default_action)
     | None -> Alcotest.fail "acl missing");
    (match Ast.find_map p "conn" with
     | Some m ->
       check_int "conn arity" 4 m.Ast.key_arity;
       check "encoding" true (m.Ast.encoding = Ast.Enc_stateful_table)
     | None -> Alcotest.fail "conn missing")

let test_parsed_program_runs () =
  match Syntax.load sample with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
    let env = Interp.create_env p in
    (* unsolicited inbound from src >= 100: denied *)
    let pkt =
      Netsim.Packet.create
        [ Netsim.Packet.ethernet ~src:200L ~dst:5L ();
          Netsim.Packet.ipv4 ~src:200L ~dst:5L ();
          Netsim.Packet.tcp ~sport:80L ~dport:1234L () ]
    in
    let r = Interp.run env p pkt in
    check "firewall logic live from text" true r.Interp.verdict.Interp.dropped;
    Alcotest.(check int64) "denied counted" 1L
      (State.get (Interp.env_map env "denied") [ 0L ])

let test_parse_errors_positioned () =
  let cases =
    [ ("program x {", "expected"); (* truncated *)
      ("program x { table t { } }", "keys");
      ("program x { block b { meta = 3 } }", "expected");
      ("program x { map m<0> }", "expected");
      ("junk", "expected 'program'") ]
  in
  List.iter
    (fun (src, _hint) ->
      match Syntax.parse_program_result src with
      | Ok _ -> Alcotest.failf "should not parse: %s" src
      | Error e ->
        check "error carries a position" true
          (String.length e > 0
           && String.sub e 0 4 = "line"))
    cases

let test_ill_typed_rejected_by_load () =
  let src = "program x { block b { ghost[1] += 1 } }" in
  match Syntax.load src with
  | Ok _ -> Alcotest.fail "load should typecheck"
  | Error e -> check "mentions the map" true (String.length e > 0)

let test_division_spacing () =
  (* '/' binds into identifiers (namespaced names), so division must be
     spaced; both behaviours are exercised *)
  let ok = "program x { block b { meta.x = meta.y / 2 } }" in
  check "spaced division parses" true (Result.is_ok (Syntax.parse_program_result ok));
  let namespaced =
    "program x owner acme { map acme/m<1, 8, auto> block b { acme/m[0] += 1 } }"
  in
  check "namespaced map names parse" true
    (Result.is_ok (Syntax.parse_program_result namespaced))

let test_roundtrip_builtin_apps () =
  List.iter
    (fun (p : Ast.program) ->
      let printed = Syntax.print p in
      match Syntax.parse_program_result printed with
      | Error e ->
        Alcotest.failf "reparse of %s failed: %s\n%s" p.Ast.prog_name e printed
      | Ok p' ->
        check (p.Ast.prog_name ^ " round-trips") true
          (p.Ast.pipeline = p'.Ast.pipeline && p.Ast.maps = p'.Ast.maps
           && p.Ast.prog_name = p'.Ast.prog_name
           && p.Ast.owner = p'.Ast.owner))
    [ Apps.L2l3.program ();
      Apps.Firewall.program ();
      Apps.Cm_sketch.program ();
      Apps.Heavy_hitter.program ();
      Apps.Syn_defense.program ();
      Apps.Scrubber.program ();
      Apps.Load_balancer.program ();
      Apps.Nat.program ~public:900 ~subnet_lo:10 ~subnet_hi:20 ();
      Apps.Telemetry.program ();
      Apps.Rate_limiter.program ~rate_pps:100 ~burst:8 ();
      Apps.Congestion.program
        ~blocks:
          [ Apps.Congestion.reno_block; Apps.Congestion.dctcp_block;
            Apps.Congestion.timely_block () ]
        () ]

(* property: random programs round-trip *)

let ident_gen =
  QCheck.Gen.(
    map (fun s -> "v" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)))

let expr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun v -> Ast.Const (Int64.of_int v)) (int_bound 1000);
              map (fun f -> Ast.Meta f) ident_gen;
              return (Ast.Field ("ipv4", "src"));
              return (Ast.Field ("tcp", "dport"));
              return Ast.Time ]
        else
          oneof
            [ map3
                (fun op a b -> Ast.Bin (op, a, b))
                (oneofl
                   [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band;
                     Ast.Bor; Ast.Bxor; Ast.Shl; Ast.Shr; Ast.Eq; Ast.Neq;
                     Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Land; Ast.Lor ])
                (self (n / 2)) (self (n / 2));
              map2 (fun op e -> Ast.Un (op, e))
                (oneofl [ Ast.Not; Ast.Neg; Ast.Bnot ])
                (self (n / 2));
              map2
                (fun alg es -> Ast.Hash (alg, es))
                (oneofl [ Ast.Crc16; Ast.Crc32; Ast.Identity ])
                (list_size (int_range 1 3) (self (n / 3))) ]))

let stmt_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Ast.Nop; return Ast.Drop;
              map (fun d -> Ast.Punt d) ident_gen;
              map2 (fun m e -> Ast.Set_meta (m, e)) ident_gen (expr_gen >|= Fun.id);
              map (fun e -> Ast.Forward e) expr_gen;
              map2 (fun s args -> Ast.Call (s, args)) ident_gen
                (list_size (int_bound 2) expr_gen) ]
        in
        if n <= 0 then leaf
        else
          oneof
            [ leaf;
              map3
                (fun c th el -> Ast.If (c, th, el))
                expr_gen
                (list_size (int_bound 3) (self (n / 3)))
                (list_size (int_bound 2) (self (n / 3)));
              map2 (fun k body -> Ast.Loop (1 + k, body)) (int_bound 7)
                (list_size (int_range 1 3) (self (n / 3))) ]))

let program_gen =
  QCheck.Gen.(
    map2
      (fun name blocks ->
        Builder.program ("p" ^ name)
          (List.mapi
             (fun i body -> Builder.block (Printf.sprintf "b%d" i) body)
             blocks))
      (string_size ~gen:(char_range 'a' 'z') (int_range 1 5))
      (list_size (int_range 1 4) (list_size (int_range 1 5) stmt_gen)))

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:200
    (QCheck.make ~print:(fun p -> Syntax.print p) program_gen)
    (fun p ->
      match Syntax.parse_program_result (Syntax.print p) with
      | Error _ -> false
      | Ok p' -> p' = p)

let () =
  Alcotest.run "syntax"
    [ ( "parse",
        [ Alcotest.test_case "sample program" `Quick test_parse_sample;
          Alcotest.test_case "parsed program executes" `Quick
            test_parsed_program_runs;
          Alcotest.test_case "errors positioned" `Quick test_parse_errors_positioned;
          Alcotest.test_case "load typechecks" `Quick test_ill_typed_rejected_by_load;
          Alcotest.test_case "division spacing" `Quick test_division_spacing ] );
      ( "roundtrip",
        [ Alcotest.test_case "built-in apps" `Quick test_roundtrip_builtin_apps;
          QCheck_alcotest.to_alcotest prop_roundtrip ] ) ]
