(** Minimal reliable window-based transport with pluggable congestion
    control.

    The paper's "live infrastructure customization" use case swaps
    congestion-control algorithms at runtime across hosts and NICs.
    Flows are window-limited, receivers echo ECN marks in ACKs, and the
    CC policy is a record of callbacks — the apps layer backs them with
    interpreted FlexBPF blocks, so a CC algorithm really is a reloadable
    network program (see [Apps.Congestion.to_transport_cc]). *)

type cc = {
  cc_name : string;
  init_cwnd : float; (* packets *)
  on_ack : cwnd:float -> ecn:bool -> rtt:float -> float; (* -> new cwnd *)
  on_loss : cwnd:float -> float;
}

(** Additive-increase / multiplicative-decrease baseline; ECN treated
    as a loss signal. The default policy of new endpoints. *)
val reno : cc

type flow = {
  flow_id : int;
  src : Node.t;
  dst_id : int;
  sport : int;
  dport : int;
  total : int; (* packets to deliver *)
  pkt_size : int;
  started : float;
  mutable cwnd : float;
  mutable next_seq : int;
  mutable in_flight : int;
  mutable acked : int;
  mutable retransmits : int;
  mutable done_at : float option;
  mutable send_times : (int, float) Hashtbl.t;
  mutable acked_set : (int, unit) Hashtbl.t;
}

type endpoint

type t

val create : ?rto:float -> Sim.t -> t

(** Flow-completion-time summary across all completed flows. *)
val fct_summary : t -> Stats.Summary.t

val completed : t -> int
val set_on_complete : t -> (flow -> unit) -> unit

val endpoint : t -> int -> endpoint option

(** Swap the CC algorithm on a host endpoint — the runtime
    reprogramming hook. Existing flows pick up the new policy on their
    next ACK. @raise Invalid_argument if the node has no endpoint. *)
val set_cc : t -> int -> cc -> unit

(** Install the transport as the packet handler of a host node;
    non-transport packets go to [fallback]. *)
val attach :
  t -> Node.t -> ?fallback:(Node.t -> in_port:int -> Packet.t -> unit) ->
  unit -> endpoint

(** Start a flow of [packets] data packets toward host id [dst].
    @raise Invalid_argument if [src] is not attached. *)
val start_flow :
  t -> src:int -> dst:int -> ?pkt_size:int -> packets:int -> unit -> flow
