(** Price-driven admission rounds: joint tâtonnement over per-
    architecture price books, density-ranked admission through the
    ordinary tenant pipeline, SLA-aware preemption through the ordinary
    departure pipeline. The auction itself never touches a device — it
    only reads snapshots and calls [Control.Tenants]. *)

type admitted = {
  ad_tenant : Tenant.t;
  ad_at : float;
  ad_price : float;
  mutable ad_bid : Tenant.bid option;
  mutable ad_spend : float;
}

type round = {
  rd_index : int;
  rd_time : float;
  rd_prices : (Targets.Arch.kind * (Prices.rkind * float) list) list;
  rd_iterations : int;
  rd_converged : bool;
  rd_bidders : int;
  rd_admitted : string list;
  rd_deferred : string list;
  rd_preempted : string list;
  rd_rejected : string list;
}

type book = {
  bk_arch : Targets.Arch.kind;
  bk_devices : Targets.Device.t list;
  bk_prices : Prices.t;
}

type t = {
  au_tenants : Control.Tenants.t;
  au_books : book list; (* in order of first appearance on the path *)
  au_max_deferrals : int;
  mutable au_round : int;
  mutable au_waiting : (Tenant.t * int ref) list; (* bidder, deferrals *)
  mutable au_admitted : admitted list;
  mutable au_rounds : round list; (* newest first *)
}

let scope t = Netsim.Sim.obs t.au_tenants.Control.Tenants.sim
let now t = Netsim.Sim.now t.au_tenants.Control.Tenants.sim

let book_snaps book =
  List.map (fun d -> (Targets.Device.id d, Targets.Device.snapshot d))
    book.bk_devices

let book_occupancy book =
  let snaps = book_snaps book in
  (Prices.used_of_snapshots snaps, Prices.capacity_of_snapshots snaps)

let create ?(config = Prices.default_config) ?(max_deferrals = 50) ~tenants
    ~path () =
  let books =
    List.fold_left
      (fun acc d ->
        let kind = Targets.Device.kind d in
        match List.find_opt (fun b -> b.bk_arch = kind) acc with
        | Some b ->
          List.map
            (fun b' ->
              if b' == b then { b with bk_devices = b.bk_devices @ [ d ] }
              else b')
            acc
        | None ->
          acc
          @ [ { bk_arch = kind; bk_devices = [ d ];
                bk_prices = Prices.create ~config () } ])
      [] path
  in
  List.iter
    (fun b ->
      let used, capacity = book_occupancy b in
      Prices.seed_from_occupancy b.bk_prices ~used ~capacity)
    books;
  { au_tenants = tenants; au_books = books; au_max_deferrals = max_deferrals;
    au_round = 0; au_waiting = []; au_admitted = []; au_rounds = [] }

let books t = List.map (fun b -> (b.bk_arch, b.bk_prices)) t.au_books

let occupancy t =
  List.map (fun b -> (b.bk_arch, book_occupancy b)) t.au_books

(* Cheapest book for a footprint at current prices; deterministic tie
   break on path order. *)
let quote_book t footprint =
  match t.au_books with
  | [] -> invalid_arg "Market.Auction: empty path"
  | b0 :: rest ->
    List.fold_left
      (fun (best, best_cost) b ->
        let c = Prices.cost b.bk_prices footprint in
        if c < best_cost then (b, c) else (best, best_cost))
      (b0, Prices.cost b0.bk_prices footprint)
      rest

let quote t footprint = snd (quote_book t footprint)

let admitted t = t.au_admitted
let waiting t = List.map fst t.au_waiting

let find_admitted t name =
  List.find_opt (fun a -> a.ad_tenant.Tenant.mt_name = name) t.au_admitted

let is_known t name =
  find_admitted t name <> None
  || List.exists (fun (mt, _) -> mt.Tenant.mt_name = name) t.au_waiting

let submit t (mt : Tenant.t) =
  if not (is_known t mt.Tenant.mt_name) then
    t.au_waiting <- t.au_waiting @ [ (mt, ref 0) ]

let drop_admitted t name =
  t.au_admitted <-
    List.filter (fun a -> a.ad_tenant.Tenant.mt_name <> name) t.au_admitted

let withdraw t name =
  if find_admitted t name <> None then begin
    ignore (Control.Tenants.depart t.au_tenants name);
    drop_admitted t name
  end
  else
    t.au_waiting <-
      List.filter (fun (mt, _) -> mt.Tenant.mt_name <> name) t.au_waiting

(* -- clearing ----------------------------------------------------------- *)

let mcount t ?(labels = []) name =
  Obs.Metrics.incr (Obs.Scope.metrics (scope t)) ~labels name

(* Joint tâtonnement: every book steps against its own capacity while
   demand (waiting bidders shopping the cheapest book, admitted
   tenants' installed footprints) re-routes at each iteration. Returns
   (iterations, all books converged). *)
let iterate_prices t =
  let budget =
    match t.au_books with
    | [] -> 0
    | b :: _ -> (Prices.config b.bk_prices).Prices.cfg_budget
  in
  let occ = List.map (fun b -> (b, book_occupancy b)) t.au_books in
  let demands () =
    let zero = List.map (fun b -> (b, ref Targets.Resource.zero)) t.au_books in
    List.iter
      (fun (mt, _) ->
        let book, cost = quote_book t mt.Tenant.mt_footprint in
        let q = Tenant.demand mt ~unit_cost:cost in
        if q > 0 then begin
          let cell = List.assq book zero in
          cell :=
            Targets.Resource.add !cell
              (Targets.Resource.scale q mt.Tenant.mt_footprint)
        end)
      t.au_waiting;
    List.map
      (fun (b, (used, _)) ->
        (b, Targets.Resource.add used !(List.assq b zero)))
      occ
  in
  let capacity_of b = snd (List.assq b occ) in
  let rec go n =
    let ds = demands () in
    let settled =
      List.for_all
        (fun (b, demand) ->
          Prices.converged b.bk_prices ~capacity:(capacity_of b) ~demand)
        ds
    in
    if settled then (n, true)
    else if n >= budget then (n, false)
    else begin
      List.iter
        (fun (b, demand) ->
          ignore (Prices.step b.bk_prices ~capacity:(capacity_of b) ~demand))
        ds;
      go (n + 1)
    end
  in
  go 0

let publish_prices t =
  let m = Obs.Scope.metrics (scope t) in
  List.iter
    (fun b ->
      List.iter
        (fun (k, p) ->
          Obs.Metrics.set_gauge m
            ~labels:
              [ ("arch", Targets.Arch.kind_to_string b.bk_arch);
                ("kind", Prices.rkind_to_string k) ]
            "market.price" p)
        (Prices.prices b.bk_prices))
    t.au_books

(* Is this admission error a capacity problem preemption could cure, as
   opposed to a certification/access/duplicate reject? *)
let capacity_reject = function
  | Control.Tenants.Compilation _ -> true
  | Control.Tenants.Already_present | Control.Tenants.Certification _
  | Control.Tenants.Access_control _ ->
    false

(* Eviction candidates for an entrant of density [d]: admitted
   best-effort tenants whose standing bid is strictly less dense
   (priced-out tenants count as density 0), cheapest first. Protected
   tenants are never candidates. *)
let preemption_candidates t ~density =
  let standing a =
    match a.ad_bid with Some b -> b.Tenant.bid_density | None -> 0.
  in
  List.filter
    (fun a ->
      a.ad_tenant.Tenant.mt_sla = Tenant.Best_effort && standing a < density)
    t.au_admitted
  |> List.sort (fun a b ->
         match compare (standing a) (standing b) with
         | 0 -> compare a.ad_tenant.Tenant.mt_name b.ad_tenant.Tenant.mt_name
         | c -> c)

let clear t =
  t.au_round <- t.au_round + 1;
  Obs.Trace.with_span (Obs.Scope.trace (scope t)) "market.clear"
    ~attrs:[ ("round", Obs.Trace.I t.au_round) ]
    (fun span ->
      let bidders = List.length t.au_waiting in
      let iterations, converged = iterate_prices t in
      publish_prices t;
      (* final bids at the settled prices, densest first *)
      let quoted =
        List.map
          (fun (mt, defs) ->
            let cost = quote t mt.Tenant.mt_footprint in
            (mt, defs, cost, Tenant.bid mt ~unit_cost:cost))
          t.au_waiting
      in
      let ranked =
        List.sort
          (fun (a, _, _, ba) (b, _, _, bb) ->
            let d = function
              | Some x -> x.Tenant.bid_density
              | None -> 0.
            in
            match compare (d bb) (d ba) with
            | 0 -> compare a.Tenant.mt_name b.Tenant.mt_name
            | c -> c)
          quoted
      in
      let admitted_now = ref [] in
      let deferred = ref [] in
      let preempted = ref [] in
      let rejected = ref [] in
      let still_waiting = ref [] in
      let defer mt defs =
        incr defs;
        if !defs > t.au_max_deferrals then begin
          rejected := mt.Tenant.mt_name :: !rejected;
          Control.Tenants.record_outcome t.au_tenants
            Control.Tenants.Rejected;
          mcount t "market.rejected"
        end
        else begin
          deferred := mt.Tenant.mt_name :: !deferred;
          still_waiting := (mt, defs) :: !still_waiting;
          Control.Tenants.record_outcome t.au_tenants
            Control.Tenants.Deferred;
          mcount t "market.deferred"
        end
      in
      let evict a =
        let name = a.ad_tenant.Tenant.mt_name in
        match
          Control.Tenants.depart ~reason:`Preempted t.au_tenants name
        with
        | Ok _ ->
          drop_admitted t name;
          preempted := name :: !preempted;
          mcount t "market.preempted";
          true
        | Error _ -> false
      in
      let admit mt cost (bid : Tenant.bid) =
        Control.Tenants.admit_bid t.au_tenants ~bid:bid.Tenant.bid_value
          ~density:bid.Tenant.bid_density ~price:cost mt.Tenant.mt_program
      in
      (* no amount of preemption can place a footprint bigger than every
         book's total capacity — reject instead of evicting for nothing *)
      let book_caps = List.map (fun b -> snd (book_occupancy b)) t.au_books in
      let impossible fp =
        not (List.exists (fun cap -> Targets.Resource.fits fp cap) book_caps)
      in
      List.iter
        (fun (mt, defs, cost, bid) ->
          match bid with
          | None -> defer mt defs (* priced out this round *)
          | Some bid ->
            let rec try_admit () =
              match admit mt cost bid with
              | Ok _ ->
                t.au_admitted <-
                  t.au_admitted
                  @ [ { ad_tenant = mt; ad_at = now t; ad_price = cost;
                        ad_bid = Some bid; ad_spend = 0. } ];
                admitted_now := mt.Tenant.mt_name :: !admitted_now;
                mcount t "market.admitted"
              | Error e when capacity_reject e ->
                if impossible mt.Tenant.mt_footprint then begin
                  rejected := mt.Tenant.mt_name :: !rejected;
                  mcount t "market.rejected"
                end
                else
                  (* out of capacity: evict the cheapest strictly less
                     dense best-effort tenant and retry; defer when no
                     victim remains *)
                  (match
                     preemption_candidates t ~density:bid.Tenant.bid_density
                   with
                   | [] -> defer mt defs
                   | victim :: _ ->
                     if evict victim then try_admit () else defer mt defs)
              | Error _ ->
                (* pipeline reject (certification, access control, ...):
                   final — admit_bid already recorded the outcome *)
                rejected := mt.Tenant.mt_name :: !rejected;
                mcount t "market.rejected"
            in
            try_admit ())
        ranked;
      t.au_waiting <- List.rev !still_waiting;
      (* refresh standing bids and charge this round's rent *)
      List.iter
        (fun a ->
          let cost = quote t a.ad_tenant.Tenant.mt_footprint in
          a.ad_bid <- Tenant.bid a.ad_tenant ~unit_cost:cost;
          a.ad_spend <- a.ad_spend +. cost)
        t.au_admitted;
      mcount t "market.rounds";
      let round =
        { rd_index = t.au_round; rd_time = now t;
          rd_prices =
            List.map (fun b -> (b.bk_arch, Prices.prices b.bk_prices))
              t.au_books;
          rd_iterations = iterations; rd_converged = converged;
          rd_bidders = bidders; rd_admitted = List.rev !admitted_now;
          rd_deferred = List.rev !deferred;
          rd_preempted = List.rev !preempted;
          rd_rejected = List.rev !rejected }
      in
      t.au_rounds <- round :: t.au_rounds;
      Obs.Trace.add_attr span "bidders" (Obs.Trace.I bidders);
      Obs.Trace.add_attr span "admitted"
        (Obs.Trace.I (List.length round.rd_admitted));
      Obs.Trace.add_attr span "preempted"
        (Obs.Trace.I (List.length round.rd_preempted));
      Obs.Trace.add_attr span "converged" (Obs.Trace.B converged);
      round)

let rounds t = List.rev t.au_rounds

let pp_round ppf r =
  Fmt.pf ppf
    "round %d t=%.3f: %d bidders, %d admitted, %d deferred, %d preempted, \
     %d rejected (%d iterations%s)"
    r.rd_index r.rd_time r.rd_bidders
    (List.length r.rd_admitted)
    (List.length r.rd_deferred)
    (List.length r.rd_preempted)
    (List.length r.rd_rejected)
    r.rd_iterations
    (if r.rd_converged then "" else ", no convergence")
