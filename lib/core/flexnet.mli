(** FlexNet: the public facade.

    Brings up a whole-stack runtime programmable network (the paper's
    Figure 1): host stacks, SmartNICs and switches wired into a packet
    simulator; the infrastructure program deployed over the fungible
    datapath by the compiler; a central controller piloting apps,
    tenants, and reconfigurations.

    {[
      let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:3 () in
      let _ = Flexnet.deploy_infrastructure net in
      (* send traffic, then reprogram at runtime: *)
      let _ = Flexnet.add_tenant net my_extension_program in
      Flexnet.run net ~until:1.0
    ]} *)

type t = {
  sim : Netsim.Sim.t;
  topo : Netsim.Topology.t;
  h0 : Netsim.Node.t;
  h1 : Netsim.Node.t;
  switch_nodes : Netsim.Node.t list;
  nic_nodes : Netsim.Node.t list;
  wireds : Runtime.Wiring.wired list;
  path : Targets.Device.t list; (* whole-stack compile path *)
  controller : Control.Controller.t;
  drpc : Runtime.Drpc.t;
  mutable deployment : Compiler.Incremental.deployment option;
  mutable tenants : Control.Tenants.t option;
}

val sim : t -> Netsim.Sim.t
val topo : t -> Netsim.Topology.t
val controller : t -> Control.Controller.t

(** The whole-stack compile path: host stack, NIC, switches, NIC, host
    stack. *)
val path : t -> Targets.Device.t list

val wireds : t -> Runtime.Wiring.wired list
val device : t -> string -> Targets.Device.t option
val switch_devices : t -> Targets.Device.t list
val wired_of : t -> Targets.Device.t -> Runtime.Wiring.wired option

(** Build the whole-stack network
    [h0 — nic0 — s0 … s(n-1) — nic1 — h1] with a programmable device of
    [arch] on every switch, SmartNICs on the NIC nodes, and host-eBPF
    devices for the two host stacks. *)
val create :
  ?arch:Targets.Arch.kind -> ?switches:int -> ?link_bandwidth:float ->
  ?link_delay:float -> ?queue_capacity:int -> ?ecn_threshold:int -> unit -> t

val h0 : t -> Netsim.Node.t
val h1 : t -> Netsim.Node.t
val drpc : t -> Runtime.Drpc.t

(** The network's observability scope (the simulation's): unified
    metrics registry and span tracer for everything running in it. *)
val obs : t -> Obs.Scope.t

(** Deploy the L2/L3 infrastructure program over the fungible datapath
    and populate routes on the devices hosting the tables. Must be
    called before tenant/patch operations. *)
val deploy_infrastructure :
  ?program:Flexbpf.Ast.program -> t ->
  (Compiler.Incremental.deployment, string) result

(** @raise Invalid_argument before [deploy_infrastructure]. *)
val deployment_exn : t -> Compiler.Incremental.deployment

(** @raise Invalid_argument before [deploy_infrastructure]. *)
val tenants_exn : t -> Control.Tenants.t

(** Admit a tenant extension program (live injection). *)
val add_tenant :
  t -> Flexbpf.Ast.program ->
  (Control.Tenants.tenant * Compiler.Incremental.report,
   Control.Tenants.admission_error)
  result

(** Tenant departure (live removal + resource release). *)
val remove_tenant :
  t -> string ->
  (Compiler.Incremental.report, Control.Tenants.departure_error) result

(** Deploy a network-wide policy over the switch datapath: switch
    device [s]{e i} receives the slice for [sw = i], and every slice
    lands under one two-version window — traffic observes the
    pre-policy network or the complete policy, never a mix. *)
val deploy_policy :
  ?owner:string -> name:string -> t -> Policy.Ast.pol ->
  (Policy.Deploy.deployment, Policy.Deploy.error) result

(** Remove a deployed policy from its devices (one window). *)
val remove_policy : t -> Policy.Deploy.deployment -> (unit, string) result

(** Apply a runtime patch through the incremental compiler
    (immediately, without the freeze/thaw timing model). *)
val patch_infrastructure :
  t -> Flexbpf.Patch.t ->
  (Compiler.Incremental.report * Flexbpf.Patch.diff,
   Compiler.Incremental.error)
  result

(** Apply a patch hitlessly over simulated time: every device is frozen
    (keeps serving the old program), the incremental compiler mutates
    the deployment, and each touched device flips atomically when its
    modeled op batch completes. *)
val patch_hitless :
  ?on_done:(Compiler.Incremental.report -> unit) -> t -> Flexbpf.Patch.t ->
  (Compiler.Incremental.report * Flexbpf.Patch.diff,
   Compiler.Incremental.error)
  result

(** Inject a packet at h0 (out of its uplink port). *)
val send_h0 : t -> Netsim.Packet.t -> unit

(** Run the simulation until [until] seconds of virtual time. *)
val run : t -> until:float -> unit

type stats = {
  delivered_h1 : int;
  delivered_h0 : int;
  device_drops : int;
  reconfig_drops : int;
}

val stats : t -> stats
