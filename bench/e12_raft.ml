(* E12 — Distributed controller availability under node failures (§3.4).

   "For large networks, logically centralized controllers are realized
   in physically distributed nodes, which brings classic distributed
   systems concerns on consensus and availability."

   A 5-node Raft controller journals reconfiguration commands at a
   steady rate; the leader is killed mid-run. Reported: commands
   acknowledged, commands surviving on the new leader (must be all),
   re-election time, and proposals refused while leaderless. *)

let run_cluster ~kill_leader =
  let sim = Netsim.Sim.create () in
  let raft = Control.Raft.create ~seed:5 ~sim ~n:5 () in
  let acked = ref 0 and refused = ref 0 in
  let kill_time = ref nan and recovered_time = ref nan in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:10. ~start:1.0 ~stop:9.0 ~send:(fun () ->
      let cmd = Printf.sprintf "reconfig-%d" !acked in
      if Control.Raft.propose raft cmd then incr acked else incr refused);
  if kill_leader then
    Netsim.Sim.at sim 5.0 (fun () ->
        match Control.Raft.leader raft with
        | Some l ->
          kill_time := 5.0;
          Control.Raft.kill raft l.Control.Raft.id;
          (* poll for the new leader to measure the availability gap *)
          Netsim.Sim.every sim ~period:0.01 (fun () ->
              match Control.Raft.leader raft with
              | Some _ when Float.is_nan !recovered_time ->
                recovered_time := Netsim.Sim.now sim;
                false
              | Some _ -> false
              | None -> true)
        | None -> ());
  ignore (Netsim.Sim.run ~until:10.0 sim);
  let survivors =
    match Control.Raft.leader raft with
    | Some l ->
      List.length
        (List.filter
           (fun c -> String.length c >= 8 && String.sub c 0 8 = "reconfig")
           (Control.Raft.committed_commands l))
    | None -> 0
  in
  let gap =
    if Float.is_nan !recovered_time then 0.
    else !recovered_time -. !kill_time
  in
  (!acked, !refused, survivors, gap)

let run () =
  let a0, r0, s0, _ = run_cluster ~kill_leader:false in
  let a1, r1, s1, gap = run_cluster ~kill_leader:true in
  Report.print ~id:"E12" ~title:"distributed controller under leader failure"
    ~claim:
      "the replicated controller keeps accepting management commands across a \
       leader failure: acknowledged commands all survive on the new leader, \
       with only a sub-second re-election gap"
    ~header:
      [ "scenario"; "acked"; "refused"; "on-new-leader"; "reelection(ms)" ]
    [ [ "no failure"; Report.i a0; Report.i r0; Report.i s0; "-" ];
      [ "leader killed @5s"; Report.i a1; Report.i r1; Report.i s1;
        Report.ms gap ] ]
