(* E15 — Observability: hot-path overhead and trace-derived timing.

   Part 1: per-packet cost of metrics instrumentation on the compiled
   fast path — [Targets.Device.exec] with and without an obs scope
   attached. The per-generation counter handle is resolved once and
   cached, so the instrumented path should stay within a few percent
   (and well within the micro --check tolerance, which gates the
   compiled path itself).

   Part 2: E1's sub-second hitless-reconfiguration claim re-derived
   purely from the span trace: run the same scenario and read
   [reconfig.execute] span durations out of the tracer instead of the
   harness's own stopwatch. The full trace is dumped as JSONL for the
   CI artifact. *)

open Flexbpf.Builder

let trace_file = "BENCH_e15_trace.jsonl"

(* -- part 1: hot-path overhead ------------------------------------------ *)

let mk_device () =
  let dev = Targets.Device.create ~id:"d0" Targets.Arch.drmt in
  let prog = Apps.L2l3.program () in
  List.iteri
    (fun i el -> ignore (Targets.Device.install dev ~ctx:prog ~order:i el))
    prog.Flexbpf.Ast.pipeline;
  Flexbpf.Interp.install_rule (Targets.Device.env dev) "ipv4_lpm"
    (Apps.L2l3.route_rule ~host_id:2 ~port:1);
  dev

let mk_packet () =
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
      Netsim.Packet.ipv4 ~src:1L ~dst:2L ();
      Netsim.Packet.tcp ~sport:100L ~dport:200L () ]

let time_exec dev ~iters =
  let pkt = mk_packet () in
  (* warmup compiles the program and resolves the cached obs handle *)
  for _ = 1 to 10_000 do
    ignore (Targets.Device.exec dev ~now_us:0L pkt)
  done;
  let t0 = Sys.time () in
  for _ = 1 to iters do
    ignore (Targets.Device.exec dev ~now_us:0L pkt)
  done;
  ((Sys.time () -. t0) /. float_of_int iters) *. 1e9

let overhead_rows () =
  let iters = 1_000_000 in
  let bare = mk_device () in
  let instrumented = mk_device () in
  Targets.Device.set_obs instrumented (Some (Obs.Scope.create ()));
  let ns_bare = time_exec bare ~iters in
  let ns_instr = time_exec instrumented ~iters in
  let overhead = (ns_instr -. ns_bare) /. ns_bare in
  [ [ "compiled exec, no obs"; Report.f1 ns_bare; "-" ];
    [ "compiled exec, obs scope"; Report.f1 ns_instr; Report.pct overhead ] ]

(* -- part 2: reconfig durations from the trace -------------------------- *)

let traced_reconfig mode =
  let sim, _topo, h0, h1, _devs, wireds, received = Common.wired_linear () in
  let sent = ref 0 in
  let gen = Netsim.Traffic.create sim in
  Netsim.Traffic.cbr gen ~rate_pps:10_000. ~start:0. ~stop:2.0 ~send:(fun () ->
      incr sent;
      Netsim.Node.send h0 ~port:0
        (Common.h0_h1_packet ~h0:h0.Netsim.Node.id ~h1:h1.Netsim.Node.id
           ~born:(Netsim.Sim.now sim)));
  let counter = block "cnt" [ map_incr "hits" [ const 0 ] ] in
  let prog =
    program "p" ~maps:[ map_decl ~key_arity:1 ~size:4 "hits" ] [ counter ]
  in
  let plan =
    Compiler.Plan.v "add"
      [ Compiler.Plan.Install
          { device = "s1"; element = counter; ctx = prog; order = 0 } ]
  in
  Netsim.Sim.at sim 1.0 (fun () ->
      Runtime.Reconfig.execute_plan ~sim ~mode ~wireds ~plan ());
  ignore (Netsim.Sim.run sim);
  (Obs.Scope.trace (Netsim.Sim.obs sim), !sent, !received)

let attr span key =
  match List.assoc_opt key span.Obs.Trace.attrs with
  | Some (Obs.Trace.S s) -> s
  | Some (Obs.Trace.I i) -> string_of_int i
  | Some (Obs.Trace.F f) -> Printf.sprintf "%g" f
  | Some (Obs.Trace.B b) -> string_of_bool b
  | None -> "-"

let reconfig_rows () =
  let hitless_rows =
    List.concat_map
      (fun mode ->
        let tr, sent, received = traced_reconfig mode in
        (match mode with
         | Runtime.Reconfig.Hitless ->
           Out_channel.with_open_text trace_file (fun oc ->
               Out_channel.output_string oc (Obs.Export.trace_jsonl tr))
         | Runtime.Reconfig.Drain -> ());
        List.map
          (fun span ->
            let d = Obs.Trace.duration span in
            [ attr span "mode"; attr span "plan"; attr span "attempts";
              Report.f3 d;
              (if d < 1.0 then "yes" else "NO");
              Report.i (sent - received) ])
          (Obs.Trace.by_name tr "reconfig.execute"))
      [ Runtime.Reconfig.Hitless; Runtime.Reconfig.Drain ]
  in
  hitless_rows

let run () =
  Report.print ~id:"E15" ~title:"observability: hot-path instrumentation cost"
    ~claim:
      "registry counter handles keep per-packet instrumentation overhead \
       within a few percent of the uninstrumented compiled path"
    ~header:[ "path"; "ns/op"; "overhead" ]
    (overhead_rows ());
  Report.print ~id:"E15"
    ~title:"observability: reconfig durations re-derived from the span trace"
    ~claim:
      "the trace alone re-verifies E1: hitless runtime reconfiguration \
       completes sub-second (drain-and-reflash does not)"
    ~header:[ "mode"; "plan"; "attempts"; "duration(s)"; "sub-second"; "lost" ]
    (reconfig_rows ());
  Printf.printf "trace written to %s\n" trace_file
