(** Flow-hash load balancer (HULA-lite): a range table over the flow
    hash picks among next-hop ports; the controller rewrites the ranges
    to shift load — a runtime-reconfigurable alternative to static
    ECMP. *)

open Flexbpf
open Flexbpf.Builder

let flow_hash_expr =
  Ast.Bin
    (Ast.Mod,
     hash ~alg:Crc32
       [ field "ipv4" "src"; field "ipv4" "dst"; field "ipv4" "proto" ],
     const 1000)

(** The table matches on meta.lb_bucket, computed by a small block so
    that the hash is evaluated once. *)
let bucket_block =
  block "lb_bucket" [ set_meta "lb_bucket" flow_hash_expr ]

let lb_table =
  table "lb_select"
    ~keys:[ range (meta "lb_bucket") ]
    ~actions:
      [ action "to_port" ~params:[ "port" ] [ forward (param "port") ];
        action "no_lb" [ Ast.Nop ] ]
    ~default:("no_lb", []) ~size:64 ()

let elements = [ bucket_block; lb_table ]

let program ?(owner = "infra") () = program ~owner "load_balancer" elements

(** Weighted bucket split: [weights] is (port, weight) — ranges over
    [0, 1000) proportional to weight. *)
let weight_rules weights =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if total <= 0 then []
  else begin
    let scale w = w * 1000 / total in
    let _, rules =
      List.fold_left
        (fun (start, acc) (port, w) ->
          let stop = start + scale w in
          let r =
            rule ~priority:1
              ~matches:[ range_i start (stop - 1) ]
              ~action:("to_port", [ port ])
              ()
          in
          (stop, r :: acc))
        (0, []) weights
    in
    List.rev rules
  end
