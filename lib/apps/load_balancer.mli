(** Flow-hash load balancer (HULA-lite): a range table over the flow
    hash (buckets 0..999) picks among next-hop ports; the controller
    rewrites ranges to shift load — runtime-reconfigurable traffic
    engineering. *)

(** Flow hash modulo 1000 (the bucket space). *)
val flow_hash_expr : Flexbpf.Ast.expr

(** Computes meta.lb_bucket once per packet. *)
val bucket_block : Flexbpf.Ast.element

(** Range-matches meta.lb_bucket; action to_port(port). *)
val lb_table : Flexbpf.Ast.element

val elements : Flexbpf.Ast.element list
val program : ?owner:string -> unit -> Flexbpf.Ast.program

(** Disjoint bucket ranges proportional to (port, weight); covers
    [0, 1000) when total weight > 0. *)
val weight_rules : (int * int) list -> Flexbpf.Ast.rule list
