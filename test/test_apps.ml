(* Tests for the FlexBPF application library. *)

open Flexbpf

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let tcp_pkt ?(flags = 0L) ~src ~dst ?(sport = 100L) ?(dport = 200L) () =
  Netsim.Packet.create
    [ Netsim.Packet.ethernet ~src ~dst ();
      Netsim.Packet.ipv4 ~src ~dst ();
      Netsim.Packet.tcp ~sport ~dport ~flags () ]

let env_of prog = Interp.create_env prog

(* -- L2/L3 ------------------------------------------------------------------ *)

let test_l2l3_certifies () =
  check "infrastructure program certifies" true
    (Result.is_ok (Analysis.certify (Apps.L2l3.program ())))

let test_l2l3_routing_and_ttl () =
  let prog = Apps.L2l3.program () in
  let env = env_of prog in
  Interp.install_rule env "ipv4_lpm" (Apps.L2l3.route_rule ~host_id:2 ~port:3);
  let pkt = tcp_pkt ~src:1L ~dst:2L () in
  let r = Interp.run env prog pkt in
  Alcotest.(check (option int)) "routed" (Some 3)
    r.Interp.verdict.Interp.egress;
  check_i64 "ttl decremented" 63L (Netsim.Packet.field_exn pkt "ipv4" "ttl")

let test_l2l3_unroutable_drops () =
  let prog = Apps.L2l3.program () in
  let env = env_of prog in
  let r = Interp.run env prog (tcp_pkt ~src:1L ~dst:9L ()) in
  check "no route -> drop" true r.Interp.verdict.Interp.dropped

let test_l2l3_acl_deny () =
  let prog = Apps.L2l3.program () in
  let env = env_of prog in
  Interp.install_rule env "ipv4_lpm" (Apps.L2l3.route_rule ~host_id:2 ~port:3);
  Interp.install_rule env "acl" (Apps.L2l3.acl_deny_rule ~src:1 ~dst:2);
  let r = Interp.run env prog (tcp_pkt ~src:1L ~dst:2L ()) in
  check "acl denies" true r.Interp.verdict.Interp.dropped;
  let r2 = Interp.run env prog (tcp_pkt ~src:5L ~dst:2L ()) in
  check "others pass" false r2.Interp.verdict.Interp.dropped

let test_l2l3_ttl_guard () =
  let prog = Apps.L2l3.program () in
  let env = env_of prog in
  Interp.install_rule env "ipv4_lpm" (Apps.L2l3.route_rule ~host_id:2 ~port:3);
  let pkt = tcp_pkt ~src:1L ~dst:2L () in
  Netsim.Packet.set_field pkt "ipv4" "ttl" 0L;
  let r = Interp.run env prog pkt in
  check "expired ttl dropped" true r.Interp.verdict.Interp.dropped

(* -- Firewall ------------------------------------------------------------------ *)

let test_firewall_statefulness () =
  let prog = Apps.Firewall.program ~owner:"t" ~boundary:100 () in
  (* run unnamespaced for direct state access *)
  let env = env_of prog in
  (* inbound before any outbound: denied *)
  let inbound = tcp_pkt ~src:200L ~dst:5L ~sport:80L ~dport:1234L () in
  let r1 = Interp.run env prog inbound in
  check "unsolicited inbound denied" true r1.Interp.verdict.Interp.dropped;
  (* outbound opens state *)
  let outbound = tcp_pkt ~src:5L ~dst:200L ~sport:1234L ~dport:80L () in
  let r2 = Interp.run env prog outbound in
  check "outbound passes" false r2.Interp.verdict.Interp.dropped;
  (* matching inbound now allowed *)
  let reply = tcp_pkt ~src:200L ~dst:5L ~sport:80L ~dport:1234L () in
  let r3 = Interp.run env prog reply in
  check "reply admitted" false r3.Interp.verdict.Interp.dropped;
  (* non-matching inbound still denied *)
  let other = tcp_pkt ~src:200L ~dst:5L ~sport:81L ~dport:1234L () in
  let r4 = Interp.run env prog other in
  check "other inbound still denied" true r4.Interp.verdict.Interp.dropped;
  check_i64 "denials counted" 2L (State.get (Interp.env_map env "fw_denied") [ 0L ])

(* -- Count-min sketch ------------------------------------------------------------ *)

let test_sketch_overestimates_never_under () =
  let cfg = { Apps.Cm_sketch.depth = 3; width = 256; map_name = "cms" } in
  let prog = Apps.Cm_sketch.program ~cfg () in
  let env = env_of prog in
  let exact = Apps.Cm_sketch.Exact.create () in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 2000 do
    let src = Int64.of_int (Random.State.int rng 40) in
    let dst = Int64.of_int (Random.State.int rng 10) in
    ignore (Interp.run env prog (tcp_pkt ~src ~dst ()));
    Apps.Cm_sketch.Exact.add exact ~src ~dst ~proto:6L
  done;
  let st = Interp.env_map env "cms" in
  let ok = ref true in
  let total_err = ref 0 in
  for s = 0 to 39 do
    for d = 0 to 9 do
      let src = Int64.of_int s and dst = Int64.of_int d in
      let est =
        Int64.to_int (Apps.Cm_sketch.estimate cfg st ~src ~dst ~proto:6L)
      in
      let truth = Apps.Cm_sketch.Exact.count exact ~src ~dst ~proto:6L in
      if est < truth then ok := false;
      total_err := !total_err + (est - truth)
    done
  done;
  check "count-min never underestimates" true !ok;
  (* average overestimate should be small relative to traffic *)
  check "error bounded" true (!total_err < 2000)

let test_sketch_estimate_counts_exactly_when_sparse () =
  let cfg = { Apps.Cm_sketch.depth = 2; width = 512; map_name = "cms" } in
  let prog = Apps.Cm_sketch.program ~cfg () in
  let env = env_of prog in
  for _ = 1 to 17 do
    ignore (Interp.run env prog (tcp_pkt ~src:3L ~dst:4L ()))
  done;
  check_i64 "exact when no collisions" 17L
    (Apps.Cm_sketch.estimate cfg (Interp.env_map env "cms") ~src:3L ~dst:4L
       ~proto:6L)

(* -- Heavy hitter ------------------------------------------------------------------ *)

let test_heavy_hitter_punts () =
  let cfg = { Apps.Cm_sketch.depth = 2; width = 128; map_name = "cms" } in
  let prog = Apps.Heavy_hitter.program ~cfg ~threshold:100 ~report_every:64 () in
  let env = env_of prog in
  let punts = ref 0 in
  env.Interp.punt <- (fun d _ -> if d = Apps.Heavy_hitter.digest_name then incr punts);
  (* light flow: no reports *)
  for _ = 1 to 50 do
    ignore (Interp.run env prog (tcp_pkt ~src:1L ~dst:2L ()))
  done;
  check_int "no report below threshold" 0 !punts;
  (* heavy flow crosses threshold *)
  for _ = 1 to 1000 do
    ignore (Interp.run env prog (tcp_pkt ~src:7L ~dst:2L ()))
  done;
  check "heavy flow reported" true (!punts > 0);
  check "reporting rate bounded" true (!punts <= 1000 / 64 + 1)

(* -- SYN defense ------------------------------------------------------------------- *)

let syn ~src ~dst = tcp_pkt ~flags:Netsim.Packet.tcp_flag_syn ~src ~dst ()
let ack ~src ~dst = tcp_pkt ~flags:Netsim.Packet.tcp_flag_ack ~src ~dst ()

let test_syn_defense_engages () =
  let prog = Apps.Syn_defense.program ~threshold:50 () in
  let env = env_of prog in
  env.Interp.now_us <- 1000L;
  let dropped = ref 0 and alarms = ref 0 in
  env.Interp.punt <-
    (fun d _ -> if d = Apps.Syn_defense.alarm_digest then incr alarms);
  (* an established legitimate client *)
  ignore (Interp.run env prog (ack ~src:5L ~dst:9L));
  (* attack: 500 spoofed syns to dst 9 within one window *)
  for i = 1 to 500 do
    let r =
      Interp.run env prog (syn ~src:(Int64.of_int (1000 + i)) ~dst:9L)
    in
    if r.Interp.verdict.Interp.dropped then incr dropped
  done;
  check "mitigation engaged" true (!dropped > 400);
  check "first syns below threshold passed" true (!dropped < 500);
  check "alarms raised" true (!alarms > 0);
  (* established client's syn still passes (e.g. reconnect) *)
  let r = Interp.run env prog (syn ~src:5L ~dst:9L) in
  check "established client exempt" false r.Interp.verdict.Interp.dropped

let test_syn_defense_window_resets () =
  let prog = Apps.Syn_defense.program ~threshold:50 () in
  let env = env_of prog in
  env.Interp.now_us <- 0L;
  for i = 1 to 100 do
    ignore (Interp.run env prog (syn ~src:(Int64.of_int i) ~dst:9L))
  done;
  check "window 0 over threshold" true
    (State.get (Interp.env_map env "syn_rate") [ 9L; 0L ] > 50L);
  (* advance past the 100ms window: counters keyed by new window *)
  env.Interp.now_us <- 200_000L;
  let r = Interp.run env prog (syn ~src:4242L ~dst:9L) in
  check "new window starts clean" false r.Interp.verdict.Interp.dropped

(* -- Scrubber -------------------------------------------------------------------------- *)

let test_scrubber_blocklist () =
  let prog = Apps.Scrubber.program () in
  let env = env_of prog in
  Interp.install_rule env "scrub_blocklist" (Apps.Scrubber.block_rule ~src:666);
  let r = Interp.run env prog (tcp_pkt ~src:666L ~dst:1L ()) in
  check "blocked source dropped" true r.Interp.verdict.Interp.dropped;
  let r2 = Interp.run env prog (tcp_pkt ~src:7L ~dst:1L ()) in
  check "clean source passes" false r2.Interp.verdict.Interp.dropped;
  check_i64 "scrub counter" 1L (State.get (Interp.env_map env "scrubbed") [ 0L ])

(* -- Load balancer ----------------------------------------------------------------------- *)

let test_lb_weights () =
  let prog = Apps.Load_balancer.program () in
  let env = env_of prog in
  List.iter
    (Interp.install_rule env "lb_select")
    (Apps.Load_balancer.weight_rules [ (1, 3); (2, 1) ]);
  let counts = Hashtbl.create 4 in
  for i = 0 to 999 do
    let pkt = tcp_pkt ~src:(Int64.of_int i) ~dst:(Int64.of_int (i * 7)) () in
    let r = Interp.run env prog pkt in
    match r.Interp.verdict.Interp.egress with
    | Some p ->
      Hashtbl.replace counts p (1 + Option.value (Hashtbl.find_opt counts p) ~default:0)
    | None -> ()
  done;
  let c1 = Option.value (Hashtbl.find_opt counts 1) ~default:0 in
  let c2 = Option.value (Hashtbl.find_opt counts 2) ~default:0 in
  check "port1 gets ~3x port2" true (c1 > 2 * c2 && c2 > 0);
  check_int "all packets balanced" 1000 (c1 + c2)

let test_lb_weight_rules_cover_range () =
  let rules = Apps.Load_balancer.weight_rules [ (1, 1); (2, 1); (3, 2) ] in
  check_int "one rule per port" 3 (List.length rules);
  (* ranges must be disjoint and cover [0, 1000) *)
  let ranges =
    List.map
      (fun r ->
        match r.Ast.matches with
        | [ Ast.P_range (a, b) ] -> (Int64.to_int a, Int64.to_int b)
        | _ -> Alcotest.fail "expected range")
      rules
    |> List.sort compare
  in
  let rec contiguous lo = function
    | [] -> lo = 1000
    | (a, b) :: rest -> a = lo && contiguous (b + 1) rest
  in
  check "contiguous cover" true (contiguous 0 ranges)

(* -- NAT -------------------------------------------------------------------------------------- *)

let test_nat_rewrite_roundtrip () =
  let prog =
    Apps.Nat.program ~owner:"t" ~public:500 ~subnet_lo:10 ~subnet_hi:20 ()
  in
  let env = env_of prog in
  (* outbound: private 15 -> 99 *)
  let out = tcp_pkt ~src:15L ~dst:99L ~sport:1234L ~dport:80L () in
  ignore (Interp.run env prog out);
  check_i64 "source rewritten to public" 500L
    (Netsim.Packet.field_exn out "ipv4" "src");
  (* inbound reply: 99 -> public, restored to private *)
  let back = tcp_pkt ~src:99L ~dst:500L ~sport:80L ~dport:1234L () in
  ignore (Interp.run env prog back);
  check_i64 "destination restored" 15L (Netsim.Packet.field_exn back "ipv4" "dst")

let test_nat_leaves_others () =
  let prog =
    Apps.Nat.program ~owner:"t" ~public:500 ~subnet_lo:10 ~subnet_hi:20 ()
  in
  let env = env_of prog in
  let pkt = tcp_pkt ~src:50L ~dst:99L () in
  ignore (Interp.run env prog pkt);
  check_i64 "outside subnet untouched" 50L (Netsim.Packet.field_exn pkt "ipv4" "src")

(* -- Rate limiter -------------------------------------------------------------------------------- *)

let test_rate_limiter_polices () =
  let prog = Apps.Rate_limiter.program ~rate_pps:100 ~burst:10 () in
  let env = env_of prog in
  (* burst of 50 packets at the same instant: 10 pass (bucket), 40 drop *)
  env.Interp.now_us <- 1_000_000L;
  let passed = ref 0 in
  for _ = 1 to 50 do
    let r = Interp.run env prog (tcp_pkt ~src:7L ~dst:1L ()) in
    if not r.Interp.verdict.Interp.dropped then incr passed
  done;
  check_int "burst capped at bucket depth" 10 !passed;
  check_i64 "policed counted" 40L
    (State.get (Interp.env_map env "tb_policed") [ 0L ]);
  (* after one second at 100 pps, ~100 more tokens accumulated *)
  env.Interp.now_us <- 2_000_000L;
  let passed2 = ref 0 in
  for _ = 1 to 200 do
    let r = Interp.run env prog (tcp_pkt ~src:7L ~dst:1L ()) in
    if not r.Interp.verdict.Interp.dropped then incr passed2
  done;
  check "refill admits roughly rate x elapsed" true
    (!passed2 >= 9 && !passed2 <= 11);
  (* an unrelated source has its own bucket *)
  let r = Interp.run env prog (tcp_pkt ~src:8L ~dst:1L ()) in
  check "per-source isolation" false r.Interp.verdict.Interp.dropped

let test_rate_limiter_sustained_rate () =
  let prog = Apps.Rate_limiter.program ~rate_pps:1000 ~burst:5 () in
  let env = env_of prog in
  (* 1 kpps offered for 1 simulated second at 10 kpps: passes ~1000+burst *)
  let passed = ref 0 in
  for i = 0 to 9_999 do
    env.Interp.now_us <- Int64.of_int (i * 100) (* 10 kpps *);
    let r = Interp.run env prog (tcp_pkt ~src:3L ~dst:1L ()) in
    if not r.Interp.verdict.Interp.dropped then incr passed
  done;
  check "sustained rate enforced" true (!passed >= 950 && !passed <= 1100)

(* -- Telemetry ----------------------------------------------------------------------------------- *)

let test_telemetry_counts_and_stamps () =
  let prog = Apps.Telemetry.program () in
  let env = env_of prog in
  env.Interp.now_us <- 777L;
  let pkt = tcp_pkt ~src:1L ~dst:2L () in
  ignore (Interp.run env prog pkt);
  ignore (Interp.run env prog pkt);
  check_i64 "hop count accumulated" 2L (Netsim.Packet.meta_default pkt "hops" 0L);
  check_i64 "timestamp stamped" 777L
    (Netsim.Packet.meta_default pkt "last_hop_us" 0L);
  check_i64 "flow counted" 2L
    (State.get (Interp.env_map env "flow_bytes") [ 1L; 2L ])

(* -- Congestion control (interpreted FlexBPF) ----------------------------------------------------- *)

let test_cc_blocks_certify () =
  let prog =
    Apps.Congestion.program
      ~blocks:
        [ Apps.Congestion.reno_block; Apps.Congestion.dctcp_block;
          Apps.Congestion.timely_block () ]
      ()
  in
  check "cc suite certifies" true (Result.is_ok (Analysis.certify prog))

let test_reno_semantics () =
  let cc = Apps.Congestion.to_transport_cc Apps.Congestion.reno_block in
  (* growth without ECN *)
  let grown = cc.Netsim.Transport.on_ack ~cwnd:10. ~ecn:false ~rtt:0.001 in
  check "additive increase" true (grown > 10.);
  (* halving on ECN *)
  let cut = cc.Netsim.Transport.on_ack ~cwnd:10. ~ecn:true ~rtt:0.001 in
  Alcotest.(check (float 0.01)) "multiplicative decrease" 5. cut;
  (* floor at one packet *)
  let floored = cc.Netsim.Transport.on_ack ~cwnd:1.2 ~ecn:true ~rtt:0.001 in
  check "window floor" true (floored >= 1.)

let test_dctcp_proportional () =
  let cc = Apps.Congestion.to_transport_cc Apps.Congestion.dctcp_block in
  (* sustained ECN drives alpha up: cuts grow deeper over time *)
  let first_cut = 100. -. cc.Netsim.Transport.on_ack ~cwnd:100. ~ecn:true ~rtt:0.001 in
  let w = ref 100. in
  for _ = 1 to 30 do
    w := cc.Netsim.Transport.on_ack ~cwnd:100. ~ecn:true ~rtt:0.001
  done;
  let later_cut = 100. -. !w in
  check "cut deepens as alpha rises" true (later_cut > first_cut);
  (* a single mark after a calm period cuts much less than reno's half *)
  let calm = Apps.Congestion.to_transport_cc Apps.Congestion.dctcp_block in
  for _ = 1 to 50 do
    ignore (calm.Netsim.Transport.on_ack ~cwnd:100. ~ecn:false ~rtt:0.001)
  done;
  let gentle = calm.Netsim.Transport.on_ack ~cwnd:100. ~ecn:true ~rtt:0.001 in
  check "gentle cut when alpha small" true (gentle > 75.)

let test_timely_rtt_gradient () =
  let cc =
    Apps.Congestion.to_transport_cc (Apps.Congestion.timely_block ~t_low_us:50 ~t_high_us:500 ())
  in
  let up = cc.Netsim.Transport.on_ack ~cwnd:10. ~ecn:false ~rtt:20e-6 in
  check "low rtt grows" true (up > 10.);
  let down = cc.Netsim.Transport.on_ack ~cwnd:10. ~ecn:false ~rtt:1e-3 in
  check "high rtt shrinks" true (down < 10.);
  let hold = cc.Netsim.Transport.on_ack ~cwnd:10. ~ecn:false ~rtt:100e-6 in
  Alcotest.(check (float 0.001)) "band holds" 10. hold

let test_cc_live_swap_end_to_end () =
  (* hot-swapping the CC program on a congested path changes behavior:
     reno suffers ECN cuts, a deliberately ECN-blind block does not *)
  let run cc_block =
    let sim = Netsim.Sim.create () in
    let built =
      Netsim.Topology.linear ~sim ~switches:2 ~link_bandwidth:5e7
        ~queue_capacity:32 ~ecn_threshold:4 ()
    in
    let topo = built.Netsim.Topology.topo in
    List.iter
      (fun sw ->
        Netsim.Node.set_handler sw (Netsim.Topology.forwarding_handler topo))
      built.Netsim.Topology.switch_list;
    let h0 = List.nth built.Netsim.Topology.host_list 0 in
    let h1 = List.nth built.Netsim.Topology.host_list 1 in
    let stack = Netsim.Transport.create sim in
    ignore (Netsim.Transport.attach stack h0 ());
    ignore (Netsim.Transport.attach stack h1 ());
    Netsim.Transport.set_cc stack h0.Netsim.Node.id
      (Apps.Congestion.to_transport_cc cc_block);
    let flow =
      Netsim.Transport.start_flow stack ~src:h0.Netsim.Node.id
        ~dst:h1.Netsim.Node.id ~packets:400 ()
    in
    ignore (Netsim.Sim.run ~until:30. sim);
    (flow.Netsim.Transport.acked, flow.Netsim.Transport.retransmits)
  in
  let acked_reno, retx_reno = run Apps.Congestion.reno_block in
  let blind =
    Flexbpf.Builder.(block "cc_blind" [ set_meta "cwnd" (meta "cwnd" +: const 500) ])
  in
  let acked_blind, retx_blind = run blind in
  check_int "reno completes" 400 acked_reno;
  check_int "blind completes" 400 acked_blind;
  check_int "ECN-reactive reno avoids loss" 0 retx_reno;
  check "ECN-blind program overruns the queue" true (retx_blind > 20)

let () =
  Alcotest.run "apps"
    [ ( "l2l3",
        [ Alcotest.test_case "certifies" `Quick test_l2l3_certifies;
          Alcotest.test_case "routing+ttl" `Quick test_l2l3_routing_and_ttl;
          Alcotest.test_case "unroutable" `Quick test_l2l3_unroutable_drops;
          Alcotest.test_case "acl deny" `Quick test_l2l3_acl_deny;
          Alcotest.test_case "ttl guard" `Quick test_l2l3_ttl_guard ] );
      ( "firewall",
        [ Alcotest.test_case "stateful" `Quick test_firewall_statefulness ] );
      ( "cm_sketch",
        [ Alcotest.test_case "never underestimates" `Quick
            test_sketch_overestimates_never_under;
          Alcotest.test_case "sparse exact" `Quick
            test_sketch_estimate_counts_exactly_when_sparse ] );
      ( "heavy_hitter",
        [ Alcotest.test_case "punts" `Quick test_heavy_hitter_punts ] );
      ( "syn_defense",
        [ Alcotest.test_case "engages" `Quick test_syn_defense_engages;
          Alcotest.test_case "window resets" `Quick test_syn_defense_window_resets ] );
      ( "scrubber",
        [ Alcotest.test_case "blocklist" `Quick test_scrubber_blocklist ] );
      ( "load_balancer",
        [ Alcotest.test_case "weights" `Quick test_lb_weights;
          Alcotest.test_case "range cover" `Quick test_lb_weight_rules_cover_range ] );
      ( "nat",
        [ Alcotest.test_case "rewrite roundtrip" `Quick test_nat_rewrite_roundtrip;
          Alcotest.test_case "leaves others" `Quick test_nat_leaves_others ] );
      ( "rate_limiter",
        [ Alcotest.test_case "burst policing" `Quick test_rate_limiter_polices;
          Alcotest.test_case "sustained rate" `Quick test_rate_limiter_sustained_rate ] );
      ( "telemetry",
        [ Alcotest.test_case "counts+stamps" `Quick test_telemetry_counts_and_stamps ] );
      ( "congestion",
        [ Alcotest.test_case "certifies" `Quick test_cc_blocks_certify;
          Alcotest.test_case "reno" `Quick test_reno_semantics;
          Alcotest.test_case "dctcp" `Quick test_dctcp_proportional;
          Alcotest.test_case "timely" `Quick test_timely_rtt_gradient;
          Alcotest.test_case "live swap e2e" `Quick test_cc_live_swap_end_to_end ] )
    ]
