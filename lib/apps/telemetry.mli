(** In-band telemetry utilities: per-flow counters and per-hop stamps —
    the "monitoring, execution tracking and diagnosis primitives"
    (§3.4) injected for maintenance and removed afterwards. *)

val flow_bytes_map : Flexbpf.Ast.map_decl

(** Counts packets per (src, dst) pair. *)
val flow_counter : Flexbpf.Ast.element

(** Increments meta.hops and stamps meta.last_hop_us — a minimal INT. *)
val path_stamp : Flexbpf.Ast.element

val program : ?owner:string -> unit -> Flexbpf.Ast.program

val flow_count : Targets.Device.t -> src:int64 -> dst:int64 -> int64
