(** Unidirectional links with a drop-tail queue, serialization delay,
    propagation delay, and ECN marking.

    The queue is modeled analytically: [busy_until] tracks when the
    transmitter frees up, and the instantaneous queue depth is the number
    of packets accepted but not yet serialized. This is exact for a
    drop-tail FIFO and avoids per-byte events. *)

type t = {
  sim : Sim.t;
  name : string;
  bandwidth : float; (* bits per second *)
  delay : float; (* propagation, seconds *)
  queue_capacity : int; (* packets, excluding the one in service *)
  ecn_threshold : int; (* mark when depth >= threshold; 0 disables *)
  mutable deliver : Packet.t -> unit;
  mutable busy_until : float;
  mutable depth : int;
  mutable up : bool;
  (* statistics *)
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable drops : int;
  mutable ecn_marks : int;
  depth_series : Stats.Series.t;
}

let create ~sim ~name ?(bandwidth = 10e9) ?(delay = 1e-6) ?(queue_capacity = 256)
    ?(ecn_threshold = 0) ?(deliver = fun _ -> ()) () =
  { sim; name; bandwidth; delay; queue_capacity; ecn_threshold; deliver;
    busy_until = 0.; depth = 0; up = true; tx_packets = 0; tx_bytes = 0;
    drops = 0; ecn_marks = 0; depth_series = Stats.Series.create () }

let set_deliver t f = t.deliver <- f
let set_up t up = t.up <- up
let depth t = t.depth
let drops t = t.drops
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let ecn_marks t = t.ecn_marks
let depth_series t = t.depth_series

let serialization_time t (pkt : Packet.t) =
  float_of_int (pkt.Packet.size * 8) /. t.bandwidth

(** Enqueue a packet for transmission. Returns [false] on drop (queue
    full or link down). *)
let transmit t pkt =
  let now = Sim.now t.sim in
  if not t.up then begin
    t.drops <- t.drops + 1;
    false
  end
  else if t.depth >= t.queue_capacity then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    if t.ecn_threshold > 0 && t.depth >= t.ecn_threshold
       && Packet.has_header pkt "ipv4"
    then begin
      Packet.set_field pkt "ipv4" "ecn" 1L;
      t.ecn_marks <- t.ecn_marks + 1
    end;
    let start = Float.max now t.busy_until in
    let departure = start +. serialization_time t pkt in
    t.busy_until <- departure;
    t.depth <- t.depth + 1;
    Stats.Series.add t.depth_series ~time:now ~value:(float_of_int t.depth);
    Sim.at t.sim departure (fun () ->
        t.depth <- t.depth - 1;
        t.tx_packets <- t.tx_packets + 1;
        t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
        let arrival = departure +. t.delay in
        Sim.at t.sim arrival (fun () -> if t.up then t.deliver pkt));
    true
  end
