(** Heavy-hitter detection on top of the count-min sketch: when a
    flow's estimate crosses the threshold, the packet is punted to the
    controller as a digest (once every [report_every] packets of that
    flow, to bound the punt rate). *)

open Flexbpf
open Flexbpf.Builder

let digest_name = "heavy_hitter"

(** Sketch update + threshold check in one block. Uses the row-0
    estimate as the trigger (a safe overestimate, like real designs). *)
let block ?(name = "hh_detect") ?(threshold = 1000) ?(report_every = 256)
    (cfg : Cm_sketch.config) =
  let row0_col = Cm_sketch.column_expr cfg (const 0) in
  let row0 = map_get cfg.Cm_sketch.map_name [ const 0; row0_col ] in
  Flexbpf.Builder.block name
    [ loop cfg.Cm_sketch.depth
        [ map_incr cfg.Cm_sketch.map_name
            [ meta "_loop_i"; Cm_sketch.column_expr cfg (meta "_loop_i") ] ];
      when_
        ((row0 >: const threshold)
         &&: (Ast.Bin (Ast.Mod, row0, const report_every) =: const 0))
        [ punt digest_name ] ]

let program ?(owner = "infra") ?(cfg = Cm_sketch.default_config) ?threshold
    ?report_every () =
  Builder.program ~owner "heavy_hitter"
    ~maps:[ Cm_sketch.sketch_map cfg ]
    [ block ?threshold ?report_every cfg ]
