(** Placement of lowered units onto a physical datapath.

    The datapath is an ordered device path (host stack, NIC, switches,
    ... — the "physical slice" a fungible datapath runs on). Placement
    must respect pipeline order: unit i+1 may not land on a device
    earlier in the path than unit i, so packets traverse components in
    program order. Within that constraint we do first-fit with vertical
    affinity: tables try switching ASICs first, offloads only consider
    general-purpose targets.

    Placement is transactional — on failure every element already
    installed for this program is rolled back. *)

open Flexbpf

type t = {
  path : Targets.Device.t list;
  (* element name -> device, for this program *)
  mutable where : (string * Targets.Device.t) list;
  prog : Ast.program;
}

type failure = {
  failed_unit : Lowering.unit_;
  attempts : (string * Targets.Device.reject) list; (* device id -> why *)
}

let pp_failure ppf f =
  Fmt.pf ppf "cannot place %s: %a"
    (Ast.element_name f.failed_unit.Lowering.u_element)
    Fmt.(
      list ~sep:(any "; ")
        (pair ~sep:(any ": ") string
           (of_to_string Targets.Device.reject_to_string)))
    f.attempts

let device_position path dev =
  let rec go i = function
    | [] -> invalid_arg "device not on path"
    | d :: rest -> if d == dev then i else go (i + 1) rest
  in
  go 0 path

let where t name = List.assoc_opt name t.where

let devices_used t =
  List.sort_uniq compare (List.map (fun (_, d) -> Targets.Device.id d) t.where)

(** Candidate devices for a unit, in preference order, from path
    position [min_pos]: admissible classes only; switch-preferred units
    see switches first. *)
let candidates ~path ~min_pos (u : Lowering.unit_) =
  let tail =
    List.filteri (fun i _ -> i >= min_pos) path
    |> List.filter (fun d ->
           Lowering.class_allows u.Lowering.u_class (Targets.Device.kind d))
  in
  match u.Lowering.u_class with
  | Lowering.Switch_preferred ->
    let switches, others =
      List.partition
        (fun d -> Targets.Arch.is_switch (Targets.Device.kind d))
        tail
    in
    switches @ others
  | _ -> tail

let rollback path prog =
  List.iter
    (fun el ->
      List.iter
        (fun d -> ignore (Targets.Device.uninstall d (Ast.element_name el)))
        path)
    prog.Ast.pipeline

(** Place every unit of [prog] on [path]. On success returns the
    placement; on failure rolls back and reports which unit failed and
    why each candidate rejected it. *)
let place ~path (prog : Ast.program) =
  let units = Lowering.units_of_program prog in
  let rec go min_pos placed = function
    | [] -> Ok placed
    | (u : Lowering.unit_) :: rest ->
      let tried = ref [] in
      let rec attempt = function
        | [] ->
          rollback path prog;
          Error { failed_unit = u; attempts = List.rev !tried }
        | dev :: more ->
          (match
             Targets.Device.install dev ~ctx:u.Lowering.u_ctx
               ~order:u.Lowering.u_index u.Lowering.u_element
           with
           | Ok _slot ->
             let pos = device_position path dev in
             go (max min_pos pos)
               ((Ast.element_name u.Lowering.u_element, dev) :: placed)
               rest
           | Error reject ->
             tried := (Targets.Device.id dev, reject) :: !tried;
             attempt more)
      in
      attempt (candidates ~path ~min_pos u)
  in
  match go 0 [] units with
  | Ok placed -> Ok { path; where = List.rev placed; prog }
  | Error f -> Error f

(** Remove a placed program from its devices. *)
let unplace t =
  List.iter
    (fun (name, dev) -> ignore (Targets.Device.uninstall dev name))
    t.where;
  t.where <- []

(** Summed utilization over the path (for experiment reporting). *)
let mean_utilization path =
  match path with
  | [] -> 0.
  | _ ->
    List.fold_left (fun acc d -> acc +. Targets.Device.utilization d) 0. path
    /. float_of_int (List.length path)
