(** Closure-compiled fast path for FlexBPF (§3.1–3.3's compile-once /
    run-per-packet split, staged into the simulator).

    [Interp] walks the AST on every packet: it re-filters and re-sorts a
    table's full rule list per packet, resolves action parameters
    through assoc lists, concatenates counter-key strings per table
    execution, and re-checks the parser against the header stack each
    time. This module compiles an installed program {e once} into OCaml
    closures so the per-packet work is only the work the modelled
    hardware would do:

    - expressions and statements become [pkt -> args -> ...] thunks with
      the AST dispatch paid at compile time;
    - action parameters are resolved to array slots instead of
      [List.assoc]; rule arguments are bound into the action closure at
      index-build time;
    - per-table hit/miss counters are pre-resolved to their [int ref]
      cells (no string hashing per packet);
    - map names are pre-resolved to [State.t] handles, revalidated
      against [env.maps_gen] with one integer compare;
    - header/field reads cache the resolved header per header-stack
      identity, so repeated reads walk the stack once per packet;
    - parser acceptance is memoised on the packet's shape string;
    - the loop variable is staged into a cell when the body provably
      never observes the [_loop_i] metadata through other channels;
    - rule matching becomes an index maintained per rules-generation:
      tables whose installed rules are all-exact get a hash index keyed
      on the evaluated key tuple; ternary/LPM/range tables keep a
      candidate array pre-sorted by (priority, specificity) so
      per-packet selection is a first-match scan with no sort.

    The index watches [env.rules_gen] (bumped by
    [Interp.install_rule]/[remove_rules]): the per-packet cost of
    consistency is one integer compare, and the filter+sort that the
    reference interpreter pays per packet is paid once per rule-set
    change. [Interp] remains the executable specification; the qcheck
    differential harness in [test/test_compile.ml] proves compiled ≡
    interpreted on random programs, rule sets, and packets. *)

open Ast

let error fmt = Printf.ksprintf (fun s -> raise (Interp.Eval_error s)) fmt

(* Compiled forms. Closures take the action-argument array so one
   compiled body serves every rule of an action; blocks pass [no_args]. *)
type cexpr = Netsim.Packet.t -> int64 array -> int64
type cstmt = Netsim.Packet.t -> int64 array -> Interp.verdict -> unit

let no_args : int64 array = [||]

let truthy v = v <> 0L
let of_bool b = if b then 1L else 0L

(* -- Cached handles ----------------------------------------------------

   The interpreter resolves maps, counters, and headers by name on every
   access. The compiled path resolves once and revalidates with a cheap
   check: an integer generation for maps, physical identity for the
   stats table and the header stack. *)

(* Map handle, revalidated against [env.maps_gen] (bumped by
   [Interp.set_env_map]/[remove_env_map], e.g. when a device loads a
   migration snapshot). A missing map faults on every access, exactly
   like the interpreter. *)
type mcache = {
  mc_name : string;
  mutable mc_gen : int;
  mutable mc_st : State.t;
}

let mcache_dummy = State.create ~name:"\000uninitialised" ~size:1 State.Registers

let mcache name = { mc_name = name; mc_gen = -1; mc_st = mcache_dummy }

let mc_state env mc =
  if mc.mc_gen <> env.Interp.maps_gen then begin
    mc.mc_st <- Interp.env_map env mc.mc_name;
    mc.mc_gen <- env.Interp.maps_gen
  end;
  mc.mc_st

(* Counter cell, resolved lazily on first bump (so a never-incremented
   counter stays absent from [Counters.to_list], like the interpreter's)
   and revalidated by physical identity of [env.stats]. *)
let dummy_stats = Netsim.Stats.Counters.create ()

type ccnt = {
  cc_name : string;
  mutable cc_tbl : Netsim.Stats.Counters.t;
  mutable cc_ref : int ref;
}

let ccnt name = { cc_name = name; cc_tbl = dummy_stats; cc_ref = ref 0 }

let cc_bump env cc =
  if cc.cc_tbl != env.Interp.stats then begin
    cc.cc_tbl <- env.Interp.stats;
    cc.cc_ref <- Netsim.Stats.Counters.handle cc.cc_tbl cc.cc_name
  end;
  incr cc.cc_ref

(* Per-site header cache keyed on the physical identity of the packet's
   header list: repeated reads of the same header walk the stack once
   per packet, and any push/pop builds a new list so staleness is
   impossible. The initial state ([], None) is self-consistent: an
   empty header stack is physically equal to [] and correctly resolves
   to "not found". *)
type hcache = {
  mutable h_list : Netsim.Packet.header list;
  mutable h_hdr : Netsim.Packet.header option;
}

let hcache () = { h_list = []; h_hdr = None }

let resolve_header hc hname (pkt : Netsim.Packet.t) =
  let hs = pkt.Netsim.Packet.headers in
  if hs == hc.h_list then hc.h_hdr
  else begin
    let rec find = function
      | [] -> None
      | (h : Netsim.Packet.header) :: tl ->
        if String.equal h.hname hname then Some h else find tl
    in
    let r = find hs in
    hc.h_list <- hs;
    hc.h_hdr <- r;
    r
  end

(* Field sites additionally cache the binding's value cell, keyed on
   the physical identity of the header's field list: [Packet.set_field]
   mutates cells in place and never rebuilds the spine, so an unchanged
   list identity proves the cached cell is still the binding — reads
   and writes both become a deref once warm. [f_ok] guards the initial
   state and the missing-field error path. *)
type fcache = {
  f_hc : hcache;
  mutable f_fields : (string * int64 ref) list;
  mutable f_cell : int64 ref; (* valid iff [f_ok] *)
  mutable f_ok : bool;
}

let fcache () =
  { f_hc = hcache (); f_fields = []; f_cell = ref 0L; f_ok = false }

(* Resolve the field's cell through the two-level cache; the error
   thunks fire for a missing header / missing field (messages differ
   between read and write sites). *)
let field_cell fc hname fname pkt ~hdr_err ~fld_err =
  let hs = pkt.Netsim.Packet.headers in
  let hc = fc.f_hc in
  if hs != hc.h_list then begin
    ignore (resolve_header hc hname pkt);
    fc.f_ok <- false
  end;
  match hc.h_hdr with
  | None -> hdr_err ()
  | Some hdr ->
    let fs = hdr.Netsim.Packet.fields in
    if fc.f_ok && fs == fc.f_fields then fc.f_cell
    else begin
      fc.f_ok <- false;
      let rec assoc = function
        | [] -> fld_err ()
        | (k, c) :: tl -> if String.equal k fname then c else assoc tl
      in
      let c = assoc fs in
      fc.f_fields <- fs;
      fc.f_cell <- c;
      fc.f_ok <- true;
      c
    end

let compile_field hname fname : cexpr =
  let fc = fcache () in
  let err () = error "packet lacks %s.%s" hname fname in
  fun pkt _ -> !(field_cell fc hname fname pkt ~hdr_err:err ~fld_err:err)

(* Per-site cache of a metadata key's cell. Meta cells are append-only
   (no code removes a key), so once resolved for a packet's table the
   cell stays the binding for that packet's whole lifetime; the only
   check needed is the table's identity (i.e. which packet this is). *)
let dummy_meta : (string, int64 ref) Hashtbl.t = Hashtbl.create 1

type mcellc = {
  mutable mm_tbl : (string, int64 ref) Hashtbl.t;
  mutable mm_cell : int64 ref;
}

let mcellc () = { mm_tbl = dummy_meta; mm_cell = ref 0L }

let mcell_set mc key (pkt : Netsim.Packet.t) v =
  let tbl = pkt.Netsim.Packet.meta in
  if tbl != mc.mm_tbl then begin
    mc.mm_cell <- Netsim.Packet.meta_cell pkt key;
    mc.mm_tbl <- tbl
  end;
  mc.mm_cell := v

(* -- Expressions ------------------------------------------------------ *)

(* [cparams] is the enclosing action's parameter list; a parameter
   compiles to its first slot (matching [List.assoc] on the combined
   list), an unbound one to a thunk raising the interpreter's error.
   [cloop] is the innermost staged loop variable, when the loop body
   qualifies (see [loop_substitutable]). *)
type cctx = {
  cenv : Interp.env;
  cparams : string list;
  cloop : int64 ref option;
  chslots : ((string * string) * int) list;
    (* loop-invariant field reads hoisted to slots (see [leading_fields]) *)
  charr : int64 ref array; (* the slots, filled at loop entry *)
}

(* An operand that reduces to a plain cell read in this context — a
   hoisted field slot, the staged loop variable, or a constant. Such
   operands are pure and fault-free, so a consumer may fuse them
   without closure calls and in any order. *)
let operand_ref ctx = function
  | Meta m ->
    (match ctx.cloop with
     | Some cell when String.equal m "_loop_i" -> Some cell
     | _ -> None)
  | Field (h, f) ->
    (match List.assoc_opt (h, f) ctx.chslots with
     | Some i -> Some ctx.charr.(i)
     | None -> None)
  | Const v -> Some (ref v)
  | _ -> None

let operand_refs ctx es =
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | e :: tl ->
      (match operand_ref ctx e with
       | Some r -> go (r :: acc) tl
       | None -> None)
  in
  go [] es

let rec compile_expr ctx (e : expr) : cexpr =
  let env = ctx.cenv in
  match e with
  | Const v -> fun _ _ -> v
  | Field (h, f) ->
    (match List.assoc_opt (h, f) ctx.chslots with
     | Some i ->
       let cell = ctx.charr.(i) in
       fun _ _ -> !cell
     | None -> compile_field h f)
  | Meta m ->
    (match ctx.cloop with
     | Some cell when String.equal m "_loop_i" -> fun _ _ -> !cell
     | _ -> fun pkt _ -> Netsim.Packet.meta_default pkt m 0L)
  | Param p ->
    let rec slot i = function
      | [] -> None
      | q :: _ when String.equal q p -> Some i
      | _ :: tl -> slot (i + 1) tl
    in
    (match slot 0 ctx.cparams with
     | Some i -> fun _ args -> args.(i)
     | None -> fun _ _ -> error "unbound parameter $%s" p)
  | Map_get (m, keys) ->
    let mc = mcache m in
    let ckeys = compile_keys ctx keys in
    fun pkt args -> State.get (mc_state env mc) (ckeys pkt args)
  | Bin (Land, a, b) ->
    let ca = compile_expr ctx a and cb = compile_expr ctx b in
    fun pkt args ->
      if truthy (ca pkt args) then of_bool (truthy (cb pkt args)) else 0L
  | Bin (Lor, a, b) ->
    let ca = compile_expr ctx a and cb = compile_expr ctx b in
    fun pkt args ->
      if truthy (ca pkt args) then 1L else of_bool (truthy (cb pkt args))
  | Bin (Mod, Hash (alg, es), Const w)
    when (match (alg, es) with Identity, [ _ ] -> false | _ -> true)
         && (not (Int64.equal w 0L))
         && Int64.equal (Int64.of_int (Int64.to_int w)) w ->
    (* hash → finish → mod fused into untagged int arithmetic (the
       sketch-column idiom). The interpreter computes
       [Int64.rem (of_int (finish h)) w]; the finished value is
       non-negative and int-sized and [w] is int-exact, so the native
       [mod] agrees and only the final result is boxed. *)
    let wi = Int64.to_int w in
    (match (operand_refs ctx es, alg) with
     (* all operands are cell reads (hoisted fields / staged loop var /
        constants): one closure, no operand calls — the sketch-row
        idiom [hash(i, flow...) mod width] inside a compiled loop *)
     | Some [| a; b; c; d |], (Crc32 | Identity) ->
       fun _ _ ->
         let h = Interp.hash_step Interp.hash_init !a in
         let h = Interp.hash_step h !b in
         let h = Interp.hash_step h !c in
         let h = Interp.hash_step h !d in
         Int64.of_int ((Interp.hash_mix h land 0x7FFFFFFF) mod wi)
     | Some [| a; b; c |], (Crc32 | Identity) ->
       fun _ _ ->
         let h = Interp.hash_step Interp.hash_init !a in
         let h = Interp.hash_step h !b in
         let h = Interp.hash_step h !c in
         Int64.of_int ((Interp.hash_mix h land 0x7FFFFFFF) mod wi)
     | _ ->
       let fold = hash_folder (compile_exprs ctx es) in
       (match alg with
        | Crc16 ->
          fun pkt args ->
            Int64.of_int
              (((Interp.hash_mix (fold pkt args) lsr 16) land 0xFFFF) mod wi)
        | Crc32 | Identity ->
          fun pkt args ->
            Int64.of_int
              ((Interp.hash_mix (fold pkt args) land 0x7FFFFFFF) mod wi)))
  | Bin (op, a, Const y) ->
    (* constant right operand bound at compile time (pure, so hoisting
       past the left operand is sound); div/mod still evaluate the left
       operand for its faults before yielding the by-zero 0 *)
    let ca = compile_expr ctx a in
    (match op with
     | Add -> fun pkt args -> Int64.add (ca pkt args) y
     | Sub -> fun pkt args -> Int64.sub (ca pkt args) y
     | Mul -> fun pkt args -> Int64.mul (ca pkt args) y
     | Div ->
       if Int64.equal y 0L then fun pkt args ->
         let _ = ca pkt args in
         0L
       else fun pkt args -> Int64.div (ca pkt args) y
     | Mod ->
       if Int64.equal y 0L then fun pkt args ->
         let _ = ca pkt args in
         0L
       else fun pkt args -> Int64.rem (ca pkt args) y
     | Band -> fun pkt args -> Int64.logand (ca pkt args) y
     | Bor -> fun pkt args -> Int64.logor (ca pkt args) y
     | Bxor -> fun pkt args -> Int64.logxor (ca pkt args) y
     | Shl ->
       let s = Int64.to_int y land 63 in
       fun pkt args -> Int64.shift_left (ca pkt args) s
     | Shr ->
       let s = Int64.to_int y land 63 in
       fun pkt args -> Int64.shift_right_logical (ca pkt args) s
     | Eq -> fun pkt args -> of_bool (Int64.equal (ca pkt args) y)
     | Neq -> fun pkt args -> of_bool (not (Int64.equal (ca pkt args) y))
     | Lt -> fun pkt args -> of_bool (Int64.compare (ca pkt args) y < 0)
     | Le -> fun pkt args -> of_bool (Int64.compare (ca pkt args) y <= 0)
     | Gt -> fun pkt args -> of_bool (Int64.compare (ca pkt args) y > 0)
     | Ge -> fun pkt args -> of_bool (Int64.compare (ca pkt args) y >= 0)
     | Land ->
       let r = of_bool (truthy y) in
       fun pkt args -> if truthy (ca pkt args) then r else 0L
     | Lor ->
       if truthy y then fun pkt args ->
         let _ = ca pkt args in
         1L
       else fun pkt args -> of_bool (truthy (ca pkt args)))
  | Bin (op, a, b) ->
    let ca = compile_expr ctx a and cb = compile_expr ctx b in
    (* every operator specialised so no per-packet dispatch remains;
       left-to-right evaluation and div/mod-by-zero = 0 as in the
       interpreter *)
    (match op with
     | Add -> fun pkt args ->
         let x = ca pkt args in Int64.add x (cb pkt args)
     | Sub -> fun pkt args ->
         let x = ca pkt args in Int64.sub x (cb pkt args)
     | Mul -> fun pkt args ->
         let x = ca pkt args in Int64.mul x (cb pkt args)
     | Div -> fun pkt args ->
         let x = ca pkt args in
         let y = cb pkt args in
         if y = 0L then 0L else Int64.div x y
     | Mod -> fun pkt args ->
         let x = ca pkt args in
         let y = cb pkt args in
         if y = 0L then 0L else Int64.rem x y
     | Band -> fun pkt args ->
         let x = ca pkt args in Int64.logand x (cb pkt args)
     | Bor -> fun pkt args ->
         let x = ca pkt args in Int64.logor x (cb pkt args)
     | Bxor -> fun pkt args ->
         let x = ca pkt args in Int64.logxor x (cb pkt args)
     | Shl -> fun pkt args ->
         let x = ca pkt args in
         Int64.shift_left x (Int64.to_int (cb pkt args) land 63)
     | Shr -> fun pkt args ->
         let x = ca pkt args in
         Int64.shift_right_logical x (Int64.to_int (cb pkt args) land 63)
     | Eq -> fun pkt args ->
         let x = ca pkt args in of_bool (Int64.equal x (cb pkt args))
     | Neq -> fun pkt args ->
         let x = ca pkt args in of_bool (not (Int64.equal x (cb pkt args)))
     | Lt -> fun pkt args ->
         let x = ca pkt args in of_bool (Int64.compare x (cb pkt args) < 0)
     | Le -> fun pkt args ->
         let x = ca pkt args in of_bool (Int64.compare x (cb pkt args) <= 0)
     | Gt -> fun pkt args ->
         let x = ca pkt args in of_bool (Int64.compare x (cb pkt args) > 0)
     | Ge -> fun pkt args ->
         let x = ca pkt args in of_bool (Int64.compare x (cb pkt args) >= 0)
     | Land | Lor -> assert false (* handled above *))
  | Un (op, e) ->
    let ce = compile_expr ctx e in
    (match op with
     | Not -> fun pkt args -> of_bool (not (truthy (ce pkt args)))
     | Neg -> fun pkt args -> Int64.neg (ce pkt args)
     | Bnot -> fun pkt args -> Int64.lognot (ce pkt args))
  | Hash (alg, es) ->
    let ces = compile_exprs ctx es in
    (match alg, ces with
     | Identity, [| ce |] -> fun pkt args -> ce pkt args
     | Crc16, _ ->
       let fold = hash_folder ces in
       fun pkt args -> Interp.crc16_finish (fold pkt args)
     | (Crc32 | Identity), _ ->
       let fold = hash_folder ces in
       fun pkt args -> Interp.crc32_finish (fold pkt args))
  | Time -> fun _ _ -> env.Interp.now_us

and compile_exprs ctx es = Array.of_list (List.map (compile_expr ctx) es)

(* Left-to-right evaluation into a fresh key list (the interpreter's
   [List.map (eval ...)]). *)
and eval_keys (ces : cexpr array) pkt args : int64 list =
  let rec go i =
    if i >= Array.length ces then []
    else
      let v = ces.(i) pkt args in
      v :: go (i + 1)
  in
  go 0

(* Key tuples are short (map arity 1–3 in practice); build the list with
   a closure specialised to the arity instead of the generic recursion.
   Keys that reduce to cell reads (staged loop variable, hoisted field
   slots, constants) skip the per-key closure call — pure and
   fault-free, so fusing them cannot reorder observable effects. The
   sketch-update idiom [incr cms [i, hash(...) mod w] 1] hits the
   two-key ref-first case on every loop iteration. *)
and compile_keys ctx keys : Netsim.Packet.t -> int64 array -> int64 list =
  match keys with
  | [] -> fun _ _ -> []
  | [ ka ] ->
    (match operand_ref ctx ka with
     | Some ra -> fun _ _ -> [ !ra ]
     | None ->
       let a = compile_expr ctx ka in
       fun pkt args -> [ a pkt args ])
  | [ ka; kb ] ->
    (match (operand_ref ctx ka, operand_ref ctx kb) with
     | Some ra, Some rb -> fun _ _ -> [ !ra; !rb ]
     | Some ra, None ->
       let b = compile_expr ctx kb in
       fun pkt args ->
         let y = b pkt args in
         [ !ra; y ]
     | None, Some rb ->
       let a = compile_expr ctx ka in
       fun pkt args ->
         let x = a pkt args in
         [ x; !rb ]
     | None, None ->
       let a = compile_expr ctx ka
       and b = compile_expr ctx kb in
       fun pkt args ->
         let x = a pkt args in
         let y = b pkt args in
         [ x; y ])
  | [ ka; kb; kc ] ->
    let a = compile_expr ctx ka
    and b = compile_expr ctx kb
    and c = compile_expr ctx kc in
    fun pkt args ->
      let x = a pkt args in
      let y = b pkt args in
      let z = c pkt args in
      [ x; y; z ]
  | _ ->
    let ces = compile_exprs ctx keys in
    fun pkt args -> eval_keys ces pkt args

(* Streams the operands through the hash fold without building the
   interpreter's intermediate list; common small arities get a direct
   let-chain (the fold state is untagged [int], so the chain is
   allocation-free between operand evaluations). *)
and hash_folder (ces : cexpr array) : Netsim.Packet.t -> int64 array -> int =
  match ces with
  | [| a |] -> fun pkt args -> Interp.hash_step Interp.hash_init (a pkt args)
  | [| a; b |] ->
    fun pkt args ->
      let h = Interp.hash_step Interp.hash_init (a pkt args) in
      Interp.hash_step h (b pkt args)
  | [| a; b; c |] ->
    fun pkt args ->
      let h = Interp.hash_step Interp.hash_init (a pkt args) in
      let h = Interp.hash_step h (b pkt args) in
      Interp.hash_step h (c pkt args)
  | [| a; b; c; d |] ->
    fun pkt args ->
      let h = Interp.hash_step Interp.hash_init (a pkt args) in
      let h = Interp.hash_step h (b pkt args) in
      let h = Interp.hash_step h (c pkt args) in
      Interp.hash_step h (d pkt args)
  | _ ->
    fun pkt args ->
      let h = ref Interp.hash_init in
      for i = 0 to Array.length ces - 1 do
        h := Interp.hash_step !h (ces.(i) pkt args)
      done;
      !h

(* -- Statements ------------------------------------------------------- *)

(* A loop body can run with its loop variable staged in a cell (no
   metadata writes per iteration) only if nothing in the body can
   observe [_loop_i] through the packet: no nested loop (rebinds it),
   no write to it, and no punt/dRPC callback (external code receiving
   the packet mid-loop). The final iteration's value is still published
   to the metadata afterwards — and on a fault, before the error
   escapes — so post-run state is indistinguishable. *)
let rec loop_substitutable stmts = List.for_all stmt_substitutable stmts

and stmt_substitutable = function
  | Loop _ | Punt _ | Call _ -> false
  | Set_meta ("_loop_i", _) -> false
  | If (_, th, el) -> loop_substitutable th && loop_substitutable el
  | Nop | Set_meta _ | Set_field _ | Map_put _ | Map_incr _ | Map_del _
  | Forward _ | Drop | Push_header _ | Pop_header _ -> true

(* A qualifying loop body may additionally have loop-invariant field
   reads hoisted into slots filled once at loop entry. Soundness needs:
   (a) field values and header presence invariant across iterations —
   no set_field/push/pop and no external callback in the body;
   (b) expression evaluation free of side effects and of non-field
   faults — no map_get (stateful tables record LRU touches) and no
   params anywhere in the body, so the hoisted prefix can only raise
   the same field faults, in the same order, that the interpreter
   would raise on iteration 0;
   (c) only fields the interpreter evaluates unconditionally before
   the first side effect qualify — the evaluation prefix of the first
   non-Nop statement. Later statements run after that statement's
   effects, and an If's branches may not run at all. *)
let rec expr_pure_total = function
  | Const _ | Meta _ | Time | Field _ -> true
  | Param _ | Map_get _ -> false
  | Bin (_, a, b) -> expr_pure_total a && expr_pure_total b
  | Un (_, e) -> expr_pure_total e
  | Hash (_, es) -> List.for_all expr_pure_total es

let rec body_hoistable stmts = List.for_all stmt_hoistable stmts

and stmt_hoistable = function
  | Nop | Drop -> true
  | Set_meta (_, e) | Forward e -> expr_pure_total e
  | Map_put (_, ks, e) | Map_incr (_, ks, e) ->
    List.for_all expr_pure_total ks && expr_pure_total e
  | Map_del (_, ks) -> List.for_all expr_pure_total ks
  | If (c, th, el) ->
    expr_pure_total c && body_hoistable th && body_hoistable el
  | Set_field _ | Push_header _ | Pop_header _ | Loop _ | Punt _ | Call _ ->
    false

(* Field reads in the interpreter's evaluation order: [Bin] evaluates
   left then right except the short-circuit operators (right operand
   conditional, so excluded); hash operands and keys left-to-right. *)
let rec expr_fields acc = function
  | Const _ | Meta _ | Time | Param _ | Map_get _ -> acc
  | Field (h, f) -> (h, f) :: acc
  | Bin ((Land | Lor), a, _) -> expr_fields acc a
  | Bin (_, a, b) -> expr_fields (expr_fields acc a) b
  | Un (_, e) -> expr_fields acc e
  | Hash (_, es) -> List.fold_left expr_fields acc es

let leading_fields body =
  let rec first = function
    | Nop :: tl -> first tl
    | s :: _ -> Some s
    | [] -> None
  in
  let acc =
    match first body with
    | Some (Set_meta (_, e)) | Some (Forward e) -> expr_fields [] e
    | Some (Map_put (_, ks, e)) | Some (Map_incr (_, ks, e)) ->
      (* value expression first: the interpreter's argument order *)
      List.fold_left expr_fields (expr_fields [] e) ks
    | Some (Map_del (_, ks)) -> List.fold_left expr_fields [] ks
    | Some (If (c, _, _)) -> expr_fields [] c
    | _ -> []
  in
  (* first occurrence wins, evaluation order preserved *)
  List.fold_left
    (fun seen hf -> if List.mem hf seen then seen else hf :: seen)
    [] (List.rev acc)
  |> List.rev

let rec compile_stmt ctx (s : stmt) : cstmt =
  let env = ctx.cenv in
  match s with
  | Nop -> fun _ _ _ -> ()
  | Set_field (h, f, e) ->
    let ce = compile_expr ctx e in
    let fc = fcache () in
    (* messages match [Packet.set_field]'s Invalid_argument, which the
       interpreter rewraps as Eval_error *)
    let hdr_err () = error "Packet.set_field: no header %s" h in
    let fld_err () = error "Packet.set_field: no field %s.%s" h f in
    fun pkt args _ ->
      let v = ce pkt args in
      field_cell fc h f pkt ~hdr_err ~fld_err := v
  | Set_meta (m, e) ->
    let ce = compile_expr ctx e in
    let mc = mcellc () in
    (* value evaluated before the cell is resolved: a fault in [e] must
       leave the metadata untouched, as in the interpreter *)
    fun pkt args _ ->
      let v = ce pkt args in
      mcell_set mc m pkt v
  | Map_put (m, keys, e) ->
    let mc = mcache m in
    let ckeys = compile_keys ctx keys in
    let ce = compile_expr ctx e in
    fun pkt args _ ->
      (* the interpreter evaluates the value expression before the keys
         and resolves the map last (OCaml right-to-left argument
         order); mirror it so fault precedence is identical *)
      let v = ce pkt args in
      let ks = ckeys pkt args in
      State.put (mc_state env mc) ks v
  | Map_incr (m, keys, Const d) ->
    (* constant delta bound at compile time (pure, so skipping its
       evaluation slot is unobservable) — the counter/sketch idiom *)
    let mc = mcache m in
    let ckeys = compile_keys ctx keys in
    fun pkt args _ ->
      let ks = ckeys pkt args in
      ignore (State.incr (mc_state env mc) ks d)
  | Map_incr (m, keys, e) ->
    let mc = mcache m in
    let ckeys = compile_keys ctx keys in
    let ce = compile_expr ctx e in
    fun pkt args _ ->
      let v = ce pkt args in
      let ks = ckeys pkt args in
      ignore (State.incr (mc_state env mc) ks v)
  | Map_del (m, keys) ->
    let mc = mcache m in
    let ckeys = compile_keys ctx keys in
    fun pkt args _ -> State.del (mc_state env mc) (ckeys pkt args)
  | If (c, th, el) ->
    let cc = compile_expr ctx c in
    let cth = compile_stmts ctx th in
    let cel = compile_stmts ctx el in
    fun pkt args verdict ->
      if truthy (cc pkt args) then cth pkt args verdict
      else cel pkt args verdict
  | Loop (n, body) when n > 0 && loop_substitutable body ->
    let cell = ref 0L in
    let ivals = Array.init n Int64.of_int in
    let hoist = if body_hoistable body then leading_fields body else [] in
    let harr = Array.init (List.length hoist) (fun _ -> ref 0L) in
    let getters =
      Array.of_list (List.map (fun (h, f) -> compile_field h f) hoist)
    in
    let cbody =
      compile_stmts
        { ctx with
          cloop = Some cell;
          chslots = List.mapi (fun i hf -> (hf, i)) hoist;
          charr = harr }
        body
    in
    let last = ivals.(n - 1) in
    let ng = Array.length getters in
    let mc = mcellc () in
    fun pkt args verdict ->
      (try
         (* hoisted reads fault as iteration 0 would; the cell is set
            first so the handler publishes the iteration the
            interpreter would have reached *)
         cell := ivals.(0);
         for i = 0 to ng - 1 do
           harr.(i) := getters.(i) pkt args
         done;
         for i = 0 to n - 1 do
           cell := ivals.(i);
           cbody pkt args verdict
         done
       with e ->
         (* a fault escapes mid-loop: publish the iteration the
            interpreter would have left in the metadata *)
         mcell_set mc "_loop_i" pkt !cell;
         raise e);
      mcell_set mc "_loop_i" pkt last
  | Loop (n, body) ->
    let cbody = compile_stmts { ctx with cloop = None } body in
    let mc = mcellc () in
    fun pkt args verdict ->
      for i = 0 to n - 1 do
        mcell_set mc "_loop_i" pkt (Int64.of_int i);
        cbody pkt args verdict
      done
  | Forward e ->
    let ce = compile_expr ctx e in
    fun pkt args verdict ->
      verdict.Interp.egress <- Some (Int64.to_int (ce pkt args))
  | Drop -> fun _ _ verdict -> verdict.Interp.dropped <- true
  | Punt digest ->
    fun pkt _ verdict ->
      verdict.Interp.punts <- digest :: verdict.Interp.punts;
      env.Interp.punt digest pkt
  | Push_header h ->
    fun pkt _ _ ->
      Netsim.Packet.push_header pkt { Netsim.Packet.hname = h; fields = [] }
  | Pop_header h -> fun pkt _ _ -> Netsim.Packet.pop_header pkt h
  | Call (svc, argexprs) ->
    let cargs = compile_keys ctx argexprs in
    let meta_key = "drpc_" ^ svc in (* interned once, not per packet *)
    let mc = mcellc () in
    fun pkt args _ ->
      let result = env.Interp.drpc svc (cargs pkt args) in
      mcell_set mc meta_key pkt result

and compile_stmts ctx stmts : cstmt =
  match List.map (compile_stmt ctx) stmts with
  | [] -> fun _ _ _ -> ()
  | [ c ] -> c
  | cs ->
    let arr = Array.of_list cs in
    fun pkt args verdict ->
      for i = 0 to Array.length arr - 1 do
        arr.(i) pkt args verdict
      done

(* -- Tables ------------------------------------------------------------ *)

(** A rule staged for per-packet matching: patterns as an array, the
    action body already specialised to the rule's bound arguments. *)
type prepared = {
  pre_priority : int;
  pre_spec : int;
  pre_matches : pattern array;
  pre_fire : Netsim.Packet.t -> Interp.verdict -> unit;
}

(* Monomorphic hash table over evaluated key tuples (the generic
   polymorphic hash would re-dispatch on runtime tags per probe). *)
module Key_tbl = Hashtbl.Make (struct
  type t = int64 list

  let rec equal a b =
    match (a, b) with
    | [], [] -> true
    | x :: xs, y :: ys -> Int64.equal x y && equal xs ys
    | _, _ -> false

  let hash k =
    let rec go acc = function
      | [] -> acc
      | v :: tl -> go ((acc * 31) lxor Int64.to_int v) tl
    in
    go 17 k land max_int
end)

type index =
  | Hash_index of prepared Key_tbl.t
    (* all installed rules exact: evaluated key tuple -> winning rule *)
  | Scan of prepared array
    (* pre-sorted by (priority desc, specificity desc), stable in
       install recency — first match wins, no per-packet sort *)
  | Tiered of {
      td_auth : index;
        (* the authoritative host tier: the full Hash_index/Scan over
           every installed rule, never [Tiered] itself *)
      td_cache : prepared option State.Tier.t;
        (* the bounded device tier: evaluated key tuple -> memoized
           winner of the authoritative first-match lookup. Because a
           binding is the memoized {e result} (including [None] = the
           default action), partial residency cannot shadow a
           higher-priority host rule — priority semantics are exact for
           every pattern kind, and demotion is semantically neutral. *)
    }

type ctable = {
  ct_table : table;
  ct_hit : ccnt; (* pre-resolved counter cells *)
  ct_miss : ccnt;
  ct_keys : cexpr array;
  ct_klist : Netsim.Packet.t -> int64 array -> int64 list;
    (* same keys as a list, for the hash-index probe *)
  ct_scratch : int64 array; (* reused per packet by the scan path *)
  ct_default : Netsim.Packet.t -> Interp.verdict -> unit;
  (* binds a rule's (action, args) to a firing closure at index build *)
  ct_bind : string -> int64 list -> Netsim.Packet.t -> Interp.verdict -> unit;
  mutable ct_index : index;
  mutable ct_gen : int; (* env.rules_gen the index was built against *)
}

(** Compile an action body once; [bind] then specialises it per rule by
    freezing the argument array. Arity mismatches and unknown actions
    keep the interpreter's behaviour: the error fires if and when the
    rule is selected, after the hit counter is bumped. *)
let compile_action_binder env (t : table) =
  let compiled =
    List.map
      (fun a ->
        ( a.act_name,
          List.length a.params,
          compile_stmts
            { cenv = env; cparams = a.params; cloop = None;
              chslots = []; charr = [||] }
            a.body ))
      t.tbl_actions
  in
  fun action_name args ->
    match
      List.find_opt (fun (n, _, _) -> String.equal n action_name) compiled
    with
    | None ->
      fun _ _ -> error "table %s: action %s missing" t.tbl_name action_name
    | Some (_, arity, body) ->
      if List.length args <> arity then
        fun _ _ -> error "table %s: action %s arity mismatch" t.tbl_name action_name
      else
        let frozen = Array.of_list args in
        fun pkt verdict -> body pkt frozen verdict

let prepare_rule bind (r : rule) =
  { pre_priority = r.rule_priority;
    pre_spec = Interp.rule_specificity r;
    pre_matches = Array.of_list r.matches;
    pre_fire = bind r.rule_action r.rule_args }

let all_exact (r : rule) =
  List.for_all (function P_exact _ -> true | _ -> false) r.matches

let exact_key (r : rule) =
  List.map (function P_exact v -> v | _ -> assert false) r.matches

(** Rebuild a table's index from the environment's current rule list.
    The rule list is newest-first; the stable sort therefore breaks
    (priority, specificity) ties toward the most recent install, exactly
    like the reference interpreter's per-packet sort. *)
let build_index env (ct : ctable) =
  let arity = Array.length ct.ct_keys in
  let rules =
    Interp.table_rules env ct.ct_table.tbl_name
    |> List.filter (fun r -> List.length r.matches = arity)
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        match Int.compare b.rule_priority a.rule_priority with
        | 0 ->
          Int.compare (Interp.rule_specificity b) (Interp.rule_specificity a)
        | c -> c)
      rules
  in
  let auth =
    if rules <> [] && List.for_all all_exact rules then begin
      let h = Key_tbl.create (2 * List.length rules) in
      (* first in sorted order wins a duplicate key tuple *)
      List.iter
        (fun r ->
          let k = exact_key r in
          if not (Key_tbl.mem h k) then
            Key_tbl.add h k (prepare_rule ct.ct_bind r))
        sorted;
      Hash_index h
    end
    else Scan (Array.of_list (List.map (prepare_rule ct.ct_bind) sorted))
  in
  ct.ct_index <-
    (match Interp.tier_capacity env ct.ct_table.tbl_name with
     | Some cap ->
       (* Any rule-set change flushes the device tier wholesale: stale
          memoized winners (deleted rules, priority updates) cannot
          survive a generation, and cumulative telemetry is kept. *)
       let cache =
         match ct.ct_index with
         | Tiered { td_cache; _ } ->
           State.Tier.flush ~cap td_cache;
           td_cache
         | Hash_index _ | Scan _ -> State.Tier.create ~cap
       in
       Tiered { td_auth = auth; td_cache = cache }
     | None -> auth);
  ct.ct_gen <- env.Interp.rules_gen

let compile_table env (t : table) : ctable =
  let bind = compile_action_binder env t in
  let default_name, default_args = t.default_action in
  let ctx =
    { cenv = env; cparams = []; cloop = None; chslots = []; charr = [||] }
  in
  { ct_table = t;
    ct_hit = ccnt (t.tbl_name ^ ".hit");
    ct_miss = ccnt (t.tbl_name ^ ".miss");
    ct_keys = compile_exprs ctx (List.map fst t.keys);
    ct_klist = compile_keys ctx (List.map fst t.keys);
    ct_scratch = Array.make (List.length t.keys) 0L;
    ct_default = bind default_name default_args;
    ct_bind = bind;
    ct_index = Scan [||];
    ct_gen = -1 }

let scan_match (pre : prepared) (keys : int64 array) =
  let n = Array.length pre.pre_matches in
  n = Array.length keys
  &&
  let rec go i =
    i >= n || (Interp.match_pattern keys.(i) pre.pre_matches.(i) && go (i + 1))
  in
  go 0

let probe_scan (arr : prepared array) (keys : int64 array) =
  let len = Array.length arr in
  let rec first i =
    if i >= len then None
    else if scan_match arr.(i) keys then Some arr.(i)
    else first (i + 1)
  in
  first 0

(* Authoritative (host-tier) probe: evaluated keys as both the tuple
   list (hash probe) and the scratch array (scan). *)
let probe_auth auth klist keys =
  match auth with
  | Hash_index h -> Key_tbl.find_opt h klist
  | Scan arr -> probe_scan arr keys
  | Tiered _ -> assert false (* td_auth is never itself tiered *)

let exec_ctable env (ct : ctable) pkt verdict =
  if ct.ct_gen <> env.Interp.rules_gen then build_index env ct;
  (* key expressions are always evaluated, rules installed or not — a
     missing header must fault exactly as in the interpreter *)
  let selected =
    match ct.ct_index with
    | Hash_index h -> Key_tbl.find_opt h (ct.ct_klist pkt no_args)
    | Scan arr ->
      let keys = ct.ct_scratch in
      for i = 0 to Array.length ct.ct_keys - 1 do
        keys.(i) <- ct.ct_keys.(i) pkt no_args
      done;
      probe_scan arr keys
    | Tiered { td_auth; td_cache } ->
      (* evaluate each key expression exactly once — key evaluation may
         touch maps (LRU ticks), observable through State semantics *)
      let keys = ct.ct_scratch in
      for i = 0 to Array.length ct.ct_keys - 1 do
        keys.(i) <- ct.ct_keys.(i) pkt no_args
      done;
      let klist = Array.to_list keys in
      (match State.Tier.find td_cache klist with
       | Some memo -> memo (* device-tier hit *)
       | None ->
         (* device-tier fault: the authoritative lookup serves the
            packet (slow path), and the binding is demand-paged in
            through the runtime's hook. The commit closure re-checks
            the generation and index identity so a promotion that lands
            after a rule change (async dRPC) is dropped, not applied
            stale. *)
         let winner = probe_auth td_auth klist keys in
         let gen = ct.ct_gen in
         env.Interp.page_in ct.ct_table.tbl_name klist (fun () ->
             if ct.ct_gen = gen && env.Interp.rules_gen = gen then
               match ct.ct_index with
               | Tiered { td_cache = c; _ } when c == td_cache ->
                 State.Tier.promote c klist winner
               | _ -> ());
         winner)
  in
  match selected with
  | Some pre ->
    cc_bump env ct.ct_hit;
    pre.pre_fire pkt verdict
  | None ->
    cc_bump env ct.ct_miss;
    ct.ct_default pkt verdict

(* -- Parser ------------------------------------------------------------ *)

(* Acceptance depends only on the packet's header-name sequence, i.e.
   its [Packet.shape] string; memoised per shape with a last-shape fast
   path (simulated traffic is shape-stable). The cap guards against
   adversarial header churn creating unbounded shapes. *)
let parser_memo_cap = 1024

type cparser = {
  cp_prefixes : string array; (* pr_headers of each rule, joined by '/' *)
  cp_memo : (string, bool) Hashtbl.t;
  mutable cp_last_shape : string;
  mutable cp_last_ok : bool;
}

let compile_parser (prog : program) =
  { cp_prefixes =
      Array.of_list
        (List.map (fun r -> String.concat "/" r.pr_headers) prog.parser);
    cp_memo = Hashtbl.create 16;
    cp_last_shape = "\000"; (* no real shape: header names are idents *)
    cp_last_ok = false }

(* [prefix] accepts [shape] iff its header-name list is a prefix of the
   shape's: string-prefix plus a boundary check so "eth/vla" does not
   match "eth/vlan". *)
let shape_prefix prefix shape =
  let lp = String.length prefix in
  lp = 0
  || (String.length shape >= lp
      && String.sub shape 0 lp = prefix
      && (String.length shape = lp || shape.[lp] = '/'))

let parser_accepts (cp : cparser) pkt =
  let shape = Netsim.Packet.shape pkt in
  if String.equal shape cp.cp_last_shape then cp.cp_last_ok
  else begin
    let ok =
      match Hashtbl.find_opt cp.cp_memo shape with
      | Some b -> b
      | None ->
        let rec any i =
          i < Array.length cp.cp_prefixes
          && (shape_prefix cp.cp_prefixes.(i) shape || any (i + 1))
        in
        let b = any 0 in
        if Hashtbl.length cp.cp_memo < parser_memo_cap then
          Hashtbl.add cp.cp_memo shape b;
        b
    in
    cp.cp_last_shape <- shape;
    cp.cp_last_ok <- ok;
    ok
  end

(* -- Whole program ----------------------------------------------------- *)

type celement =
  | C_table of ctable
  | C_block of cstmt

type t = {
  c_prog : program;
  c_env : Interp.env;
  c_parser : cparser;
  c_accept : ccnt;
  c_reject : ccnt;
  c_error : ccnt;
  c_pipeline : celement array;
}

let compile (env : Interp.env) (prog : program) : t =
  let ctx =
    { cenv = env; cparams = []; cloop = None; chslots = []; charr = [||] }
  in
  { c_prog = prog;
    c_env = env;
    c_parser = compile_parser prog;
    c_accept = ccnt "parser.accept";
    c_reject = ccnt "parser.reject";
    c_error = ccnt "runtime.error";
    c_pipeline =
      Array.of_list
        (List.map
           (function
             | Table tbl -> C_table (compile_table env tbl)
             | Block b -> C_block (compile_stmts ctx b.blk_body))
           prog.pipeline) }

let program t = t.c_prog
let env t = t.c_env

let run (t : t) pkt : Interp.result =
  let env = t.c_env in
  let verdict = Interp.fresh_verdict () in
  if not (parser_accepts t.c_parser pkt) then begin
    cc_bump env t.c_reject;
    verdict.Interp.dropped <- true;
    { Interp.verdict; parse_ok = false; runtime_error = None }
  end
  else begin
    cc_bump env t.c_accept;
    try
      for i = 0 to Array.length t.c_pipeline - 1 do
        match t.c_pipeline.(i) with
        | C_table ct -> exec_ctable env ct pkt verdict
        | C_block cb -> cb pkt no_args verdict
      done;
      { Interp.verdict; parse_ok = true; runtime_error = None }
    with Interp.Eval_error msg ->
      cc_bump env t.c_error;
      verdict.Interp.dropped <- true;
      { Interp.verdict; parse_ok = true; runtime_error = Some msg }
  end

(* -- Tier introspection (off the packet path) -------------------------- *)

type tier_stat = {
  ts_table : string;
  ts_capacity : int;
  ts_resident : int;
  ts_hits : int;
  ts_misses : int;
  ts_promotions : int;
  ts_evictions : int;
  ts_demotions : int;
}

(* Stats and warm-start act on current indexes, so bring stale ones up
   to the environment's generation first (exactly what the next packet
   would do). *)
let refresh_indexes t =
  Array.iter
    (function
      | C_table ct when ct.ct_gen <> t.c_env.Interp.rules_gen ->
        build_index t.c_env ct
      | _ -> ())
    t.c_pipeline

let find_ctable t name =
  let rec go i =
    if i >= Array.length t.c_pipeline then None
    else
      match t.c_pipeline.(i) with
      | C_table ct when String.equal ct.ct_table.tbl_name name -> Some ct
      | _ -> go (i + 1)
  in
  go 0

let tier_stats t =
  refresh_indexes t;
  Array.to_list t.c_pipeline
  |> List.filter_map (function
       | C_table { ct_table; ct_index = Tiered { td_cache = c; _ }; _ } ->
         Some
           { ts_table = ct_table.tbl_name;
             ts_capacity = State.Tier.capacity c;
             ts_resident = State.Tier.resident c;
             ts_hits = State.Tier.hits c;
             ts_misses = State.Tier.misses c;
             ts_promotions = State.Tier.promotions c;
             ts_evictions = State.Tier.evictions c;
             ts_demotions = State.Tier.demotions c }
       | _ -> None)

let tier_resident_keys t name =
  refresh_indexes t;
  match find_ctable t name with
  | Some { ct_index = Tiered { td_cache; _ }; _ } -> State.Tier.keys td_cache
  | _ -> []

(** Pre-fault [keys] into [name]'s device tier (migration warm start):
    each key's binding is resolved against the authoritative tier and
    promoted, without touching hit/miss telemetry of the packet path.
    Keys whose arity does not match the table are skipped. *)
let warm_table t name keys =
  refresh_indexes t;
  match find_ctable t name with
  | Some ({ ct_index = Tiered { td_auth; td_cache }; _ } as ct) ->
    let arity = Array.length ct.ct_keys in
    List.iter
      (fun k ->
        if List.length k = arity && not (State.Tier.mem td_cache k) then
          State.Tier.promote td_cache k (probe_auth td_auth k (Array.of_list k)))
      keys
  | _ -> ()
