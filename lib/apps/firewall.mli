(** Stateful firewall: outbound traffic from the protected side opens a
    flow entry; inbound is admitted only with matching state. A classic
    tenant extension program. *)

val conn_map : ?size:int -> unit -> Flexbpf.Ast.map_decl
val denied_map : Flexbpf.Ast.map_decl

(** [boundary]: sources below it are the protected ("inside") side. *)
val block : ?name:string -> boundary:int -> unit -> Flexbpf.Ast.element

val program : ?owner:string -> ?boundary:int -> unit -> Flexbpf.Ast.program

(** Inbound packets denied so far (checks both plain and
    tenant-namespaced map instances). *)
val denied_count : Targets.Device.t -> int64
