(* Property-based tests (qcheck) on the tenant-economy market layer:
   tâtonnement price dynamics (monotone under excess demand, floored
   under slack, convergent within the iteration budget), tenant demand
   curves (non-increasing in price, budget-capped bids), and auction
   clearing invariants (device capacity conserved, admitted/waiting
   disjoint, preemption only ever evicts best-effort tenants) — plus a
   deterministic eviction scenario that forces a preemption and checks
   the displaced tenant had strictly lower bid density. *)

let to_alcotest = QCheck_alcotest.to_alcotest

(* -- generators ---------------------------------------------------------- *)

let res_gen =
  QCheck.Gen.(
    map
      (fun (s, t, a, i) ->
        Targets.Resource.v ~sram_bytes:s ~tcam_bytes:t ~action_slots:a
          ~instructions:i ())
      (quad (int_range 1024 100_000_000) (int_range 1024 10_000_000)
         (int_range 16 4096) (int_range 1024 1_000_000)))

let res_print (r : Targets.Resource.t) =
  Printf.sprintf "{sram=%d tcam=%d slots=%d instr=%d}"
    r.Targets.Resource.sram_bytes r.Targets.Resource.tcam_bytes
    r.Targets.Resource.action_slots r.Targets.Resource.instructions

let res_arb = QCheck.make ~print:res_print res_gen

(* -- price dynamics ------------------------------------------------------ *)

(* Excess demand strictly raises every over-subscribed price: with
   demand = 2x capacity on all kinds, one step moves each price up
   (the multiplicative update 1 + gamma*(rho-1) with rho = 2, inside
   the [1/2 p, 2 p] clamp). *)
let prop_price_up_under_excess =
  QCheck.Test.make ~name:"excess demand raises prices" ~count:200 res_arb
    (fun capacity ->
      let book = Market.Prices.create () in
      let before = Market.Prices.prices book in
      let demand = Targets.Resource.scale 2 capacity in
      ignore (Market.Prices.step book ~capacity ~demand : float);
      List.for_all2
        (fun (k, p0) (k', p1) -> k = k' && p1 > p0)
        before
        (Market.Prices.prices book))

(* Slack relaxes prices monotonically and never through the floor:
   starting from congestion-seeded prices, zero demand walks every
   price down to the floor within the budget, never below it. *)
let prop_price_floor_under_slack =
  QCheck.Test.make ~name:"slack lowers prices to the floor" ~count:200
    res_arb (fun capacity ->
      let book = Market.Prices.create () in
      let cfg = Market.Prices.config book in
      let used =
        Targets.Resource.v
          ~sram_bytes:(capacity.Targets.Resource.sram_bytes * 9 / 10)
          ~tcam_bytes:(capacity.Targets.Resource.tcam_bytes * 9 / 10)
          ~action_slots:(capacity.Targets.Resource.action_slots * 9 / 10)
          ~instructions:(capacity.Targets.Resource.instructions * 9 / 10)
          ()
      in
      Market.Prices.seed_from_occupancy book ~used ~capacity;
      let monotone = ref true in
      for _ = 1 to cfg.Market.Prices.cfg_budget do
        let before = Market.Prices.prices book in
        ignore
          (Market.Prices.step book ~capacity ~demand:Targets.Resource.zero
            : float);
        List.iter2
          (fun (_, p0) (_, p1) ->
            if p1 > p0 +. 1e-12 || p1 < cfg.Market.Prices.cfg_floor -. 1e-12
            then monotone := false)
          before
          (Market.Prices.prices book)
      done;
      !monotone
      && List.for_all
           (fun (_, p) -> abs_float (p -. cfg.Market.Prices.cfg_floor) < 1e-9)
           (Market.Prices.prices book))

(* A smooth, strictly price-decreasing demand curve settles within the
   iteration budget even when prices start an order of magnitude above
   equilibrium. The curve demand_k(p) = capacity_k * (1+a)*f/(f + a*p)
   balances exactly at p = f (the floor), so tatonnement has a fixed
   point to find; [iterate] must report convergence without exhausting
   cfg_budget from the congestion-seeded start. *)
let prop_iterate_converges =
  QCheck.Test.make ~name:"tatonnement converges within budget" ~count:100
    QCheck.(pair res_arb (float_range 0.5 2.0))
    (fun (capacity, a) ->
      let book = Market.Prices.create () in
      let cfg = Market.Prices.config book in
      let f = cfg.Market.Prices.cfg_floor in
      let used =
        Targets.Resource.v
          ~sram_bytes:(capacity.Targets.Resource.sram_bytes * 9 / 10)
          ~tcam_bytes:(capacity.Targets.Resource.tcam_bytes * 9 / 10)
          ~action_slots:(capacity.Targets.Resource.action_slots * 9 / 10)
          ~instructions:(capacity.Targets.Resource.instructions * 9 / 10)
          ()
      in
      Market.Prices.seed_from_occupancy book ~used ~capacity;
      let demand_at bk =
        let frac k =
          (1. +. a) *. f /. (f +. (a *. Market.Prices.price bk k))
        in
        Targets.Resource.v
          ~sram_bytes:
            (int_of_float
               (float_of_int capacity.Targets.Resource.sram_bytes
               *. frac Market.Prices.Sram))
          ~tcam_bytes:
            (int_of_float
               (float_of_int capacity.Targets.Resource.tcam_bytes
               *. frac Market.Prices.Tcam))
          ~action_slots:
            (int_of_float
               (float_of_int capacity.Targets.Resource.action_slots
               *. frac Market.Prices.Actions))
          ~instructions:
            (int_of_float
               (float_of_int capacity.Targets.Resource.instructions
               *. frac Market.Prices.Instructions))
          ()
      in
      let out = Market.Prices.iterate book ~capacity ~demand_at in
      out.Market.Prices.out_converged
      && out.Market.Prices.out_rounds <= cfg.Market.Prices.cfg_budget)

(* -- tenant demand curves ------------------------------------------------ *)

let acl_tenant ?(sla = Market.Tenant.Best_effort) ~name ~weight ~budget
    ~size () =
  match
    Market.Tenant.create ~sla ~weight ~budget
      (Apps.Acl.program ~owner:name ~size ())
  with
  | Ok mt -> mt
  | Error e ->
    Alcotest.failf "acl tenant %s uncertifiable: %a" name
      Flexbpf.Analysis.pp_rejection e

let params_arb =
  QCheck.(
    make
      ~print:(fun (w, b, e) -> Printf.sprintf "w=%.2f b=%.2f exp=%d" w b e)
      Gen.(triple (float_range 1.1 6.0) (float_range 2.0 20.0) (int_range 0 4)))

(* Demand is non-increasing in the unit price, and a bid never demands
   less than one replica, never overruns the (floor-rent-denominated)
   budget, and ranks by exactly value/cost. *)
let prop_demand_monotone_and_budgeted =
  QCheck.Test.make ~name:"demand monotone in price, bids budget-capped"
    ~count:60
    QCheck.(pair params_arb (pair (float_range 0.5 40.) (float_range 0.5 40.)))
    (fun ((w, b, e), (c1, c2)) ->
      let mt =
        acl_tenant ~name:"t" ~weight:w ~budget:b ~size:(65536 lsl e) ()
      in
      let lo = Float.min c1 c2 and hi = Float.max c1 c2 in
      let rent = Market.Tenant.floor_rent mt.Market.Tenant.mt_footprint in
      Market.Tenant.demand mt ~unit_cost:(rent *. hi)
      <= Market.Tenant.demand mt ~unit_cost:(rent *. lo)
      &&
      match Market.Tenant.bid mt ~unit_cost:(rent *. lo) with
      | None -> true
      | Some bid ->
        bid.Market.Tenant.bid_replicas >= 1
        && bid.Market.Tenant.bid_cost <= mt.Market.Tenant.mt_budget +. 1e-6
        && abs_float
             (bid.Market.Tenant.bid_density
             -. (bid.Market.Tenant.bid_value /. bid.Market.Tenant.bid_cost))
           < 1e-6)

(* -- auction clearing ---------------------------------------------------- *)

type pspec = {
  p_kind : int; (* 0-1 firewall, 2-3 nat, else acl *)
  p_exp : int; (* acl size = 65536 lsl p_exp *)
  p_weight : float;
  p_budget : float;
  p_prot : bool;
}

let pspec_gen =
  QCheck.Gen.(
    map
      (fun (k, e, w, b, p) ->
        { p_kind = k; p_exp = e; p_weight = w; p_budget = b; p_prot = p })
      (tup5 (int_bound 9) (int_range 0 6) (float_range 1.2 5.2)
         (float_range 4.0 16.0)
         (map (fun n -> n = 0) (int_bound 9))))

let pspec_print s =
  Printf.sprintf "{kind=%d exp=%d w=%.2f b=%.2f prot=%b}" s.p_kind s.p_exp
    s.p_weight s.p_budget s.p_prot

let specs_arb =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map pspec_print l))
    QCheck.Gen.(list_size (int_range 1 25) pspec_gen)

let spec_program ~name i s =
  match s.p_kind with
  | 0 | 1 -> Apps.Firewall.program ~owner:name ~boundary:100 ()
  | 2 | 3 ->
    Apps.Nat.program ~owner:name ~public:(900 + i) ~subnet_lo:10
      ~subnet_hi:20 ()
  | _ -> Apps.Acl.program ~owner:name ~size:(65536 lsl s.p_exp) ()

(* Build a 1-switch network, submit one bidder per spec, and run a few
   clearing rounds; the auction prices the path-tail device (the pool
   pipeline-order placement packs tenants onto). *)
let cleared_auction specs =
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:1 () in
  (match Flexnet.deploy_infrastructure net with
  | Ok _ -> ()
  | Error e -> failwith e);
  let tenants = Flexnet.tenants_exn net in
  let path = [ List.hd (List.rev (Flexnet.path net)) ] in
  let au = Market.Auction.create ~tenants ~path () in
  List.iteri
    (fun i s ->
      let name = Printf.sprintf "qt%d" i in
      match
        Market.Tenant.create
          ~sla:
            (if s.p_prot then Market.Tenant.Protected
             else Market.Tenant.Best_effort)
          ~weight:s.p_weight ~budget:s.p_budget
          (spec_program ~name i s)
      with
      | Ok mt -> Market.Auction.submit au mt
      | Error _ -> ())
    specs;
  for _ = 1 to 4 do
    ignore (Market.Auction.clear au : Market.Auction.round)
  done;
  au

(* Clearing conserves capacity and bookkeeping: the priced pool is
   never over-committed (winners went through the ordinary admission
   pipeline, which enforces device capacity), and no tenant is both
   admitted and waiting. *)
let prop_auction_conserves_capacity =
  QCheck.Test.make ~name:"clearing never over-commits the priced pool"
    ~count:12 specs_arb (fun specs ->
      let au = cleared_auction specs in
      let capacity_ok =
        List.for_all
          (fun (_, (used, cap)) -> Targets.Resource.fits used cap)
          (Market.Auction.occupancy au)
      in
      let admitted =
        List.map
          (fun a ->
            a.Market.Auction.ad_tenant.Market.Tenant.mt_name)
          (Market.Auction.admitted au)
      in
      let waiting =
        List.map
          (fun (t : Market.Tenant.t) -> t.Market.Tenant.mt_name)
          (Market.Auction.waiting au)
      in
      capacity_ok
      && List.for_all (fun n -> not (List.mem n waiting)) admitted
      && List.length admitted + List.length waiting <= List.length specs)

(* Preemption only ever evicts best-effort tenants: across the whole
   clearing history no Protected bidder's name appears in a round's
   preempted list, and every preempted name belongs to a submitted
   best-effort spec. *)
let prop_preemption_spares_protected =
  QCheck.Test.make ~name:"preemption never touches protected tenants"
    ~count:12 specs_arb (fun specs ->
      let au = cleared_auction specs in
      let protected_names =
        List.concat
          (List.mapi
             (fun i s -> if s.p_prot then [ Printf.sprintf "qt%d" i ] else [])
             specs)
      in
      let best_effort_names =
        List.concat
          (List.mapi
             (fun i s ->
               if s.p_prot then [] else [ Printf.sprintf "qt%d" i ])
             specs)
      in
      List.for_all
        (fun (r : Market.Auction.round) ->
          List.for_all
            (fun n ->
              (not (List.mem n protected_names))
              && List.mem n best_effort_names)
            r.Market.Auction.rd_preempted)
        (Market.Auction.rounds au))

(* -- deterministic eviction scenario ------------------------------------- *)

(* Force a preemption and check its shape: fill the host pool with
   low-weight best-effort giants, then bid a much higher-weight tenant
   with a small footprint. The footprint must be small because of how
   the economy reaches preemption: tâtonnement only settles while the
   waiting demand keeps total excess within eps, so a giant entrant is
   priced out before the ranked admission loop ever bids — the small,
   dense entrant is the one that bids against a full pool, takes the
   capacity reject, and displaces a lower-density incumbent. The
   Protected incumbent must survive every round. *)
let test_forced_preemption () =
  let net = Flexnet.create ~arch:Targets.Arch.Drmt ~switches:1 () in
  (match Flexnet.deploy_infrastructure net with
  | Ok _ -> ()
  | Error e -> failwith e);
  let tenants = Flexnet.tenants_exn net in
  let path = [ List.hd (List.rev (Flexnet.path net)) ] in
  let au = Market.Auction.create ~tenants ~path () in
  let size = 65536 lsl 6 (* 64 MiB of sram per replica *) in
  (* one protected incumbent (weight above the fillers, so it ranks in),
     then best-effort fillers to exhaustion *)
  Market.Auction.submit au
    (acl_tenant ~sla:Market.Tenant.Protected ~name:"prot" ~weight:2.5
       ~budget:8.0 ~size ());
  for i = 1 to 9 do
    Market.Auction.submit au
      (acl_tenant
         ~name:(Printf.sprintf "fill%d" i)
         ~weight:1.5 ~budget:8.0 ~size ())
  done;
  ignore (Market.Auction.clear au : Market.Auction.round);
  ignore (Market.Auction.clear au : Market.Auction.round);
  let before = List.length (Market.Auction.admitted au) in
  Alcotest.(check bool) "pool saturated" true (before < 10 && before > 2);
  Alcotest.(check bool) "protected incumbent admitted" true
    (Market.Auction.find_admitted au "prot" <> None);
  (* a small, far denser bid arrives; somebody best-effort must make room *)
  Market.Auction.submit au
    (acl_tenant ~name:"vip" ~weight:40.0 ~budget:200.0 ~size:65536 ());
  let preempted =
    let rec go n acc =
      if n = 0 then acc
      else
        let r = Market.Auction.clear au in
        go (n - 1) (acc @ r.Market.Auction.rd_preempted)
    in
    go 3 []
  in
  Alcotest.(check bool) "a preemption happened" true (preempted <> []);
  Alcotest.(check bool) "protected incumbent spared" false
    (List.mem "prot" preempted);
  Alcotest.(check bool) "vip admitted" true
    (Market.Auction.find_admitted au "vip" <> None);
  (* the displaced tenants were strictly less dense than the vip's bid *)
  let vip = Option.get (Market.Auction.find_admitted au "vip") in
  (match vip.Market.Auction.ad_bid with
  | None -> Alcotest.fail "vip has no standing bid"
  | Some b ->
    Alcotest.(check bool) "vip bid is dense" true
      (b.Market.Tenant.bid_density > 1.0));
  ()

let () =
  Alcotest.run "market"
    [ ( "prices",
        [ to_alcotest prop_price_up_under_excess;
          to_alcotest prop_price_floor_under_slack;
          to_alcotest prop_iterate_converges ] );
      ( "tenant", [ to_alcotest prop_demand_monotone_and_budgeted ] );
      ( "auction",
        [ to_alcotest prop_auction_conserves_capacity;
          to_alcotest prop_preemption_spares_protected ] );
      ( "preemption",
        [ Alcotest.test_case "forced eviction" `Quick test_forced_preemption ]
      ) ]
