(** Reconfiguration execution over simulated time.

    - [Hitless] (runtime programmable): touched devices keep serving
      traffic with their old program; the new one becomes visible
      atomically per device when its op batch completes. Zero loss,
      "program changes complete within a second".
    - [Drain] (compile-time baseline): each touched device is isolated,
      reflashed with the full program, then redeployed; loss is
      proportional to drain + reflash time.

    The caller provides [apply], which performs the actual device
    mutations (e.g. running the incremental compiler); mutations happen
    under freeze, so traffic observes old-program semantics until the
    modelled completion time. *)

type mode = Hitless | Drain

type outcome = {
  started_at : float;
  finished_at : float;
  mode : mode;
  per_device_done : (string * float) list;
}

(** Serial op time per device id in the plan. *)
val per_device_times :
  Compiler.Plan.t -> Wiring.wired list -> (string * float) list

(** Execute [plan] starting now; [on_done] fires when every device has
    finished. *)
val execute :
  ?on_done:(outcome -> unit) -> sim:Netsim.Sim.t -> mode:mode ->
  wireds:Wiring.wired list -> plan:Compiler.Plan.t -> (unit -> unit) -> unit

(** Modelled completion latency of a plan in hitless mode. *)
val hitless_latency : devices:Targets.Device.t list -> Compiler.Plan.t -> float
