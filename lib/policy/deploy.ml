module D = Targets.Device

type error =
  | Compile_error of Compile.error
  | Runtime_error of string

let pp_error ppf = function
  | Compile_error e -> Compile.pp_error ppf e
  | Runtime_error msg -> Format.fprintf ppf "runtime: %s" msg

type deployment = {
  dp_name : string;
  dp_owner : string;
  dp_pol : Ast.pol;
  dp_devices : (D.t * Compile.lowered) list;
}

let install_ops lowered =
  List.concat_map
    (fun (id, lw) ->
      List.mapi
        (fun i el ->
          Compiler.Plan.Install
            { device = id; element = el; ctx = lw.Compile.lw_prog;
              order = i })
        lw.Compile.lw_prog.Flexbpf.Ast.pipeline)
    lowered

let deploy ?obs ?(owner = "infra") ~name ~devices pol =
  let assignment = List.map (fun (d, sw) -> (D.id d, sw)) devices in
  match Compile.compile ~owner ~name ~devices:assignment pol with
  | Error e -> Error (Compile_error e)
  | Ok lowered ->
    let devs = List.map fst devices in
    let by_id id = List.find (fun d -> D.id d = id) devs in
    let plan = Compiler.Plan.v ("policy:" ^ name) (install_ops lowered) in
    (* one caller-held window across every touched device: traffic sees
       the pre-policy network until all devices thaw *)
    List.iter D.freeze devs;
    let rollback_all () = List.iter D.rollback devs in
    (match Runtime.Reconfig.run_plan ?obs ~devices:devs plan with
     | Error msg ->
       rollback_all ();
       Error (Runtime_error msg)
     | Ok () ->
       (* rules are invisible to the old program (it never references
          the new tables), so installing inside the window is safe *)
       (match
          List.iter
            (fun (id, lw) ->
              let env = D.env (by_id id) in
              List.iter
                (fun (tbl, rules) ->
                  List.iter (Flexbpf.Interp.install_rule env tbl) rules)
                lw.Compile.lw_rules)
            lowered
        with
        | () ->
          List.iter D.thaw devs;
          Ok
            { dp_name = name; dp_owner = owner; dp_pol = pol;
              dp_devices =
                List.map (fun (id, lw) -> (by_id id, lw)) lowered }
        | exception Flexbpf.Interp.Eval_error msg ->
          rollback_all ();
          Error (Runtime_error msg)))

let undeploy ?obs dp =
  let devs = List.map fst dp.dp_devices in
  let ops =
    List.concat_map
      (fun (d, lw) ->
        List.map
          (fun el ->
            Compiler.Plan.Remove
              { device = D.id d;
                element_name = Flexbpf.Ast.element_name el })
          lw.Compile.lw_prog.Flexbpf.Ast.pipeline)
      dp.dp_devices
  in
  let plan = Compiler.Plan.v ("policy:" ^ dp.dp_name ^ ":remove") ops in
  List.iter D.freeze devs;
  match Runtime.Reconfig.run_plan ?obs ~devices:devs plan with
  | Ok () ->
    List.iter D.thaw devs;
    Ok ()
  | Error msg ->
    List.iter D.rollback devs;
    Error msg
