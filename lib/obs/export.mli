(** Exporters: JSONL traces, Prometheus-style text metrics, and human
    tables. All outputs are deterministically ordered (metrics by
    (name, labels), spans by id) and use fixed float formatting, so a
    seeded run exports byte-identical text. *)

(** Prometheus text exposition: one [# TYPE] line per metric family,
    names prefixed with [flexnet_] and sanitized ('.', '-' → '_');
    histograms export [_count], [_sum], and [{quantile="..."}] summary
    lines. *)
val prometheus : Metrics.t -> string

(** Aligned [metric | labels | value] table. *)
val metrics_table : Metrics.t -> string

(** One JSON object per span, in id order:
    [{"id":..,"parent":..,"name":..,"start":..,"end":..,"attrs":{..}}].
    Open spans export ["end":null]. *)
val trace_jsonl : Trace.t -> string

(** Aligned human view of the trace: id, parent, name, start, duration,
    attributes. *)
val trace_table : Trace.t -> string
