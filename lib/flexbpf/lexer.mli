(** Hand-rolled lexer for the FlexBPF surface syntax ([Syntax]).

    Identifiers may contain ['/'] so namespaced tenant names lex as one
    token; consequently the division operator must be surrounded by
    spaces. ['#'] starts a line comment. *)

type token =
  | IDENT of string
  | INT of int64
  | STRING of string
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | COMMA | COLON | SEMI | DOT | DOLLAR | ARROW | LT_ANGLE | GT_ANGLE
  | OP of string (* operators: + - * / % ~ ^ == != <= >= << >> && || += ! & | = *)
  | EOF

type pos = { line : int; col : int }

type t

exception Lex_error of string * pos

val create : string -> t

(** Position of the next token. *)
val pos : t -> pos

(** Look at the next token without consuming it. *)
val peek : t -> token * pos

(** Consume and return the next token. *)
val next : t -> token * pos

val token_to_string : token -> string
