(** Stateful firewall: outbound traffic from the protected side opens a
    flow entry; inbound traffic is admitted only when matching state
    exists. A classic tenant extension program. *)

open Flexbpf.Builder

let conn_map ?(size = 8192) () = map_decl ~key_arity:4 ~size "fw_conn"

let flow_out =
  [ field "ipv4" "src"; field "ipv4" "dst"; field "tcp" "sport";
    field "tcp" "dport" ]

(* inbound packets match the reversed tuple *)
let flow_in =
  [ field "ipv4" "dst"; field "ipv4" "src"; field "tcp" "dport";
    field "tcp" "sport" ]

(** [inside] predicate: packets whose ipv4.src is below [boundary] are
    from the protected side (the simulator gives protected hosts low
    ids). *)
let block ?(name = "stateful_fw") ~boundary () =
  let inside = field "ipv4" "src" <: const boundary in
  Flexbpf.Builder.block name
    [ if_ inside
        [ (* outbound: record state *)
          map_put "fw_conn" flow_out (const 1) ]
        [ (* inbound: admit only established *)
          when_ (not_ (map_get "fw_conn" flow_in >: const 0))
            [ map_incr "fw_denied" [ const 0 ]; drop ] ] ]

let denied_map = map_decl ~key_arity:1 ~size:4 "fw_denied"

let program ?(owner = "tenant") ?(boundary = 100) () =
  program ~owner "firewall"
    ~maps:[ conn_map (); denied_map ]
    [ block ~boundary () ]

(** Number of inbound packets dropped so far, read from device state. *)
let denied_count dev =
  match Targets.Device.map_state dev "fw_denied" with
  | Some st -> Flexbpf.State.get st [ 0L ]
  | None ->
    (* tenant-namespaced instance *)
    (match Targets.Device.map_state dev "tenant/fw_denied" with
     | Some st -> Flexbpf.State.get st [ 0L ]
     | None -> 0L)
