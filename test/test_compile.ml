(* The closure-compiled fast path (Flexbpf.Compile) against the
   reference interpreter (Flexbpf.Interp):

   - a qcheck differential harness: random programs, rule sets, and
     packets — interleaved with rule installs/removes and clock moves —
     must produce identical verdicts, packet mutations, map state, and
     stats counters under both engines;
   - unit tests that rule install/remove keeps the hash index and the
     pre-sorted candidate lists consistent, including across a device's
     freeze/thaw two-version swap (Runtime.Reconfig's mechanism);
   - the install-time rule-arity validation regression test. *)

open Flexbpf
open Flexbpf.Builder

let check = Alcotest.(check bool)
let check_port = Alcotest.(check (option int))
let to_alcotest = QCheck_alcotest.to_alcotest

(* -- Generators ------------------------------------------------------------ *)

(* Key expressions drawn from fields of sometimes-absent headers (vlan,
   tcp) so key evaluation faults are exercised, plus metadata. *)
let key_expr_gen =
  QCheck.Gen.oneofl
    [ field "ipv4" "src"; field "ipv4" "dst"; field "ipv4" "proto";
      field "tcp" "sport"; field "tcp" "dport"; field "vlan" "vid";
      meta "m0" ]

let expr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun v -> Ast.Const (Int64.of_int v)) (int_bound 64);
              key_expr_gen;
              return Ast.Time;
              map (fun p -> Ast.Param p) (oneofl [ "p"; "q"; "ghost" ]);
              map (fun k -> Ast.Map_get ("m0", [ Ast.Const (Int64.of_int k) ]))
                (int_bound 31) ]
        else
          oneof
            [ map3
                (fun op a b -> Ast.Bin (op, a, b))
                (oneofl
                   [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band;
                     Ast.Bor; Ast.Bxor; Ast.Shl; Ast.Shr; Ast.Eq; Ast.Neq;
                     Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Land; Ast.Lor ])
                (self (n / 2)) (self (n / 2));
              map2
                (fun op e -> Ast.Un (op, e))
                (oneofl [ Ast.Not; Ast.Neg; Ast.Bnot ])
                (self (n / 2));
              map2
                (fun alg es -> Ast.Hash (alg, es))
                (oneofl [ Ast.Crc16; Ast.Crc32; Ast.Identity ])
                (list_size (int_range 1 3) (self (n / 3))) ]))

let stmt_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Ast.Nop; return Ast.Drop;
              map2 (fun m e -> Ast.Set_meta (m, e)) (oneofl [ "m0"; "m1" ])
                expr_gen;
              map (fun e -> Ast.Set_field ("ipv4", "ttl", e)) expr_gen;
              map2
                (fun k v ->
                  Ast.Map_put ("m0", [ Ast.Const (Int64.of_int k) ],
                               Ast.Const (Int64.of_int v)))
                (int_bound 31) (int_bound 100);
              map2
                (fun k e ->
                  let k = Ast.Const (Int64.of_int k) in
                  Ast.Map_incr ("m1", [ k; k ], e))
                (int_bound 15) expr_gen;
              map (fun k -> Ast.Map_del ("m0", [ Ast.Const (Int64.of_int k) ]))
                (int_bound 31);
              map (fun e -> Ast.Forward e) expr_gen;
              map (fun d -> Ast.Punt d) (oneofl [ "alpha"; "beta" ]);
              map (fun args -> Ast.Call ("svc", args))
                (list_size (int_bound 2) expr_gen) ]
        in
        if n <= 0 then leaf
        else
          oneof
            [ leaf;
              map3
                (fun c th el -> Ast.If (c, th, el))
                expr_gen
                (list_size (int_bound 3) (self (n / 3)))
                (list_size (int_bound 2) (self (n / 3)));
              map2
                (fun k body -> Ast.Loop (1 + k, body))
                (int_bound 4)
                (list_size (int_range 1 3) (self (n / 3))) ]))

let table_gen =
  QCheck.Gen.(
    map2
      (fun keys act_body ->
        table "t0" ~keys
          ~actions:
            [ action "set_port" ~params:[ "p" ] [ forward (param "p") ];
              action "mark" ~params:[ "p"; "q" ]
                [ set_meta "m1" (param "p" +: param "q") ];
              action "custom" act_body;
              action "refuse" [ drop ] ]
          ~default:("refuse", []) ~size:128 ())
      (list_size (int_range 1 3)
         (pair key_expr_gen (oneofl [ Ast.Exact; Ast.Lpm; Ast.Ternary; Ast.Range ])))
      (list_size (int_bound 3) stmt_gen))

let program_gen =
  QCheck.Gen.(
    map3
      (fun enc blocks tbl ->
        let pipeline =
          List.mapi (fun i body -> block (Printf.sprintf "b%d" i) body) blocks
        in
        (* table position varies: before, between, or after the blocks *)
        let pipeline =
          match pipeline with
          | [] -> [ tbl ]
          | x :: rest -> x :: tbl :: rest
        in
        Builder.program "diff"
          ~maps:
            [ Builder.map_decl ~encoding:enc ~key_arity:1 ~size:64 "m0";
              Builder.map_decl ~key_arity:2 ~size:128 "m1" ]
          pipeline)
      (oneofl
         [ Ast.Enc_auto; Ast.Enc_registers; Ast.Enc_flow_state;
           Ast.Enc_stateful_table ])
      (list_size (int_range 0 3) (list_size (int_bound 4) stmt_gen))
      table_gen)

(* Patterns for a single key; values small so exact/lpm/ternary rules
   actually hit generated packets. *)
let pattern_gen =
  QCheck.Gen.(
    oneof
      [ return Ast.P_any;
        map (fun v -> Ast.P_exact (Int64.of_int v)) (int_bound 8);
        map2 (fun v len -> Ast.P_lpm (Int64.of_int v, len)) (int_bound 8)
          (oneofl [ 0; 8; 24; 30; 31; 32 ]);
        map2
          (fun v m -> Ast.P_ternary (Int64.of_int v, Int64.of_int m))
          (int_bound 8) (oneofl [ 0; 1; 3; 7; 0xFF ]);
        map2
          (fun a b ->
            Ast.P_range (Int64.of_int (min a b), Int64.of_int (max a b)))
          (int_bound 10) (int_bound 300) ])

(* A rule for a table of [arity] keys. Mostly well-formed; some have an
   unknown action or wrong argument arity so the differential harness
   covers the selection-time error paths too. *)
let rule_gen arity =
  QCheck.Gen.(
    map3
      (fun prio matches (act, args) ->
        { Ast.rule_priority = prio; matches; rule_action = act;
          rule_args = List.map Int64.of_int args })
      (int_bound 3)
      (list_repeat arity pattern_gen)
      (oneof
         [ map (fun p -> ("set_port", [ p ])) (int_bound 9);
           return ("mark", [ 2; 3 ]);
           return ("custom", []);
           return ("refuse", []);
           return ("set_port", []); (* arity mismatch *)
           return ("nonesuch", []) (* missing action *) ]))

type pkt_spec = {
  with_vlan : bool;
  with_ipv4 : bool;
  l4 : int; (* 0 = none, 1 = tcp, 2 = udp *)
  src : int;
  dst : int;
  sport : int;
  dport : int;
}

let pkt_spec_gen =
  QCheck.Gen.(
    map
      (fun ((with_vlan, with_ipv4, l4), (src, dst, sport, dport)) ->
        { with_vlan; with_ipv4; l4; src; dst; sport; dport })
      (pair
         (triple bool (frequencyl [ (9, true); (1, false) ]) (int_bound 2))
         (quad (int_bound 8) (int_bound 8) (int_bound 300) (int_bound 300))))

let mk_pkt spec =
  let hs =
    [ Netsim.Packet.ethernet ~src:(Int64.of_int spec.src)
        ~dst:(Int64.of_int spec.dst) () ]
    @ (if spec.with_vlan then [ Netsim.Packet.vlan ~vid:5L () ] else [])
    @ (if spec.with_ipv4 then
         [ Netsim.Packet.ipv4 ~src:(Int64.of_int spec.src)
             ~dst:(Int64.of_int spec.dst) () ]
       else [])
    @
    match spec.l4 with
    | 1 ->
      [ Netsim.Packet.tcp ~sport:(Int64.of_int spec.sport)
          ~dport:(Int64.of_int spec.dport) () ]
    | 2 ->
      [ Netsim.Packet.udp ~sport:(Int64.of_int spec.sport)
          ~dport:(Int64.of_int spec.dport) () ]
    | _ -> []
  in
  Netsim.Packet.create hs

type op =
  | Run of pkt_spec
  | Install of Ast.rule
  | RemoveAbove of int (* remove rules with priority >= n *)
  | Advance of int (* move the virtual clock *)

let op_gen arity =
  QCheck.Gen.(
    frequency
      [ (6, map (fun s -> Run s) pkt_spec_gen);
        (3, map (fun r -> Install r) (rule_gen arity));
        (1, map (fun n -> RemoveAbove n) (int_bound 3));
        (1, map (fun n -> Advance n) (int_bound 1000)) ])

let scenario_gen =
  QCheck.Gen.(
    program_gen >>= fun prog ->
    let arity =
      match Ast.find_table prog "t0" with
      | Some t -> List.length t.Ast.keys
      | None -> 1
    in
    map (fun ops -> (prog, ops)) (list_size (int_range 1 25) (op_gen arity)))

let scenario_print (prog, ops) =
  Printf.sprintf "%s\n-- %d ops: %s" (Syntax.print prog) (List.length ops)
    (String.concat ";"
       (List.map
          (function
            | Run s ->
              Printf.sprintf "run{vlan=%b,ipv4=%b,l4=%d,src=%d,dst=%d,sp=%d,dp=%d}"
                s.with_vlan s.with_ipv4 s.l4 s.src s.dst s.sport s.dport
            | Install r ->
              Printf.sprintf "install{prio=%d,action=%s,%d args,%d matches}"
                r.Ast.rule_priority r.Ast.rule_action
                (List.length r.Ast.rule_args)
                (List.length r.Ast.matches)
            | RemoveAbove n -> Printf.sprintf "remove>=%d" n
            | Advance n -> Printf.sprintf "advance+%d" n)
          ops))

let scenario_arb = QCheck.make ~print:scenario_print scenario_gen

(* -- Observations ----------------------------------------------------------- *)

let meta_list pkt =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) pkt.Netsim.Packet.meta []
  |> List.sort compare

let headers_list pkt =
  List.map
    (fun h -> (h.Netsim.Packet.hname, h.Netsim.Packet.fields))
    pkt.Netsim.Packet.headers

let results_agree (a : Interp.result) (b : Interp.result) =
  a.Interp.parse_ok = b.Interp.parse_ok
  && a.Interp.runtime_error = b.Interp.runtime_error
  && a.Interp.verdict.Interp.egress = b.Interp.verdict.Interp.egress
  && a.Interp.verdict.Interp.dropped = b.Interp.verdict.Interp.dropped
  && a.Interp.verdict.Interp.punts = b.Interp.verdict.Interp.punts

let envs_agree prog env_a env_b =
  List.for_all
    (fun (m : Ast.map_decl) ->
      State.snapshot (Interp.env_map env_a m.Ast.map_name)
      = State.snapshot (Interp.env_map env_b m.Ast.map_name))
    prog.Ast.maps
  && Netsim.Stats.Counters.to_list env_a.Interp.stats
     = Netsim.Stats.Counters.to_list env_b.Interp.stats

(* -- The differential property ----------------------------------------------- *)

let prop_compiled_equals_interpreted =
  QCheck.Test.make ~name:"compiled = interpreted (verdict, maps, stats)"
    ~count:300 scenario_arb
    (fun (prog, ops) ->
      let env_a = Interp.create_env prog in
      let env_b = Interp.create_env prog in
      let punts_a = ref [] and punts_b = ref [] in
      env_a.Interp.punt <- (fun d _ -> punts_a := d :: !punts_a);
      env_b.Interp.punt <- (fun d _ -> punts_b := d :: !punts_b);
      env_a.Interp.drpc <- (fun _ args -> List.fold_left Int64.add 1L args);
      env_b.Interp.drpc <- (fun _ args -> List.fold_left Int64.add 1L args);
      let compiled = Compile.compile env_b prog in
      let install env r =
        match Interp.install_rule env "t0" r with
        | () -> true
        | exception Interp.Eval_error _ -> false
      in
      List.for_all
        (fun op ->
          match op with
          | Install r ->
            (* both engines must agree on install-time validation *)
            install env_a r = install env_b r
          | RemoveAbove n ->
            Interp.remove_rules env_a "t0" (fun r -> r.Ast.rule_priority >= n);
            Interp.remove_rules env_b "t0" (fun r -> r.Ast.rule_priority >= n);
            true
          | Advance n ->
            env_a.Interp.now_us <- Int64.add env_a.Interp.now_us (Int64.of_int n);
            env_b.Interp.now_us <- Int64.add env_b.Interp.now_us (Int64.of_int n);
            true
          | Run spec ->
            let pkt_a = mk_pkt spec and pkt_b = mk_pkt spec in
            let ra = Interp.run env_a prog pkt_a in
            let rb = Compile.run compiled pkt_b in
            results_agree ra rb
            && meta_list pkt_a = meta_list pkt_b
            && headers_list pkt_a = headers_list pkt_b)
        ops
      && envs_agree prog env_a env_b
      && !punts_a = !punts_b)

(* The tiered datapath against the unbounded reference: same scenarios,
   but env_b's "t0" device tier is capped at 1..4 memoized winners, far
   below the generated rule sets — every lookup beyond the cap faults to
   the authoritative host tier and promotes under LRU pressure. Verdicts,
   packet mutations, map state, stats counters, and punts must all stay
   identical: residency is a latency property, never a semantic one. *)
let tiered_arb =
  QCheck.make
    ~print:(fun (sc, cap) ->
      Printf.sprintf "device-tier cap=%d\n%s" cap (scenario_print sc))
    QCheck.Gen.(pair scenario_gen (int_range 1 4))

let prop_tiered_equals_interpreted =
  QCheck.Test.make
    ~name:"tiered compiled = interpreted under eviction pressure" ~count:300
    tiered_arb
    (fun ((prog, ops), cap) ->
      let env_a = Interp.create_env prog in
      let env_b = Interp.create_env prog in
      let punts_a = ref [] and punts_b = ref [] in
      env_a.Interp.punt <- (fun d _ -> punts_a := d :: !punts_a);
      env_b.Interp.punt <- (fun d _ -> punts_b := d :: !punts_b);
      env_a.Interp.drpc <- (fun _ args -> List.fold_left Int64.add 1L args);
      env_b.Interp.drpc <- (fun _ args -> List.fold_left Int64.add 1L args);
      Interp.set_tier_capacity env_b "t0" cap;
      let compiled = Compile.compile env_b prog in
      let install env r =
        match Interp.install_rule env "t0" r with
        | () -> true
        | exception Interp.Eval_error _ -> false
      in
      List.for_all
        (fun op ->
          match op with
          | Install r -> install env_a r = install env_b r
          | RemoveAbove n ->
            Interp.remove_rules env_a "t0" (fun r -> r.Ast.rule_priority >= n);
            Interp.remove_rules env_b "t0" (fun r -> r.Ast.rule_priority >= n);
            true
          | Advance n ->
            env_a.Interp.now_us <- Int64.add env_a.Interp.now_us (Int64.of_int n);
            env_b.Interp.now_us <- Int64.add env_b.Interp.now_us (Int64.of_int n);
            true
          | Run spec ->
            let pkt_a = mk_pkt spec and pkt_b = mk_pkt spec in
            let ra = Interp.run env_a prog pkt_a in
            let rb = Compile.run compiled pkt_b in
            results_agree ra rb
            && meta_list pkt_a = meta_list pkt_b
            && headers_list pkt_a = headers_list pkt_b)
        ops
      && envs_agree prog env_a env_b
      && !punts_a = !punts_b
      && List.for_all
           (fun (s : Compile.tier_stat) -> s.Compile.ts_resident <= cap)
           (Compile.tier_stats compiled))

(* Recompiling mid-stream against live state must not change behaviour:
   a fresh Compile.t over the same env picks up installed rules and map
   contents. *)
let prop_recompile_transparent =
  QCheck.Test.make ~name:"recompile over live env is transparent" ~count:100
    scenario_arb
    (fun (prog, ops) ->
      let env_a = Interp.create_env prog in
      let env_b = Interp.create_env prog in
      let compiled = ref (Compile.compile env_b prog) in
      let steps = ref 0 in
      List.for_all
        (fun op ->
          incr steps;
          if !steps mod 5 = 0 then compiled := Compile.compile env_b prog;
          match op with
          | Install r ->
            (try Interp.install_rule env_a "t0" r
             with Interp.Eval_error _ -> ());
            (try Interp.install_rule env_b "t0" r
             with Interp.Eval_error _ -> ());
            true
          | RemoveAbove n ->
            Interp.remove_rules env_a "t0" (fun r -> r.Ast.rule_priority >= n);
            Interp.remove_rules env_b "t0" (fun r -> r.Ast.rule_priority >= n);
            true
          | Advance _ -> true
          | Run spec ->
            let pkt_a = mk_pkt spec and pkt_b = mk_pkt spec in
            results_agree (Interp.run env_a prog pkt_a)
              (Compile.run !compiled pkt_b))
        ops
      && envs_agree prog env_a env_b)

(* -- Install-time arity validation (regression) ------------------------------- *)

let two_key_prog =
  program "p"
    [ table "t"
        ~keys:[ exact (field "ipv4" "dst"); exact (field "ipv4" "src") ]
        ~actions:[ action "fwd" ~params:[ "p" ] [ forward (param "p") ] ]
        ~default:("nop", []) () ]

let test_install_arity_validated () =
  let env = Interp.create_env two_key_prog in
  (match
     Interp.install_rule env "t"
       (rule ~matches:[ exact_i 1 ] ~action:("fwd", [ 1 ]) ())
   with
   | () -> Alcotest.fail "under-arity rule must be rejected"
   | exception Interp.Eval_error msg ->
     check "error mentions pattern and key counts" true
       (let has sub =
          let n = String.length msg and m = String.length sub in
          let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
          go 0
        in
        has "1" && has "2"));
  (match
     Interp.install_rule env "t"
       (rule ~matches:[ exact_i 1; exact_i 2; exact_i 3 ] ~action:("fwd", [ 1 ]) ())
   with
   | () -> Alcotest.fail "over-arity rule must be rejected"
   | exception Interp.Eval_error _ -> ());
  (* correct arity accepted *)
  Interp.install_rule env "t"
    (rule ~matches:[ exact_i 1; exact_i 2 ] ~action:("fwd", [ 1 ]) ());
  Alcotest.(check int) "rule installed" 1
    (List.length (Interp.table_rules env "t"));
  (* unregistered tables keep the historical permissive behaviour *)
  Interp.install_rule env "unknown_table"
    (rule ~matches:[ exact_i 1 ] ~action:("x", []) ())

(* -- Index consistency under install/remove ----------------------------------- *)

let fwd_table =
  table "t"
    ~keys:[ exact (field "ipv4" "dst") ]
    ~actions:[ action "fwd" ~params:[ "p" ] [ forward (param "p") ] ]
    ~default:("nop", []) ()

let exec_compiled compiled dst =
  let pkt =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst ();
        Netsim.Packet.ipv4 ~src:1L ~dst ();
        Netsim.Packet.tcp ~sport:1L ~dport:2L () ]
  in
  (Compile.run compiled pkt).Interp.verdict.Interp.egress

let test_hash_index_tracks_rules () =
  let prog = program "p" [ fwd_table ] in
  let env = Interp.create_env prog in
  let compiled = Compile.compile env prog in
  check_port "no rules: default" None (exec_compiled compiled 2L);
  Interp.install_rule env "t" (rule ~matches:[ exact_i 2 ] ~action:("fwd", [ 7 ]) ());
  check_port "install picked up" (Some 7) (exec_compiled compiled 2L);
  Interp.install_rule env "t"
    (rule ~priority:5 ~matches:[ exact_i 2 ] ~action:("fwd", [ 9 ]) ());
  check_port "higher priority shadows" (Some 9) (exec_compiled compiled 2L);
  Interp.remove_rules env "t" (fun r -> r.Ast.rule_priority = 5);
  check_port "remove restores" (Some 7) (exec_compiled compiled 2L);
  Interp.remove_rules env "t" (fun _ -> true);
  check_port "empty again" None (exec_compiled compiled 2L)

(* Mixing a non-exact rule into an exact table must demote the hash
   index to a scan list — transparently. *)
let test_index_demotes_to_scan () =
  let prog = program "p" [ fwd_table ] in
  let env = Interp.create_env prog in
  let compiled = Compile.compile env prog in
  Interp.install_rule env "t" (rule ~matches:[ exact_i 2 ] ~action:("fwd", [ 7 ]) ());
  check_port "exact hit" (Some 7) (exec_compiled compiled 2L);
  Interp.install_rule env "t"
    (rule ~priority:1 ~matches:[ lpm_i 0 0 ] ~action:("fwd", [ 3 ]) ());
  check_port "wildcard lpm wins on other key" (Some 3) (exec_compiled compiled 9L);
  check_port "higher-priority lpm wins on exact key too" (Some 3)
    (exec_compiled compiled 2L);
  Interp.remove_rules env "t" (fun r -> r.Ast.rule_priority = 1);
  check_port "back to exact index" (Some 7) (exec_compiled compiled 2L)

(* Regression: a cached device-tier winner must not survive the deletion
   or priority update of the rule that produced it. Every install_rule /
   remove_rules bumps the per-env rules generation; the tier flushes on
   the next lookup (counted as demotions), so lookups after the change
   re-fault against the authoritative host tier. *)
let test_tier_invalidated_on_rule_change () =
  let prog = program "p" [ fwd_table ] in
  let env = Interp.create_env prog in
  Interp.set_tier_capacity env "t" 2;
  let compiled = Compile.compile env prog in
  for d = 1 to 4 do
    Interp.install_rule env "t"
      (rule ~matches:[ exact_i d ] ~action:("fwd", [ 10 + d ]) ())
  done;
  (* touch all four: only 2 stay resident, the rest were LRU-evicted *)
  for d = 1 to 4 do
    check_port "pre-change lookup" (Some (10 + d))
      (exec_compiled compiled (Int64.of_int d))
  done;
  (match Compile.tier_stats compiled with
   | [ s ] ->
     Alcotest.(check bool) "resident bounded by capacity" true
       (s.Compile.ts_resident <= 2);
     Alcotest.(check bool) "eviction pressure exercised" true
       (s.Compile.ts_evictions > 0)
   | _ -> Alcotest.fail "expected one tiered table");
  (* deletion: dst=2 was just looked up, so its winner is cache-warm *)
  Interp.remove_rules env "t" (fun r -> r.Ast.matches = [ Ast.P_exact 2L ]);
  check_port "deleted rule not served from stale cache" None
    (exec_compiled compiled 2L);
  (* priority update: a higher-priority rule over a cache-warm key *)
  check_port "warm the key" (Some 11) (exec_compiled compiled 1L);
  Interp.install_rule env "t"
    (rule ~priority:9 ~matches:[ exact_i 1 ] ~action:("fwd", [ 99 ]) ());
  check_port "priority update shadows the cached winner" (Some 99)
    (exec_compiled compiled 1L);
  (match Compile.tier_stats compiled with
   | [ s ] ->
     Alcotest.(check bool) "flushes counted as demotions" true
       (s.Compile.ts_demotions > s.Compile.ts_evictions)
   | _ -> Alcotest.fail "expected one tiered table")

(* -- Two-version swap: compiled path across freeze/thaw ------------------------ *)

let route_all_prog = Apps.L2l3.program ()

let test_device_swap_consistency () =
  (* device A runs the compiled path (Device.exec); device B is the
     interpreted reference over the same installs *)
  let mk () =
    let dev = Targets.Device.create ~id:"d" Targets.Arch.drmt in
    List.iteri
      (fun i el ->
        match Targets.Device.install dev ~ctx:route_all_prog ~order:i el with
        | Ok _ -> ()
        | Error r ->
          Alcotest.failf "install: %s" (Targets.Device.reject_to_string r))
      route_all_prog.Ast.pipeline;
    Interp.install_rule (Targets.Device.env dev) "ipv4_lpm"
      (Apps.L2l3.route_rule ~host_id:2 ~port:4);
    dev
  in
  let dev_a = mk () and dev_b = mk () in
  let exec_a dst =
    let pkt = mk_pkt { with_vlan = false; with_ipv4 = true; l4 = 1;
                       src = 1; dst; sport = 10; dport = 20 } in
    Netsim.Packet.set_meta pkt "in_port" 0L;
    (Targets.Device.exec dev_a ~now_us:0L pkt).Interp.verdict.Interp.egress
  in
  let exec_b dst =
    let pkt = mk_pkt { with_vlan = false; with_ipv4 = true; l4 = 1;
                       src = 1; dst; sport = 10; dport = 20 } in
    Netsim.Packet.set_meta pkt "in_port" 0L;
    let env = Targets.Device.env dev_b in
    env.Interp.now_us <- 0L;
    (Interp.run env (Targets.Device.active_program dev_b) pkt)
      .Interp.verdict.Interp.egress
  in
  check_port "pre-swap engines agree" (exec_b 2) (exec_a 2);
  (* two-version swap on both: drop the ACL, change a route *)
  Targets.Device.freeze dev_a;
  Targets.Device.freeze dev_b;
  List.iter
    (fun dev ->
      check "uninstall acl" true (Targets.Device.uninstall dev "acl");
      Interp.remove_rules (Targets.Device.env dev) "ipv4_lpm" (fun _ -> true);
      Interp.install_rule (Targets.Device.env dev) "ipv4_lpm"
        (Apps.L2l3.route_rule ~host_id:2 ~port:8))
    [ dev_a; dev_b ];
  (* during the window: old program, new rules (rule changes are not
     frozen — they are data, not program) *)
  check "both frozen" true
    (Targets.Device.is_frozen dev_a && Targets.Device.is_frozen dev_b);
  check_port "mid-window engines agree" (exec_b 2) (exec_a 2);
  check_port "mid-window sees new rule" (Some 8) (exec_a 2);
  Targets.Device.thaw dev_a;
  Targets.Device.thaw dev_b;
  check_port "post-swap engines agree" (exec_b 2) (exec_a 2);
  check_port "post-swap routes via new rule" (Some 8) (exec_a 2);
  (* rule index still live on the new compiled program *)
  Interp.remove_rules (Targets.Device.env dev_a) "ipv4_lpm" (fun _ -> true);
  Interp.remove_rules (Targets.Device.env dev_b) "ipv4_lpm" (fun _ -> true);
  check_port "post-swap removal tracked" (exec_b 2) (exec_a 2)

let test_frozen_program_isolated () =
  (* during the window the compiled frozen program keeps executing even
     though the live pipeline changed *)
  let dev = Targets.Device.create ~id:"d" Targets.Arch.drmt in
  let ctx = program "ctx" [ fwd_table ] in
  (match Targets.Device.install dev ~ctx ~order:0 fwd_table with
   | Ok _ -> ()
   | Error r -> Alcotest.failf "install: %s" (Targets.Device.reject_to_string r));
  Interp.install_rule (Targets.Device.env dev) "t"
    (rule ~matches:[ exact_i 2 ] ~action:("fwd", [ 7 ]) ());
  let exec dst =
    let pkt = mk_pkt { with_vlan = false; with_ipv4 = true; l4 = 1;
                       src = 1; dst; sport = 1; dport = 2 } in
    (Targets.Device.exec dev ~now_us:0L pkt).Interp.verdict.Interp.egress
  in
  check_port "live table forwards" (Some 7) (exec 2);
  Targets.Device.freeze dev;
  check "uninstall under freeze" true (Targets.Device.uninstall dev "t");
  check_port "frozen program still forwards" (Some 7) (exec 2);
  Targets.Device.thaw dev;
  check_port "after thaw the table is gone" None (exec 2)

let () =
  Alcotest.run "compile"
    [ ( "differential",
        [ to_alcotest prop_compiled_equals_interpreted;
          to_alcotest prop_tiered_equals_interpreted;
          to_alcotest prop_recompile_transparent ] );
      ( "install_validation",
        [ Alcotest.test_case "rule arity checked" `Quick
            test_install_arity_validated ] );
      ( "rule_index",
        [ Alcotest.test_case "hash index tracks rules" `Quick
            test_hash_index_tracks_rules;
          Alcotest.test_case "demotes to scan" `Quick test_index_demotes_to_scan;
          Alcotest.test_case "tier invalidated on rule change" `Quick
            test_tier_invalidated_on_rule_change ] );
      ( "two_version_swap",
        [ Alcotest.test_case "device swap consistency" `Quick
            test_device_swap_consistency;
          Alcotest.test_case "frozen program isolated" `Quick
            test_frozen_program_isolated ] ) ]
