type action = (Ast.field * int64) list
type leaf = action list

type t =
  | Leaf of leaf
  | Node of { f : Ast.field; v : int64; tru : t; fls : t }

exception Star_diverged

let drop = Leaf []
let ident = Leaf [ [] ]

let compare_action (a : action) (b : action) = compare a b

let sort_leaf l = List.sort_uniq compare_action l

let leaf l = Leaf (sort_leaf l)

let node f v tru fls = if tru = fls then tru else Node { f; v; tru; fls }

let test_compare (f1, v1) (f2, v2) =
  let c = compare (Ast.field_rank f1) (Ast.field_rank f2) in
  if c <> 0 then c else Int64.compare v1 v2

(* [b] over [a]: merge sorted assignments, [b]'s bindings win *)
let rec compose_action (a : action) (b : action) =
  match a, b with
  | [], b -> b
  | a, [] -> a
  | (fa, va) :: ta, (fb, vb) :: tb ->
    let c = compare (Ast.field_rank fa) (Ast.field_rank fb) in
    if c < 0 then (fa, va) :: compose_action ta b
    else if c > 0 then (fb, vb) :: compose_action a tb
    else (fb, vb) :: compose_action ta tb

(* specialize to f = v: same-field tests are decided (equal value:
   true branch; other values: false branch); the order invariant means
   no test of [f] hides below a later-ranked root *)
let rec restrict f v d =
  match d with
  | Leaf _ -> d
  | Node n ->
    let c = compare (Ast.field_rank n.f) (Ast.field_rank f) in
    if c < 0 then node n.f n.v (restrict f v n.tru) (restrict f v n.fls)
    else if c > 0 then d
    else if n.v = v then restrict f v n.tru
    else restrict f v n.fls

(* both branches of [d] under the test [(f, v)], assuming [(f, v)] is
   <= d's root test in the canonical order *)
let branch (f, v) d =
  match d with
  | Leaf _ -> (d, d)
  | Node n ->
    if n.f = f && n.v = v then (n.tru, n.fls)
    else if Ast.field_rank n.f = Ast.field_rank f then
      (* same field, larger value: decided false when f = v *)
      (restrict f v d, d)
    else (d, d)

let min_root a b =
  match a, b with
  | Node n, Leaf _ -> (n.f, n.v)
  | Leaf _, Node n -> (n.f, n.v)
  | Node n1, Node n2 ->
    if test_compare (n1.f, n1.v) (n2.f, n2.v) <= 0 then (n1.f, n1.v)
    else (n2.f, n2.v)
  | Leaf _, Leaf _ -> invalid_arg "Fdd.min_root: two leaves"

(* pointwise combination of two FDDs; the workhorse behind union and
   predicate connectives. [op] combines leaves. *)
let rec apply op a b =
  match a, b with
  | Leaf la, Leaf lb -> Leaf (op la lb)
  | _ ->
    let ((f, v) as t) = min_root a b in
    let at, af = branch t a in
    let bt, bf = branch t b in
    node f v (apply op at bt) (apply op af bf)

let leaf_union la lb = sort_leaf (la @ lb)

let union a b = apply leaf_union a b

let rec map_leaves g = function
  | Leaf l -> Leaf (g l)
  | Node n -> node n.f n.v (map_leaves g n.tru) (map_leaves g n.fls)

(* keep answers where the test agrees with [sense], drop elsewhere *)
let gate (f, v) sense d =
  let tbdd =
    if sense then Node { f; v; tru = ident; fls = drop }
    else Node { f; v; tru = drop; fls = ident }
  in
  apply (fun bl l -> if bl = [] then [] else l) tbdd d

(* if-then-else on FDDs whose subtrees may already test fields ranked
   before (f, v) — the union re-threads everything into order *)
let cond (f, v) dt df =
  if dt = df then dt else union (gate (f, v) true dt) (gate (f, v) false df)

(* run [d] on a packet already rewritten by [act]: bound fields decide
   their tests, unbound tests persist; leaves compose behind [act] *)
let rec seq_action act d =
  match d with
  | Leaf l -> Leaf (sort_leaf (List.map (compose_action act) l))
  | Node n ->
    (match List.assoc_opt n.f act with
     | Some w -> seq_action act (if w = n.v then n.tru else n.fls)
     | None -> node n.f n.v (seq_action act n.tru) (seq_action act n.fls))

let rec seq a b =
  match a with
  | Leaf l ->
    List.fold_left (fun acc act -> union acc (seq_action act b)) drop l
  | Node n -> cond (n.f, n.v) (seq n.tru b) (seq n.fls b)

let star_budget = 200

let star d =
  let rec fix acc i =
    if i > star_budget then raise Star_diverged
    else
      let acc' = union ident (seq d acc) in
      if acc' = acc then acc else fix acc' (i + 1)
  in
  fix ident 0

let bool_leaf b = if b then [ [] ] else []

let rec of_pred = function
  | Ast.True -> ident
  | Ast.False -> drop
  | Ast.Test (f, v) -> Node { f; v; tru = ident; fls = drop }
  | Ast.And (a, b) ->
    apply
      (fun x y -> bool_leaf (x <> [] && y <> []))
      (of_pred a) (of_pred b)
  | Ast.Or (a, b) ->
    apply
      (fun x y -> bool_leaf (x <> [] || y <> []))
      (of_pred a) (of_pred b)
  | Ast.Neg a -> map_leaves (fun l -> bool_leaf (l = [])) (of_pred a)

let rec of_pol = function
  | Ast.Filter p -> of_pred p
  | Ast.Mod (f, v) -> Leaf [ [ (f, v) ] ]
  | Ast.Union (p, q) -> union (of_pol p) (of_pol q)
  | Ast.Seq (p, q) -> seq (of_pol p) (of_pol q)
  | Ast.Star p -> star (of_pol p)

let apply_action pkt act =
  List.fold_left (fun p (f, v) -> Sem.set p f v) pkt act

let rec eval_leaf d pkt =
  match d with
  | Leaf l -> l
  | Node n ->
    if Sem.get pkt n.f = n.v then eval_leaf n.tru pkt
    else eval_leaf n.fls pkt

let eval d pkt =
  List.sort_uniq Sem.compare_packet
    (List.map (apply_action pkt) (eval_leaf d pkt))

let by_rank fs =
  List.sort (fun a b -> compare (Ast.field_rank a) (Ast.field_rank b)) fs

let test_fields d =
  let acc = ref [] in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
      if not (List.mem n.f !acc) then acc := n.f :: !acc;
      go n.tru;
      go n.fls
  in
  go d;
  by_rank !acc

let mod_fields d =
  let acc = ref [] in
  let rec go = function
    | Leaf l ->
      List.iter
        (List.iter (fun (f, _) ->
             if not (List.mem f !acc) then acc := f :: !acc))
        l
    | Node n ->
      go n.tru;
      go n.fls
  in
  go d;
  by_rank !acc

let paths d =
  let acc = ref [] in
  let rec go pos = function
    | Leaf l -> acc := (List.rev pos, l) :: !acc
    | Node n ->
      go ((n.f, n.v) :: pos) n.tru;
      go pos n.fls
  in
  go [] d;
  List.rev !acc

let rec size = function
  | Leaf _ -> 0
  | Node n -> 1 + size n.tru + size n.fls

let equal (a : t) (b : t) = a = b

let pp_action ppf (act : action) =
  if act = [] then Format.fprintf ppf "id"
  else
    Format.fprintf ppf "%s"
      (String.concat ","
         (List.map
            (fun (f, v) -> Printf.sprintf "%s:=%Ld" (Ast.field_name f) v)
            act))

let pp_leaf ppf l =
  if l = [] then Format.fprintf ppf "drop"
  else
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
         pp_action)
      l

let rec pp ppf = function
  | Leaf l -> pp_leaf ppf l
  | Node n ->
    Format.fprintf ppf "@[<v 2>%s=%Ld?@ %a@ : %a@]" (Ast.field_name n.f) n.v
      pp n.tru pp n.fls
