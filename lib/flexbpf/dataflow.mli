(** A generic monotone dataflow / abstract-interpretation framework
    over [Ast.program] (§2, §3.1).

    FlexBPF programs are structured — no goto, statically bounded
    loops — so every pipeline element lowers to a small reducible
    {!Cfg.t}. Analyses plug an abstract domain ({!DOMAIN}) into the
    worklist fixpoint {!Solver} (forward or backward, with optional
    widening and edge pruning); the solution maps every CFG node to the
    abstract state entering and leaving it.

    Clients in this codebase:
    - the [Verifier]'s value-range interval pass is re-hosted on the
      forward solver (diagnostics unchanged from the original
      recursive-walk implementation, which property tests check);
    - {!Shard_safety} classifies every map's datapath access pattern
      for the future domain-sharded datapath and the two-version swap
      in [Runtime.Reconfig];
    - {!Cost} computes a static per-packet WCET certificate that
      [Compiler.Plan] cross-checks against its placement heuristic.

    Everything is pure and deterministic: the fixpoint is independent
    of the solver's initial worklist order. *)

module SMap : Map.S with type key = string

(** Constant folding with [Interp] semantics: total division
    ([x/0 = 0], [x%0 = 0]), shift amounts masked to 6 bits,
    comparisons and logical operators producing 0/1. [None] when the
    expression touches packet, map, parameter, or clock state. *)
val const_eval : Ast.expr -> int64 option

(** [const_eval] through FlexBPF truthiness (non-zero is true). *)
val const_truth : Ast.expr -> bool option

(** {1 The control-flow graph} *)

module Cfg : sig
  type branch = {
    cond : Ast.expr;
    br_stmt : Ast.stmt; (* the whole [If] *)
    mutable then_dst : int; (* successor taken when [cond] holds *)
    mutable else_dst : int;
  }

  type kind =
    | Entry
    | Exit
    | Atom of Ast.stmt (* any non-control statement *)
    | Branch of branch
    | Join (* post-[If] merge *)
    | Loop_head of int * Ast.stmt (* bound, the whole [Loop] *)
    | Loop_exit
    | Key of Ast.expr * int (* table key expression *)
    | Action_select (* table lookup / dispatch point *)
    | Action_entry of string

  type node = {
    id : int;
    kind : kind;
    path : string;
        (* verifier-compatible diagnostic location, e.g.
           ["elem/stmt.1.then.0"] or ["tbl/key.2"] *)
    vr_iters : int; (* product of [max 1 bound] of enclosing loops *)
    cost_iters : int; (* product of [max 0 bound] of enclosing loops *)
  }

  type t = {
    elem : string;
    nodes : node array; (* ids are topological over forward edges *)
    entry : int;
    exit : int;
    succs : int list array; (* forward edges; a DAG without back edges *)
    preds : int list array;
    back_succs : int list array; (* loop body end -> loop head *)
    back_preds : int list array;
  }

  val stmt_path : string -> int -> string
  val sub_path : string -> string -> int -> string

  (** Lower one pipeline element. *)
  val of_element : Ast.element -> t

  (** One CFG per pipeline element, in pipeline order. *)
  val of_program : Ast.program -> t list

  (** Nodes with an incoming back edge (loop heads): where the solver
      applies widening. *)
  val is_widening_point : t -> int -> bool
end

(** {1 The solver} *)

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t

  (** [widen previous next] — applied at widening points once the
      per-node visit budget is spent. [join] is a correct (if
      non-accelerating) default on finite-height lattices. *)
  val widen : t -> t -> t
end

type direction = Forward | Backward

module Solver (D : DOMAIN) : sig
  type solution = {
    input : D.t array; (* fixpoint state entering each node *)
    output : D.t array; (* state leaving it: [transfer node input] *)
    steps : int; (* worklist pops until stabilization *)
  }

  (** Worklist fixpoint. [init] seeds the start node (entry when
      forward, exit when backward); every other node's input is the
      join of its predecessors' outputs. [edge_live cfg src dst]
      filters edges (dead edges contribute nothing); [order] permutes
      the initial worklist — the fixpoint is the same for any
      permutation, which the property tests rely on. [widen_after]
      bounds visits per widening point before [D.widen] kicks in
      (default 8). Transfer functions must be monotone and strict on
      [D.bottom] when bottom means "unreachable". *)
  val solve :
    ?direction:direction -> ?widen_after:int -> ?include_back:bool ->
    ?edge_live:(Cfg.t -> int -> int -> bool) -> ?order:int array -> Cfg.t ->
    init:D.t -> transfer:(Cfg.node -> D.t -> D.t) -> solution

  val forward :
    ?widen_after:int -> ?edge_live:(Cfg.t -> int -> int -> bool) ->
    ?order:int array -> Cfg.t -> init:D.t ->
    transfer:(Cfg.node -> D.t -> D.t) -> solution

  val backward :
    ?widen_after:int -> ?edge_live:(Cfg.t -> int -> int -> bool) ->
    ?order:int array -> Cfg.t -> init:D.t ->
    transfer:(Cfg.node -> D.t -> D.t) -> solution

  (** Longest-path style solve over the loop-free skeleton: back edges
      are ignored, so loop bodies are charged through the static
      [cost_iters] multiplier on their nodes instead of by
      iteration. *)
  val acyclic :
    ?edge_live:(Cfg.t -> int -> int -> bool) -> ?order:int array -> Cfg.t ->
    init:D.t -> transfer:(Cfg.node -> D.t -> D.t) -> solution
end

(** {1 Shard-safety: map access classification} *)

module Shard_safety : sig
  type access = Read | Incr | Put | Del

  type site = {
    s_access : access;
    s_path : string; (* diagnostic path of the access *)
    s_rmw : bool; (* written value derives from a read of the same map *)
  }

  (** How a map behaves under domain sharding (§3.4): [Read_only]
      replicas need no coordination; [Commutative] — every datapath
      write is an increment with no self-referential value, so
      shard-local replicas merge by sum (the count-min/sketch idiom);
      [Exclusive] — puts, deletes, or read-modify-write require a
      single owner shard per keyspace. *)
  type map_class = Read_only | Commutative | Exclusive

  val class_rank : map_class -> int
  val class_to_string : map_class -> string

  module SiteSet : Set.S with type elt = site

  type map_report = {
    mr_map : string;
    mr_class : map_class;
    mr_sites : site list; (* deterministic order *)
  }

  (** The [Parallel_safety] certificate: per-map classes plus the
      program-wide verdict (worst class over all maps; [Read_only]
      when the program touches none). *)
  type t = {
    ps_program : string;
    ps_owner : string;
    ps_maps : map_report list;
        (* declared maps in declaration order, then
           accessed-but-undeclared (foreign) maps sorted by name *)
    ps_verdict : map_class;
  }

  val classify : SiteSet.t -> map_class
  val analyze : Ast.program -> t
  val pp_verdict : Format.formatter -> map_class -> unit
  val pp : Format.formatter -> t -> unit

  (** {2 Framework plumbing (exposed for tests)} *)

  module Facts : DOMAIN with type t = SiteSet.t SMap.t

  val transfer : Cfg.node -> Facts.t -> Facts.t
  val facts_of_element : Cfg.t -> Facts.t
end

(** {1 Static per-packet cost (WCET)} *)

module Cost : sig
  type work = Unreach | Work of int

  module W : DOMAIN with type t = work

  (** Work units per statement; matches [Analysis.stmt_cost] so the
      unpruned longest path reproduces the planner heuristic
      exactly. *)
  val atom_cost : Ast.stmt -> int

  val node_cost : Cfg.node -> int

  (** Edge filter killing the untaken arm of branches whose condition
      constant-folds. *)
  val live_edge : Cfg.t -> int -> int -> bool

  (** Worst-case work units of one element; with
      [~edge_live:live_edge], statically dead branches are pruned. *)
  val element_wcet : ?edge_live:(Cfg.t -> int -> int -> bool) -> Cfg.t -> int

  (** The static cost certificate. [cc_heuristic] equals
      [Analysis.max_cycles]; [cc_certified <= cc_heuristic], strictly
      smaller exactly when a branch arm was statically dead. *)
  type t = {
    cc_program : string;
    cc_certified : int;
    cc_heuristic : int;
    cc_elements : (string * int * int) list; (* element, certified, heuristic *)
    cc_pruned : string list; (* If paths with a statically dead arm *)
  }

  val analyze : Ast.program -> t
  val pp : Format.formatter -> t -> unit
end
