(** Packets with structured headers.

    Headers are structured (name + field assoc) rather than raw bytes:
    the FlexBPF parser model operates on declared header types, and
    structured packets keep the whole stack inspectable in tests. Field
    values are [int64] regardless of declared width; widths are enforced
    by the FlexBPF type checker, not at the packet level. *)

type header = { hname : string; mutable fields : (string * int64 ref) list }
(** Field values live in mutable cells: [set_field] writes in place, so
    the list spine never changes after construction — fast-path code may
    cache a field's cell for as long as the list identity is unchanged. *)

type t = {
  uid : int; (* unique per packet, for tracing *)
  mutable headers : header list; (* outermost first *)
  meta : (string, int64 ref) Hashtbl.t;
    (* per-packet metadata; ref cells so repeated writes to one key
       mutate in place (cacheable like header-field cells) *)
  size : int; (* bytes on the wire *)
  born : float; (* injection time *)
  mutable epoch : int; (* program version that processed this packet *)
  mutable shape_cache : string option; (* memoised [shape]; do not set —
                                          maintained by push/pop_header *)
}

val create : ?size:int -> ?born:float -> header list -> t

(** Reset the global uid counter (test isolation). *)
val reset_uid_counter : unit -> unit

val header : t -> string -> header option
val has_header : t -> string -> bool

val field : t -> string -> string -> int64 option

(** @raise Invalid_argument when the field is absent. *)
val field_exn : t -> string -> string -> int64

(** @raise Invalid_argument when the header or field is absent. *)
val set_field : t -> string -> string -> int64 -> unit

(** [set_field] on an already-resolved header — the compiled fast path
    caches header lookups and writes through this. [hname] only labels
    the error; messages match [set_field]'s.
    @raise Invalid_argument when the field is absent. *)
val set_header_field : hname:string -> header -> string -> int64 -> unit

(** Push as the new outermost header. *)
val push_header : t -> header -> unit

(** Remove all headers with the given name. *)
val pop_header : t -> string -> unit

(** The header-name sequence as one string ("ethernet/ipv4/tcp").
    Parser acceptance depends only on this shape, so it serves as a
    compact memo key; computed once per packet. *)
val shape : t -> string

val meta : t -> string -> int64 option
val meta_default : t -> string -> int64 -> int64
val set_meta : t -> string -> int64 -> unit

(** The cell bound to [key], created (holding 0) if absent — for code
    that writes the same key repeatedly and wants to cache the cell. *)
val meta_cell : t -> string -> int64 ref

(** {2 Standard header constructors}

    Addresses are plain integers: the simulator identifies hosts by
    small ints, keeping routing tables and match rules readable. *)

val ethernet : src:int64 -> dst:int64 -> ?ethertype:int64 -> unit -> header
val vlan : vid:int64 -> ?ethertype:int64 -> unit -> header

val ipv4 :
  src:int64 -> dst:int64 -> ?proto:int64 -> ?ttl:int64 -> ?ecn:int64 ->
  ?dscp:int64 -> unit -> header

val tcp :
  sport:int64 -> dport:int64 -> ?seqno:int64 -> ?ackno:int64 ->
  ?flags:int64 -> unit -> header

val udp : sport:int64 -> dport:int64 -> unit -> header

val tcp_flag_syn : int64
val tcp_flag_ack : int64
val tcp_flag_fin : int64

(** Canonical (src, dst, proto, sport, dport) tuple. *)
val five_tuple : t -> int64 * int64 * int64 * int64 * int64

(** Deterministic hash of the five-tuple (ECMP, flow tables). *)
val flow_hash : t -> int

val pp : Format.formatter -> t -> unit
