(** The central controller: the pilot of a runtime programmable network
    (§3.4).

    Maintains the global view (topology, devices, app locations),
    exposes app-level management operations keyed by URI, dispatches
    data-plane digests (punts) to subscribed handlers, and optionally
    journals every management operation through a Raft cluster so a
    controller-node failure never loses acknowledged operations. *)

open Flexbpf

type app_kind = Infrastructure | Tenant_extension | Utility

type app = {
  uri : Uri.t;
  kind : app_kind;
  mutable program : Ast.program;
  mutable replicas : Targets.Device.t list; (* devices hosting it *)
  mutable handle : Runtime.Migration.handle option;
  registered_at : float;
}

type t = {
  sim : Netsim.Sim.t;
  topo : Netsim.Topology.t;
  wireds : Runtime.Wiring.wired list;
  apps : (string, app) Hashtbl.t; (* uri string -> app *)
  apis : (string, Device_api.t) Hashtbl.t; (* device id -> api session *)
  subscriptions : (string, string -> Netsim.Packet.t -> unit) Hashtbl.t;
  mutable digests : (float * string * int) list; (* time, digest, pkt uid *)
  mutable raft : Raft.t option;
  mutable journal_fallbacks : int; (* ops executed with no live leader *)
  mutable reresolutions : int; (* elements re-injected after a restart *)
}

let devices t = List.map (fun w -> w.Runtime.Wiring.device) t.wireds

(* every management operation traces into the simulation's scope *)
let obs t = Netsim.Sim.obs t.sim

let create ~sim ~topo ~wireds =
  let t =
    { sim; topo; wireds; apps = Hashtbl.create 16; apis = Hashtbl.create 16;
      subscriptions = Hashtbl.create 8; digests = []; raft = None;
      journal_fallbacks = 0; reresolutions = 0 }
  in
  (* digest bus: every wired device punts into the controller *)
  List.iter
    (fun w ->
      w.Runtime.Wiring.on_punt <-
        (fun digest pkt ->
          t.digests <-
            (Netsim.Sim.now sim, digest, pkt.Netsim.Packet.uid) :: t.digests;
          match Hashtbl.find_opt t.subscriptions digest with
          | Some f -> f digest pkt
          | None -> ()))
    wireds;
  t

(** Attach a Raft cluster: management operations are proposed to the
    leader before execution (journaled command log). *)
let enable_ha t raft = t.raft <- Some raft

let journal t command =
  match t.raft with
  | None -> ()
  | Some raft ->
    if not (Raft.propose raft command) then
      t.journal_fallbacks <- t.journal_fallbacks + 1

(** Element-level API session for a device (cached). *)
let api t dev =
  let id = Targets.Device.id dev in
  match Hashtbl.find_opt t.apis id with
  | Some s -> s
  | None ->
    let s = Device_api.connect dev in
    Hashtbl.replace t.apis id s;
    s

(* -- App registry ------------------------------------------------------ *)

let register_app t ~uri ~kind ~program ~replicas =
  let app =
    { uri; kind; program; replicas; handle = None;
      registered_at = Netsim.Sim.now t.sim }
  in
  Hashtbl.replace t.apps (Uri.to_string uri) app;
  journal t ("register " ^ Uri.to_string uri);
  app

let lookup t uri = Hashtbl.find_opt t.apps (Uri.to_string uri)

let unregister_app t uri =
  journal t ("unregister " ^ Uri.to_string uri);
  Hashtbl.remove t.apps (Uri.to_string uri)

let app_locations t uri =
  match lookup t uri with
  | None -> []
  | Some app -> List.map Targets.Device.id app.replicas

let all_apps t =
  Hashtbl.fold (fun _ app acc -> app :: acc) t.apps []
  |> List.sort (fun a b -> compare (Uri.to_string a.uri) (Uri.to_string b.uri))

(* -- App-level management operations ---------------------------------- *)

type op_error = Unknown_app | Unknown_device | Operation_failed of string

let pp_op_error ppf = function
  | Unknown_app -> Fmt.string ppf "unknown app"
  | Unknown_device -> Fmt.string ppf "unknown device"
  | Operation_failed s -> Fmt.pf ppf "operation failed: %s" s

let find_device t dev_id =
  List.find_opt (fun d -> Targets.Device.id d = dev_id) (devices t)

(** Inject an app's elements onto a specific device (defense summoning,
    replica creation). Builds one install plan and hands it to the
    reconfiguration engine, so a partial failure rolls the whole
    injection back. *)
let inject_on t uri ~device =
  match lookup t uri with
  | None -> Error Unknown_app
  | Some app ->
    let installed = Targets.Device.installed_names device in
    (match
       List.find_opt
         (fun el -> List.mem (Ast.element_name el) installed)
         app.program.Ast.pipeline
     with
     | Some el ->
       Error
         (Operation_failed
            ("already installed: " ^ Ast.element_name el))
     | None ->
       let plan =
         Compiler.Plan.v
           (Printf.sprintf "inject-%s" (Uri.to_string uri))
           (List.mapi
              (fun i el ->
                Compiler.Plan.Install
                  { device = Targets.Device.id device; element = el;
                    ctx = app.program; order = 1000 + i })
              app.program.Ast.pipeline)
       in
       Obs.Trace.with_span
         (Obs.Scope.trace (obs t))
         "controller.inject"
         ~attrs:
           [ ("app", Obs.Trace.S (Uri.to_string uri));
             ("device", Obs.Trace.S (Targets.Device.id device)) ]
         (fun parent ->
           match
             Runtime.Reconfig.run_plan ~obs:(obs t) ~parent
               ~devices:[ device ] plan
           with
           | Error e -> Error (Operation_failed e)
           | Ok () ->
             app.replicas <- device :: app.replicas;
             journal t
               (Printf.sprintf "inject %s on %s" (Uri.to_string uri)
                  (Targets.Device.id device));
             Ok ()))

(** Retire an app replica from a device (defense retirement, scale-in). *)
let retire_from t uri ~device =
  match lookup t uri with
  | None -> Error Unknown_app
  | Some app ->
    let plan =
      Compiler.Plan.v
        (Printf.sprintf "retire-%s" (Uri.to_string uri))
        (List.map
           (fun el ->
             Compiler.Plan.Remove
               { device = Targets.Device.id device;
                 element_name = Ast.element_name el })
           app.program.Ast.pipeline)
    in
    Obs.Trace.with_span
      (Obs.Scope.trace (obs t))
      "controller.retire"
      ~attrs:
        [ ("app", Obs.Trace.S (Uri.to_string uri));
          ("device", Obs.Trace.S (Targets.Device.id device)) ]
      (fun parent ->
        ignore
          (Runtime.Reconfig.run_plan ~obs:(obs t) ~parent ~devices:[ device ]
             plan));
    app.replicas <-
      List.filter
        (fun d -> Targets.Device.id d <> Targets.Device.id device)
        app.replicas;
    journal t
      (Printf.sprintf "retire %s from %s" (Uri.to_string uri)
         (Targets.Device.id device));
    Ok ()

(** Migrate a stateful app between devices using the data-plane swing
    protocol. The app must have a migration handle (set at deploy). *)
let migrate t uri ~to_device ?(on_done = fun () -> ()) () =
  match lookup t uri with
  | None -> Error Unknown_app
  | Some app ->
    (match app.handle with
     | None -> Error (Operation_failed "app has no migration handle")
     | Some handle ->
       let map_names =
         List.map (fun (m : Ast.map_decl) -> m.map_name) app.program.Ast.maps
       in
       journal t
         (Printf.sprintf "migrate %s to %s" (Uri.to_string uri)
            (Targets.Device.id to_device));
       Runtime.Migration.swing ~sim:t.sim handle ~dst:to_device ~map_names
         ~on_done:(fun _ ->
           app.replicas <- [ to_device ];
           on_done ())
         ();
       Ok ())

(** Expand a named resource of an app: grow a map's declared size and
    reinstall (the "expand a certain resource type" URI operation). *)
let expand_map t uri ~map_name ~factor =
  match lookup t uri with
  | None -> Error Unknown_app
  | Some app ->
    let changed = ref false in
    let maps =
      List.map
        (fun (m : Ast.map_decl) ->
          if m.map_name = map_name then begin
            changed := true;
            { m with map_size = m.map_size * factor }
          end
          else m)
        app.program.Ast.maps
    in
    if not !changed then Error (Operation_failed ("no map " ^ map_name))
    else begin
      app.program <- { app.program with Ast.maps };
      journal t
        (Printf.sprintf "expand %s/%s x%d" (Uri.to_string uri) map_name factor);
      Ok ()
    end

(* -- Failure handling --------------------------------------------------- *)

(** A device crashed: drop its cached API session (it is gone on the
    device side) and journal the event. App replica lists keep the
    device — it is expected back; [handle_device_restart] re-resolves. *)
let handle_device_crash t dev_id =
  Hashtbl.remove t.apis dev_id;
  journal t ("device-crash " ^ dev_id)

(** A crashed device restarted: reconnect lazily and re-resolve every
    app that names it as a replica. A mid-update crash rolled the
    device back to its old program, so elements injected during the
    lost window are gone — reinstall whatever is missing. *)
let handle_device_restart t dev_id =
  Hashtbl.remove t.apis dev_id;
  (match find_device t dev_id with
   | None -> ()
   | Some dev ->
     List.iter
       (fun app ->
         if
           List.exists
             (fun d -> Targets.Device.id d = dev_id)
             app.replicas
         then
           (* one single-op plan per missing element: a rejected
              element must not block re-resolving its siblings *)
           List.iteri
             (fun i el ->
               let name = Ast.element_name el in
               if not (List.mem name (Targets.Device.installed_names dev))
               then
                 match
                   Runtime.Reconfig.run_plan ~obs:(obs t) ~devices:[ dev ]
                     (Compiler.Plan.v "reresolve"
                        [ Compiler.Plan.Install
                            { device = dev_id; element = el;
                              ctx = app.program; order = 1000 + i } ])
                 with
                 | Ok () -> t.reresolutions <- t.reresolutions + 1
                 | Error _ -> ())
             app.program.Ast.pipeline)
       (all_apps t));
  journal t ("device-restart " ^ dev_id)

(** Elements re-injected by restart re-resolution. *)
let reresolutions t = t.reresolutions

(** Subscribe to a fault injector's device events so crashes and
    restarts are handled automatically. *)
let watch_faults t faults =
  Netsim.Faults.subscribe faults (fun dev_id ev ->
      match ev with
      | `Crash -> handle_device_crash t dev_id
      | `Restart -> handle_device_restart t dev_id)

(* -- Digests ----------------------------------------------------------- *)

let subscribe t ~digest f = Hashtbl.replace t.subscriptions digest f

let digest_count t name =
  List.length (List.filter (fun (_, d, _) -> d = name) t.digests)

(* -- Global view -------------------------------------------------------- *)

type device_summary = {
  ds_id : string;
  ds_kind : Targets.Arch.kind;
  ds_elements : int;
  ds_utilization : float;
  ds_processed : int;
}

let view t =
  List.map
    (fun d ->
      { ds_id = Targets.Device.id d;
        ds_kind = Targets.Device.kind d;
        ds_elements = List.length (Targets.Device.installed_names d);
        ds_utilization = Targets.Device.utilization d;
        ds_processed = Targets.Device.processed d })
    (devices t)

let pp_view ppf t =
  List.iter
    (fun s ->
      Fmt.pf ppf "%-12s %-12s elements=%-3d util=%3.0f%% processed=%d@."
        s.ds_id
        (Targets.Arch.kind_to_string s.ds_kind)
        s.ds_elements
        (100. *. s.ds_utilization)
        s.ds_processed)
    (view t)
