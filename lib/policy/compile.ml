module F = Flexbpf.Ast

type error =
  | Value_out_of_range of Ast.field * int64
  | Switch_mod of int64
  | Multicast of int64 * int
  | Switch_dependent
  | Star_diverged

let pp_error ppf = function
  | Value_out_of_range (f, v) ->
    Format.fprintf ppf "value %Ld does not fit field %s (%d bits)" v
      (Ast.field_name f) (Ast.field_bits f)
  | Switch_mod v ->
    Format.fprintf ppf
      "sw := %Ld: policies cannot modify the switch location" v
  | Multicast (sw, n) ->
    Format.fprintf ppf
      "multicast leaf (%d copies) at switch %Ld: FlexBPF has a single \
       egress"
      n sw
  | Switch_dependent ->
    Format.fprintf ppf
      "switch-dependent term in a uniform lowering (tenant policies may \
       not test sw)"
  | Star_diverged ->
    Format.fprintf ppf "iteration fixpoint exceeded the budget"

let error_to_string e = Format.asprintf "%a" pp_error e

let field_expr = function
  | Ast.Sw -> invalid_arg "Policy.Compile.field_expr: Sw is sliced away"
  | Ast.Pt -> F.Meta "in_port"
  | Ast.Vlan -> F.Meta "vlan_vid"
  | Ast.Eth_src -> F.Field ("ethernet", "src")
  | Ast.Eth_dst -> F.Field ("ethernet", "dst")
  | Ast.Ip_src -> F.Field ("ipv4", "src")
  | Ast.Ip_dst -> F.Field ("ipv4", "dst")
  | Ast.Proto -> F.Field ("ipv4", "proto")
  | Ast.Tp_src -> F.Field ("tcp", "sport")
  | Ast.Tp_dst -> F.Field ("tcp", "dport")

(* -- Validation --------------------------------------------------------- *)

let in_range f v =
  let bits = Ast.field_bits f in
  Int64.compare v 0L >= 0
  && (bits >= 63 || Int64.compare v (Int64.shift_left 1L bits) < 0)

let validate pol =
  let exception Bad of error in
  let value f v = if not (in_range f v) then raise (Bad (Value_out_of_range (f, v))) in
  let rec pred = function
    | Ast.True | Ast.False -> ()
    | Ast.Test (f, v) -> value f v
    | Ast.And (a, b) | Ast.Or (a, b) ->
      pred a;
      pred b
    | Ast.Neg a -> pred a
  in
  let rec pol_ = function
    | Ast.Filter p -> pred p
    | Ast.Mod (Ast.Sw, v) -> raise (Bad (Switch_mod v))
    | Ast.Mod (f, v) -> value f v
    | Ast.Union (p, q) | Ast.Seq (p, q) ->
      pol_ p;
      pol_ q
    | Ast.Star p -> pol_ p
  in
  match pol_ pol with () -> Ok () | exception Bad e -> Error e

let fdd_of pol =
  match validate pol with
  | Error e -> Error e
  | Ok () ->
    (match Fdd.of_pol pol with
     | fdd -> Ok fdd
     | exception Fdd.Star_diverged -> Error Star_diverged)

(* -- Shared leaf lowering ----------------------------------------------- *)

(* statements for one action's non-[Pt] writes, in canonical order *)
let mod_stmts (act : Fdd.action) =
  List.filter_map
    (fun (f, v) ->
      match f with
      | Ast.Sw | Ast.Pt -> None
      | Ast.Vlan -> Some (F.Set_meta ("vlan_vid", F.Const v))
      | _ ->
        (match field_expr f with
         | F.Field (h, fld) -> Some (F.Set_field (h, fld, F.Const v))
         | _ -> None))
    act

(* full location semantics: a leaf that does not write [Pt] sends the
   packet out of the port it arrived on *)
let egress_stmts ~overlay (act : Fdd.action) =
  match List.assoc_opt Ast.Pt act with
  | Some v -> [ F.Forward (F.Const v) ]
  | None -> if overlay then [] else [ F.Forward (F.Meta "in_port") ]

let leaf_stmts ~overlay ~sw (l : Fdd.leaf) =
  match l with
  | [] -> Ok [ F.Drop ]
  | [ act ] ->
    let stmts = mod_stmts act @ egress_stmts ~overlay act in
    Ok (if stmts = [] then [ F.Nop ] else stmts)
  | _ :: _ :: _ -> Error (Multicast (sw, List.length l))

(* -- Table form --------------------------------------------------------- *)

type lowered = {
  lw_sw : int64;
  lw_prog : F.program;
  lw_rules : (string * F.rule list) list;
}

let result_map f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: xs -> (match f x with Ok y -> go (y :: acc) xs | Error e -> Error e)
  in
  go [] l

let slice_table ~owner ~name ~sw fdd =
  let sliced = Fdd.restrict Ast.Sw sw fdd in
  let key_fields =
    match Fdd.test_fields sliced with [] -> [ Ast.Pt ] | fs -> fs
  in
  let paths = Fdd.paths sliced in
  (* one action per distinct leaf, named by first occurrence *)
  let leaves = ref [] in
  let leaf_name l =
    match List.assoc_opt l !leaves with
    | Some n -> n
    | None ->
      let n =
        if l = [] then "pol_drop"
        else Printf.sprintf "pol_act%d" (List.length !leaves)
      in
      leaves := (l, n) :: !leaves;
      n
  in
  let rules_r =
    result_map
      (fun (pos, l) ->
        match leaf_stmts ~overlay:false ~sw l with
        | Error e -> Error e
        | Ok _ ->
          let matches =
            List.map
              (fun f ->
                match List.assoc_opt f pos with
                | Some v -> F.P_exact v
                | None -> F.P_any)
              key_fields
          in
          Ok (matches, leaf_name l))
      paths
  in
  match rules_r with
  | Error e -> Error e
  | Ok protorules ->
    let n = List.length protorules in
    let rules =
      List.mapi
        (fun i (matches, act) ->
          { F.rule_priority = n - i; matches; rule_action = act;
            rule_args = [] })
        protorules
    in
    let actions =
      List.rev_map
        (fun (l, aname) ->
          match leaf_stmts ~overlay:false ~sw l with
          | Ok body -> { F.act_name = aname; params = []; body }
          | Error _ -> assert false)
        !leaves
    in
    let actions =
      if List.exists (fun a -> a.F.act_name = "pol_drop") actions then
        actions
      else
        { F.act_name = "pol_drop"; params = []; body = [ F.Drop ] }
        :: actions
    in
    let table =
      F.Table
        { F.tbl_name = name;
          keys = List.map (fun f -> (field_expr f, F.Exact)) key_fields;
          tbl_actions = actions;
          default_action = ("pol_drop", []);
          tbl_size = max 64 n }
    in
    let prog = Flexbpf.Builder.program ~owner name [ table ] in
    Ok { lw_sw = sw; lw_prog = prog; lw_rules = [ (name, rules) ] }

let lower ?(owner = "infra") ~name ~sw pol =
  match fdd_of pol with
  | Error e -> Error e
  | Ok fdd -> slice_table ~owner ~name ~sw fdd

let compile ?(owner = "infra") ~name ~devices pol =
  match fdd_of pol with
  | Error e -> Error e
  | Ok fdd ->
    result_map
      (fun (dev, sw) ->
        match slice_table ~owner ~name ~sw fdd with
        | Ok lw -> Ok (dev, lw)
        | Error e -> Error e)
      devices

(* -- Block form --------------------------------------------------------- *)

let rec block_stmts ~overlay ~sw fdd =
  match (fdd : Fdd.t) with
  | Fdd.Leaf l -> leaf_stmts ~overlay ~sw l
  | Fdd.Node n ->
    (match block_stmts ~overlay ~sw n.tru with
     | Error e -> Error e
     | Ok tru ->
       (match block_stmts ~overlay ~sw n.fls with
        | Error e -> Error e
        | Ok fls ->
          Ok [ F.If (F.Bin (F.Eq, field_expr n.f, F.Const n.v), tru, fls) ]))

let lower_block ?(owner = "infra") ?(overlay = false) ?sw ~name pol =
  match fdd_of pol with
  | Error e -> Error e
  | Ok fdd ->
    let sliced, sw_label =
      match sw with
      | Some s -> (Fdd.restrict Ast.Sw s fdd, s)
      | None -> (fdd, -1L)
    in
    if sw = None && List.mem Ast.Sw (Fdd.test_fields sliced) then
      Error Switch_dependent
    else
      (match block_stmts ~overlay ~sw:sw_label sliced with
       | Error e -> Error e
       | Ok body ->
         Ok
           (Flexbpf.Builder.program ~owner name
              [ F.Block { F.blk_name = name; blk_body = body } ]))

(* -- Static check ------------------------------------------------------- *)

type report = {
  rp_fields : Ast.field list;
  rp_fdd_size : int;
  rp_switches : int64 list;
  rp_rules : (int64 * int) list;
}

let check pol =
  match fdd_of pol with
  | Error e -> Error e
  | Ok fdd ->
    let switches = Ast.values_of Ast.Sw pol in
    let slices = switches @ [ -1L ] in
    (match
       result_map
         (fun sw ->
           match slice_table ~owner:"infra" ~name:"policy" ~sw fdd with
           | Ok lw ->
             Ok (sw, List.length (List.assoc "policy" lw.lw_rules))
           | Error e -> Error e)
         slices
     with
     | Error e -> Error e
     | Ok rules ->
       Ok
         { rp_fields = Ast.fields_of pol;
           rp_fdd_size = Fdd.size fdd;
           rp_switches = switches;
           rp_rules = rules })
