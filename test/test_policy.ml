(* The policy layer: FDD normalization against the denotational
   semantics, parser/printer round-trips, and the differential harness
   proving that both lowered shapes (table form with installed rules,
   block form with nested Ifs) agree with the policy semantics
   packet-for-packet. Ends with end-to-end deploys: atomic two-version
   installation on devices and tenant admission of policy terms. *)

module PA = Policy.Ast
module PS = Policy.Sem

let to_alcotest t =
  (* seed the qcheck runs so the differential harness is deterministic *)
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

(* -- Generators --------------------------------------------------------- *)

let all_fields =
  [ PA.Sw; PA.Pt; PA.Vlan; PA.Eth_src; PA.Eth_dst; PA.Ip_src; PA.Ip_dst;
    PA.Proto; PA.Tp_src; PA.Tp_dst ]

(* a small value universe so random tests and packets collide often *)
let value_gen = QCheck.Gen.map Int64.of_int (QCheck.Gen.int_bound 3)

let field_gen = QCheck.Gen.oneofl all_fields

let mod_field_gen =
  QCheck.Gen.oneofl (List.filter (fun f -> f <> PA.Sw) all_fields)

(* cap term sizes: star/seq normalization over a 10-field diagram is
   super-linear, and a handful of connectives already exercises every
   code path (leaf merge, branch re-threading, fixpoint) *)
let pred_gen =
  QCheck.Gen.sized_size (QCheck.Gen.int_bound 8)
  @@ QCheck.Gen.fix (fun self n ->
         let open QCheck.Gen in
         if n <= 0 then
           oneof
             [ return PA.True; return PA.False;
               map2 (fun f v -> PA.Test (f, v)) field_gen value_gen ]
         else
           frequency
             [ (1, map2 (fun f v -> PA.Test (f, v)) field_gen value_gen);
               (2, map2 (fun a b -> PA.And (a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> PA.Or (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun a -> PA.Neg a) (self (n - 1))) ])

let pol_gen =
  QCheck.Gen.sized_size (QCheck.Gen.int_bound 10)
  @@ QCheck.Gen.fix (fun self n ->
         let open QCheck.Gen in
         if n <= 0 then
           oneof
             [ map (fun p -> PA.Filter p) (pred_gen |> map (fun p -> p));
               map2 (fun f v -> PA.Mod (f, v)) mod_field_gen value_gen ]
         else
           frequency
             [ (2, map (fun p -> PA.Filter p) pred_gen);
               (2, map2 (fun f v -> PA.Mod (f, v)) mod_field_gen value_gen);
               (3, map2 (fun a b -> PA.Union (a, b)) (self (n / 2)) (self (n / 2)));
               (3, map2 (fun a b -> PA.Seq (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun a -> PA.Star a) (self (n / 3))) ])

let pol_arb =
  QCheck.make ~print:Policy.Syntax.print
    (QCheck.Gen.map (fun p -> p) pol_gen)

let packet_gen =
  QCheck.Gen.map
    (fun vs -> PS.of_list (List.combine all_fields vs))
    (QCheck.Gen.list_repeat (List.length all_fields) value_gen)

let packet_print p = Format.asprintf "%a" PS.pp_packet p

let pol_packet_arb =
  QCheck.make
    ~print:(fun (p, pkt) -> Policy.Syntax.print p ^ " / " ^ packet_print pkt)
    QCheck.Gen.(pair pol_gen packet_gen)

(* -- FDD vs denotational semantics -------------------------------------- *)

let prop_fdd_agrees_with_sem =
  QCheck.Test.make ~name:"fdd normalization preserves the semantics"
    ~count:500 pol_packet_arb (fun (pol, pkt) ->
      match Policy.Fdd.of_pol pol with
      | exception Policy.Fdd.Star_diverged -> true
      | fdd ->
        let expected = PS.eval pol pkt in
        let got = Policy.Fdd.eval fdd pkt in
        expected = got)

(* equal FDDs are decidable semantic equality: p + p == p, and
   sequencing with id is invisible *)
let prop_fdd_union_idempotent =
  QCheck.Test.make ~name:"fdd: p + p normalizes to p" ~count:300 pol_arb
    (fun pol ->
      match Policy.Fdd.of_pol pol with
      | exception Policy.Fdd.Star_diverged -> true
      | fdd -> Policy.Fdd.equal (Policy.Fdd.union fdd fdd) fdd)

let prop_fdd_seq_id =
  QCheck.Test.make ~name:"fdd: p; id normalizes to p" ~count:300 pol_arb
    (fun pol ->
      match Policy.Fdd.of_pol (PA.Seq (pol, PA.id)) with
      | exception Policy.Fdd.Star_diverged -> true
      | fdd ->
        (match Policy.Fdd.of_pol pol with
         | exception Policy.Fdd.Star_diverged -> true
         | direct -> Policy.Fdd.equal fdd direct))

(* -- Concrete syntax ---------------------------------------------------- *)

let prop_syntax_roundtrip =
  QCheck.Test.make ~name:"printer/parser round-trip" ~count:500 pol_arb
    (fun pol -> PA.equal_pol (Policy.Syntax.parse (Policy.Syntax.print pol)) pol)

let test_parse_errors () =
  let bad input =
    match Policy.Syntax.parse_result input with
    | Ok _ -> Alcotest.failf "parsed: %s" input
    | Error _ -> ()
  in
  bad "";
  bad "fwd";
  bad "filter pt == 1";
  bad "pt := 1 extra";
  bad "filter unknown.field = 3";
  bad "(fwd 1";
  bad "fwd 1 ; ; fwd 2"

let test_parse_comments () =
  let p =
    Policy.Syntax.parse "# a comment\nfilter pt = 1; fwd 2 # trailing\n"
  in
  Alcotest.(check bool) "parsed through comments" true
    (PA.equal_pol p (PA.Seq (PA.Filter (PA.Test (PA.Pt, 1L)), PA.fwd 2L)))

(* -- Differential: lowered FlexBPF vs the reference semantics ----------- *)

let to_netsim (pkt : PS.packet) =
  let get f = PS.get pkt f in
  let np =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:(get PA.Eth_src) ~dst:(get PA.Eth_dst) ();
        Netsim.Packet.ipv4 ~src:(get PA.Ip_src) ~dst:(get PA.Ip_dst)
          ~proto:(get PA.Proto) ();
        Netsim.Packet.tcp ~sport:(get PA.Tp_src) ~dport:(get PA.Tp_dst) () ]
  in
  Netsim.Packet.set_meta np "in_port" (get PA.Pt);
  Netsim.Packet.set_meta np "vlan_vid" (get PA.Vlan);
  np

(* did the program's run turn the packet into [out]? *)
let agrees_with (out : PS.packet) (res : Flexbpf.Interp.result) np =
  let get f = PS.get out f in
  let m name = Option.value (Netsim.Packet.meta np name) ~default:0L in
  let fld h f = Option.value (Netsim.Packet.field np h f) ~default:0L in
  (not res.Flexbpf.Interp.verdict.dropped)
  && res.Flexbpf.Interp.verdict.egress = Some (Int64.to_int (get PA.Pt))
  && m "vlan_vid" = get PA.Vlan
  && fld "ethernet" "src" = get PA.Eth_src
  && fld "ethernet" "dst" = get PA.Eth_dst
  && fld "ipv4" "src" = get PA.Ip_src
  && fld "ipv4" "dst" = get PA.Ip_dst
  && fld "ipv4" "proto" = get PA.Proto
  && fld "tcp" "sport" = get PA.Tp_src
  && fld "tcp" "dport" = get PA.Tp_dst

let run_lowered prog rules pkt =
  let env = Flexbpf.Interp.create_env prog in
  List.iter
    (fun el ->
      match el with
      | Flexbpf.Ast.Table t -> Flexbpf.Interp.register_table env t
      | Flexbpf.Ast.Block _ -> ())
    prog.Flexbpf.Ast.pipeline;
  List.iter
    (fun (tbl, rs) ->
      List.iter (Flexbpf.Interp.install_rule env tbl) rs)
    rules;
  let np = to_netsim pkt in
  let res = Flexbpf.Interp.run env prog np in
  (res, np)

(* the reference output for [pol] at switch [sw]: NetKAT's denotation
   of the policy on the packet pinned to that switch *)
let reference pol ~sw pkt =
  PS.eval pol (PS.set pkt PA.Sw sw)

let differential ~form (pol, pkt) =
  let sw = Int64.rem (PS.get pkt PA.Proto) 3L in
  (* Sw is not a real packet dimension on the wire; pin it *)
  let pkt = PS.set pkt PA.Sw sw in
  let lowered =
    match form with
    | `Table ->
      (match Policy.Compile.lower ~name:"p" ~sw pol with
       | Ok lw -> Ok (lw.Policy.Compile.lw_prog, lw.Policy.Compile.lw_rules)
       | Error e -> Error e)
    | `Block ->
      (match Policy.Compile.lower_block ~name:"p" ~sw pol with
       | Ok prog -> Ok (prog, [])
       | Error e -> Error e)
  in
  match lowered with
  | Error _ ->
    (* typed rejection (multicast, range, divergence) is a legitimate
       outcome; miscompilation is not *)
    true
  | Ok (prog, rules) ->
    let expected = reference pol ~sw pkt in
    let res, np = run_lowered prog rules pkt in
    (match expected with
     | [] ->
       res.Flexbpf.Interp.verdict.dropped
       || res.Flexbpf.Interp.verdict.egress = None
     | [ out ] -> agrees_with out res np
     | _ :: _ :: _ ->
       (* a multicast leaf must have been rejected at lowering *)
       false)

let prop_table_differential =
  QCheck.Test.make
    ~name:"lowered table+rules agree with the policy semantics" ~count:400
    pol_packet_arb
    (differential ~form:`Table)

let prop_block_differential =
  QCheck.Test.make
    ~name:"lowered block agrees with the policy semantics" ~count:400
    pol_packet_arb
    (differential ~form:`Block)

(* -- Typed lowering errors ---------------------------------------------- *)

let test_lowering_errors () =
  let expect_err name pol pred =
    match Policy.Compile.lower ~name:"p" ~sw:0L pol with
    | Ok _ -> Alcotest.failf "%s: lowered" name
    | Error e ->
      if not (pred e) then
        Alcotest.failf "%s: wrong error %s" name
          (Policy.Compile.error_to_string e)
  in
  expect_err "vlan range"
    (PA.Mod (PA.Vlan, 5000L))
    (function Policy.Compile.Value_out_of_range (PA.Vlan, _) -> true | _ -> false);
  expect_err "sw mod"
    (PA.Mod (PA.Sw, 1L))
    (function Policy.Compile.Switch_mod 1L -> true | _ -> false);
  expect_err "multicast"
    (PA.Union (PA.fwd 1L, PA.fwd 2L))
    (function Policy.Compile.Multicast (0L, 2) -> true | _ -> false);
  (match Policy.Compile.lower_block ~name:"p" (PA.Filter (PA.Test (PA.Sw, 1L))) with
   | Error Policy.Compile.Switch_dependent -> ()
   | Ok _ -> Alcotest.fail "uniform lowering accepted a switch test"
   | Error e ->
     Alcotest.failf "wrong error %s" (Policy.Compile.error_to_string e));
  (* negative values are out of range everywhere *)
  expect_err "negative"
    (PA.Filter (PA.Test (PA.Pt, -1L)))
    (function Policy.Compile.Value_out_of_range (PA.Pt, _) -> true | _ -> false)

(* slicing: specializing the FDD erases every switch test *)
let prop_slice_erases_sw =
  QCheck.Test.make ~name:"slicing erases switch tests" ~count:300 pol_arb
    (fun pol ->
      match Policy.Compile.fdd_of pol with
      | Error _ -> true
      | Ok fdd ->
        List.for_all
          (fun sw ->
            not
              (List.mem PA.Sw
                 (Policy.Fdd.test_fields (Policy.Fdd.restrict PA.Sw sw fdd))))
          [ 0L; 1L; 2L; -1L ])

(* -- End-to-end deploy -------------------------------------------------- *)

let mk_pkt ~dst ~port =
  let np =
    Netsim.Packet.create
      [ Netsim.Packet.ethernet ~src:1L ~dst:2L ();
        Netsim.Packet.ipv4 ~src:7L ~dst ();
        Netsim.Packet.tcp ~sport:80L ~dport:443L () ]
  in
  Netsim.Packet.set_meta np "in_port" port;
  Netsim.Packet.set_meta np "vlan_vid" 0L;
  np

let test_deploy_two_devices () =
  let d0 =
    Targets.Device.create ~id:"s0"
      (Targets.Arch.profile_of_kind Targets.Arch.Drmt)
  in
  let d1 =
    Targets.Device.create ~id:"s1"
      (Targets.Arch.profile_of_kind Targets.Arch.Drmt)
  in
  let pol =
    Policy.Syntax.parse
      "(filter sw = 0 and ip.dst = 1; fwd 2) + (filter sw = 1; fwd 3)"
  in
  match
    Policy.Deploy.deploy ~name:"route" ~devices:[ (d0, 0L); (d1, 1L) ] pol
  with
  | Error e ->
    Alcotest.failf "deploy: %s" (Format.asprintf "%a" Policy.Deploy.pp_error e)
  | Ok dp ->
    Alcotest.(check bool) "installed on s0" true
      (List.mem "route" (Targets.Device.installed_names d0));
    Alcotest.(check bool) "installed on s1" true
      (List.mem "route" (Targets.Device.installed_names d1));
    Alcotest.(check bool) "no open window" false (Targets.Device.is_frozen d0);
    (* s0 forwards ip.dst = 1 to port 2 and drops the rest *)
    let r = Targets.Device.exec d0 ~now_us:0L (mk_pkt ~dst:1L ~port:0L) in
    Alcotest.(check (option int)) "s0 match" (Some 2)
      r.Flexbpf.Interp.verdict.egress;
    let r = Targets.Device.exec d0 ~now_us:0L (mk_pkt ~dst:9L ~port:0L) in
    Alcotest.(check bool) "s0 default drops" true
      r.Flexbpf.Interp.verdict.dropped;
    (* s1 forwards everything to port 3 *)
    let r = Targets.Device.exec d1 ~now_us:0L (mk_pkt ~dst:9L ~port:0L) in
    Alcotest.(check (option int)) "s1 uniform" (Some 3)
      r.Flexbpf.Interp.verdict.egress;
    (* removal under one window takes both tables out *)
    (match Policy.Deploy.undeploy dp with
     | Error e -> Alcotest.failf "undeploy: %s" e
     | Ok () ->
       Alcotest.(check bool) "gone from s0" false
         (List.mem "route" (Targets.Device.installed_names d0));
       Alcotest.(check bool) "gone from s1" false
         (List.mem "route" (Targets.Device.installed_names d1)))

let test_deploy_rejects_bad_policy () =
  let d0 =
    Targets.Device.create ~id:"s0"
      (Targets.Arch.profile_of_kind Targets.Arch.Drmt)
  in
  match
    Policy.Deploy.deploy ~name:"bad" ~devices:[ (d0, 0L) ]
      (PA.Union (PA.fwd 1L, PA.fwd 2L))
  with
  | Ok _ -> Alcotest.fail "multicast policy deployed"
  | Error (Policy.Deploy.Compile_error (Policy.Compile.Multicast _)) ->
    Alcotest.(check bool) "device untouched" true
      (Targets.Device.installed_names d0 = [])
  | Error e ->
    Alcotest.failf "wrong error: %s"
      (Format.asprintf "%a" Policy.Deploy.pp_error e)

let test_flexnet_policy_deploy () =
  let net = Flexnet.create ~switches:2 () in
  let pol =
    Policy.Syntax.parse
      "(filter sw = 0; fwd 2) + (filter sw = 1; fwd 2)"
  in
  match Flexnet.deploy_policy ~name:"east" net pol with
  | Error e ->
    Alcotest.failf "deploy_policy: %s"
      (Format.asprintf "%a" Policy.Deploy.pp_error e)
  | Ok dp ->
    List.iter
      (fun d ->
        Alcotest.(check bool)
          (Targets.Device.id d ^ " has east") true
          (List.mem "east" (Targets.Device.installed_names d)))
      (Flexnet.switch_devices net);
    (match Flexnet.remove_policy net dp with
     | Error e -> Alcotest.failf "remove_policy: %s" e
     | Ok () ->
       List.iter
         (fun d ->
           Alcotest.(check bool)
             (Targets.Device.id d ^ " east removed") false
             (List.mem "east" (Targets.Device.installed_names d)))
         (Flexnet.switch_devices net))

let test_tenant_policy_admission () =
  let net = Flexnet.create ~switches:2 () in
  match Flexnet.deploy_infrastructure net with
  | Error e -> Alcotest.fail e
  | Ok _ ->
    let tenants = Flexnet.tenants_exn net in
    let pol = Policy.Syntax.parse "filter not (proto = 6 and tp.dst = 23)" in
    (match Control.Tenants.admit_policy tenants ~name:"acme" pol with
     | Error e ->
       Alcotest.failf "admit_policy: %s"
         (Format.asprintf "%a" Control.Tenants.pp_policy_admission_error e)
     | Ok (tenant, _report) ->
       Alcotest.(check string) "tenant name" "acme"
         tenant.Control.Tenants.tenant_name;
       Alcotest.(check int) "active" 1 (Control.Tenants.active_count tenants);
       (* switch tests cannot ride the uniform tenant lowering *)
       (match
          Control.Tenants.admit_policy tenants ~name:"evil"
            (PA.Filter (PA.Test (PA.Sw, 0L)))
        with
        | Error
            (Control.Tenants.Policy_error Policy.Compile.Switch_dependent) ->
          ()
        | Ok _ -> Alcotest.fail "switch-dependent tenant admitted"
        | Error e ->
          Alcotest.failf "wrong error: %s"
            (Format.asprintf "%a" Control.Tenants.pp_policy_admission_error e));
       (match Control.Tenants.depart tenants "acme" with
        | Error e ->
          Alcotest.failf "depart: %s"
            (Format.asprintf "%a" Control.Tenants.pp_departure_error e)
        | Ok _ ->
          Alcotest.(check int) "departed" 0
            (Control.Tenants.active_count tenants)))

let () =
  Alcotest.run "policy"
    [ ( "fdd",
        [ to_alcotest prop_fdd_agrees_with_sem;
          to_alcotest prop_fdd_union_idempotent;
          to_alcotest prop_fdd_seq_id;
          to_alcotest prop_slice_erases_sw ] );
      ( "syntax",
        [ to_alcotest prop_syntax_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_parse_comments ] );
      ( "differential",
        [ to_alcotest prop_table_differential;
          to_alcotest prop_block_differential ] );
      ( "lowering",
        [ Alcotest.test_case "typed errors" `Quick test_lowering_errors ] );
      ( "deploy",
        [ Alcotest.test_case "two devices" `Quick test_deploy_two_devices;
          Alcotest.test_case "rejects bad policy" `Quick
            test_deploy_rejects_bad_policy;
          Alcotest.test_case "flexnet facade" `Quick
            test_flexnet_policy_deploy;
          Alcotest.test_case "tenant admission" `Quick
            test_tenant_policy_admission ] ) ]
