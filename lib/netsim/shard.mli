(** Domain-sharded simulation with deterministic cross-shard merge.

    A network is described once as a {!Spec} (nodes plus links with
    explicit ports and latencies) and partitioned into shards. Each
    shard owns a private {!Sim.t} — its own event queue, virtual clock,
    and {!Obs.Scope} — and executes on an OCaml 5 domain. Cross-shard
    packets travel through bounded single-producer/single-consumer
    mailboxes and are merged into the destination shard at
    conservative-lookahead epoch barriers: every shard runs freely up
    to the window [gmin + L], where [gmin] is the earliest pending
    event network-wide and [L] the minimum cross-shard link latency, so
    no in-flight packet can arrive inside a window that is already
    executing.

    Determinism: the shard structure, the epoch windows, and the
    mailbox merge order (messages sorted by delivery time, ties by
    source shard then send order) depend only on the partition — never
    on how shards are packed onto domains — so a seeded run produces
    byte-identical per-shard registries and merged exports for any
    [domains] count. A single-shard partition bypasses the epoch
    machinery entirely and is exactly the existing single-domain
    [Sim.run].

    Boundary links keep their transmit-side semantics (serialization,
    drop-tail queue, ECN marking) in the sender's shard; the
    propagation latency is carried on the mailbox message and paid in
    the receiver's timeline, which is what makes the lookahead sound.
    The one observable divergence from a monolithic simulation is
    tie-breaking when two events share an exact timestamp across a
    shard boundary; counts and state are unaffected. *)

(** {1 Network specification} *)

module Spec : sig
  type t

  (** Dense node index within a spec. *)
  type node = int

  type link = {
    lk_a : node;
    lk_a_port : int;
    lk_b : node;
    lk_b_port : int;
    lk_bandwidth : float;
    lk_delay : float;
    lk_queue_capacity : int;
    lk_ecn_threshold : int;
  }

  val create : unit -> t
  val add_node : t -> name:string -> kind:Node.kind -> node
  val add_host : t -> string -> node
  val add_switch : t -> string -> node

  (** Declare a bidirectional connection; ports are assigned densely
      per endpoint in declaration order (matching
      [Topology.connect]'s next-free-port discipline). Returns the
      port used on each side. *)
  val connect :
    ?bandwidth:float -> ?delay:float -> ?queue_capacity:int ->
    ?ecn_threshold:int -> t -> node -> node -> int * int

  val node_count : t -> int
  val name : t -> node -> string
  val kind : t -> node -> Node.kind

  (** Links in declaration order. *)
  val links : t -> link list
end

(** {1 Partitions} *)

type partition

(** [partition spec ~shards f] assigns spec node [i] to shard [f i].
    @raise Invalid_argument when [f] maps outside [0, shards). *)
val partition : Spec.t -> shards:int -> (int -> int) -> partition

(** Everything in one shard: running this build is exactly the
    existing single-domain [Sim.run]. *)
val single : Spec.t -> partition

val partition_shards : partition -> int
val shard_of : partition -> Spec.node -> int

(** {1 Built networks} *)

(** A shard's view of the build: its simulation and the nodes it owns
    ([None] for nodes living in other shards). Model code installs
    handlers and schedules traffic against this view. *)
type view = {
  sh_index : int;
  sh_sim : Sim.t;
  sh_nodes : Node.t option array; (* spec node -> local instance *)
}

type t

(** Instantiate the spec under the partition. [init] runs once per
    shard, in shard order, to install handlers and traffic; seeding
    per spec-node keeps workloads identical across partitions.
    @raise Invalid_argument when a cross-shard link has a non-positive
    delay (there would be no lookahead). *)
val build : ?mailbox_capacity:int -> Spec.t -> partition -> init:(view -> unit) -> t

val shards : t -> int
val view : t -> int -> view
val views : t -> view list

(** Minimum cross-shard link latency; [infinity] when no link crosses
    a shard boundary. *)
val lookahead : t -> float

(** {1 Running} *)

type run_stats = {
  rs_events : int; (* events executed, all shards *)
  rs_epochs : int; (* barrier windows (0 for a single shard) *)
  rs_domains : int; (* domains actually used *)
  rs_messages : int; (* cross-shard packets merged *)
  rs_spilled : int; (* messages past mailbox capacity (spilled, not lost) *)
  rs_oversubscribed : bool;
      (* more domains requested than [Domain.recommended_domain_count] *)
}

(** Run the sharded network on [domains] OCaml domains (clamped to
    [1, shards]; default 1). When more domains are requested than the
    host recommends the run still proceeds — byte-identical, just
    slower — and the condition is reported via [rs_oversubscribed] and
    a [Logs] warning so benchmarks cannot silently degrade.

    Each shard's registry gains [shard.mailbox_in] / [shard.mailbox_spill]
    counters and its trace gains one [shard.run] span (attributes:
    shard, epochs, events) — all invariant under [domains]. *)
val run : ?domains:int -> ?until:float -> t -> run_stats

(** Merge-on-export: a fresh registry accumulating every shard's
    registry in shard order (see {!Obs.Metrics.merge_into}). *)
val merged_metrics : t -> Obs.Metrics.t

(** {1 Canonical sharded topology: the k-ary fat tree}

    Built once as a spec with per-pod shards (cores assigned
    round-robin across pod shards), O(1) arithmetic routing with
    flow-hash ECMP, and hooks for per-switch datapath programs. Used
    by the E16 multicore bench, the CLI [--shards] breakdowns, and the
    determinism tests. *)

module Fat_tree : sig
  type net

  (** [create ~k ()] builds the canonical k-ary fat tree (k even):
      (k/2)^2 cores, k pods of k/2 agg + k/2 edge switches, k/2 hosts
      per edge. [core_delay] must exceed the intra-pod delays; it is
      the lookahead of the per-pod partition.
      @raise Invalid_argument if [k] is odd. *)
  val create :
    ?k:int -> ?bandwidth:float -> ?host_delay:float -> ?pod_delay:float ->
    ?core_delay:float -> ?queue_capacity:int -> unit -> net

  val spec : net -> Spec.t

  (** Per-pod shards: pod members to their pod's shard, core [j] to
      shard [j mod k]. *)
  val pods_partition : net -> partition

  val k : net -> int
  val hosts : net -> Spec.node array
  val switch_count : net -> int
  val pod_of_host : net -> Spec.node -> int

  (** Hosts within pod [p]. *)
  val pod_hosts : net -> int -> Spec.node array

  (** Next-hop port at switch [node] toward host [dst] (flow-hash ECMP
      on the up-paths); [None] when [dst] is not a host id. *)
  val route : net -> node:Spec.node -> dst:Spec.node -> Packet.t -> int option

  (** Install routing handlers on every node the view owns:
      switches call [on_switch] (the per-switch datapath hook) then
      forward; hosts call [on_deliver]. Unroutable packets count as
      node drops. *)
  val install :
    net -> view -> on_switch:(Node.t -> Packet.t -> unit) ->
    on_deliver:(Node.t -> Packet.t -> unit) -> unit
end
