(** Placement of lowered units onto a physical datapath — as a pure
    search over resource snapshots.

    The datapath is an ordered device path (host stack, NIC, switches,
    ... — the "physical slice" a fungible datapath runs on). Placement
    must respect pipeline order: unit i+1 may not land on a device
    earlier in the path than unit i, so packets traverse components in
    program order. Within that constraint we do first-fit with vertical
    affinity: tables try switching ASICs first, offloads only consider
    general-purpose targets.

    [plan] never touches a device: admission runs against
    [Targets.Resource] snapshots (the same check the device itself
    performs at install time) and the result is a cost-annotated
    [Plan.t] plus the predicted post-execution snapshots. Execution —
    and rollback on failure — is [Runtime.Reconfig]'s job. *)

open Flexbpf

type t = {
  path : Targets.Device.t list;
  (* element name -> device, for this program *)
  mutable where : (string * Targets.Device.t) list;
  prog : Ast.program;
}

type failure = {
  failed_unit : Lowering.unit_;
  attempts : (string * Targets.Device.reject) list; (* device id -> why *)
}

let pp_failure ppf f =
  Fmt.pf ppf "cannot place %s: %a"
    (Ast.element_name f.failed_unit.Lowering.u_element)
    Fmt.(
      list ~sep:(any "; ")
        (pair ~sep:(any ": ") string
           (of_to_string Targets.Device.reject_to_string)))
    f.attempts

(** Index of a device on the path; [None] if absent. *)
let device_position path dev =
  let rec go i = function
    | [] -> None
    | d :: rest -> if d == dev then Some i else go (i + 1) rest
  in
  go 0 path

let where t name = List.assoc_opt name t.where

let devices_used t =
  List.sort_uniq compare (List.map (fun (_, d) -> Targets.Device.id d) t.where)

(** Candidate devices for a unit, in preference order, from path
    position [min_pos]: admissible classes only; switch-preferred units
    see switches first. *)
let candidates ~path ~min_pos (u : Lowering.unit_) =
  let tail =
    List.filteri (fun i _ -> i >= min_pos) path
    |> List.filter (fun d ->
           Lowering.class_allows u.Lowering.u_class (Targets.Device.kind d))
  in
  match u.Lowering.u_class with
  | Lowering.Switch_preferred ->
    let switches, others =
      List.partition
        (fun d -> Targets.Arch.is_switch (Targets.Device.kind d))
        tail
    in
    switches @ others
  | _ -> tail

(* -- Pure planning ----------------------------------------------------- *)

(** A successful pure placement: where every element goes, the plan
    that realizes it, its cost, and the predicted snapshots. *)
type planned = {
  pln_where : (string * string) list; (* element name -> device id *)
  pln_plan : Plan.t;
  pln_cost : Plan.cost;
  pln_snaps : (string * Targets.Resource.snapshot) list;
      (* predicted (finalized) snapshot of every path device *)
}

let default_snaps path =
  List.map (fun d -> (Targets.Device.id d, Targets.Device.snapshot d)) path

let snapshot_deltas ~before ~after plan =
  let touched =
    List.sort_uniq compare (List.map Plan.op_device plan.Plan.ops)
  in
  List.filter_map
    (fun d ->
      match (List.assoc_opt d before, List.assoc_opt d after) with
      | Some b, Some a ->
        Some
          (d, Targets.Resource.sub (Targets.Resource.used a)
                (Targets.Resource.used b))
      | _ -> None)
    touched

(** Plan the placement of every unit of [prog] over [snaps] (resource
    snapshots keyed by device id; [path] supplies order and metadata
    only). Pure: no device is touched. On failure reports which unit
    failed and why each candidate rejected it — and, since nothing was
    installed, there is nothing to roll back. *)
let plan_on ?(plan_name = "deploy") ~snaps ~path (prog : Ast.program) =
  let units = Lowering.units_of_program prog in
  let before = snaps in
  let rec go snaps min_pos placed ops = function
    | [] -> Ok (snaps, List.rev placed, List.rev ops)
    | (u : Lowering.unit_) :: rest ->
      let tried = ref [] in
      let rec attempt = function
        | [] -> Error { failed_unit = u; attempts = List.rev !tried }
        | dev :: more ->
          let id = Targets.Device.id dev in
          (match List.assoc_opt id snaps with
           | None -> attempt more
           | Some snap ->
             (match
                Targets.Resource.admit snap ~ctx:u.Lowering.u_ctx
                  ~order:u.Lowering.u_index u.Lowering.u_element
              with
              | Ok (_slot, snap') ->
                let snaps = (id, snap') :: List.remove_assoc id snaps in
                let pos =
                  Option.value (device_position path dev) ~default:min_pos
                in
                go snaps (max min_pos pos)
                  ((Ast.element_name u.Lowering.u_element, id) :: placed)
                  (Plan.Install
                     { device = id; element = u.Lowering.u_element;
                       ctx = u.Lowering.u_ctx; order = u.Lowering.u_index }
                  :: ops)
                  rest
              | Error reject ->
                tried := (id, reject) :: !tried;
                attempt more))
      in
      attempt (candidates ~path ~min_pos u)
  in
  match go snaps 0 [] [] units with
  | Error f -> Error f
  | Ok (snaps, where, ops) ->
    let finalized =
      List.map (fun (id, s) -> (id, Targets.Resource.finalize s)) snaps
    in
    (* residency of tables this plan placed oversubscribed — admission
       treats an over-capacity table as policy, not rejection, and the
       plan carries the predicted device-tier size and miss rate *)
    let residency =
      List.concat_map
        (fun (_, s) ->
          List.filter_map
            (fun (p : Targets.Resource.placed) ->
              if List.mem_assoc p.Targets.Resource.pl_name where then
                p.Targets.Resource.pl_residency
              else None)
            s.Targets.Resource.placed)
        finalized
    in
    let plan = Plan.v ~residency plan_name ops in
    let times_of = Plan.times_of_devices path in
    let deltas = snapshot_deltas ~before ~after:finalized plan in
    Ok
      { pln_where = where; pln_plan = plan;
        pln_cost = Plan.cost_of ~times_of ~deltas plan;
        pln_snaps = finalized }

(** Plan against the devices' current state. *)
let plan ~path prog = plan_on ~snaps:(default_snaps path) ~path prog

(** Summed utilization over the path (for experiment reporting). *)
let mean_utilization path =
  match path with
  | [] -> 0.
  | _ ->
    List.fold_left (fun acc d -> acc +. Targets.Device.utilization d) 0. path
    /. float_of_int (List.length path)
