(** The infrastructure program: basic L2/L3 forwarding plus utility
    hooks. This is the operator-supplied trusted base every FlexNet
    deployment starts from (§3); tenant extensions are composed on top
    of it and runtime patches modify it in place. *)

open Flexbpf
open Flexbpf.Builder

(** L2 exact-match switching on ethernet.dst. *)
let l2_table =
  table "l2_switching"
    ~keys:[ exact (field "ethernet" "dst") ]
    ~actions:
      [ action "set_egress" ~params:[ "port" ] [ forward (param "port") ];
        action "flood" [ punt "l2_miss" ] ]
    ~default:("flood", []) ~size:4096 ()

(** L3 longest-prefix-match routing on ipv4.dst. *)
let ipv4_lpm =
  table "ipv4_lpm"
    ~keys:[ lpm (field "ipv4" "dst") ]
    ~actions:
      [ action "route" ~params:[ "port" ]
          [ set_field "ipv4" "ttl" (field "ipv4" "ttl" -: const 1);
            forward (param "port") ];
        action "unroutable" [ drop ] ]
    ~default:("unroutable", []) ~size:8192 ()

(** Ternary ACL: operator drop/permit rules. *)
let acl =
  table "acl"
    ~keys:
      [ ternary (field "ipv4" "src"); ternary (field "ipv4" "dst");
        ternary (field "ipv4" "proto") ]
    ~actions:[ action "permit" [ Ast.Nop ]; action "deny" [ drop ] ]
    ~default:("permit", []) ~size:1024 ()

(** TTL hygiene: drop expired packets before routing. *)
let ttl_guard =
  block "ttl_guard" [ when_ (field "ipv4" "ttl" <=: const 0) [ drop ] ]

(** Per-port byte/packet counters, the management utility the paper's
    controller reads. *)
let port_counters_map = map_decl ~key_arity:1 ~size:64 "port_counters"

let port_counters =
  block "port_counters" [ map_incr "port_counters" [ meta "in_port" ] ]

let program ?(owner = "infra") () =
  Builder.program ~owner "l2l3"
    ~maps:[ port_counters_map ]
    [ port_counters; ttl_guard; acl; ipv4_lpm; l2_table ]

(** Routing rules for a concrete topology: one LPM (/32) rule per host
    per switch, using shortest-path next hops. Installs into whichever
    device ended up hosting [ipv4_lpm]; [where] maps element name to
    its (device env, node id). *)
let route_rule ~host_id ~port =
  rule ~priority:1
    ~matches:[ lpm_i host_id 32 ]
    ~action:("route", [ port ])
    ()

(** Install destination routes on a device located at topology node
    [node_id], covering all hosts. *)
let install_routes env topo ~node_id =
  List.iter
    (fun host ->
      let dst = host.Netsim.Node.id in
      if dst <> node_id then
        match
          Netsim.Topology.next_hops topo ~src:node_id ~dst
        with
        | port :: _ ->
          Interp.install_rule env "ipv4_lpm" (route_rule ~host_id:dst ~port)
        | [] -> ())
    (Netsim.Topology.hosts topo)

(** Deliver-to-local-host rule: on the last switch the packet is sent
    out of the port facing the host. Covered by [install_routes] since
    next_hops returns the host-facing port there. *)

let acl_deny_rule ~src ~dst =
  rule ~priority:10
    ~matches:
      [ ternary_i src 0xFFFFFFFF; ternary_i dst 0xFFFFFFFF; Ast.P_any ]
    ~action:("deny", [])
    ()
