(** Network nodes: hosts, NICs, and switches.

    A node is deliberately thin — it owns ports (outgoing links) and a
    packet handler. The handler is pluggable so the same node type can
    run a plain forwarding function, a programmable-device runtime
    (see [Runtime.Wiring]), or a host transport endpoint. *)

type kind = Host | Nic | Switch

type t = {
  id : int;
  name : string;
  kind : kind;
  mutable ports : Link.t option array;
  mutable handler : t -> in_port:int -> Packet.t -> unit;
  mutable rx_packets : int;
  mutable dropped : int;
}

val kind_to_string : kind -> string

val create : id:int -> name:string -> kind:kind -> ?num_ports:int -> unit -> t

val set_handler : t -> (t -> in_port:int -> Packet.t -> unit) -> unit

val port_count : t -> int

(** Wire an outgoing link to [port], growing the port array as needed. *)
val attach : t -> port:int -> Link.t -> unit

val link : t -> port:int -> Link.t option

(** Send out of [port]; counts a drop if the port is unwired or the
    link rejects the packet. *)
val send : t -> port:int -> Packet.t -> unit

(** Deliver an incoming packet to the node's handler. *)
val receive : t -> in_port:int -> Packet.t -> unit

val pp : Format.formatter -> t -> unit
